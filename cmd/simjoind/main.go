// Command simjoind is the resident join service: it loads a workload once,
// keeps the uncertain side's signatures and blocks warm in memory, and then
// serves delta joins (POST /join) and template-based question answering
// (POST /ask) behind the overload envelope of internal/server — bounded
// admission, pressure-driven degradation down the verdict ladder, retry on
// transient faults, a verification-storm circuit breaker, and graceful
// drain on SIGTERM (DESIGN.md §14).
//
//	simjoind -workload er -tau 2 -alpha 0.5 -addr :8080
//	curl -s localhost:8080/sample | curl -s -d @- localhost:8080/join
//
// QA workloads (qald, webq, mm) additionally train the template store at
// boot so /ask answers questions; synthetic workloads (er, sf) serve /join
// only and /ask returns 501.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"simjoin/internal/core"
	"simjoin/internal/experiments"
	"simjoin/internal/fault"
	"simjoin/internal/filter"
	"simjoin/internal/graph"
	"simjoin/internal/obs"
	"simjoin/internal/plan"
	"simjoin/internal/qa"
	"simjoin/internal/server"
	"simjoin/internal/ugraph"
	"simjoin/internal/workload"
)

func main() {
	var (
		wl        = flag.String("workload", "er", "workload: er|sf|qald|webq|mm")
		tau       = flag.Int("tau", 2, "GED threshold")
		alpha     = flag.Float64("alpha", 0.5, "similarity probability threshold")
		filters   = flag.String("filters", "", "comma-separated filter chain overriding the mode's default bound order, e.g. 'count,css,prob', or 'auto' to reorder the chain online by measured effective cost (bounds: "+strings.Join(filter.BoundNames(), ", ")+"); per-request \"filters\" fields override this")
		blockSize = flag.Int("block-size", 0, "SoA block-screening width (0 = scalar path)")
		shards    = flag.Int("shards", 0, "route the resident side across this many banded shards; delta joins walk it shard by shard (0/1 = unsharded)")
		bands     = flag.Int("bands", 4, "signature bands per shard key (with -shards)")
		scale     = flag.Float64("scale", 1.0, "workload scale factor")
		minPhi    = flag.Float64("phi", 0.5, "minimum template matching proportion (QA workloads)")

		addr     = flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening (for scripted boots)")

		maxInFlight = flag.Int("max-inflight", 4, "concurrently executing requests")
		maxQueue    = flag.Int("max-queue", 0, "admission queue bound (0 = 4×max-inflight)")
		reqTimeout  = flag.Duration("request-timeout", 10*time.Second, "per-request deadline")
		drainBudget = flag.Duration("drain-timeout", 0, "graceful-drain budget on SIGTERM (0 = request-timeout + 1s)")

		degradeSampled = flag.Float64("degrade-sampled", 0.25, "queue pressure at which exact enumeration is skipped")
		degradeApprox  = flag.Float64("degrade-approx", 0.6, "queue pressure at which only certified approx bounds are served")
		retryMax       = flag.Int("retry-max", 2, "retries on transient injected faults")
		retryBackoff   = flag.Duration("retry-backoff", 5*time.Millisecond, "base retry backoff, doubled per attempt")

		brkWindow     = flag.Int("breaker-window", 0, "circuit-breaker outcome window (0 disables the breaker)")
		brkQuarantine = flag.Float64("breaker-quarantine", 0.5, "windowed quarantine-rate trip threshold")
		brkP99        = flag.Duration("breaker-p99", 0, "windowed P99 latency trip threshold (0 = quarantine signal only)")
		brkCooldown   = flag.Duration("breaker-cooldown", 2*time.Second, "open-state cooldown before probing")
		brkProbes     = flag.Int("breaker-probes", 3, "healthy probes that close a half-open breaker")

		statsJSON  = flag.String("stats-json", "", "write the final metrics snapshot as JSON to this file at shutdown")
		traceOut   = flag.String("trace-out", "", "write recorded spans as Chrome trace_event JSON at shutdown")
		events     = flag.String("events", "", "write sampled pair-decision events as JSONL to this file")
		eventsN    = flag.Int("events-every", 100, "with -events, sample one pair in N")
		failpoints = flag.String("failpoints", "", "comma-separated fault injections (also via "+fault.EnvVar+")")
	)
	flag.Parse()

	if *failpoints != "" {
		if err := fault.EnableAll(*failpoints); err != nil {
			fatal(err)
		}
	}
	if fault.Active() != nil {
		fmt.Fprintf(os.Stderr, "simjoind: fault injection active: %v\n", fault.Active())
	}

	reg := obs.New()
	tr := obs.NewTracer(obs.DefaultTraceCapacity)

	var eventLog *obs.EventLog
	var eventsFile *os.File
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fatal(err)
		}
		eventsFile = f
		eventLog = obs.NewEventLog(f, *eventsN)
	}

	opts := core.DefaultOptions()
	opts.Tau = *tau
	opts.Alpha = *alpha
	opts.BlockSize = *blockSize
	switch {
	case *filters == "auto":
		opts.Planner = plan.AutoChain()
	case *filters != "":
		chain, err := filter.ParseChain(*filters)
		if err != nil {
			fatal(err)
		}
		opts.FilterChain = chain
	}

	fmt.Fprintf(os.Stderr, "simjoind: loading workload %q (scale %v)...\n", *wl, *scale)
	start := time.Now()
	samples, resident, qsys, err := loadWorkload(*wl, experiments.Scale(*scale), *minPhi, *shards, *bands, reg, tr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "simjoind: resident side ready: %d uncertain graphs across %d shard(s), %d sample queries, qa=%v (%v)\n",
		resident.Len(), resident.Shards(), len(samples), qsys != nil, time.Since(start).Round(time.Millisecond))

	srv := server.New(server.Config{
		Resident:       resident,
		Join:           opts,
		QA:             qsys,
		Samples:        samples,
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		RequestTimeout: *reqTimeout,
		DrainTimeout:   *drainBudget,
		DegradeSampled: *degradeSampled,
		DegradeApprox:  *degradeApprox,
		RetryMax:       *retryMax,
		RetryBackoff:   *retryBackoff,
		Breaker: server.BreakerConfig{
			Window:         *brkWindow,
			QuarantineRate: *brkQuarantine,
			LatencyP99:     *brkP99,
			Cooldown:       *brkCooldown,
			Probes:         *brkProbes,
		},
		Obs:    reg,
		Tracer: tr,
		Events: eventLog,
		Logger: obs.StderrLogger(),
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fatal(err)
		}
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "simjoind: serving on http://%s/ (POST /join, POST /ask, GET /healthz, GET /sample)\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// Graceful drain: on SIGTERM/SIGINT stop accepting (admission sheds with
	// 429), let in-flight requests finish within the drain budget, then shut
	// the listener down and flush every artifact.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "simjoind: %v: draining...\n", sig)
	case err := <-serveErr:
		fatal(err)
	}

	drainStart := time.Now()
	drainErr := srv.Drain(context.Background())
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "simjoind: %v\n", drainErr)
	} else {
		fmt.Fprintf(os.Stderr, "simjoind: drained cleanly in %v\n", time.Since(drainStart).Round(time.Millisecond))
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = httpSrv.Shutdown(shutCtx)
	cancel()

	if err := flushArtifacts(*statsJSON, *traceOut, reg, tr, eventLog, eventsFile, drainErr == nil); err != nil {
		fatal(err)
	}
	if drainErr != nil {
		os.Exit(1)
	}
}

// loadWorkload builds the service's state: the resident uncertain side, the
// sample query graphs for /sample, and (QA workloads only) a trained
// template system for /ask.
func loadWorkload(wl string, scale experiments.Scale, minPhi float64, shards, bands int, reg *obs.Registry, tr *obs.Tracer) ([]*graph.Graph, *core.Resident, qa.System, error) {
	// makeResident routes the resident side across banded shards when asked;
	// results are identical either way (routing only reorders the feed).
	makeResident := func(u []*ugraph.Graph) *core.Resident {
		if shards > 1 {
			return core.NewShardedResident(u, shards, bands)
		}
		return core.NewResident(u)
	}
	switch wl {
	case "er", "sf":
		cfg := workload.DefaultSyntheticConfig()
		cfg.Count = int(float64(cfg.Count) * float64(scale))
		var d []*graph.Graph
		var u []*ugraph.Graph
		if wl == "er" {
			d, u = workload.ER(cfg)
		} else {
			d, u = workload.SF(cfg)
		}
		return d, makeResident(u), nil, nil
	case "qald", "webq", "mm":
		var cfg workload.QAConfig
		switch wl {
		case "qald":
			cfg = workload.QALD3Config()
		case "webq":
			cfg = workload.WebQConfig(0.35)
		default:
			cfg = workload.MMConfig()
		}
		cfg.Questions = int(float64(cfg.Questions) * float64(scale))
		cfg.ExtraQueries = int(float64(cfg.ExtraQueries) * float64(scale))
		w, err := workload.GenerateQA(cfg)
		if err != nil {
			return nil, nil, nil, err
		}
		if reg != nil {
			w.KB.Store.SetObs(reg)
		}
		p := experiments.Prepare(w)
		fmt.Fprintln(os.Stderr, "simjoind: learning templates via SimJ...")
		pairs, _, err := p.Join(experiments.DefaultJoinOptions())
		if err != nil {
			return nil, nil, nil, err
		}
		store, _ := p.BuildTemplates(pairs)
		fmt.Fprintf(os.Stderr, "simjoind: learned %d templates from %d pairs\n", store.Len(), len(pairs))
		sys := qa.Instrument(&qa.TemplateSystem{
			Store: store, Lex: w.KB.Lexicon, KB: w.KB.Store, MinPhi: minPhi,
		}, reg, tr)
		return p.D, makeResident(p.U), sys, nil
	default:
		return nil, nil, nil, fmt.Errorf("unknown workload %q", wl)
	}
}

// flushArtifacts writes the shutdown snapshot: metrics (with a drain-status
// marker), the Chrome trace, and the event log's tail.
func flushArtifacts(statsPath, tracePath string, reg *obs.Registry, tr *obs.Tracer, ev *obs.EventLog, evFile *os.File, cleanDrain bool) error {
	if ev != nil {
		if err := ev.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "simjoind: event log sink error: %v\n", err)
		}
		fmt.Fprintf(os.Stderr, "simjoind: event log: %d emitted, %d dropped\n", ev.Emitted(), ev.Dropped())
	}
	if evFile != nil {
		if err := evFile.Sync(); err != nil {
			return err
		}
		if err := evFile.Close(); err != nil {
			return err
		}
	}
	if statsPath != "" {
		doc := struct {
			CleanDrain bool         `json:"cleanDrain"`
			Metrics    obs.Snapshot `json:"metrics"`
		}{CleanDrain: cleanDrain, Metrics: reg.Snapshot()}
		f, err := os.Create(statsPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "simjoind: wrote stats snapshot to %s\n", statsPath)
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "simjoind: wrote Chrome trace to %s\n", tracePath)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simjoind:", err)
	os.Exit(1)
}
