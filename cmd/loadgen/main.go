// Command loadgen drives a running simjoind with many concurrent askers and
// optionally gates on the chaos-soak acceptance criteria: exact request
// accounting, exercised shed/degrade paths, bounded client P99, and zero
// uncounted panics. It is the out-of-process half of the chaos harness
// (ci.sh boots simjoind with SIMJOIN_FAILPOINTS armed, then runs this).
//
//	loadgen -url http://127.0.0.1:8080 -n 2000 -workers 64 \
//	        -gate-shed -gate-degrade -gate-p99 5s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"simjoin/internal/server/loadtest"
)

func main() {
	var (
		url     = flag.String("url", "http://127.0.0.1:8080", "simjoind base URL")
		n       = flag.Int("n", 1000, "total requests")
		workers = flag.Int("workers", 16, "concurrent askers")
		timeout = flag.Duration("timeout", 10*time.Second, "per-request client timeout")
		seed    = flag.Int64("seed", 1, "payload selection seed")
		askFrac = flag.Float64("ask", 0, "fraction of requests sent to /ask (QA workloads)")

		gateShed    = flag.Bool("gate-shed", false, "fail unless the server shed at least one request")
		gateDegrade = flag.Bool("gate-degrade", false, "fail unless at least one request ran degraded (sampled/approx)")
		gateP99     = flag.Duration("gate-p99", 0, "fail if client P99 exceeds this (0 = no latency gate)")
		jsonOut     = flag.String("json", "", "write the client result as JSON to this file ('-' for stdout)")
	)
	flag.Parse()

	ctx := context.Background()
	res, err := loadtest.Run(ctx, loadtest.Config{
		BaseURL:  *url,
		Workers:  *workers,
		Requests: *n,
		Timeout:  *timeout,
		Seed:     *seed,
		Ask:      *askFrac,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d requests in %v: ok=%d shed=%d errors=%d p50=%v p99=%v\n",
		res.Sent, res.Elapsed.Round(time.Millisecond), res.OK(), res.Shed(), res.Errors, res.P50, res.P99)

	metrics, err := loadtest.FetchMetrics(ctx, *url)
	if err != nil {
		fatal(fmt.Errorf("fetching server metrics: %w", err))
	}
	tiers := metrics.TierCounts("join")
	fmt.Fprintf(os.Stderr, "loadgen: server tiers=%v panics=%d retries=%d breaker_trips=%d\n",
		tiers,
		metrics.Counters["server_panics_total"],
		metrics.Counters["server_retries_total"],
		metrics.Counters["server_breaker_trips_total"])

	if *jsonOut != "" {
		w := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		doc := struct {
			Client  *loadtest.Result `json:"client"`
			Tiers   map[string]int64 `json:"tiers"`
			Panics  int64            `json:"panics"`
			Retries int64            `json:"retries"`
		}{res, tiers, metrics.Counters["server_panics_total"], metrics.Counters["server_retries_total"]}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatal(err)
		}
	}

	failed := false
	for _, g := range loadtest.GateResult(res, metrics, "join", *gateShed, *gateDegrade, *gateP99) {
		if g.Err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: GATE FAIL %s: %v\n", g.Name, g.Err)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "loadgen: gate ok: %s\n", g.Name)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
