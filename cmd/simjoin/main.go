// Command simjoin runs the uncertain graph similarity join (Def. 7) over a
// generated workload and reports the matched pairs and join statistics.
//
//	simjoin -workload qald -tau 1 -alpha 0.9 -mode opt -gn 10 -show 5
//
// Workloads: qald, webq, mm (question/SPARQL pairs through the full NLQ
// pipeline) and er, sf (synthetic uncertain graphs).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"syscall"
	"time"

	"simjoin/internal/core"
	"simjoin/internal/experiments"
	"simjoin/internal/fault"
	"simjoin/internal/filter"
	"simjoin/internal/graph"
	"simjoin/internal/obs"
	"simjoin/internal/plan"
	"simjoin/internal/ugraph"
	"simjoin/internal/workload"
)

func main() {
	var (
		wl        = flag.String("workload", "qald", "workload: qald|webq|mm|er|sf")
		tau       = flag.Int("tau", 1, "GED threshold")
		alpha     = flag.Float64("alpha", 0.9, "similarity probability threshold")
		mode      = flag.String("mode", "opt", "pruning mode: css|simj|opt")
		filters   = flag.String("filters", "", "comma-separated filter chain overriding the mode's default bound order, e.g. 'count,css,prob', or 'auto' to reorder the mode's chain online by measured effective cost (bounds: "+strings.Join(filter.BoundNames(), ", ")+")")
		planFlag  = flag.String("plan", "", "cost-based planning: 'auto' (adaptive chain + source selection), 'chain' (adaptive chain only), 'source' (cardinality-aware source selection only)")
		gn        = flag.Int("gn", 10, "possible-world group count (opt mode)")
		blockSize = flag.Int("block-size", 0, "screen whole blocks of this many uncertain graphs with the SoA bit kernels before any per-pair bound (0 = scalar path)")
		shards    = flag.Int("shards", 0, "partition both workload sides into this many banded shards, each its own join pipeline with a dedup merge stage (0/1 = single engine)")
		bands     = flag.Int("bands", 4, "signature bands per shard key (with -shards; more bands smooth shard imbalance)")
		scale     = flag.Float64("scale", 1.0, "workload scale factor")
		show      = flag.Int("show", 5, "matched pairs to print")
		dump      = flag.String("dump", "", "save the generated QA workload to this directory and exit")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof/ on this address during the run")
		statsJSON = flag.String("stats-json", "", "write the final Stats and metrics snapshot as JSON to this file")
		traceOut  = flag.String("trace-out", "", "write recorded spans as Chrome trace_event JSON to this file")
		explain   = flag.Bool("explain", false, "print the join's cost model after the run: per-bound evals/prunes/selectivity/ns-per-eval with effective-cost ranks, and stage latency P50/P95/P99")
		events    = flag.String("events", "", "write sampled pair-decision events as JSONL to this file ('-' for stdout)")
		eventsN   = flag.Int("events-every", 100, "with -events, sample one pair in N (1 records every pair)")
		progress  = flag.Duration("progress", 0, "log join progress at this interval (e.g. 2s; 0 disables)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile (go tool pprof format) to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile (go tool pprof format) to this file at exit")

		pairDeadline = flag.Duration("pair-deadline", 0, "soft per-pair verification deadline; past it the pair degrades down the verdict ladder (0 disables)")
		fallbackName = flag.String("fallback", "full", "budget-cliff policy: full (sample then approx bounds), sample, none (legacy skip)")
		watchdog     = flag.Duration("watchdog", 0, "log workers stuck on one pair longer than this (0 disables)")
		failpoints   = flag.String("failpoints", "", "comma-separated fault injections, e.g. 'ged.compute=error#3,core.pair=delay:5ms' (also via "+fault.EnvVar+")")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simjoin:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "simjoin:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "simjoin:", err)
				return
			}
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "simjoin:", err)
			}
			f.Close()
		}()
	}

	fb, err := core.ParseFallback(*fallbackName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simjoin:", err)
		os.Exit(1)
	}
	if *failpoints != "" {
		if err := fault.EnableAll(*failpoints); err != nil {
			fmt.Fprintln(os.Stderr, "simjoin:", err)
			os.Exit(1)
		}
	}
	if fault.Active() != nil {
		fmt.Fprintf(os.Stderr, "simjoin: fault injection active: %v\n", fault.Active())
	}

	if *dump != "" {
		var cfg workload.QAConfig
		switch *wl {
		case "qald":
			cfg = workload.QALD3Config()
		case "webq":
			cfg = workload.WebQConfig(0.35)
		case "mm":
			cfg = workload.MMConfig()
		default:
			fmt.Fprintf(os.Stderr, "simjoin: -dump supports qald|webq|mm, not %q\n", *wl)
			os.Exit(1)
		}
		cfg.Questions = int(float64(cfg.Questions) * *scale)
		cfg.ExtraQueries = int(float64(cfg.ExtraQueries) * *scale)
		w, err := workload.GenerateQA(cfg)
		if err == nil {
			err = w.Save(*dump)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "simjoin:", err)
			os.Exit(1)
		}
		fmt.Printf("saved %d questions, %d queries, %d triples to %s\n",
			len(w.Questions), len(w.Sparql), w.KB.Store.Len(), *dump)
		return
	}

	obsCfg := obsConfig{
		debugAddr:   *debugAddr,
		statsJSON:   *statsJSON,
		traceOut:    *traceOut,
		explain:     *explain,
		events:      *events,
		eventsEvery: *eventsN,
		progress:    *progress,
	}
	robust := robustConfig{
		fallback:     fb,
		pairDeadline: *pairDeadline,
		watchdog:     *watchdog,
	}
	// SIGINT/SIGTERM cancel the join context: workers stop at the next
	// pair boundary and run() still flushes -events/-trace-out/-stats-json
	// so an interrupted run leaves usable artifacts behind. A second signal
	// kills the process the default way (stop() restores default handling).
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *wl, *tau, *alpha, *mode, *filters, *planFlag, *gn, *blockSize, *shards, *bands, experiments.Scale(*scale), *show, obsCfg, robust); err != nil {
		fmt.Fprintln(os.Stderr, "simjoin:", err)
		os.Exit(1)
	}
}

// robustConfig bundles the graceful-degradation flags.
type robustConfig struct {
	fallback     core.Fallback
	pairDeadline time.Duration
	watchdog     time.Duration
}

// obsConfig bundles the observability flags.
type obsConfig struct {
	debugAddr   string
	statsJSON   string
	traceOut    string
	explain     bool
	events      string
	eventsEvery int
	progress    time.Duration
}

func run(ctx context.Context, wl string, tau int, alpha float64, modeName, filters, planName string, gn, blockSize, shards, bands int, scale experiments.Scale, show int, oc obsConfig, rc robustConfig) error {
	opts := core.DefaultOptions()
	opts.Tau = tau
	opts.Alpha = alpha
	opts.GroupCount = gn
	opts.BlockSize = blockSize
	opts.Shards = shards
	opts.Bands = bands
	opts.Fallback = rc.fallback
	opts.PairDeadline = rc.pairDeadline
	opts.Watchdog = rc.watchdog
	if rc.watchdog > 0 {
		opts.Logger = obs.StderrLogger()
	}

	var (
		reg *obs.Registry
		tr  *obs.Tracer
	)
	if oc.debugAddr != "" || oc.statsJSON != "" || oc.explain {
		reg = obs.New()
		opts.Obs = reg
	}
	var eventsFile *os.File
	if oc.events != "" {
		w := os.Stdout
		if oc.events != "-" {
			f, err := os.Create(oc.events)
			if err != nil {
				return err
			}
			eventsFile = f
			defer f.Close()
			w = f
		}
		opts.Events = obs.NewEventLog(w, oc.eventsEvery)
	}
	if oc.debugAddr != "" || oc.traceOut != "" {
		tr = obs.NewTracer(obs.DefaultTraceCapacity)
		opts.Tracer = tr
	}
	if oc.progress > 0 {
		opts.Logger = obs.StderrLogger()
		opts.ProgressEvery = oc.progress
	}
	if oc.debugAddr != "" {
		srv, err := obs.Serve(oc.debugAddr, reg, tr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug endpoint on http://%s/\n", srv.Addr)
	}
	var chainDesc string
	switch modeName {
	case "css":
		opts.Mode = core.ModeCSSOnly
		chainDesc = "css"
	case "simj":
		opts.Mode = core.ModeSimJ
		chainDesc = "css,prob"
	case "opt":
		opts.Mode = core.ModeSimJOpt
		chainDesc = "css,group"
	default:
		return fmt.Errorf("unknown mode %q", modeName)
	}
	var planCfg *plan.Config
	switch planName {
	case "":
	case "auto":
		planCfg = plan.Auto()
	case "chain":
		planCfg = plan.AutoChain()
	case "source":
		planCfg = plan.AutoSource()
	default:
		return fmt.Errorf("unknown -plan %q (want auto, chain or source)", planName)
	}
	switch {
	case filters == "auto":
		// Keep the mode's chain but let the optimizer reorder it online.
		if planCfg == nil {
			planCfg = plan.AutoChain()
		}
		planCfg.Chain = true
	case filters != "":
		chain, err := filter.ParseChain(filters)
		if err != nil {
			return err
		}
		opts.FilterChain = chain
		names := make([]string, len(chain))
		for i, b := range chain {
			names[i] = b.Name()
		}
		chainDesc = strings.Join(names, ",")
	}
	opts.Planner = planCfg
	if planCfg != nil && planCfg.Chain {
		chainDesc += " (adaptive)"
	}

	var (
		d        []*graph.Graph
		u        []*ugraph.Graph
		describe func(p core.Pair) string
	)
	switch wl {
	case "qald", "webq", "mm":
		var cfg workload.QAConfig
		switch wl {
		case "qald":
			cfg = workload.QALD3Config()
		case "webq":
			cfg = workload.WebQConfig(0.35)
		default:
			cfg = workload.MMConfig()
		}
		cfg.Questions = int(float64(cfg.Questions) * float64(scale))
		cfg.ExtraQueries = int(float64(cfg.ExtraQueries) * float64(scale))
		w, err := workload.GenerateQA(cfg)
		if err != nil {
			return err
		}
		p := experiments.Prepare(w)
		d, u = p.D, p.U
		describe = func(pr core.Pair) string {
			return fmt.Sprintf("Q%-4d %q\n       %s", pr.G,
				w.Questions[p.QuestionOf[pr.G]].Text, w.Sparql[pr.Q].Query)
		}
	case "er", "sf":
		cfg := workload.DefaultSyntheticConfig()
		cfg.Count = int(float64(cfg.Count) * float64(scale))
		if wl == "er" {
			d, u = workload.ER(cfg)
		} else {
			d, u = workload.SF(cfg)
		}
		describe = func(pr core.Pair) string {
			return fmt.Sprintf("D[%d] ~ U[%d]", pr.Q, pr.G)
		}
	default:
		return fmt.Errorf("unknown workload %q", wl)
	}

	if blockSize > 0 {
		// The block screen runs ahead of every per-pair bound; show it at the
		// head of the stage order.
		chainDesc = fmt.Sprintf("block(%d),%s", blockSize, chainDesc)
	}
	if shards > 1 {
		// Banded candidate generation runs ahead of everything else.
		chainDesc = fmt.Sprintf("shard(%dx%d),%s", shards, bands, chainDesc)
	}
	fmt.Printf("joining |D|=%d certain graphs with |U|=%d uncertain graphs (tau=%d alpha=%v mode=%s filters=%s)\n",
		len(d), len(u), opts.Tau, opts.Alpha, opts.Mode, chainDesc)
	start := time.Now()
	var (
		pairs []core.Pair
		st    core.Stats
		per   []core.Stats
		err   error
	)
	if shards > 1 {
		// The sharded entry point also surfaces the per-shard stats the
		// merge-stage balance table in -explain reports.
		pairs, st, per, err = core.ShardedJoinStats(ctx, d, u, opts)
	} else {
		pairs, st, err = core.JoinContext(ctx, d, u, opts)
	}
	if err != nil {
		// An interrupted run still flushes its artifacts — the partial
		// event log, trace and stats are exactly what a post-mortem needs.
		if st.Cancelled {
			fmt.Fprintf(os.Stderr, "simjoin: interrupted after %d pairs; flushing artifacts\n", st.Pairs)
			if ferr := flushArtifacts(oc, &st, reg, tr, opts.Events, eventsFile); ferr != nil {
				fmt.Fprintln(os.Stderr, "simjoin:", ferr)
			}
		}
		return err
	}
	fmt.Printf("pairs: %d in %v\n", len(pairs), time.Since(start).Round(time.Millisecond))
	fmt.Printf("stats: css-pruned=%d prob-pruned=%d candidates=%d (ratio %.4f) worlds=%d ged-calls=%d\n",
		st.CSSPruned, st.ProbPruned, st.Candidates, st.CandidateRatio(), st.WorldsChecked, st.GEDCalls)
	fmt.Printf("verdicts: exact=%d sampled=%d approx=%d undecided=%d (budget-fallbacks=%d deadline-hits=%d)\n",
		st.ExactPairs, st.SampledPairs, st.ApproxPairs, st.SkippedPairs, st.BudgetFallbacks, st.DeadlineHits)
	if len(st.PrunedBy) > 0 {
		fmt.Printf("pruned-by:")
		if len(st.BoundProfile) > 0 {
			// Deterministic chain order: the profile lists every bound at its
			// chain position, including bounds that pruned nothing.
			for _, bc := range st.BoundProfile {
				fmt.Printf(" %s=%d", bc.Bound, bc.Prunes)
			}
		} else {
			bounds := make([]string, 0, len(st.PrunedBy))
			for b := range st.PrunedBy {
				bounds = append(bounds, b)
			}
			sort.Strings(bounds)
			for _, b := range bounds {
				fmt.Printf(" %s=%d", b, st.PrunedBy[b])
			}
		}
		fmt.Println()
	}
	if st.QuarantinedPairs > 0 {
		fmt.Printf("quarantined: %d pairs\n", st.QuarantinedPairs)
		for _, q := range st.Quarantined {
			fmt.Printf("  pair (%d,%d): %s\n", q.Q, q.G, q.Reason)
		}
	}
	if oc.explain {
		fmt.Println()
		core.WriteExplain(os.Stdout, &st, reg.Snapshot())
		if len(per) > 0 {
			fmt.Println()
			core.WriteShardTable(os.Stdout, per)
		}
		if planCfg != nil {
			fmt.Println()
			core.WritePlanReport(os.Stdout, planCfg, &st)
		}
	}
	if err := flushArtifacts(oc, &st, reg, tr, opts.Events, eventsFile); err != nil {
		return err
	}
	for i, pr := range pairs {
		if i >= show {
			fmt.Printf("... and %d more\n", len(pairs)-show)
			break
		}
		fmt.Printf("[%d] SimP=%.3f ged=%d  %s\n", i+1, pr.SimP, pr.Distance, describe(pr))
	}
	return nil
}

// flushArtifacts writes every requested artifact — the event log tail, the
// stats snapshot, and the Chrome trace. It runs on both the success path
// and the interrupted path, so partial runs still leave evidence behind.
func flushArtifacts(oc obsConfig, st *core.Stats, reg *obs.Registry, tr *obs.Tracer, events *obs.EventLog, eventsFile *os.File) error {
	if events != nil {
		if err := events.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "event log: sink error: %v\n", err)
		}
		fmt.Fprintf(os.Stderr, "event log: %d/%d pairs sampled, %d events emitted, %d dropped\n",
			events.Sampled(), st.Pairs, events.Emitted(), events.Dropped())
		if eventsFile != nil {
			if err := eventsFile.Sync(); err != nil {
				return err
			}
		}
	}
	if oc.statsJSON != "" {
		if err := writeStatsJSON(oc.statsJSON, st, reg); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote stats snapshot to %s\n", oc.statsJSON)
	}
	if oc.traceOut != "" {
		if err := writeTrace(oc.traceOut, tr); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote Chrome trace to %s\n", oc.traceOut)
	}
	return nil
}

// writeStatsJSON saves the paper-facing Stats next to the full metrics
// snapshot (per-stage histograms, per-filter prune counters, GED metrics).
func writeStatsJSON(path string, st *core.Stats, reg *obs.Registry) error {
	doc := struct {
		Stats   *core.Stats  `json:"stats"`
		Metrics obs.Snapshot `json:"metrics"`
	}{Stats: st, Metrics: reg.Snapshot()}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTrace saves the recorded spans as Chrome trace_event JSON
// (loadable in chrome://tracing or Perfetto).
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
