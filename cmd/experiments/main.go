// Command experiments regenerates the paper's tables and figures. Each
// subcommand corresponds to one artifact of §7 / Appendix F (see DESIGN.md's
// experiment index):
//
//	experiments [-scale f] table2|table3|table4|table5
//	experiments [-scale f] fig9|fig10|fig11|fig12|fig13|fig14|fig15|fig17|fig18
//	experiments [-scale f] ablations
//	experiments [-scale f] all
//
// -scale multiplies workload sizes (1.0 = repository default; larger values
// approach the paper's scale at the cost of runtime).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"simjoin/internal/experiments"
	"simjoin/internal/metrics"
	"simjoin/internal/obs"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof/ on this address")
	flag.Parse()
	args := flag.Args()
	if len(args) != 1 {
		usage()
		os.Exit(2)
	}
	if *debugAddr != "" {
		reg := obs.New()
		tr := obs.NewTracer(obs.DefaultTraceCapacity)
		experiments.Observe(reg, tr)
		srv, err := obs.Serve(*debugAddr, reg, tr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug endpoint on http://%s/\n", srv.Addr)
	}
	s := experiments.Scale(*scale)
	if err := run(args[0], s); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: experiments [-scale f] <exp>
  table2   dataset statistics            table3  effect of GED threshold tau
  table4   Q/A systems comparison        table5  effect of match proportion phi
  fig9     precision/answers vs alpha    fig10   case study (pairs+templates)
  fig11    efficiency vs alpha (WebQ)    fig12   efficiency vs tau (ER)
  fig13    effect of group number (SF)   fig14   effect of |L(v)| (ER)
  fig15    filter comparison (AIDS)      fig17   correct pairs by #relations
  fig18    failure analysis              ablations  A1..A4
  shardscale  sharded vs single-engine join scaling
  all      everything above`)
}

func run(name string, s experiments.Scale) error {
	type tableExp struct {
		title string
		fn    func() (*metrics.Table, error)
	}
	exps := map[string]tableExp{
		"table2":     {"Table 2: dataset statistics", func() (*metrics.Table, error) { return experiments.Table2Datasets(s) }},
		"table3":     {"Table 3: effect of GED threshold tau (alpha=0.9)", func() (*metrics.Table, error) { return experiments.Table3EffectTau(s) }},
		"table4":     {"Table 4: Q/A results compared with other systems", func() (*metrics.Table, error) { return experiments.Table4QASystems(s) }},
		"table5":     {"Table 5: effect of matching proportion phi", func() (*metrics.Table, error) { return experiments.Table5MatchProportion(s) }},
		"fig9":       {"Fig 9: effect of similarity probability threshold alpha (tau=1)", func() (*metrics.Table, error) { return experiments.Fig9EffectAlpha(s) }},
		"fig11":      {"Fig 11: effect of alpha on efficiency (WebQ)", func() (*metrics.Table, error) { return experiments.Fig11AlphaEfficiency(s) }},
		"fig12":      {"Fig 12: effect of tau on efficiency (ER)", func() (*metrics.Table, error) { return experiments.Fig12TauEfficiency(s, 5) }},
		"fig13":      {"Fig 13: effect of group number GN (SF)", func() (*metrics.Table, error) { return experiments.Fig13GroupNumber(s) }},
		"fig14":      {"Fig 14: effect of |L(v)| (ER)", func() (*metrics.Table, error) { return experiments.Fig14LabelCount(s) }},
		"fig15":      {"Fig 15: comparison with existing filters (AIDS)", func() (*metrics.Table, error) { return experiments.Fig15FilterComparison(s, 5) }},
		"fig17":      {"Fig 17: proportion of correct pairs by relation count k", func() (*metrics.Table, error) { return experiments.Fig17RelationCount(s) }},
		"fig18":      {"Fig 18: failure analysis (tau=1)", func() (*metrics.Table, error) { return experiments.Fig18FailureAnalysis(s) }},
		"shardscale": {"Sharded join scaling (template workload)", func() (*metrics.Table, error) { return experiments.ShardScale(s) }},
	}

	printTable := func(title string, t *metrics.Table) error {
		fmt.Printf("== %s ==\n", title)
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		return nil
	}

	switch name {
	case "fig10":
		cases, err := experiments.Fig10CaseStudy(s, 5)
		if err != nil {
			return err
		}
		fmt.Println("== Fig 10/16: case study — similar pairs and generated templates ==")
		for i, c := range cases {
			fmt.Printf("--- pair %d ---\n%s\n", i+1, c)
		}
		fmt.Println()
		return nil
	case "ablations":
		return runAblations(s, printTable)
	case "all":
		for _, key := range []string{"table2", "table3", "fig9", "fig10", "fig11", "fig12",
			"fig13", "fig14", "fig15", "table4", "table5", "fig17", "fig18", "shardscale"} {
			if key == "fig10" {
				if err := run("fig10", s); err != nil {
					return err
				}
				continue
			}
			e := exps[key]
			t, err := e.fn()
			if err != nil {
				return fmt.Errorf("%s: %w", key, err)
			}
			if err := printTable(e.title, t); err != nil {
				return err
			}
		}
		return runAblations(s, printTable)
	default:
		e, ok := exps[name]
		if !ok {
			usage()
			return fmt.Errorf("unknown experiment %q", name)
		}
		t, err := e.fn()
		if err != nil {
			return err
		}
		return printTable(e.title, t)
	}
}

func runAblations(s experiments.Scale, printTable func(string, *metrics.Table) error) error {
	type abl struct {
		title string
		fn    func() (*metrics.Table, error)
	}
	for _, a := range []abl{
		{"Ablation A1: lower bound tightness", func() (*metrics.Table, error) { return experiments.AblationBoundTightness(s) }},
		{"Ablation A2: verification early exit", func() (*metrics.Table, error) { return experiments.AblationEarlyExit(s) }},
		{"Ablation A3: possible-world grouping policy", func() (*metrics.Table, error) { return experiments.AblationGroupingPolicy(s) }},
		{"Ablation A4: join parallelism", func() (*metrics.Table, error) {
			return experiments.AblationParallelism(s, []int{1, 2, runtime.GOMAXPROCS(0)})
		}},
		{"Ablation A5: edge-label uncertainty (reified join)", func() (*metrics.Table, error) { return experiments.AblationEdgeUncertainty(s) }},
		{"Ablation A6: total-probability bound", func() (*metrics.Table, error) { return experiments.AblationTotalProbabilityBound(s) }},
		{"Ablation A7: indexed join", func() (*metrics.Table, error) { return experiments.AblationIndexedJoin(s) }},
		{"Ablation A8: SPARQL engines (reference vs gstore signatures)", func() (*metrics.Table, error) { return experiments.AblationEngines(s) }},
	} {
		t, err := a.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", a.title, err)
		}
		if err := printTable(a.title, t); err != nil {
			return err
		}
	}
	return nil
}
