// Command rdfqa is the end-to-end template-based question answering system
// of §2.2: it generates the synthetic knowledge base, learns templates by
// joining the question and SPARQL workloads, and then answers questions —
// from -q flags, or interactively from stdin.
//
//	rdfqa -q "Which politician graduated from Grand Elm University?"
//	rdfqa -system ganswer        # compare with the direct-translation baseline
//	echo "Who wrote The Silent River?" | rdfqa
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"simjoin/internal/experiments"
	"simjoin/internal/obs"
	"simjoin/internal/qa"
	"simjoin/internal/template"
	"simjoin/internal/workload"
)

func main() {
	var (
		system    = flag.String("system", "template", "qa system: template|ganswer|deanna")
		question  = flag.String("q", "", "question to answer (default: read stdin)")
		minPhi    = flag.Float64("phi", 0.5, "minimum template matching proportion")
		scale     = flag.Float64("scale", 1.0, "training workload scale")
		verbose   = flag.Bool("v", false, "print the generated SPARQL")
		saveTmpls = flag.String("save", "", "write learned templates to this JSON file")
		loadTmpls = flag.String("load", "", "load templates from this JSON file instead of training")
		samples   = flag.Int("samples", 0, "print n sample questions answerable over the generated KB and exit")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof/ on this address")
	)
	flag.Parse()

	if *samples > 0 {
		cfg := workload.QALD3Config()
		w, err := workload.GenerateQA(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdfqa:", err)
			os.Exit(1)
		}
		for _, q := range w.HoldoutQuestions(1234, *samples, 0) {
			fmt.Println(q.Text)
		}
		return
	}

	var (
		reg *obs.Registry
		tr  *obs.Tracer
	)
	if *debugAddr != "" {
		reg = obs.New()
		tr = obs.NewTracer(obs.DefaultTraceCapacity)
		experiments.Observe(reg, tr)
		srv, err := obs.Serve(*debugAddr, reg, tr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdfqa:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug endpoint on http://%s/\n", srv.Addr)
	}

	if err := run(*system, *question, *minPhi, experiments.Scale(*scale), *verbose, *saveTmpls, *loadTmpls, reg, tr); err != nil {
		fmt.Fprintln(os.Stderr, "rdfqa:", err)
		os.Exit(1)
	}
}

func run(system, question string, minPhi float64, scale experiments.Scale, verbose bool, saveTmpls, loadTmpls string, reg *obs.Registry, tr *obs.Tracer) error {
	fmt.Fprintln(os.Stderr, "generating knowledge base and workloads...")
	cfg := workload.QALD3Config()
	cfg.Questions = int(float64(cfg.Questions) * 2 * float64(scale))
	w, err := workload.GenerateQA(cfg)
	if err != nil {
		return err
	}
	if reg != nil {
		w.KB.Store.SetObs(reg)
	}

	var sys qa.System
	switch system {
	case "template":
		var store *template.Store
		if loadTmpls != "" {
			f, err := os.Open(loadTmpls)
			if err != nil {
				return err
			}
			store, err = template.LoadStore(f)
			f.Close()
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "loaded %d templates from %s\n", store.Len(), loadTmpls)
		} else {
			p := experiments.Prepare(w)
			fmt.Fprintln(os.Stderr, "learning templates via SimJ...")
			pairs, _, err := p.Join(experiments.DefaultJoinOptions())
			if err != nil {
				return err
			}
			store, _ = p.BuildTemplates(pairs)
			fmt.Fprintf(os.Stderr, "learned %d templates from %d pairs\n", store.Len(), len(pairs))
		}
		if saveTmpls != "" {
			f, err := os.Create(saveTmpls)
			if err != nil {
				return err
			}
			if err := store.Save(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "saved %d templates to %s\n", store.Len(), saveTmpls)
		}
		ts := &qa.TemplateSystem{Store: store, Lex: w.KB.Lexicon, KB: w.KB.Store, MinPhi: minPhi}
		sys = ts
		if verbose {
			for i, t := range store.Templates() {
				if i >= 10 {
					break
				}
				fmt.Fprintf(os.Stderr, "  tpl[%d] support=%d  %s\n", i, t.Support, t)
			}
		}
	case "ganswer":
		sys = &qa.GAnswerSystem{Lex: w.KB.Lexicon, KB: w.KB.Store}
	case "deanna":
		sys = &qa.DeannaSystem{Lex: w.KB.Lexicon, KB: w.KB.Store}
	default:
		return fmt.Errorf("unknown system %q", system)
	}
	sys = qa.Instrument(sys, reg, tr)

	answer := func(q string) {
		res, err := sys.Answer(q)
		if err != nil {
			fmt.Printf("no answer: %v\n", err)
			return
		}
		var vals []string
		seen := map[string]bool{}
		for _, b := range res {
			for _, v := range b {
				if !seen[v] {
					seen[v] = true
					vals = append(vals, v)
				}
			}
		}
		sort.Strings(vals)
		fmt.Printf("%s\n", strings.Join(vals, ", "))
	}

	if question != "" {
		answer(question)
		return nil
	}
	fmt.Fprintln(os.Stderr, "ready; enter questions (ctrl-D to quit)")
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		answer(line)
	}
	return sc.Err()
}
