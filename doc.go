// Package simjoin is a from-scratch Go reproduction of "How to Build
// Templates for RDF Question/Answering — An Uncertain Graph Similarity Join
// Approach" (SIGMOD 2015).
//
// The system joins a workload of SPARQL queries (certain graphs) with a
// workload of natural-language questions (uncertain graphs, ambiguous entity
// links modelled as per-vertex label distributions) under the predicate
// SimPτ(q,g) ≥ α, and turns matched pairs into question-answering templates.
//
// The implementation lives under internal/ (see DESIGN.md for the package
// map); cmd/ holds the executables; examples/ holds runnable walkthroughs;
// bench_test.go regenerates every table and figure of the paper's
// evaluation (EXPERIMENTS.md records paper-vs-measured).
package simjoin
