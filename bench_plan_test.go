package simjoin

// Planner benchmarks: the adaptive filter chain (internal/plan) against the
// static chain on the adversarial workload built to punish static ordering
// (internal/workload/adversarial.go — the chain's six leading baseline
// bounds prune nothing there, only the trailing css bound decides pairs),
// plus an ER pair pinning that adaptivity stays within noise on a workload
// where the default order is already right. scripts/bench_plan.sh publishes
// these as BENCH_plan.json; benchgate gates them in CI.

import (
	"testing"

	"simjoin/internal/core"
	"simjoin/internal/filter"
	"simjoin/internal/plan"
	"simjoin/internal/workload"
)

// advPlanChain fronts every blind baseline bound ahead of the one bound that
// decides — the worst static order for the adversarial workload.
const advPlanChain = "count,lm,cstar,path-gram,pars,segos,css"

func advPlanOptions(b *testing.B) core.Options {
	chain, err := filter.ParseChain(advPlanChain)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Tau = 2
	opts.Alpha = 0.5
	opts.Mode = core.ModeCSSOnly
	opts.FilterChain = chain
	// The benchmark measures pruning cost, not verification: with every
	// vertex uncertain, css survivors (the same-family quarter of the cross
	// product) would drown chain time in world enumeration. A one-world
	// budget with the legacy cliff drops every survivor straight into
	// SkippedPairs, identically for the static and adaptive runs.
	opts.MaxWorlds = 1
	opts.Fallback = core.FallbackNone
	return opts
}

func BenchmarkJoinPlanStatic(b *testing.B) {
	d, u := workload.Adversarial(workload.DefaultAdversarialConfig())
	opts := advPlanOptions(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Join(d, u, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinPlanAdaptive(b *testing.B) {
	d, u := workload.Adversarial(workload.DefaultAdversarialConfig())
	opts := advPlanOptions(b)
	opts.Planner = plan.AutoChain()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Join(d, u, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// The ER pair: the default chain is already well ordered here, so the
// adaptive controller's only effect is its measurement overhead (the warm-up
// epoch and every SampleEvery-th pair run the full chain without
// short-circuiting, to keep the cost model honest). Gating both keeps that
// overhead bounded. Count is sized so the workload's 1600 pairs amortize the
// 256-pair warm-up instead of sitting entirely inside it.
func BenchmarkJoinPlanER(b *testing.B) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = 40
	d, u := workload.ER(cfg)
	opts := core.DefaultOptions()
	opts.Tau = 2
	opts.Alpha = 0.5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Join(d, u, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinPlanERAdaptive(b *testing.B) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = 40
	d, u := workload.ER(cfg)
	opts := core.DefaultOptions()
	opts.Tau = 2
	opts.Alpha = 0.5
	opts.Planner = plan.AutoChain()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Join(d, u, opts); err != nil {
			b.Fatal(err)
		}
	}
}
