module simjoin

go 1.22
