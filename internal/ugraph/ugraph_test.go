package ugraph

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"simjoin/internal/graph"
)

// paperG2 builds the uncertain graph g2 of Fig. 4(b): ?x -type-> Politician,
// ?x -graduatedFrom-> v3 where v3 is {University:0.8, Company:0.2}.
func paperG2() *Graph {
	g := New(4)
	x := g.AddVertex(Label{Name: "?x", P: 1})
	pol := g.AddVertex(Label{Name: "Politician", P: 1})
	cit := g.AddVertex(Label{Name: "University", P: 0.8}, Label{Name: "Company", P: 0.2})
	g.MustAddEdge(x, pol, "type")
	g.MustAddEdge(x, cit, "graduatedFrom")
	return g
}

func TestValidateAndBasics(t *testing.T) {
	g := paperG2()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 || g.Size() != 5 {
		t.Fatalf("sizes wrong: |V|=%d |E|=%d", g.NumVertices(), g.NumEdges())
	}
	if n, ok := g.WorldCount(); !ok || n != 2 {
		t.Fatalf("WorldCount = %d,%v, want 2,true", n, ok)
	}
	if f := g.WorldCountFloat(); f != 2 {
		t.Fatalf("WorldCountFloat = %v, want 2", f)
	}
	if m := g.TotalMass(); math.Abs(m-1) > 1e-12 {
		t.Fatalf("TotalMass = %v, want 1", m)
	}
	uv := g.UncertainVertices()
	if len(uv) != 1 || uv[2-2] != 2 {
		t.Fatalf("UncertainVertices = %v, want [2]", uv)
	}
}

func TestLabelsSortedByProbability(t *testing.T) {
	g := New(1)
	g.AddVertex(Label{Name: "low", P: 0.1}, Label{Name: "high", P: 0.9})
	ls := g.Labels(0)
	if ls[0].Name != "high" || ls[1].Name != "low" {
		t.Fatalf("labels not sorted by probability: %v", ls)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []func() *Graph{
		func() *Graph { // no labels
			g := New(1)
			g.vertices = append(g.vertices, nil)
			g.out = append(g.out, nil)
			return g
		},
		func() *Graph { // probability out of range
			g := New(1)
			g.AddVertex(Label{Name: "A", P: 1.5})
			return g
		},
		func() *Graph { // zero probability
			g := New(1)
			g.AddVertex(Label{Name: "A", P: 0})
			return g
		},
		func() *Graph { // sum > 1
			g := New(1)
			g.AddVertex(Label{Name: "A", P: 0.7}, Label{Name: "B", P: 0.7})
			return g
		},
		func() *Graph { // duplicate label
			g := New(1)
			g.AddVertex(Label{Name: "A", P: 0.5}, Label{Name: "A", P: 0.5})
			return g
		},
	}
	for i, mk := range cases {
		if err := mk().Validate(); err == nil {
			t.Errorf("case %d: invalid graph accepted", i)
		}
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(2)
	a := g.AddVertex(Label{Name: "A", P: 1})
	b := g.AddVertex(Label{Name: "B", P: 1})
	if err := g.AddEdge(a, a, "x"); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(a, 7, "x"); err == nil {
		t.Error("range error accepted")
	}
	if err := g.AddEdge(a, b, "x"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(a, b, "x"); err == nil {
		t.Error("duplicate accepted")
	}
}

func TestWorldsEnumeration(t *testing.T) {
	g := paperG2()
	type world struct {
		label string
		p     float64
	}
	var got []world
	g.Worlds(func(w *graph.Graph, p float64) bool {
		if err := w.Validate(); err != nil {
			t.Fatalf("world invalid: %v", err)
		}
		got = append(got, world{w.VertexLabel(2), p})
		return true
	})
	if len(got) != 2 {
		t.Fatalf("got %d worlds, want 2", len(got))
	}
	// Highest-probability label first at each vertex.
	if got[0].label != "University" || math.Abs(got[0].p-0.8) > 1e-12 {
		t.Errorf("world 0 = %v, want University/0.8", got[0])
	}
	if got[1].label != "Company" || math.Abs(got[1].p-0.2) > 1e-12 {
		t.Errorf("world 1 = %v, want Company/0.2", got[1])
	}
}

func TestWorldsEarlyStop(t *testing.T) {
	g := paperG2()
	n := 0
	g.Worlds(func(*graph.Graph, float64) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d worlds, want 1", n)
	}
}

func TestWorldProbabilitiesSumToMass(t *testing.T) {
	f := func(seed int64) bool {
		g := randomUncertain(rand.New(rand.NewSource(seed)), 4, 3, 3)
		sum := 0.0
		g.Worlds(func(_ *graph.Graph, p float64) bool { sum += p; return true })
		return math.Abs(sum-g.TotalMass()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMostLikelyWorld(t *testing.T) {
	g := paperG2()
	w, p := g.MostLikelyWorld()
	if w.VertexLabel(2) != "University" || math.Abs(p-0.8) > 1e-12 {
		t.Fatalf("MostLikelyWorld = %s p=%v", w.VertexLabel(2), p)
	}
	if w.NumEdges() != 2 {
		t.Fatal("edges not carried into world")
	}
}

func TestFromCertainRoundTrip(t *testing.T) {
	c := graph.New(2)
	c.AddVertex("A")
	c.AddVertex("?x")
	c.MustAddEdge(0, 1, "p")
	u := FromCertain(c)
	if n, _ := u.WorldCount(); n != 1 {
		t.Fatalf("certain lift has %d worlds", n)
	}
	w, p := u.MostLikelyWorld()
	if p != 1 || !w.Equal(c) {
		t.Fatal("FromCertain world differs from source")
	}
}

func TestConditionMass(t *testing.T) {
	g := paperG2()
	c, mass := g.Condition(2, []int{0}) // keep University only
	if math.Abs(mass-0.8) > 1e-12 {
		t.Fatalf("mass = %v, want 0.8", mass)
	}
	if len(c.Labels(2)) != 1 || c.Labels(2)[0].Name != "University" {
		t.Fatalf("conditioned labels = %v", c.Labels(2))
	}
	if math.Abs(c.TotalMass()-0.8) > 1e-12 {
		t.Fatalf("conditioned TotalMass = %v, want 0.8", c.TotalMass())
	}
	// Original untouched.
	if len(g.Labels(2)) != 2 {
		t.Fatal("Condition mutated the original")
	}
}

func TestGroupsCoverAllWorlds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomUncertain(rng, 5, 4, 3)
		k := 1 + rng.Intn(6)
		groups := g.PartitionWorlds(k, nil)
		if len(groups) > k {
			return false
		}
		total := 0.0
		worlds := 0.0
		for _, gr := range groups {
			total += gr.Mass
			worlds += gr.G.WorldCountFloat()
			// Mass consistency within each group.
			if math.Abs(gr.Mass-gr.G.TotalMass()) > 1e-9 {
				return false
			}
		}
		return math.Abs(total-g.TotalMass()) < 1e-9 && worlds == g.WorldCountFloat()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitUnsplittable(t *testing.T) {
	c := graph.New(1)
	c.AddVertex("A")
	g := FromCertain(c)
	if v := g.SplitVertex(); v != -1 {
		t.Fatalf("SplitVertex on certain graph = %d, want -1", v)
	}
	_, _, ok := g.AsGroup().Split()
	if ok {
		t.Fatal("certain graph split succeeded")
	}
	groups := g.PartitionWorlds(5, nil)
	if len(groups) != 1 {
		t.Fatalf("PartitionWorlds on certain graph produced %d groups", len(groups))
	}
}

func TestSplitVertexPrefersHighMassThenMoreLabels(t *testing.T) {
	g := New(3)
	g.AddVertex(Label{Name: "A", P: 0.5}, Label{Name: "B", P: 0.2})                           // mass 0.7
	g.AddVertex(Label{Name: "C", P: 0.5}, Label{Name: "D", P: 0.3}, Label{Name: "E", P: 0.2}) // mass 1.0
	g.AddVertex(Label{Name: "F", P: 1})
	if v := g.SplitVertex(); v != 1 {
		t.Fatalf("SplitVertex = %d, want 1 (highest mass)", v)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := paperG2()
	c := g.Clone()
	c.vertices[0] = []Label{{Name: "Z", P: 1}}
	c.ids[0] = []graph.LabelID{graph.InternLabel("Z")}
	if g.Labels(0)[0].Name != "?x" {
		t.Fatal("clone shares vertex storage")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
}

func TestString(t *testing.T) {
	s := paperG2().String()
	for _, sub := range []string{"|V|=3", "University:0.80", "0-type->1"} {
		if !strings.Contains(s, sub) {
			t.Errorf("String() missing %q in %q", sub, s)
		}
	}
}

// randomUncertain builds a random uncertain graph with n vertices, ~e edges,
// and up to maxLabels labels per vertex.
func randomUncertain(rng *rand.Rand, n, e, maxLabels int) *Graph {
	names := []string{"A", "B", "C", "D", "E"}
	g := New(n)
	for i := 0; i < n; i++ {
		k := 1 + rng.Intn(maxLabels)
		if k > len(names) {
			k = len(names)
		}
		perm := rng.Perm(len(names))[:k]
		rest := 1.0
		var ls []Label
		for j, pi := range perm {
			p := rest
			if j < k-1 {
				p = rest * (0.3 + 0.5*rng.Float64())
			}
			if p <= 0 {
				p = 1e-6
			}
			ls = append(ls, Label{Name: names[pi], P: p})
			rest -= p
		}
		g.AddVertex(ls...)
	}
	for tries := 0; tries < e*3 && g.NumEdges() < e; tries++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if err := g.AddEdge(u, v, "p"); err != nil {
			continue
		}
	}
	return g
}
