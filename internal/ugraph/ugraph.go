// Package ugraph implements the paper's uncertain graph model (Def. 2):
// directed graphs whose vertices carry one or more mutually exclusive labels,
// each with an existence probability, and whose edges carry certain labels.
//
// A possible world (Def. 3) materialises one label per vertex; its appearance
// probability is the product of the chosen labels' probabilities. Packages
// filter and core consume the model for pruning and for exact similarity-
// probability verification; conditioning and splitting support the
// possible-world groups of §6.2.
package ugraph

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"simjoin/internal/fault"
	"simjoin/internal/graph"
)

// ProbEpsilon absorbs floating-point drift when validating that per-vertex
// label probabilities sum to at most 1.
const ProbEpsilon = 1e-9

// Label is one possible vertex label with its existence probability.
type Label struct {
	Name string
	P    float64
}

// Graph is an uncertain directed labeled graph. The zero value is an empty
// graph ready to use.
//
// ids mirrors vertices (ids[v][i] == graph.InternLabel(vertices[v][i].Name))
// and edgeIDs mirrors edges, so world materialisation and the filter kernels
// work on dictionary ids without re-interning strings.
type Graph struct {
	vertices [][]Label
	ids      [][]graph.LabelID
	edges    []graph.Edge
	edgeIDs  []graph.LabelID
	out      []map[int]int
}

// New returns an empty uncertain graph with capacity hints for n vertices.
func New(n int) *Graph {
	return &Graph{
		vertices: make([][]Label, 0, n),
		out:      make([]map[int]int, 0, n),
	}
}

// FromCertain lifts a certain graph into the uncertain model: every vertex
// gets its single label with probability 1.
func FromCertain(g *graph.Graph) *Graph {
	u := New(g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		u.AddVertex(Label{Name: g.VertexLabel(v), P: 1})
	}
	for _, e := range g.Edges() {
		u.MustAddEdge(e.From, e.To, e.Label)
	}
	return u
}

// AddVertex appends a vertex with the given candidate labels and returns its
// index. Labels are stored in non-increasing probability order.
func (g *Graph) AddVertex(labels ...Label) int {
	ls := append([]Label(nil), labels...)
	sort.SliceStable(ls, func(i, j int) bool { return ls[i].P > ls[j].P })
	ids := make([]graph.LabelID, len(ls))
	for i, l := range ls {
		ids[i] = graph.InternLabel(l.Name)
	}
	g.vertices = append(g.vertices, ls)
	g.ids = append(g.ids, ids)
	g.out = append(g.out, nil)
	return len(g.vertices) - 1
}

// AddEdge inserts a directed certain-labeled edge.
func (g *Graph) AddEdge(u, v int, label string) error {
	return g.addEdgeID(u, v, label, graph.InternLabel(label))
}

// MustAddEdge is AddEdge that panics on error.
func (g *Graph) MustAddEdge(u, v int, label string) {
	if err := g.AddEdge(u, v, label); err != nil {
		panic(err)
	}
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.vertices) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Size returns |V| + |E|.
func (g *Graph) Size() int { return len(g.vertices) + len(g.edges) }

// Labels returns the candidate labels of vertex v (do not modify).
func (g *Graph) Labels(v int) []Label { return g.vertices[v] }

// LabelIDs returns the dictionary ids of vertex v's candidate labels,
// indexed like Labels (do not modify).
func (g *Graph) LabelIDs(v int) []graph.LabelID { return g.ids[v] }

// Edges returns the edge list (do not modify).
func (g *Graph) Edges() []graph.Edge { return g.edges }

// EdgeLabelIDs returns the per-edge label ids, indexed like Edges (do not
// modify).
func (g *Graph) EdgeLabelIDs() []graph.LabelID { return g.edgeIDs }

// Degrees returns total (in+out) vertex degrees.
func (g *Graph) Degrees() []int {
	d := make([]int, len(g.vertices))
	for _, e := range g.edges {
		d[e.From]++
		d[e.To]++
	}
	return d
}

// DegreeSequence returns total degrees in non-increasing order.
func (g *Graph) DegreeSequence() []int {
	d := g.Degrees()
	sort.Sort(sort.Reverse(sort.IntSlice(d)))
	return d
}

// EdgeLabelMultiset returns the multiset of concrete edge labels and the
// count of wildcard edges.
func (g *Graph) EdgeLabelMultiset() (labels map[string]int, wildcards int) {
	labels = make(map[string]int, len(g.edges))
	for _, e := range g.edges {
		if graph.IsWildcard(e.Label) {
			wildcards++
		} else {
			labels[e.Label]++
		}
	}
	return labels, wildcards
}

// EdgeLabelIDMultiset returns the sorted (id, count) vector of concrete edge
// labels plus the count of wildcard edges — the integer counterpart of
// EdgeLabelMultiset.
func (g *Graph) EdgeLabelIDMultiset() (labels []graph.LabelCount, wildcards int) {
	return graph.CountLabelIDs(append([]graph.LabelID(nil), g.edgeIDs...))
}

// UncertainVertices returns the indices of vertices with more than one
// candidate label.
func (g *Graph) UncertainVertices() []int {
	var out []int
	for v, ls := range g.vertices {
		if len(ls) > 1 {
			out = append(out, v)
		}
	}
	return out
}

// WorldCount returns the number of possible worlds. The boolean is false when
// the count overflows int64 (the float estimate is still returned via
// WorldCountFloat).
func (g *Graph) WorldCount() (int64, bool) {
	n := int64(1)
	for _, ls := range g.vertices {
		if len(ls) == 0 {
			return 0, true
		}
		if n > math.MaxInt64/int64(len(ls)) {
			return 0, false
		}
		n *= int64(len(ls))
	}
	return n, true
}

// WorldCountFloat returns the number of possible worlds as a float64.
func (g *Graph) WorldCountFloat() float64 {
	n := 1.0
	for _, ls := range g.vertices {
		n *= float64(len(ls))
	}
	return n
}

// TotalMass returns the probability mass covered by all possible worlds:
// the product over vertices of the sum of label probabilities. It is 1 when
// every vertex's distribution is complete.
func (g *Graph) TotalMass() float64 {
	mass := 1.0
	for _, ls := range g.vertices {
		s := 0.0
		for _, l := range ls {
			s += l.P
		}
		mass *= s
	}
	return mass
}

// Validate checks structural consistency and the probability axioms of
// Def. 2: every vertex has at least one label, each probability lies in
// (0,1], and per-vertex probabilities sum to at most 1.
func (g *Graph) Validate() error {
	if len(g.out) != len(g.vertices) {
		return fmt.Errorf("ugraph: adjacency length %d != vertex count %d", len(g.out), len(g.vertices))
	}
	if len(g.ids) != len(g.vertices) {
		return fmt.Errorf("ugraph: label id length %d != vertex count %d", len(g.ids), len(g.vertices))
	}
	if len(g.edgeIDs) != len(g.edges) {
		return fmt.Errorf("ugraph: edge id length %d != edge count %d", len(g.edgeIDs), len(g.edges))
	}
	for v, ids := range g.ids {
		if len(ids) != len(g.vertices[v]) {
			return fmt.Errorf("ugraph: vertex %d has %d label ids for %d labels", v, len(ids), len(g.vertices[v]))
		}
		for i, id := range ids {
			if id != graph.InternLabel(g.vertices[v][i].Name) {
				return fmt.Errorf("ugraph: vertex %d label %q has stale id %d", v, g.vertices[v][i].Name, id)
			}
		}
	}
	for v, ls := range g.vertices {
		if len(ls) == 0 {
			return fmt.Errorf("ugraph: vertex %d has no labels", v)
		}
		sum := 0.0
		seen := make(map[string]bool, len(ls))
		for _, l := range ls {
			if l.P <= 0 || l.P > 1+ProbEpsilon {
				return fmt.Errorf("ugraph: vertex %d label %q has probability %v outside (0,1]", v, l.Name, l.P)
			}
			if seen[l.Name] {
				return fmt.Errorf("ugraph: vertex %d has duplicate label %q", v, l.Name)
			}
			seen[l.Name] = true
			sum += l.P
		}
		if sum > 1+ProbEpsilon {
			return fmt.Errorf("ugraph: vertex %d label probabilities sum to %v > 1", v, sum)
		}
	}
	seenE := make(map[[2]int]bool, len(g.edges))
	for i, e := range g.edges {
		if e.From < 0 || e.From >= len(g.vertices) || e.To < 0 || e.To >= len(g.vertices) {
			return fmt.Errorf("ugraph: edge %d endpoints out of range", i)
		}
		k := [2]int{e.From, e.To}
		if seenE[k] {
			return fmt.Errorf("ugraph: duplicate edge (%d,%d)", e.From, e.To)
		}
		seenE[k] = true
	}
	return nil
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := New(len(g.vertices))
	for v, ls := range g.vertices {
		c.vertices = append(c.vertices, append([]Label(nil), ls...))
		c.ids = append(c.ids, append([]graph.LabelID(nil), g.ids[v]...))
		c.out = append(c.out, nil)
	}
	for i, e := range g.edges {
		if err := c.addEdgeID(e.From, e.To, e.Label, g.edgeIDs[i]); err != nil {
			panic(err)
		}
	}
	return c
}

// addEdgeID is AddEdge with the label id already known.
func (g *Graph) addEdgeID(u, v int, label string, id graph.LabelID) error {
	if u < 0 || u >= len(g.vertices) || v < 0 || v >= len(g.vertices) {
		return fmt.Errorf("ugraph: edge (%d,%d) endpoint out of range [0,%d)", u, v, len(g.vertices))
	}
	if u == v {
		return fmt.Errorf("ugraph: self-loop on vertex %d not supported", u)
	}
	if _, dup := g.out[u][v]; dup {
		return fmt.Errorf("ugraph: duplicate edge (%d,%d)", u, v)
	}
	if g.out[u] == nil {
		g.out[u] = make(map[int]int)
	}
	g.out[u][v] = len(g.edges)
	g.edges = append(g.edges, graph.Edge{From: u, To: v, Label: label})
	g.edgeIDs = append(g.edgeIDs, id)
	return nil
}

// Worlds enumerates every possible world in deterministic order, invoking fn
// with the materialised certain graph and its appearance probability. The
// same *graph.Graph is reused across invocations; clone it to retain it.
// Enumeration stops early when fn returns false.
func (g *Graph) Worlds(fn func(world *graph.Graph, p float64) bool) {
	var s WorldScratch
	g.WorldsScratch(&s, fn)
}

// WorldScratch holds the reusable buffers of a Worlds enumeration: the
// materialised world graph and the mixed-radix choice counter. The zero
// value is ready to use; reusing one scratch across many WorldsScratch
// calls (e.g. per join worker) makes steady-state enumeration allocation-
// free. A WorldScratch must not be shared between goroutines.
type WorldScratch struct {
	w      *graph.Graph
	choice []int
}

// WorldsScratch is Worlds reusing caller-provided scratch buffers.
//
// The "ugraph.worlds" failpoint fires once per enumeration; since this
// API has no error return, injected errors escalate to panics (contained by
// the join's per-pair quarantine).
func (g *Graph) WorldsScratch(s *WorldScratch, fn func(world *graph.Graph, p float64) bool) {
	fault.MustHit("ugraph.worlds", "")
	n := len(g.vertices)
	if s.w == nil {
		s.w = graph.New(n)
	}
	w := s.w
	w.Reset()
	for v := 0; v < n; v++ {
		w.AddVertexID(g.vertices[v][0].Name, g.ids[v][0])
	}
	for i, e := range g.edges {
		w.MustAddEdgeID(e.From, e.To, e.Label, g.edgeIDs[i])
	}
	if cap(s.choice) < n {
		s.choice = make([]int, n)
	}
	choice := s.choice[:n]
	for i := range choice {
		choice[i] = 0
	}
	for {
		p := 1.0
		for v := 0; v < n; v++ {
			c := choice[v]
			l := g.vertices[v][c]
			w.SetVertexLabelID(v, l.Name, g.ids[v][c])
			p *= l.P
		}
		if !fn(w, p) {
			return
		}
		// Advance the mixed-radix counter.
		v := n - 1
		for ; v >= 0; v-- {
			choice[v]++
			if choice[v] < len(g.vertices[v]) {
				break
			}
			choice[v] = 0
		}
		if v < 0 {
			return
		}
	}
}

// MostLikelyWorld materialises the world choosing the highest-probability
// label at every vertex, together with its appearance probability.
func (g *Graph) MostLikelyWorld() (*graph.Graph, float64) {
	w := graph.New(len(g.vertices))
	p := 1.0
	for v, ls := range g.vertices {
		w.AddVertexID(ls[0].Name, g.ids[v][0])
		p *= ls[0].P
	}
	for i, e := range g.edges {
		w.MustAddEdgeID(e.From, e.To, e.Label, g.edgeIDs[i])
	}
	return w, p
}

// Condition returns a copy of g whose vertex v is restricted to the given
// subset of its label indices. Probabilities remain unnormalised, so the
// possible worlds of the conditioned graph keep their original appearance
// probabilities: they sum to the returned mass rather than 1.
//
// Conditioning only rewrites one vertex's candidate set, so the result
// shares the edge list, adjacency maps and the other vertices' label slices
// with g (full-capacity slicing makes stray appends copy). Neither graph may
// be structurally modified afterwards — all in-repo producers of conditioned
// graphs (possible-world grouping, the total-probability bound) treat them
// as immutable; use Clone for an independent deep copy.
func (g *Graph) Condition(v int, labelIdx []int) (*Graph, float64) {
	n := len(g.vertices)
	c := &Graph{
		vertices: make([][]Label, n),
		ids:      make([][]graph.LabelID, n),
		edges:    g.edges[:len(g.edges):len(g.edges)],
		edgeIDs:  g.edgeIDs[:len(g.edgeIDs):len(g.edgeIDs)],
		out:      g.out[:len(g.out):len(g.out)],
	}
	copy(c.vertices, g.vertices)
	copy(c.ids, g.ids)
	kept := make([]Label, 0, len(labelIdx))
	keptIDs := make([]graph.LabelID, 0, len(labelIdx))
	mass := 0.0
	for _, i := range labelIdx {
		kept = append(kept, g.vertices[v][i])
		keptIDs = append(keptIDs, g.ids[v][i])
		mass += g.vertices[v][i].P
	}
	c.vertices[v] = kept
	c.ids[v] = keptIDs
	return c, mass * g.TotalMass() / sumP(g.vertices[v])
}

func sumP(ls []Label) float64 {
	s := 0.0
	for _, l := range ls {
		s += l.P
	}
	return s
}

// String renders the uncertain graph compactly.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ugraph{|V|=%d |E|=%d", g.NumVertices(), g.NumEdges())
	for v, ls := range g.vertices {
		fmt.Fprintf(&b, " v%d:[", v)
		for i, l := range ls {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s:%.2f", l.Name, l.P)
		}
		b.WriteString("]")
	}
	es := append([]graph.Edge(nil), g.edges...)
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		return es[i].To < es[j].To
	})
	for _, e := range es {
		fmt.Fprintf(&b, " %d-%s->%d", e.From, e.Label, e.To)
	}
	b.WriteString("}")
	return b.String()
}
