package ugraph

import (
	"container/heap"

	"simjoin/internal/fault"
	"simjoin/internal/graph"
)

// TopWorlds enumerates up to m distinct possible worlds in non-increasing
// appearance-probability order, invoking fn with the materialised certain
// graph and its probability; enumeration stops early when fn returns false.
// Like Worlds, the same *graph.Graph is reused across invocations.
//
// Unlike Worlds, which walks the full mixed-radix space, TopWorlds runs a
// best-first search over label-choice vectors and visits only the worlds it
// yields (plus their O(|V|) frontier), so the m most probable worlds of a
// graph with billions of worlds cost O(m·|V|·log(m·|V|)). The verdict
// ladder's approximate rung relies on this: when exact enumeration and
// sampling both fail, bounding SimP from the heaviest worlds needs exactly
// this greedy order.
//
// The order is deterministic; ties on probability break towards the
// lexicographically smaller choice vector (i.e. higher-ranked labels first).
func (g *Graph) TopWorlds(m int, fn func(world *graph.Graph, p float64) bool) {
	fault.MustHit("ugraph.worlds", "")
	n := len(g.vertices)
	if m <= 0 {
		return
	}
	w := graph.New(n)
	for v := 0; v < n; v++ {
		if len(g.vertices[v]) == 0 {
			return // no worlds
		}
		w.AddVertexID(g.vertices[v][0].Name, g.ids[v][0])
	}
	for i, e := range g.edges {
		w.MustAddEdgeID(e.From, e.To, e.Label, g.edgeIDs[i])
	}

	// Best-first search. Each node is a choice vector; the children of a
	// node increment one position at or after its last nonzero position, so
	// every vector is generated exactly once (its parent is itself with the
	// last nonzero choice decremented). Labels are stored per vertex in
	// non-increasing probability order, hence a child's probability never
	// exceeds its parent's and the heap pops worlds heaviest-first.
	root := &topWorldNode{choice: make([]int, n), p: 1}
	for v := 0; v < n; v++ {
		root.p *= g.vertices[v][0].P
	}
	h := topWorldHeap{root}
	for len(h) > 0 && m > 0 {
		node := heap.Pop(&h).(*topWorldNode)
		for v := 0; v < n; v++ {
			c := node.choice[v]
			w.SetVertexLabelID(v, g.vertices[v][c].Name, g.ids[v][c])
		}
		m--
		if !fn(w, node.p) {
			return
		}
		for v := node.last; v < n; v++ {
			c := node.choice[v]
			if c+1 >= len(g.vertices[v]) {
				continue
			}
			child := &topWorldNode{
				choice: append([]int(nil), node.choice...),
				p:      node.p / g.vertices[v][c].P * g.vertices[v][c+1].P,
				last:   v,
			}
			child.choice[v] = c + 1
			heap.Push(&h, child)
		}
	}
}

// topWorldNode is one frontier entry of the TopWorlds search.
type topWorldNode struct {
	choice []int
	p      float64
	last   int // index of the last incremented vertex; children increment >= last
}

type topWorldHeap []*topWorldNode

func (h topWorldHeap) Len() int { return len(h) }
func (h topWorldHeap) Less(i, j int) bool {
	if h[i].p != h[j].p {
		return h[i].p > h[j].p
	}
	// Deterministic tie-break: lexicographically smaller choice vector first.
	for k := range h[i].choice {
		if h[i].choice[k] != h[j].choice[k] {
			return h[i].choice[k] < h[j].choice[k]
		}
	}
	return false
}
func (h topWorldHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *topWorldHeap) Push(x interface{}) { *h = append(*h, x.(*topWorldNode)) }
func (h *topWorldHeap) Pop() interface{} {
	old := *h
	n := len(old)
	nd := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return nd
}
