package ugraph

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"simjoin/internal/graph"
)

// worldKey renders a world's label assignment for set comparison.
func worldKey(w *graph.Graph) string {
	s := ""
	for v := 0; v < w.NumVertices(); v++ {
		s += w.VertexLabel(v) + "|"
	}
	return s
}

// TestTopWorldsMatchesSortedEnumeration cross-checks TopWorlds against the
// exhaustive enumeration sorted by probability: same prefix of worlds, same
// probabilities, non-increasing order.
func TestTopWorldsMatchesSortedEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		g := randomUncertain(rng, 2+rng.Intn(5), rng.Intn(5), 3)
		type wp struct {
			key string
			p   float64
		}
		var all []wp
		g.Worlds(func(w *graph.Graph, p float64) bool {
			all = append(all, wp{worldKey(w), p})
			return true
		})
		sort.SliceStable(all, func(i, j int) bool { return all[i].p > all[j].p })

		for _, m := range []int{1, 3, len(all), len(all) + 10} {
			var got []wp
			prev := math.Inf(1)
			g.TopWorlds(m, func(w *graph.Graph, p float64) bool {
				if p > prev+1e-12 {
					t.Fatalf("trial %d m=%d: probability increased %v -> %v", trial, m, prev, p)
				}
				prev = p
				got = append(got, wp{worldKey(w), p})
				return true
			})
			want := m
			if want > len(all) {
				want = len(all)
			}
			if len(got) != want {
				t.Fatalf("trial %d m=%d: got %d worlds, want %d", trial, m, len(got), want)
			}
			// Probabilities must match the sorted exhaustive prefix exactly
			// (the worlds themselves may permute within probability ties).
			for i := range got {
				if math.Abs(got[i].p-all[i].p) > 1e-12 {
					t.Fatalf("trial %d m=%d world %d: p=%v, sorted exhaustive has %v",
						trial, m, i, got[i].p, all[i].p)
				}
			}
			// No duplicates.
			seen := map[string]bool{}
			for _, w := range got {
				if seen[w.key] {
					t.Fatalf("trial %d m=%d: duplicate world %s", trial, m, w.key)
				}
				seen[w.key] = true
			}
		}
	}
}

func TestTopWorldsEarlyStopAndEdges(t *testing.T) {
	g := paperG2()
	calls := 0
	g.TopWorlds(10, func(w *graph.Graph, p float64) bool {
		calls++
		if w.NumEdges() != g.NumEdges() {
			t.Fatalf("world has %d edges, want %d", w.NumEdges(), g.NumEdges())
		}
		return false
	})
	if calls != 1 {
		t.Fatalf("early stop ignored: %d calls", calls)
	}
	// First world is the most likely one.
	g.TopWorlds(1, func(w *graph.Graph, p float64) bool {
		if w.VertexLabel(2) != "University" || math.Abs(p-0.8) > 1e-12 {
			t.Fatalf("top world label %q p=%v, want University 0.8", w.VertexLabel(2), p)
		}
		return true
	})
	// m <= 0 yields nothing.
	g.TopWorlds(0, func(*graph.Graph, float64) bool {
		t.Fatal("m=0 enumerated a world")
		return false
	})
}

func TestTopWorldsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomUncertain(rng, 6, 5, 3)
	run := func() []string {
		var keys []string
		g.TopWorlds(20, func(w *graph.Graph, p float64) bool {
			keys = append(keys, worldKey(w))
			return true
		})
		return keys
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("length differs across runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs at %d: %s vs %s", i, a[i], b[i])
		}
	}
}
