package ugraph

// Group is one possible-world group (PWG, §6.2): a conditioned uncertain
// graph covering a disjoint subset of the original graph's possible worlds.
// Probabilities inside the group stay unnormalised, so world probabilities
// within the group sum to Mass and contributions to SimPτ add up directly
// across groups.
type Group struct {
	G    *Graph
	Mass float64
}

// AsGroup wraps the whole graph as a single group covering all worlds.
func (g *Graph) AsGroup() Group {
	return Group{G: g, Mass: g.TotalMass()}
}

// SplitVertex selects the vertex whose uncertain labels should be split
// first, following the two principles of §6.2: prefer the vertex with the
// highest total existence probability among its uncertain labels, breaking
// ties by the larger number of possible labels. Vertices with a single label
// cannot be split; SplitVertex returns -1 when no vertex is splittable.
func (g *Graph) SplitVertex() int {
	best := -1
	bestMass := -1.0
	bestLabels := 0
	for v, ls := range g.vertices {
		if len(ls) < 2 {
			continue
		}
		mass := sumP(ls)
		if mass > bestMass || (mass == bestMass && len(ls) > bestLabels) {
			best, bestMass, bestLabels = v, mass, len(ls)
		}
	}
	return best
}

// Split divides one group into two by partitioning the labels of the chosen
// vertex into a most-probable half and the rest (labels are stored in
// non-increasing probability order, so taking a prefix balances the masses
// as evenly as a contiguous split can). It returns the two subgroups, or
// (g, nil) when the group cannot be split further.
func (gr Group) Split() (Group, Group, bool) {
	v := gr.G.SplitVertex()
	if v < 0 {
		return gr, Group{}, false
	}
	ls := gr.G.vertices[v]
	// Take the label prefix whose mass first reaches half of the vertex mass.
	total := sumP(ls)
	cut := 1
	acc := ls[0].P
	for cut < len(ls)-1 && acc < total/2 {
		acc += ls[cut].P
		cut++
	}
	left := indexRange(0, cut)
	right := indexRange(cut, len(ls))
	g1, m1 := gr.G.Condition(v, left)
	g2, m2 := gr.G.Condition(v, right)
	return Group{G: g1, Mass: m1}, Group{G: g2, Mass: m2}, true
}

func indexRange(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

// PartitionPolicy selects which group to split next in PartitionWorlds.
// Given the current groups it returns the index of the group to split, or a
// negative value to stop early. Implementations typically pick the group
// with the weakest pruning bound with respect to a query graph.
type PartitionPolicy func(groups []Group) int

// ByMass is the query-independent default policy: split the group with the
// largest probability mass (the group contributing the loosest probability
// bound, all else being equal).
func ByMass(groups []Group) int {
	best, bestMass := -1, -1.0
	for i, gr := range groups {
		if gr.G.SplitVertex() < 0 {
			continue
		}
		if gr.Mass > bestMass {
			best, bestMass = i, gr.Mass
		}
	}
	return best
}

// PartitionWorlds divides the graph's possible worlds into at most k disjoint
// groups (Algorithm 2's grouping step). The policy chooses the group to split
// at every round; splitting stops when k groups exist or nothing remains
// splittable. The union of the returned groups always covers exactly the
// original worlds.
func (g *Graph) PartitionWorlds(k int, policy PartitionPolicy) []Group {
	if policy == nil {
		policy = ByMass
	}
	groups := []Group{g.AsGroup()}
	for len(groups) < k {
		i := policy(groups)
		if i < 0 || i >= len(groups) {
			break
		}
		a, b, ok := groups[i].Split()
		if !ok {
			break
		}
		groups[i] = a
		groups = append(groups, b)
	}
	return groups
}
