package core

import (
	"context"
	"sort"
	"sync"

	"simjoin/internal/filter"
	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

// JoinTopK returns, for every uncertain graph in u, its k best-matching
// certain graphs — the "SPARQL query q is the best match for question n"
// reading of the paper's abstract. Candidates must still satisfy
// SimPτ ≥ α; ranking is by higher SimP, then smaller best-world distance,
// then query index. Early-accept is disabled internally so the reported
// SimP values are exact and comparable.
//
// The result slice is indexed like u; entries may hold fewer than k pairs
// (or none) when not enough queries qualify.
func JoinTopK(d []*graph.Graph, u []*ugraph.Graph, opts Options, k int) ([][]Pair, Stats, error) {
	if err := opts.normalise(); err != nil {
		return nil, Stats{}, err
	}
	chain, err := opts.chain()
	if err != nil {
		return nil, Stats{}, err
	}
	if k < 1 {
		k = 1
	}
	opts.DisableEarlyExit = true
	jo := newJoinObs(&opts)
	stopProgress := jo.startProgress(&opts, int64(len(d))*int64(len(u)))
	defer stopProgress()
	stopWatchdog := jo.startWatchdog(&opts)
	defer stopWatchdog()

	qsigs := filter.NewQSigs(d)
	gsigs := filter.NewGSigs(u)

	perQuestion := make([][]Pair, len(u))
	var (
		mu    sync.Mutex
		total Stats
		wg    sync.WaitGroup
	)
	ctx := context.Background()
	tasks := make(chan int, 64)
	worker := func(id int) {
		defer wg.Done()
		local := newRec(jo, &opts, chain)
		for gi := range tasks {
			var best []Pair
			for qi := range d {
				local.Pairs++
				pi := pairIn{q: d[qi], g: u[gi], qs: qsigs[qi], gs: gsigs[gi], qi: qi, gi: gi}
				jo.beatStart(id)
				p, ok := joinPair(ctx, &pi, &opts, chain, &local)
				jo.beatEnd(id)
				if jo.progress {
					jo.pairsDone.Add(1)
				}
				if !ok {
					continue
				}
				local.Results++
				best = insertTopK(best, p, k)
			}
			mu.Lock()
			perQuestion[gi] = best
			mu.Unlock()
		}
		local.finish(chain)
		mu.Lock()
		total.add(&local.Stats)
		mu.Unlock()
	}

	wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go worker(i)
	}
	for gi := range u {
		tasks <- gi
	}
	close(tasks)
	wg.Wait()
	finishStats(&total, jo)
	return perQuestion, total, nil
}

// insertTopK keeps best sorted by rank and capped at k.
func insertTopK(best []Pair, p Pair, k int) []Pair {
	best = append(best, p)
	sort.Slice(best, func(i, j int) bool { return pairBetter(best[i], best[j]) })
	if len(best) > k {
		best = best[:k]
	}
	return best
}

// pairBetter ranks pairs: higher SimP, then smaller distance, then lower
// query index for determinism.
func pairBetter(a, b Pair) bool {
	if a.SimP != b.SimP {
		return a.SimP > b.SimP
	}
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	return a.Q < b.Q
}
