package core

import (
	"fmt"

	"simjoin/internal/filter"
	"simjoin/internal/ged"
	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

// ExpectedDistance computes the expected graph edit distance
// E[ged(q, pw(g))] over the possible worlds of g — the alternative
// similarity measure of Kollios et al. [14] discussed in §8.3. Unlike the
// paper's SimPτ it has no threshold; it is exposed for comparison studies.
//
// Distances are computed exactly with a state budget per world; maxWorlds
// caps the enumeration (0 means the DefaultOptions MaxWorlds). When g's
// per-vertex distributions do not sum to 1 the expectation is taken over
// the covered mass and rescaled.
func ExpectedDistance(q *graph.Graph, g *ugraph.Graph, maxWorlds int64) (float64, error) {
	if maxWorlds <= 0 {
		maxWorlds = 1 << 20
	}
	if g.WorldCountFloat() > float64(maxWorlds) {
		return 0, fmt.Errorf("core: %v possible worlds exceed the budget %d", g.WorldCountFloat(), maxWorlds)
	}
	sum := 0.0
	mass := 0.0
	var firstErr error
	g.Worlds(func(w *graph.Graph, p float64) bool {
		res, err := ged.Compute(q, w, ged.Options{Threshold: ged.NoThreshold, MaxStates: 4_000_000})
		if err != nil {
			firstErr = err
			return false
		}
		sum += p * float64(res.Distance)
		mass += p
		return true
	})
	if firstErr != nil {
		return 0, firstErr
	}
	if mass == 0 {
		return 0, fmt.Errorf("core: uncertain graph has no probability mass")
	}
	return sum / mass, nil
}

// ExpectedPair is one result of JoinExpected.
type ExpectedPair struct {
	Q, G     int
	Expected float64
}

// JoinExpected returns all pairs whose expected edit distance is at most
// maxExpected — the expected-distance analogue of Def. 7. The CSS bound
// still prunes: lb_gedCSS lower-bounds ged against every world, hence also
// the expectation.
func JoinExpected(d []*graph.Graph, u []*ugraph.Graph, maxExpected float64, maxWorlds int64) ([]ExpectedPair, error) {
	var out []ExpectedPair
	for gi, g := range u {
		for qi, q := range d {
			if lb := filter.CSSLowerBoundUncertain(q, g); float64(lb) > maxExpected {
				continue
			}
			e, err := ExpectedDistance(q, g, maxWorlds)
			if err != nil {
				return nil, fmt.Errorf("core: pair (%d,%d): %w", qi, gi, err)
			}
			if e <= maxExpected {
				out = append(out, ExpectedPair{Q: qi, G: gi, Expected: e})
			}
		}
	}
	return out, nil
}
