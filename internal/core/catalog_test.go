package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"

	"simjoin/internal/obs"
)

// designSection12 returns the text of DESIGN.md §12 (the instrument catalog).
func designSection12(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	start := strings.Index(text, "## 12.")
	if start < 0 {
		t.Fatal("DESIGN.md has no §12 instrument catalog")
	}
	text = text[start:]
	if end := strings.Index(text[1:], "\n## "); end >= 0 {
		text = text[:end+1]
	}
	return text
}

// catalogKey normalises a published metric name to the form the catalog
// documents it under: labels become their templated spelling, and the two
// name families minted per bound collapse onto their <bound> placeholder.
func catalogKey(name string) string {
	base, labels := obs.ParseName(name)
	if len(labels) > 0 {
		// Labelled families are documented as base{label=<label>,...}; the
		// base name alone identifies the catalog entry.
		return base
	}
	if m := regexp.MustCompile(`^simjoin_pruned_by_[a-z_]+_total$`).FindString(base); m != "" {
		return "simjoin_pruned_by_<bound>_total"
	}
	if m := regexp.MustCompile(`^filter_bound_[a-z_]+_(evaluated|pruned|eval_nanoseconds)_total$`).FindStringSubmatch(base); m != nil {
		return "filter_bound_<name>_<what>_total"
	}
	return base
}

// TestCatalogCoversJoinInstruments keeps DESIGN.md §12 honest: every metric a
// fully instrumented join publishes, and every key of an emitted event-log
// record, must appear in the catalog. An instrument added without
// documentation fails here.
func TestCatalogCoversJoinInstruments(t *testing.T) {
	catalog := designSection12(t)

	d, u := smallWorkload(19, 10, 10)
	var events bytes.Buffer
	opts := DefaultOptions()
	opts.Mode = ModeSimJOpt
	opts.Alpha = 0.5
	opts.Workers = 2
	opts.Obs = obs.New()
	opts.Tracer = obs.NewTracer(256)
	opts.Events = obs.NewEventLog(&events, 1)
	if _, _, err := Join(d, u, opts); err != nil {
		t.Fatal(err)
	}

	snap := opts.Obs.Snapshot()
	var names []string
	for name := range snap.Counters {
		names = append(names, name)
	}
	for name := range snap.Gauges {
		names = append(names, name)
	}
	for name := range snap.Histograms {
		names = append(names, name)
	}
	if len(names) == 0 {
		t.Fatal("instrumented join published no metrics")
	}
	for _, name := range names {
		if key := catalogKey(name); !strings.Contains(catalog, key) {
			t.Errorf("metric %q (catalog key %q) missing from DESIGN.md §12", name, key)
		}
	}

	// Every key of every emitted event record — including the nested bounds
	// entries — must be documented as `key` in the catalog's event table.
	sc := bufio.NewScanner(&events)
	keys := map[string]bool{}
	for sc.Scan() {
		var ev map[string]interface{}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		for k, v := range ev {
			keys[k] = true
			if list, ok := v.([]interface{}); ok {
				for _, item := range list {
					if obj, ok := item.(map[string]interface{}); ok {
						for kk := range obj {
							keys[kk] = true
						}
					}
				}
			}
		}
	}
	if len(keys) == 0 {
		t.Fatal("event log emitted no records")
	}
	for k := range keys {
		if !strings.Contains(catalog, fmt.Sprintf("`%s`", k)) {
			t.Errorf("event key %q missing from DESIGN.md §12 event table", k)
		}
	}
}
