package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"simjoin/internal/fault"
	"simjoin/internal/graph"
	"simjoin/internal/obs"
	"simjoin/internal/ugraph"
)

// Tests of the sharded join driver: at any shard count the sharded pipeline
// must return byte-identical result sets to the unsharded JoinIndexed path,
// the merged per-shard Stats must partition the cross product exactly like
// the unsharded run, cross-band candidate duplicates must be generated
// exactly once, and faults must stay contained to the shard (and pair) that
// hit them.

// normShardStats strips the fields that legitimately differ between the
// sharded and unsharded pipelines — wall-clock accumulators and the sharded
// generator's band telemetry — leaving every pair-partition counter, the
// PrunedBy map and the (de-timed) bound profile for exact comparison.
func normShardStats(s Stats) Stats {
	s.PruneTime, s.VerifyTime = 0, 0
	s.BandProbes, s.BandDupes = 0, 0
	if s.BoundProfile != nil {
		prof := make([]BoundCost, len(s.BoundProfile))
		copy(prof, s.BoundProfile)
		for i := range prof {
			prof[i].Nanos = 0
		}
		s.BoundProfile = prof
	}
	if len(s.PrunedBy) == 0 {
		s.PrunedBy = nil
	}
	if len(s.Quarantined) == 0 {
		s.Quarantined = nil
	}
	return s
}

// TestShardedJoinEquivalenceProperty is the hard requirement of the sharded
// refactor: across shard counts, band counts and both feed modes (scalar and
// block), results are bit-identical to the unsharded JoinIndexed run and the
// merged Stats agree counter for counter (timing excluded). Run under -race
// -shuffle=on this also exercises the per-shard engines' concurrency.
func TestShardedJoinEquivalenceProperty(t *testing.T) {
	for seed := int64(300); seed < 303; seed++ {
		d, u := smallWorkload(seed, 14, 12)
		if seed%2 == 0 {
			d, u = subNormalWorkload(seed, 14, 12)
		}
		idx := BuildIndex(d)
		opts := Options{
			Tau:        1 + int(seed%2),
			Alpha:      0.4,
			Mode:       ModeSimJOpt,
			GroupCount: 4,
			Workers:    3,
		}
		want, ws, err := JoinIndexed(idx, u, opts)
		if err != nil {
			t.Fatal(err)
		}
		wantN := normShardStats(ws)
		for _, shards := range []int{1, 2, 8} {
			for _, blockSize := range []int{0, 64} {
				sopts := opts
				sopts.Shards = shards
				sopts.BlockSize = blockSize
				got, st, per, err := ShardedJoinStats(context.Background(), d, u, sopts)
				if err != nil {
					t.Fatal(err)
				}
				ctxt := fmt.Sprintf("seed=%d shards=%d block=%d", seed, shards, blockSize)
				assertSamePairs(t, ctxt, got, want)
				if len(per) != shards {
					t.Fatalf("%s: %d per-shard stats", ctxt, len(per))
				}
				// The block path attributes prescreen prunes to the block stage
				// instead of IndexSkipped, exactly like the unsharded block
				// path; compare against that baseline instead.
				base := wantN
				if blockSize > 0 {
					bopts := opts
					bopts.BlockSize = blockSize
					_, bws, err := JoinIndexed(idx, u, bopts)
					if err != nil {
						t.Fatal(err)
					}
					base = normShardStats(bws)
				}
				if gotN := normShardStats(st); !reflect.DeepEqual(gotN, base) {
					t.Fatalf("%s: merged stats diverged\n got %+v\nwant %+v", ctxt, gotN, base)
				}
				// The per-shard stats partition the merged totals exactly.
				var refold Stats
				for i := range per {
					refold.Merge(&per[i])
				}
				if !reflect.DeepEqual(normShardStats(refold), normShardStats(st)) {
					t.Fatalf("%s: per-shard stats do not refold to the merged stats", ctxt)
				}
				if shards > 1 && blockSize == 0 && st.BandProbes == 0 {
					t.Fatalf("%s: sharded scalar run recorded no band probes", ctxt)
				}
			}
		}
	}
}

// TestShardedJoinDegeneratesAtOneShard pins the -shards 1 contract: both the
// routing in JoinContext/JoinIndexedContext (Shards ≤ 1 never enters the
// sharded driver) and the one-shard sharded driver itself return byte-
// identical results and partition-identical stats to the single-engine path.
func TestShardedJoinDegeneratesAtOneShard(t *testing.T) {
	d, u := smallWorkload(42, 10, 9)
	idx := BuildIndex(d)
	opts := DefaultOptions()
	opts.Alpha = 0.5
	opts.Workers = 2
	want, ws, err := JoinIndexed(idx, u, opts)
	if err != nil {
		t.Fatal(err)
	}

	one := opts
	one.Shards = 1
	got, st, err := JoinIndexed(idx, u, one)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePairs(t, "shards=1 routing", got, want)
	if !reflect.DeepEqual(normShardStats(st), normShardStats(ws)) {
		t.Fatalf("shards=1 stats diverged: %+v vs %+v", st, ws)
	}

	got, st, per, err := ShardedJoinStats(context.Background(), d, u, one)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePairs(t, "one-shard driver", got, want)
	if len(per) != 1 {
		t.Fatalf("one-shard driver returned %d shard stats", len(per))
	}
	if !reflect.DeepEqual(normShardStats(st), normShardStats(ws)) {
		t.Fatalf("one-shard driver stats diverged: %+v vs %+v", st, ws)
	}
}

// TestShardedJoinMoreShardsThanWorkload pins the degenerate end: far more
// shards than graphs on either side must neither panic nor skew the stats —
// empty partitions contribute empty shard runs and the merged accounting
// still partitions the cross product exactly.
func TestShardedJoinMoreShardsThanWorkload(t *testing.T) {
	d, u := smallWorkload(7, 6, 5)
	idx := BuildIndex(d)
	opts := DefaultOptions()
	opts.Alpha = 0.5
	opts.Workers = 2
	want, ws, err := JoinIndexed(idx, u, opts)
	if err != nil {
		t.Fatal(err)
	}
	sopts := opts
	sopts.Shards = 97
	got, st, per, err := ShardedJoinStats(context.Background(), d, u, sopts)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePairs(t, "shards=97", got, want)
	if len(per) != 97 {
		t.Fatalf("got %d shard stats, want 97", len(per))
	}
	if st.Pairs != int64(len(d))*int64(len(u)) {
		t.Fatalf("merged Pairs = %d, want %d", st.Pairs, len(d)*len(u))
	}
	if !reflect.DeepEqual(normShardStats(st), normShardStats(ws)) {
		t.Fatalf("merged stats diverged: %+v vs %+v", st, ws)
	}
	empty := 0
	for i := range per {
		if per[i].Pairs == 0 {
			empty++
		}
	}
	if empty == 0 {
		t.Fatal("97 shards over a 6x5 workload left no shard empty")
	}
	if im := ShardImbalance(per); im <= 1 {
		t.Fatalf("imbalance = %v over mostly-empty shards, want > 1", im)
	}
}

// TestStatsMergeOrderIndependent pins the satellite contract on the exported
// Stats.Merge: folding per-shard stats in any order — including stats with
// quarantine records, PrunedBy maps and bound profiles — yields the same
// aggregate, with a deterministic representation (sorted quarantine log,
// position-sorted profile).
func TestStatsMergeOrderIndependent(t *testing.T) {
	d, u := smallWorkload(19, 12, 10)
	sopts := DefaultOptions()
	sopts.Alpha = 0.5
	sopts.Workers = 2
	sopts.Shards = 8
	_, _, per, err := ShardedJoinStats(context.Background(), d, u, sopts)
	if err != nil {
		t.Fatal(err)
	}
	// Synthetic extras exercise the fields a clean join leaves empty.
	per = append(per,
		Stats{Pairs: 3, QuarantinedPairs: 2, PrunedBy: map[string]int64{"css": 2},
			Quarantined: []QuarantineRecord{{Q: 9, G: 1}, {Q: 2, G: 5}}},
		Stats{Pairs: 1, QuarantinedPairs: 1, PrunedBy: map[string]int64{"prob": 1},
			Quarantined: []QuarantineRecord{{Q: 2, G: 4}}, Cancelled: true},
	)
	var want Stats
	for i := range per {
		want.Merge(&per[i])
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		perm := rng.Perm(len(per))
		var got Stats
		for _, i := range perm {
			got.Merge(&per[i])
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("fold order %v diverged:\n got %+v\nwant %+v", perm, got, want)
		}
	}
	for i := 1; i < len(want.Quarantined); i++ {
		a, b := want.Quarantined[i-1], want.Quarantined[i]
		if a.Q > b.Q || (a.Q == b.Q && a.G > b.G) {
			t.Fatalf("merged quarantine log not sorted: %+v", want.Quarantined)
		}
	}
	if !want.Cancelled {
		t.Fatal("Cancelled flag lost in merge")
	}
}

// collidingWorkload builds nd queries and nu uncertain graphs sharing one
// label set {x, y}: every band key collides for every pair, the worst case
// for the cross-band merge-dedup stage.
func collidingWorkload(nd, nu int) ([]*graph.Graph, []*ugraph.Graph) {
	d := make([]*graph.Graph, nd)
	for i := range d {
		g := graph.New(3)
		g.AddVertex("x")
		g.AddVertex("y")
		g.AddVertex("x")
		g.MustAddEdge(0, 1, "e")
		if i%2 == 0 {
			g.MustAddEdge(1, 2, "e")
		}
		d[i] = g
	}
	u := make([]*ugraph.Graph, nu)
	for j := range u {
		g := ugraph.New(3)
		g.AddVertex(ugraph.Label{Name: "x", P: 1})
		g.AddVertex(ugraph.Label{Name: "y", P: 0.7}, ugraph.Label{Name: "x", P: 0.3})
		g.AddVertex(ugraph.Label{Name: "y", P: 1})
		g.MustAddEdge(0, 1, "e")
		if j%2 == 0 {
			g.MustAddEdge(1, 2, "e")
		}
		u[j] = g
	}
	return d, u
}

// TestShardedCrossBandDedup crafts a workload where every pair collides in
// every band and checks the merge-dedup invariants end to end: the probe and
// duplicate counts are exactly predictable, every candidate pair is verified
// exactly once (no duplicate results, candidate partition intact), and the
// result set still matches the unsharded path.
func TestShardedCrossBandDedup(t *testing.T) {
	d, u := collidingWorkload(12, 6)
	idx := BuildIndex(d)
	opts := DefaultOptions()
	opts.Tau = 2
	opts.Alpha = 0.3
	opts.Workers = 2
	want, _, err := JoinIndexed(idx, u, opts)
	if err != nil {
		t.Fatal(err)
	}
	const bands = 4
	sopts := opts
	sopts.Shards = 3
	sopts.Bands = bands
	got, st, _, err := ShardedJoinStats(context.Background(), d, u, sopts)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePairs(t, "all-bands-collide", got, want)
	seen := make(map[[2]int]bool)
	for _, p := range got {
		k := [2]int{p.Q, p.G}
		if seen[k] {
			t.Fatalf("pair (%d,%d) reported twice", p.Q, p.G)
		}
		seen[k] = true
	}
	// Identical label sets put every query in one partition and every graph's
	// band keys into every bucket: bands probes per (pair), all but the first
	// suppressed as duplicates.
	if wantProbes := int64(bands * len(d) * len(u)); st.BandProbes != wantProbes {
		t.Fatalf("BandProbes = %d, want %d", st.BandProbes, wantProbes)
	}
	if wantDupes := int64((bands - 1) * len(d) * len(u)); st.BandDupes != wantDupes {
		t.Fatalf("BandDupes = %d, want %d", st.BandDupes, wantDupes)
	}
	if st.Candidates != st.ExactPairs+st.SampledPairs+st.ApproxPairs+st.SkippedPairs {
		t.Fatalf("candidate partition broken: %+v", st)
	}
	if st.CSSPruned+st.ProbPruned+st.Candidates != st.Pairs {
		t.Fatalf("pair partition broken: %+v", st)
	}
	if st.QuarantinedPairs != 0 {
		t.Fatalf("clean run quarantined %d pairs", st.QuarantinedPairs)
	}
}

// TestShardedFaultContainment arms the per-pair failpoint inside a sharded
// join: the panic must stay contained to the pair (and hence to the shard
// processing it) — the join completes, exactly the injected pair is
// quarantined, and every other result matches the fault-free baseline.
func TestShardedFaultContainment(t *testing.T) {
	d, u := smallWorkload(23, 10, 9)
	opts := DefaultOptions()
	opts.Alpha = 0.4
	opts.Workers = 2
	opts.Shards = 4
	base, _, err := Join(d, u, Options{Tau: opts.Tau, Alpha: opts.Alpha, Mode: opts.Mode,
		GroupCount: opts.GroupCount, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(base) == 0 {
		t.Fatal("workload produced no results to inject against")
	}
	target := base[0]

	defer fault.Reset()
	if err := fault.Enable(fmt.Sprintf("core.pair=panic@%d/%d", target.Q, target.G)); err != nil {
		t.Fatal(err)
	}
	got, st, err := Join(d, u, opts)
	if err != nil {
		t.Fatalf("sharded join failed under injection: %v", err)
	}
	if st.QuarantinedPairs != 1 || len(st.Quarantined) != 1 {
		t.Fatalf("quarantine count: %+v", st.Quarantined)
	}
	if q := st.Quarantined[0]; q.Q != target.Q || q.G != target.G {
		t.Fatalf("quarantined (%d,%d), injected (%d,%d)", q.Q, q.G, target.Q, target.G)
	}
	for _, p := range got {
		if p.Q == target.Q && p.G == target.G {
			t.Fatal("injected pair still in the results")
		}
	}
	if len(got) != len(base)-1 {
		t.Fatalf("got %d results under injection, want %d", len(got), len(base)-1)
	}
}

// TestShardedResidentMatchesResident pins the resident seam: a sharded
// resident's routed feed returns byte-identical delta-join results and stats
// to the unsharded resident, and publishes its per-shard routing counters.
func TestShardedResidentMatchesResident(t *testing.T) {
	d, u := smallWorkload(31, 5, 20)
	opts := DefaultOptions()
	opts.Alpha = 0.5
	opts.Workers = 2

	plain := NewResident(u)
	want, ws, err := JoinWith(context.Background(), NewStreamSource(plain, d), opts)
	if err != nil {
		t.Fatal(err)
	}

	sharded := NewShardedResident(u, 4, 4)
	if sharded.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", sharded.Shards())
	}
	reg := obs.New()
	sopts := opts
	sopts.Obs = reg
	got, st, err := JoinWith(context.Background(), NewStreamSource(sharded, d), sopts)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePairs(t, "sharded resident", got, want)
	if !reflect.DeepEqual(normShardStats(st), normShardStats(ws)) {
		t.Fatalf("sharded resident stats diverged:\n got %+v\nwant %+v", st, ws)
	}

	var routed int64
	for name, v := range reg.Snapshot().Counters {
		if base, _ := obs.ParseName(name); base == "simjoin_shard_pairs_total" {
			routed += v
		}
	}
	if wantPairs := int64(len(d)) * int64(len(u)); routed != wantPairs {
		t.Fatalf("routed shard counters sum to %d, want %d", routed, wantPairs)
	}

	// Block mode on the sharded resident keeps the cached whole-side block
	// set; results must stay identical.
	bopts := opts
	bopts.BlockSize = 8
	gotB, _, err := JoinWith(context.Background(), NewStreamSource(sharded, d), bopts)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePairs(t, "sharded resident block", gotB, want)
}

// TestShardedOptionsValidation pins normalise's handling of the new knobs.
func TestShardedOptionsValidation(t *testing.T) {
	d, u := smallWorkload(6, 2, 2)
	opts := DefaultOptions()
	opts.Shards = -1
	if _, _, err := Join(d, u, opts); err == nil {
		t.Fatal("negative Shards accepted")
	}
	opts = DefaultOptions()
	opts.Bands = -2
	if _, _, err := Join(d, u, opts); err == nil {
		t.Fatal("negative Bands accepted")
	}
	opts = DefaultOptions()
	opts.Shards = 2
	if err := opts.normalise(); err != nil {
		t.Fatal(err)
	}
	if opts.Bands != 4 {
		t.Fatalf("Bands defaulted to %d with Shards=2, want 4", opts.Bands)
	}
}
