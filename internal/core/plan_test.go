package core

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"simjoin/internal/plan"
)

// fastAdaptive returns a planner config whose epochs are short enough for the
// small test workloads to warm up, reorder, and re-check several times.
func fastAdaptive(strata int) *plan.Config {
	return &plan.Config{
		Chain:       true,
		WarmupPairs: 8,
		EpochPairs:  16,
		SampleEvery: 4,
		Strata:      strata,
		Report:      &plan.Report{},
	}
}

// invariantStats projects the Stats fields that must be bit-identical between
// a static and an adaptive run of the same join: everything the adaptive
// reorder is not allowed to move. (PrunedBy attribution, the
// CSSPruned/ProbPruned split, BoundProfile and the group tallies legitimately
// shift with the walk order; their sums are asserted separately.)
func invariantStats(st *Stats) map[string]int64 {
	return map[string]int64{
		"pairs":         st.Pairs,
		"candidates":    st.Candidates,
		"results":       st.Results,
		"skipped":       st.SkippedPairs,
		"exact":         st.ExactPairs,
		"sampled":       st.SampledPairs,
		"approx":        st.ApproxPairs,
		"worlds":        st.WorldsChecked,
		"ged-calls":     st.GEDCalls,
		"early-accepts": st.EarlyAccepts,
		"early-rejects": st.EarlyRejects,
		"index-skipped": st.IndexSkipped,
		"pruned":        st.CSSPruned + st.ProbPruned,
	}
}

// TestAdaptiveChainMatchesStatic is the equivalence suite of the adaptive
// chain optimizer: across modes × block sizes × shard counts, the adaptive
// run must return byte-identical results and identical invariant counters to
// the static chain. Run under -race -shuffle=on this also exercises the
// controller's concurrent hot path.
func TestAdaptiveChainMatchesStatic(t *testing.T) {
	d, u := smallWorkload(42, 24, 24)
	for _, mode := range []Mode{ModeCSSOnly, ModeSimJ, ModeSimJOpt} {
		for _, block := range []int{0, 64} {
			for _, shards := range []int{1, 8} {
				for _, strata := range []int{1, 2} {
					if strata == 2 && (block != 0 || shards != 1) {
						continue // one stratified case is enough
					}
					opts := Options{Tau: 2, Alpha: 0.5, Mode: mode, GroupCount: 4,
						Workers: 4, BlockSize: block, Shards: shards}
					want, wantSt, err := Join(d, u, opts)
					if err != nil {
						t.Fatal(err)
					}
					opts.Planner = fastAdaptive(strata)
					got, gotSt, err := Join(d, u, opts)
					if err != nil {
						t.Fatal(err)
					}
					name := fmt.Sprintf("mode=%v block=%d shards=%d strata=%d", mode, block, shards, strata)
					assertSamePairs(t, name, got, want)
					wi, gi := invariantStats(&wantSt), invariantStats(&gotSt)
					if !reflect.DeepEqual(gi, wi) {
						t.Fatalf("%s: invariant stats differ:\nstatic   %v\nadaptive %v", name, wi, gi)
					}
					// The partition identities must hold on the adaptive run too.
					if gotSt.CSSPruned+gotSt.ProbPruned+gotSt.Candidates != gotSt.Pairs {
						t.Fatalf("%s: prune partition broken: %d+%d+%d != %d", name,
							gotSt.CSSPruned, gotSt.ProbPruned, gotSt.Candidates, gotSt.Pairs)
					}
					// ModeCSSOnly's single-bound chain has nothing to reorder;
					// every multi-bound chain must have run epochs.
					if mode != ModeCSSOnly && gotSt.PlanEpochs == 0 {
						t.Fatalf("%s: adaptive run recorded no epochs", name)
					}
				}
			}
		}
	}
}

// TestAdaptiveChainHoistsSelectiveBound pins that the optimizer actually
// reorders when the static order is adversarial: a chain fronted by bounds
// that prune nothing must adopt an order with the selective css bound first.
func TestAdaptiveChainHoistsSelectiveBound(t *testing.T) {
	d, u := smallWorkload(7, 24, 24)
	cfg := fastAdaptive(1)
	opts := Options{Tau: 0, Alpha: 0.9, Mode: ModeSimJ, Workers: 2,
		FilterChain: defaultChain("count", "lm", "css", "prob"), Planner: cfg}
	_, st, err := Join(d, u, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.PlanReorders == 0 {
		t.Fatalf("adversarial static order survived: %+v", st)
	}
	orders, reorders, epochs := cfg.Report.Chain()
	if len(orders) == 0 || reorders != st.PlanReorders || epochs != st.PlanEpochs {
		t.Fatalf("report disagrees with stats: orders=%v reorders=%d/%d epochs=%d/%d",
			orders, reorders, st.PlanReorders, epochs, st.PlanEpochs)
	}
	// At least one adopted order must differ from the static chain (the
	// reorder counter already proves an adoption happened; this pins that the
	// report carries the adopted order, not the static one).
	static := "count,lm,css,prob"
	changed := false
	for _, o := range orders {
		if o != static {
			changed = true
		}
	}
	if !changed {
		t.Fatalf("reorders=%d but every reported order is still the static %q", reorders, static)
	}
}

// TestPlannedJoinMatchesJoin drives every row of the source-planner decision
// table (by skewing the thresholds) and asserts each chosen source returns
// exactly what the plain cross-product join returns.
func TestPlannedJoinMatchesJoin(t *testing.T) {
	d, u := smallWorkload(11, 12, 12)
	want, _, err := Join(d, u, Options{Tau: 1, Alpha: 0.5, Mode: ModeSimJ, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	huge := int64(1) << 40
	cases := []struct {
		name string
		cfg  plan.Config
		want plan.Source
	}{
		{"sharded", plan.Config{Source: true, ShardPairs: 1, ShardCount: 4}, plan.SourceSharded},
		{"cross", plan.Config{Source: true, ShardPairs: huge, CrossRatio: 1e-9}, plan.SourceCross},
		{"block", plan.Config{Source: true, ShardPairs: huge, CrossRatio: 1.1, BlockRatio: 1, BlockMinGraphs: 1}, plan.SourceBlock},
		{"indexed", plan.Config{Source: true, ShardPairs: huge, CrossRatio: 1.1, BlockRatio: 1e-12}, plan.SourceIndexed},
	}
	for _, tc := range cases {
		cfg := tc.cfg
		cfg.Report = &plan.Report{}
		got, st, err := Join(d, u, Options{Tau: 1, Alpha: 0.5, Mode: ModeSimJ, Workers: 2, Planner: &cfg})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		dec := cfg.Report.Decision()
		if dec == nil || dec.Choice != tc.want {
			t.Fatalf("%s: decision %+v, want choice %s", tc.name, dec, tc.want)
		}
		assertSamePairs(t, tc.name, got, want)
		if st.Pairs != int64(len(d))*int64(len(u)) {
			t.Fatalf("%s: pairs %d, want full cross product %d", tc.name, st.Pairs, len(d)*len(u))
		}
		var buf bytes.Buffer
		WritePlanReport(&buf, &cfg, &st)
		out := buf.String()
		if !strings.Contains(out, "source: "+string(tc.want)) ||
			!strings.Contains(out, "prescreen survivors") {
			t.Fatalf("%s: WritePlanReport output missing decision:\n%s", tc.name, out)
		}
	}
}

// TestPlannerRespectsExplicitKnobs pins the precedence rule: caller-set
// Shards or BlockSize win over the source planner.
func TestPlannerRespectsExplicitKnobs(t *testing.T) {
	d, u := smallWorkload(3, 8, 8)
	cfg := plan.Config{Source: true, ShardPairs: 1, ShardCount: 4, Report: &plan.Report{}}
	// Explicit BlockSize: the planner must not run (no decision recorded).
	_, _, err := Join(d, u, Options{Tau: 1, Alpha: 0.5, Mode: ModeSimJ, Workers: 2,
		BlockSize: 32, Planner: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if dec := cfg.Report.Decision(); dec != nil {
		t.Fatalf("explicit BlockSize but planner decided %+v", dec)
	}
	// Explicit Shards: same.
	_, _, err = Join(d, u, Options{Tau: 1, Alpha: 0.5, Mode: ModeSimJ, Workers: 2,
		Shards: 2, Planner: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if dec := cfg.Report.Decision(); dec != nil {
		t.Fatalf("explicit Shards but planner decided %+v", dec)
	}
}

// TestStatsMergeFoldsCrossOrderProfiles (satellite: cross-order shard merge)
// asserts Stats.Merge and ProfileByBound keep eval/prune totals exact when
// the merged shards profiled the same bounds at *different* chain positions —
// the shape merged Stats take when engines adopt different adaptive orders or
// run differently-ordered explicit chains.
func TestStatsMergeFoldsCrossOrderProfiles(t *testing.T) {
	a := Stats{BoundProfile: []BoundCost{
		{Pos: 0, Bound: "css", Evals: 100, Prunes: 90, Nanos: 1000},
		{Pos: 1, Bound: "prob", Evals: 10, Prunes: 4, Nanos: 500},
	}}
	b := Stats{BoundProfile: []BoundCost{
		{Pos: 0, Bound: "prob", Evals: 80, Prunes: 20, Nanos: 4000},
		{Pos: 1, Bound: "css", Evals: 60, Prunes: 50, Nanos: 600},
	}}
	var m Stats
	m.Merge(&a)
	m.Merge(&b)
	// Positional entries stay distinct (4 keys), name-folding collapses to 2.
	if len(m.BoundProfile) != 4 {
		t.Fatalf("merged profile has %d entries, want 4: %+v", len(m.BoundProfile), m.BoundProfile)
	}
	folded := ProfileByBound(m.BoundProfile)
	if len(folded) != 2 {
		t.Fatalf("folded profile has %d entries, want 2: %+v", len(folded), folded)
	}
	wantTotals := map[string][3]int64{
		"css":  {160, 140, 1600},
		"prob": {90, 24, 4500},
	}
	for _, bc := range folded {
		w := wantTotals[bc.Bound]
		if bc.Evals != w[0] || bc.Prunes != w[1] || bc.Nanos != w[2] {
			t.Fatalf("folded %s = {evals %d, prunes %d, nanos %d}, want %v", bc.Bound, bc.Evals, bc.Prunes, bc.Nanos, w)
		}
		if bc.Pos != 0 {
			t.Fatalf("folded %s keeps pos %d, want smallest (0)", bc.Bound, bc.Pos)
		}
	}
	// Selectivity of the fold is the exact pooled rate, not an average of rates.
	for _, bc := range folded {
		w := wantTotals[bc.Bound]
		if got, want := bc.Selectivity(), float64(w[1])/float64(w[0]); got != want {
			t.Fatalf("folded %s selectivity %v, want %v", bc.Bound, got, want)
		}
	}
}

// TestShardedAdaptiveProfileFoldsExact runs the same adaptive join at 1 and 8
// shards and asserts the name-folded profiles agree on prune totals booked
// against pairs (the attribution identity CSSPruned+ProbPruned is already
// pinned by the equivalence suite; here the per-shard BoundProfiles — merged
// across engines that each learned their own order — must stay arithmetically
// consistent after folding by name).
func TestShardedAdaptiveProfileFoldsExact(t *testing.T) {
	d, u := smallWorkload(19, 16, 16)
	run := func(shards int) Stats {
		opts := Options{Tau: 1, Alpha: 0.5, Mode: ModeSimJ, Workers: 4,
			Shards: shards, Planner: fastAdaptive(1)}
		_, st, err := Join(d, u, opts)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	for _, shards := range []int{1, 8} {
		st := run(shards)
		folded := ProfileByBound(st.BoundProfile)
		var evals, prunes int64
		for _, bc := range folded {
			evals += bc.Evals
			prunes += bc.Prunes
		}
		var posEvals, posPrunes int64
		for _, bc := range st.BoundProfile {
			posEvals += bc.Evals
			posPrunes += bc.Prunes
		}
		if evals != posEvals || prunes != posPrunes {
			t.Fatalf("shards=%d: name fold lost counts: %d/%d vs %d/%d",
				shards, evals, prunes, posEvals, posPrunes)
		}
		// Every pair pruned by the chain was booked by exactly one bound in
		// PrunedBy; the sharded source's prescreen skips land in CSSPruned +
		// IndexSkipped without a PrunedBy entry. The profile saw at least as
		// many pruning evaluations as attributed prunes (measured pairs may
		// record several bounds firing on one pair).
		var attributed int64
		for _, n := range st.PrunedBy {
			attributed += n
		}
		if attributed+st.IndexSkipped != st.CSSPruned+st.ProbPruned {
			t.Fatalf("shards=%d: PrunedBy sum %d + skipped %d != CSS+Prob %d",
				shards, attributed, st.IndexSkipped, st.CSSPruned+st.ProbPruned)
		}
		if prunes < attributed {
			t.Fatalf("shards=%d: profile prunes %d < attributed prunes %d", shards, prunes, attributed)
		}
	}
}

// TestEffectiveCostOrderDeterministic (satellite: rank tie-breaking) pins the
// deterministic tie-break: equal effective costs rank by chain position, then
// bound name, and EffectiveCostOrder never repeats a name.
func TestEffectiveCostOrderDeterministic(t *testing.T) {
	prof := []BoundCost{ // all never prune: every effective cost is +Inf
		{Pos: 2, Bound: "c", Evals: 10},
		{Pos: 0, Bound: "a", Evals: 10},
		{Pos: 1, Bound: "b", Evals: 10},
	}
	if got := EffectiveCostOrder(prof); got != "a,b,c" {
		t.Fatalf("EffectiveCostOrder = %q, want position-ordered %q", got, "a,b,c")
	}
	ranks := effectiveCostRanks(prof)
	if !reflect.DeepEqual(ranks, []int{3, 1, 2}) {
		t.Fatalf("ranks = %v, want [3 1 2]", ranks)
	}
	// Same position (a name-folded profile), still deterministic: name order.
	tied := []BoundCost{
		{Pos: 0, Bound: "y", Evals: 10},
		{Pos: 0, Bound: "x", Evals: 10},
	}
	if got := EffectiveCostOrder(tied); got != "x,y" {
		t.Fatalf("EffectiveCostOrder = %q, want name-ordered %q", got, "x,y")
	}
	// Duplicate names collapse to the cheapest rank.
	dup := []BoundCost{
		{Pos: 0, Bound: "css", Evals: 100, Prunes: 1, Nanos: 100},
		{Pos: 1, Bound: "css", Evals: 10, Prunes: 9, Nanos: 10},
		{Pos: 2, Bound: "prob", Evals: 10, Prunes: 5, Nanos: 10},
	}
	if got := EffectiveCostOrder(dup); got != "css,prob" {
		t.Fatalf("EffectiveCostOrder = %q, want deduped %q", got, "css,prob")
	}
}
