package core

// The staged pipeline engine.
//
// Every join driver in this package is the same three-stage pipeline:
//
//	candidate source → filter chain → verdict ladder
//
// The engine below owns everything the stages share — the worker pool, the
// per-pair panic quarantine, soft deadlines, the watchdog heartbeats, and the
// Stats accumulator — so Join and JoinIndexed differ only in the
// CandidateSource they plug in.

import (
	"context"
	"sort"
	"sync"
	"time"

	"simjoin/internal/filter"
	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

// Batch is one unit of work a CandidateSource emits: a group of query indices
// to pair with one uncertain graph, with the graph's filter signature built
// exactly once. Small batches keep one uncertain graph's candidate list
// shared across workers; sourceChunk-sized slices amortise channel traffic.
type Batch struct {
	GI  int
	G   *ugraph.Graph
	GS  *filter.GSig
	QIs []int
}

// sourceChunk is how many query indices one Batch carries.
const sourceChunk = 16

// CandidateSource feeds (query, uncertain graph) candidate pairs into the
// join engine. Implementations may prescreen pairs away before the filter
// chain ever sees them, but only with checks that are sound for Def. 7
// regardless of the configured chain (the built-in index screens are implied
// by the CSS bound); pairs skipped this way are reported through skip and
// land in Stats.IndexSkipped (and, by attribution, Stats.CSSPruned).
type CandidateSource interface {
	// Queries returns the certain-graph side and its precomputed signatures;
	// Batch.QIs index into both.
	Queries() ([]*graph.Graph, []*filter.QSig)
	// TotalPairs is |D| × |U| before any prescreening (the progress total).
	TotalPairs() int64
	// Feed emits batches until done or cancelled. emit returns false when the
	// engine is shutting down (cancellation); Feed must then return promptly.
	// skip reports pairs eliminated by prescreens; both callbacks are only
	// safe to call from Feed's goroutine.
	Feed(ctx context.Context, opts *Options, emit func(Batch) bool, skip func(int64))
}

// JoinWith runs the join pipeline of Def. 7 over an arbitrary
// CandidateSource with the same contract as JoinContext: on cancellation the
// accumulated Stats and ctx.Err() are returned and partial results are
// dropped.
func JoinWith(ctx context.Context, src CandidateSource, opts Options) ([]Pair, Stats, error) {
	return joinEngine(ctx, src, opts)
}

// NewCrossSource is the prescreen-free source pairing every query with every
// uncertain graph — the source behind Join.
func NewCrossSource(d []*graph.Graph, u []*ugraph.Graph) CandidateSource {
	return newCrossSource(d, u)
}

// sourceFinisher lets a CandidateSource own the Stats attribution of the
// pairs it skipped: after the workers drain, the engine hands the source the
// run's Stats and the total skip count, and the source books them under the
// right counters (the block stage splits structural from mass prunes, the
// sharded source adds its band telemetry). Sources without the interface get
// the default index-prescreen attribution.
type sourceFinisher interface {
	finishSource(total *Stats, skipped int64)
}

// testPairHook, when non-nil, is called by every engine worker after
// processing a pair, with the worker's index. Tests install it to assert that
// pair processing really fans out across the configured workers, and to
// cancel the join deterministically mid-run.
var testPairHook func(worker int)

// joinEngine is the one shared driver: it resolves the filter chain, spins up
// the worker pool, streams the source's batches through it, and finalises the
// Stats. All containment (per-pair recover, pair deadlines, watchdog) lives
// in joinPair and the observability handles created here.
func joinEngine(ctx context.Context, src CandidateSource, opts Options) ([]Pair, Stats, error) {
	if err := opts.normalise(); err != nil {
		return nil, Stats{}, err
	}
	chain, err := opts.chain()
	if err != nil {
		return nil, Stats{}, err
	}
	if opts.BlockSize > 0 {
		if b := newBlockSource(src, opts.BlockSize); b != nil {
			src = b
		}
	}
	jo := newJoinObs(&opts)
	jo.startPlanner(&opts, chain)
	stopProgress := jo.startProgress(&opts, src.TotalPairs())
	defer stopProgress()
	stopWatchdog := jo.startWatchdog(&opts)
	defer stopWatchdog()

	d, qsigs := src.Queries()
	tasks := make(chan Batch, 256)
	var (
		mu      sync.Mutex
		results []Pair
		total   Stats
		wg      sync.WaitGroup
	)

	worker := func(id int) {
		defer wg.Done()
		local := newRec(jo, &opts, chain)
		var pairs []Pair
		hook := testPairHook
		for b := range tasks {
			for _, qi := range b.QIs {
				if ctx.Err() != nil {
					break // cancelled: drain the channel without working
				}
				local.Pairs++
				pi := pairIn{q: d[qi], g: b.G, qs: qsigs[qi], gs: b.GS, qi: qi, gi: b.GI}
				jo.beatStart(id)
				p, ok := joinPair(ctx, &pi, &opts, chain, &local)
				jo.beatEnd(id)
				if ok {
					pairs = append(pairs, p)
					local.Results++
				}
				if hook != nil {
					hook(id)
				}
				if jo.progress {
					jo.pairsDone.Add(1)
				}
			}
		}
		local.finish(chain)
		mu.Lock()
		results = append(results, pairs...)
		total.add(&local.Stats)
		mu.Unlock()
	}

	wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go worker(i)
	}

	emit := func(b Batch) bool {
		select {
		case tasks <- b:
			return true
		case <-ctx.Done():
			return false
		}
	}
	if jo.sourceSeconds != nil {
		// Candidate-generation latency: the time the source spends producing
		// each batch, excluding the time emit blocks on a full task channel.
		inner := emit
		last := time.Now()
		emit = func(b Batch) bool {
			jo.sourceSeconds.ObserveDuration(time.Since(last))
			ok := inner(b)
			last = time.Now()
			return ok
		}
	}
	var skipped int64
	src.Feed(ctx, &opts, emit,
		func(n int64) {
			skipped += n
			if jo.progress {
				jo.pairsDone.Add(n)
			}
		})
	close(tasks)
	wg.Wait()

	total.Pairs += skipped
	if f, ok := src.(sourceFinisher); ok {
		f.finishSource(&total, skipped)
	} else {
		total.CSSPruned += skipped // prescreens are implied by the CSS stage
		total.IndexSkipped += skipped
	}
	jo.finishPlanner(&opts, &total)
	finishStats(&total, jo)
	if err := ctx.Err(); err != nil {
		total.Cancelled = true
		return nil, total, err
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Q != results[j].Q {
			return results[i].Q < results[j].Q
		}
		return results[i].G < results[j].G
	})
	return results, total, nil
}

// crossSource pairs every query with every uncertain graph. Both sides'
// filter signatures are precomputed once: every graph participates in |U|
// (resp. |D|) pairs, and the signatures carry everything the bounds would
// otherwise recompute per pair.
type crossSource struct {
	d     []*graph.Graph
	qsigs []*filter.QSig
	u     []*ugraph.Graph
	gsigs []*filter.GSig
	qis   []int // 0..len(d)-1, chunked into batches
}

func newCrossSource(d []*graph.Graph, u []*ugraph.Graph) *crossSource {
	return newCrossSourceSigs(d, filter.NewQSigs(d), u)
}

// newCrossSourceSigs is newCrossSource reusing query signatures the caller
// already built (the source planner computes them for its estimate).
func newCrossSourceSigs(d []*graph.Graph, qsigs []*filter.QSig, u []*ugraph.Graph) *crossSource {
	qis := make([]int, len(d))
	for i := range qis {
		qis[i] = i
	}
	return &crossSource{
		d:     d,
		qsigs: qsigs,
		u:     u,
		gsigs: filter.NewGSigs(u),
		qis:   qis,
	}
}

func (s *crossSource) Queries() ([]*graph.Graph, []*filter.QSig) { return s.d, s.qsigs }

func (s *crossSource) TotalPairs() int64 { return int64(len(s.d)) * int64(len(s.u)) }

func (s *crossSource) Feed(ctx context.Context, _ *Options, emit func(Batch) bool, _ func(int64)) {
	for gi, g := range s.u {
		if ctx.Err() != nil {
			return
		}
		for start := 0; start < len(s.qis); start += sourceChunk {
			end := start + sourceChunk
			if end > len(s.qis) {
				end = len(s.qis)
			}
			if !emit(Batch{GI: gi, G: g, GS: s.gsigs[gi], QIs: s.qis[start:end]}) {
				return
			}
		}
	}
}

// indexSource streams only the pairs surviving the Index's size and label
// prescreens, and builds each uncertain graph's filter signature only when at
// least one candidate survives.
type indexSource struct {
	idx *Index
	u   []*ugraph.Graph
}

func (s *indexSource) Queries() ([]*graph.Graph, []*filter.QSig) { return s.idx.d, s.idx.qsigs }

func (s *indexSource) TotalPairs() int64 { return int64(s.idx.Len()) * int64(len(s.u)) }

func (s *indexSource) Feed(ctx context.Context, opts *Options, emit func(Batch) bool, skip func(int64)) {
	var gSet graph.LabelSet // label-set scratch, reused across graphs
	for gi, g := range s.u {
		if ctx.Err() != nil {
			return
		}
		cands := s.idx.candidates(g, opts.Tau, &gSet)
		skip(int64(s.idx.Len() - len(cands)))
		if len(cands) == 0 {
			continue
		}
		gs := filter.NewGSig(g)
		for start := 0; start < len(cands); start += sourceChunk {
			end := start + sourceChunk
			if end > len(cands) {
				end = len(cands)
			}
			if !emit(Batch{GI: gi, G: g, GS: gs, QIs: cands[start:end]}) {
				return
			}
		}
	}
}
