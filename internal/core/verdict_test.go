package core

import (
	"testing"
	"time"

	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

// TestVerdictLadderCliffs drives every budget cliff into the verdict ladder
// and checks which rung decides the pair — and that the Stats partition
// Candidates = Exact + Sampled + Approx + Skipped holds in every case.
// The suite is run under -race in CI: the ladder shares worker-local state
// only, so any cross-worker leak shows up here.
func TestVerdictLadderCliffs(t *testing.T) {
	starQ, starG := hugeUncertain(0.98)         // 3^12 worlds, SimP ≈ 0.98
	borderQ, borderG := hugeUncertain(0.945)    // SimP sits exactly at alpha
	borderAlpha := exactStarSimP(0.945)         // ≈ 0.89
	denseQ, denseG := denseBudgetBusterProbes() // exhausts a 50-state GED budget

	cases := []struct {
		name    string
		q       *graph.Graph
		g       *ugraph.Graph
		opts    Options
		results int
		verdict Verdict
		check   func(t *testing.T, st Stats)
	}{
		{
			// MaxWorlds pre-screen: the world count alone proves exact
			// enumeration hopeless; the sampling rung decides.
			name: "max-worlds cliff falls to sampling",
			q:    starQ, g: starG,
			opts:    Options{Tau: 1, Alpha: 0.5, Mode: ModeCSSOnly, Workers: 1, MaxWorlds: 10},
			results: 1,
			verdict: VerdictSampled,
			check: func(t *testing.T, st Stats) {
				if st.BudgetFallbacks != 1 || st.SampledPairs != 1 {
					t.Errorf("fallback accounting: %+v", st)
				}
			},
		},
		{
			// Mid-enumeration cliff with the sampling rung disabled: α=0.9
			// needs ~10 worlds of accumulated mass, MaxWorlds=5 cuts the
			// enumeration short, and the approximate rung re-accumulates the
			// heaviest worlds' certified mass past α.
			name: "max-worlds cliff falls to approx bounds",
			q:    starQ, g: starG,
			opts:    Options{Tau: 1, Alpha: 0.9, Mode: ModeCSSOnly, Workers: 1, MaxWorlds: 5, SampleWorlds: -1},
			results: 1,
			verdict: VerdictApproxBound,
			check: func(t *testing.T, st Stats) {
				if st.BudgetFallbacks != 1 || st.ApproxPairs != 1 || st.SampledPairs != 0 {
					t.Errorf("fallback accounting: %+v", st)
				}
			},
		},
		{
			// FallbackNone keeps the legacy cliff: over budget means skipped.
			name: "max-worlds cliff with fallback disabled skips",
			q:    starQ, g: starG,
			opts:    Options{Tau: 1, Alpha: 0.9, Mode: ModeCSSOnly, Workers: 1, MaxWorlds: 5, Fallback: FallbackNone},
			results: 0,
			check: func(t *testing.T, st Stats) {
				if st.SkippedPairs != 1 || st.SampledPairs+st.ApproxPairs != 0 {
					t.Errorf("legacy cliff accounting: %+v", st)
				}
			},
		},
		{
			// VerifyMaxStates cliff: exact GED aborts mid-world, the beam
			// bound stands in, and the decision is demoted to approximate.
			name: "verify-max-states cliff demotes to approx",
			q:    denseQ, g: denseG,
			opts:    Options{Tau: 6, Alpha: 0.5, Mode: ModeCSSOnly, Workers: 1, VerifyMaxStates: 50},
			results: -1, // accept/reject depends on the beam bound; either is sound
			check: func(t *testing.T, st Stats) {
				if st.GEDBudgetHits == 0 {
					t.Fatalf("budget never hit: %+v", st)
				}
				if st.ApproxPairs != 1 || st.ExactPairs != 0 || st.SkippedPairs != 0 {
					t.Errorf("assisted decision not demoted: %+v", st)
				}
			},
		},
		{
			// Sampling lands inside its Hoeffding margin and the 64 heaviest
			// worlds cannot push a bound across α either: undecided.
			name: "sampling-undecidable exhausts the ladder",
			q:    borderQ, g: borderG,
			opts:    Options{Tau: 1, Alpha: borderAlpha, Mode: ModeCSSOnly, Workers: 1, MaxWorlds: 1000, SampleWorlds: 100},
			results: 0,
			check: func(t *testing.T, st Stats) {
				if st.SkippedPairs != 1 {
					t.Errorf("undecided pair not skipped: %+v", st)
				}
			},
		},
		{
			// Pair deadline cliff: exact enumeration and sampling both abort
			// on the expired per-pair context; the approximate rung (strictly
			// bounded, so allowed to run late) still decides.
			name: "deadline cliff degrades to approx bounds",
			q:    starQ, g: starG,
			opts:    Options{Tau: 1, Alpha: 0.5, Mode: ModeCSSOnly, Workers: 1, PairDeadline: time.Nanosecond},
			results: 1,
			verdict: VerdictApproxBound,
			check: func(t *testing.T, st Stats) {
				if st.DeadlineHits == 0 {
					t.Errorf("deadline never recorded: %+v", st)
				}
				if st.ApproxPairs != 1 {
					t.Errorf("deadline pair not decided by approx rung: %+v", st)
				}
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pairs, st, err := Join([]*graph.Graph{c.q}, []*ugraph.Graph{c.g}, c.opts)
			if err != nil {
				t.Fatal(err)
			}
			if c.results >= 0 && len(pairs) != c.results {
				t.Fatalf("got %d results, want %d (stats %+v)", len(pairs), c.results, st)
			}
			if c.results == 1 && pairs[0].Verdict != c.verdict {
				t.Errorf("verdict = %v, want %v", pairs[0].Verdict, c.verdict)
			}
			if got := st.ExactPairs + st.SampledPairs + st.ApproxPairs + st.SkippedPairs; got != st.Candidates {
				t.Errorf("verdict partition %d does not cover the %d candidates: %+v", got, st.Candidates, st)
			}
			c.check(t, st)
		})
	}
}

// denseBudgetBusterProbes builds the dense 14-vertex pair whose single-world
// GED at tau=6 exhausts a 50-state A* budget (same shape as
// TestVerifyMaxStatesBudgetCounted).
func denseBudgetBusterProbes() (*graph.Graph, *ugraph.Graph) {
	mk := func(seed int) *graph.Graph {
		g := graph.New(14)
		for i := 0; i < 14; i++ {
			g.AddVertex("A")
		}
		for i := 0; i < 14; i++ {
			for j := i + 1; j < 14 && g.NumEdges() < 40; j++ {
				if (i+j+seed)%3 == 0 {
					g.MustAddEdge(i, j, "e")
				}
			}
		}
		return g
	}
	return mk(1), ugraph.FromCertain(mk(2))
}

// TestEveryPairCarriesAVerdictUnderMinimalBudgets forces every budget to its
// minimum and checks that no candidate is silently dropped: each one lands in
// exactly one verdict bucket, whichever Fallback policy is active.
func TestEveryPairCarriesAVerdictUnderMinimalBudgets(t *testing.T) {
	d, u := smallWorkload(17, 10, 10)
	for _, fb := range []Fallback{FallbackFull, FallbackSample, FallbackNone} {
		t.Run(fb.String(), func(t *testing.T) {
			opts := Options{
				Tau: 1, Alpha: 0.5, Mode: ModeSimJOpt, GroupCount: 4, Workers: 4,
				MaxWorlds: 1, VerifyMaxStates: 1, SampleWorlds: 1,
				ApproxWorlds: 1, ApproxBeam: 1, Fallback: fb,
			}
			pairs, st, err := Join(d, u, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got := st.ExactPairs + st.SampledPairs + st.ApproxPairs + st.SkippedPairs; got != st.Candidates {
				t.Fatalf("verdict partition %d != candidates %d: %+v", got, st.Candidates, st)
			}
			if int64(len(pairs)) != st.Results {
				t.Fatalf("%d pairs returned but Results = %d", len(pairs), st.Results)
			}
			for _, p := range pairs {
				if p.Verdict == VerdictNone || p.Verdict == VerdictUndecided {
					t.Fatalf("result pair (%d,%d) carries verdict %v", p.Q, p.G, p.Verdict)
				}
			}
		})
	}
}

// TestVerdictAndFallbackStrings pins the diagnostic names used in logs, the
// CLI output and DESIGN.md.
func TestVerdictAndFallbackStrings(t *testing.T) {
	verdicts := map[Verdict]string{
		VerdictNone: "none", VerdictExact: "exact", VerdictSampled: "sampled",
		VerdictApproxBound: "approx-bound", VerdictUndecided: "undecided", Verdict(99): "Verdict(99)",
	}
	for v, want := range verdicts {
		if v.String() != want {
			t.Errorf("Verdict %d String = %q, want %q", v, v.String(), want)
		}
	}
	for _, name := range []string{"full", "sample", "none"} {
		fb, err := ParseFallback(name)
		if err != nil || fb.String() != name {
			t.Errorf("ParseFallback(%q) = %v, %v", name, fb, err)
		}
	}
	if _, err := ParseFallback("bogus"); err == nil {
		t.Error("ParseFallback accepted bogus")
	}
	if got := Fallback(42).String(); got != "Fallback(42)" {
		t.Errorf("unknown fallback String = %q", got)
	}
}

// TestExactPairsCountedOnHappyPath checks the common case still reads as
// exact: small worlds, ample budgets, every candidate decided at rung one.
func TestExactPairsCountedOnHappyPath(t *testing.T) {
	d, u := smallWorkload(23, 8, 8)
	pairs, st, err := Join(d, u, Options{Tau: 1, Alpha: 0.5, Mode: ModeSimJ, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.ExactPairs != st.Candidates || st.SampledPairs+st.ApproxPairs+st.SkippedPairs != 0 {
		t.Fatalf("happy path not fully exact: %+v", st)
	}
	for _, p := range pairs {
		if p.Verdict != VerdictExact || p.CI != 0 {
			t.Fatalf("pair (%d,%d): verdict %v CI %v, want exact with no CI", p.Q, p.G, p.Verdict, p.CI)
		}
	}
}
