package core

import (
	"fmt"

	"simjoin/internal/ged"
	"simjoin/internal/graph"
)

// Verdict records which rung of the verification ladder decided a pair.
// Production joins hit the MaxWorlds / VerifyMaxStates / PairDeadline cliffs
// on heavy pairs; instead of silently dropping them, the ladder degrades
// through cheaper decision procedures and labels every pair with the
// precision of the procedure that decided it. Candidates always partition as
//
//	Candidates = ExactPairs + SampledPairs + ApproxPairs + SkippedPairs
//	             (+ pairs quarantined after entering verification)
//
// so callers can see exactly how much of the join was decided at which
// fidelity.
type Verdict uint8

const (
	// VerdictNone is the zero value: the pair never entered verification
	// (pruned, or not a result of a pruned-only mode).
	VerdictNone Verdict = iota
	// VerdictExact: decided by exact possible-world enumeration; SimP is
	// exact (or an early-exit-certified bound on the accepting side).
	VerdictExact
	// VerdictSampled: decided by Monte Carlo world sampling; SimP is an
	// estimate and Pair.CI carries the Hoeffding confidence half-width the
	// decision cleared.
	VerdictSampled
	// VerdictApproxBound: decided by bounds — per-world CSS lower bounds to
	// rule worlds out and beam-search GED upper bounds (ged.Approximate) to
	// rule worlds in — either as the ladder's last resort or because exact
	// GED exhausted VerifyMaxStates mid-enumeration. Accepts are sound;
	// SimP is a certified lower bound.
	VerdictApproxBound
	// VerdictUndecided: every rung of the ladder failed to decide; the pair
	// is not reported and is counted in Stats.SkippedPairs.
	VerdictUndecided
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictNone:
		return "none"
	case VerdictExact:
		return "exact"
	case VerdictSampled:
		return "sampled"
	case VerdictApproxBound:
		return "approx-bound"
	case VerdictUndecided:
		return "undecided"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Fallback selects how far the verification ladder degrades when a pair
// exceeds its exact-enumeration budgets (MaxWorlds, VerifyMaxStates, or the
// pair deadline).
type Fallback int

const (
	// FallbackFull (the default) degrades through Monte Carlo sampling and
	// then the approximate-bound rung before giving up.
	FallbackFull Fallback = iota
	// FallbackSample degrades to Monte Carlo sampling only.
	FallbackSample
	// FallbackNone restores the legacy cliff: over-budget pairs are dropped
	// straight into Stats.SkippedPairs.
	FallbackNone
)

// String implements fmt.Stringer.
func (f Fallback) String() string {
	switch f {
	case FallbackFull:
		return "full"
	case FallbackSample:
		return "sample"
	case FallbackNone:
		return "none"
	default:
		return fmt.Sprintf("Fallback(%d)", int(f))
	}
}

// ParseFallback maps the -fallback flag values full|sample|none.
func ParseFallback(s string) (Fallback, error) {
	switch s {
	case "full":
		return FallbackFull, nil
	case "sample":
		return FallbackSample, nil
	case "none":
		return FallbackNone, nil
	default:
		return 0, fmt.Errorf("core: unknown fallback %q (want full|sample|none)", s)
	}
}

// QuarantineRecord documents one pair whose processing panicked. The pair is
// excluded from the results, the panic is contained to the pair, and the
// record (with the worker stack) lands in Stats.Quarantined so operators can
// file the offending input instead of losing the whole join.
type QuarantineRecord struct {
	Q, G   int
	Reason string
	Stack  string
}

// approxVerify is the ladder's last resort: bound SimP from the heaviest
// possible worlds only. Worlds are visited most-probable-first
// (ugraph.TopWorlds, at most Options.ApproxWorlds of them); each is either
// ruled out by the per-world CSS lower bound or ruled in by the beam-search
// GED upper bound (ged.Approximate at Options.ApproxBeam). The certified
// mass bounds
//
//	lo = Σ p(ruled-in)  ≤  SimP  ≤  hi = Mass − Σ p(ruled-out)
//
// decide the pair soundly in both directions: accept when lo ≥ α, reject
// when hi < α. Worlds neither bound can classify stay unknown; when the
// budget runs out before a bound crosses α the pair remains undecided.
func approxVerify(pi *pairIn, opts *Options, st *rec) (Pair, bool, bool) {
	lo := 0.0
	hi := pi.gs.Mass
	best := Pair{Q: pi.qi, G: pi.gi, Distance: opts.Tau + 1, Verdict: VerdictApproxBound}
	decided, accepted := false, false

	st.pv.Reset(pi.qs, pi.gs)
	pi.g.TopWorlds(opts.ApproxWorlds, func(w *graph.Graph, p float64) bool {
		st.WorldsChecked++
		if st.pv.WorldLowerBound(w) > opts.Tau {
			hi -= p
		} else if d, m := ged.Approximate(pi.q, w, opts.ApproxBeam); d <= opts.Tau {
			lo += p
			if d < best.Distance {
				best.Distance = d
				best.World = w.Clone()
				best.Mapping = m
			}
		}
		if lo >= opts.Alpha {
			decided, accepted = true, true
			return false
		}
		if hi < opts.Alpha {
			decided, accepted = true, false
			return false
		}
		return true
	})
	if !decided || !accepted {
		return Pair{}, false, decided
	}
	best.SimP = lo
	if !opts.KeepMappings {
		best.Mapping = nil
	}
	return best, true, true
}
