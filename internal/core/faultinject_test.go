package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"simjoin/internal/fault"
	"simjoin/internal/graph"
	"simjoin/internal/obs"
	"simjoin/internal/ugraph"
)

// injectWorkload is the shared fixture of the fault-injection tests: a small
// workload with a known non-empty result set, plus that baseline result.
func injectWorkload(t *testing.T) ([]*graph.Graph, []*ugraph.Graph, Options, []Pair) {
	t.Helper()
	d, u := smallWorkload(7, 8, 8)
	opts := Options{Tau: 1, Alpha: 0.5, Mode: ModeSimJOpt, GroupCount: 4, Workers: 2}
	base, _, err := Join(d, u, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) == 0 {
		t.Fatal("fixture produced no results; injection tests need a target pair")
	}
	return d, u, opts, base
}

// withoutPair filters one (Q, G) pair out of a result slice.
func withoutPair(pairs []Pair, q, g int) []Pair {
	out := make([]Pair, 0, len(pairs))
	for _, p := range pairs {
		if p.Q == q && p.G == g {
			continue
		}
		out = append(out, p)
	}
	return out
}

// renderPairs formats each result for byte-identical comparison: %+v covers
// every field including the witness world's full structure, while ignoring
// unexported lazily-built graph internals that reflect.DeepEqual would trip
// over.
func renderPairs(pairs []Pair) []string {
	out := make([]string, len(pairs))
	for i, p := range pairs {
		out[i] = fmt.Sprintf("%+v", p)
	}
	return out
}

// samePairs reports whether two result slices render byte-identically.
func samePairs(a, b []Pair) bool {
	return reflect.DeepEqual(renderPairs(a), renderPairs(b))
}

// TestPairFaultQuarantinesOnlyInjectedPair arms the per-pair failpoint —
// panic and error kinds both end in a panic at the pair entry — against one
// known result pair and checks the contract from ISSUE.md: the join completes
// without crashing, exactly the injected pair is quarantined (with the fault
// recognisable in the record and a captured stack), and every uninjected
// pair's result is byte-identical to the fault-free baseline.
func TestPairFaultQuarantinesOnlyInjectedPair(t *testing.T) {
	d, u, opts, base := injectWorkload(t)
	target := base[0]
	key := fmt.Sprintf("%d/%d", target.Q, target.G)
	for _, kind := range []string{"panic", "error"} {
		t.Run(kind, func(t *testing.T) {
			defer fault.Reset()
			if err := fault.Enable("core.pair=" + kind + "@" + key); err != nil {
				t.Fatal(err)
			}
			got, st, err := Join(d, u, opts)
			if err != nil {
				t.Fatalf("join failed under injection: %v", err)
			}
			if st.QuarantinedPairs != 1 || len(st.Quarantined) != 1 {
				t.Fatalf("quarantine count: %+v", st)
			}
			q := st.Quarantined[0]
			if q.Q != target.Q || q.G != target.G {
				t.Fatalf("quarantined (%d,%d), injected (%d,%d)", q.Q, q.G, target.Q, target.G)
			}
			if !strings.Contains(q.Reason, "core.pair") {
				t.Errorf("quarantine reason %q does not name the failpoint", q.Reason)
			}
			if !strings.Contains(q.Stack, "joinPair") {
				t.Errorf("quarantine stack does not reach joinPair:\n%s", q.Stack)
			}
			if want := withoutPair(base, target.Q, target.G); !samePairs(got, want) {
				t.Errorf("uninjected results changed: got %d pairs, want %d", len(got), len(want))
			}
		})
	}
}

// TestPairFaultDelayLeavesResultsIntact checks the delay kind is purely
// temporal: same results, no quarantine, failpoint accounted as hit.
func TestPairFaultDelayLeavesResultsIntact(t *testing.T) {
	d, u, opts, base := injectWorkload(t)
	defer fault.Reset()
	key := fmt.Sprintf("%d/%d", base[0].Q, base[0].G)
	if err := fault.Enable("core.pair=delay:2ms@" + key); err != nil {
		t.Fatal(err)
	}
	got, st, err := Join(d, u, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.QuarantinedPairs != 0 {
		t.Fatalf("delay quarantined a pair: %+v", st.Quarantined)
	}
	if !samePairs(got, base) {
		t.Error("delay changed the result set")
	}
	if fault.Hits("core.pair") != 1 {
		t.Errorf("failpoint hits = %d, want 1", fault.Hits("core.pair"))
	}
}

// TestWorldBudgetFaultDegradesPair injects budget exhaustion into one pair's
// world enumeration: the pair must leave the exact path and be re-decided by
// the ladder, while every other pair stays byte-identical.
func TestWorldBudgetFaultDegradesPair(t *testing.T) {
	d, u, opts, base := injectWorkload(t)
	target := base[0]
	defer fault.Reset()
	key := fmt.Sprintf("%d/%d", target.Q, target.G)
	if err := fault.Enable("core.verify.world=budget@" + key); err != nil {
		t.Fatal(err)
	}
	got, st, err := Join(d, u, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.BudgetFallbacks == 0 {
		t.Fatalf("injected budget exhaustion not routed to the ladder: %+v", st)
	}
	if st.QuarantinedPairs != 0 {
		t.Fatalf("budget fault quarantined a pair: %+v", st.Quarantined)
	}
	rest := withoutPair(got, target.Q, target.G)
	if !samePairs(rest, withoutPair(base, target.Q, target.G)) {
		t.Error("uninjected results changed under budget injection")
	}
	// The degraded pair may be re-accepted by sampling or approx bounds; if
	// it is, its verdict must say so.
	for _, p := range got {
		if p.Q == target.Q && p.G == target.G && p.Verdict == VerdictExact {
			t.Errorf("degraded pair still claims an exact verdict: %+v", p)
		}
	}
}

// TestEveryFailpointContained arms each join-path failpoint in turn (panic
// kind, one firing) and checks both join drivers complete without crashing,
// quarantining at most the single faulted pair.
func TestEveryFailpointContained(t *testing.T) {
	d, u, opts, base := injectWorkload(t)
	idx := BuildIndex(d)
	for _, name := range []string{"core.pair", "core.verify.world", "ged.compute", "ugraph.worlds"} {
		for _, driver := range []string{"join", "indexed"} {
			t.Run(name+"/"+driver, func(t *testing.T) {
				defer fault.Reset()
				if err := fault.Enable(name + "=panic#1"); err != nil {
					t.Fatal(err)
				}
				var (
					got []Pair
					st  Stats
					err error
				)
				if driver == "join" {
					got, st, err = Join(d, u, opts)
				} else {
					got, st, err = JoinIndexed(idx, u, opts)
				}
				if err != nil {
					t.Fatalf("join failed under %s injection: %v", name, err)
				}
				if fault.Hits(name) != 1 {
					t.Fatalf("failpoint %s fired %d times, want 1", name, fault.Hits(name))
				}
				if st.QuarantinedPairs != 1 || len(st.Quarantined) != 1 {
					t.Fatalf("one panic must quarantine exactly one pair: %+v", st)
				}
				q := st.Quarantined[0]
				if want := withoutPair(base, q.Q, q.G); !samePairs(got, want) {
					t.Errorf("results beyond the quarantined pair changed (got %d, want %d)", len(got), len(want))
				}
			})
		}
	}
}

// TestGEDErrorFaultIsNotFatal: error-kind injection at ged.compute lands on
// the existing budget-hit path (the world is rescued by the beam bound or
// treated dissimilar), so the join completes with no quarantine.
func TestGEDErrorFaultIsNotFatal(t *testing.T) {
	d, u, opts, _ := injectWorkload(t)
	defer fault.Reset()
	if err := fault.Enable("ged.compute=error#3"); err != nil {
		t.Fatal(err)
	}
	_, st, err := Join(d, u, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.QuarantinedPairs != 0 {
		t.Fatalf("GED errors must degrade, not quarantine: %+v", st.Quarantined)
	}
	if st.GEDBudgetHits < 3 {
		t.Errorf("injected GED errors not counted as budget hits: %+v", st)
	}
}

// TestJoinContextCancelDeterministic cancels the join from the pair hook
// after exactly three pairs on a single worker and checks the partial Stats
// are deterministic: three pairs processed, the run marked Cancelled, and no
// results leaked.
func TestJoinContextCancelDeterministic(t *testing.T) {
	d, u := smallWorkload(19, 6, 6)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	testPairHook = func(int) {
		seen++
		if seen == 3 {
			cancel()
		}
	}
	defer func() { testPairHook = nil }()
	res, st, err := JoinContext(ctx, d, u, Options{Tau: 1, Alpha: 0.5, Mode: ModeSimJ, Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled join leaked %d results", len(res))
	}
	if !st.Cancelled {
		t.Fatal("Stats.Cancelled not set on a cancelled run")
	}
	if st.Pairs != 3 {
		t.Fatalf("partial stats not deterministic: Pairs = %d, want 3", st.Pairs)
	}
}

// TestUncancelledRunNotMarkedCancelled pins the flag's other side.
func TestUncancelledRunNotMarkedCancelled(t *testing.T) {
	d, u := smallWorkload(19, 4, 4)
	_, st, err := Join(d, u, Options{Tau: 1, Alpha: 0.5, Mode: ModeSimJ, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cancelled {
		t.Fatal("completed run marked Cancelled")
	}
}

// TestWatchdogFlagsStalledWorker stalls one pair with a delay failpoint well
// past the watchdog threshold and checks the stall is logged and counted
// while the join still completes normally.
func TestWatchdogFlagsStalledWorker(t *testing.T) {
	d, u, opts, base := injectWorkload(t)
	defer fault.Reset()
	key := fmt.Sprintf("%d/%d", base[0].Q, base[0].G)
	if err := fault.Enable("core.pair=delay:100ms@" + key); err != nil {
		t.Fatal(err)
	}
	var (
		mu    sync.Mutex
		lines []string
	)
	opts.Watchdog = 20 * time.Millisecond
	opts.Logger = obs.FuncLogger(func(format string, args ...interface{}) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	})
	reg := obs.New()
	opts.Obs = reg
	got, st, err := Join(d, u, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.QuarantinedPairs != 0 || !samePairs(got, base) {
		t.Fatal("watchdog must observe only; results changed")
	}
	if c := reg.Snapshot().Counters["simjoin_watchdog_stalls_total"]; c < 1 {
		t.Errorf("watchdog stall counter = %d, want >= 1", c)
	}
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, l := range lines {
		if strings.Contains(l, "watchdog") && strings.Contains(l, "stalled") {
			found = true
		}
	}
	if !found {
		t.Errorf("no watchdog log line in %q", lines)
	}
}
