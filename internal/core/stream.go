package core

// The streaming-arrivals candidate source.
//
// The batch drivers rebuild the uncertain side's filter signatures (and, on
// the block path, its SoA blocks) on every Join call — fine for offline
// template building, wasteful for a resident service that answers thousands
// of requests against the same uncertain side. Resident packs that side
// exactly once: the graphs, their GSigs, and (lazily, per block size) their
// GBlockSet live for the life of the process, and every arriving query joins
// only its own delta — |D_request| × |U_resident| pairs with zero resident
// recomputation.
//
// A Resident is immutable after construction and safe for any number of
// concurrent JoinWith runs: GSig memoization is sync.Once-guarded, GBlockSet
// is read-only after packing, and each NewStreamSource call owns its private
// query-side state.

import (
	"context"
	"strconv"
	"sync"

	"simjoin/internal/filter"
	"simjoin/internal/graph"
	"simjoin/internal/obs"
	"simjoin/internal/shard"
	"simjoin/internal/ugraph"
)

// Resident is the long-lived uncertain side of a streaming join: the graphs
// and every derived structure the engine would otherwise rebuild per run.
type Resident struct {
	u     []*ugraph.Graph
	gsigs []*filter.GSig

	// route, when non-nil (NewShardedResident), partitions the resident side
	// by banded label signatures: route[s] lists the graph indices shard s
	// owns, and stream joins feed their delta shard by shard so each arriving
	// query's pairs against one shard's graphs stay contiguous (per-shard
	// routing counters are published when the join carries a registry).
	route [][]int32

	mu     sync.Mutex
	blocks map[int]*filter.GBlockSet // packed SoA blocks, cached per block size
}

// NewResident precomputes the resident side once: one filter signature per
// uncertain graph, shared by every subsequent stream join.
func NewResident(u []*ugraph.Graph) *Resident {
	return &Resident{u: u, gsigs: filter.NewGSigs(u)}
}

// NewShardedResident is NewResident with banded shard routing precomputed
// once (shard.UPartitions): delta joins walk the resident side in shard
// order, attributing each routed pair block to its owning shard. Results and
// Stats are identical to an unsharded Resident — routing only reorders the
// feed, and the engine sorts results by (Q, G). The cached block sets
// (Options.BlockSize on the stream path) still pack the whole resident side;
// the block screens are per-graph, so sharded routing would not change their
// outcome. shards < 1 and bands < 1 are clamped to 1.
func NewShardedResident(u []*ugraph.Graph, shards, bands int) *Resident {
	r := NewResident(u)
	r.route = shard.UPartitions(u, shards, bands)
	return r
}

// Shards returns the number of routing shards (1 for an unsharded Resident).
func (r *Resident) Shards() int {
	if r.route == nil {
		return 1
	}
	return len(r.route)
}

// Len returns the number of resident uncertain graphs.
func (r *Resident) Len() int { return len(r.u) }

// Graph returns resident graph gi (the G index of stream-join results).
func (r *Resident) Graph(gi int) *ugraph.Graph { return r.u[gi] }

// blockSet returns the resident side packed into SoA blocks of the given
// size, building it on first use and caching it per size. The set is
// read-only after packing, so concurrent joins share one copy.
func (r *Resident) blockSet(size int) *filter.GBlockSet {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.blocks == nil {
		r.blocks = make(map[int]*filter.GBlockSet)
	}
	set := r.blocks[size]
	if set == nil {
		set = filter.NewGBlockSet(r.u, size)
		r.blocks[size] = set
	}
	return set
}

// NewStreamSource returns the streaming-arrivals CandidateSource: the
// arriving query graphs d (typically one per request) joined against the
// resident uncertain side. The resident signatures are reused verbatim; only
// the query-side signatures are built here, once per call. Options.BlockSize
// is honoured — the engine swaps in the resident's cached GBlockSet, so the
// block screens also skip per-request packing.
func NewStreamSource(r *Resident, d []*graph.Graph) CandidateSource {
	qis := make([]int, len(d))
	for i := range qis {
		qis[i] = i
	}
	return &streamSource{res: r, d: d, qsigs: filter.NewQSigs(d), qis: qis}
}

// streamSource feeds the delta cross product d × resident. It is the
// cross-product source with the uncertain side's per-run work hoisted into
// the Resident.
type streamSource struct {
	res   *Resident
	d     []*graph.Graph
	qsigs []*filter.QSig
	qis   []int // 0..len(d)-1, chunked into batches
}

func (s *streamSource) Queries() ([]*graph.Graph, []*filter.QSig) { return s.d, s.qsigs }

func (s *streamSource) TotalPairs() int64 {
	return int64(len(s.d)) * int64(len(s.res.u))
}

func (s *streamSource) Feed(ctx context.Context, opts *Options, emit func(Batch) bool, _ func(int64)) {
	if s.res.route != nil {
		s.feedRouted(ctx, opts, emit)
		return
	}
	for gi, g := range s.res.u {
		if ctx.Err() != nil {
			return
		}
		if !s.emitGraph(ctx, gi, g, emit) {
			return
		}
	}
}

// feedRouted walks the resident side shard by shard (NewShardedResident's
// routing), publishing each shard's routed pair count so a resident service's
// delta joins surface the same per-shard view as the batch driver.
func (s *streamSource) feedRouted(ctx context.Context, opts *Options, emit func(Batch) bool) {
	for sh, part := range s.res.route {
		for _, gi := range part {
			if ctx.Err() != nil {
				return
			}
			if !s.emitGraph(ctx, int(gi), s.res.u[gi], emit) {
				return
			}
		}
		if opts.Obs != nil {
			opts.Obs.Counter(obs.Name("simjoin_shard_pairs_total", "shard", strconv.Itoa(sh))).
				Add(int64(len(part)) * int64(len(s.d)))
		}
	}
}

func (s *streamSource) emitGraph(ctx context.Context, gi int, g *ugraph.Graph, emit func(Batch) bool) bool {
	for start := 0; start < len(s.qis); start += sourceChunk {
		end := start + sourceChunk
		if end > len(s.qis) {
			end = len(s.qis)
		}
		if !emit(Batch{GI: gi, G: g, GS: s.res.gsigs[gi], QIs: s.qis[start:end]}) {
			return false
		}
	}
	return true
}
