package core

// The streaming-arrivals candidate source.
//
// The batch drivers rebuild the uncertain side's filter signatures (and, on
// the block path, its SoA blocks) on every Join call — fine for offline
// template building, wasteful for a resident service that answers thousands
// of requests against the same uncertain side. Resident packs that side
// exactly once: the graphs, their GSigs, and (lazily, per block size) their
// GBlockSet live for the life of the process, and every arriving query joins
// only its own delta — |D_request| × |U_resident| pairs with zero resident
// recomputation.
//
// A Resident is immutable after construction and safe for any number of
// concurrent JoinWith runs: GSig memoization is sync.Once-guarded, GBlockSet
// is read-only after packing, and each NewStreamSource call owns its private
// query-side state.

import (
	"context"
	"sync"

	"simjoin/internal/filter"
	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

// Resident is the long-lived uncertain side of a streaming join: the graphs
// and every derived structure the engine would otherwise rebuild per run.
type Resident struct {
	u     []*ugraph.Graph
	gsigs []*filter.GSig

	mu     sync.Mutex
	blocks map[int]*filter.GBlockSet // packed SoA blocks, cached per block size
}

// NewResident precomputes the resident side once: one filter signature per
// uncertain graph, shared by every subsequent stream join.
func NewResident(u []*ugraph.Graph) *Resident {
	return &Resident{u: u, gsigs: filter.NewGSigs(u)}
}

// Len returns the number of resident uncertain graphs.
func (r *Resident) Len() int { return len(r.u) }

// Graph returns resident graph gi (the G index of stream-join results).
func (r *Resident) Graph(gi int) *ugraph.Graph { return r.u[gi] }

// blockSet returns the resident side packed into SoA blocks of the given
// size, building it on first use and caching it per size. The set is
// read-only after packing, so concurrent joins share one copy.
func (r *Resident) blockSet(size int) *filter.GBlockSet {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.blocks == nil {
		r.blocks = make(map[int]*filter.GBlockSet)
	}
	set := r.blocks[size]
	if set == nil {
		set = filter.NewGBlockSet(r.u, size)
		r.blocks[size] = set
	}
	return set
}

// NewStreamSource returns the streaming-arrivals CandidateSource: the
// arriving query graphs d (typically one per request) joined against the
// resident uncertain side. The resident signatures are reused verbatim; only
// the query-side signatures are built here, once per call. Options.BlockSize
// is honoured — the engine swaps in the resident's cached GBlockSet, so the
// block screens also skip per-request packing.
func NewStreamSource(r *Resident, d []*graph.Graph) CandidateSource {
	qis := make([]int, len(d))
	for i := range qis {
		qis[i] = i
	}
	return &streamSource{res: r, d: d, qsigs: filter.NewQSigs(d), qis: qis}
}

// streamSource feeds the delta cross product d × resident. It is the
// cross-product source with the uncertain side's per-run work hoisted into
// the Resident.
type streamSource struct {
	res   *Resident
	d     []*graph.Graph
	qsigs []*filter.QSig
	qis   []int // 0..len(d)-1, chunked into batches
}

func (s *streamSource) Queries() ([]*graph.Graph, []*filter.QSig) { return s.d, s.qsigs }

func (s *streamSource) TotalPairs() int64 {
	return int64(len(s.d)) * int64(len(s.res.u))
}

func (s *streamSource) Feed(ctx context.Context, _ *Options, emit func(Batch) bool, _ func(int64)) {
	for gi, g := range s.res.u {
		if ctx.Err() != nil {
			return
		}
		for start := 0; start < len(s.qis); start += sourceChunk {
			end := start + sourceChunk
			if end > len(s.qis) {
				end = len(s.qis)
			}
			if !emit(Batch{GI: gi, G: g, GS: s.res.gsigs[gi], QIs: s.qis[start:end]}) {
				return
			}
		}
	}
}
