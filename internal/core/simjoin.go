// Package core implements the paper's primary contribution: SimJ, the
// similarity join between a set D of certain graphs (SPARQL queries) and a
// set U of uncertain graphs (natural language questions), under the
// similarity-probability predicate SimPτ(q, g) ≥ α of Def. 7.
//
// The join follows the filtering-and-refinement framework of §3.3:
//
//   - Structural pruning with the CSS-based lower bound (Theorem 3).
//   - Probabilistic pruning with the similarity-probability upper bound
//     (Theorem 4), optionally tightened by dividing possible worlds into
//     cost-model-selected groups (§6.2, Algorithm 2) — "SimJ+opt".
//   - Exact verification by possible-world enumeration with per-world CSS
//     pre-checks and early accept/reject on the accumulated probability mass.
package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"simjoin/internal/fault"
	"simjoin/internal/filter"
	"simjoin/internal/ged"
	"simjoin/internal/graph"
	"simjoin/internal/obs"
	"simjoin/internal/plan"
	"simjoin/internal/ugraph"
)

// Mode selects which pruning stages run before verification.
type Mode int

const (
	// ModeCSSOnly applies only the structural CSS-based pruning.
	ModeCSSOnly Mode = iota
	// ModeSimJ applies CSS-based and probabilistic pruning (Algorithm 1).
	ModeSimJ
	// ModeSimJOpt additionally partitions possible worlds into groups for
	// tighter probabilistic bounds (Algorithm 2).
	ModeSimJOpt
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeCSSOnly:
		return "CSS only"
	case ModeSimJ:
		return "SimJ"
	case ModeSimJOpt:
		return "SimJ+opt"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures a SimJ run. The zero value is not useful; start from
// DefaultOptions.
type Options struct {
	// Tau is the graph edit distance threshold τ.
	Tau int
	// Alpha is the similarity probability threshold α ∈ (0, 1].
	Alpha float64
	// Mode selects the pruning pipeline.
	Mode Mode
	// GroupCount is the possible-world group budget GN for ModeSimJOpt.
	GroupCount int
	// Workers is the number of parallel join workers; 0 means GOMAXPROCS.
	Workers int
	// MaxWorlds caps the possible worlds enumerated per pair during
	// verification; pairs beyond it are skipped and counted in
	// Stats.SkippedPairs. 0 means the default of 1<<20.
	MaxWorlds int64
	// VerifyMaxStates caps the A* states per GED verification call; worlds
	// exceeding it count as dissimilar and are tallied in
	// Stats.GEDBudgetHits. 0 means the default of 4e6.
	VerifyMaxStates int
	// DisableEarlyExit turns off the accept/reject short-circuit during
	// verification (ablation A2).
	DisableEarlyExit bool
	// TightProbBound replaces Theorem 4 with its law-of-total-probability
	// refinement in ModeSimJ (filter.TotalProbabilityUpperBound): tighter
	// pruning for a little extra filter time (ablation A6).
	TightProbBound bool
	// SampleWorlds is the Monte Carlo sample size of the verdict ladder's
	// sampling rung, used when a pair's possible-world count exceeds
	// MaxWorlds (or exact enumeration aborts on a budget or deadline).
	// Accept/reject decisions carry a Hoeffding confidence margin (δ=0.01);
	// pairs inside the margin fall through to the next rung. 0 means the
	// default of 512; negative disables the sampling rung.
	SampleWorlds int
	// Fallback selects how far the verdict ladder degrades over-budget
	// pairs; the default FallbackFull tries sampling and then approximate
	// bounds, FallbackNone restores the legacy skip-on-cliff behaviour.
	Fallback Fallback
	// ApproxWorlds caps the most-probable worlds the approximate-bound rung
	// examines (via ugraph.TopWorlds). 0 means the default of 64.
	ApproxWorlds int
	// ApproxBeam is the beam width of the ged.Approximate upper bound used
	// by the approximate rung. 0 means the default of 8.
	ApproxBeam int
	// PairDeadline is the soft per-pair time budget: a pair whose exact
	// enumeration or sampling outlives it degrades to the next ladder rung
	// (counted in Stats.DeadlineHits). 0 disables per-pair deadlines.
	PairDeadline time.Duration
	// Watchdog, when positive, launches a monitor that logs (via Logger) and
	// counts workers stuck on a single pair for longer than this. It only
	// observes — the pair keeps running — so it is a diagnostic for hangs
	// that the soft deadline cannot interrupt (e.g. a wedged GED call).
	Watchdog time.Duration
	// KeepMappings records the best-world vertex mapping on every result
	// pair (needed for template generation; costs one extra exact GED per
	// result).
	KeepMappings bool

	// BlockSize, when positive, enables the block-screening stage: the
	// uncertain side is packed into structure-of-arrays blocks of this many
	// graphs (filter.GBlockSet) and every query is screened against whole
	// blocks — size, label-overlap and probability-mass screens, all sound
	// for Def. 7 — before any per-pair bound runs. Join results are
	// bit-identical to the scalar path; block prunes land in
	// Stats.PrunedBy["block"] and a position −1 BoundProfile entry. 0 (the
	// default) keeps the scalar path; the stage applies to Join and
	// JoinIndexed (JoinWith only for their source types — custom sources and
	// JoinTopK keep their own feeding logic).
	BlockSize int

	// Shards, when > 1, partitions both workload sides by banded MinHash
	// signatures over their concrete-label sets and runs one independent join
	// pipeline per shard (internal/shard, DESIGN.md §15): shard s owns the
	// diagonal partition cells {(a, b) : (a + b) mod Shards = s}, so every
	// pair is generated by exactly one shard, and a merge stage folds the
	// per-shard results and Stats. The sharded candidate generator applies
	// the index prescreens (exactly — both paths share
	// filter.LabelOverlapScreen), so results and Stats are bit-identical to
	// JoinIndexed at any shard count. 0 and 1 keep the single-engine path.
	Shards int
	// Bands is the number of MinHash bands used for shard routing and for the
	// in-shard collision tables; 0 defaults to 4 when Shards > 1. More bands
	// spread ownership more evenly at the cost of extra probes per pair.
	Bands int

	// FilterChain, when non-empty, replaces the Mode-derived pruning stages
	// with an explicit ordered bound chain (see filter.ParseChain and the
	// filter registry): bounds run left to right, each may prune the pair,
	// and survivors enter the verdict ladder unchanged. Mode and
	// TightProbBound are ignored for pruning when a chain is set (they still
	// pick the default chain when it is empty). Per-bound prune counts land
	// in Stats.PrunedBy.
	FilterChain []filter.Bound

	// Planner, when non-nil, enables the internal/plan planners. With
	// Planner.Chain the engine reorders the resolved bound chain online:
	// after a warm-up epoch that measures every bound on every pair, only a
	// sampled subset keeps measuring the full chain while the rest
	// short-circuit the adopted ascending-effective-cost order, recomputed
	// every epoch with hysteresis (DESIGN.md §16). Every bound is sound, so
	// results, Candidates and every verification counter are identical to
	// the static chain — only PrunedBy/CSSPruned/ProbPruned attribution and
	// BoundProfile shapes move. With Planner.Source, Join picks the
	// candidate source (cross vs indexed vs block vs sharded) from a
	// label-summary cardinality estimate instead of using the cross
	// product; explicit Shards/BlockSize settings take precedence.
	// Reorder/epoch totals land in Stats.PlanReorders/PlanEpochs, and
	// Planner.Report (when set) records adopted orders and the source
	// decision for -explain.
	Planner *plan.Config

	// Obs, when non-nil, receives live metrics for the run: per-stage
	// latency histograms, per-filter prune counters, GED engine metrics,
	// and — on completion — the cumulative Stats counters (see
	// StatsFromSnapshot). Nil disables metric collection at no cost.
	Obs *obs.Registry
	// Tracer, when non-nil, records prune/verify spans per pair into its
	// ring buffer (exportable as a Chrome trace).
	Tracer *obs.Tracer
	// Events, when non-nil, receives the sampled pair-decision event log: one
	// JSONL record per sampled pair carrying the pair ids, every bound's
	// outcome and duration, the verdict-ladder path, and the pair's work
	// counters (see obs.NewEventLog and DESIGN.md §12). Setting Events also
	// enables per-bound timing even when Obs is nil.
	Events *obs.EventLog
	// Logger and ProgressEvery enable the periodic progress reporter: every
	// ProgressEvery, Logger receives pairs done/total, candidate ratio and
	// ETA. Both must be set for reports to be emitted.
	Logger        obs.Logger
	ProgressEvery time.Duration
}

// DefaultOptions returns the paper's default configuration: τ=1, α=0.9,
// SimJ+opt with 10 groups.
func DefaultOptions() Options {
	return Options{
		Tau:          1,
		Alpha:        0.9,
		Mode:         ModeSimJOpt,
		GroupCount:   10,
		KeepMappings: true,
	}
}

func (o *Options) normalise() error {
	if o.Tau < 0 {
		return fmt.Errorf("core: negative tau %d", o.Tau)
	}
	if o.BlockSize < 0 {
		return fmt.Errorf("core: negative block size %d", o.BlockSize)
	}
	if o.Alpha <= 0 || o.Alpha > 1 {
		return fmt.Errorf("core: alpha %v outside (0,1]", o.Alpha)
	}
	if o.Shards < 0 {
		return fmt.Errorf("core: negative shards %d", o.Shards)
	}
	if o.Bands < 0 {
		return fmt.Errorf("core: negative bands %d", o.Bands)
	}
	if o.Shards > 1 && o.Bands == 0 {
		o.Bands = 4
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.GroupCount <= 0 {
		o.GroupCount = 1
	}
	if o.MaxWorlds <= 0 {
		o.MaxWorlds = 1 << 20
	}
	if o.VerifyMaxStates <= 0 {
		o.VerifyMaxStates = 4_000_000
	}
	switch {
	case o.SampleWorlds == 0:
		o.SampleWorlds = 512
	case o.SampleWorlds < 0:
		o.SampleWorlds = 0
	}
	if o.ApproxWorlds <= 0 {
		o.ApproxWorlds = 64
	}
	if o.ApproxBeam <= 0 {
		o.ApproxBeam = 8
	}
	return nil
}

// chain resolves the pruning pipeline: Options.FilterChain verbatim when set,
// otherwise the Mode's default stage order from the filter registry —
// Algorithm 1 is [css, prob] (or [css, prob-tight] under TightProbBound),
// Algorithm 2 is [css, group], and ModeCSSOnly is [css].
func (o *Options) chain() ([]filter.Bound, error) {
	if len(o.FilterChain) > 0 {
		for i, b := range o.FilterChain {
			if b == nil {
				return nil, fmt.Errorf("core: FilterChain[%d] is nil", i)
			}
		}
		return o.FilterChain, nil
	}
	switch o.Mode {
	case ModeSimJ:
		if o.TightProbBound {
			return defaultChain("css", "prob-tight"), nil
		}
		return defaultChain("css", "prob"), nil
	case ModeSimJOpt:
		return defaultChain("css", "group"), nil
	default: // ModeCSSOnly and unknown modes: structural pruning only
		return defaultChain("css"), nil
	}
}

func defaultChain(names ...string) []filter.Bound {
	out := make([]filter.Bound, len(names))
	for i, n := range names {
		out[i] = filter.MustBound(n)
	}
	return out
}

// Pair is one join result: SPARQL query graph q = D[Q] matched uncertain
// question graph g = U[G] with SimPτ(q,g) = SimP ≥ α.
type Pair struct {
	Q, G     int
	SimP     float64
	Distance int          // smallest ged(q, pw) among satisfying worlds
	World    *graph.Graph // a satisfying world achieving Distance
	Mapping  ged.Mapping  // q -> World vertex mapping (when KeepMappings)
	// Verdict labels the rung of the verification ladder that decided the
	// pair, i.e. whether SimP is exact, a sampling estimate, or a certified
	// lower bound.
	Verdict Verdict
	// CI is the Hoeffding confidence half-width a VerdictSampled decision
	// cleared (in probability-mass units); 0 for other verdicts.
	CI float64
}

// Stats aggregates join diagnostics; Fig. 11–14 are printed from it.
type Stats struct {
	Pairs      int64 // |D| × |U|
	CSSPruned  int64 // pairs removed by Theorem 3
	ProbPruned int64 // pairs removed by Theorem 4 / grouped bounds
	Candidates int64 // pairs entering verification
	Results    int64 // pairs reported
	// SkippedPairs counts pairs that ended VerdictUndecided: every rung of
	// the verification ladder the Fallback policy allows failed to decide
	// them (with FallbackNone this is the legacy budget cliff). Such pairs
	// still count in Candidates — they entered verification — and the worlds
	// examined before giving up stay in WorldsChecked (exactly MaxWorlds+1
	// for a capped FallbackNone pair, counting the world that tripped it),
	// so CSSPruned + ProbPruned + Candidates == Pairs always holds.
	SkippedPairs int64
	// WorldsChecked counts every possible world examined during verification,
	// including the partial enumerations of pairs that ended in SkippedPairs.
	WorldsChecked int64
	GEDCalls      int64 // exact GED verifications run
	GEDBudgetHits int64 // GED calls aborted by VerifyMaxStates
	// GEDStatesExpanded sums the A* search states expanded across all exact
	// GED calls, including aborted ones — the join's verification effort in
	// engine units, independent of wall clock.
	GEDStatesExpanded int64
	PruneTime         time.Duration
	VerifyTime        time.Duration
	GroupsBuilt       int64 // possible-world groups constructed (SimJ+opt)
	GroupsPruned      int64 // groups removed by their CSS bound
	// PrunedBy breaks the pruned pairs down by the stage that eliminated
	// each one: the filter-chain bounds under their registry names, plus the
	// block-screening stage under "block" when Options.BlockSize is set.
	// Summed over the stages it equals CSSPruned + ProbPruned minus
	// IndexSkipped (pairs the index prescreens removed never reach a
	// stage); a pair pruned at the block stage is never re-evaluated per
	// pair, so it is counted exactly once. Nil when nothing was pruned.
	PrunedBy map[string]int64 `json:",omitempty"`
	// BoundProfile is the per-bound cost/selectivity profile in chain order:
	// one entry per chain position with the bound's evaluation count, prune
	// count and (when profiling timing was on) accumulated evaluation
	// nanoseconds; when Options.BlockSize is set, an extra entry at position
	// −1 profiles the block-screening stage ahead of the chain. See
	// BoundCost and WriteExplain (profile.go). Nil when the join ran no
	// bounds.
	BoundProfile []BoundCost `json:",omitempty"`
	EarlyAccepts int64       // verifications stopped early at ≥ α
	EarlyRejects int64       // verifications stopped early at < α
	// IndexSkipped counts pairs eliminated by JoinIndexed's prescreens; 0 on
	// the block path (Options.BlockSize > 0), whose screens subsume the
	// prescreens and attribute their prunes to PrunedBy["block"] instead.
	IndexSkipped int64
	// BandProbes counts band-table bucket entries the sharded candidate
	// generator inspected, and BandDupes the cross-band duplicates its merge
	// stage suppressed (a pair colliding in k bands is screened once and
	// counted k−1 times here). Both are 0 on unsharded runs and on the
	// sharded block path, which screens whole blocks instead of probing band
	// tables. Neither participates in the pair-partition identities — they
	// are pure candidate-generation telemetry.
	BandProbes   int64
	BandDupes    int64
	SampledPairs int64 // pairs decided by the Monte Carlo sampling rung
	ExactPairs   int64 // pairs decided by exact possible-world enumeration
	ApproxPairs  int64 // pairs decided with approximate-bound assistance
	// BudgetFallbacks counts pairs that left the exact enumeration path
	// (MaxWorlds blown, pre-screened as over budget, or deadline expired)
	// and were handed to the ladder's fallback rungs.
	BudgetFallbacks int64
	DeadlineHits    int64 // per-pair soft deadline expiries
	// PlanEpochs counts adaptive-chain epoch recomputations and
	// PlanReorders how many of them adopted a new bound order; both are 0
	// unless Options.Planner enables the adaptive chain. PlanEpochTime is
	// the wall time those recomputations took (off the pair hot path — at
	// most one worker per stratum pays it per epoch).
	PlanEpochs    int64
	PlanReorders  int64
	PlanEpochTime time.Duration
	// QuarantinedPairs counts pairs whose processing panicked; the panics
	// are contained per pair and documented in Quarantined.
	QuarantinedPairs int64
	// Cancelled reports that the run was truncated by context cancellation:
	// counters cover only the pairs processed before the cut.
	Cancelled bool
	// Quarantined holds one record per quarantined pair, sorted by (Q, G).
	Quarantined []QuarantineRecord
}

// CandidateRatio returns |candidates| / (|D|·|U|), the y-axis of
// Figs. 11b–14b.
func (s *Stats) CandidateRatio() float64 {
	if s.Pairs == 0 {
		return 0
	}
	return float64(s.Candidates) / float64(s.Pairs)
}

// ResultRatio returns |results| / (|D|·|U|) ("Real" in the figures).
func (s *Stats) ResultRatio() float64 {
	if s.Pairs == 0 {
		return 0
	}
	return float64(s.Results) / float64(s.Pairs)
}

func (s *Stats) add(o *Stats) {
	s.Pairs += o.Pairs
	s.CSSPruned += o.CSSPruned
	s.ProbPruned += o.ProbPruned
	s.Candidates += o.Candidates
	s.Results += o.Results
	s.SkippedPairs += o.SkippedPairs
	s.WorldsChecked += o.WorldsChecked
	s.GEDCalls += o.GEDCalls
	s.GEDBudgetHits += o.GEDBudgetHits
	s.GEDStatesExpanded += o.GEDStatesExpanded
	s.PruneTime += o.PruneTime
	s.VerifyTime += o.VerifyTime
	s.GroupsBuilt += o.GroupsBuilt
	s.GroupsPruned += o.GroupsPruned
	if len(o.PrunedBy) > 0 {
		if s.PrunedBy == nil {
			s.PrunedBy = make(map[string]int64, len(o.PrunedBy))
		}
		for k, v := range o.PrunedBy {
			s.PrunedBy[k] += v
		}
	}
	if len(o.BoundProfile) > 0 {
		s.BoundProfile = mergeBoundProfile(s.BoundProfile, o.BoundProfile)
	}
	s.EarlyAccepts += o.EarlyAccepts
	s.EarlyRejects += o.EarlyRejects
	s.IndexSkipped += o.IndexSkipped
	s.BandProbes += o.BandProbes
	s.BandDupes += o.BandDupes
	s.SampledPairs += o.SampledPairs
	s.ExactPairs += o.ExactPairs
	s.ApproxPairs += o.ApproxPairs
	s.BudgetFallbacks += o.BudgetFallbacks
	s.DeadlineHits += o.DeadlineHits
	s.PlanEpochs += o.PlanEpochs
	s.PlanReorders += o.PlanReorders
	s.PlanEpochTime += o.PlanEpochTime
	s.QuarantinedPairs += o.QuarantinedPairs
	s.Cancelled = s.Cancelled || o.Cancelled
	s.Quarantined = append(s.Quarantined, o.Quarantined...)
}

// Merge folds another join's (typically one shard's) Stats into s. Merge is
// associative and commutative up to representation: counters are summed, the
// PrunedBy maps added key-wise, BoundProfile entries folded by (position,
// bound), the Cancelled flags ORed, and the quarantine log concatenated and
// re-sorted by (Q, G) — so folding per-shard Stats in any order yields the
// same aggregate.
func (s *Stats) Merge(o *Stats) {
	s.add(o)
	sort.Slice(s.Quarantined, func(i, j int) bool {
		if s.Quarantined[i].Q != s.Quarantined[j].Q {
			return s.Quarantined[i].Q < s.Quarantined[j].Q
		}
		return s.Quarantined[i].G < s.Quarantined[j].G
	})
}

// Join performs the similarity join of Def. 7 between the certain graphs D
// and the uncertain graphs U, returning all pairs with SimPτ ≥ α sorted by
// (Q, G).
func Join(d []*graph.Graph, u []*ugraph.Graph, opts Options) ([]Pair, Stats, error) {
	return JoinContext(context.Background(), d, u, opts)
}

// JoinContext is Join with cancellation: when ctx is cancelled the workers
// stop picking up new pairs, in-flight pairs finish, and ctx.Err() is
// returned along with the Stats accumulated so far (results are dropped —
// a partial join result would be silently incomplete). It is a thin wrapper
// over the pipeline engine (see engine.go) with the cross-product source.
func JoinContext(ctx context.Context, d []*graph.Graph, u []*ugraph.Graph, opts Options) ([]Pair, Stats, error) {
	if opts.Shards > 1 {
		pairs, st, _, err := shardedJoin(ctx, nil, d, u, opts)
		return pairs, st, err
	}
	// The source planner only fills choices the caller left open: explicit
	// Shards (above) or BlockSize settings win over the estimate.
	if p := opts.Planner; p != nil && p.Source && opts.BlockSize == 0 {
		return plannedJoin(ctx, d, u, opts)
	}
	return joinEngine(ctx, newCrossSource(d, u), opts)
}

// finishStats orders the quarantine log deterministically, publishes the
// run's counters to the registry, and syncs the auxiliary instruments
// (tracer drop count, event-log tallies); every join driver calls it once
// after its workers drain.
func finishStats(total *Stats, jo *joinObs) {
	sort.Slice(total.Quarantined, func(i, j int) bool {
		if total.Quarantined[i].Q != total.Quarantined[j].Q {
			return total.Quarantined[i].Q < total.Quarantined[j].Q
		}
		return total.Quarantined[i].G < total.Quarantined[j].G
	})
	publishStats(jo.reg, total)
	jo.syncAux()
}

// pairIn bundles one (q, g) pair with its precomputed filter signatures and
// dataset indices. The join drivers assemble it once per pair so the pipeline
// below never rebuilds signatures inside the pair loop.
type pairIn struct {
	q      *graph.Graph
	g      *ugraph.Graph
	qs     *filter.QSig
	gs     *filter.GSig
	qi, gi int
}

// joinPair runs the filter-and-refine pipeline of Algorithm 1 on one pair:
// the configured bound chain, then — for survivors — the verdict ladder.
//
// Panics are contained here: a panic anywhere in the pair's pruning or
// verification quarantines the pair (recorded with its stack in
// Stats.Quarantined) instead of crashing the join; the worker's scratch
// buffers are reset at the start of every pair, so reuse after a contained
// panic is safe. When Options.PairDeadline is set, verification runs under a
// pair-scoped context deadline.
func joinPair(ctx context.Context, pi *pairIn, opts *Options, chain []filter.Bound, st *rec) (p Pair, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			st.QuarantinedPairs++
			st.Quarantined = append(st.Quarantined, QuarantineRecord{
				Q:      pi.qi,
				G:      pi.gi,
				Reason: fmt.Sprint(r),
				Stack:  string(debug.Stack()),
			})
			p, ok = Pair{}, false
		}
	}()
	if fault.Enabled() {
		// "core.pair" faults a whole pair; injected errors become panics so
		// the quarantine path above is exercised end to end.
		if err := fault.HitPair("core.pair", fault.PairKey(pi.qi, pi.gi)); err != nil {
			panic(err)
		}
	}

	// Sampling is decided before any work so the event can cover the whole
	// decision path; baselines turn the worker-cumulative counters into
	// per-pair deltas at emission time.
	st.evSampled = st.jo.ev.Sample()
	var baseWorlds, baseGEDCalls, baseGEDStates int64
	if st.evSampled {
		st.ev.Bounds = st.ev.Bounds[:0]
		baseWorlds, baseGEDCalls, baseGEDStates = st.WorldsChecked, st.GEDCalls, st.GEDStatesExpanded
	}

	pruneStart := time.Now()
	groups, prunedBy := prunephase(pi, opts, chain, st)
	pruneDur := time.Since(pruneStart)
	st.PruneTime += pruneDur
	st.jo.pruneSeconds.ObserveDuration(pruneDur)
	st.jo.tr.Record("prune", pruneStart, pruneDur)
	if prunedBy != "" {
		if st.evSampled {
			st.emitEvent(pi, Pair{}, false, "pruned", prunedBy,
				baseWorlds, baseGEDCalls, baseGEDStates, int64(pruneDur), 0)
		}
		return Pair{}, false
	}
	st.Candidates++
	if st.jo.progress {
		st.jo.candidates.Add(1)
	}

	pairCtx := ctx
	if opts.PairDeadline > 0 {
		var cancel context.CancelFunc
		pairCtx, cancel = context.WithTimeout(ctx, opts.PairDeadline)
		defer cancel()
	}
	verifyStart := time.Now()
	st.evVerdict = VerdictUndecided
	p, ok = verify(pairCtx, ctx, pi, groups, opts, st)
	verifyDur := time.Since(verifyStart)
	st.VerifyTime += verifyDur
	st.jo.verifySeconds.ObserveDuration(verifyDur)
	st.jo.verifyRung[st.evVerdict].ObserveDuration(verifyDur)
	st.jo.tr.Record("verify", verifyStart, verifyDur)
	if st.evSampled {
		st.emitEvent(pi, p, ok, st.evVerdict.String(), "",
			baseWorlds, baseGEDCalls, baseGEDStates, int64(pruneDur), int64(verifyDur))
	}
	return p, ok
}

// emitEvent fills the worker's reusable PairEvent from the pair's deltas and
// hands it to the event buffer. The Bounds slice was populated in-place by
// prunephase; everything else is computed here so the hot path carries no
// event bookkeeping for unsampled pairs.
func (st *rec) emitEvent(pi *pairIn, p Pair, ok bool, verdict, prunedBy string,
	baseWorlds, baseGEDCalls, baseGEDStates, pruneNs, verifyNs int64) {
	ev := &st.ev
	ev.Q, ev.G = pi.qi, pi.gi
	ev.Verdict = verdict
	ev.PrunedBy = prunedBy
	ev.Result = ok
	ev.SimP = p.SimP
	ev.Worlds = st.WorldsChecked - baseWorlds
	ev.GEDCalls = st.GEDCalls - baseGEDCalls
	ev.GEDStates = st.GEDStatesExpanded - baseGEDStates
	ev.PruneNs = pruneNs
	ev.VerifyNs = verifyNs
	ev.TotalNs = pruneNs + verifyNs
	st.eb.Emit(ev)
}

// prunephase walks the pair through the bound chain in order. It returns the
// possible-world groups to verify (nil means verify the whole graph as one
// group; a kept group bound replaces them) and the name of the bound that
// pruned the pair ("" when the pair survived). Prunes are attributed per
// bound in Stats.PrunedBy and aggregated into CSSPruned or ProbPruned by the
// bound's kind; every evaluation lands in the worker's profile shard, with
// per-bound wall time when profiling is on.
func prunephase(pi *pairIn, opts *Options, chain []filter.Bound, st *rec) ([]ugraph.Group, string) {
	st.pctx = filter.PairContext{
		QS:         pi.qs,
		GS:         pi.gs,
		Tau:        opts.Tau,
		Alpha:      opts.Alpha,
		GroupCount: opts.GroupCount,
		Scratch:    &st.fsc,
	}
	pc := &st.pctx
	if st.jo.ctrl != nil {
		return prunephaseAdaptive(pi, chain, st, pc)
	}
	profiled := st.jo.profile
	var groups []ugraph.Group
	for i, b := range chain {
		out := st.applyBound(pc, b, i, profiled)
		if out.Groups != nil {
			groups = out.Groups
		}
		if out.Pruned {
			return nil, st.bookPrune(b)
		}
	}
	return groups, ""
}

// prunephaseAdaptive is prunephase under the online chain optimizer. The
// controller classifies every pair: warm-up pairs evaluate the *full* chain
// in static order (no short-circuit) and feed the controller's unconditional
// selectivity/cost tallies; thereafter a pair may probe one due bound ahead
// of the walk (still unconditional — the probe runs regardless of any other
// bound's outcome) while the rest of the chain walks the adopted order and
// short-circuits on the first prune. All paths book evaluations into the
// worker's profile shard at the bound's *static* chain position, so merged
// BoundProfiles stay comparable across engines that adopted different
// orders (and ProfileByBound folds them by name). On a warm-up pair the
// prune is attributed to the earliest-in-static-order bound that fired —
// exactly what the static chain would report.
func prunephaseAdaptive(pi *pairIn, chain []filter.Bound, st *rec, pc *filter.PairContext) ([]ugraph.Group, string) {
	ctrl := st.jo.ctrl
	var key uint64
	if ctrl.Stratified() {
		key = pi.gs.BandKey()
	}
	order, probe := ctrl.Next(key)
	var groups []ugraph.Group
	if probe == plan.ProbeAll {
		prunedAt := -1
		for i, b := range chain {
			out, nanos := st.applyBoundTimed(pc, b, i)
			ctrl.Record(key, i, out.Pruned, nanos)
			if out.Groups != nil {
				groups = out.Groups
			}
			if out.Pruned && prunedAt < 0 {
				prunedAt = i
			}
		}
		if prunedAt >= 0 {
			return nil, st.bookPrune(chain[prunedAt])
		}
		return groups, ""
	}
	profiled := st.jo.profile
	groupsFrom := -1
	if probe >= 0 {
		out, nanos := st.applyBoundTimed(pc, chain[probe], probe)
		ctrl.Record(key, probe, out.Pruned, nanos)
		if out.Pruned {
			// The probed bound is sound, so the pair is pruned either way;
			// skipping the walk just attributes the prune to the probe.
			return nil, st.bookPrune(chain[probe])
		}
		if out.Groups != nil {
			groups, groupsFrom = out.Groups, probe
		}
	}
	walk := func(i int) bool {
		if i == probe {
			return false // already evaluated ahead of the walk
		}
		out := st.applyBound(pc, chain[i], i, profiled)
		// Keep the groups of the highest-static-position setter: on a
		// surviving pair every bound runs regardless of walk order, so this
		// reproduces exactly what the static left-to-right walk keeps.
		if out.Groups != nil && i > groupsFrom {
			groups, groupsFrom = out.Groups, i
		}
		return out.Pruned
	}
	if order == nil { // post-warm-up but no order adopted yet: static walk
		for i := range chain {
			if walk(i) {
				return nil, st.bookPrune(chain[i])
			}
		}
		return groups, ""
	}
	for _, i := range order {
		if walk(i) {
			return nil, st.bookPrune(chain[i])
		}
	}
	return groups, ""
}

// applyBound runs one bound on the pair and books the evaluation into the
// worker's profile shard (at static chain position i), the filter metrics,
// and — when the pair is event-sampled — the event record. timed selects the
// time.Now bracket; untimed evaluations book zero nanoseconds.
func (st *rec) applyBound(pc *filter.PairContext, b filter.Bound, i int, timed bool) filter.Outcome {
	if timed {
		out, _ := st.applyBoundTimed(pc, b, i)
		return out
	}
	out := b.Apply(pc)
	st.jo.filt.RecordBound(b.Name(), out)
	st.bookOutcome(out, i, 0)
	return out
}

// applyBoundTimed is applyBound with the wall-clock bracket always on (the
// adaptive controller needs per-eval nanoseconds even when no registry is
// attached); it returns the evaluation's duration in nanoseconds.
func (st *rec) applyBoundTimed(pc *filter.PairContext, b filter.Bound, i int) (filter.Outcome, int64) {
	t0 := time.Now()
	out := b.Apply(pc)
	d := time.Since(t0)
	if st.jo.profile {
		st.jo.filt.RecordBoundTimed(b.Name(), out, d)
		if st.evSampled {
			st.ev.Bounds = append(st.ev.Bounds, obs.BoundObs{Bound: b.Name(), Ns: int64(d), Pruned: out.Pruned})
		}
	} else {
		st.jo.filt.RecordBound(b.Name(), out)
	}
	st.bookOutcome(out, i, int64(d))
	return out, int64(d)
}

// bookOutcome lands one evaluation in the worker's profile shard and the
// group tallies.
func (st *rec) bookOutcome(out filter.Outcome, i int, nanos int64) {
	if i < len(st.prof) {
		st.prof[i].evals++
		st.prof[i].nanos += nanos
		if out.Pruned {
			st.prof[i].prunes++
		}
	}
	st.GroupsBuilt += out.GroupsBuilt
	st.GroupsPruned += out.GroupsCSSPruned
}

// bookPrune attributes a pruned pair to the bound that eliminated it.
func (st *rec) bookPrune(b filter.Bound) string {
	if st.PrunedBy == nil {
		st.PrunedBy = make(map[string]int64)
	}
	st.PrunedBy[b.Name()]++
	if b.Kind() == filter.Structural {
		st.CSSPruned++
	} else {
		st.ProbPruned++
	}
	return b.Name()
}

// exactOutcome reports how the exact enumeration rung ended.
type exactOutcome int

const (
	exactDecided   exactOutcome = iota // accept/reject settled within budget
	exactBudget                        // MaxWorlds blown (or a budget fault injected)
	exactDeadline                      // the pair's soft deadline expired
	exactCancelled                     // the whole join was cancelled
)

// ctxCheckEvery is how many worlds (resp. samples) the verification rungs
// enumerate between context polls; one Err() call per 64 worlds keeps the
// soft-deadline overhead invisible next to a GED computation.
const ctxCheckEvery = 64

// verify decides SimPτ(q, g) ≥ α through the verdict ladder:
//
//  1. Exact possible-world enumeration (grouped when SimJ+opt kept groups),
//     with per-world CSS pre-checks and early accept/reject on accumulated
//     mass — unless the world count is already over MaxWorlds and a fallback
//     exists, in which case the rung is skipped outright.
//  2. Monte Carlo sampling (sampleVerify) when rung 1 ran out of worlds,
//     states or time.
//  3. Approximate bounds over the most probable worlds (approxVerify), under
//     FallbackFull only.
//
// Pairs no rung decides are counted in Stats.SkippedPairs (VerdictUndecided).
// pairCtx carries the per-pair soft deadline, joinCtx the join-wide
// cancellation; the distinction decides whether an interrupted rung degrades
// (deadline) or aborts (cancelled).
func verify(pairCtx, joinCtx context.Context, pi *pairIn, groups []ugraph.Group, opts *Options, st *rec) (Pair, bool) {
	canFallback := opts.Fallback != FallbackNone
	overBudget := pi.gs.WorldsF > float64(opts.MaxWorlds)
	if canFallback && opts.SampleWorlds > 0 && overBudget {
		// The world count alone proves exact enumeration cannot finish;
		// skip straight to the sampling rung.
		st.BudgetFallbacks++
	} else {
		p, ok, out, assisted := verifyExact(pairCtx, joinCtx, pi, groups, opts, st)
		switch out {
		case exactDecided:
			if assisted {
				st.ApproxPairs++
				p.Verdict = VerdictApproxBound
			} else {
				st.ExactPairs++
				p.Verdict = VerdictExact
			}
			st.evVerdict = p.Verdict
			return p, ok
		case exactCancelled:
			st.SkippedPairs++
			return Pair{}, false
		case exactDeadline:
			st.DeadlineHits++
			st.BudgetFallbacks++
		case exactBudget:
			st.BudgetFallbacks++
		}
		if !canFallback {
			st.SkippedPairs++ // legacy cliff: over budget means skipped
			return Pair{}, false
		}
	}
	if opts.SampleWorlds > 0 {
		p, ok, out := sampleVerify(pairCtx, joinCtx, pi, opts, st)
		switch out {
		case sampleDecided:
			st.SampledPairs++
			p.Verdict = VerdictSampled
			st.evVerdict = VerdictSampled
			return p, ok
		case sampleCancelled:
			st.SkippedPairs++
			return Pair{}, false
		case sampleDeadline:
			st.DeadlineHits++
		}
		// sampleUndecided / sampleDeadline: fall through to the last rung.
	}
	if opts.Fallback == FallbackFull {
		// The approximate rung is cheap and strictly bounded, so it runs even
		// after a deadline hit: better a late certified bound than no verdict.
		if p, ok, decided := approxVerify(pi, opts, st); decided {
			st.ApproxPairs++
			st.evVerdict = VerdictApproxBound
			return p, ok
		}
	}
	st.SkippedPairs++
	return Pair{}, false
}

// verifyExact computes the exact SimPτ(q, g) by enumerating possible worlds,
// with a per-world CSS pre-check and — unless disabled — early accept/reject
// on the accumulated probability mass. The per-world CSS bound runs through
// the worker's PairVerifier: every world of g (and of its conditioned groups)
// shares g's structure, so only the λV matching is recomputed per world.
//
// assisted reports that at least one world's exact GED exhausted
// VerifyMaxStates and the decision leaned on the beam-search upper bound
// instead (under FallbackFull) or on treating the world as dissimilar
// (legacy): either way the verdict is no longer exact.
func verifyExact(pairCtx, joinCtx context.Context, pi *pairIn, groups []ugraph.Group, opts *Options, st *rec) (Pair, bool, exactOutcome, bool) {
	q, qi, gi := pi.q, pi.qi, pi.gi
	if groups == nil {
		groups = []ugraph.Group{{G: pi.g, Mass: pi.gs.Mass}}
	}
	// High-mass groups first: the early accept/reject thresholds are reached
	// sooner when probable worlds are enumerated early.
	sort.Slice(groups, func(i, j int) bool { return groups[i].Mass > groups[j].Mass })
	totalMass := 0.0
	for _, gr := range groups {
		totalMass += gr.Mass
	}
	worldBudget := opts.MaxWorlds
	faultArmed := fault.Enabled()
	var faultKey uint64
	if faultArmed {
		faultKey = fault.PairKey(qi, gi)
	}

	simP := 0.0
	remaining := totalMass
	best := Pair{Q: qi, G: gi, Distance: opts.Tau + 1}
	outcome := exactDecided
	decided := false
	accepted := false
	assisted := false
	pairWorlds := int64(0)

	// The context is polled every ctxCheckEvery worlds, so short enumerations
	// would outrun an already-expired deadline without this entry check.
	if pairCtx.Err() != nil {
		if joinCtx.Err() != nil {
			return Pair{}, false, exactCancelled, false
		}
		return Pair{}, false, exactDeadline, false
	}

	st.pv.Reset(pi.qs, pi.gs)
	for _, gr := range groups {
		if decided || outcome != exactDecided {
			break
		}
		gr.G.WorldsScratch(&st.ws, func(w *graph.Graph, p float64) bool {
			st.WorldsChecked++
			pairWorlds++
			worldBudget--
			if worldBudget < 0 {
				outcome = exactBudget
				return false
			}
			if pairWorlds%ctxCheckEvery == 0 && pairCtx.Err() != nil {
				if joinCtx.Err() != nil {
					outcome = exactCancelled
				} else {
					outcome = exactDeadline
				}
				return false
			}
			if faultArmed {
				// "core.verify.world" simulates a mid-enumeration budget
				// cliff: any injection here aborts the rung as over budget.
				if err := fault.HitPair("core.verify.world", faultKey); err != nil {
					outcome = exactBudget
					return false
				}
			}
			remaining -= p
			if st.pv.WorldLowerBound(w) <= opts.Tau {
				st.GEDCalls++
				res, err := ged.Compute(q, w, ged.Options{Threshold: opts.Tau, MaxStates: opts.VerifyMaxStates, Metrics: st.jo.gedM})
				st.GEDStatesExpanded += int64(res.States)
				switch {
				case err != nil:
					st.GEDBudgetHits++
					assisted = true
					if opts.Fallback == FallbackFull {
						// Rescue the world with the beam-search upper bound:
						// d ≤ τ still proves it similar, keeping the accept
						// side sound where the legacy path undercounted.
						if d, m := ged.Approximate(q, w, opts.ApproxBeam); d <= opts.Tau {
							simP += p
							if d < best.Distance {
								best.Distance = d
								best.World = w.Clone()
								best.Mapping = m
							}
						}
					}
				case !res.Exceeded:
					simP += p
					if res.Distance < best.Distance {
						best.Distance = res.Distance
						best.World = w.Clone()
						best.Mapping = res.Mapping
					}
				}
			}
			if !opts.DisableEarlyExit {
				if simP >= opts.Alpha {
					st.EarlyAccepts++
					decided, accepted = true, true
					return false
				}
				if simP+remaining < opts.Alpha {
					st.EarlyRejects++
					decided, accepted = true, false
					return false
				}
			}
			return true
		})
	}

	st.jo.worldsPerPair.Observe(float64(pairWorlds))
	if outcome != exactDecided {
		return Pair{}, false, outcome, assisted
	}
	if !decided {
		accepted = simP >= opts.Alpha
	}
	if !accepted {
		return Pair{}, false, exactDecided, assisted
	}
	best.SimP = simP
	if !opts.KeepMappings {
		best.Mapping = nil
	}
	return best, true, exactDecided, assisted
}
