// Package core implements the paper's primary contribution: SimJ, the
// similarity join between a set D of certain graphs (SPARQL queries) and a
// set U of uncertain graphs (natural language questions), under the
// similarity-probability predicate SimPτ(q, g) ≥ α of Def. 7.
//
// The join follows the filtering-and-refinement framework of §3.3:
//
//   - Structural pruning with the CSS-based lower bound (Theorem 3).
//   - Probabilistic pruning with the similarity-probability upper bound
//     (Theorem 4), optionally tightened by dividing possible worlds into
//     cost-model-selected groups (§6.2, Algorithm 2) — "SimJ+opt".
//   - Exact verification by possible-world enumeration with per-world CSS
//     pre-checks and early accept/reject on the accumulated probability mass.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"simjoin/internal/filter"
	"simjoin/internal/ged"
	"simjoin/internal/graph"
	"simjoin/internal/obs"
	"simjoin/internal/ugraph"
)

// Mode selects which pruning stages run before verification.
type Mode int

const (
	// ModeCSSOnly applies only the structural CSS-based pruning.
	ModeCSSOnly Mode = iota
	// ModeSimJ applies CSS-based and probabilistic pruning (Algorithm 1).
	ModeSimJ
	// ModeSimJOpt additionally partitions possible worlds into groups for
	// tighter probabilistic bounds (Algorithm 2).
	ModeSimJOpt
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeCSSOnly:
		return "CSS only"
	case ModeSimJ:
		return "SimJ"
	case ModeSimJOpt:
		return "SimJ+opt"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures a SimJ run. The zero value is not useful; start from
// DefaultOptions.
type Options struct {
	// Tau is the graph edit distance threshold τ.
	Tau int
	// Alpha is the similarity probability threshold α ∈ (0, 1].
	Alpha float64
	// Mode selects the pruning pipeline.
	Mode Mode
	// GroupCount is the possible-world group budget GN for ModeSimJOpt.
	GroupCount int
	// Workers is the number of parallel join workers; 0 means GOMAXPROCS.
	Workers int
	// MaxWorlds caps the possible worlds enumerated per pair during
	// verification; pairs beyond it are skipped and counted in
	// Stats.SkippedPairs. 0 means the default of 1<<20.
	MaxWorlds int64
	// VerifyMaxStates caps the A* states per GED verification call; worlds
	// exceeding it count as dissimilar and are tallied in
	// Stats.GEDBudgetHits. 0 means the default of 4e6.
	VerifyMaxStates int
	// DisableEarlyExit turns off the accept/reject short-circuit during
	// verification (ablation A2).
	DisableEarlyExit bool
	// TightProbBound replaces Theorem 4 with its law-of-total-probability
	// refinement in ModeSimJ (filter.TotalProbabilityUpperBound): tighter
	// pruning for a little extra filter time (ablation A6).
	TightProbBound bool
	// SampleWorlds switches pairs whose possible-world count exceeds
	// MaxWorlds from being skipped to Monte Carlo verification with this
	// many sampled worlds. Accept/reject decisions carry a Hoeffding
	// confidence margin (δ=0.01); pairs inside the margin stay skipped.
	// 0 disables sampling.
	SampleWorlds int
	// KeepMappings records the best-world vertex mapping on every result
	// pair (needed for template generation; costs one extra exact GED per
	// result).
	KeepMappings bool

	// Obs, when non-nil, receives live metrics for the run: per-stage
	// latency histograms, per-filter prune counters, GED engine metrics,
	// and — on completion — the cumulative Stats counters (see
	// StatsFromSnapshot). Nil disables metric collection at no cost.
	Obs *obs.Registry
	// Tracer, when non-nil, records prune/verify spans per pair into its
	// ring buffer (exportable as a Chrome trace).
	Tracer *obs.Tracer
	// Logger and ProgressEvery enable the periodic progress reporter: every
	// ProgressEvery, Logger receives pairs done/total, candidate ratio and
	// ETA. Both must be set for reports to be emitted.
	Logger        obs.Logger
	ProgressEvery time.Duration
}

// DefaultOptions returns the paper's default configuration: τ=1, α=0.9,
// SimJ+opt with 10 groups.
func DefaultOptions() Options {
	return Options{
		Tau:          1,
		Alpha:        0.9,
		Mode:         ModeSimJOpt,
		GroupCount:   10,
		KeepMappings: true,
	}
}

func (o *Options) normalise() error {
	if o.Tau < 0 {
		return fmt.Errorf("core: negative tau %d", o.Tau)
	}
	if o.Alpha <= 0 || o.Alpha > 1 {
		return fmt.Errorf("core: alpha %v outside (0,1]", o.Alpha)
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.GroupCount <= 0 {
		o.GroupCount = 1
	}
	if o.MaxWorlds <= 0 {
		o.MaxWorlds = 1 << 20
	}
	if o.VerifyMaxStates <= 0 {
		o.VerifyMaxStates = 4_000_000
	}
	return nil
}

// Pair is one join result: SPARQL query graph q = D[Q] matched uncertain
// question graph g = U[G] with SimPτ(q,g) = SimP ≥ α.
type Pair struct {
	Q, G     int
	SimP     float64
	Distance int          // smallest ged(q, pw) among satisfying worlds
	World    *graph.Graph // a satisfying world achieving Distance
	Mapping  ged.Mapping  // q -> World vertex mapping (when KeepMappings)
}

// Stats aggregates join diagnostics; Fig. 11–14 are printed from it.
type Stats struct {
	Pairs      int64 // |D| × |U|
	CSSPruned  int64 // pairs removed by Theorem 3
	ProbPruned int64 // pairs removed by Theorem 4 / grouped bounds
	Candidates int64 // pairs entering verification
	Results    int64 // pairs reported
	// SkippedPairs counts pairs whose verification was abandoned: the
	// MaxWorlds cap blew (or sampling was undecidable at its margin). Such
	// pairs still count in Candidates — they entered verification — and the
	// worlds enumerated before the cap stay in WorldsChecked (exactly
	// MaxWorlds+1 for a capped pair, counting the world that tripped it), so
	// CSSPruned + ProbPruned + Candidates == Pairs always holds.
	SkippedPairs int64
	// WorldsChecked counts every possible world examined during verification,
	// including the partial enumerations of pairs that ended in SkippedPairs.
	WorldsChecked int64
	GEDCalls      int64 // exact GED verifications run
	GEDBudgetHits int64 // GED calls aborted by VerifyMaxStates
	PruneTime     time.Duration
	VerifyTime    time.Duration
	GroupsBuilt   int64 // possible-world groups constructed (SimJ+opt)
	GroupsPruned  int64 // groups removed by their CSS bound
	EarlyAccepts  int64 // verifications stopped early at ≥ α
	EarlyRejects  int64 // verifications stopped early at < α
	IndexSkipped  int64 // pairs eliminated by JoinIndexed's prescreens
	SampledPairs  int64 // pairs decided by Monte Carlo verification
}

// CandidateRatio returns |candidates| / (|D|·|U|), the y-axis of
// Figs. 11b–14b.
func (s *Stats) CandidateRatio() float64 {
	if s.Pairs == 0 {
		return 0
	}
	return float64(s.Candidates) / float64(s.Pairs)
}

// ResultRatio returns |results| / (|D|·|U|) ("Real" in the figures).
func (s *Stats) ResultRatio() float64 {
	if s.Pairs == 0 {
		return 0
	}
	return float64(s.Results) / float64(s.Pairs)
}

func (s *Stats) add(o *Stats) {
	s.Pairs += o.Pairs
	s.CSSPruned += o.CSSPruned
	s.ProbPruned += o.ProbPruned
	s.Candidates += o.Candidates
	s.Results += o.Results
	s.SkippedPairs += o.SkippedPairs
	s.WorldsChecked += o.WorldsChecked
	s.GEDCalls += o.GEDCalls
	s.GEDBudgetHits += o.GEDBudgetHits
	s.PruneTime += o.PruneTime
	s.VerifyTime += o.VerifyTime
	s.GroupsBuilt += o.GroupsBuilt
	s.GroupsPruned += o.GroupsPruned
	s.EarlyAccepts += o.EarlyAccepts
	s.EarlyRejects += o.EarlyRejects
	s.IndexSkipped += o.IndexSkipped
	s.SampledPairs += o.SampledPairs
}

// Join performs the similarity join of Def. 7 between the certain graphs D
// and the uncertain graphs U, returning all pairs with SimPτ ≥ α sorted by
// (Q, G).
func Join(d []*graph.Graph, u []*ugraph.Graph, opts Options) ([]Pair, Stats, error) {
	return JoinContext(context.Background(), d, u, opts)
}

// JoinContext is Join with cancellation: when ctx is cancelled the workers
// stop picking up new pairs, in-flight pairs finish, and ctx.Err() is
// returned along with the Stats accumulated so far (results are dropped —
// a partial join result would be silently incomplete).
func JoinContext(ctx context.Context, d []*graph.Graph, u []*ugraph.Graph, opts Options) ([]Pair, Stats, error) {
	if err := opts.normalise(); err != nil {
		return nil, Stats{}, err
	}
	jo := newJoinObs(&opts)
	stopProgress := jo.startProgress(&opts, int64(len(d))*int64(len(u)))
	defer stopProgress()

	// Precompute both sides' filter signatures once: every graph participates
	// in |U| (resp. |D|) pairs, and the signatures carry everything the bounds
	// would otherwise recompute per pair.
	qsigs := filter.NewQSigs(d)
	gsigs := filter.NewGSigs(u)

	type task struct{ qi, gi int }
	tasks := make(chan task, 256)
	var (
		mu      sync.Mutex
		results []Pair
		total   Stats
		wg      sync.WaitGroup
	)

	worker := func() {
		defer wg.Done()
		local := rec{jo: jo}
		var pairs []Pair
		for t := range tasks {
			if ctx.Err() != nil {
				continue // cancelled: drain the channel without working
			}
			local.Pairs++
			pi := pairIn{q: d[t.qi], g: u[t.gi], qs: qsigs[t.qi], gs: gsigs[t.gi], qi: t.qi, gi: t.gi}
			p, ok := joinPair(&pi, &opts, &local)
			if ok {
				pairs = append(pairs, p)
				local.Results++
			}
			if jo.progress {
				jo.pairsDone.Add(1)
			}
		}
		mu.Lock()
		results = append(results, pairs...)
		total.add(&local.Stats)
		mu.Unlock()
	}

	wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go worker()
	}
feed:
	for qi := range d {
		for gi := range u {
			select {
			case tasks <- task{qi, gi}:
			case <-ctx.Done():
				break feed
			}
		}
	}
	close(tasks)
	wg.Wait()
	publishStats(opts.Obs, &total)

	if err := ctx.Err(); err != nil {
		return nil, total, err
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Q != results[j].Q {
			return results[i].Q < results[j].Q
		}
		return results[i].G < results[j].G
	})
	return results, total, nil
}

// pairIn bundles one (q, g) pair with its precomputed filter signatures and
// dataset indices. The join drivers assemble it once per pair so the pipeline
// below never rebuilds signatures inside the pair loop.
type pairIn struct {
	q      *graph.Graph
	g      *ugraph.Graph
	qs     *filter.QSig
	gs     *filter.GSig
	qi, gi int
}

// joinPair runs the filter-and-refine pipeline of Algorithm 1 on one pair.
func joinPair(pi *pairIn, opts *Options, st *rec) (Pair, bool) {
	pruneStart := time.Now()
	groups, pruned := prunephase(pi, opts, st)
	pruneDur := time.Since(pruneStart)
	st.PruneTime += pruneDur
	st.jo.pruneSeconds.ObserveDuration(pruneDur)
	st.jo.tr.Record("prune", pruneStart, pruneDur)
	if pruned {
		return Pair{}, false
	}
	st.Candidates++
	if st.jo.progress {
		st.jo.candidates.Add(1)
	}

	verifyStart := time.Now()
	p, ok := verify(pi, groups, opts, st)
	verifyDur := time.Since(verifyStart)
	st.VerifyTime += verifyDur
	st.jo.verifySeconds.ObserveDuration(verifyDur)
	st.jo.tr.Record("verify", verifyStart, verifyDur)
	return p, ok
}

// prunephase applies the configured filters. It returns the possible-world
// groups to verify (nil means verify the whole graph as one group) and
// whether the pair was pruned outright.
func prunephase(pi *pairIn, opts *Options, st *rec) ([]ugraph.Group, bool) {
	cssLB := filter.CSSLowerBoundUncertainSigScratch(&st.bp, pi.qs, pi.gs)
	cssPruned := cssLB > opts.Tau
	st.jo.filt.RecordCSS(cssPruned)
	if cssPruned {
		st.CSSPruned++
		return nil, true
	}
	switch opts.Mode {
	case ModeCSSOnly:
		return nil, false
	case ModeSimJ:
		ub := 0.0
		if opts.TightProbBound {
			ub = filter.TotalProbabilityUpperBoundSig(pi.qs, pi.gs, opts.Tau)
		} else {
			ub = filter.SimilarityUpperBoundSig(pi.qs, pi.gs, opts.Tau)
		}
		pruned := ub < opts.Alpha
		st.jo.filt.RecordProb(opts.TightProbBound, pruned)
		if pruned {
			st.ProbPruned++
			return nil, true
		}
		return nil, false
	case ModeSimJOpt:
		st.resetGroupCache(pi, cssLB, opts.Tau)
		groups := partitionForQuery(pi, opts.GroupCount, opts.Tau, st)
		st.GroupsBuilt += int64(len(groups))
		ubSum := 0.0
		kept := groups[:0]
		groupsCSSPruned := int64(0)
		for _, gr := range groups {
			ge := st.evalGroup(pi.qs, gr.G, opts.Tau)
			if ge.cssLB > opts.Tau {
				st.GroupsPruned++
				groupsCSSPruned++
				continue
			}
			ub := ge.simUB
			if ub > gr.Mass {
				ub = gr.Mass
			}
			ubSum += ub
			kept = append(kept, gr)
		}
		pruned := ubSum < opts.Alpha
		st.jo.filt.RecordGroupBound(pruned, groupsCSSPruned)
		if pruned {
			st.ProbPruned++
			return nil, true
		}
		return kept, false
	default:
		return nil, false
	}
}

// groupEval caches one possible-world group's signature and bounds during a
// single pair's ModeSimJOpt pruning: the partition policy of §6.2 re-examines
// every group each split round, which without the cache re-ran the O(V³)
// λV matching and multiset scans O(k²) times per pair.
type groupEval struct {
	gs    *filter.GSig
	cssLB int
	simUB float64 // Theorem 4 bound; valid only when cssLB <= tau
}

// resetGroupCache clears the per-pair group cache and seeds it with the whole
// graph's already-computed signature and CSS bound.
func (st *rec) resetGroupCache(pi *pairIn, cssLB, tau int) {
	if st.groupCache == nil {
		st.groupCache = make(map[*ugraph.Graph]*groupEval)
	}
	clear(st.groupCache)
	ge := &groupEval{gs: pi.gs, cssLB: cssLB}
	if cssLB <= tau {
		ge.simUB = filter.SimilarityUpperBoundSig(pi.qs, pi.gs, tau)
	}
	st.groupCache[pi.g] = ge
}

// evalGroup returns the cached evaluation of a group's graph, computing it on
// first sight. Group graphs are immutable once created by Condition, so
// caching by pointer identity is sound; the values are exactly what direct
// recomputation would yield.
func (st *rec) evalGroup(qs *filter.QSig, g *ugraph.Graph, tau int) *groupEval {
	ge, ok := st.groupCache[g]
	if !ok {
		gs := filter.NewGSig(g)
		ge = &groupEval{gs: gs, cssLB: filter.CSSLowerBoundUncertainSigScratch(&st.bp, qs, gs)}
		if ge.cssLB <= tau {
			ge.simUB = filter.SimilarityUpperBoundSig(qs, gs, tau)
		}
		st.groupCache[g] = ge
	}
	return ge
}

// partitionForQuery divides g's possible worlds into at most k groups using
// the cost model of §6.2: at every round, split the group with the largest
// probabilistic upper bound (the loosest contributor), i.e. minimise
// Σ ub_SimP over non-pruned groups. Per-group bounds come from the worker's
// group cache, so each group is evaluated once regardless of round count.
func partitionForQuery(pi *pairIn, k, tau int, st *rec) []ugraph.Group {
	policy := func(groups []ugraph.Group) int {
		best, bestUB := -1, -1.0
		for i, gr := range groups {
			if gr.G.SplitVertex() < 0 {
				continue
			}
			ge := st.evalGroup(pi.qs, gr.G, tau)
			ub := 0.0
			if ge.cssLB <= tau {
				ub = ge.simUB
				if ub > gr.Mass {
					ub = gr.Mass
				}
			}
			if ub > bestUB {
				best, bestUB = i, ub
			}
		}
		return best
	}
	return pi.g.PartitionWorlds(k, policy)
}

// verify computes the exact SimPτ(q, g) by enumerating possible worlds
// (grouped when SimJ+opt kept groups), with a per-world CSS pre-check and —
// unless disabled — early accept/reject on accumulated mass. The per-world
// CSS bound runs through the worker's PairVerifier: every world of g (and of
// its conditioned groups) shares g's structure, so only the λV matching is
// recomputed per world.
func verify(pi *pairIn, groups []ugraph.Group, opts *Options, st *rec) (Pair, bool) {
	q, qi, gi := pi.q, pi.qi, pi.gi
	if opts.SampleWorlds > 0 && pi.gs.WorldsF > float64(opts.MaxWorlds) {
		return sampleVerify(pi, opts, st)
	}
	if groups == nil {
		groups = []ugraph.Group{{G: pi.g, Mass: pi.gs.Mass}}
	}
	// High-mass groups first: the early accept/reject thresholds are reached
	// sooner when probable worlds are enumerated early.
	sort.Slice(groups, func(i, j int) bool { return groups[i].Mass > groups[j].Mass })
	totalMass := 0.0
	for _, gr := range groups {
		totalMass += gr.Mass
	}
	worldBudget := opts.MaxWorlds

	simP := 0.0
	remaining := totalMass
	best := Pair{Q: qi, G: gi, Distance: opts.Tau + 1}
	decided := false
	accepted := false
	pairWorlds := int64(0)

	st.pv.Reset(pi.qs, pi.gs)
	for _, gr := range groups {
		if decided {
			break
		}
		gr.G.WorldsScratch(&st.ws, func(w *graph.Graph, p float64) bool {
			st.WorldsChecked++
			pairWorlds++
			worldBudget--
			if worldBudget < 0 {
				st.SkippedPairs++
				decided = true
				accepted = false
				return false
			}
			remaining -= p
			if st.pv.WorldLowerBound(w) <= opts.Tau {
				st.GEDCalls++
				res, err := ged.Compute(q, w, ged.Options{Threshold: opts.Tau, MaxStates: opts.VerifyMaxStates, Metrics: st.jo.gedM})
				switch {
				case err != nil:
					st.GEDBudgetHits++ // treated as dissimilar, recorded
				case !res.Exceeded:
					simP += p
					if res.Distance < best.Distance {
						best.Distance = res.Distance
						best.World = w.Clone()
						best.Mapping = res.Mapping
					}
				}
			}
			if !opts.DisableEarlyExit {
				if simP >= opts.Alpha {
					st.EarlyAccepts++
					decided, accepted = true, true
					return false
				}
				if simP+remaining < opts.Alpha {
					st.EarlyRejects++
					decided, accepted = true, false
					return false
				}
			}
			return true
		})
	}

	st.jo.worldsPerPair.Observe(float64(pairWorlds))
	if !decided {
		accepted = simP >= opts.Alpha
	}
	if !accepted {
		return Pair{}, false
	}
	best.SimP = simP
	if !opts.KeepMappings {
		best.Mapping = nil
	}
	return best, true
}
