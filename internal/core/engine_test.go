package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"simjoin/internal/fault"
	"simjoin/internal/filter"
	"simjoin/internal/obs"
)

// chainOf resolves a list of registered bound names, failing the test on
// unknown names so chain tests stay in sync with the registry.
func chainOf(t *testing.T, names ...string) []filter.Bound {
	t.Helper()
	chain := make([]filter.Bound, len(names))
	for i, n := range names {
		b, ok := filter.BoundByName(n)
		if !ok {
			t.Fatalf("bound %q not registered", n)
		}
		chain[i] = b
	}
	return chain
}

// TestFilterChainReorderMatchesOracle runs the join under several explicit
// chain orders — including chains that demote css, drop it entirely, or
// front-load the cheap certain-graph baselines — and checks every order
// returns exactly the oracle's pairs. Bounds only prune provably-unqualified
// pairs, so reordering (or removing) them must never change the result set.
func TestFilterChainReorderMatchesOracle(t *testing.T) {
	chains := [][]string{
		{"css", "prob"},
		{"prob", "css"},
		{"prob-tight", "css"},
		{"count", "lm", "css", "prob"},
		{"segos", "pars", "path-gram", "cstar", "css", "group"},
		{"group"},
		{"lm", "count", "cstar", "path-gram", "pars", "segos", "css", "prob", "prob-tight", "group"},
	}
	for seed := int64(3); seed <= 5; seed++ {
		d, u := smallWorkload(seed, 6, 6)
		for _, tau := range []int{0, 1, 2} {
			want := naiveJoin(d, u, tau, 0.6)
			for _, names := range chains {
				opts := Options{Tau: tau, Alpha: 0.6, GroupCount: 4, Workers: 2,
					FilterChain: chainOf(t, names...)}
				got, st, err := Join(d, u, opts)
				if err != nil {
					t.Fatalf("chain %v: %v", names, err)
				}
				if len(got) != len(want) {
					t.Fatalf("seed=%d tau=%d chain %v: got %d pairs, want %d",
						seed, tau, names, len(got), len(want))
				}
				for _, p := range got {
					if _, ok := want[[2]int{p.Q, p.G}]; !ok {
						t.Fatalf("chain %v returned false pair (%d,%d)", names, p.Q, p.G)
					}
				}
				if st.CSSPruned+st.ProbPruned+st.Candidates != st.Pairs {
					t.Fatalf("chain %v: pruned(%d+%d)+candidates(%d) != pairs(%d)",
						names, st.CSSPruned, st.ProbPruned, st.Candidates, st.Pairs)
				}
			}
		}
	}
}

// TestFilterChainIndexedEquivalence checks Join and JoinIndexed agree under a
// custom chain: same engine, different candidate source.
func TestFilterChainIndexedEquivalence(t *testing.T) {
	d, u := smallWorkload(31, 10, 10)
	opts := Options{Tau: 1, Alpha: 0.6, GroupCount: 4, Workers: 3,
		FilterChain: chainOf(t, "count", "css", "group")}
	flat, fs, err := Join(d, u, opts)
	if err != nil {
		t.Fatal(err)
	}
	idx := BuildIndex(d)
	indexed, is, err := JoinIndexed(idx, u, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(flat) != len(indexed) {
		t.Fatalf("flat join found %d pairs, indexed %d", len(flat), len(indexed))
	}
	for i := range flat {
		if flat[i].Q != indexed[i].Q || flat[i].G != indexed[i].G {
			t.Fatalf("pair %d differs: flat (%d,%d) vs indexed (%d,%d)",
				i, flat[i].Q, flat[i].G, indexed[i].Q, indexed[i].G)
		}
	}
	if fs.Pairs != is.Pairs {
		t.Errorf("Pairs differ: flat %d, indexed %d", fs.Pairs, is.Pairs)
	}
	if is.IndexSkipped == 0 {
		t.Log("index screened nothing on this workload (not a failure, but unusual)")
	}
}

// TestJoinWithSources exercises the exported engine entry point directly with
// both source kinds and confirms it matches the wrapper APIs.
func TestJoinWithSources(t *testing.T) {
	d, u := smallWorkload(17, 8, 8)
	opts := Options{Tau: 1, Alpha: 0.6, Mode: ModeSimJ, Workers: 2}

	want, ws, err := Join(d, u, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, gs, err := JoinWith(context.Background(), NewCrossSource(d, u), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || gs.Pairs != ws.Pairs || gs.Candidates != ws.Candidates {
		t.Fatalf("JoinWith(cross) diverges from Join: %d/%d pairs, stats %+v vs %+v",
			len(got), len(want), gs, ws)
	}

	idx := BuildIndex(d)
	wantIdx, wis, err := JoinIndexed(idx, u, opts)
	if err != nil {
		t.Fatal(err)
	}
	gotIdx, gis, err := JoinWith(context.Background(), idx.Source(u), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotIdx) != len(wantIdx) || gis.IndexSkipped != wis.IndexSkipped {
		t.Fatalf("JoinWith(index) diverges from JoinIndexed: %d/%d pairs, skipped %d/%d",
			len(gotIdx), len(wantIdx), gis.IndexSkipped, wis.IndexSkipped)
	}
}

// TestPrunedByAccounting checks the per-bound prune breakdown: it must sum to
// the aggregate prune counters (minus index prescreen skips, which bypass the
// chain), agree with the per-bound obs counters, and survive the snapshot
// round trip.
func TestPrunedByAccounting(t *testing.T) {
	d, u := smallWorkload(41, 12, 12)
	for _, indexed := range []bool{false, true} {
		reg := obs.New()
		opts := Options{Tau: 1, Alpha: 0.9, GroupCount: 4, Workers: 2, Obs: reg,
			FilterChain: chainOf(t, "count", "css", "prob")}
		var (
			st  Stats
			err error
		)
		if indexed {
			_, st, err = JoinIndexed(BuildIndex(d), u, opts)
		} else {
			_, st, err = Join(d, u, opts)
		}
		if err != nil {
			t.Fatal(err)
		}
		var byBound int64
		for _, n := range st.PrunedBy {
			byBound += n
		}
		if byBound != st.CSSPruned+st.ProbPruned-st.IndexSkipped {
			t.Errorf("indexed=%v: PrunedBy sums to %d, want css(%d)+prob(%d)-skipped(%d)",
				indexed, byBound, st.CSSPruned, st.ProbPruned, st.IndexSkipped)
		}
		snap := reg.Snapshot()
		for bound, n := range st.PrunedBy {
			metric := "simjoin_pruned_by_" + filter.MetricName(bound) + "_total"
			if snap.Counters[metric] != n {
				t.Errorf("indexed=%v: %s = %d, want %d", indexed, metric, snap.Counters[metric], n)
			}
		}
		round := StatsFromSnapshot(snap)
		if len(round.PrunedBy) != len(st.PrunedBy) {
			t.Fatalf("indexed=%v: round-trip PrunedBy has %d bounds, want %d",
				indexed, len(round.PrunedBy), len(st.PrunedBy))
		}
		for bound, n := range st.PrunedBy {
			if round.PrunedBy[bound] != n {
				t.Errorf("indexed=%v: round-trip PrunedBy[%s] = %d, want %d",
					indexed, bound, round.PrunedBy[bound], n)
			}
		}
	}
}

// TestChainValidation covers Options.FilterChain edge cases.
func TestChainValidation(t *testing.T) {
	d, u := smallWorkload(1, 2, 2)
	opts := Options{Tau: 1, Alpha: 0.5, FilterChain: []filter.Bound{nil}}
	if _, _, err := Join(d, u, opts); err == nil {
		t.Error("nil bound in chain accepted")
	}
	// An explicit chain overrides the mode entirely.
	reg := obs.New()
	opts = Options{Tau: 1, Alpha: 0.5, Mode: ModeSimJOpt, GroupCount: 4, Workers: 1,
		Obs: reg, FilterChain: chainOf(t, "lm")}
	_, st, err := Join(d, u, opts)
	if err != nil {
		t.Fatal(err)
	}
	for bound := range st.PrunedBy {
		if bound != "lm" {
			t.Errorf("chain [lm] pruned via unexpected bound %q", bound)
		}
	}
}

// BenchmarkPairFaultKey measures the satellite-1 win: the per-pair fault
// lookup key as a packed integer versus the old fmt.Sprintf string. The
// string variant allocates on every pair; the packed one is alloc-free.
func BenchmarkPairFaultKey(b *testing.B) {
	// Arm an unrelated pair so the match path runs without firing.
	if err := fault.Enable("core.pair=error@1048575/1048575"); err != nil {
		b.Fatal(err)
	}
	defer fault.Reset()
	rng := rand.New(rand.NewSource(1))
	qis := make([]int, 1024)
	gis := make([]int, 1024)
	for i := range qis {
		qis[i] = rng.Intn(1 << 16)
		gis[i] = rng.Intn(1 << 16)
	}
	b.Run("string", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			j := i & 1023
			if err := fault.Hit("core.pair", fmt.Sprintf("%d/%d", qis[j], gis[j])); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("packed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			j := i & 1023
			if err := fault.HitPair("core.pair", fault.PairKey(qis[j], gis[j])); err != nil {
				b.Fatal(err)
			}
		}
	})
}
