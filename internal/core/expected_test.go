package core

import (
	"math"
	"testing"

	"simjoin/internal/ged"
	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

func TestExpectedDistanceExact(t *testing.T) {
	// q: single vertex A. g: single vertex {A:0.7, B:0.3}.
	// E[ged] = 0.7*0 + 0.3*1 = 0.3.
	q := graph.New(1)
	q.AddVertex("A")
	g := ugraph.New(1)
	g.AddVertex(ugraph.Label{Name: "A", P: 0.7}, ugraph.Label{Name: "B", P: 0.3})
	e, err := ExpectedDistance(q, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-0.3) > 1e-12 {
		t.Fatalf("E[ged] = %v, want 0.3", e)
	}
}

func TestExpectedDistanceIdentity(t *testing.T) {
	d, u := smallWorkload(5, 1, 1)
	_ = d
	c := ugraph.FromCertain(mustWorld(t, u[0]))
	e, err := ExpectedDistance(mustWorld(t, u[0]), c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Fatalf("E[ged] against own world = %v", e)
	}
}

func mustWorld(t *testing.T, g *ugraph.Graph) *graph.Graph {
	t.Helper()
	w, _ := g.MostLikelyWorld()
	return w
}

func TestExpectedDistanceAgreesWithEnumeration(t *testing.T) {
	d, u := smallWorkload(17, 4, 4)
	for _, g := range u {
		for _, q := range d {
			want := 0.0
			mass := 0.0
			g.Worlds(func(w *graph.Graph, p float64) bool {
				want += p * float64(ged.Distance(q, w))
				mass += p
				return true
			})
			want /= mass
			got, err := ExpectedDistance(q, g, 0)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("E[ged] = %v, oracle %v", got, want)
			}
		}
	}
}

func TestExpectedDistanceBudget(t *testing.T) {
	g := ugraph.New(12)
	for i := 0; i < 12; i++ {
		g.AddVertex(ugraph.Label{Name: "A", P: 0.5}, ugraph.Label{Name: "B", P: 0.5})
	}
	q := graph.New(1)
	q.AddVertex("A")
	if _, err := ExpectedDistance(q, g, 100); err == nil {
		t.Error("budget overflow accepted")
	}
}

func TestJoinExpected(t *testing.T) {
	d, u := smallWorkload(21, 6, 5)
	pairs, err := JoinExpected(d, u, 1.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		e, err := ExpectedDistance(d[p.Q], u[p.G], 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(e-p.Expected) > 1e-9 || e > 1.5 {
			t.Fatalf("pair (%d,%d): expected %v (recomputed %v)", p.Q, p.G, p.Expected, e)
		}
	}
	// Oracle: no qualifying pair missed.
	for gi, g := range u {
		for qi, q := range d {
			e, err := ExpectedDistance(q, g, 0)
			if err != nil {
				t.Fatal(err)
			}
			if e <= 1.5 {
				found := false
				for _, p := range pairs {
					if p.Q == qi && p.G == gi {
						found = true
					}
				}
				if !found {
					t.Fatalf("qualifying pair (%d,%d) E=%v missed", qi, gi, e)
				}
			}
		}
	}
}
