package core

// The block-screening candidate source.
//
// blockSource wraps the cross-product and index-backed sources with the SoA
// block kernels of filter.GBlockSet: the uncertain side is packed once into
// blocks of Options.BlockSize graphs, every query signature is screened
// against whole blocks (size, label-overlap and probability-mass screens —
// see filter/block.go), and only the surviving pairs are batched into the
// per-pair filter chain. Every screen is sound for Def. 7, so the engine's
// accepted/rejected pair sets are bit-identical to the scalar path; the
// screens also subsume the index prescreens, which is why wrapping the
// index-backed source drops the per-graph candidate scan instead of running
// it twice (Stats.IndexSkipped is 0 on the block path — the prunes are
// attributed to the "block" stage instead).

import (
	"context"
	"math/bits"
	"time"

	"simjoin/internal/filter"
	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

// blockStageName keys the block screen's prunes in Stats.PrunedBy and labels
// its BoundProfile entry and simjoin_bound_* counters; blockStagePos is its
// profile position — before the chain's position 0, since the screen runs
// ahead of every per-pair bound.
const (
	blockStageName = "block"
	blockStagePos  = -1
)

// blockProf accumulates the block stage's cost/selectivity profile; Feed
// runs single-goroutine, so plain fields suffice.
type blockProf struct {
	evals      int64 // pairs screened: |D| × |U|
	pruned     int64 // pairs eliminated by any block screen
	massPruned int64 // of pruned, pairs the mass screen eliminated
	nanos      int64 // wall time inside Screen (when profiling is on)
}

// blockSource is the block-screening CandidateSource. It owns the full cross
// product (TotalPairs = |D|·|U|) and reports every screened-out pair through
// skip, so the engine's Pairs accounting matches the scalar sources.
type blockSource struct {
	d     []*graph.Graph
	qsigs []*filter.QSig
	u     []*ugraph.Graph
	gsig  func(gi int) *filter.GSig // per-graph signature, shared or lazy
	set   *filter.GBlockSet
	prof  blockProf
}

// newBlockSource wraps a known source type with block screening, or returns
// nil when the source is not recognised (custom JoinWith sources keep their
// own feeding logic — the engine then stays on the scalar path). The wrapped
// source's signature caches are reused: the cross source's eagerly built
// GSigs directly, the index source's lazily, built only for graphs with at
// least one block survivor.
func newBlockSource(src CandidateSource, blockSize int) *blockSource {
	switch s := src.(type) {
	case *crossSource:
		return &blockSource{
			d:     s.d,
			qsigs: s.qsigs,
			u:     s.u,
			gsig:  func(gi int) *filter.GSig { return s.gsigs[gi] },
			set:   filter.NewGBlockSet(s.u, blockSize),
		}
	case *indexSource:
		lazy := make([]*filter.GSig, len(s.u))
		return &blockSource{
			d:     s.idx.d,
			qsigs: s.idx.qsigs,
			u:     s.u,
			gsig: func(gi int) *filter.GSig {
				if lazy[gi] == nil {
					lazy[gi] = filter.NewGSig(s.u[gi])
				}
				return lazy[gi]
			},
			set: filter.NewGBlockSet(s.u, blockSize),
		}
	case *streamSource:
		// Streaming arrivals reuse the Resident's cached block set: the
		// resident side is packed once per (process, block size), not per
		// request.
		return &blockSource{
			d:     s.d,
			qsigs: s.qsigs,
			u:     s.res.u,
			gsig:  func(gi int) *filter.GSig { return s.res.gsigs[gi] },
			set:   s.res.blockSet(blockSize),
		}
	default:
		return nil
	}
}

func (s *blockSource) Queries() ([]*graph.Graph, []*filter.QSig) { return s.d, s.qsigs }

// finishSource implements sourceFinisher. On the block path every skipped
// pair was eliminated by the block screen (the screens subsume the index
// prescreens, so IndexSkipped gains 0): mass-screen prunes are probabilistic,
// the rest structural. Block-pruned pairs never reach joinPair, so they
// appear exactly once — here — and never in a chain bound's PrunedBy or
// event log.
func (s *blockSource) finishSource(total *Stats, skipped int64) {
	total.CSSPruned += skipped - s.prof.massPruned
	total.ProbPruned += s.prof.massPruned
	total.IndexSkipped += skipped - s.prof.pruned
	if s.prof.pruned > 0 {
		if total.PrunedBy == nil {
			total.PrunedBy = make(map[string]int64)
		}
		total.PrunedBy[blockStageName] += s.prof.pruned
	}
	total.BoundProfile = mergeBoundProfile(total.BoundProfile, []BoundCost{{
		Pos:    blockStagePos,
		Bound:  blockStageName,
		Evals:  s.prof.evals,
		Prunes: s.prof.pruned,
		Nanos:  s.prof.nanos,
	}})
}

func (s *blockSource) TotalPairs() int64 { return int64(len(s.d)) * int64(len(s.u)) }

// Feed screens every (query, block) combination and emits the survivors in
// the engine's usual shape: per uncertain graph, ascending query indices,
// chunked into sourceChunk-sized batches. Screening one block against all
// queries before moving on keeps the block's SoA slices hot in cache.
func (s *blockSource) Feed(ctx context.Context, opts *Options, emit func(Batch) bool, skip func(int64)) {
	// Per-bound timing follows the engine's profiling gate (joinObs.profile):
	// two clock reads per (query, block) — amortised over up to BlockSize
	// pairs — and none when observability is fully off.
	profiled := opts.Obs != nil || opts.Events != nil
	var sc filter.BlockScratch
	for bi := 0; bi < s.set.NumBlocks(); bi++ {
		// Deadline check between blocks (on top of the per-query check
		// below): a request whose context expired must not burn a sweep over
		// the remaining resident blocks before noticing.
		if ctx.Err() != nil {
			return
		}
		blk := s.set.Block(bi)
		n := blk.Len()
		// Survivor query lists, one per graph in the block. Allocated fresh
		// per block: emitted batches alias these slices and workers read them
		// after Feed has moved on, so the backing arrays must not be reused.
		lists := make([][]int, n)
		// The block's tallies fold into the profile only when the block
		// completes, in the same step as skip(): a cancellation mid-block
		// drops the partial block from both, keeping the engine's
		// skipped-vs-profile attribution arithmetic consistent.
		var bp blockProf
		for qi := range s.qsigs {
			if ctx.Err() != nil {
				return
			}
			var t0 time.Time
			if profiled {
				t0 = time.Now()
			}
			surv, massPruned := blk.Screen(s.qsigs[qi], opts.Tau, opts.Alpha, &sc)
			if profiled {
				bp.nanos += int64(time.Since(t0))
			}
			bp.evals += int64(n)
			bp.massPruned += int64(massPruned)
			bp.pruned += int64(n - surv)
			if surv == 0 {
				continue
			}
			for w, word := range sc.Bitmap {
				for ; word != 0; word &= word - 1 {
					i := w<<6 + bits.TrailingZeros64(word)
					lists[i] = append(lists[i], qi)
				}
			}
		}
		s.prof.evals += bp.evals
		s.prof.pruned += bp.pruned
		s.prof.massPruned += bp.massPruned
		s.prof.nanos += bp.nanos
		skip(bp.pruned)
		for i, qis := range lists {
			if len(qis) == 0 {
				continue
			}
			gi := blk.Base() + i
			gs := s.gsig(gi)
			for start := 0; start < len(qis); start += sourceChunk {
				end := start + sourceChunk
				if end > len(qis) {
					end = len(qis)
				}
				if !emit(Batch{GI: gi, G: s.u[gi], GS: gs, QIs: qis[start:end]}) {
					return
				}
			}
		}
	}
}
