package core

import (
	"context"
	"sort"
	"sync"
	"testing"

	"simjoin/internal/graph"
)

// Tests of the streaming-arrivals source: per-request delta joins against a
// Resident must return exactly the pairs the batch drivers return, on the
// scalar and block paths, including when many requests share one Resident
// concurrently.

// streamJoinAll joins every query of d one at a time against res (one
// JoinWith per query, as the resident service does per request) and returns
// the union re-indexed to d's query indices, sorted like Join's output.
func streamJoinAll(t *testing.T, res *Resident, d []*graph.Graph, opts Options) []Pair {
	t.Helper()
	var all []Pair
	for qi := range d {
		pairs, st, err := JoinWith(context.Background(), NewStreamSource(res, d[qi:qi+1]), opts)
		if err != nil {
			t.Fatalf("stream join for query %d: %v", qi, err)
		}
		if want := int64(res.Len()); st.Pairs != want {
			t.Fatalf("query %d: Pairs = %d, want %d", qi, st.Pairs, want)
		}
		for _, p := range pairs {
			p.Q = qi
			all = append(all, p)
		}
	}
	sortPairsQG(all)
	return all
}

func sortPairsQG(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Q != ps[j].Q {
			return ps[i].Q < ps[j].Q
		}
		return ps[i].G < ps[j].G
	})
}

func TestStreamSourceMatchesJoin(t *testing.T) {
	d, u := smallWorkload(23, 12, 10)
	res := NewResident(u)
	opts := DefaultOptions()
	opts.Alpha = 0.5
	opts.Workers = 2

	want, _, err := Join(d, u, opts)
	if err != nil {
		t.Fatal(err)
	}

	for _, bs := range []int{0, 4} {
		o := opts
		o.BlockSize = bs
		got := streamJoinAll(t, res, d, o)
		assertSamePairs(t, "stream vs batch", got, want)
	}
}

func TestStreamSourceConcurrentRequests(t *testing.T) {
	d, u := smallWorkload(29, 16, 12)
	res := NewResident(u)
	opts := DefaultOptions()
	opts.Alpha = 0.5
	opts.Workers = 2
	opts.BlockSize = 4 // shared cached GBlockSet across requests

	want, _, err := Join(d, u, opts)
	if err != nil {
		t.Fatal(err)
	}

	var (
		mu  sync.Mutex
		all []Pair
		wg  sync.WaitGroup
	)
	for qi := range d {
		wg.Add(1)
		go func(qi int) {
			defer wg.Done()
			pairs, _, err := JoinWith(context.Background(), NewStreamSource(res, d[qi:qi+1]), opts)
			if err != nil {
				t.Errorf("concurrent stream join %d: %v", qi, err)
				return
			}
			mu.Lock()
			for _, p := range pairs {
				p.Q = qi
				all = append(all, p)
			}
			mu.Unlock()
		}(qi)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	sortPairsQG(all)
	assertSamePairs(t, "concurrent streams vs batch", all, want)
}

func TestStreamSourceCancellation(t *testing.T) {
	d, u := smallWorkload(31, 4, 20)
	res := NewResident(u)
	opts := DefaultOptions()
	opts.Alpha = 0.5
	opts.Workers = 1

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pairs, st, err := JoinWith(ctx, NewStreamSource(res, d[:1]), opts)
	if err == nil {
		t.Fatal("cancelled stream join returned nil error")
	}
	if pairs != nil {
		t.Fatalf("cancelled stream join returned %d pairs", len(pairs))
	}
	if !st.Cancelled {
		t.Fatal("Stats.Cancelled not set on cancelled stream join")
	}
}
