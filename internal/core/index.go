package core

import (
	"context"
	"sort"

	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

// Index accelerates SimJ over a fixed certain-graph set D with two cheap,
// sound prescreens applied before the per-pair CSS bound:
//
//  1. Size screen — ged(q,g) ≥ |size(q) − size(g)| where size = |V| + |E|
//     (every edit changes the size by exactly 1), so only queries in a
//     ±τ size window around g need scanning. Queries are bucketed by size.
//  2. Label screen — ged(q,g) ≥ max(|V(q)|,|V(g)|) − λV(q,g) (part of the
//     LM filter), and λV is upper-bounded by a multiset-overlap count that
//     costs O(labels) instead of the O(V³) matching.
//
// Both screens are implied by bounds the pipeline applies anyway, so
// JoinIndexed returns exactly the same pairs as Join.
type Index struct {
	d       []*graph.Graph
	bySize  map[int][]int
	minSize int
	maxSize int
	// labels[i] is the concrete vertex label multiset of d[i]; wilds[i] its
	// wildcard vertex count.
	labels []map[string]int
	wilds  []int
}

// BuildIndex indexes a certain-graph set for repeated joins.
func BuildIndex(d []*graph.Graph) *Index {
	idx := &Index{
		d:      d,
		bySize: make(map[int][]int),
		labels: make([]map[string]int, len(d)),
		wilds:  make([]int, len(d)),
	}
	idx.minSize = int(^uint(0) >> 1)
	for i, q := range d {
		size := q.Size()
		idx.bySize[size] = append(idx.bySize[size], i)
		if size < idx.minSize {
			idx.minSize = size
		}
		if size > idx.maxSize {
			idx.maxSize = size
		}
		idx.labels[i], idx.wilds[i] = q.VertexLabelMultiset()
	}
	return idx
}

// Len returns the number of indexed graphs.
func (idx *Index) Len() int { return len(idx.d) }

// Candidates streams the indices of queries surviving both prescreens
// against the uncertain graph g at threshold tau, in ascending order.
func (idx *Index) Candidates(g *ugraph.Graph, tau int) []int {
	gSize := g.Size()
	// Union label multiset of g (any candidate label can realise a match).
	gLabels := make(map[string]bool)
	gWilds := 0
	for v := 0; v < g.NumVertices(); v++ {
		wild := false
		for _, l := range g.Labels(v) {
			if graph.IsWildcard(l.Name) {
				wild = true
			} else {
				gLabels[l.Name] = true
			}
		}
		if wild {
			gWilds++
		}
	}

	var out []int
	lo, hi := gSize-tau, gSize+tau
	if lo < idx.minSize {
		lo = idx.minSize
	}
	if hi > idx.maxSize {
		hi = idx.maxSize
	}
	for size := lo; size <= hi; size++ {
		for _, i := range idx.bySize[size] {
			if idx.labelScreen(i, g, gLabels, gWilds, tau) {
				out = append(out, i)
			}
		}
	}
	sort.Ints(out)
	return out
}

// labelScreen applies the cheap λV overlap bound: if even the most generous
// overlap estimate leaves more than τ unmatched vertices on the larger side,
// the LM (and hence CSS) bound would prune the pair anyway.
func (idx *Index) labelScreen(i int, g *ugraph.Graph, gLabels map[string]bool, gWilds, tau int) bool {
	q := idx.d[i]
	overlap := idx.wilds[i] // every wildcard q-vertex can match something
	for l, c := range idx.labels[i] {
		if gLabels[l] {
			overlap += c
		}
	}
	overlap += gWilds // wildcard g-vertices absorb leftover q-vertices
	maxV := q.NumVertices()
	if g.NumVertices() > maxV {
		maxV = g.NumVertices()
	}
	if overlap > maxV {
		overlap = maxV
	}
	return maxV-overlap <= tau
}

// JoinIndexed is Join using a prebuilt index over D. It returns exactly the
// pairs Join(idx.d, u, opts) returns; Stats.IndexSkipped counts the pairs
// the prescreens eliminated without touching the bound machinery.
func JoinIndexed(idx *Index, u []*ugraph.Graph, opts Options) ([]Pair, Stats, error) {
	return JoinIndexedContext(context.Background(), idx, u, opts)
}

// JoinIndexedContext is JoinIndexed with cancellation, with the same
// contract as JoinContext: on cancellation the accumulated Stats and
// ctx.Err() are returned and the partial results are dropped.
func JoinIndexedContext(ctx context.Context, idx *Index, u []*ugraph.Graph, opts Options) ([]Pair, Stats, error) {
	if err := opts.normalise(); err != nil {
		return nil, Stats{}, err
	}
	jo := newJoinObs(&opts)
	stopProgress := jo.startProgress(&opts, int64(idx.Len())*int64(len(u)))
	defer stopProgress()

	type task struct {
		gi    int
		cands []int
	}
	tasks := make(chan task, 64)
	results := make([]Pair, 0)
	var total Stats
	done := make(chan struct{})

	go func() {
		defer close(done)
		local := rec{jo: jo}
		for t := range tasks {
			for _, qi := range t.cands {
				if ctx.Err() != nil {
					break
				}
				local.Pairs++
				p, ok := joinPair(idx.d[qi], u[t.gi], qi, t.gi, &opts, &local)
				if ok {
					results = append(results, p)
					local.Results++
				}
				if jo.progress {
					jo.pairsDone.Add(1)
				}
			}
		}
		total.add(&local.Stats)
	}()

	var skipped int64
feed:
	for gi, g := range u {
		if ctx.Err() != nil {
			break
		}
		cands := idx.Candidates(g, opts.Tau)
		skipped += int64(idx.Len() - len(cands))
		if jo.progress {
			jo.pairsDone.Add(int64(idx.Len() - len(cands)))
		}
		select {
		case tasks <- task{gi: gi, cands: cands}:
		case <-ctx.Done():
			break feed
		}
	}
	close(tasks)
	<-done

	total.Pairs += skipped
	total.CSSPruned += skipped // prescreens are implied by the CSS stage
	total.IndexSkipped = skipped
	publishStats(opts.Obs, &total)
	if err := ctx.Err(); err != nil {
		return nil, total, err
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Q != results[j].Q {
			return results[i].Q < results[j].Q
		}
		return results[i].G < results[j].G
	})
	return results, total, nil
}
