package core

import (
	"context"
	"sort"

	"simjoin/internal/filter"
	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

// Index accelerates SimJ over a fixed certain-graph set D with two cheap,
// sound prescreens applied before the per-pair CSS bound:
//
//  1. Size screen — ged(q,g) ≥ |size(q) − size(g)| where size = |V| + |E|
//     (every edit changes the size by exactly 1), so only queries in a
//     ±τ size window around g need scanning. Queries are bucketed by size.
//  2. Label screen — ged(q,g) ≥ max(|V(q)|,|V(g)|) − λV(q,g) (part of the
//     LM filter), and λV is upper-bounded by a multiset-overlap count that
//     costs O(labels) instead of the O(V³) matching.
//
// Both screens are implied by bounds the pipeline applies anyway, so
// JoinIndexed returns exactly the same pairs as Join.
//
// The index also stores every query's filter signature (filter.QSig), built
// once at BuildIndex time and shared by all joins over the index.
type Index struct {
	d       []*graph.Graph
	qsigs   []*filter.QSig
	bySize  map[int][]int
	minSize int
	maxSize int
}

// BuildIndex indexes a certain-graph set for repeated joins.
func BuildIndex(d []*graph.Graph) *Index {
	idx := &Index{
		d:      d,
		qsigs:  filter.NewQSigs(d),
		bySize: make(map[int][]int),
	}
	idx.minSize = int(^uint(0) >> 1)
	for i, q := range d {
		size := q.Size()
		idx.bySize[size] = append(idx.bySize[size], i)
		if size < idx.minSize {
			idx.minSize = size
		}
		if size > idx.maxSize {
			idx.maxSize = size
		}
	}
	return idx
}

// Len returns the number of indexed graphs.
func (idx *Index) Len() int { return len(idx.d) }

// Candidates streams the indices of queries surviving both prescreens
// against the uncertain graph g at threshold tau, in ascending order.
func (idx *Index) Candidates(g *ugraph.Graph, tau int) []int {
	return idx.candidates(g, tau, new(graph.LabelSet))
}

// candidates is Candidates with a caller-owned label-set scratch bitset,
// cleared on entry; the feed loop of JoinIndexedContext reuses one bitset
// across every uncertain graph instead of allocating |U| of them.
func (idx *Index) candidates(g *ugraph.Graph, tau int, gSet *graph.LabelSet) []int {
	gSize := g.Size()
	// Union label set of g (any candidate label can realise a match), via the
	// same kernel the shard planner uses.
	gWilds := filter.UnionConcreteLabels(g, gSet)

	var out []int
	lo, hi := gSize-tau, gSize+tau
	if lo < idx.minSize {
		lo = idx.minSize
	}
	if hi > idx.maxSize {
		hi = idx.maxSize
	}
	for size := lo; size <= hi; size++ {
		for _, i := range idx.bySize[size] {
			if idx.labelScreen(i, g, gSet, gWilds, tau) {
				out = append(out, i)
			}
		}
	}
	sort.Ints(out)
	return out
}

// labelScreen applies the cheap λV overlap bound: if even the most generous
// overlap estimate leaves more than τ unmatched vertices on the larger side,
// the LM (and hence CSS) bound would prune the pair anyway. The arithmetic
// lives in filter.LabelOverlapScreen, shared with the sharded candidate
// generator so the two paths cannot drift apart.
func (idx *Index) labelScreen(i int, g *ugraph.Graph, gSet *graph.LabelSet, gWilds, tau int) bool {
	return filter.LabelOverlapScreen(idx.qsigs[i], gSet, gWilds, g.NumVertices(), tau)
}

// JoinIndexed is Join using a prebuilt index over D. It returns exactly the
// pairs Join(idx.d, u, opts) returns; Stats.IndexSkipped counts the pairs
// the prescreens eliminated without touching the bound machinery.
func JoinIndexed(idx *Index, u []*ugraph.Graph, opts Options) ([]Pair, Stats, error) {
	return JoinIndexedContext(context.Background(), idx, u, opts)
}

// Source returns the CandidateSource streaming only the pairs that survive
// the index's prescreens against u, for use with JoinWith.
func (idx *Index) Source(u []*ugraph.Graph) CandidateSource {
	return &indexSource{idx: idx, u: u}
}

// JoinIndexedContext is JoinIndexed with cancellation, with the same
// contract as JoinContext: on cancellation the accumulated Stats and
// ctx.Err() are returned and the partial results are dropped. It is the same
// pipeline engine as JoinContext with the index-backed candidate source
// plugged in: the source runs the prescreens and builds each uncertain
// graph's filter signature once, then fans the candidate list out in batches.
func JoinIndexedContext(ctx context.Context, idx *Index, u []*ugraph.Graph, opts Options) ([]Pair, Stats, error) {
	if opts.Shards > 1 {
		// The sharded generator applies the same prescreens the index does
		// (both finish with filter.LabelOverlapScreen), so routing here keeps
		// JoinIndexed's results and Stats bit-identical at any shard count.
		// The index's query signatures are reused for the shard plan.
		pairs, st, _, err := shardedJoin(ctx, idx.qsigs, idx.d, u, opts)
		return pairs, st, err
	}
	return joinEngine(ctx, &indexSource{idx: idx, u: u}, opts)
}
