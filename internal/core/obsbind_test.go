package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"simjoin/internal/filter"
	"simjoin/internal/obs"
)

// fillStats sets every field of a Stats to a distinct nonzero value via
// reflection, so coverage holes show up no matter which field is missed.
func fillStats(t *testing.T, s *Stats) {
	t.Helper()
	v := reflect.ValueOf(s).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Int64:
			f.SetInt(int64(100 + i))
		case reflect.Bool:
			f.SetBool(true)
		case reflect.Slice:
			if v.Type().Field(i).Name == "BoundProfile" {
				// The profile merges by (position, bound), so the fill must be
				// a real entry (empty bound names do not round-trip through
				// the labelled counters).
				f.Set(reflect.ValueOf([]BoundCost{{
					Pos: 0, Bound: "css",
					Evals: int64(100*i + 1), Prunes: int64(100*i + 2), Nanos: int64(100*i + 3),
				}}))
			} else {
				f.Set(reflect.MakeSlice(f.Type(), 1, 1))
			}
		case reflect.Map:
			// PrunedBy: one entry per registered bound name, distinct values.
			m := reflect.MakeMap(f.Type())
			for j, name := range filter.BoundNames() {
				m.SetMapIndex(reflect.ValueOf(name), reflect.ValueOf(int64(1000+100*i+j)))
			}
			f.Set(m)
		default:
			t.Fatalf("Stats field %s has unhandled kind %s", v.Type().Field(i).Name, f.Kind())
		}
	}
}

// statsEqual compares two Stats deeply; Stats grew non-comparable fields
// (the quarantine log), so tests can no longer use ==.
func statsEqual(a, b Stats) bool {
	return reflect.DeepEqual(a, b)
}

// counterPart strips the non-counter fields (the Cancelled flag and the
// quarantine log), leaving what publishStats/StatsFromSnapshot round-trip
// through the registry.
func counterPart(s Stats) Stats {
	s.Cancelled = false
	s.Quarantined = nil
	return s
}

// TestStatsAddCoversAllFields asserts Stats.add folds in every field: a
// forgotten += line leaves the corresponding field at zero.
func TestStatsAddCoversAllFields(t *testing.T) {
	var src, dst Stats
	fillStats(t, &src)
	dst.add(&src)
	if !statsEqual(dst, src) {
		t.Fatalf("Stats.add does not cover every field:\n got %+v\nwant %+v", dst, src)
	}
	dst.add(&src)
	v := reflect.ValueOf(dst)
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		name := v.Type().Field(i).Name
		switch f.Kind() {
		case reflect.Int64:
			if got, want := f.Int(), 2*(100+int64(i)); got != want {
				t.Errorf("after double add, field %s = %d, want %d", name, got, want)
			}
		case reflect.Bool:
			if !f.Bool() {
				t.Errorf("after double add, flag %s lost", name)
			}
		case reflect.Slice:
			if name == "BoundProfile" {
				// Profiles merge by (position, bound): double add keeps one
				// entry with doubled tallies.
				bp := dst.BoundProfile
				if len(bp) != 1 || bp[0].Evals != 2*src.BoundProfile[0].Evals ||
					bp[0].Prunes != 2*src.BoundProfile[0].Prunes || bp[0].Nanos != 2*src.BoundProfile[0].Nanos {
					t.Errorf("after double add, BoundProfile = %+v, want one entry with doubled tallies of %+v", bp, src.BoundProfile[0])
				}
			} else if f.Len() != 2 {
				t.Errorf("after double add, log %s has %d entries, want 2", name, f.Len())
			}
		case reflect.Map:
			iter := f.MapRange()
			for iter.Next() {
				want := 2 * src.PrunedBy[iter.Key().String()]
				if got := iter.Value().Int(); got != want {
					t.Errorf("after double add, %s[%s] = %d, want %d", name, iter.Key(), got, want)
				}
			}
		}
	}
}

// TestStatsMetricTableCoversAllFields asserts the declarative field↔metric
// table behind publishStats/StatsFromSnapshot names every Stats field
// exactly once, so Stats and the registry cannot drift apart as fields are
// added.
func TestStatsMetricTableCoversAllFields(t *testing.T) {
	// Count the counter-shaped fields; the Cancelled flag and Quarantined log
	// are deliberately registry-exempt (QuarantinedPairs carries the count),
	// the PrunedBy map is published per bound through prunedByMetric, and
	// BoundProfile per (bound, position) through publishBoundProfile.
	numeric := 0
	typ := reflect.TypeOf(Stats{})
	for i := 0; i < typ.NumField(); i++ {
		switch typ.Field(i).Name {
		case "Cancelled", "Quarantined", "PrunedBy", "BoundProfile":
		default:
			numeric++
			if typ.Field(i).Type.Kind() != reflect.Int64 {
				t.Errorf("Stats field %s is not int64-backed yet absent from the exemption list", typ.Field(i).Name)
			}
		}
	}
	if got := len(statsCounterSpec) + len(statsDurationSpec); got != numeric {
		t.Fatalf("metric table has %d entries, Stats has %d counter fields", got, numeric)
	}
	// Each table entry must address a distinct field.
	var probe Stats
	seen := make(map[*int64]string)
	for _, c := range statsCounterSpec {
		p := c.fld(&probe)
		if prev, dup := seen[p]; dup {
			t.Errorf("counter %q and %q address the same Stats field", c.name, prev)
		}
		seen[p] = c.name
		if !strings.HasPrefix(c.name, "simjoin_") || !strings.HasSuffix(c.name, "_total") {
			t.Errorf("counter name %q does not follow simjoin_*_total", c.name)
		}
	}
	durSeen := make(map[*time.Duration]string)
	for _, c := range statsDurationSpec {
		p := c.fld(&probe)
		if prev, dup := durSeen[p]; dup {
			t.Errorf("duration counter %q and %q address the same Stats field", c.name, prev)
		}
		durSeen[p] = c.name
	}
}

// TestPublishStatsRoundTrip pushes a fully populated Stats through the
// registry and back; any asymmetry between publishStats and
// StatsFromSnapshot breaks the equality.
func TestPublishStatsRoundTrip(t *testing.T) {
	var src Stats
	fillStats(t, &src)
	reg := obs.New()
	publishStats(reg, &src)
	got := StatsFromSnapshot(reg.Snapshot())
	if !statsEqual(got, counterPart(src)) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, counterPart(src))
	}
	// publishStats accumulates: a second publish doubles every counter.
	publishStats(reg, &src)
	got = StatsFromSnapshot(reg.Snapshot())
	want := counterPart(src)
	want.add(&src)
	if !statsEqual(got, counterPart(want)) {
		t.Fatalf("second publish should accumulate:\n got %+v\nwant %+v", got, counterPart(want))
	}
}

// TestJoinStatsMatchRegistry runs real joins with a registry attached and
// checks (a) the returned Stats equal the snapshot-derived Stats and (b) the
// per-filter counters sum consistently with the lumped Stats fields.
func TestJoinStatsMatchRegistry(t *testing.T) {
	d, u := smallWorkload(7, 8, 8)
	for _, mode := range []Mode{ModeCSSOnly, ModeSimJ, ModeSimJOpt} {
		reg := obs.New()
		opts := DefaultOptions()
		opts.Mode = mode
		opts.Tau = 1
		opts.Alpha = 0.5
		opts.Obs = reg
		opts.Tracer = obs.NewTracer(128)
		_, st, err := Join(d, u, opts)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		snap := reg.Snapshot()
		from := StatsFromSnapshot(snap)
		// Durations are re-measured per field; counters must match exactly.
		from.PruneTime, from.VerifyTime = st.PruneTime, st.VerifyTime
		if !statsEqual(from, counterPart(st)) {
			t.Errorf("mode %v: snapshot stats diverge:\n got %+v\nwant %+v", mode, from, counterPart(st))
		}
		c := snap.Counters
		if got := c["filter_css_pruned_total"]; got != st.CSSPruned {
			t.Errorf("mode %v: filter_css_pruned_total = %d, Stats.CSSPruned = %d", mode, got, st.CSSPruned)
		}
		probSum := c["filter_prob_pruned_total"] + c["filter_prob_tight_pruned_total"] + c["filter_group_bound_pruned_total"]
		if probSum != st.ProbPruned {
			t.Errorf("mode %v: per-filter prob prunes sum to %d, Stats.ProbPruned = %d", mode, probSum, st.ProbPruned)
		}
		if got := c["filter_group_css_pruned_total"]; got != st.GroupsPruned {
			t.Errorf("mode %v: filter_group_css_pruned_total = %d, Stats.GroupsPruned = %d", mode, got, st.GroupsPruned)
		}
		if got := c["ged_compute_total"]; got != st.GEDCalls {
			t.Errorf("mode %v: ged_compute_total = %d, Stats.GEDCalls = %d", mode, got, st.GEDCalls)
		}
		if got := c["ged_budget_exhausted_total"]; got != st.GEDBudgetHits {
			t.Errorf("mode %v: ged_budget_exhausted_total = %d, Stats.GEDBudgetHits = %d", mode, got, st.GEDBudgetHits)
		}
		// Evaluated counts: the CSS bound sees every pair once.
		if got := c["filter_css_evaluated_total"]; got != st.Pairs {
			t.Errorf("mode %v: filter_css_evaluated_total = %d, Stats.Pairs = %d", mode, got, st.Pairs)
		}
		// Stage histograms observed once per pair surviving to each stage.
		if h, ok := snap.Histograms["simjoin_prune_seconds"]; !ok || h.Count != st.Pairs {
			t.Errorf("mode %v: simjoin_prune_seconds count = %d, want %d", mode, h.Count, st.Pairs)
		}
		if h, ok := snap.Histograms["simjoin_verify_seconds"]; !ok || h.Count != st.Candidates {
			t.Errorf("mode %v: simjoin_verify_seconds count = %d, want %d", mode, h.Count, st.Candidates)
		}
	}
}

// TestJoinIndexedPublishesStats checks JoinIndexed's registry publication,
// including the skipped-pair accounting added outside the worker loop.
func TestJoinIndexedPublishesStats(t *testing.T) {
	d, u := smallWorkload(11, 10, 6)
	reg := obs.New()
	opts := DefaultOptions()
	opts.Alpha = 0.5
	opts.Obs = reg
	_, st, err := JoinIndexed(BuildIndex(d), u, opts)
	if err != nil {
		t.Fatal(err)
	}
	from := StatsFromSnapshot(reg.Snapshot())
	from.PruneTime, from.VerifyTime = st.PruneTime, st.VerifyTime
	if !statsEqual(from, counterPart(st)) {
		t.Fatalf("snapshot stats diverge:\n got %+v\nwant %+v", from, counterPart(st))
	}
	if st.IndexSkipped == 0 {
		t.Log("note: prescreens skipped nothing on this workload")
	}
}

// TestJoinContextCancelled verifies the cancellation contract: a cancelled
// context stops the join, ctx.Err() is surfaced, and no results leak out.
func TestJoinContextCancelled(t *testing.T) {
	d, u := smallWorkload(3, 10, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, st, err := JoinContext(ctx, d, u, DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled join returned %d results, want none", len(res))
	}
	if st.Pairs >= int64(len(d))*int64(len(u)) {
		t.Fatalf("cancelled join still processed all %d pairs", st.Pairs)
	}
}

// TestJoinIndexedContextCancelled does the same for the indexed join.
func TestJoinIndexedContextCancelled(t *testing.T) {
	d, u := smallWorkload(3, 10, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, _, err := JoinIndexedContext(ctx, BuildIndex(d), u, DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled join returned %d results, want none", len(res))
	}
}

// TestJoinContextDeadline cancels mid-join via a deadline and checks the
// join returns promptly rather than completing the full cross product.
func TestJoinContextDeadline(t *testing.T) {
	d, u := smallWorkload(5, 12, 12)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // ensure expiry before the feed starts
	_, _, err := JoinContext(ctx, d, u, DefaultOptions())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestJoinProgressReporter exercises the progress plumbing end to end: a
// fast interval must produce at least a final report with the exact totals.
func TestJoinProgressReporter(t *testing.T) {
	d, u := smallWorkload(9, 6, 6)
	var (
		mu    sync.Mutex
		lines []string
	)
	logger := obs.FuncLogger(func(format string, args ...interface{}) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	})
	opts := DefaultOptions()
	opts.Alpha = 0.5
	opts.Workers = 2
	opts.Logger = logger
	opts.ProgressEvery = time.Millisecond
	_, st, err := Join(d, u, opts)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) == 0 {
		t.Fatal("no progress output")
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, "join done") {
		t.Fatalf("final line %q is not the completion report", last)
	}
	if want := fmt.Sprintf("%d/%d pairs", st.Pairs, st.Pairs); !strings.Contains(last, want) {
		t.Fatalf("final line %q lacks the pair total %s", last, want)
	}
}
