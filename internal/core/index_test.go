package core

import (
	"testing"

	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

func TestJoinIndexedMatchesJoin(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		d, u := smallWorkload(seed, 12, 10)
		idx := BuildIndex(d)
		for _, tau := range []int{0, 1, 2} {
			opts := Options{Tau: tau, Alpha: 0.5, Mode: ModeSimJ, Workers: 2}
			want, wantStats, err := Join(d, u, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, gotStats, err := JoinIndexed(idx, u, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("seed=%d tau=%d: indexed %d pairs, plain %d", seed, tau, len(got), len(want))
			}
			for i := range got {
				if got[i].Q != want[i].Q || got[i].G != want[i].G {
					t.Fatalf("pair %d differs: (%d,%d) vs (%d,%d)", i, got[i].Q, got[i].G, want[i].Q, want[i].G)
				}
			}
			if gotStats.Pairs != wantStats.Pairs {
				t.Errorf("accounting: indexed pairs %d != %d", gotStats.Pairs, wantStats.Pairs)
			}
			if tau <= 1 && gotStats.IndexSkipped == 0 {
				t.Errorf("tau=%d: index skipped nothing", tau)
			}
		}
	}
}

func TestIndexCandidatesSound(t *testing.T) {
	// Every pair the index skips must be beyond tau for every world.
	d, u := smallWorkload(7, 10, 8)
	idx := BuildIndex(d)
	naive := naiveJoin(d, u, 2, 0.1)
	for gi, g := range u {
		cands := map[int]bool{}
		for _, qi := range idx.Candidates(g, 2) {
			cands[qi] = true
		}
		for key := range naive {
			if key[1] == gi && !cands[key[0]] {
				t.Fatalf("index dropped matching pair q=%d g=%d", key[0], key[1])
			}
		}
	}
}

func TestIndexEmpty(t *testing.T) {
	idx := BuildIndex(nil)
	if idx.Len() != 0 {
		t.Fatal("empty index not empty")
	}
	g := ugraph.New(1)
	g.AddVertex(ugraph.Label{Name: "A", P: 1})
	if c := idx.Candidates(g, 5); len(c) != 0 {
		t.Fatalf("candidates from empty index: %v", c)
	}
	pairs, st, err := JoinIndexed(idx, []*ugraph.Graph{g}, Options{Tau: 1, Alpha: 0.5})
	if err != nil || len(pairs) != 0 || st.Pairs != 0 {
		t.Fatalf("empty indexed join: %v %v %v", pairs, st, err)
	}
}

func TestIndexSizeScreen(t *testing.T) {
	// A 2-vertex query cannot be within tau=1 of an 8-vertex graph.
	small := graph.New(2)
	small.AddVertex("A")
	small.AddVertex("B")
	small.MustAddEdge(0, 1, "p")
	idx := BuildIndex([]*graph.Graph{small})

	big := ugraph.New(8)
	for i := 0; i < 8; i++ {
		big.AddVertex(ugraph.Label{Name: "A", P: 1})
	}
	if c := idx.Candidates(big, 1); len(c) != 0 {
		t.Fatalf("size screen failed: %v", c)
	}
	if c := idx.Candidates(big, 10); len(c) != 1 {
		t.Fatalf("generous tau should pass: %v", c)
	}
}
