package core

import (
	"context"
	"math/rand"
	"testing"

	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

func TestJoinIndexedMatchesJoin(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		d, u := smallWorkload(seed, 12, 10)
		idx := BuildIndex(d)
		for _, tau := range []int{0, 1, 2} {
			opts := Options{Tau: tau, Alpha: 0.5, Mode: ModeSimJ, Workers: 2}
			want, wantStats, err := Join(d, u, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, gotStats, err := JoinIndexed(idx, u, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("seed=%d tau=%d: indexed %d pairs, plain %d", seed, tau, len(got), len(want))
			}
			for i := range got {
				if got[i].Q != want[i].Q || got[i].G != want[i].G {
					t.Fatalf("pair %d differs: (%d,%d) vs (%d,%d)", i, got[i].Q, got[i].G, want[i].Q, want[i].G)
				}
			}
			if gotStats.Pairs != wantStats.Pairs {
				t.Errorf("accounting: indexed pairs %d != %d", gotStats.Pairs, wantStats.Pairs)
			}
			if tau <= 1 && gotStats.IndexSkipped == 0 {
				t.Errorf("tau=%d: index skipped nothing", tau)
			}
		}
	}
}

func TestIndexCandidatesSound(t *testing.T) {
	// Every pair the index skips must be beyond tau for every world.
	d, u := smallWorkload(7, 10, 8)
	idx := BuildIndex(d)
	naive := naiveJoin(d, u, 2, 0.1)
	for gi, g := range u {
		cands := map[int]bool{}
		for _, qi := range idx.Candidates(g, 2) {
			cands[qi] = true
		}
		for key := range naive {
			if key[1] == gi && !cands[key[0]] {
				t.Fatalf("index dropped matching pair q=%d g=%d", key[0], key[1])
			}
		}
	}
}

func TestIndexEmpty(t *testing.T) {
	idx := BuildIndex(nil)
	if idx.Len() != 0 {
		t.Fatal("empty index not empty")
	}
	g := ugraph.New(1)
	g.AddVertex(ugraph.Label{Name: "A", P: 1})
	if c := idx.Candidates(g, 5); len(c) != 0 {
		t.Fatalf("candidates from empty index: %v", c)
	}
	pairs, st, err := JoinIndexed(idx, []*ugraph.Graph{g}, Options{Tau: 1, Alpha: 0.5})
	if err != nil || len(pairs) != 0 || st.Pairs != 0 {
		t.Fatalf("empty indexed join: %v %v %v", pairs, st, err)
	}
}

// wildcardHeavyWorkload builds queries where most vertices are SPARQL
// variables (wildcards) — the worst case for the label screen, which must
// lean entirely on its wildcard-absorption terms.
func wildcardHeavyWorkload(seed int64, nd, nu int, wildFrac float64) ([]*graph.Graph, []*ugraph.Graph) {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"A", "B", "C"}
	d := make([]*graph.Graph, nd)
	for i := range d {
		n := 2 + rng.Intn(3)
		q := graph.New(n)
		for v := 0; v < n; v++ {
			if rng.Float64() < wildFrac {
				q.AddVertex("?x")
			} else {
				q.AddVertex(labels[rng.Intn(len(labels))])
			}
		}
		for t := 0; t < n; t++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b && !q.HasEdge(a, b) {
				q.MustAddEdge(a, b, "p")
			}
		}
		d[i] = q
	}
	u := make([]*ugraph.Graph, nu)
	for i := range u {
		u[i] = randomUncertain(rng, 2+rng.Intn(3), rng.Intn(3), 2)
	}
	return d, u
}

// TestIndexLabelScreenWildcardQueries covers the screen's wildcard terms:
// wildcard-heavy and all-wildcard queries must never be screened out when a
// match is possible, so the index-backed source agrees with the cross-product
// source through the same engine.
func TestIndexLabelScreenWildcardQueries(t *testing.T) {
	for _, wildFrac := range []float64{0.6, 1.0} {
		d, u := wildcardHeavyWorkload(61, 10, 8, wildFrac)
		idx := BuildIndex(d)
		for _, tau := range []int{0, 1, 2} {
			opts := Options{Tau: tau, Alpha: 0.5, Mode: ModeSimJ, Workers: 2}
			want, _, err := JoinWith(context.Background(), NewCrossSource(d, u), opts)
			if err != nil {
				t.Fatal(err)
			}
			got, st, err := JoinWith(context.Background(), idx.Source(u), opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("wildFrac=%v tau=%d: indexed %d pairs, cross %d",
					wildFrac, tau, len(got), len(want))
			}
			for i := range got {
				if got[i].Q != want[i].Q || got[i].G != want[i].G {
					t.Fatalf("wildFrac=%v tau=%d: pair %d differs", wildFrac, tau, i)
				}
			}
			if st.Pairs != int64(len(d)*len(u)) {
				t.Errorf("accounting: %d pairs, want %d", st.Pairs, len(d)*len(u))
			}
		}
	}
}

// TestIndexLabelScreenAllWildcardQuery pins the degenerate case directly: a
// query of only variables overlaps any graph on every vertex, so only the
// size screen may reject it.
func TestIndexLabelScreenAllWildcardQuery(t *testing.T) {
	q := graph.New(3)
	for i := 0; i < 3; i++ {
		q.AddVertex("?v")
	}
	q.MustAddEdge(0, 1, "p")
	q.MustAddEdge(1, 2, "p")
	idx := BuildIndex([]*graph.Graph{q})

	// Same size, fully disjoint concrete labels: label screen must admit.
	g := ugraph.New(3)
	for i := 0; i < 3; i++ {
		g.AddVertex(ugraph.Label{Name: "Z", P: 1})
	}
	g.MustAddEdge(0, 1, "q")
	g.MustAddEdge(1, 2, "q")
	if c := idx.Candidates(g, 0); len(c) != 1 {
		t.Fatalf("all-wildcard query screened out at tau=0: %v", c)
	}

	// The mirror case: an all-wildcard uncertain graph absorbs any query.
	wild := ugraph.New(3)
	for i := 0; i < 3; i++ {
		wild.AddVertex(ugraph.Label{Name: "?w", P: 1})
	}
	wild.MustAddEdge(0, 1, "p")
	wild.MustAddEdge(1, 2, "p")
	concrete := graph.New(3)
	concrete.AddVertex("X")
	concrete.AddVertex("Y")
	concrete.AddVertex("Z")
	concrete.MustAddEdge(0, 1, "p")
	concrete.MustAddEdge(1, 2, "p")
	idx2 := BuildIndex([]*graph.Graph{concrete})
	if c := idx2.Candidates(wild, 0); len(c) != 1 {
		t.Fatalf("all-wildcard graph screened out at tau=0: %v", c)
	}
}

// TestIndexScreenGenerousTauAdmitsAll checks the admit-everything boundary:
// once tau reaches max graph size, neither prescreen may drop a single query,
// whatever the label overlap.
func TestIndexScreenGenerousTauAdmitsAll(t *testing.T) {
	d, u := wildcardHeavyWorkload(67, 12, 6, 0.5)
	maxSize := 0
	for _, q := range d {
		if q.Size() > maxSize {
			maxSize = q.Size()
		}
	}
	idx := BuildIndex(d)
	for _, g := range u {
		tau := maxSize
		if g.Size() > tau {
			tau = g.Size()
		}
		// tau >= size of both sides >= |V| of both sides: the size window
		// spans the whole index and maxV - overlap <= maxV <= tau.
		if c := idx.Candidates(g, tau); len(c) != idx.Len() {
			t.Fatalf("tau=%d admitted %d of %d queries", tau, len(c), idx.Len())
		}
	}
}

func TestIndexSizeScreen(t *testing.T) {
	// A 2-vertex query cannot be within tau=1 of an 8-vertex graph.
	small := graph.New(2)
	small.AddVertex("A")
	small.AddVertex("B")
	small.MustAddEdge(0, 1, "p")
	idx := BuildIndex([]*graph.Graph{small})

	big := ugraph.New(8)
	for i := 0; i < 8; i++ {
		big.AddVertex(ugraph.Label{Name: "A", P: 1})
	}
	if c := idx.Candidates(big, 1); len(c) != 0 {
		t.Fatalf("size screen failed: %v", c)
	}
	if c := idx.Candidates(big, 10); len(c) != 1 {
		t.Fatalf("generous tau should pass: %v", c)
	}
}
