package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"simjoin/internal/filter"
	"simjoin/internal/obs"
)

// TestBoundProfileMatchesStats runs real joins (parallel workers, so under
// -race this also exercises the shard fold) and checks the folded
// BoundProfile is exactly consistent with the aggregate Stats: chain order
// preserved, first bound evaluates every non-skipped pair, per-bound prunes
// equal PrunedBy, total prunes equal CSSPruned + ProbPruned, and each
// position's evaluations equal the pairs its predecessors passed.
func TestBoundProfileMatchesStats(t *testing.T) {
	d, u := smallWorkload(7, 10, 10)
	for _, mode := range []Mode{ModeSimJ, ModeSimJOpt} {
		opts := DefaultOptions()
		opts.Mode = mode
		opts.Alpha = 0.5
		opts.Workers = 4
		opts.Obs = obs.New()
		_, st, err := Join(d, u, opts)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		chain := []string{"css", "prob"}
		if mode == ModeSimJOpt {
			chain = []string{"css", "group"}
		}
		if len(st.BoundProfile) != len(chain) {
			t.Fatalf("mode %v: profile has %d entries, want %d: %+v", mode, len(st.BoundProfile), len(chain), st.BoundProfile)
		}
		var prunes int64
		passed := st.Pairs - st.IndexSkipped
		for i, bc := range st.BoundProfile {
			if bc.Pos != i || bc.Bound != chain[i] {
				t.Errorf("mode %v: profile[%d] = (%d, %s), want (%d, %s)", mode, i, bc.Pos, bc.Bound, i, chain[i])
			}
			if bc.Evals != passed {
				t.Errorf("mode %v: %s evals = %d, want %d (pairs passing the previous bounds)", mode, bc.Bound, bc.Evals, passed)
			}
			if got := st.PrunedBy[bc.Bound]; bc.Prunes != got {
				t.Errorf("mode %v: %s prunes = %d, PrunedBy = %d", mode, bc.Bound, bc.Prunes, got)
			}
			if bc.Nanos < 0 {
				t.Errorf("mode %v: %s nanos = %d", mode, bc.Bound, bc.Nanos)
			}
			prunes += bc.Prunes
			passed -= bc.Prunes
		}
		if want := st.CSSPruned + st.ProbPruned - st.IndexSkipped; prunes != want {
			t.Errorf("mode %v: profile prunes sum to %d, want %d", mode, prunes, want)
		}
		if passed != st.Candidates {
			t.Errorf("mode %v: %d pairs pass the whole chain, Stats.Candidates = %d", mode, passed, st.Candidates)
		}

		// The registry carries the same profile (labelled counters) and
		// StatsFromSnapshot rebuilds it bit-for-bit.
		from := StatsFromSnapshot(opts.Obs.Snapshot())
		if len(from.BoundProfile) != len(st.BoundProfile) {
			t.Fatalf("mode %v: snapshot profile %+v, stats profile %+v", mode, from.BoundProfile, st.BoundProfile)
		}
		for i := range from.BoundProfile {
			if from.BoundProfile[i] != st.BoundProfile[i] {
				t.Errorf("mode %v: snapshot profile[%d] = %+v, stats %+v", mode, i, from.BoundProfile[i], st.BoundProfile[i])
			}
		}
	}
}

// TestBoundProfileWithoutObs checks the counting half of the profile (evals,
// prunes) is maintained even with observability fully disabled — only the
// wall-clock half is gated on profiling.
func TestBoundProfileWithoutObs(t *testing.T) {
	d, u := smallWorkload(3, 8, 8)
	opts := DefaultOptions()
	opts.Alpha = 0.5
	_, st, err := Join(d, u, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.BoundProfile) == 0 {
		t.Fatal("no BoundProfile without Obs; counting must stay on")
	}
	for _, bc := range st.BoundProfile {
		if bc.Nanos != 0 {
			t.Errorf("%s nanos = %d without profiling, want 0", bc.Bound, bc.Nanos)
		}
		if got := st.PrunedBy[bc.Bound]; bc.Prunes != got {
			t.Errorf("%s prunes = %d, PrunedBy = %d", bc.Bound, bc.Prunes, got)
		}
	}
}

// TestPrunephaseProfiledZeroAlloc pins the tentpole's overhead contract: the
// filter chain with per-bound profiling (timing, shard accounting, registry
// counters) must stay allocation-free per pair in steady state.
func TestPrunephaseProfiledZeroAlloc(t *testing.T) {
	d, u := smallWorkload(5, 6, 6)
	qsigs := filter.NewQSigs(d)
	gsigs := filter.NewGSigs(u)
	opts := DefaultOptions()
	opts.Alpha = 0.5
	// The group bound is excluded, matching the filter package's own
	// zero-alloc gate: partitioning possible worlds legitimately allocates.
	opts.FilterChain = []filter.Bound{
		filter.MustBound("css"), filter.MustBound("prob"), filter.MustBound("prob-tight"),
	}
	if err := opts.normalise(); err != nil {
		t.Fatal(err)
	}
	opts.Obs = obs.New()
	chain, err := opts.chain()
	if err != nil {
		t.Fatal(err)
	}
	jo := newJoinObs(&opts)
	st := newRec(jo, &opts, chain)
	if !jo.profile {
		t.Fatal("profiling off with Obs set")
	}

	evalAll := func() {
		for qi := range d {
			for gi := range u {
				pi := pairIn{q: d[qi], g: u[gi], qs: qsigs[qi], gs: gsigs[gi], qi: qi, gi: gi}
				prunephase(&pi, &opts, chain, &st)
			}
		}
	}
	evalAll() // warm scratch, memoized sub-signatures, PrunedBy map
	if got := testing.AllocsPerRun(20, evalAll); got != 0 {
		t.Fatalf("profiled prunephase allocated %v allocs/op in steady state, want 0", got)
	}
}

// TestJoinEventLogEndToEnd drives the sampled event log through a real join
// at every=1 and checks every pair produced one valid JSONL record whose
// verdicts partition exactly like the Stats.
func TestJoinEventLogEndToEnd(t *testing.T) {
	d, u := smallWorkload(11, 9, 9)
	var sink bytes.Buffer
	opts := DefaultOptions()
	opts.Alpha = 0.5
	opts.Workers = 3
	opts.Events = obs.NewEventLog(&sink, 1)
	_, st, err := Join(d, u, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := opts.Events.Emitted(); got != st.Pairs {
		t.Fatalf("emitted %d events at every=1, want %d (one per pair)", got, st.Pairs)
	}
	if opts.Events.Dropped() != 0 {
		t.Fatalf("dropped %d events on an in-memory sink", opts.Events.Dropped())
	}

	counts := map[string]int64{}
	var worlds, gedCalls, gedStates int64
	sc := bufio.NewScanner(&sink)
	for sc.Scan() {
		var ev struct {
			Q, G    int
			Bounds  []struct{ B string }
			Verdict string `json:"verdict"`
			Worlds  int64  `json:"worlds"`
			GEDc    int64  `json:"ged_calls"`
			GEDs    int64  `json:"ged_states"`
			TotalNs int64  `json:"total_ns"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		counts[ev.Verdict]++
		worlds += ev.Worlds
		gedCalls += ev.GEDc
		gedStates += ev.GEDs
		if ev.TotalNs < 0 {
			t.Fatalf("negative total_ns in %q", sc.Text())
		}
	}
	if got := counts["pruned"]; got != st.CSSPruned+st.ProbPruned {
		t.Errorf("%d pruned events, Stats prunes = %d", got, st.CSSPruned+st.ProbPruned)
	}
	if got := counts["exact"]; got != st.ExactPairs {
		t.Errorf("%d exact events, Stats.ExactPairs = %d", got, st.ExactPairs)
	}
	if got := counts["sampled"]; got != st.SampledPairs {
		t.Errorf("%d sampled events, Stats.SampledPairs = %d", got, st.SampledPairs)
	}
	if worlds != st.WorldsChecked {
		t.Errorf("events sum %d worlds, Stats.WorldsChecked = %d", worlds, st.WorldsChecked)
	}
	if gedCalls != st.GEDCalls {
		t.Errorf("events sum %d GED calls, Stats.GEDCalls = %d", gedCalls, st.GEDCalls)
	}
	if gedStates != st.GEDStatesExpanded {
		t.Errorf("events sum %d GED states, Stats.GEDStatesExpanded = %d", gedStates, st.GEDStatesExpanded)
	}
	// Events imply profiling, so per-bound wall time was measured even
	// though no registry was attached.
	if len(st.BoundProfile) == 0 || st.BoundProfile[0].Nanos == 0 {
		t.Errorf("Events should enable bound timing; profile = %+v", st.BoundProfile)
	}
}

func TestMergeBoundProfile(t *testing.T) {
	a := []BoundCost{{Pos: 0, Bound: "css", Evals: 10, Prunes: 4, Nanos: 100}}
	b := []BoundCost{
		{Pos: 0, Bound: "css", Evals: 5, Prunes: 1, Nanos: 50},
		{Pos: 1, Bound: "prob", Evals: 10, Prunes: 2, Nanos: 200},
	}
	got := mergeBoundProfile(a, b)
	want := []BoundCost{
		{Pos: 0, Bound: "css", Evals: 15, Prunes: 5, Nanos: 150},
		{Pos: 1, Bound: "prob", Evals: 10, Prunes: 2, Nanos: 200},
	}
	if len(got) != len(want) {
		t.Fatalf("merge = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("merge[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestEffectiveCost(t *testing.T) {
	cheap := BoundCost{Evals: 100, Prunes: 50, Nanos: 1000}   // 10ns/eval, sel 0.5 → 20
	pricey := BoundCost{Evals: 100, Prunes: 90, Nanos: 90000} // 900ns/eval, sel 0.9 → 1000
	dead := BoundCost{Evals: 100, Prunes: 0, Nanos: 500}
	if got := cheap.EffectiveCost(); math.Abs(got-20) > 1e-9 {
		t.Errorf("cheap effective cost = %v, want 20", got)
	}
	if got := pricey.EffectiveCost(); math.Abs(got-1000) > 1e-9 {
		t.Errorf("pricey effective cost = %v, want 1000", got)
	}
	if !math.IsInf(dead.EffectiveCost(), 1) {
		t.Errorf("never-pruning bound effective cost = %v, want +Inf", dead.EffectiveCost())
	}
	prof := []BoundCost{
		{Pos: 0, Bound: "a", Evals: 100, Prunes: 90, Nanos: 90000},
		{Pos: 1, Bound: "b", Evals: 100, Prunes: 50, Nanos: 1000},
		{Pos: 2, Bound: "c", Evals: 100, Prunes: 0, Nanos: 500},
	}
	if got := EffectiveCostOrder(prof); got != "b,a,c" {
		t.Errorf("EffectiveCostOrder = %q, want b,a,c", got)
	}
}

// TestWriteExplain renders the explain report off a real profiled join and
// checks the promised surfaces are present: the per-bound cost table, the
// effective-cost ordering, and the stage latency quantiles.
func TestWriteExplain(t *testing.T) {
	d, u := smallWorkload(13, 8, 8)
	opts := DefaultOptions()
	opts.Alpha = 0.5
	opts.Obs = obs.New()
	_, st, err := Join(d, u, opts)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	WriteExplain(&out, &st, opts.Obs.Snapshot())
	text := out.String()
	for _, want := range []string{
		"per-bound cost model", "pos", "bound", "evals", "prunes", "sel", "ns/eval", "eff-cost", "rank",
		"css", "group",
		"effective-cost order",
		"stage latencies", "p50", "p95", "p99",
		"prune (per pair)", "verify (per candidate)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("explain output lacks %q:\n%s", want, text)
		}
	}

	// Rendering from a snapshot alone (no Stats profile) must also work —
	// the -stats-json consumer path.
	var out2 strings.Builder
	WriteExplain(&out2, &Stats{}, opts.Obs.Snapshot())
	if !strings.Contains(out2.String(), "css") {
		t.Errorf("snapshot-only explain lacks the bound table:\n%s", out2.String())
	}
}
