package core

// The sharded join driver.
//
// When Options.Shards > 1 both workload sides are partitioned by banded
// MinHash signatures over their concrete-label sets (internal/shard) and the
// join runs as Shards independent pipeline engines — one ShardedSource each,
// with its own worker pool — followed by a merge stage folding the per-shard
// results and Stats. Shard s owns the diagonal partition cells
// {(a, b) : (a + b) mod Shards = s}: every (query-partition,
// uncertain-partition) cell belongs to exactly one shard, so every pair is
// generated exactly once and the merged Stats partition the cross product
// exactly like the unsharded run.
//
// Inside a cell the candidate generator is shard.Plan.Candidates — the
// band-probe + SoA residual sweep whose survivors are bit-identical to
// core.Index's prescreens — so the sharded join returns exactly JoinIndexed's
// pairs and Stats at any shard count. With Options.BlockSize set, each
// uncertain partition is packed into its own filter.GBlockSet and the cells
// run block screening instead, matching the unsharded block path pair for
// pair (the block screens are per-graph, independent of block composition).

import (
	"context"
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"time"

	"simjoin/internal/filter"
	"simjoin/internal/graph"
	"simjoin/internal/obs"
	"simjoin/internal/shard"
	"simjoin/internal/ugraph"
)

// ShardedSource is one shard's CandidateSource: it feeds the pairs of the
// shard's diagonal cells, prescreened by the plan's banded candidate kernel
// (or, in block mode, by per-partition block screens). Sources of one join
// share the plan, the signature caches and the block sets; each owns its
// mutable scratch, so every source must be fed by its own engine.
type ShardedSource struct {
	plan    *shard.Plan
	shardID int
	d       []*graph.Graph
	qsigs   []*filter.QSig
	u       []*ugraph.Graph
	gsigs   []*filter.GSig
	// ublocks, non-nil in block mode, holds one GBlockSet per uncertain
	// partition (indexed like plan.UParts; nil entries for empty partitions).
	ublocks []*filter.GBlockSet

	sc            shard.Scratch
	probes, dupes int64
	prof          blockProf // block-mode screening profile
}

// NewShardedSources partitions (d, u) into a shard plan and returns one
// CandidateSource per shard for use with JoinWith; blockSize > 0 packs each
// uncertain partition into SoA blocks and switches the sources to block
// screening. ShardedJoinStats is the assembled driver over these sources.
func NewShardedSources(d []*graph.Graph, u []*ugraph.Graph, shards, bands, blockSize int) []*ShardedSource {
	return buildShardedSources(nil, d, u, shards, bands, blockSize)
}

// buildShardedSources is NewShardedSources reusing prebuilt query signatures
// when the caller (an Index-routed join) already has them; qsigs may be nil.
func buildShardedSources(qsigs []*filter.QSig, d []*graph.Graph, u []*ugraph.Graph, shards, bands, blockSize int) []*ShardedSource {
	if qsigs == nil {
		qsigs = filter.NewQSigs(d)
	}
	pl := shard.Build(qsigs, u, shards, bands)
	gsigs := filter.NewGSigs(u)
	var ublocks []*filter.GBlockSet
	if blockSize > 0 {
		ublocks = make([]*filter.GBlockSet, pl.Shards)
		for b, part := range pl.UParts {
			if len(part) == 0 {
				continue
			}
			sub := make([]*ugraph.Graph, len(part))
			for i, gi := range part {
				sub[i] = u[gi]
			}
			ublocks[b] = filter.NewGBlockSet(sub, blockSize)
		}
	}
	srcs := make([]*ShardedSource, pl.Shards)
	for s := range srcs {
		srcs[s] = &ShardedSource{
			plan:    pl,
			shardID: s,
			d:       d,
			qsigs:   qsigs,
			u:       u,
			gsigs:   gsigs,
			ublocks: ublocks,
		}
	}
	return srcs
}

func (s *ShardedSource) Queries() ([]*graph.Graph, []*filter.QSig) { return s.d, s.qsigs }

// cell returns the query partition paired with uncertain partition b on this
// shard: the diagonal a = (shardID − b) mod Shards.
func (s *ShardedSource) cell(b int) int {
	a := s.shardID - b
	if a < 0 {
		a += s.plan.Shards
	}
	return a
}

// TotalPairs is the shard's share of the cross product: the sum of its
// diagonal cells' areas. Summed over all shards it is |D| × |U|.
func (s *ShardedSource) TotalPairs() int64 {
	var n int64
	for b := range s.plan.UParts {
		n += int64(len(s.plan.UParts[b])) * int64(s.plan.Parts[s.cell(b)].Len())
	}
	return n
}

func (s *ShardedSource) Feed(ctx context.Context, opts *Options, emit func(Batch) bool, skip func(int64)) {
	if s.ublocks != nil {
		s.feedBlocks(ctx, opts, emit, skip)
		return
	}
	for b := range s.plan.UParts {
		a := s.cell(b)
		pt := s.plan.Parts[a]
		if pt.Len() == 0 {
			continue
		}
		for _, gi32 := range s.plan.UParts[b] {
			if ctx.Err() != nil {
				return
			}
			gi := int(gi32)
			cands, probes, dupes := s.plan.Candidates(a, gi, opts.Tau, &s.sc)
			s.probes += probes
			s.dupes += dupes
			skip(int64(pt.Len() - len(cands)))
			if len(cands) == 0 {
				continue
			}
			// Fresh per graph: batches alias the slice and workers read it
			// after Feed has reused the plan's candidate scratch.
			qis := make([]int, len(cands))
			for i, id := range cands {
				qis[i] = int(id)
			}
			for start := 0; start < len(qis); start += sourceChunk {
				end := start + sourceChunk
				if end > len(qis) {
					end = len(qis)
				}
				if !emit(Batch{GI: gi, G: s.u[gi], GS: s.gsigs[gi], QIs: qis[start:end]}) {
					return
				}
			}
		}
	}
}

// feedBlocks is the block-mode feed: per diagonal cell, the uncertain
// partition's blocks are screened against the cell's queries exactly like
// blockSource.Feed, with block-local graph indices translated back through
// the partition's id list. Block screening decisions are per-graph — a
// graph's screen outcome is independent of which block holds it — so the
// emitted pair set and the per-pair attribution match the unsharded block
// path.
func (s *ShardedSource) feedBlocks(ctx context.Context, opts *Options, emit func(Batch) bool, skip func(int64)) {
	profiled := opts.Obs != nil || opts.Events != nil
	var sc filter.BlockScratch
	for b := range s.plan.UParts {
		set := s.ublocks[b]
		pt := s.plan.Parts[s.cell(b)]
		if set == nil || pt.Len() == 0 {
			continue
		}
		for bi := 0; bi < set.NumBlocks(); bi++ {
			if ctx.Err() != nil {
				return
			}
			blk := set.Block(bi)
			n := blk.Len()
			lists := make([][]int, n) // aliased by emitted batches: fresh per block
			var bp blockProf
			for _, qid := range pt.IDs {
				if ctx.Err() != nil {
					return
				}
				qi := int(qid)
				var t0 time.Time
				if profiled {
					t0 = time.Now()
				}
				surv, massPruned := blk.Screen(s.qsigs[qi], opts.Tau, opts.Alpha, &sc)
				if profiled {
					bp.nanos += int64(time.Since(t0))
				}
				bp.evals += int64(n)
				bp.massPruned += int64(massPruned)
				bp.pruned += int64(n - surv)
				if surv == 0 {
					continue
				}
				for w, word := range sc.Bitmap {
					for ; word != 0; word &= word - 1 {
						i := w<<6 + bits.TrailingZeros64(word)
						lists[i] = append(lists[i], qi)
					}
				}
			}
			s.prof.evals += bp.evals
			s.prof.pruned += bp.pruned
			s.prof.massPruned += bp.massPruned
			s.prof.nanos += bp.nanos
			skip(bp.pruned)
			for i, qis := range lists {
				if len(qis) == 0 {
					continue
				}
				gi := int(s.plan.UParts[b][blk.Base()+i])
				gs := s.gsigs[gi]
				for start := 0; start < len(qis); start += sourceChunk {
					end := start + sourceChunk
					if end > len(qis) {
						end = len(qis)
					}
					if !emit(Batch{GI: gi, G: s.u[gi], GS: gs, QIs: qis[start:end]}) {
						return
					}
				}
			}
		}
	}
}

// finishSource implements sourceFinisher with the shard's attribution: band
// telemetry always; then either the index-prescreen attribution (scalar
// candidate generation is exactly the index's screens) or the block stage's
// structural/mass split, matching blockSource.finishSource.
func (s *ShardedSource) finishSource(total *Stats, skipped int64) {
	total.BandProbes += s.probes
	total.BandDupes += s.dupes
	if s.ublocks == nil {
		total.CSSPruned += skipped
		total.IndexSkipped += skipped
		return
	}
	total.CSSPruned += skipped - s.prof.massPruned
	total.ProbPruned += s.prof.massPruned
	total.IndexSkipped += skipped - s.prof.pruned
	if s.prof.pruned > 0 {
		if total.PrunedBy == nil {
			total.PrunedBy = make(map[string]int64)
		}
		total.PrunedBy[blockStageName] += s.prof.pruned
	}
	total.BoundProfile = mergeBoundProfile(total.BoundProfile, []BoundCost{{
		Pos:    blockStagePos,
		Bound:  blockStageName,
		Evals:  s.prof.evals,
		Prunes: s.prof.pruned,
		Nanos:  s.prof.nanos,
	}})
}

// ShardedJoinStats is JoinContext with sharding forced on, additionally
// returning each shard's Stats (indexed by shard id) for imbalance
// diagnostics — WriteShardTable renders them. Shards ≤ 1 still runs the
// sharded driver with one shard.
func ShardedJoinStats(ctx context.Context, d []*graph.Graph, u []*ugraph.Graph, opts Options) ([]Pair, Stats, []Stats, error) {
	return shardedJoin(ctx, nil, d, u, opts)
}

// shardedJoin is the merge-stage driver: it builds the shard plan, runs one
// pipeline engine per shard concurrently, folds the per-shard Stats with
// Stats.Merge, re-sorts the concatenated results by (Q, G), and publishes the
// per-shard observability (labeled pair counters and the imbalance gauge).
func shardedJoin(ctx context.Context, qsigs []*filter.QSig, d []*graph.Graph, u []*ugraph.Graph, opts Options) ([]Pair, Stats, []Stats, error) {
	if err := opts.normalise(); err != nil {
		return nil, Stats{}, nil, err
	}
	if _, err := opts.chain(); err != nil { // fail before spawning engines
		return nil, Stats{}, nil, err
	}
	srcs := buildShardedSources(qsigs, d, u, opts.Shards, opts.Bands, opts.BlockSize)

	// Each shard runs the standard engine on a slice of the worker budget
	// (at least one): the per-shard engines publish their own Stats into
	// Options.Obs (registry counters are cumulative, so the shard
	// contributions sum to the merged totals), and the shared progress total
	// would be wrong per shard, so sub-runs keep the watchdog but drop the
	// progress reporter.
	sub := opts
	sub.Shards, sub.Bands = 0, 0
	sub.ProgressEvery = 0
	if sub.Workers = opts.Workers / len(srcs); sub.Workers < 1 {
		sub.Workers = 1
	}

	results := make([][]Pair, len(srcs))
	per := make([]Stats, len(srcs))
	errs := make([]error, len(srcs))
	var wg sync.WaitGroup
	for i, src := range srcs {
		wg.Add(1)
		go func(i int, src *ShardedSource) {
			defer wg.Done()
			results[i], per[i], errs[i] = joinEngine(ctx, src, sub)
		}(i, src)
	}
	wg.Wait()

	var total Stats
	var pairs []Pair
	for i := range per {
		total.Merge(&per[i])
		pairs = append(pairs, results[i]...)
	}
	publishShardObs(opts.Obs, per)
	for _, err := range errs {
		if err != nil {
			return nil, total, per, err
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Q != pairs[j].Q {
			return pairs[i].Q < pairs[j].Q
		}
		return pairs[i].G < pairs[j].G
	})
	return pairs, total, per, nil
}

// publishShardObs records the merge stage's per-shard view: one labeled pair
// counter per shard and the shard-imbalance gauge (max over mean of per-shard
// pair counts; 1.0 is a perfectly balanced plan).
func publishShardObs(reg *obs.Registry, per []Stats) {
	if reg == nil || len(per) == 0 {
		return
	}
	var sum, max int64
	for s := range per {
		n := per[s].Pairs
		reg.Counter(obs.Name("simjoin_shard_pairs_total", "shard", strconv.Itoa(s))).Add(n)
		sum += n
		if n > max {
			max = n
		}
	}
	if mean := float64(sum) / float64(len(per)); mean > 0 {
		reg.Gauge("simjoin_shard_imbalance").Set(float64(max) / mean)
	}
}

// ShardImbalance is the merge stage's balance diagnostic over per-shard
// Stats: max over mean of the per-shard pair counts (1.0 = perfectly even).
func ShardImbalance(per []Stats) float64 {
	if len(per) == 0 {
		return 0
	}
	var sum, max int64
	for s := range per {
		if per[s].Pairs > max {
			max = per[s].Pairs
		}
		sum += per[s].Pairs
	}
	if sum == 0 {
		return 0
	}
	return float64(max) * float64(len(per)) / float64(sum)
}
