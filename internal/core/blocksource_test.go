package core

import (
	"context"
	"math/rand"
	"testing"

	"simjoin/internal/filter"
	"simjoin/internal/graph"
	"simjoin/internal/obs"
	"simjoin/internal/ugraph"
)

// Tests of the block-screening candidate source: the block path must return
// bit-identical join results to the scalar path on every source, partition
// its pairs exactly once across the block stage and the per-pair chain, and
// expose the stage in the profile/metrics surfaces without double counting.

// subNormalWorkload is smallWorkload with, half the time, incomplete vertex
// label distributions (TotalMass < 1), so the block mass screen actually
// fires; the scalar path rejects those pairs in verification (SimP ≤ mass).
func subNormalWorkload(seed int64, nd, nu int) ([]*graph.Graph, []*ugraph.Graph) {
	rng := rand.New(rand.NewSource(seed))
	d := make([]*graph.Graph, nd)
	for i := range d {
		d[i] = randomCertain(rng, 2+rng.Intn(4), rng.Intn(5))
	}
	names := []string{"A", "B", "C", "D"}
	u := make([]*ugraph.Graph, nu)
	for i := range u {
		n := 2 + rng.Intn(3)
		g := ugraph.New(n)
		for v := 0; v < n; v++ {
			scale := 1.0
			if rng.Intn(2) == 0 {
				scale = 0.3 + 0.6*rng.Float64()
			}
			k := 1 + rng.Intn(2)
			perm := rng.Perm(len(names))[:k]
			var ls []ugraph.Label
			rest := scale
			for j, pi := range perm {
				p := rest
				if j < k-1 {
					p = rest * (0.3 + 0.4*rng.Float64())
				}
				ls = append(ls, ugraph.Label{Name: names[pi], P: p})
				rest -= p
			}
			g.AddVertex(ls...)
		}
		for t := 0; t < 9 && g.NumEdges() < rng.Intn(4); t++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				_ = g.AddEdge(a, b, "p")
			}
		}
		u[i] = g
	}
	return d, u
}

// assertSamePairs requires two result sets to be bit-identical, including
// the SimP and Distance of every pair.
func assertSamePairs(t *testing.T, ctxt string, got, want []Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: block path %d pairs, scalar %d", ctxt, len(got), len(want))
	}
	for i := range got {
		if got[i].Q != want[i].Q || got[i].G != want[i].G {
			t.Fatalf("%s pair %d: (%d,%d) vs (%d,%d)", ctxt, i, got[i].Q, got[i].G, want[i].Q, want[i].G)
		}
		if got[i].SimP != want[i].SimP {
			t.Fatalf("%s pair %d: SimP %v != %v", ctxt, i, got[i].SimP, want[i].SimP)
		}
		if got[i].Distance != want[i].Distance {
			t.Fatalf("%s pair %d: distance %d != %d", ctxt, i, got[i].Distance, want[i].Distance)
		}
	}
}

// TestJoinBlockEquivalenceProperty drives random workloads — including
// sub-normalised ones that trip the mass screen — through the scalar and
// block paths of both Join and JoinIndexed, across modes and block widths,
// and requires bit-identical results plus exact pair partitioning.
func TestJoinBlockEquivalenceProperty(t *testing.T) {
	modes := []Mode{ModeCSSOnly, ModeSimJ, ModeSimJOpt}
	blockSizes := []int{1, 7, 64}
	for seed := int64(200); seed < 205; seed++ {
		d, u := smallWorkload(seed, 10, 9)
		if seed%2 == 0 {
			d, u = subNormalWorkload(seed, 10, 9)
		}
		idx := BuildIndex(d)
		for mi, mode := range modes {
			opts := Options{
				Tau:        1 + int(seed%2),
				Alpha:      0.4,
				Mode:       mode,
				GroupCount: 4,
				Workers:    3,
			}
			want, ws, err := Join(d, u, opts)
			if err != nil {
				t.Fatal(err)
			}
			wantIdx, _, err := JoinIndexed(idx, u, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertSamePairs(t, "sanity", wantIdx, want)

			bopts := opts
			bopts.BlockSize = blockSizes[(int(seed)+mi)%len(blockSizes)]
			got, bs, err := Join(d, u, bopts)
			if err != nil {
				t.Fatal(err)
			}
			assertSamePairs(t, "cross", got, want)
			gotIdx, bis, err := JoinIndexed(idx, u, bopts)
			if err != nil {
				t.Fatal(err)
			}
			assertSamePairs(t, "indexed", gotIdx, want)

			for name, st := range map[string]*Stats{"cross": &bs, "indexed": &bis} {
				if st.Pairs != ws.Pairs || st.Results != ws.Results {
					t.Fatalf("seed=%d mode=%v %s: pairs/results %d/%d vs scalar %d/%d",
						seed, mode, name, st.Pairs, st.Results, ws.Pairs, ws.Results)
				}
				if st.CSSPruned+st.ProbPruned+st.Candidates != st.Pairs {
					t.Fatalf("seed=%d mode=%v %s: accounting %+v", seed, mode, name, st)
				}
				if st.IndexSkipped != 0 {
					t.Fatalf("seed=%d mode=%v %s: IndexSkipped = %d on the block path, want 0",
						seed, mode, name, st.IndexSkipped)
				}
				// The block screen never admits pairs the scalar chain prunes
				// structurally for free, so candidates cannot grow.
				if st.Candidates > ws.Candidates {
					t.Fatalf("seed=%d mode=%v %s: block candidates %d > scalar %d",
						seed, mode, name, st.Candidates, ws.Candidates)
				}
			}
		}
	}
}

// TestBlockStatsNoDoubleCount is the block-path counterpart of
// TestBoundProfileMatchesStats: a pair pruned at the block stage must be
// counted exactly once — in PrunedBy["block"] and the position −1 profile
// entry — and never re-enter a chain bound's evals or prune tallies; the
// registry round-trips the whole surface.
func TestBlockStatsNoDoubleCount(t *testing.T) {
	d, u := subNormalWorkload(11, 10, 10)
	opts := DefaultOptions()
	opts.Mode = ModeSimJ
	opts.Alpha = 0.5
	opts.Workers = 4
	opts.BlockSize = 4
	opts.Obs = obs.New()
	_, st, err := Join(d, u, opts)
	if err != nil {
		t.Fatal(err)
	}

	chain := []string{"block", "css", "prob"}
	if len(st.BoundProfile) != len(chain) {
		t.Fatalf("profile has %d entries, want %d: %+v", len(st.BoundProfile), len(chain), st.BoundProfile)
	}
	blk := st.BoundProfile[0]
	if blk.Pos != blockStagePos || blk.Bound != blockStageName {
		t.Fatalf("profile[0] = (%d, %s), want (%d, %s)", blk.Pos, blk.Bound, blockStagePos, blockStageName)
	}
	if blk.Evals != st.Pairs {
		t.Errorf("block evals = %d, want every pair (%d)", blk.Evals, st.Pairs)
	}
	if st.IndexSkipped != 0 {
		t.Errorf("IndexSkipped = %d on the block path, want 0", st.IndexSkipped)
	}
	if blk.Prunes == 0 {
		t.Fatalf("block stage pruned nothing; workload cannot exercise double counting: %+v", st)
	}

	var prunes int64
	passed := st.Pairs
	for i, bc := range st.BoundProfile {
		if bc.Bound != chain[i] {
			t.Errorf("profile[%d] = %s, want %s", i, bc.Bound, chain[i])
		}
		if i > 0 && bc.Pos != i-1 {
			t.Errorf("profile[%d] (%s) pos = %d, want %d", i, bc.Bound, bc.Pos, i-1)
		}
		if bc.Evals != passed {
			t.Errorf("%s evals = %d, want %d (pairs passing the previous stages)", bc.Bound, bc.Evals, passed)
		}
		if got := st.PrunedBy[bc.Bound]; bc.Prunes != got {
			t.Errorf("%s prunes = %d, PrunedBy = %d", bc.Bound, bc.Prunes, got)
		}
		prunes += bc.Prunes
		passed -= bc.Prunes
	}
	if want := st.CSSPruned + st.ProbPruned - st.IndexSkipped; prunes != want {
		t.Errorf("stage prunes sum to %d, want CSSPruned+ProbPruned-IndexSkipped = %d", prunes, want)
	}
	if passed != st.Candidates {
		t.Errorf("%d pairs pass every stage, Stats.Candidates = %d", passed, st.Candidates)
	}

	// Mass-screen prunes are probabilistic; with the sub-normalised workload
	// at α=0.5 some must have fired, and they must not also appear under a
	// chain bound (the chain's prob prunes + block mass prunes partition
	// ProbPruned exactly).
	if st.ProbPruned < 1 {
		t.Errorf("sub-normalised workload produced no probabilistic prunes: %+v", st)
	}
	if probChain := st.PrunedBy["prob"]; probChain > st.ProbPruned {
		t.Errorf("chain prob prunes %d exceed ProbPruned %d", probChain, st.ProbPruned)
	}

	// The registry carries the same stage profile and PrunedBy map, block
	// stage included, and StatsFromSnapshot rebuilds both bit-for-bit.
	from := StatsFromSnapshot(opts.Obs.Snapshot())
	if len(from.BoundProfile) != len(st.BoundProfile) {
		t.Fatalf("snapshot profile %+v, stats profile %+v", from.BoundProfile, st.BoundProfile)
	}
	for i := range from.BoundProfile {
		if from.BoundProfile[i] != st.BoundProfile[i] {
			t.Errorf("snapshot profile[%d] = %+v, stats %+v", i, from.BoundProfile[i], st.BoundProfile[i])
		}
	}
	if from.PrunedBy[blockStageName] != st.PrunedBy[blockStageName] {
		t.Errorf("snapshot PrunedBy[block] = %d, stats %d",
			from.PrunedBy[blockStageName], st.PrunedBy[blockStageName])
	}
}

// opaqueSource hides a CandidateSource's concrete type from the engine's
// block wrapper, standing in for custom JoinWith sources.
type opaqueSource struct{ CandidateSource }

// TestBlockSizeUnknownSourceFallsBack pins the JoinWith contract: a custom
// source the block wrapper does not recognise runs on the scalar path even
// with BlockSize set — same results, no block stage in the profile.
func TestBlockSizeUnknownSourceFallsBack(t *testing.T) {
	d, u := smallWorkload(5, 8, 8)
	opts := DefaultOptions()
	opts.Alpha = 0.5
	opts.BlockSize = 16
	want, _, err := Join(d, u, Options{Tau: opts.Tau, Alpha: 0.5, Mode: opts.Mode, GroupCount: opts.GroupCount})
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := JoinWith(context.Background(), opaqueSource{NewCrossSource(d, u)}, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePairs(t, "opaque", got, want)
	if _, ok := st.PrunedBy[blockStageName]; ok {
		t.Fatalf("opaque source still ran the block stage: %+v", st.PrunedBy)
	}
	for _, bc := range st.BoundProfile {
		if bc.Bound == blockStageName {
			t.Fatalf("opaque source has a block profile entry: %+v", st.BoundProfile)
		}
	}
}

// TestBlockSizeValidation pins Options.normalise's rejection of negative
// block sizes.
func TestBlockSizeValidation(t *testing.T) {
	d, u := smallWorkload(6, 2, 2)
	opts := DefaultOptions()
	opts.BlockSize = -1
	if _, _, err := Join(d, u, opts); err == nil {
		t.Fatal("negative BlockSize accepted")
	}
}

// TestBlockScreenSubsumesIndexPrescreens pins the screen-equivalence claim
// the attribution rests on: on a mass-complete workload, the pairs the block
// stage prunes are exactly the index prescreens' skips plus pairs the
// per-pair chain would have pruned anyway — so block-path candidates never
// exceed the indexed scalar path's.
func TestBlockScreenSubsumesIndexPrescreens(t *testing.T) {
	d, u := smallWorkload(8, 12, 10)
	idx := BuildIndex(d)
	opts := DefaultOptions()
	opts.Alpha = 0.5
	opts.Workers = 2
	_, scalar, err := JoinIndexed(idx, u, opts)
	if err != nil {
		t.Fatal(err)
	}
	bopts := opts
	bopts.BlockSize = 8
	_, blocked, err := JoinIndexed(idx, u, bopts)
	if err != nil {
		t.Fatal(err)
	}
	if blocked.PrunedBy[blockStageName] < scalar.IndexSkipped {
		t.Errorf("block stage pruned %d pairs, fewer than the %d index prescreen skips it replaces",
			blocked.PrunedBy[blockStageName], scalar.IndexSkipped)
	}
	if blocked.Candidates > scalar.Candidates {
		t.Errorf("block path candidates %d > indexed scalar %d", blocked.Candidates, scalar.Candidates)
	}
	// filter.GBlockSet invariants while we are here: full blocks at the
	// requested width, a short tail, bases covering the set exactly.
	set := filter.NewGBlockSet(u, 4)
	covered := 0
	for i := 0; i < set.NumBlocks(); i++ {
		b := set.Block(i)
		if b.Base() != covered {
			t.Fatalf("block %d base = %d, want %d", i, b.Base(), covered)
		}
		covered += b.Len()
		if b.Len() > 4 || b.Len() == 0 {
			t.Fatalf("block %d has %d graphs with width 4", i, b.Len())
		}
	}
	if covered != len(u) {
		t.Fatalf("blocks cover %d graphs, want %d", covered, len(u))
	}
}

// TestBlockSourceHonorsCancellation pins the deadline behaviour of the block
// sweep: an expired context must stop the screening loop between blocks (and
// between queries within a block) instead of burning a full resident sweep,
// and the partial block in flight at cancellation must be dropped from both
// the skip accounting and the stage profile.
func TestBlockSourceHonorsCancellation(t *testing.T) {
	d, u := smallWorkload(37, 24, 40)

	t.Run("pre-cancelled", func(t *testing.T) {
		src := newBlockSource(newCrossSource(d, u), 8)
		if src == nil {
			t.Fatal("newBlockSource returned nil for the cross source")
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		emits := 0
		var skips int64
		opts := DefaultOptions()
		if err := opts.normalise(); err != nil {
			t.Fatal(err)
		}
		src.Feed(ctx, &opts, func(Batch) bool { emits++; return true },
			func(n int64) { skips += n })
		if emits != 0 || skips != 0 {
			t.Fatalf("pre-cancelled Feed emitted %d batches, skipped %d pairs; want 0/0", emits, skips)
		}
		if src.prof.evals != 0 {
			t.Fatalf("pre-cancelled Feed profiled %d evals; want 0", src.prof.evals)
		}
	})

	t.Run("mid-sweep", func(t *testing.T) {
		src := newBlockSource(newCrossSource(d, u), 4)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		emits := 0
		var skips int64
		opts := DefaultOptions()
		opts.Alpha = 0.5
		if err := opts.normalise(); err != nil {
			t.Fatal(err)
		}
		src.Feed(ctx, &opts, func(Batch) bool {
			emits++
			cancel() // request expires while the engine is consuming
			return true
		}, func(n int64) { skips += n })
		total := int64(len(d)) * int64(len(u))
		if skips+src.prof.pruned > total {
			t.Fatalf("cancelled Feed over-accounted: skips=%d pruned=%d total=%d", skips, src.prof.pruned, total)
		}
		if skips != src.prof.pruned {
			t.Fatalf("skip/profile attribution diverged under cancellation: skips=%d profile=%d", skips, src.prof.pruned)
		}
		if src.prof.evals >= total {
			t.Fatalf("cancelled Feed screened all %d pairs; cancellation did not stop the sweep", total)
		}
	})

	t.Run("join-end-to-end", func(t *testing.T) {
		opts := DefaultOptions()
		opts.Alpha = 0.5
		opts.Workers = 2
		opts.BlockSize = 4
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		fired := false
		testPairHook = func(int) {
			if !fired {
				fired = true
				cancel()
			}
		}
		defer func() { testPairHook = nil }()
		pairs, st, err := JoinContext(ctx, d, u, opts)
		if err == nil {
			t.Fatal("cancelled block join returned nil error")
		}
		if pairs != nil {
			t.Fatalf("cancelled block join returned %d pairs", len(pairs))
		}
		if !st.Cancelled {
			t.Fatal("Stats.Cancelled not set")
		}
	})
}
