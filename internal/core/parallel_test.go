package core

import (
	"sync"
	"testing"
	"time"
)

// TestJoinIndexedUsesMultipleWorkers is the regression test for the
// single-consumer defect JoinIndexedContext used to have: it accepted
// Options.Workers but processed every candidate on one goroutine. The pair
// hook holds the first worker hostage until a second worker reports a pair
// (with a timeout escape), so a single-consumer implementation cannot pass by
// winning the scheduling race.
func TestJoinIndexedUsesMultipleWorkers(t *testing.T) {
	d, u := smallWorkload(51, 12, 12)
	idx := BuildIndex(d)

	var (
		mu   sync.Mutex
		seen = map[int]bool{}
		once sync.Once
	)
	barrier := make(chan struct{})
	timeout := time.After(5 * time.Second)
	testPairHook = func(worker int) {
		mu.Lock()
		seen[worker] = true
		n := len(seen)
		mu.Unlock()
		if n >= 2 {
			once.Do(func() { close(barrier) })
			return
		}
		select {
		case <-barrier:
		case <-timeout:
		}
	}
	defer func() { testPairHook = nil }()

	opts := Options{Tau: 2, Alpha: 0.5, Mode: ModeSimJ, Workers: 4}
	if _, _, err := JoinIndexed(idx, u, opts); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) < 2 {
		t.Fatalf("only %d worker(s) processed pairs; want at least 2", len(seen))
	}
}

// TestJoinIndexedEquivalenceProperty is a seeded randomized property test:
// for random workloads across all three modes, JoinIndexed must return
// exactly Join's pairs — same (Q, G), same SimP to the bit, same best-world
// distance — with consistent Stats accounting. It runs under -race in CI, so
// it also exercises the parallel indexed join for data races.
func TestJoinIndexedEquivalenceProperty(t *testing.T) {
	modes := []Mode{ModeCSSOnly, ModeSimJ, ModeSimJOpt}
	for seed := int64(100); seed < 106; seed++ {
		d, u := smallWorkload(seed, 10, 8)
		idx := BuildIndex(d)
		for _, mode := range modes {
			opts := Options{
				Tau:        1 + int(seed%2),
				Alpha:      0.4,
				Mode:       mode,
				GroupCount: 4,
				Workers:    3,
			}
			want, ws, err := Join(d, u, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, gs, err := JoinIndexed(idx, u, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("seed=%d mode=%v: indexed %d pairs, plain %d", seed, mode, len(got), len(want))
			}
			for i := range got {
				if got[i].Q != want[i].Q || got[i].G != want[i].G {
					t.Fatalf("seed=%d mode=%v pair %d: (%d,%d) vs (%d,%d)",
						seed, mode, i, got[i].Q, got[i].G, want[i].Q, want[i].G)
				}
				if got[i].SimP != want[i].SimP {
					t.Fatalf("seed=%d mode=%v pair %d: SimP %v != %v",
						seed, mode, i, got[i].SimP, want[i].SimP)
				}
				if got[i].Distance != want[i].Distance {
					t.Fatalf("seed=%d mode=%v pair %d: distance %d != %d",
						seed, mode, i, got[i].Distance, want[i].Distance)
				}
			}
			// Stats consistency: the prescreens only move pairs from the
			// candidate path into IndexSkipped — totals and results agree,
			// both runs partition their pairs exactly, and the index never
			// admits more candidates than the plain join.
			if gs.Pairs != ws.Pairs || gs.Results != ws.Results {
				t.Fatalf("seed=%d mode=%v: stats pairs/results %d/%d vs %d/%d",
					seed, mode, gs.Pairs, gs.Results, ws.Pairs, ws.Results)
			}
			if gs.Candidates > ws.Candidates {
				t.Fatalf("seed=%d mode=%v: indexed candidates %d > plain %d",
					seed, mode, gs.Candidates, ws.Candidates)
			}
			if gs.CSSPruned+gs.ProbPruned+gs.Candidates != gs.Pairs {
				t.Fatalf("seed=%d mode=%v: indexed accounting %+v", seed, mode, gs)
			}
			if ws.CSSPruned+ws.ProbPruned+ws.Candidates != ws.Pairs {
				t.Fatalf("seed=%d mode=%v: plain accounting %+v", seed, mode, ws)
			}
		}
	}
}
