package core

import (
	"testing"

	"simjoin/internal/ged"
	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

func TestJoinTopKRanksExactFirst(t *testing.T) {
	// Build a question graph and three queries at distances 0, 1, 2.
	base := graph.New(3)
	base.AddVertex("?x")
	base.AddVertex("Politician")
	base.AddVertex("CIT")
	base.MustAddEdge(0, 1, "type")
	base.MustAddEdge(0, 2, "graduatedFrom")
	g := ugraph.FromCertain(base)

	exact := base.Clone()
	oneOff := base.Clone()
	oneOff.SetVertexLabel(2, "Harvard")
	twoOff := base.Clone()
	twoOff.SetVertexLabel(1, "Artist")
	twoOff.SetVertexLabel(2, "Harvard")

	d := []*graph.Graph{twoOff, exact, oneOff}
	opts := Options{Tau: 2, Alpha: 0.1, Mode: ModeSimJ, Workers: 1, KeepMappings: true}
	top, st, err := JoinTopK(d, []*ugraph.Graph{g}, opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs != 3 {
		t.Errorf("Pairs = %d", st.Pairs)
	}
	best := top[0]
	if len(best) != 2 {
		t.Fatalf("top-2 returned %d pairs", len(best))
	}
	if best[0].Q != 1 || best[0].Distance != 0 {
		t.Errorf("rank 1 = q%d (dist %d), want exact query", best[0].Q, best[0].Distance)
	}
	if best[1].Q != 2 || best[1].Distance != 1 {
		t.Errorf("rank 2 = q%d (dist %d), want one-off query", best[1].Q, best[1].Distance)
	}
}

func TestJoinTopKRespectsAlphaAndK(t *testing.T) {
	d, u := smallWorkload(3, 10, 6)
	top, _, err := JoinTopK(d, u, Options{Tau: 1, Alpha: 0.6, Mode: ModeSimJ, Workers: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	oracle := naiveJoin(d, u, 1, 0.6)
	for gi, pairs := range top {
		if len(pairs) > 3 {
			t.Fatalf("g%d has %d pairs", gi, len(pairs))
		}
		for i, p := range pairs {
			if p.G != gi {
				t.Fatalf("pair G mismatch")
			}
			want, ok := oracle[[2]int{p.Q, p.G}]
			if !ok {
				t.Fatalf("top-k returned non-qualifying pair (%d,%d)", p.Q, p.G)
			}
			if p.SimP < want-1e-9 || p.SimP > want+1e-9 {
				t.Fatalf("SimP %v != exact %v", p.SimP, want)
			}
			if i > 0 && pairBetter(p, pairs[i-1]) {
				t.Fatalf("g%d not sorted at %d", gi, i)
			}
		}
	}
}

func TestJoinTopKMappingUsable(t *testing.T) {
	d, u := smallWorkload(9, 6, 4)
	top, _, err := JoinTopK(d, u, Options{Tau: 2, Alpha: 0.3, Mode: ModeSimJOpt, GroupCount: 3, Workers: 1, KeepMappings: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, pairs := range top {
		for _, p := range pairs {
			if p.Mapping == nil || p.World == nil {
				t.Fatal("missing mapping on top-k pair")
			}
			if c, err := ged.MappingCost(d[p.Q], p.World, p.Mapping); err != nil || c != p.Distance {
				t.Fatalf("mapping cost %d != distance %d (%v)", c, p.Distance, err)
			}
		}
	}
}
