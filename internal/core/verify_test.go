package core

import (
	"testing"

	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

func TestSimJOptSingleGroupEqualsSimJ(t *testing.T) {
	d, u := smallWorkload(31, 8, 8)
	a, _, err := Join(d, u, Options{Tau: 1, Alpha: 0.6, Mode: ModeSimJ, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Join(d, u, Options{Tau: 1, Alpha: 0.6, Mode: ModeSimJOpt, GroupCount: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("GroupCount=1 opt returned %d pairs, SimJ %d", len(b), len(a))
	}
	for i := range a {
		if a[i].Q != b[i].Q || a[i].G != b[i].G {
			t.Fatalf("pair %d differs", i)
		}
	}
}

func TestKeepMappingsOff(t *testing.T) {
	d, u := smallWorkload(33, 6, 6)
	pairs, _, err := Join(d, u, Options{Tau: 1, Alpha: 0.5, Mode: ModeSimJ, Workers: 1, KeepMappings: false})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Skip("no pairs in this configuration")
	}
	for _, p := range pairs {
		if p.Mapping != nil {
			t.Fatal("mapping kept despite KeepMappings=false")
		}
		if p.World == nil {
			t.Fatal("witness world missing")
		}
	}
}

func TestVerifyMaxStatesBudgetCounted(t *testing.T) {
	// Dense 14-vertex graphs at tau=6 exhaust a 100-state budget.
	mk := func(seed int64) *graph.Graph {
		g := graph.New(14)
		for i := 0; i < 14; i++ {
			g.AddVertex("A")
		}
		for i := 0; i < 14; i++ {
			for j := i + 1; j < 14 && g.NumEdges() < 40; j++ {
				if (i+j+int(seed))%3 == 0 {
					g.MustAddEdge(i, j, "e")
				}
			}
		}
		return g
	}
	q := mk(1)
	g := ugraph.FromCertain(mk(2))
	_, st, err := Join([]*graph.Graph{q}, []*ugraph.Graph{g},
		Options{Tau: 6, Alpha: 0.5, Mode: ModeCSSOnly, Workers: 1, VerifyMaxStates: 50})
	if err != nil {
		t.Fatal(err)
	}
	if st.Candidates == 1 && st.GEDCalls == 1 && st.GEDBudgetHits != 1 {
		t.Errorf("budget hit not recorded: %+v", st)
	}
}

func TestSkippedPairsAccounting(t *testing.T) {
	// Under FallbackNone (the legacy cliff) a pair whose world count blows
	// MaxWorlds still counts as a candidate (it entered verification), lands
	// in SkippedPairs instead of Results, and keeps its partial enumeration
	// in WorldsChecked: exactly MaxWorlds+1 worlds, counting the one that
	// tripped the cap.
	q := graph.New(2)
	q.AddVertex("A")
	q.AddVertex("B")
	q.MustAddEdge(0, 1, "p")
	g := ugraph.New(2)
	g.AddVertex(ugraph.Label{Name: "A", P: 0.5}, ugraph.Label{Name: "B", P: 0.5})
	g.AddVertex(ugraph.Label{Name: "B", P: 0.5}, ugraph.Label{Name: "A", P: 0.5})
	g.MustAddEdge(0, 1, "p")

	_, st, err := Join([]*graph.Graph{q}, []*ugraph.Graph{g},
		Options{Tau: 2, Alpha: 0.9, Mode: ModeCSSOnly, Workers: 1, MaxWorlds: 1, Fallback: FallbackNone})
	if err != nil {
		t.Fatal(err)
	}
	if st.Candidates != 1 {
		t.Fatalf("capped pair not counted as candidate: %+v", st)
	}
	if st.SkippedPairs != 1 {
		t.Fatalf("capped pair not counted in SkippedPairs: %+v", st)
	}
	if st.WorldsChecked != 2 { // MaxWorlds+1
		t.Fatalf("partial WorldsChecked not kept: got %d, want 2", st.WorldsChecked)
	}
	if st.Results != 0 {
		t.Fatalf("skipped pair reported as result: %+v", st)
	}
	if st.BudgetFallbacks != 1 {
		t.Fatalf("cliff not counted as budget fallback: %+v", st)
	}
}

func TestGroupedVerificationExactWithEarlyExitOff(t *testing.T) {
	d, u := smallWorkload(37, 6, 6)
	want := naiveJoin(d, u, 1, 0.4)
	got, _, err := Join(d, u, Options{
		Tau: 1, Alpha: 0.4, Mode: ModeSimJOpt, GroupCount: 5, Workers: 1, DisableEarlyExit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("grouped exact: %d pairs, want %d", len(got), len(want))
	}
	for _, p := range got {
		exact := want[[2]int{p.Q, p.G}]
		if p.SimP < exact-1e-9 || p.SimP > exact+1e-9 {
			t.Fatalf("grouped SimP %v != exact %v", p.SimP, exact)
		}
	}
}

func TestPairWorldIndexingMatchesUncertainGraph(t *testing.T) {
	// The witness world's vertex indices must align with the uncertain
	// graph's (template generation depends on it).
	d, u := smallWorkload(41, 5, 5)
	pairs, _, err := Join(d, u, Options{Tau: 2, Alpha: 0.3, Mode: ModeSimJ, Workers: 1, KeepMappings: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		g := u[p.G]
		w := p.World
		if w.NumVertices() != g.NumVertices() || w.NumEdges() != g.NumEdges() {
			t.Fatalf("witness world shape differs from uncertain graph")
		}
		for v := 0; v < w.NumVertices(); v++ {
			found := false
			for _, l := range g.Labels(v) {
				if l.Name == w.VertexLabel(v) {
					found = true
				}
			}
			if !found {
				t.Fatalf("world label %q not among candidates of vertex %d", w.VertexLabel(v), v)
			}
		}
	}
}
