package core

// Join-time profiling: per-bound cost/selectivity accounting and the
// explain/report surface.
//
// The filter chain became reorderable in PR 4, but choosing an order needs
// data the join did not record: what each bound costs per evaluation and how
// much it prunes *at its position in the chain* (selectivity is positional —
// a bound late in the chain only sees the pairs its predecessors passed).
// Each worker accumulates per-position shards (plain int64 fields, no
// atomics, no allocation in steady state); at join end the shards fold into
// Stats.BoundProfile, in chain order, and publish to the registry as
// labelled counters. WriteExplain renders the resulting cost model — exactly
// the input a cost-based chain optimizer (ROADMAP item 3) will consume.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"simjoin/internal/filter"
	"simjoin/internal/obs"
)

// BoundCost is one filter-chain stage's accumulated profile: how many pairs
// it evaluated at its chain position, how many it pruned, and (when
// profiling timing is enabled — Options.Obs or Options.Events set) the total
// evaluation wall time in nanoseconds.
type BoundCost struct {
	Pos    int    `json:"pos"`
	Bound  string `json:"bound"`
	Evals  int64  `json:"evals"`
	Prunes int64  `json:"prunes"`
	Nanos  int64  `json:"nanos"`
}

// Selectivity is the fraction of evaluated pairs the bound pruned at its
// position; 0 when the bound never ran.
func (c *BoundCost) Selectivity() float64 {
	if c.Evals == 0 {
		return 0
	}
	return float64(c.Prunes) / float64(c.Evals)
}

// PassRate is the fraction of evaluated pairs the bound let through.
func (c *BoundCost) PassRate() float64 {
	if c.Evals == 0 {
		return 0
	}
	return 1 - c.Selectivity()
}

// NsPerEval is the bound's measured cost per evaluation in nanoseconds.
func (c *BoundCost) NsPerEval() float64 {
	if c.Evals == 0 {
		return 0
	}
	return float64(c.Nanos) / float64(c.Evals)
}

// EffectiveCost is the cost model's ordering key: nanoseconds spent per pair
// pruned (cost-per-eval / selectivity). Cheap, selective bounds score low
// and belong early in the chain; a bound that never prunes scores +Inf.
func (c *BoundCost) EffectiveCost() float64 {
	sel := c.Selectivity()
	if sel == 0 {
		return math.Inf(1)
	}
	return c.NsPerEval() / sel
}

// boundShard is one worker's accumulator for one chain position. Plain
// fields: each worker owns its shard slice exclusively, so recording is two
// or three integer adds with no synchronisation and no allocation.
type boundShard struct {
	evals, prunes, nanos int64
}

// newRec builds one worker's recording context: the per-position profile
// shards (always on — counting costs two adds per bound) and, when an event
// log is configured, the worker's private event buffer.
func newRec(jo *joinObs, opts *Options, chain []filter.Bound) rec {
	r := rec{jo: jo, prof: make([]boundShard, len(chain))}
	if opts.Events != nil {
		r.eb = opts.Events.NewBuffer()
		r.ev.Bounds = make([]obs.BoundObs, 0, len(chain))
	}
	return r
}

// finish folds the worker's shards into its Stats (chain-ordered
// BoundProfile) and flushes any pending events; called once per worker
// after its task loop drains, before the Stats merge.
func (st *rec) finish(chain []filter.Bound) {
	if st.prof != nil {
		st.BoundProfile = make([]BoundCost, len(st.prof))
		for i := range st.prof {
			sh := &st.prof[i]
			st.BoundProfile[i] = BoundCost{
				Pos:    i,
				Bound:  chain[i].Name(),
				Evals:  sh.evals,
				Prunes: sh.prunes,
				Nanos:  sh.nanos,
			}
		}
	}
	st.eb.Flush()
}

// mergeBoundProfile folds src into dst by (position, bound), appending
// entries dst has not seen; the result stays sorted by position. Workers of
// one join share a chain, so in practice this is element-wise addition.
func mergeBoundProfile(dst, src []BoundCost) []BoundCost {
	for _, s := range src {
		merged := false
		for i := range dst {
			if dst[i].Pos == s.Pos && dst[i].Bound == s.Bound {
				dst[i].Evals += s.Evals
				dst[i].Prunes += s.Prunes
				dst[i].Nanos += s.Nanos
				merged = true
				break
			}
		}
		if !merged {
			dst = append(dst, s)
		}
	}
	sort.SliceStable(dst, func(i, j int) bool {
		if dst[i].Pos != dst[j].Pos {
			return dst[i].Pos < dst[j].Pos
		}
		return dst[i].Bound < dst[j].Bound
	})
	return dst
}

// boundProfileMetric names the labelled registry counter carrying one
// BoundCost field for one (bound, position).
func boundProfileMetric(field, bound string, pos int) string {
	return obs.Name("simjoin_bound_"+field, "bound", bound, "pos", strconv.Itoa(pos))
}

// publishBoundProfile accumulates the profile into the registry as labelled
// counters, one per (bound, position, field).
func publishBoundProfile(reg *obs.Registry, prof []BoundCost) {
	for _, bc := range prof {
		reg.Counter(boundProfileMetric("evals_total", bc.Bound, bc.Pos)).Add(bc.Evals)
		reg.Counter(boundProfileMetric("prunes_total", bc.Bound, bc.Pos)).Add(bc.Prunes)
		reg.Counter(boundProfileMetric("eval_nanoseconds_total", bc.Bound, bc.Pos)).Add(bc.Nanos)
	}
}

// boundProfileFromSnapshot inverts publishBoundProfile: it scans the
// snapshot's labelled simjoin_bound_* counters and rebuilds the profile,
// sorted by (position, bound).
func boundProfileFromSnapshot(snap obs.Snapshot) []BoundCost {
	type key struct {
		pos   int
		bound string
	}
	acc := make(map[key]*BoundCost)
	entry := func(labels map[string]string) *BoundCost {
		pos, err := strconv.Atoi(labels["pos"])
		if err != nil || labels["bound"] == "" {
			return nil
		}
		k := key{pos: pos, bound: labels["bound"]}
		bc := acc[k]
		if bc == nil {
			bc = &BoundCost{Pos: pos, Bound: labels["bound"]}
			acc[k] = bc
		}
		return bc
	}
	for name, v := range snap.Counters {
		base, labels := obs.ParseName(name)
		switch base {
		case "simjoin_bound_evals_total":
			if bc := entry(labels); bc != nil {
				bc.Evals = v
			}
		case "simjoin_bound_prunes_total":
			if bc := entry(labels); bc != nil {
				bc.Prunes = v
			}
		case "simjoin_bound_eval_nanoseconds_total":
			if bc := entry(labels); bc != nil {
				bc.Nanos = v
			}
		}
	}
	if len(acc) == 0 {
		return nil
	}
	out := make([]BoundCost, 0, len(acc))
	for _, bc := range acc {
		out = append(out, *bc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Bound < out[j].Bound
	})
	return out
}

// ── Explain rendering ───────────────────────────────────────────────────────

// explainStages maps display labels to the stage-latency histogram names
// WriteExplain summarises. The verdict-rung split reuses Verdict.String().
var explainStages = []struct{ label, metric string }{
	{"source (per batch)", "simjoin_source_seconds"},
	{"prune (per pair)", "simjoin_prune_seconds"},
	{"verify (per candidate)", "simjoin_verify_seconds"},
	{"verify[exact]", verifyRungMetric(VerdictExact)},
	{"verify[sampled]", verifyRungMetric(VerdictSampled)},
	{"verify[approx-bound]", verifyRungMetric(VerdictApproxBound)},
	{"verify[undecided]", verifyRungMetric(VerdictUndecided)},
}

// verifyRungMetric names the per-verdict verify latency histogram.
func verifyRungMetric(v Verdict) string {
	return obs.Name("simjoin_verify_rung_seconds", "verdict", v.String())
}

// WriteExplain renders the join's cost model: the per-bound table (evals,
// prunes, selectivity, ns/eval, effective cost and the effective-cost rank)
// in chain order, the implied effective-cost ordering, and P50/P95/P99
// latency summaries for every pipeline stage. st supplies the profile (the
// snapshot's copy is used when st carries none, e.g. when rendering from a
// saved -stats-json document) and snap supplies the stage histograms.
func WriteExplain(w io.Writer, st *Stats, snap obs.Snapshot) {
	prof := st.BoundProfile
	if len(prof) == 0 {
		prof = boundProfileFromSnapshot(snap)
	}
	if len(prof) == 0 {
		fmt.Fprintln(w, "explain: no per-bound profile recorded (run the join with observability enabled)")
	} else {
		WriteBoundTable(w, prof)
	}

	fmt.Fprintln(w, "stage latencies:")
	fmt.Fprintf(w, "  %-24s %10s %12s %12s %12s\n", "stage", "count", "p50", "p95", "p99")
	for _, s := range explainStages {
		h, ok := snap.Histograms[s.metric]
		if !ok || h.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-24s %10d %12s %12s %12s\n", s.label, h.Count,
			formatSeconds(h.Quantile(0.50)),
			formatSeconds(h.Quantile(0.95)),
			formatSeconds(h.Quantile(0.99)))
	}
}

// WriteBoundTable renders just the per-bound cost model table for a profile.
func WriteBoundTable(w io.Writer, prof []BoundCost) {
	ranks := effectiveCostRanks(prof)
	fmt.Fprintln(w, "per-bound cost model (chain order):")
	fmt.Fprintf(w, "  %-4s %-12s %12s %12s %8s %8s %12s %14s %5s\n",
		"pos", "bound", "evals", "prunes", "sel", "pass", "ns/eval", "eff-cost", "rank")
	for i := range prof {
		bc := &prof[i]
		fmt.Fprintf(w, "  %-4d %-12s %12d %12d %8.4f %8.4f %12.0f %14s %5d\n",
			bc.Pos, bc.Bound, bc.Evals, bc.Prunes, bc.Selectivity(), bc.PassRate(),
			bc.NsPerEval(), formatEffCost(bc.EffectiveCost()), ranks[i])
	}
	fmt.Fprintf(w, "effective-cost order (cheapest pruning first): %s\n", EffectiveCostOrder(prof))
}

// WriteShardTable renders the merge stage's per-shard balance view from the
// per-shard Stats of a sharded join (ShardedJoinStats): each shard's pair
// share, candidates, results and band-dedup telemetry, plus the imbalance
// factor (max/mean of per-shard pairs — the "one size does not fit all"
// number to watch when tuning -shards).
func WriteShardTable(w io.Writer, per []Stats) {
	if len(per) == 0 {
		return
	}
	fmt.Fprintln(w, "per-shard balance (merge stage):")
	fmt.Fprintf(w, "  %-6s %12s %12s %12s %12s %12s\n",
		"shard", "pairs", "candidates", "results", "band-probes", "band-dupes")
	for s := range per {
		fmt.Fprintf(w, "  %-6d %12d %12d %12d %12d %12d\n",
			s, per[s].Pairs, per[s].Candidates, per[s].Results,
			per[s].BandProbes, per[s].BandDupes)
	}
	fmt.Fprintf(w, "shard imbalance (max/mean pairs): %.3f\n", ShardImbalance(per))
}

// effectiveCostLess is the one deterministic comparator behind every
// effective-cost ranking: ascending effective cost, ties broken by chain
// position, then by bound name. The name tie-break matters for name-folded
// profiles (ProfileByBound) where several bounds can share a position; without
// it two equal-cost bounds would rank in map-iteration order.
func effectiveCostLess(a, b *BoundCost) bool {
	ca, cb := a.EffectiveCost(), b.EffectiveCost()
	if ca != cb {
		return ca < cb
	}
	if a.Pos != b.Pos {
		return a.Pos < b.Pos
	}
	return a.Bound < b.Bound
}

// effectiveCostIndex returns the profile's indices sorted by effectiveCostLess.
func effectiveCostIndex(prof []BoundCost) []int {
	idx := make([]int, len(prof))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return effectiveCostLess(&prof[idx[a]], &prof[idx[b]])
	})
	return idx
}

// effectiveCostRanks assigns each profile entry its 1-based rank under
// ascending effective cost (ties broken by chain position, then bound name).
func effectiveCostRanks(prof []BoundCost) []int {
	ranks := make([]int, len(prof))
	for r, i := range effectiveCostIndex(prof) {
		ranks[i] = r + 1
	}
	return ranks
}

// EffectiveCostOrder returns the bound names ordered by ascending effective
// cost — the chain order a greedy cost-based optimizer would pick from this
// profile, as a "-filters"-compatible comma-separated list. Repeated names
// (one bound profiled at several positions, e.g. a merged cross-order
// profile) appear once, at their cheapest rank.
func EffectiveCostOrder(prof []BoundCost) string {
	seen := make(map[string]bool, len(prof))
	out := ""
	for _, j := range effectiveCostIndex(prof) {
		if seen[prof[j].Bound] {
			continue
		}
		seen[prof[j].Bound] = true
		if out != "" {
			out += ","
		}
		out += prof[j].Bound
	}
	return out
}

// ProfileByBound folds a profile by bound name, summing evals, prunes and
// nanos across chain positions; each entry keeps the smallest position the
// bound appeared at, and the result is sorted by name. This is the positional
// profile's order-independent view: two runs of the same chain under
// different adaptive orders (or differently-ordered shards of one join)
// produce name-folded profiles whose eval/prune totals are directly
// comparable, which is why the prune-drift tooling keys on it.
func ProfileByBound(prof []BoundCost) []BoundCost {
	byName := make(map[string]*BoundCost, len(prof))
	for i := range prof {
		bc := &prof[i]
		f := byName[bc.Bound]
		if f == nil {
			c := *bc
			byName[bc.Bound] = &c
			continue
		}
		f.Evals += bc.Evals
		f.Prunes += bc.Prunes
		f.Nanos += bc.Nanos
		if bc.Pos < f.Pos {
			f.Pos = bc.Pos
		}
	}
	out := make([]BoundCost, 0, len(byName))
	for _, bc := range byName {
		out = append(out, *bc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bound < out[j].Bound })
	return out
}

// formatEffCost prints an effective cost, rendering the never-pruned +Inf
// case legibly.
func formatEffCost(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return strconv.FormatFloat(v, 'f', 0, 64)
}

// formatSeconds renders a duration quantile in engineering-friendly units.
func formatSeconds(s float64) string {
	switch {
	case math.IsNaN(s):
		return "-"
	case s < 1e-6:
		return fmt.Sprintf("%.0fns", s*1e9)
	case s < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}
