package core

import (
	"context"
	"math"
	"math/rand"

	"simjoin/internal/ged"
	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

// sampleOutcome reports how the Monte Carlo rung ended.
type sampleOutcome int

const (
	sampleDecided   sampleOutcome = iota // estimate cleared α by the margin
	sampleUndecided                      // estimate inside the margin
	sampleDeadline                       // the pair's soft deadline expired
	sampleCancelled                      // the whole join was cancelled
)

// sampleVerify estimates SimPτ(q, g) by Monte Carlo — the verdict ladder's
// middle rung, used when exact possible-world enumeration is out of budget:
// n worlds are drawn i.i.d. from the per-vertex label distributions
// (normalised, then rescaled by the graph's total mass), each checked with
// threshold-bounded GED. The pair is accepted when the estimate clears α by
// the Hoeffding margin ε = sqrt(ln(1/δ) / (2n)) with δ = 0.01, rejected when
// it falls below α by the same margin, and reported undecided in between
// (the ladder falls through to the approximate rung). A decided pair carries
// the cleared margin in Pair.CI.
//
// The estimator is deterministic: the RNG is seeded from the pair indices.
func sampleVerify(pairCtx, joinCtx context.Context, pi *pairIn, opts *Options, st *rec) (Pair, bool, sampleOutcome) {
	// Entry check mirrors the in-loop poll: a pair that arrives with its
	// deadline already spent must not draw a full sample.
	if pairCtx.Err() != nil {
		if joinCtx.Err() != nil {
			return Pair{}, false, sampleCancelled
		}
		return Pair{}, false, sampleDeadline
	}
	q, g, qi, gi := pi.q, pi.g, pi.qi, pi.gi
	n := opts.SampleWorlds
	mass := pi.gs.Mass
	rng := rand.New(rand.NewSource(int64(qi)*1_000_003 + int64(gi) + 42))

	// Per-vertex cumulative distributions (normalised), with the candidate
	// labels' dictionary ids alongside so sampled worlds skip interning.
	type cdf struct {
		labels []ugraph.Label
		ids    []graph.LabelID
		sum    float64
	}
	dists := make([]cdf, g.NumVertices())
	for v := range dists {
		ls := g.Labels(v)
		s := 0.0
		for _, l := range ls {
			s += l.P
		}
		dists[v] = cdf{labels: ls, ids: g.LabelIDs(v), sum: s}
	}

	w := graph.New(g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		w.AddVertexID(dists[v].labels[0].Name, dists[v].ids[0])
	}
	eids := g.EdgeLabelIDs()
	for i, e := range g.Edges() {
		w.MustAddEdgeID(e.From, e.To, e.Label, eids[i])
	}

	hits := 0
	best := Pair{Q: qi, G: gi, Distance: opts.Tau + 1}
	st.pv.Reset(pi.qs, pi.gs) // sampled worlds share g's structure
	for i := 0; i < n; i++ {
		if i%ctxCheckEvery == ctxCheckEvery-1 && pairCtx.Err() != nil {
			// A partial sample cannot honour the advertised margin; report
			// why the rung stopped and let the ladder degrade further.
			if joinCtx.Err() != nil {
				return Pair{}, false, sampleCancelled
			}
			return Pair{}, false, sampleDeadline
		}
		for v := 0; v < g.NumVertices(); v++ {
			r := rng.Float64() * dists[v].sum
			acc := 0.0
			k := len(dists[v].labels) - 1
			for i, l := range dists[v].labels {
				acc += l.P
				if r < acc {
					k = i
					break
				}
			}
			w.SetVertexLabelID(v, dists[v].labels[k].Name, dists[v].ids[k])
		}
		st.WorldsChecked++
		if st.pv.WorldLowerBound(w) > opts.Tau {
			continue
		}
		st.GEDCalls++
		res, err := ged.Compute(q, w, ged.Options{Threshold: opts.Tau, MaxStates: opts.VerifyMaxStates, Metrics: st.jo.gedM})
		st.GEDStatesExpanded += int64(res.States)
		if err != nil {
			st.GEDBudgetHits++
			continue
		}
		if !res.Exceeded {
			hits++
			if res.Distance < best.Distance {
				best.Distance = res.Distance
				best.World = w.Clone()
				best.Mapping = res.Mapping
			}
		}
	}

	estimate := float64(hits) / float64(n) * mass
	eps := hoeffdingMargin(n) * mass
	switch {
	case estimate-eps >= opts.Alpha:
		best.SimP = estimate
		best.CI = eps
		if !opts.KeepMappings {
			best.Mapping = nil
		}
		return best, true, sampleDecided
	case estimate+eps < opts.Alpha:
		return Pair{}, false, sampleDecided
	default:
		return Pair{}, false, sampleUndecided // inside the margin
	}
}

// hoeffdingMargin returns sqrt(ln(1/δ)/(2n)) for δ = 0.01.
func hoeffdingMargin(n int) float64 {
	const ln100 = 4.605170185988091
	return math.Sqrt(ln100 / (2 * float64(n)))
}
