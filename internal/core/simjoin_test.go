package core

import (
	"math"
	"math/rand"
	"testing"

	"simjoin/internal/ged"
	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

func randomCertain(rng *rand.Rand, n, e int) *graph.Graph {
	labels := []string{"A", "B", "C", "D", "?x"}
	elabels := []string{"p", "q", "type"}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(labels[rng.Intn(len(labels))])
	}
	for t := 0; t < e*3 && g.NumEdges() < e; t++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, elabels[rng.Intn(len(elabels))])
	}
	return g
}

func randomUncertain(rng *rand.Rand, n, e, maxLabels int) *ugraph.Graph {
	names := []string{"A", "B", "C", "D"}
	g := ugraph.New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.3 {
			g.AddVertex(ugraph.Label{Name: "?x", P: 1})
			continue
		}
		k := 1 + rng.Intn(maxLabels)
		perm := rng.Perm(len(names))[:k]
		var ls []ugraph.Label
		rest := 1.0
		for j, pi := range perm {
			p := rest
			if j < k-1 {
				p = rest * (0.3 + 0.4*rng.Float64())
			}
			ls = append(ls, ugraph.Label{Name: names[pi], P: p})
			rest -= p
		}
		g.AddVertex(ls...)
	}
	elabels := []string{"p", "q", "type"}
	for t := 0; t < e*3 && g.NumEdges() < e; t++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		_ = g.AddEdge(u, v, elabels[rng.Intn(len(elabels))])
	}
	return g
}

// naiveJoin is the brute-force oracle: full possible-world enumeration with
// exact GED for every pair.
func naiveJoin(d []*graph.Graph, u []*ugraph.Graph, tau int, alpha float64) map[[2]int]float64 {
	out := make(map[[2]int]float64)
	for qi, q := range d {
		for gi, g := range u {
			simP := 0.0
			g.Worlds(func(w *graph.Graph, p float64) bool {
				if _, ok := ged.WithinThreshold(q, w, tau); ok {
					simP += p
				}
				return true
			})
			if simP >= alpha {
				out[[2]int{qi, gi}] = simP
			}
		}
	}
	return out
}

func smallWorkload(seed int64, nd, nu int) ([]*graph.Graph, []*ugraph.Graph) {
	rng := rand.New(rand.NewSource(seed))
	d := make([]*graph.Graph, nd)
	for i := range d {
		d[i] = randomCertain(rng, 2+rng.Intn(4), rng.Intn(5))
	}
	u := make([]*ugraph.Graph, nu)
	for i := range u {
		u[i] = randomUncertain(rng, 2+rng.Intn(3), rng.Intn(4), 2)
	}
	return d, u
}

func TestJoinMatchesOracleAllModes(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		d, u := smallWorkload(seed, 6, 6)
		for _, tau := range []int{0, 1, 2} {
			for _, alpha := range []float64{0.3, 0.7, 0.95} {
				want := naiveJoin(d, u, tau, alpha)
				for _, mode := range []Mode{ModeCSSOnly, ModeSimJ, ModeSimJOpt} {
					opts := Options{Tau: tau, Alpha: alpha, Mode: mode, GroupCount: 4, Workers: 2}
					got, _, err := Join(d, u, opts)
					if err != nil {
						t.Fatalf("Join(%v): %v", mode, err)
					}
					if len(got) != len(want) {
						t.Fatalf("seed=%d tau=%d alpha=%v mode=%v: got %d pairs, want %d",
							seed, tau, alpha, mode, len(got), len(want))
					}
					for _, p := range got {
						wp, ok := want[[2]int{p.Q, p.G}]
						if !ok {
							t.Fatalf("mode %v returned false pair (%d,%d)", mode, p.Q, p.G)
						}
						// Early-accepted pairs report a partial (lower-bound)
						// SimP; it must never exceed the exact value.
						if p.SimP > wp+1e-9 {
							t.Fatalf("pair (%d,%d) SimP %v exceeds exact %v", p.Q, p.G, p.SimP, wp)
						}
						if p.SimP < alpha-1e-9 {
							t.Fatalf("pair (%d,%d) reported SimP %v < alpha %v", p.Q, p.G, p.SimP, alpha)
						}
					}
				}
			}
		}
	}
}

func TestTightProbBoundMatchesOracle(t *testing.T) {
	d, u := smallWorkload(23, 8, 8)
	for _, tau := range []int{0, 1, 2} {
		for _, alpha := range []float64{0.4, 0.8} {
			want := naiveJoin(d, u, tau, alpha)
			got, st, err := Join(d, u, Options{Tau: tau, Alpha: alpha, Mode: ModeSimJ, TightProbBound: true, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("tau=%d alpha=%v: %d pairs, want %d", tau, alpha, len(got), len(want))
			}
			// The tighter bound can only prune more.
			loose, st2, err := Join(d, u, Options{Tau: tau, Alpha: alpha, Mode: ModeSimJ, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			if len(loose) != len(want) {
				t.Fatalf("loose bound changed results")
			}
			if st.Candidates > st2.Candidates {
				t.Errorf("tight bound kept more candidates (%d > %d)", st.Candidates, st2.Candidates)
			}
		}
	}
}

func TestJoinEarlyExitOffMatchesExact(t *testing.T) {
	d, u := smallWorkload(7, 5, 5)
	opts := Options{Tau: 1, Alpha: 0.5, Mode: ModeSimJ, Workers: 1, DisableEarlyExit: true}
	got, _, err := Join(d, u, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveJoin(d, u, 1, 0.5)
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
	for _, p := range got {
		if math.Abs(p.SimP-want[[2]int{p.Q, p.G}]) > 1e-9 {
			t.Errorf("pair (%d,%d): SimP %v != exact %v", p.Q, p.G, p.SimP, want[[2]int{p.Q, p.G}])
		}
	}
}

func TestModesPruneProgressively(t *testing.T) {
	d, u := smallWorkload(13, 10, 10)
	var prev int64 = 1 << 62
	for _, mode := range []Mode{ModeCSSOnly, ModeSimJ, ModeSimJOpt} {
		_, st, err := Join(d, u, Options{Tau: 1, Alpha: 0.9, Mode: mode, GroupCount: 6, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if st.Candidates > prev {
			t.Errorf("mode %v has %d candidates, more than previous mode's %d", mode, st.Candidates, prev)
		}
		if st.Candidates < st.Results {
			t.Errorf("mode %v: results %d exceed candidates %d", mode, st.Results, st.Candidates)
		}
		prev = st.Candidates
	}
}

func TestStatsAccounting(t *testing.T) {
	d, u := smallWorkload(19, 8, 7)
	_, st, err := Join(d, u, Options{Tau: 1, Alpha: 0.9, Mode: ModeSimJ, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs != int64(len(d)*len(u)) {
		t.Errorf("Pairs = %d, want %d", st.Pairs, len(d)*len(u))
	}
	if st.CSSPruned+st.ProbPruned+st.Candidates != st.Pairs {
		t.Errorf("pruned(%d+%d)+candidates(%d) != pairs(%d)",
			st.CSSPruned, st.ProbPruned, st.Candidates, st.Pairs)
	}
	if r := st.CandidateRatio(); r < 0 || r > 1 {
		t.Errorf("CandidateRatio = %v", r)
	}
	if st.ResultRatio() > st.CandidateRatio() {
		t.Error("ResultRatio exceeds CandidateRatio")
	}
}

func TestMappingReturned(t *testing.T) {
	// Identical graphs must join at tau=0 with a usable mapping.
	q := graph.New(3)
	q.AddVertex("?x")
	q.AddVertex("Artist")
	q.AddVertex("University")
	q.MustAddEdge(0, 1, "type")
	q.MustAddEdge(0, 2, "graduatedFrom")
	g := ugraph.FromCertain(q)
	pairs, _, err := Join([]*graph.Graph{q}, []*ugraph.Graph{g},
		Options{Tau: 0, Alpha: 0.9, Mode: ModeSimJ, KeepMappings: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 {
		t.Fatalf("got %d pairs, want 1", len(pairs))
	}
	p := pairs[0]
	if p.Distance != 0 || p.World == nil || p.Mapping == nil {
		t.Fatalf("pair = %+v; want distance 0 with world and mapping", p)
	}
	if c, err := ged.MappingCost(q, p.World, p.Mapping); err != nil || c != 0 {
		t.Fatalf("mapping cost = %d, %v; want 0", c, err)
	}
}

func TestPaperRunningExample(t *testing.T) {
	// q1/g2 of Fig. 3/4: "Which politician graduated from CIT?" should match
	// the Artist/Harvard SPARQL under a permissive tau, and the politician
	// question must NOT match the actor question's complex query at tau=1.
	q1 := graph.New(4)
	x := q1.AddVertex("?x")
	ar := q1.AddVertex("Artist")
	hu := q1.AddVertex("Harvard_University")
	un := q1.AddVertex("University")
	q1.MustAddEdge(x, ar, "type")
	q1.MustAddEdge(x, hu, "graduatedFrom")
	q1.MustAddEdge(hu, un, "type")

	g2 := ugraph.New(3)
	gx := g2.AddVertex(ugraph.Label{Name: "?x", P: 1})
	gp := g2.AddVertex(ugraph.Label{Name: "Politician", P: 1})
	gc := g2.AddVertex(ugraph.Label{Name: "University", P: 0.8}, ugraph.Label{Name: "Company", P: 0.2})
	g2.MustAddEdge(gx, gp, "type")
	g2.MustAddEdge(gx, gc, "graduatedFrom")

	// Distance from q1 to the University world: Politician->Artist sub (1),
	// University->Harvard_University sub (1), insert University + type edge
	// (2) = 4 at most; check it joins at tau=4, alpha=0.8.
	pairs, _, err := Join([]*graph.Graph{q1}, []*ugraph.Graph{g2},
		Options{Tau: 4, Alpha: 0.8, Mode: ModeSimJOpt, GroupCount: 2, Workers: 1, KeepMappings: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 {
		t.Fatalf("expected the politician/artist pair to join at tau=4, got %d pairs", len(pairs))
	}
	if pairs[0].Distance > 4 {
		t.Errorf("distance = %d, want <= 4", pairs[0].Distance)
	}

	// At tau=1 the pair must be rejected (too many edits needed).
	pairs, _, err = Join([]*graph.Graph{q1}, []*ugraph.Graph{g2},
		Options{Tau: 1, Alpha: 0.5, Mode: ModeSimJ, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Errorf("pair should not join at tau=1, got %d", len(pairs))
	}
}

func TestOptionValidation(t *testing.T) {
	d, u := smallWorkload(1, 1, 1)
	if _, _, err := Join(d, u, Options{Tau: -1, Alpha: 0.5}); err == nil {
		t.Error("negative tau accepted")
	}
	if _, _, err := Join(d, u, Options{Tau: 1, Alpha: 0}); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, _, err := Join(d, u, Options{Tau: 1, Alpha: 1.2}); err == nil {
		t.Error("alpha > 1 accepted")
	}
}

func TestMaxWorldsSkips(t *testing.T) {
	// An uncertain graph with 3^6 worlds against a 1-world budget.
	g := ugraph.New(6)
	for i := 0; i < 6; i++ {
		g.AddVertex(
			ugraph.Label{Name: "A", P: 0.4},
			ugraph.Label{Name: "B", P: 0.3},
			ugraph.Label{Name: "C", P: 0.3},
		)
	}
	q := graph.New(1)
	q.AddVertex("A")
	base := Options{Tau: 10, Alpha: 0.01, Mode: ModeCSSOnly, Workers: 1, MaxWorlds: 1, DisableEarlyExit: true}

	t.Run("legacy cliff", func(t *testing.T) {
		// FallbackNone restores the pre-ladder behaviour: over budget → skip.
		opts := base
		opts.Fallback = FallbackNone
		_, st, err := Join([]*graph.Graph{q}, []*ugraph.Graph{g}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if st.SkippedPairs != 1 {
			t.Errorf("SkippedPairs = %d, want 1", st.SkippedPairs)
		}
	})
	t.Run("ladder decides", func(t *testing.T) {
		// Every world is within tau=10 of the single-vertex query, so the
		// default sampling fallback must accept instead of skipping.
		pairs, st, err := Join([]*graph.Graph{q}, []*ugraph.Graph{g}, base)
		if err != nil {
			t.Fatal(err)
		}
		if st.SkippedPairs != 0 || st.BudgetFallbacks != 1 || st.SampledPairs != 1 {
			t.Errorf("ladder stats: %+v", st)
		}
		if len(pairs) != 1 || pairs[0].Verdict != VerdictSampled || pairs[0].CI <= 0 {
			t.Errorf("pairs = %+v, want one VerdictSampled result with CI", pairs)
		}
	})
}

func TestEmptyInputs(t *testing.T) {
	pairs, st, err := Join(nil, nil, Options{Tau: 1, Alpha: 0.5})
	if err != nil || len(pairs) != 0 || st.Pairs != 0 {
		t.Fatalf("empty join: pairs=%d stats=%+v err=%v", len(pairs), st, err)
	}
}

func TestDeterministicAcrossWorkers(t *testing.T) {
	d, u := smallWorkload(29, 8, 8)
	var ref []Pair
	for _, workers := range []int{1, 2, 8} {
		got, _, err := Join(d, u, Options{Tau: 1, Alpha: 0.6, Mode: ModeSimJOpt, GroupCount: 4, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d pairs, want %d", workers, len(got), len(ref))
		}
		for i := range got {
			if got[i].Q != ref[i].Q || got[i].G != ref[i].G {
				t.Fatalf("workers=%d: pair order differs at %d", workers, i)
			}
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeCSSOnly.String() != "CSS only" || ModeSimJ.String() != "SimJ" || ModeSimJOpt.String() != "SimJ+opt" {
		t.Error("Mode.String mismatch")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode should still render")
	}
}
