package core

import (
	"sync/atomic"
	"time"

	"simjoin/internal/filter"
	"simjoin/internal/ged"
	"simjoin/internal/obs"
	"simjoin/internal/plan"
	"simjoin/internal/ugraph"
)

// joinObs carries the shared observability state of one join run: registry
// handles for per-stage histograms, the per-filter counters, the GED engine
// metrics, the span tracer, and the live tallies the progress reporter
// reads. Every handle is a nil-safe obs instrument, so with observability
// disabled (Options.Obs, Tracer and Logger all nil) recording degenerates to
// nil checks and the join runs at seed speed.
type joinObs struct {
	reg  *obs.Registry
	tr   *obs.Tracer
	filt *filter.Obs
	gedM *ged.Metrics
	ev   *obs.EventLog

	// profile gates per-bound wall-clock timing (time.Now around every bound
	// evaluation): on whenever metrics or the event log want the numbers, off
	// — along with its overhead — when observability is fully disabled.
	profile bool

	pruneSeconds  *obs.Histogram
	verifySeconds *obs.Histogram
	sourceSeconds *obs.Histogram
	worldsPerPair *obs.Histogram
	// verifyRung splits verify latency per verdict-ladder rung, indexed by
	// Verdict (VerdictNone unused).
	verifyRung [5]*obs.Histogram

	// progress gates the live atomics below; they are only maintained when a
	// Logger and ProgressEvery are configured.
	progress   bool
	pairsDone  atomic.Int64
	candidates atomic.Int64

	// beats holds one pair-start timestamp (UnixNano) per worker, 0 when the
	// worker is between pairs; allocated only when the watchdog is enabled.
	// The watchdog goroutine scans them to spot workers stuck on one pair.
	beats          []atomic.Int64
	watchdogStalls *obs.Counter

	// ctrl is the adaptive filter-chain controller (nil unless
	// Options.Planner asks for chain adaptation); epochSeconds and epochNanos
	// record the wall-clock cost of its epoch recomputations.
	ctrl         *plan.ChainController
	epochSeconds *obs.Histogram
	epochNanos   atomic.Int64
}

func newJoinObs(o *Options) *joinObs {
	jo := &joinObs{
		reg:      o.Obs,
		tr:       o.Tracer,
		ev:       o.Events,
		profile:  o.Obs != nil || o.Events != nil,
		progress: o.Logger != nil && o.ProgressEvery > 0,
	}
	if o.Obs != nil {
		jo.filt = filter.NewObs(o.Obs)
		jo.gedM = ged.NewMetrics(o.Obs)
		jo.pruneSeconds = o.Obs.Histogram("simjoin_prune_seconds", obs.DurationBuckets)
		jo.verifySeconds = o.Obs.Histogram("simjoin_verify_seconds", obs.DurationBuckets)
		jo.sourceSeconds = o.Obs.Histogram("simjoin_source_seconds", obs.DurationBuckets)
		jo.worldsPerPair = o.Obs.Histogram("simjoin_worlds_per_pair", obs.CountBuckets)
		for v := VerdictExact; v <= VerdictUndecided; v++ {
			jo.verifyRung[v] = o.Obs.Histogram(verifyRungMetric(v), obs.DurationBuckets)
		}
		jo.watchdogStalls = o.Obs.Counter("simjoin_watchdog_stalls_total")
	}
	return jo
}

// startPlanner creates the adaptive chain controller when Options.Planner
// asks for chain adaptation and the chain has anything to reorder. The
// controller is shared by all workers (its hot path is atomic); every epoch
// recomputation reports its wall-clock cost here for the epoch histogram and
// Stats.PlanEpochTime.
func (jo *joinObs) startPlanner(o *Options, chain []filter.Bound) {
	p := o.Planner
	if p == nil || !p.Chain || len(chain) < 2 {
		return
	}
	names := make([]string, len(chain))
	for i, b := range chain {
		names[i] = b.Name()
	}
	jo.ctrl = plan.NewChainController(*p, names)
	if o.Obs != nil {
		jo.epochSeconds = o.Obs.Histogram("simjoin_plan_epoch_seconds", obs.DurationBuckets)
	}
	jo.ctrl.SetOnEpoch(func(nanos int64) {
		jo.epochNanos.Add(nanos)
		if jo.epochSeconds != nil {
			jo.epochSeconds.ObserveDuration(time.Duration(nanos))
		}
	})
}

// finishPlanner folds the controller's totals into the run's Stats and the
// planner's Report at join end. No-op without an active controller.
func (jo *joinObs) finishPlanner(o *Options, total *Stats) {
	if jo.ctrl == nil {
		return
	}
	reorders, epochs := jo.ctrl.Totals()
	total.PlanReorders += reorders
	total.PlanEpochs += epochs
	total.PlanEpochTime += time.Duration(jo.epochNanos.Load())
	if o.Planner != nil {
		o.Planner.Report.NoteChain(jo.ctrl.OrderNames(), reorders, epochs)
	}
}

// syncAux publishes the auxiliary instruments' tallies into the registry at
// join end: the tracer's dropped-span count and the event log's
// emitted/dropped counts. Nil-safe throughout.
func (jo *joinObs) syncAux() {
	jo.tr.SyncDroppedCounter(jo.reg)
	jo.ev.SyncCounters(jo.reg)
}

// beatStart marks worker id as having started a pair; beatEnd clears it.
// Both are single atomic stores and no-ops when the watchdog is off.
func (jo *joinObs) beatStart(id int) {
	if jo.beats != nil {
		jo.beats[id].Store(time.Now().UnixNano())
	}
}

func (jo *joinObs) beatEnd(id int) {
	if jo.beats != nil {
		jo.beats[id].Store(0)
	}
}

// startWatchdog launches the stalled-worker monitor when Options.Watchdog is
// positive: every quarter period it scans the worker heartbeats and, for each
// worker stuck on the same pair for longer than the threshold, logs once (via
// Options.Logger) and bumps simjoin_watchdog_stalls_total. It observes only —
// the pair keeps running — so it catches hangs the soft deadline cannot
// interrupt. The returned stop function is safe to call always.
func (jo *joinObs) startWatchdog(o *Options) func() {
	if o.Watchdog <= 0 {
		return func() {}
	}
	jo.beats = make([]atomic.Int64, o.Workers)
	interval := o.Watchdog / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	done := make(chan struct{})
	go func() {
		flagged := make([]bool, len(jo.beats))
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
			}
			now := time.Now().UnixNano()
			for i := range jo.beats {
				b := jo.beats[i].Load()
				if b > 0 && now-b > int64(o.Watchdog) {
					if !flagged[i] {
						flagged[i] = true
						jo.watchdogStalls.Inc()
						if o.Logger != nil {
							o.Logger.Logf("simjoin: watchdog: worker %d stalled on one pair for %v",
								i, time.Duration(now-b).Round(time.Millisecond))
						}
					}
				} else {
					flagged[i] = false
				}
			}
		}
	}()
	return func() { close(done) }
}

// startProgress launches the periodic progress reporter for a join over
// total pairs; the returned stop function is safe to call always.
func (jo *joinObs) startProgress(o *Options, total int64) func() {
	if !jo.progress {
		return func() {}
	}
	return obs.StartProgress(o.Logger, o.ProgressEvery, total, func() (int64, int64) {
		return jo.pairsDone.Load(), jo.candidates.Load()
	})
}

// rec is the per-worker recording context: the paper-facing Stats tallies
// (plain fields, merged once per worker via Stats.add) plus the run's shared
// observability handles and the worker's reusable scratch buffers. A rec must
// not be shared between goroutines.
type rec struct {
	Stats
	jo *joinObs

	// fsc is the filter chain's scratch (the λV matching buffers and the
	// per-pair group cache of the grouped bound); pv caches the
	// world-invariant CSS constants of the pair under verification; ws holds
	// the possible-world enumeration buffers.
	fsc filter.Scratch
	pv  filter.PairVerifier
	ws  ugraph.WorldScratch

	// pctx is the per-worker PairContext, reused across pairs: building it
	// fresh inside prunephase would heap-allocate one per pair (it escapes
	// through the Bound interface call).
	pctx filter.PairContext

	// prof is the worker's per-chain-position profile shard (see profile.go),
	// folded into Stats.BoundProfile by finish(); indexed like the chain.
	prof []boundShard

	// eb is the worker's event buffer (nil when no event log is configured);
	// ev is the reusable sampled-pair record, evSampled marks the pair in
	// flight as sampled, and evVerdict carries the verdict-ladder rung that
	// decided it (also indexes the verifyRung histograms).
	eb        *obs.EventBuffer
	ev        obs.PairEvent
	evSampled bool
	evVerdict Verdict
}

// statsCounterSpec is the single source of truth tying every Stats counter
// field to its registry metric name. publishStats writes through it and
// StatsFromSnapshot reads through it, so the paper-facing Stats and the
// registry can never disagree; a reflection test asserts the table covers
// every counter field of Stats (the non-counter Cancelled flag and
// Quarantined log are excluded — QuarantinedPairs carries their count — and
// the PrunedBy map is published per bound through prunedByMetric).
var statsCounterSpec = []struct {
	name string
	fld  func(*Stats) *int64
}{
	{"simjoin_pairs_total", func(s *Stats) *int64 { return &s.Pairs }},
	{"simjoin_css_pruned_total", func(s *Stats) *int64 { return &s.CSSPruned }},
	{"simjoin_prob_pruned_total", func(s *Stats) *int64 { return &s.ProbPruned }},
	{"simjoin_candidates_total", func(s *Stats) *int64 { return &s.Candidates }},
	{"simjoin_results_total", func(s *Stats) *int64 { return &s.Results }},
	{"simjoin_skipped_pairs_total", func(s *Stats) *int64 { return &s.SkippedPairs }},
	{"simjoin_worlds_checked_total", func(s *Stats) *int64 { return &s.WorldsChecked }},
	{"simjoin_ged_calls_total", func(s *Stats) *int64 { return &s.GEDCalls }},
	{"simjoin_ged_budget_hits_total", func(s *Stats) *int64 { return &s.GEDBudgetHits }},
	{"simjoin_ged_states_expanded_total", func(s *Stats) *int64 { return &s.GEDStatesExpanded }},
	{"simjoin_groups_built_total", func(s *Stats) *int64 { return &s.GroupsBuilt }},
	{"simjoin_groups_pruned_total", func(s *Stats) *int64 { return &s.GroupsPruned }},
	{"simjoin_early_accepts_total", func(s *Stats) *int64 { return &s.EarlyAccepts }},
	{"simjoin_early_rejects_total", func(s *Stats) *int64 { return &s.EarlyRejects }},
	{"simjoin_index_skipped_total", func(s *Stats) *int64 { return &s.IndexSkipped }},
	{"simjoin_band_probes_total", func(s *Stats) *int64 { return &s.BandProbes }},
	{"simjoin_band_dupes_total", func(s *Stats) *int64 { return &s.BandDupes }},
	{"simjoin_sampled_pairs_total", func(s *Stats) *int64 { return &s.SampledPairs }},
	{"simjoin_exact_pairs_total", func(s *Stats) *int64 { return &s.ExactPairs }},
	{"simjoin_approx_pairs_total", func(s *Stats) *int64 { return &s.ApproxPairs }},
	{"simjoin_budget_fallbacks_total", func(s *Stats) *int64 { return &s.BudgetFallbacks }},
	{"simjoin_deadline_hits_total", func(s *Stats) *int64 { return &s.DeadlineHits }},
	{"simjoin_plan_epochs_total", func(s *Stats) *int64 { return &s.PlanEpochs }},
	{"simjoin_plan_reorders_total", func(s *Stats) *int64 { return &s.PlanReorders }},
	{"simjoin_quarantined_pairs_total", func(s *Stats) *int64 { return &s.QuarantinedPairs }},
}

// statsDurationSpec does the same for the duration fields; the registry
// counters accumulate nanoseconds.
var statsDurationSpec = []struct {
	name string
	fld  func(*Stats) *time.Duration
}{
	{"simjoin_prune_time_nanoseconds_total", func(s *Stats) *time.Duration { return &s.PruneTime }},
	{"simjoin_verify_time_nanoseconds_total", func(s *Stats) *time.Duration { return &s.VerifyTime }},
	{"simjoin_plan_epoch_time_nanoseconds_total", func(s *Stats) *time.Duration { return &s.PlanEpochTime }},
}

// prunedByMetric maps a bound's registry name to the counter carrying its
// Stats.PrunedBy tally.
func prunedByMetric(bound string) string {
	return "simjoin_pruned_by_" + filter.MetricName(bound) + "_total"
}

// publishStats accumulates a finished join's Stats into the registry.
// Counters are cumulative across joins sharing a registry; per-run numbers
// come from diffing snapshots (obs.DiffCounters) or the returned Stats.
func publishStats(reg *obs.Registry, s *Stats) {
	if reg == nil {
		return
	}
	for _, c := range statsCounterSpec {
		reg.Counter(c.name).Add(*c.fld(s))
	}
	for _, c := range statsDurationSpec {
		reg.Counter(c.name).Add(int64(*c.fld(s)))
	}
	for bound, n := range s.PrunedBy {
		reg.Counter(prunedByMetric(bound)).Add(n)
	}
	publishBoundProfile(reg, s.BoundProfile)
}

// StatsFromSnapshot reconstructs a Stats from a registry snapshot through
// the same name table publishStats writes, so snapshot-derived numbers and
// the paper-facing summary agree by construction. Over a registry that
// served several joins the result is their sum. PrunedBy is rebuilt by
// scanning the registered bound names, so custom bounds outside the filter
// registry round-trip through the registry only if registered.
func StatsFromSnapshot(snap obs.Snapshot) Stats {
	var s Stats
	for _, c := range statsCounterSpec {
		*c.fld(&s) = snap.Counters[c.name]
	}
	for _, c := range statsDurationSpec {
		*c.fld(&s) = time.Duration(snap.Counters[c.name])
	}
	// The block-screening stage is not a registry bound but publishes through
	// the same pruned-by family; scan it alongside the registered names.
	for _, bound := range append(filter.BoundNames(), blockStageName) {
		if n := snap.Counters[prunedByMetric(bound)]; n != 0 {
			if s.PrunedBy == nil {
				s.PrunedBy = make(map[string]int64)
			}
			s.PrunedBy[bound] = n
		}
	}
	s.BoundProfile = boundProfileFromSnapshot(snap)
	return s
}
