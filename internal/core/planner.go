package core

// Cardinality-aware source planning: the bridge between internal/plan's
// estimator/decision table and this package's CandidateSource zoo. JoinContext
// routes here when Options.Planner asks for source selection and the caller
// left the source knobs (Shards, BlockSize) open; the planner folds the query
// side's signatures into a label summary, predicts the candidate workload,
// and dispatches to the cross, indexed, block-screened, or sharded pipeline.
// Every source is result-equivalent (the prescreens are implied by the CSS
// bound), so the choice moves only wall-clock time, never the answer.

import (
	"context"
	"fmt"
	"io"

	"simjoin/internal/filter"
	"simjoin/internal/graph"
	"simjoin/internal/plan"
	"simjoin/internal/ugraph"
)

// plannedJoin is JoinContext's source-planning path. The query signatures are
// built once and reused by whichever source wins, so planning adds one
// estimator fold plus a strided sample of the uncertain side — no per-pair
// work — on top of the join the caller would have run anyway.
func plannedJoin(ctx context.Context, d []*graph.Graph, u []*ugraph.Graph, opts Options) ([]Pair, Stats, error) {
	if err := opts.normalise(); err != nil {
		return nil, Stats{}, err
	}
	p := opts.Planner
	qsigs := filter.NewQSigs(d)
	estPairs, estCands := plan.EstimateJoin(plan.NewEstimator(qsigs), u, opts.Tau)
	dec := p.Decide(estPairs, estCands, len(u))
	if dec.Choice == plan.SourceBlock {
		dec.BlockSize = filter.DefaultBlockSize
	}
	p.Report.NoteDecision(dec)

	switch dec.Choice {
	case plan.SourceSharded:
		opts.Shards = dec.Shards
		pairs, st, _, err := shardedJoin(ctx, qsigs, d, u, opts)
		return pairs, st, err
	case plan.SourceBlock:
		opts.BlockSize = dec.BlockSize // joinEngine wraps the source in the block screen
		return joinEngine(ctx, newCrossSourceSigs(d, qsigs, u), opts)
	case plan.SourceIndexed:
		return joinEngine(ctx, buildIndexSigs(d, qsigs).Source(u), opts)
	default: // plan.SourceCross
		return joinEngine(ctx, newCrossSourceSigs(d, qsigs, u), opts)
	}
}

// buildIndexSigs is BuildIndex reusing query signatures the caller already
// built (the planner computes them for its estimate before choosing the
// indexed source).
func buildIndexSigs(d []*graph.Graph, qsigs []*filter.QSig) *Index {
	idx := &Index{
		d:      d,
		qsigs:  qsigs,
		bySize: make(map[int][]int),
	}
	idx.minSize = int(^uint(0) >> 1)
	for i, q := range d {
		size := q.Size()
		idx.bySize[size] = append(idx.bySize[size], i)
		if size < idx.minSize {
			idx.minSize = size
		}
		if size > idx.maxSize {
			idx.maxSize = size
		}
	}
	return idx
}

// WritePlanReport renders what the planners did — the adopted chain orders
// with their reorder/epoch totals, and the source decision with its
// estimate-vs-actual columns — for -explain output. st supplies the actuals:
// total pairs and the count surviving the source's prescreens
// (Pairs − IndexSkipped), the quantity EstCandidates predicts. No-op when the
// config carries no report or the report is empty.
func WritePlanReport(w io.Writer, p *plan.Config, st *Stats) {
	if p == nil || p.Report == nil {
		return
	}
	orders, reorders, epochs := p.Report.Chain()
	dec := p.Report.Decision()
	if len(orders) == 0 && dec == nil {
		return
	}
	fmt.Fprintln(w, "planner:")
	if len(orders) > 0 {
		fmt.Fprintf(w, "  adaptive chain: epochs=%d reorders=%d epoch-time=%s\n",
			epochs, reorders, st.PlanEpochTime)
		for _, o := range orders {
			fmt.Fprintf(w, "    order: %s\n", o)
		}
	}
	if dec != nil {
		fmt.Fprintf(w, "  source: %s (%s)\n", dec.Choice, dec.Reason)
		if dec.Shards > 0 {
			fmt.Fprintf(w, "    shards: %d\n", dec.Shards)
		}
		if dec.BlockSize > 0 {
			fmt.Fprintf(w, "    block size: %d\n", dec.BlockSize)
		}
		fmt.Fprintf(w, "    %-22s %12s %12s\n", "", "estimated", "actual")
		fmt.Fprintf(w, "    %-22s %12d %12d\n", "pairs", dec.EstPairs, st.Pairs)
		fmt.Fprintf(w, "    %-22s %12d %12d\n", "prescreen survivors", dec.EstCandidates, st.Pairs-st.IndexSkipped)
	}
}
