package core

import (
	"math"
	"testing"

	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

// hugeUncertain builds an uncertain graph with 3^12 possible worlds whose
// exact SimP against q is computable analytically.
func hugeUncertain(matchMass float64) (*graph.Graph, *ugraph.Graph) {
	// q: star of 13 vertices all labeled M.
	q := graph.New(13)
	c := q.AddVertex("M")
	for i := 0; i < 12; i++ {
		v := q.AddVertex("M")
		q.MustAddEdge(c, v, "e")
	}
	// g: same structure; centre certain M, every leaf M with probability p
	// and two decoys. A world is within tau=1 iff at most one leaf deviates.
	p := matchMass
	g := ugraph.New(13)
	gc := g.AddVertex(ugraph.Label{Name: "M", P: 1})
	for i := 0; i < 12; i++ {
		v := g.AddVertex(
			ugraph.Label{Name: "M", P: p},
			ugraph.Label{Name: "X", P: (1 - p) / 2},
			ugraph.Label{Name: "Y", P: (1 - p) / 2},
		)
		g.MustAddEdge(gc, v, "e")
	}
	return q, g
}

// exactStarSimP computes SimP analytically: P(at most one of 12 leaves
// deviates) = p^12 + 12·p^11·(1−p).
func exactStarSimP(p float64) float64 {
	return math.Pow(p, 12) + 12*math.Pow(p, 11)*(1-p)
}

func TestSampleVerifyDecisions(t *testing.T) {
	cases := []struct {
		p      float64
		alpha  float64
		accept bool
	}{
		{0.98, 0.5, true},  // exact SimP ≈ 0.98 >> 0.5
		{0.55, 0.9, false}, // exact SimP ≈ 0.02 << 0.9
	}
	for _, c := range cases {
		q, g := hugeUncertain(c.p)
		opts := Options{
			Tau: 1, Alpha: c.alpha, Mode: ModeCSSOnly, Workers: 1,
			MaxWorlds: 1000, SampleWorlds: 400,
		}
		pairs, st, err := Join([]*graph.Graph{q}, []*ugraph.Graph{g}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if st.SampledPairs != 1 {
			t.Fatalf("SampledPairs = %d, want 1", st.SampledPairs)
		}
		if (len(pairs) == 1) != c.accept {
			t.Fatalf("p=%v alpha=%v: accepted=%v, want %v (exact SimP %v)",
				c.p, c.alpha, len(pairs) == 1, c.accept, exactStarSimP(c.p))
		}
		if c.accept {
			got := pairs[0].SimP
			want := exactStarSimP(c.p)
			if math.Abs(got-want) > 0.12 {
				t.Errorf("estimate %v far from exact %v", got, want)
			}
			if pairs[0].World == nil || pairs[0].Distance > 1 {
				t.Errorf("sampled pair lacks witness world: %+v", pairs[0])
			}
		}
	}
}

func TestSampleVerifyUndecidableSkips(t *testing.T) {
	// Exact SimP sits almost exactly at alpha: a small sample cannot decide.
	q, g := hugeUncertain(0.945) // SimP ≈ 0.89
	alpha := exactStarSimP(0.945)
	opts := Options{
		Tau: 1, Alpha: alpha, Mode: ModeCSSOnly, Workers: 1,
		MaxWorlds: 1000, SampleWorlds: 100,
	}
	pairs, st, err := Join([]*graph.Graph{q}, []*ugraph.Graph{g}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Fatalf("borderline pair accepted with tiny sample")
	}
	if st.SkippedPairs != 1 {
		t.Errorf("SkippedPairs = %d, want 1 (undecidable)", st.SkippedPairs)
	}
}

func TestSampleVerifyDeterministic(t *testing.T) {
	q, g := hugeUncertain(0.9)
	opts := Options{Tau: 1, Alpha: 0.5, Mode: ModeCSSOnly, Workers: 1, MaxWorlds: 100, SampleWorlds: 300}
	first, _, err := Join([]*graph.Graph{q}, []*ugraph.Graph{g}, opts)
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := Join([]*graph.Graph{q}, []*ugraph.Graph{g}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatal("non-deterministic accept")
	}
	if len(first) == 1 && first[0].SimP != second[0].SimP {
		t.Fatalf("non-deterministic estimate: %v vs %v", first[0].SimP, second[0].SimP)
	}
}
