package graph

import "testing"

func TestReify(t *testing.T) {
	g := New(3)
	g.AddVertex("A")
	g.AddVertex("B")
	g.AddVertex("?x")
	g.MustAddEdge(0, 1, "knows")
	g.MustAddEdge(1, 2, "type")

	r := Reify(g)
	if r.NumVertices() != 5 || r.NumEdges() != 4 {
		t.Fatalf("|V|=%d |E|=%d, want 5/4", r.NumVertices(), r.NumEdges())
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// Original vertices keep indices and labels.
	for v := 0; v < 3; v++ {
		if r.VertexLabel(v) != g.VertexLabel(v) {
			t.Errorf("vertex %d label changed", v)
		}
	}
	// Fictitious vertices carry edge labels; half-edges carry the marker.
	if r.VertexLabel(3) != "knows" || r.VertexLabel(4) != "type" {
		t.Errorf("fictitious labels = %q, %q", r.VertexLabel(3), r.VertexLabel(4))
	}
	for _, e := range r.Edges() {
		if e.Label != ReifiedEdgeLabel {
			t.Errorf("half-edge label = %q", e.Label)
		}
	}
	if !r.HasEdge(0, 3) || !r.HasEdge(3, 1) {
		t.Error("first edge not routed through its fictitious vertex")
	}
}

func TestReifyEmpty(t *testing.T) {
	r := Reify(New(0))
	if r.NumVertices() != 0 || r.NumEdges() != 0 {
		t.Error("empty reification not empty")
	}
}

func TestReifiedEdgeLabelNotWildcard(t *testing.T) {
	if IsWildcard(ReifiedEdgeLabel) {
		t.Error("half-edge marker must not be a wildcard")
	}
}
