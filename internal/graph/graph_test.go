package graph

import (
	"strings"
	"testing"
)

func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	g := New(3)
	a := g.AddVertex("A")
	b := g.AddVertex("B")
	c := g.AddVertex("?x")
	g.MustAddEdge(a, b, "knows")
	g.MustAddEdge(b, c, "type")
	g.MustAddEdge(c, a, "likes")
	return g
}

func TestAddVertexAndEdge(t *testing.T) {
	g := buildTriangle(t)
	if got := g.NumVertices(); got != 3 {
		t.Fatalf("NumVertices = %d, want 3", got)
	}
	if got := g.NumEdges(); got != 3 {
		t.Fatalf("NumEdges = %d, want 3", got)
	}
	if got := g.Size(); got != 6 {
		t.Fatalf("Size = %d, want 6", got)
	}
	if l := g.VertexLabel(0); l != "A" {
		t.Errorf("VertexLabel(0) = %q, want A", l)
	}
	if l, ok := g.EdgeLabel(0, 1); !ok || l != "knows" {
		t.Errorf("EdgeLabel(0,1) = %q,%v, want knows,true", l, ok)
	}
	if _, ok := g.EdgeLabel(1, 0); ok {
		t.Error("EdgeLabel(1,0) should not exist (directed)")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(2)
	a := g.AddVertex("A")
	b := g.AddVertex("B")
	if err := g.AddEdge(a, a, "x"); err == nil {
		t.Error("self loop accepted")
	}
	if err := g.AddEdge(a, 5, "x"); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if err := g.AddEdge(-1, b, "x"); err == nil {
		t.Error("negative endpoint accepted")
	}
	if err := g.AddEdge(a, b, "x"); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := g.AddEdge(a, b, "y"); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestWildcards(t *testing.T) {
	if !IsWildcard("?x") || IsWildcard("x?") || IsWildcard("Actor") {
		t.Error("IsWildcard misclassifies")
	}
	cases := []struct {
		a, b string
		want bool
	}{
		{"A", "A", true},
		{"A", "B", false},
		{"?x", "B", true},
		{"A", "?y", true},
		{"?x", "?y", true},
		{"", "", true},
	}
	for _, c := range cases {
		if got := LabelsMatch(c.a, c.b); got != c.want {
			t.Errorf("LabelsMatch(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDegrees(t *testing.T) {
	g := buildTriangle(t)
	for v := 0; v < 3; v++ {
		if d := g.Degree(v); d != 2 {
			t.Errorf("Degree(%d) = %d, want 2", v, d)
		}
	}
	ds := g.Degrees()
	for v, d := range ds {
		if d != 2 {
			t.Errorf("Degrees()[%d] = %d, want 2", v, d)
		}
	}
	// Star: center degree 3, leaves 1.
	s := New(4)
	c := s.AddVertex("C")
	for i := 0; i < 3; i++ {
		l := s.AddVertex("L")
		s.MustAddEdge(c, l, "e")
	}
	seq := s.DegreeSequence()
	want := []int{3, 1, 1, 1}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("DegreeSequence = %v, want %v", seq, want)
		}
	}
}

func TestLabelMultisets(t *testing.T) {
	g := New(4)
	g.AddVertex("A")
	g.AddVertex("A")
	g.AddVertex("?x")
	g.AddVertex("B")
	g.MustAddEdge(0, 1, "p")
	g.MustAddEdge(1, 2, "p")
	g.MustAddEdge(2, 3, "?e")
	vl, vw := g.VertexLabelMultiset()
	if vl["A"] != 2 || vl["B"] != 1 || vw != 1 {
		t.Errorf("VertexLabelMultiset = %v wildcards=%d", vl, vw)
	}
	el, ew := g.EdgeLabelMultiset()
	if el["p"] != 2 || ew != 1 {
		t.Errorf("EdgeLabelMultiset = %v wildcards=%d", el, ew)
	}
}

func TestCloneAndEqual(t *testing.T) {
	g := buildTriangle(t)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.SetVertexLabel(0, "Z")
	if g.Equal(c) {
		t.Fatal("label change not detected by Equal")
	}
	if g.VertexLabel(0) != "A" {
		t.Fatal("clone shares label storage with original")
	}
	c2 := g.Clone()
	c2.MustAddEdge(1, 0, "back")
	if g.Equal(c2) {
		t.Fatal("edge addition not detected by Equal")
	}
	if g.NumEdges() != 3 {
		t.Fatal("clone shares edge storage with original")
	}
}

func TestValidate(t *testing.T) {
	g := buildTriangle(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	// Corrupt the edge list directly.
	bad := g.Clone()
	bad.edges[0].To = 99
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range edge endpoint not caught")
	}
	bad2 := g.Clone()
	bad2.edges = append(bad2.edges, Edge{From: 0, To: 1, Label: "dup"})
	if err := bad2.Validate(); err == nil {
		t.Error("duplicate edge not caught")
	}
}

func TestOutNeighbors(t *testing.T) {
	g := buildTriangle(t)
	seen := map[int]string{}
	g.OutNeighbors(0, func(v int, label string) { seen[v] = label })
	if len(seen) != 1 || seen[1] != "knows" {
		t.Errorf("OutNeighbors(0) = %v", seen)
	}
}

func TestString(t *testing.T) {
	g := buildTriangle(t)
	s := g.String()
	for _, sub := range []string{"|V|=3", "|E|=3", "v0:A", "0-knows->1"} {
		if !strings.Contains(s, sub) {
			t.Errorf("String() = %q missing %q", s, sub)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	var g Graph
	if g.NumVertices() != 0 || g.NumEdges() != 0 || g.Size() != 0 {
		t.Error("zero-value graph not empty")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("zero-value graph invalid: %v", err)
	}
	if seq := g.DegreeSequence(); len(seq) != 0 {
		t.Errorf("DegreeSequence of empty graph = %v", seq)
	}
}
