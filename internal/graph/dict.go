package graph

// The process-wide label dictionary.
//
// Every vertex and edge label that enters a Graph (or an ugraph.Graph) is
// interned exactly once into a dense int32 id space shared by the whole
// process — the same dictionary-encoding idea the S8 RDF triple store applies
// to IRIs (internal/rdf), lifted to the join's label universe. The hot
// kernels of packages filter, ged and core then compare labels by integer
// equality and summarise graphs as sorted (id, count) vectors and bitsets
// instead of hashing strings per pair and per possible world.
//
// Wildcard labels ('?'-prefixed, §2.1) all collapse to the reserved
// WildcardID 0: LabelsMatch treats every wildcard as matching anything, so
// distinct wildcard names are indistinguishable to every kernel that uses
// IDsMatch. Code that needs the spelling of a wildcard (printing, SPARQL
// variable identity) keeps reading the label strings, which graphs store
// alongside the ids.

import "sync"

// LabelID is a dictionary-encoded vertex or edge label. Distinct concrete
// labels receive distinct ids; every wildcard label is WildcardID.
type LabelID int32

// WildcardID is the reserved id all wildcard ('?'-prefixed) labels intern to.
const WildcardID LabelID = 0

var dict = struct {
	mu    sync.RWMutex
	ids   map[string]LabelID
	names []string
}{
	ids:   make(map[string]LabelID),
	names: []string{"?"}, // slot 0: the canonical wildcard spelling
}

// InternLabel returns the dictionary id of a label, assigning the next free
// id on first sight. Wildcard labels return WildcardID without touching the
// dictionary. Safe for concurrent use.
func InternLabel(label string) LabelID {
	if IsWildcard(label) {
		return WildcardID
	}
	dict.mu.RLock()
	id, ok := dict.ids[label]
	dict.mu.RUnlock()
	if ok {
		return id
	}
	dict.mu.Lock()
	defer dict.mu.Unlock()
	if id, ok = dict.ids[label]; ok {
		return id
	}
	id = LabelID(len(dict.names))
	dict.ids[label] = id
	dict.names = append(dict.names, label)
	return id
}

// LookupLabel returns the id of an already-interned label; ok is false when
// the label has never been interned (wildcards are always "interned").
func LookupLabel(label string) (LabelID, bool) {
	if IsWildcard(label) {
		return WildcardID, true
	}
	dict.mu.RLock()
	id, ok := dict.ids[label]
	dict.mu.RUnlock()
	return id, ok
}

// LabelName returns the string spelling of an id; WildcardID reads back as
// "?" (individual wildcard spellings are not recoverable from ids — graphs
// keep the strings for that).
func LabelName(id LabelID) string {
	dict.mu.RLock()
	defer dict.mu.RUnlock()
	return dict.names[id]
}

// DictLen returns the number of dictionary entries, including the reserved
// wildcard slot.
func DictLen() int {
	dict.mu.RLock()
	defer dict.mu.RUnlock()
	return len(dict.names)
}

// IDsMatch is LabelsMatch over dictionary ids: equal, or either side a
// wildcard. Because interning collapses exactly the wildcard labels to
// WildcardID and is injective on concrete labels, IDsMatch(InternLabel(a),
// InternLabel(b)) == LabelsMatch(a, b) for all strings a, b.
func IDsMatch(a, b LabelID) bool {
	return a == b || a == WildcardID || b == WildcardID
}

// LabelCount is one entry of a sorted label-multiset vector: a concrete
// label id and its multiplicity. Vectors are sorted by ID ascending so
// multiset intersections run as two-pointer merges.
type LabelCount struct {
	ID LabelID
	N  int32
}

// CountLabelIDs run-length encodes an id slice into a sorted LabelCount
// vector, separating out wildcards. ids is sorted in place.
func CountLabelIDs(ids []LabelID) (labels []LabelCount, wildcards int) {
	if len(ids) == 0 {
		return nil, 0
	}
	// Insertion sort: label lists are small and nearly sorted in practice.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	labels = make([]LabelCount, 0, len(ids))
	for _, id := range ids {
		if id == WildcardID {
			wildcards++
			continue
		}
		if n := len(labels); n > 0 && labels[n-1].ID == id {
			labels[n-1].N++
		} else {
			labels = append(labels, LabelCount{ID: id, N: 1})
		}
	}
	if len(labels) == 0 {
		labels = nil
	}
	return labels, wildcards
}

// LabelSet is a bitset over dictionary ids, sized lazily to the largest id
// added. The zero value is an empty set ready to use.
type LabelSet struct {
	words []uint64
}

// Reset empties the set, retaining capacity.
func (s *LabelSet) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Add inserts an id.
func (s *LabelSet) Add(id LabelID) {
	w := int(id) >> 6
	for w >= len(s.words) {
		if len(s.words) < cap(s.words) {
			s.words = s.words[:len(s.words)+1]
		} else {
			s.words = append(s.words, 0)
		}
	}
	s.words[w] |= 1 << (uint(id) & 63)
}

// Has reports membership.
func (s *LabelSet) Has(id LabelID) bool {
	w := int(id) >> 6
	return w < len(s.words) && s.words[w]&(1<<(uint(id)&63)) != 0
}

// Intersects reports whether the two sets share any id, in O(words).
func (s *LabelSet) Intersects(t *LabelSet) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Words exposes the set's backing bit words (word w covers ids 64w..64w+63)
// for bulk packing into word-major layouts (filter.GBlock). The slice aliases
// the set's storage: callers must treat it as read-only.
func (s *LabelSet) Words() []uint64 {
	return s.words
}

// Len returns the number of ids in the set.
func (s *LabelSet) Len() int {
	n := 0
	for _, w := range s.words {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}
