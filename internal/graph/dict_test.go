package graph

import (
	"fmt"
	"sync"
	"testing"
)

// TestWildcardReservation pins the dictionary's wildcard collapse: every
// wildcard spelling interns to the reserved WildcardID, because LabelsMatch
// treats any '?'-prefixed label as universal — the individual spelling never
// influences a label comparison, so one id is enough (and makes IDsMatch a
// two-comparison kernel).
func TestWildcardReservation(t *testing.T) {
	for _, w := range []string{"?", "?x", "?y", "?anything"} {
		if id := InternLabel(w); id != WildcardID {
			t.Errorf("InternLabel(%q) = %d, want WildcardID (%d)", w, id, WildcardID)
		}
	}
	if name := LabelName(WildcardID); name != "?" {
		t.Errorf("LabelName(WildcardID) = %q, want %q", name, "?")
	}
	if id := InternLabel("A"); id == WildcardID {
		t.Error("concrete label interned to the reserved wildcard id")
	}
}

// TestInternStable pins injectivity on concrete labels: equal strings get
// equal ids, distinct strings distinct ids, and LabelName round-trips.
func TestInternStable(t *testing.T) {
	a1 := InternLabel("stable-A")
	b := InternLabel("stable-B")
	a2 := InternLabel("stable-A")
	if a1 != a2 {
		t.Errorf("InternLabel not stable: %d vs %d", a1, a2)
	}
	if a1 == b {
		t.Errorf("distinct labels share id %d", a1)
	}
	if got := LabelName(a1); got != "stable-A" {
		t.Errorf("LabelName(%d) = %q, want %q", a1, got, "stable-A")
	}
	if _, ok := LookupLabel("never-interned-label"); ok {
		t.Error("LookupLabel found a label that was never interned")
	}
}

// TestIDsMatchAgreslabelsMatch exhaustively checks that the id kernel agrees
// with the string kernel over a mixed label set — including distinct wildcard
// spellings, which share an id but must still match everything (and do, since
// wildcards match everything by definition).
func TestIDsMatchAgreesWithLabelsMatch(t *testing.T) {
	labels := []string{"A", "B", "C", "?", "?x", "?y"}
	for _, a := range labels {
		for _, b := range labels {
			got := IDsMatch(InternLabel(a), InternLabel(b))
			want := LabelsMatch(a, b)
			if got != want {
				t.Errorf("IDsMatch(%q, %q) = %v, LabelsMatch = %v", a, b, got, want)
			}
		}
	}
}

// TestConcurrentInterning hammers the dictionary from many goroutines with
// overlapping label sets; every goroutine must observe the same id per label
// (run under -race in CI).
func TestConcurrentInterning(t *testing.T) {
	const goroutines = 16
	const labelsPer = 50
	ids := make([][]LabelID, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]LabelID, labelsPer)
			for i := 0; i < labelsPer; i++ {
				// Overlapping across goroutines: i mod 10 shared, rest mixed.
				ids[g][i] = InternLabel(fmt.Sprintf("conc-%d", i%10+g%3*10))
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range ids[g] {
			if ids[g][i%10] != ids[0][i%10] && g%3 == 0 {
				t.Fatalf("goroutine %d saw id %d for label %d, goroutine 0 saw %d",
					g, ids[g][i%10], i%10, ids[0][i%10])
			}
		}
	}
	// Sequential re-interning must agree with what the goroutines observed.
	for i := 0; i < 10; i++ {
		want := InternLabel(fmt.Sprintf("conc-%d", i))
		if ids[0][i] != want {
			t.Errorf("label conc-%d: concurrent id %d != sequential id %d", i, ids[0][i], want)
		}
	}
}

// TestUnseenLabelOneSide pins the cross-graph property the join relies on: a
// label interned while building one graph compares correctly against a graph
// that has never seen it — ids are process-wide, not per-graph.
func TestUnseenLabelOneSide(t *testing.T) {
	a := New(2)
	a.AddVertex("only-in-a")
	a.AddVertex("shared-lbl")
	b := New(2)
	b.AddVertex("only-in-b")
	b.AddVertex("shared-lbl")

	if IDsMatch(a.VertexLabelID(0), b.VertexLabelID(0)) {
		t.Error("distinct concrete labels matched by id")
	}
	if !IDsMatch(a.VertexLabelID(1), b.VertexLabelID(1)) {
		t.Error("shared concrete label failed to match by id")
	}
	// CountLabelIDs-backed multiset overlap: the unseen label contributes
	// nothing to the intersection but still counts toward the totals.
	am, aw := a.VertexLabelIDMultiset()
	bm, bw := b.VertexLabelIDMultiset()
	if aw != 0 || bw != 0 {
		t.Fatalf("unexpected wildcards: %d, %d", aw, bw)
	}
	common := 0
	for _, ac := range am {
		for _, bc := range bm {
			if ac.ID == bc.ID {
				c := int(ac.N)
				if int(bc.N) < c {
					c = int(bc.N)
				}
				common += c
			}
		}
	}
	if common != 1 {
		t.Errorf("id multiset overlap = %d, want 1 (the shared label)", common)
	}
}

// TestLabelSet pins the concrete-label bitset used by the index's label
// screen: wildcards are never added, membership and intersection follow the
// id universe, and Reset clears without shrinking capacity.
func TestLabelSet(t *testing.T) {
	var s LabelSet
	idA, idB := InternLabel("lset-A"), InternLabel("lset-B")
	s.Add(idA)
	if !s.Has(idA) || s.Has(idB) {
		t.Fatalf("LabelSet membership wrong: Has(A)=%v Has(B)=%v", s.Has(idA), s.Has(idB))
	}
	var other LabelSet
	other.Add(idB)
	if s.Intersects(&other) {
		t.Error("disjoint label sets reported intersecting")
	}
	other.Add(idA)
	if !s.Intersects(&other) {
		t.Error("overlapping label sets reported disjoint")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	s.Reset()
	if s.Has(idA) || s.Len() != 0 {
		t.Error("Reset did not clear the set")
	}
}
