package graph

// ReifiedEdgeLabel is the fixed label of the two half-edges produced by
// Reify. It is deliberately not a wildcard: half-edges only match half-edges.
const ReifiedEdgeLabel = "\x01rel"

// Reify implements the paper's reduction for uncertain edge labels
// (§3.1.1): every labeled edge u -l-> v is replaced by a fictitious vertex m
// carrying the label l, connected as u -> m -> v with fixed-label half-edges.
// Applying Reify to both sides of a join lets vertex-label uncertainty
// machinery express edge-label uncertainty. Note the edit-cost scale
// changes: substituting a predicate still costs 1 (a vertex relabel), but
// inserting/deleting a relation costs 3 (one vertex, two half-edges).
func Reify(g *Graph) *Graph {
	r := New(g.NumVertices() + g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		r.AddVertex(g.VertexLabel(v))
	}
	for _, e := range g.Edges() {
		m := r.AddVertex(e.Label)
		r.MustAddEdge(e.From, m, ReifiedEdgeLabel)
		r.MustAddEdge(m, e.To, ReifiedEdgeLabel)
	}
	return r
}
