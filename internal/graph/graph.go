// Package graph provides the certain (deterministic) labeled graph model used
// throughout simjoin.
//
// A Graph is a directed graph whose vertices and edges carry string labels.
// SPARQL basic graph patterns and the possible worlds of uncertain question
// graphs are both represented as Graphs. Vertex labels beginning with '?' are
// wildcards: they stand for SPARQL variables and match any other label at zero
// substitution cost (paper §2.1, "all the labels starting with ? can match any
// vertex label").
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Edge is a directed labeled edge between two vertices identified by index.
type Edge struct {
	From  int
	To    int
	Label string
}

// Graph is a directed labeled multigraph-free graph: at most one edge exists
// per ordered vertex pair. The zero value is an empty graph ready to use.
//
// Alongside the label strings the graph keeps their dictionary ids
// (labelIDs[v] == InternLabel(labels[v]), edgeIDs[i] ==
// InternLabel(edges[i].Label)), so the integer kernels of packages filter,
// ged and core never re-hash label strings.
type Graph struct {
	labels   []string
	labelIDs []LabelID
	edges    []Edge
	edgeIDs  []LabelID
	// out[u][v] is the index into edges of the edge u->v, if present.
	out []map[int]int
}

// New returns an empty graph with capacity hints for n vertices.
func New(n int) *Graph {
	return &Graph{
		labels:   make([]string, 0, n),
		labelIDs: make([]LabelID, 0, n),
		out:      make([]map[int]int, 0, n),
	}
}

// IsWildcard reports whether a label is a wildcard (variable) label. Wildcard
// labels begin with '?' and match any label.
func IsWildcard(label string) bool {
	return strings.HasPrefix(label, "?")
}

// LabelsMatch reports whether two vertex or edge labels are compatible: equal,
// or at least one of them is a wildcard.
func LabelsMatch(a, b string) bool {
	return a == b || IsWildcard(a) || IsWildcard(b)
}

// AddVertex appends a vertex with the given label and returns its index.
func (g *Graph) AddVertex(label string) int {
	return g.AddVertexID(label, InternLabel(label))
}

// AddVertexID is AddVertex for callers that already hold the label's
// dictionary id (e.g. world enumeration), skipping the intern lookup. The id
// must be InternLabel(label).
func (g *Graph) AddVertexID(label string, id LabelID) int {
	g.labels = append(g.labels, label)
	g.labelIDs = append(g.labelIDs, id)
	if len(g.out) < cap(g.out) {
		// Reuse the slot (and any adjacency map a prior Reset left cleared
		// there) instead of overwriting it with nil.
		g.out = g.out[:len(g.out)+1]
	} else {
		g.out = append(g.out, nil)
	}
	return len(g.labels) - 1
}

// Reset clears the graph for reuse, retaining allocated capacity — including
// the per-vertex adjacency maps, which are emptied in place so rebuilding a
// graph of the same shape allocates nothing. Used by the possible-world
// enumeration scratch buffers of package ugraph.
func (g *Graph) Reset() {
	g.labels = g.labels[:0]
	g.labelIDs = g.labelIDs[:0]
	g.edges = g.edges[:0]
	g.edgeIDs = g.edgeIDs[:0]
	for i := range g.out {
		for k := range g.out[i] {
			delete(g.out[i], k)
		}
	}
	g.out = g.out[:0]
}

// AddEdge inserts a directed edge from u to v with the given label. It returns
// an error if either endpoint is out of range, if u == v, or if the edge
// already exists.
func (g *Graph) AddEdge(u, v int, label string) error {
	return g.AddEdgeID(u, v, label, InternLabel(label))
}

// AddEdgeID is AddEdge for callers that already hold the label's dictionary
// id, skipping the intern lookup. The id must be InternLabel(label).
func (g *Graph) AddEdgeID(u, v int, label string, id LabelID) error {
	if u < 0 || u >= len(g.labels) || v < 0 || v >= len(g.labels) {
		return fmt.Errorf("graph: edge (%d,%d) endpoint out of range [0,%d)", u, v, len(g.labels))
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on vertex %d not supported", u)
	}
	if _, dup := g.out[u][v]; dup {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	if g.out[u] == nil {
		g.out[u] = make(map[int]int)
	}
	g.out[u][v] = len(g.edges)
	g.edges = append(g.edges, Edge{From: u, To: v, Label: label})
	g.edgeIDs = append(g.edgeIDs, id)
	return nil
}

// MustAddEdge is AddEdge that panics on error. It is convenient for
// constructing fixed graphs in generators and tests.
func (g *Graph) MustAddEdge(u, v int, label string) {
	if err := g.AddEdge(u, v, label); err != nil {
		panic(err)
	}
}

// MustAddEdgeID is AddEdgeID that panics on error.
func (g *Graph) MustAddEdgeID(u, v int, label string, id LabelID) {
	if err := g.AddEdgeID(u, v, label, id); err != nil {
		panic(err)
	}
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.labels) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Size returns |V| + |E|, the graph size used by the paper's bounds.
func (g *Graph) Size() int { return len(g.labels) + len(g.edges) }

// VertexLabel returns the label of vertex v.
func (g *Graph) VertexLabel(v int) string { return g.labels[v] }

// SetVertexLabel replaces the label of vertex v.
func (g *Graph) SetVertexLabel(v int, label string) {
	g.labels[v] = label
	g.labelIDs[v] = InternLabel(label)
}

// SetVertexLabelID is SetVertexLabel for callers that already hold the
// label's dictionary id. The id must be InternLabel(label).
func (g *Graph) SetVertexLabelID(v int, label string, id LabelID) {
	g.labels[v] = label
	g.labelIDs[v] = id
}

// VertexLabelID returns the dictionary id of vertex v's label.
func (g *Graph) VertexLabelID(v int) LabelID { return g.labelIDs[v] }

// VertexLabelIDs returns the per-vertex label ids (do not modify).
func (g *Graph) VertexLabelIDs() []LabelID { return g.labelIDs }

// EdgeLabelID returns the dictionary id of edge i's label.
func (g *Graph) EdgeLabelID(i int) LabelID { return g.edgeIDs[i] }

// EdgeLabelIDs returns the per-edge label ids, indexed like Edges (do not
// modify).
func (g *Graph) EdgeLabelIDs() []LabelID { return g.edgeIDs }

// EdgeIndex returns the index into Edges of the directed edge u->v and
// whether it exists.
func (g *Graph) EdgeIndex(u, v int) (int, bool) {
	i, ok := g.out[u][v]
	return i, ok
}

// Edges returns the edge list. The returned slice must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns the edge with index i.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// HasEdge reports whether the directed edge u->v exists.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.out[u][v]
	return ok
}

// EdgeLabel returns the label of the directed edge u->v and whether it exists.
func (g *Graph) EdgeLabel(u, v int) (string, bool) {
	i, ok := g.out[u][v]
	if !ok {
		return "", false
	}
	return g.edges[i].Label, true
}

// OutNeighbors calls fn for every edge leaving u.
func (g *Graph) OutNeighbors(u int, fn func(v int, label string)) {
	for v, i := range g.out[u] {
		fn(v, g.edges[i].Label)
	}
}

// Degree returns the total degree (in + out) of vertex v.
func (g *Graph) Degree(v int) int {
	d := len(g.out[v])
	for u := range g.out {
		if u == v {
			continue
		}
		if _, ok := g.out[u][v]; ok {
			d++
		}
	}
	return d
}

// Degrees returns the total degree of every vertex in one pass.
func (g *Graph) Degrees() []int {
	d := make([]int, len(g.labels))
	for _, e := range g.edges {
		d[e.From]++
		d[e.To]++
	}
	return d
}

// DegreeSequence returns total degrees sorted in non-increasing order, as used
// by the degree distance of Def. 9.
func (g *Graph) DegreeSequence() []int {
	d := g.Degrees()
	sort.Sort(sort.Reverse(sort.IntSlice(d)))
	return d
}

// VertexLabels returns a copy of all vertex labels.
func (g *Graph) VertexLabels() []string {
	out := make([]string, len(g.labels))
	copy(out, g.labels)
	return out
}

// VertexLabelMultiset returns the multiset of non-wildcard vertex labels with
// their multiplicities, plus the count of wildcard vertices.
func (g *Graph) VertexLabelMultiset() (labels map[string]int, wildcards int) {
	labels = make(map[string]int, len(g.labels))
	for _, l := range g.labels {
		if IsWildcard(l) {
			wildcards++
		} else {
			labels[l]++
		}
	}
	return labels, wildcards
}

// EdgeLabelMultiset returns the multiset of non-wildcard edge labels with
// their multiplicities, plus the count of wildcard-labeled edges.
func (g *Graph) EdgeLabelMultiset() (labels map[string]int, wildcards int) {
	labels = make(map[string]int, len(g.edges))
	for _, e := range g.edges {
		if IsWildcard(e.Label) {
			wildcards++
		} else {
			labels[e.Label]++
		}
	}
	return labels, wildcards
}

// VertexLabelIDMultiset returns the sorted (id, count) vector of concrete
// vertex labels plus the count of wildcard vertices — the integer counterpart
// of VertexLabelMultiset.
func (g *Graph) VertexLabelIDMultiset() (labels []LabelCount, wildcards int) {
	return CountLabelIDs(append([]LabelID(nil), g.labelIDs...))
}

// EdgeLabelIDMultiset returns the sorted (id, count) vector of concrete edge
// labels plus the count of wildcard edges — the integer counterpart of
// EdgeLabelMultiset.
func (g *Graph) EdgeLabelIDMultiset() (labels []LabelCount, wildcards int) {
	return CountLabelIDs(append([]LabelID(nil), g.edgeIDs...))
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(len(g.labels))
	c.labels = append(c.labels, g.labels...)
	c.labelIDs = append(c.labelIDs, g.labelIDs...)
	c.edges = append(c.edges[:0], g.edges...)
	c.edgeIDs = append(c.edgeIDs[:0], g.edgeIDs...)
	c.out = make([]map[int]int, len(g.out))
	for u, m := range g.out {
		if m == nil {
			continue
		}
		c.out[u] = make(map[int]int, len(m))
		for v, i := range m {
			c.out[u][v] = i
		}
	}
	return c
}

// Equal reports whether two graphs are identical under vertex identity (same
// labels at the same indices and the same labeled edges). It does not test
// isomorphism.
func (g *Graph) Equal(h *Graph) bool {
	if g.NumVertices() != h.NumVertices() || g.NumEdges() != h.NumEdges() {
		return false
	}
	for i, l := range g.labels {
		if h.labels[i] != l {
			return false
		}
	}
	for _, e := range g.edges {
		l, ok := h.EdgeLabel(e.From, e.To)
		if !ok || l != e.Label {
			return false
		}
	}
	return true
}

// Validate checks internal consistency and returns the first problem found.
func (g *Graph) Validate() error {
	if len(g.out) != len(g.labels) {
		return fmt.Errorf("graph: adjacency length %d != vertex count %d", len(g.out), len(g.labels))
	}
	if len(g.labelIDs) != len(g.labels) {
		return fmt.Errorf("graph: label id length %d != vertex count %d", len(g.labelIDs), len(g.labels))
	}
	if len(g.edgeIDs) != len(g.edges) {
		return fmt.Errorf("graph: edge id length %d != edge count %d", len(g.edgeIDs), len(g.edges))
	}
	for v, l := range g.labels {
		if g.labelIDs[v] != InternLabel(l) {
			return fmt.Errorf("graph: vertex %d label id %d stale for label %q", v, g.labelIDs[v], l)
		}
	}
	for i, e := range g.edges {
		if g.edgeIDs[i] != InternLabel(e.Label) {
			return fmt.Errorf("graph: edge %d label id %d stale for label %q", i, g.edgeIDs[i], e.Label)
		}
	}
	seen := make(map[[2]int]bool, len(g.edges))
	for i, e := range g.edges {
		if e.From < 0 || e.From >= len(g.labels) || e.To < 0 || e.To >= len(g.labels) {
			return fmt.Errorf("graph: edge %d endpoints (%d,%d) out of range", i, e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("graph: edge %d is a self-loop on %d", i, e.From)
		}
		k := [2]int{e.From, e.To}
		if seen[k] {
			return fmt.Errorf("graph: duplicate edge (%d,%d)", e.From, e.To)
		}
		seen[k] = true
		if j, ok := g.out[e.From][e.To]; !ok || j != i {
			return fmt.Errorf("graph: adjacency index missing or stale for edge %d", i)
		}
	}
	return nil
}

// String renders the graph in a compact human-readable form, with vertices and
// edges in deterministic order.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph{|V|=%d |E|=%d", g.NumVertices(), g.NumEdges())
	for i, l := range g.labels {
		fmt.Fprintf(&b, " v%d:%s", i, l)
	}
	es := append([]Edge(nil), g.edges...)
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		return es[i].To < es[j].To
	})
	for _, e := range es {
		fmt.Fprintf(&b, " %d-%s->%d", e.From, e.Label, e.To)
	}
	b.WriteString("}")
	return b.String()
}
