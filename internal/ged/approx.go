package ged

import (
	"fmt"
	"sort"

	"simjoin/internal/graph"
	"simjoin/internal/matching"
)

// Approximate computes an upper bound on the graph edit distance with a
// beam search over vertex mappings (beam-stack variant of the A* search,
// cf. Riesen & Bunke's beam heuristic). Unlike Compute it has no 64-vertex
// limit and runs in O(beam · |V|² ·|V|) time, at the price of exactness:
// the returned value is the cost of a real edit path, hence
//
//	Distance(g1,g2) ≤ Approximate(g1,g2,w) for every beam width w,
//
// with equality when the beam retains an optimal prefix throughout. The
// returned mapping realises the reported cost (MappingCost agrees).
func Approximate(g1, g2 *graph.Graph, beamWidth int) (int, Mapping) {
	bd, bm := bipartiteUpper(g1, g2)
	sd, sm := beamSearch(g1, g2, beamWidth)
	if bd < sd {
		return bd, bm
	}
	return sd, sm
}

// beamSearch is the beam-limited variant of the A* mapping search.
func beamSearch(g1, g2 *graph.Graph, beamWidth int) (int, Mapping) {
	if beamWidth < 1 {
		beamWidth = 1
	}
	a, b := g1, g2
	swapped := false
	if a.NumVertices() > b.NumVertices() {
		a, b = b, a
		swapped = true
	}

	order := degreeOrder(a)
	type bstate struct {
		mapping []int
		used    []bool
		g       int
	}
	start := bstate{mapping: make([]int, a.NumVertices()), used: make([]bool, b.NumVertices())}
	for i := range start.mapping {
		start.mapping[i] = Deleted
	}
	beam := []bstate{start}

	for k := 0; k < len(order); k++ {
		u := order[k]
		var next []bstate
		for _, st := range beam {
			// Extend with every unused target plus deletion.
			for v := -1; v < b.NumVertices(); v++ {
				if v >= 0 && st.used[v] {
					continue
				}
				cost := st.g + extendCost(a, b, order[:k], st.mapping, u, v)
				nm := append([]int(nil), st.mapping...)
				nu := append([]bool(nil), st.used...)
				nm[u] = v
				if v >= 0 {
					nu[v] = true
				} else {
					nm[u] = Deleted
				}
				next = append(next, bstate{mapping: nm, used: nu, g: cost})
			}
		}
		sort.SliceStable(next, func(i, j int) bool { return next[i].g < next[j].g })
		if len(next) > beamWidth {
			next = next[:beamWidth]
		}
		beam = next
	}

	best := -1
	var bestMapping []int
	for _, st := range beam {
		total := st.g + completion(b, st.used)
		if best < 0 || total < best {
			best = total
			bestMapping = st.mapping
		}
	}
	if best < 0 { // a is empty: insert everything in b
		best = completion(b, make([]bool, b.NumVertices()))
		bestMapping = nil
	}

	m := make(Mapping, g1.NumVertices())
	for i := range m {
		m[i] = Deleted
	}
	if swapped {
		for u, v := range bestMapping {
			if v != Deleted {
				m[v] = u
			}
		}
	} else {
		copy(m, bestMapping)
	}
	// Sanity: the mapping must realise the reported cost.
	if c, err := MappingCost(g1, g2, m); err != nil || c != best {
		panic(fmt.Sprintf("ged: beam accounting error: cost %d, mapping %d (%v)", best, c, err))
	}
	return best, m
}

// bipartiteUpper is the assignment-based approximation of Riesen & Bunke:
// vertices of both graphs are compared through their local star structures
// (own label, degree, neighbour label multiset), a minimum-cost assignment
// on the padded cost matrix proposes a full vertex mapping, and the
// mapping's true edit cost is the upper bound.
func bipartiteUpper(g1, g2 *graph.Graph) (int, Mapping) {
	n, m := g1.NumVertices(), g2.NumVertices()
	size := n + m
	if size == 0 {
		return 0, Mapping{}
	}
	s1, s2 := localStars(g1), localStars(g2)
	const big = 1 << 20
	cost := make([][]float64, size)
	for i := range cost {
		cost[i] = make([]float64, size)
		for j := range cost[i] {
			switch {
			case i < n && j < m:
				cost[i][j] = float64(starCost(s1[i], s2[j]))
			case i < n && j == m+i:
				cost[i][j] = float64(1 + 2*len(s1[i].neigh)) // delete i
			case i < n:
				cost[i][j] = big
			case j < m && i == n+j:
				cost[i][j] = float64(1 + 2*len(s2[j].neigh)) // insert j
			case j < m:
				cost[i][j] = big
			default:
				cost[i][j] = 0
			}
		}
	}
	rowTo, _ := matching.Hungarian(cost)
	mapping := make(Mapping, n)
	for i := 0; i < n; i++ {
		if rowTo[i] < m {
			mapping[i] = rowTo[i]
		} else {
			mapping[i] = Deleted
		}
	}
	c, err := MappingCost(g1, g2, mapping)
	if err != nil {
		panic(err) // assignment is injective by construction
	}
	return c, mapping
}

// localStar keeps the centre's dictionary id for the wildcard-aware label
// compare, but the neighbour descriptors stay strings: descriptor equality
// is exact (not wildcard-aware), so distinct wildcard spellings must remain
// distinct here.
type localStar struct {
	id    graph.LabelID
	neigh []string // sorted incident (direction-tagged) neighbour labels
}

func localStars(g *graph.Graph) []localStar {
	out := make([]localStar, g.NumVertices())
	for v := range out {
		out[v].id = g.VertexLabelID(v)
	}
	for _, e := range g.Edges() {
		out[e.From].neigh = append(out[e.From].neigh, ">"+e.Label+"/"+g.VertexLabel(e.To))
		out[e.To].neigh = append(out[e.To].neigh, "<"+e.Label+"/"+g.VertexLabel(e.From))
	}
	for v := range out {
		sort.Strings(out[v].neigh)
	}
	return out
}

func starCost(a, b localStar) int {
	c := 0
	if !graph.IDsMatch(a.id, b.id) {
		c++
	}
	// Multiset difference of neighbourhood descriptors.
	i, j, common := 0, 0, 0
	for i < len(a.neigh) && j < len(b.neigh) {
		switch {
		case a.neigh[i] == b.neigh[j]:
			common++
			i++
			j++
		case a.neigh[i] < b.neigh[j]:
			i++
		default:
			j++
		}
	}
	maxN := len(a.neigh)
	if len(b.neigh) > maxN {
		maxN = len(b.neigh)
	}
	return c + maxN - common
}

func degreeOrder(g *graph.Graph) []int {
	deg := g.Degrees()
	order := make([]int, g.NumVertices())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return deg[order[i]] > deg[order[j]] })
	return order
}

// extendCost mirrors searcher.extensionCost for the beam representation:
// vertex op plus edge ops against the already-processed prefix.
func extendCost(a, b *graph.Graph, processed []int, mapping []int, u, v int) int {
	cost := 0
	if v == Deleted {
		cost++
	} else if !graph.IDsMatch(a.VertexLabelID(u), b.VertexLabelID(v)) {
		cost++
	}
	for _, p := range processed {
		w := mapping[p]
		cost += dirEdgeCost(a, b, u, p, v, w)
		cost += dirEdgeCost(a, b, p, u, w, v)
	}
	return cost
}

func dirEdgeCost(a, b *graph.Graph, x, y, ix, iy int) int {
	ai, aOK := a.EdgeIndex(x, y)
	if ix == Deleted || iy == Deleted {
		if aOK {
			return 1
		}
		return 0
	}
	bi, bOK := b.EdgeIndex(ix, iy)
	switch {
	case aOK && bOK:
		if graph.IDsMatch(a.EdgeLabelID(ai), b.EdgeLabelID(bi)) {
			return 0
		}
		return 1
	case aOK != bOK:
		return 1
	default:
		return 0
	}
}

func completion(b *graph.Graph, used []bool) int {
	cost := 0
	for _, u := range used {
		if !u {
			cost++
		}
	}
	for _, e := range b.Edges() {
		if !used[e.From] || !used[e.To] {
			cost++
		}
	}
	return cost
}
