package ged

import (
	"math/rand"
	"testing"

	"simjoin/internal/graph"
)

// chain builds a path graph A -p-> B -p-> C ... with the given vertex labels.
func chain(labels ...string) *graph.Graph {
	g := graph.New(len(labels))
	for _, l := range labels {
		g.AddVertex(l)
	}
	for i := 0; i+1 < len(labels); i++ {
		g.MustAddEdge(i, i+1, "p")
	}
	return g
}

func TestDistanceIdentical(t *testing.T) {
	g := chain("A", "B", "C")
	if d := Distance(g, g.Clone()); d != 0 {
		t.Fatalf("ged(g,g) = %d, want 0", d)
	}
}

func TestDistanceEmptyGraphs(t *testing.T) {
	e := graph.New(0)
	if d := Distance(e, e); d != 0 {
		t.Fatalf("ged(empty,empty) = %d, want 0", d)
	}
	g := chain("A", "B")
	// Transform empty -> g: insert 2 vertices + 1 edge.
	if d := Distance(e, g); d != 3 {
		t.Fatalf("ged(empty,AB) = %d, want 3", d)
	}
	if d := Distance(g, e); d != 3 {
		t.Fatalf("ged(AB,empty) = %d, want 3", d)
	}
}

func TestDistanceLabelSubstitution(t *testing.T) {
	g1 := chain("A", "B", "C")
	g2 := chain("A", "B", "D")
	if d := Distance(g1, g2); d != 1 {
		t.Fatalf("single label substitution = %d, want 1", d)
	}
}

func TestDistanceEdgeLabelSubstitution(t *testing.T) {
	g1 := chain("A", "B")
	g2 := graph.New(2)
	g2.AddVertex("A")
	g2.AddVertex("B")
	g2.MustAddEdge(0, 1, "q")
	if d := Distance(g1, g2); d != 1 {
		t.Fatalf("edge label substitution = %d, want 1", d)
	}
}

func TestDistanceEdgeDirection(t *testing.T) {
	g1 := graph.New(2)
	g1.AddVertex("A")
	g1.AddVertex("B")
	g1.MustAddEdge(0, 1, "p")
	g2 := graph.New(2)
	g2.AddVertex("A")
	g2.AddVertex("B")
	g2.MustAddEdge(1, 0, "p")
	// Reversing a directed edge = delete + insert = 2, OR substitute both
	// vertex labels = 2. Either way the distance is 2.
	if d := Distance(g1, g2); d != 2 {
		t.Fatalf("reversed edge distance = %d, want 2", d)
	}
}

func TestDistanceVertexInsert(t *testing.T) {
	g1 := chain("A", "B")
	g2 := chain("A", "B", "C")
	// Insert vertex C and edge B->C.
	if d := Distance(g1, g2); d != 2 {
		t.Fatalf("insert vertex+edge = %d, want 2", d)
	}
}

func TestDistanceWildcard(t *testing.T) {
	g1 := chain("?x", "B")
	g2 := chain("Anything", "B")
	if d := Distance(g1, g2); d != 0 {
		t.Fatalf("wildcard should match free: got %d", d)
	}
	g3 := chain("?x", "?y", "?z")
	g4 := chain("P", "Q", "R")
	if d := Distance(g3, g4); d != 0 {
		t.Fatalf("all-wildcard chain distance = %d, want 0", d)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30; i++ {
		a := randomGraph(rng, 4, 3)
		b := randomGraph(rng, 5, 3)
		if d1, d2 := Distance(a, b), Distance(b, a); d1 != d2 {
			t.Fatalf("asymmetric: ged(a,b)=%d ged(b,a)=%d\na=%v\nb=%v", d1, d2, a, b)
		}
	}
}

func TestWithinThreshold(t *testing.T) {
	g1 := chain("A", "B", "C")
	g2 := chain("A", "X", "Y")
	d := Distance(g1, g2)
	if d != 2 {
		t.Fatalf("setup: distance = %d, want 2", d)
	}
	if got, ok := WithinThreshold(g1, g2, 2); !ok || got != 2 {
		t.Errorf("WithinThreshold(τ=2) = %d,%v, want 2,true", got, ok)
	}
	if _, ok := WithinThreshold(g1, g2, 1); ok {
		t.Error("WithinThreshold(τ=1) should fail")
	}
	if got, ok := WithinThreshold(g1, g2, 10); !ok || got != 2 {
		t.Errorf("WithinThreshold(τ=10) = %d,%v, want 2,true", got, ok)
	}
	if _, ok := WithinThreshold(g1, g2, -1); ok {
		t.Error("negative threshold should fail")
	}
}

func TestMappingIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		a := randomGraph(rng, 4, 4)
		b := randomGraph(rng, 4, 4)
		d, m := DistanceMapping(a, b)
		c, err := MappingCost(a, b, m)
		if err != nil {
			t.Fatalf("MappingCost: %v (mapping %v)", err, m)
		}
		if c != d {
			t.Fatalf("mapping cost %d != distance %d\na=%v\nb=%v m=%v", c, d, a, b, m)
		}
	}
}

func TestMappingCostErrors(t *testing.T) {
	a := chain("A", "B")
	b := chain("A", "B")
	if _, err := MappingCost(a, b, Mapping{0}); err == nil {
		t.Error("short mapping accepted")
	}
	if _, err := MappingCost(a, b, Mapping{0, 9}); err == nil {
		t.Error("out-of-range image accepted")
	}
	if _, err := MappingCost(a, b, Mapping{0, 0}); err == nil {
		t.Error("non-injective mapping accepted")
	}
	if c, err := MappingCost(a, b, Mapping{Deleted, Deleted}); err != nil || c != 6 {
		t.Errorf("all-deleted mapping cost = %d,%v; want 6,nil", c, err)
	}
}

func TestBudget(t *testing.T) {
	a := randomGraph(rand.New(rand.NewSource(5)), 8, 10)
	b := randomGraph(rand.New(rand.NewSource(6)), 8, 10)
	_, err := Compute(a, b, Options{Threshold: NoThreshold, MaxStates: 1})
	if err != ErrBudget {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestOversizeGraphs(t *testing.T) {
	big := graph.New(65)
	for i := 0; i < 65; i++ {
		big.AddVertex("A")
	}
	if _, err := Compute(big, big, Options{Threshold: NoThreshold}); err == nil {
		t.Fatal("oversize graph accepted")
	}
}

// randomGraph makes a random directed graph with n vertices, ~e edges and a
// small label alphabet, including occasional wildcards.
func randomGraph(rng *rand.Rand, n, e int) *graph.Graph {
	labels := []string{"A", "B", "C", "?x"}
	elabels := []string{"p", "q"}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(labels[rng.Intn(len(labels))])
	}
	for t := 0; t < e*3 && g.NumEdges() < e; t++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, elabels[rng.Intn(len(elabels))])
	}
	return g
}

// bruteGED enumerates every injective partial mapping and minimises
// MappingCost — an oracle for tiny graphs.
func bruteGED(t *testing.T, a, b *graph.Graph) int {
	t.Helper()
	n, m := a.NumVertices(), b.NumVertices()
	best := 1 << 30
	mapping := make(Mapping, n)
	usedB := make([]bool, m)
	var rec func(u int)
	rec = func(u int) {
		if u == n {
			c, err := MappingCost(a, b, mapping)
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			if c < best {
				best = c
			}
			return
		}
		mapping[u] = Deleted
		rec(u + 1)
		for v := 0; v < m; v++ {
			if !usedB[v] {
				usedB[v] = true
				mapping[u] = v
				rec(u + 1)
				usedB[v] = false
			}
		}
		mapping[u] = Deleted
	}
	rec(0)
	return best
}

func TestDistanceAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 60; i++ {
		a := randomGraph(rng, 1+rng.Intn(4), rng.Intn(4))
		b := randomGraph(rng, 1+rng.Intn(4), rng.Intn(4))
		want := bruteGED(t, a, b)
		if got := Distance(a, b); got != want {
			t.Fatalf("iter %d: A* = %d, brute = %d\na=%v\nb=%v", i, got, want, a, b)
		}
	}
}

func TestTriangleInequalitySpot(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 20; i++ {
		a := randomGraph(rng, 3, 2)
		b := randomGraph(rng, 3, 2)
		c := randomGraph(rng, 3, 2)
		dab, dbc, dac := Distance(a, b), Distance(b, c), Distance(a, c)
		if dac > dab+dbc {
			t.Fatalf("triangle inequality violated: d(a,c)=%d > d(a,b)+d(b,c)=%d+%d", dac, dab, dbc)
		}
	}
}
