package ged

import (
	"math/rand"
	"testing"

	"simjoin/internal/graph"
)

func TestApproximateUpperBoundsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 120; i++ {
		a := randomGraph(rng, 1+rng.Intn(5), rng.Intn(6))
		b := randomGraph(rng, 1+rng.Intn(5), rng.Intn(6))
		exact := Distance(a, b)
		for _, w := range []int{1, 4, 16} {
			approx, m := Approximate(a, b, w)
			if approx < exact {
				t.Fatalf("beam(%d) %d below exact %d\na=%v\nb=%v", w, approx, exact, a, b)
			}
			if c, err := MappingCost(a, b, m); err != nil || c != approx {
				t.Fatalf("mapping does not realise reported cost: %d vs %d (%v)", c, approx, err)
			}
		}
		// A wide beam on tiny graphs is exact.
		if approx, _ := Approximate(a, b, 64); approx != exact {
			t.Fatalf("beam(64) = %d, exact = %d on tiny graphs\na=%v\nb=%v", approx, exact, a, b)
		}
	}
}

func TestApproximateIdentity(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(5)), 8, 12)
	if d, _ := Approximate(g, g.Clone(), 4); d != 0 {
		t.Fatalf("approx(g,g) = %d", d)
	}
}

func TestApproximateEmpty(t *testing.T) {
	e := graph.New(0)
	g := chain("A", "B", "C")
	if d, _ := Approximate(e, g, 2); d != 5 { // 3 vertices + 2 edges
		t.Fatalf("approx(empty, chain3) = %d, want 5", d)
	}
	if d, _ := Approximate(g, e, 2); d != 5 {
		t.Fatalf("approx(chain3, empty) = %d, want 5", d)
	}
	if d, _ := Approximate(e, e, 2); d != 0 {
		t.Fatalf("approx(empty, empty) = %d", d)
	}
}

func TestApproximateLargeGraphs(t *testing.T) {
	// Beyond the exact search's 64-vertex limit.
	mk := func(seed int64) *graph.Graph {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(80)
		for i := 0; i < 80; i++ {
			g.AddVertex([]string{"A", "B", "C"}[rng.Intn(3)])
		}
		for e := 0; e < 150; e++ {
			u, v := rng.Intn(80), rng.Intn(80)
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v, "p")
			}
		}
		return g
	}
	a, b := mk(1), mk(2)
	d, m := Approximate(a, b, 4)
	if d <= 0 {
		t.Fatalf("distinct large graphs at distance %d", d)
	}
	if c, err := MappingCost(a, b, m); err != nil || c != d {
		t.Fatalf("large-graph mapping mismatch: %d vs %d (%v)", c, d, err)
	}
	if d2, _ := Approximate(a, a.Clone(), 4); d2 != 0 {
		t.Fatalf("large identity = %d", d2)
	}
}

func TestApproximateWiderBeamNoWorseOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	sum1, sum8 := 0, 0
	for i := 0; i < 40; i++ {
		a := randomGraph(rng, 6, 8)
		b := randomGraph(rng, 6, 8)
		d1, _ := Approximate(a, b, 1)
		d8, _ := Approximate(a, b, 8)
		sum1 += d1
		sum8 += d8
	}
	if sum8 > sum1 {
		t.Errorf("beam 8 worse than beam 1 in aggregate: %d vs %d", sum8, sum1)
	}
}
