package ged

import (
	"errors"
	"time"

	"simjoin/internal/obs"
)

// Metrics bundles the GED engine's observability instruments. A nil
// *Metrics (the default) records nothing and costs Compute a single nil
// check, so the verification hot path is unaffected when observability is
// disabled.
type Metrics struct {
	// Calls counts Compute invocations.
	Calls *obs.Counter
	// BudgetHits counts searches aborted by Options.MaxStates (ErrBudget).
	BudgetHits *obs.Counter
	// States is the distribution of A* states expanded per call.
	States *obs.Histogram
	// Seconds is the distribution of per-call wall time.
	Seconds *obs.Histogram
}

// NewMetrics registers the engine's metrics on reg; nil reg yields nil.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Calls:      reg.Counter("ged_compute_total"),
		BudgetHits: reg.Counter("ged_budget_exhausted_total"),
		States:     reg.Histogram("ged_states_expanded", obs.CountBuckets),
		Seconds:    reg.Histogram("ged_compute_seconds", obs.DurationBuckets),
	}
}

func (m *Metrics) record(res Result, err error, start time.Time) {
	if m == nil {
		return
	}
	m.Calls.Inc()
	m.States.Observe(float64(res.States))
	m.Seconds.ObserveDuration(time.Since(start))
	if errors.Is(err, ErrBudget) {
		m.BudgetHits.Inc()
	}
}
