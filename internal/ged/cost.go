package ged

import (
	"fmt"

	"simjoin/internal/graph"
)

// MappingCost evaluates the total edit cost implied by a complete vertex
// mapping m from g1 to g2 (every g1 vertex mapped to a distinct g2 vertex or
// Deleted). It is the cost of the edit sequence that realises m: vertex
// deletions/substitutions, insertions of uncovered g2 vertices, and all edge
// operations. Distance(g1,g2) is the minimum of MappingCost over all mappings.
//
// MappingCost returns an error if m has the wrong length, an out-of-range
// image, or maps two vertices to the same image.
func MappingCost(g1, g2 *graph.Graph, m Mapping) (int, error) {
	if len(m) != g1.NumVertices() {
		return 0, fmt.Errorf("ged: mapping length %d != |V(g1)| %d", len(m), g1.NumVertices())
	}
	usedB := make([]bool, g2.NumVertices())
	cost := 0
	for u, v := range m {
		if v == Deleted {
			cost++
			continue
		}
		if v < 0 || v >= g2.NumVertices() {
			return 0, fmt.Errorf("ged: mapping image %d out of range", v)
		}
		if usedB[v] {
			return 0, fmt.Errorf("ged: mapping not injective at image %d", v)
		}
		usedB[v] = true
		if !graph.IDsMatch(g1.VertexLabelID(u), g2.VertexLabelID(v)) {
			cost++
		}
	}
	for v, used := range usedB {
		_ = v
		if !used {
			cost++ // insert uncovered g2 vertex
		}
	}
	// Edge costs from g1's perspective.
	for i, e := range g1.Edges() {
		fu, tv := m[e.From], m[e.To]
		if fu == Deleted || tv == Deleted {
			cost++ // edge deleted along with an endpoint
			continue
		}
		bi, ok := g2.EdgeIndex(fu, tv)
		if !ok {
			cost++ // delete edge absent in g2
		} else if !graph.IDsMatch(g1.EdgeLabelID(i), g2.EdgeLabelID(bi)) {
			cost++ // substitute edge label
		}
	}
	// g2 edges with both endpoints covered but no g1 counterpart are inserts;
	// g2 edges with an uncovered endpoint are inserts too.
	inv := make([]int, g2.NumVertices())
	for i := range inv {
		inv[i] = Deleted
	}
	for u, v := range m {
		if v != Deleted {
			inv[v] = u
		}
	}
	for _, e := range g2.Edges() {
		fu, tv := inv[e.From], inv[e.To]
		if fu == Deleted || tv == Deleted {
			cost++
			continue
		}
		if _, ok := g1.EdgeLabel(fu, tv); !ok {
			cost++
		}
	}
	return cost, nil
}
