// Package ged computes the minimum graph edit distance (GED) between certain
// labeled graphs, the similarity measure at the heart of the paper (§3.1.2).
//
// The edit model follows the paper exactly: six primitive operations, each of
// cost 1 — insert/delete an isolated labeled vertex, insert/delete an edge,
// and substitute a vertex or edge label. Wildcard labels ('?'-prefixed) match
// any label at zero substitution cost.
//
// Computing GED is NP-hard; the implementation is the standard A* search over
// partial vertex mappings with an admissible label-multiset heuristic
// (cf. Riesen et al. [17] and Zhao et al. [31]). A threshold-bounded variant
// prunes every state whose optimistic cost exceeds τ, which is what the SimJ
// verification phase uses.
package ged

import (
	"container/heap"
	"errors"
	"fmt"
	"time"

	"simjoin/internal/graph"
)

// ErrBudget is returned when the search exceeds the configured state budget.
var ErrBudget = errors.New("ged: state budget exhausted")

// NoThreshold disables threshold pruning when passed as τ.
const NoThreshold = int(^uint(0) >> 1)

// Mapping records a vertex correspondence from the first argument graph to
// the second: Mapping[u] is the image of u, or Deleted if u was deleted.
type Mapping []int

// Deleted marks a vertex with no image under a Mapping.
const Deleted = -1

// Options tunes the search.
type Options struct {
	// Threshold prunes all search states whose lower-bounded total cost
	// exceeds it. Use NoThreshold (the zero Options value is NOT usable;
	// call Distance/WithinThreshold helpers instead) for exact search.
	Threshold int
	// MaxStates caps the number of expanded states; 0 means unlimited.
	// When exceeded, Compute returns ErrBudget.
	MaxStates int
	// Metrics, when non-nil, records per-call diagnostics (states expanded,
	// wall time, budget exhaustions) into the observability registry.
	Metrics *Metrics
}

// Result is the outcome of a GED computation.
type Result struct {
	// Distance is the minimum edit distance, valid when Exceeded is false.
	Distance int
	// Exceeded is true when the distance is known to be > Options.Threshold;
	// Distance then holds the threshold-exceeding lower bound reached.
	Exceeded bool
	// Mapping maps vertices of the first argument to the second.
	Mapping Mapping
	// States is the number of A* states expanded (diagnostics).
	States int
}

// Distance returns the exact graph edit distance between g1 and g2.
func Distance(g1, g2 *graph.Graph) int {
	r, err := Compute(g1, g2, Options{Threshold: NoThreshold})
	if err != nil {
		panic(err) // unreachable: no budget configured
	}
	return r.Distance
}

// DistanceMapping returns the exact distance together with an optimal vertex
// mapping from g1 to g2.
func DistanceMapping(g1, g2 *graph.Graph) (int, Mapping) {
	r, err := Compute(g1, g2, Options{Threshold: NoThreshold})
	if err != nil {
		panic(err)
	}
	return r.Distance, r.Mapping
}

// WithinThreshold reports whether ged(g1,g2) ≤ tau, returning the exact
// distance when it is.
func WithinThreshold(g1, g2 *graph.Graph, tau int) (int, bool) {
	if tau < 0 {
		return 0, false
	}
	r, err := Compute(g1, g2, Options{Threshold: tau})
	if err != nil {
		panic(err)
	}
	return r.Distance, !r.Exceeded
}

// searcher holds the immutable inputs of one A* run. The smaller graph (by
// vertex count) is always mapped onto the larger one; swapped indicates the
// caller's arguments were reversed.
type searcher struct {
	a, b    *graph.Graph // |V(a)| <= |V(b)|
	order   []int        // processing order of a's vertices (degree-descending)
	swapped bool
	opts    Options

	// Interned labels: id 0 is reserved for wildcards.
	vLabelA, vLabelB []int
	nVLabels         int
	eLabelIDs        map[string]int
}

type state struct {
	k       int    // number of a-vertices processed (in order)
	used    uint64 // bitmask of b-vertices consumed
	g       int    // accumulated cost
	f       int    // g + heuristic
	mapping []int  // a-vertex -> b-vertex or Deleted, indexed by a vertex id
}

type stateHeap []*state

func (h stateHeap) Len() int { return len(h) }
func (h stateHeap) Less(i, j int) bool {
	if h[i].f != h[j].f {
		return h[i].f < h[j].f
	}
	return h[i].k > h[j].k // prefer deeper states to reach goals sooner
}
func (h stateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *stateHeap) Push(x interface{}) { *h = append(*h, x.(*state)) }
func (h *stateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return s
}

// Compute runs the A* search with the given options.
func Compute(g1, g2 *graph.Graph, opts Options) (Result, error) {
	if opts.Metrics != nil {
		start := time.Now()
		res, err := compute(g1, g2, opts)
		opts.Metrics.record(res, err, start)
		return res, err
	}
	return compute(g1, g2, opts)
}

func compute(g1, g2 *graph.Graph, opts Options) (Result, error) {
	if g2.NumVertices() > 64 || g1.NumVertices() > 64 {
		return Result{}, fmt.Errorf("ged: graphs larger than 64 vertices unsupported (got %d, %d)",
			g1.NumVertices(), g2.NumVertices())
	}
	s := &searcher{a: g1, b: g2, opts: opts}
	if g1.NumVertices() > g2.NumVertices() {
		s.a, s.b = g2, g1
		s.swapped = true
	}
	s.intern()
	s.computeOrder()

	res, err := s.run()
	if err != nil {
		return res, err
	}
	if res.Exceeded {
		res.Mapping = nil
		return res, nil
	}
	// Translate the internal mapping (a->b) to the caller's direction
	// (g1 -> g2).
	m := make(Mapping, g1.NumVertices())
	for i := range m {
		m[i] = Deleted
	}
	if s.swapped {
		// internal a == g2; invert.
		for u, v := range res.Mapping {
			if v != Deleted {
				m[v] = u
			}
		}
	} else {
		copy(m, res.Mapping)
	}
	res.Mapping = m
	return res, nil
}

func (s *searcher) intern() {
	ids := map[string]int{}
	get := func(l string) int {
		if graph.IsWildcard(l) {
			return 0
		}
		id, ok := ids[l]
		if !ok {
			id = len(ids) + 1
			ids[l] = id
		}
		return id
	}
	s.vLabelA = make([]int, s.a.NumVertices())
	for v := range s.vLabelA {
		s.vLabelA[v] = get(s.a.VertexLabel(v))
	}
	s.vLabelB = make([]int, s.b.NumVertices())
	for v := range s.vLabelB {
		s.vLabelB[v] = get(s.b.VertexLabel(v))
	}
	s.nVLabels = len(ids) + 1
	s.eLabelIDs = ids // edge labels share the intern table via labelID below
}

func (s *searcher) labelID(l string) int {
	if graph.IsWildcard(l) {
		return 0
	}
	id, ok := s.eLabelIDs[l]
	if !ok {
		id = len(s.eLabelIDs) + 1
		s.eLabelIDs[l] = id
	}
	return id
}

// computeOrder processes high-degree vertices first: they constrain the most
// edges and tighten costs early.
func (s *searcher) computeOrder() {
	deg := s.a.Degrees()
	n := s.a.NumVertices()
	s.order = make([]int, n)
	for i := range s.order {
		s.order[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && deg[s.order[j]] > deg[s.order[j-1]]; j-- {
			s.order[j], s.order[j-1] = s.order[j-1], s.order[j]
		}
	}
}

func (s *searcher) run() (Result, error) {
	m, n := s.a.NumVertices(), s.b.NumVertices()
	start := &state{mapping: make([]int, m)}
	for i := range start.mapping {
		start.mapping[i] = Deleted
	}
	start.f = s.heuristic(start)

	pq := &stateHeap{start}
	heap.Init(pq)
	expanded := 0
	best := Result{Distance: s.opts.Threshold + 1, Exceeded: true}

	for pq.Len() > 0 {
		cur := heap.Pop(pq).(*state)
		if s.opts.Threshold != NoThreshold && cur.f > s.opts.Threshold {
			best.States = expanded
			return best, nil // all remaining states exceed τ as well
		}
		if cur.k == m {
			total := cur.g + s.completionCost(cur)
			if s.opts.Threshold != NoThreshold && total > s.opts.Threshold {
				continue
			}
			return Result{Distance: total, Mapping: cur.mapping, States: expanded}, nil
		}
		expanded++
		if s.opts.MaxStates > 0 && expanded > s.opts.MaxStates {
			return Result{States: expanded}, ErrBudget
		}
		u := s.order[cur.k]
		// Branch: map u to each unused b-vertex, or delete u.
		for v := 0; v < n; v++ {
			if cur.used&(1<<uint(v)) != 0 {
				continue
			}
			s.push(pq, cur, u, v)
		}
		s.push(pq, cur, u, Deleted)
	}
	if s.opts.Threshold != NoThreshold {
		best.States = expanded
		return best, nil
	}
	return Result{}, errors.New("ged: search space exhausted without a goal (internal error)")
}

// push extends cur by assigning a-vertex u to b-vertex v (or Deleted) and
// enqueues the successor unless it is already over threshold.
func (s *searcher) push(pq *stateHeap, cur *state, u, v int) {
	cost := cur.g + s.extensionCost(cur, u, v)
	nm := make([]int, len(cur.mapping))
	copy(nm, cur.mapping)
	nm[u] = v
	next := &state{k: cur.k + 1, used: cur.used, g: cost, mapping: nm}
	if v != Deleted {
		next.used |= 1 << uint(v)
	}
	next.f = cost + s.heuristic(next)
	if s.opts.Threshold != NoThreshold && next.f > s.opts.Threshold {
		return
	}
	heap.Push(pq, next)
}

// extensionCost is the exact cost added by assigning u -> v given the already
// mapped prefix: the vertex operation plus all edge operations between u and
// previously processed vertices.
func (s *searcher) extensionCost(cur *state, u, v int) int {
	cost := 0
	if v == Deleted {
		cost++ // delete u
	} else if !graph.LabelsMatch(s.a.VertexLabel(u), s.b.VertexLabel(v)) {
		cost++ // substitute label
	}
	for k := 0; k < cur.k; k++ {
		p := s.order[k]
		w := cur.mapping[p]
		cost += s.edgePairCost(u, p, v, w)
		cost += s.edgePairCost(p, u, w, v)
	}
	return cost
}

// edgePairCost compares the directed a-edge (x->y) with the directed b-edge
// (ix->iy), where ix/iy may be Deleted.
func (s *searcher) edgePairCost(x, y, ix, iy int) int {
	al, aOK := s.a.EdgeLabel(x, y)
	if ix == Deleted || iy == Deleted {
		if aOK {
			return 1 // the a-edge must be deleted
		}
		return 0
	}
	bl, bOK := s.b.EdgeLabel(ix, iy)
	switch {
	case aOK && bOK:
		if graph.LabelsMatch(al, bl) {
			return 0
		}
		return 1 // substitute edge label
	case aOK != bOK:
		return 1 // insert or delete one edge
	default:
		return 0
	}
}

// completionCost inserts every unused b-vertex and every b-edge not fully
// inside the image of the mapping.
func (s *searcher) completionCost(cur *state) int {
	cost := 0
	for v := 0; v < s.b.NumVertices(); v++ {
		if cur.used&(1<<uint(v)) == 0 {
			cost++
		}
	}
	for _, e := range s.b.Edges() {
		if cur.used&(1<<uint(e.From)) == 0 || cur.used&(1<<uint(e.To)) == 0 {
			cost++
		}
	}
	return cost
}

// heuristic is an admissible lower bound on the remaining cost: a vertex term
// and an edge term, each of the form max(r1, r2) − (upper bound on matchable
// pairs). Overestimating the matchable pairs keeps the bound admissible.
func (s *searcher) heuristic(st *state) int {
	// Remaining a-vertices and their label counts.
	remA := s.a.NumVertices() - st.k
	countA := make(map[int]int)
	wildA := 0
	for k := st.k; k < s.a.NumVertices(); k++ {
		id := s.vLabelA[s.order[k]]
		if id == 0 {
			wildA++
		} else {
			countA[id]++
		}
	}
	// Unused b-vertices and their label counts.
	remB := 0
	countB := make(map[int]int)
	wildB := 0
	for v := 0; v < s.b.NumVertices(); v++ {
		if st.used&(1<<uint(v)) != 0 {
			continue
		}
		remB++
		id := s.vLabelB[v]
		if id == 0 {
			wildB++
		} else {
			countB[id]++
		}
	}
	common := wildA + wildB
	for id, c := range countA {
		if cb := countB[id]; cb < c {
			common += cb
		} else {
			common += c
		}
	}
	if common > remA {
		common = remA
	}
	if common > remB {
		common = remB
	}
	hv := remA
	if remB > hv {
		hv = remB
	}
	hv -= common

	// Edge term: edges with at least one unprocessed/unused endpoint.
	processedA := make(map[int]bool, st.k)
	for k := 0; k < st.k; k++ {
		processedA[s.order[k]] = true
	}
	eA, eALabels, eAWild := 0, make(map[int]int), 0
	for _, e := range s.a.Edges() {
		if processedA[e.From] && processedA[e.To] {
			continue
		}
		eA++
		if id := s.labelID(e.Label); id == 0 {
			eAWild++
		} else {
			eALabels[id]++
		}
	}
	eB, eBLabels, eBWild := 0, make(map[int]int), 0
	for _, e := range s.b.Edges() {
		if st.used&(1<<uint(e.From)) != 0 && st.used&(1<<uint(e.To)) != 0 {
			continue
		}
		eB++
		if id := s.labelID(e.Label); id == 0 {
			eBWild++
		} else {
			eBLabels[id]++
		}
	}
	ecommon := eAWild + eBWild
	for id, c := range eALabels {
		if cb := eBLabels[id]; cb < c {
			ecommon += cb
		} else {
			ecommon += c
		}
	}
	if ecommon > eA {
		ecommon = eA
	}
	if ecommon > eB {
		ecommon = eB
	}
	he := eA
	if eB > he {
		he = eB
	}
	he -= ecommon

	return hv + he
}
