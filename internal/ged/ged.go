// Package ged computes the minimum graph edit distance (GED) between certain
// labeled graphs, the similarity measure at the heart of the paper (§3.1.2).
//
// The edit model follows the paper exactly: six primitive operations, each of
// cost 1 — insert/delete an isolated labeled vertex, insert/delete an edge,
// and substitute a vertex or edge label. Wildcard labels ('?'-prefixed) match
// any label at zero substitution cost.
//
// Computing GED is NP-hard; the implementation is the standard A* search over
// partial vertex mappings with an admissible label-multiset heuristic
// (cf. Riesen et al. [17] and Zhao et al. [31]). A threshold-bounded variant
// prunes every state whose optimistic cost exceeds τ, which is what the SimJ
// verification phase uses.
//
// The search is allocation-lean: searchers are pooled (sync.Pool), states and
// mappings come from per-searcher chunk arenas, and the heuristic counts
// label multisets in reusable slices over interned label ids instead of maps.
// In a join, where Compute runs once per surviving possible world, this keeps
// the verification hot path nearly allocation-free at steady state.
package ged

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
	"time"

	"simjoin/internal/fault"
	"simjoin/internal/graph"
)

// ErrBudget is returned when the search exceeds the configured state budget.
var ErrBudget = errors.New("ged: state budget exhausted")

// NoThreshold disables threshold pruning when passed as τ.
const NoThreshold = int(^uint(0) >> 1)

// Mapping records a vertex correspondence from the first argument graph to
// the second: Mapping[u] is the image of u, or Deleted if u was deleted.
type Mapping []int

// Deleted marks a vertex with no image under a Mapping.
const Deleted = -1

// Options tunes the search.
type Options struct {
	// Threshold prunes all search states whose lower-bounded total cost
	// exceeds it. Use NoThreshold (the zero Options value is NOT usable;
	// call Distance/WithinThreshold helpers instead) for exact search.
	Threshold int
	// MaxStates caps the number of expanded states; 0 means unlimited.
	// When exceeded, Compute returns ErrBudget.
	MaxStates int
	// Metrics, when non-nil, records per-call diagnostics (states expanded,
	// wall time, budget exhaustions) into the observability registry.
	Metrics *Metrics
}

// Result is the outcome of a GED computation.
type Result struct {
	// Distance is the minimum edit distance, valid when Exceeded is false.
	Distance int
	// Exceeded is true when the distance is known to be > Options.Threshold;
	// Distance then holds the threshold-exceeding lower bound reached.
	Exceeded bool
	// Mapping maps vertices of the first argument to the second.
	Mapping Mapping
	// States is the number of A* states expanded (diagnostics).
	States int
}

// Distance returns the exact graph edit distance between g1 and g2.
func Distance(g1, g2 *graph.Graph) int {
	r, err := Compute(g1, g2, Options{Threshold: NoThreshold})
	if err != nil {
		panic(err) // unreachable: no budget configured
	}
	return r.Distance
}

// DistanceMapping returns the exact distance together with an optimal vertex
// mapping from g1 to g2.
func DistanceMapping(g1, g2 *graph.Graph) (int, Mapping) {
	r, err := Compute(g1, g2, Options{Threshold: NoThreshold})
	if err != nil {
		panic(err)
	}
	return r.Distance, r.Mapping
}

// WithinThreshold reports whether ged(g1,g2) ≤ tau, returning the exact
// distance when it is.
func WithinThreshold(g1, g2 *graph.Graph, tau int) (int, bool) {
	if tau < 0 {
		return 0, false
	}
	r, err := Compute(g1, g2, Options{Threshold: tau})
	if err != nil {
		panic(err)
	}
	return r.Distance, !r.Exceeded
}

// Arena chunk sizes: mappings are at most 64 ints, states are small structs;
// the chunks amortise allocation to ~one per few hundred generated states.
const (
	mapChunkInts   = 4096
	stateChunkSize = 256
)

// searcher holds the inputs and all reusable scratch of one A* run. The
// smaller graph (by vertex count) is always mapped onto the larger one;
// swapped indicates the caller's arguments were reversed. Searchers are
// recycled through searcherPool; every slice below retains capacity across
// runs.
type searcher struct {
	a, b    *graph.Graph // |V(a)| <= |V(b)|
	order   []int        // processing order of a's vertices (degree-descending)
	swapped bool
	opts    Options

	// Locally interned labels: id 0 is reserved for wildcards. Vertex and
	// edge labels share one dense id space so the heuristic's count slices
	// stay small; the remap is keyed by the process-wide dictionary id
	// (graph.LabelID), so building it hashes int32s, never strings.
	ids              map[graph.LabelID]int
	vLabelA, vLabelB []int
	eLabA, eLabB     []int // per-edge label ids, parallel to Edges()
	nLabels          int

	// processedMask[k] is the bitmask of a-vertices in order[:k].
	processedMask []uint64

	// Dense adjacency matrices (edge index + 1, 0 = absent), flattened
	// row-major over the ≤64-vertex graphs. They replace the per-pair
	// EdgeIndex map lookups in the innermost search loop.
	nA, nB     int
	adjA, adjB []int32
	aEdges     []graph.Edge
	bEdges     []graph.Edge

	// CSR incidence lists of b-edges per b-vertex (self-loops once); the
	// successor heuristic walks only the edges touching the newly used
	// b-vertex instead of rescanning the whole edge list.
	bIncStart []int32
	bIncEdge  []int32

	// Heuristic multiset scratch, indexed by label id. prepareExpand fills
	// these once per expanded state; successorHeuristic applies O(deg)
	// deltas against them (temporarily mutating and restoring eCntB).
	vCntA, vCntB, eCntA, eCntB []int32

	// Base aggregates of the heuristic at (k+1, cur.used), computed once per
	// expansion by prepareExpand. baseMinV/baseMinE are the wildcard-free
	// Σ min(cntA, cntB) sums.
	baseRemA, baseWildA, baseEA, baseEAWild int
	baseRemB, baseWildB, baseEB, baseEBWild int
	baseMinV, baseMinE                      int

	// Chunk arenas for mapping slices and states.
	mapChunks [][]int
	mapIdx    int
	mapUsed   int
	stChunks  [][]state
	stIdx     int
	stUsed    int

	pq stateHeap
}

var searcherPool = sync.Pool{
	New: func() interface{} { return &searcher{ids: make(map[graph.LabelID]int)} },
}

type state struct {
	k       int    // number of a-vertices processed (in order)
	used    uint64 // bitmask of b-vertices consumed
	g       int    // accumulated cost
	f       int    // g + heuristic
	mapping []int  // a-vertex -> b-vertex or Deleted, indexed by a vertex id
}

type stateHeap []*state

func (h stateHeap) Len() int { return len(h) }
func (h stateHeap) Less(i, j int) bool {
	if h[i].f != h[j].f {
		return h[i].f < h[j].f
	}
	return h[i].k > h[j].k // prefer deeper states to reach goals sooner
}
func (h stateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *stateHeap) Push(x interface{}) { *h = append(*h, x.(*state)) }
func (h *stateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return s
}

// Compute runs the A* search with the given options.
//
// The "ged.compute" failpoint fires at entry: error- and budget-kind
// injections surface as the returned error (callers already treat any
// Compute error as a budget exhaustion), panics propagate to the caller's
// containment layer.
func Compute(g1, g2 *graph.Graph, opts Options) (Result, error) {
	if err := fault.Hit("ged.compute", ""); err != nil {
		return Result{}, err
	}
	if opts.Metrics != nil {
		start := time.Now()
		res, err := compute(g1, g2, opts)
		opts.Metrics.record(res, err, start)
		return res, err
	}
	return compute(g1, g2, opts)
}

func compute(g1, g2 *graph.Graph, opts Options) (Result, error) {
	if g2.NumVertices() > 64 || g1.NumVertices() > 64 {
		return Result{}, fmt.Errorf("ged: graphs larger than 64 vertices unsupported (got %d, %d)",
			g1.NumVertices(), g2.NumVertices())
	}
	s := searcherPool.Get().(*searcher)
	defer func() {
		s.a, s.b = nil, nil
		s.opts = Options{}
		searcherPool.Put(s)
	}()
	s.a, s.b, s.swapped, s.opts = g1, g2, false, opts
	if g1.NumVertices() > g2.NumVertices() {
		s.a, s.b = g2, g1
		s.swapped = true
	}
	s.mapIdx, s.mapUsed = 0, 0
	s.stIdx, s.stUsed = 0, 0
	s.intern()
	s.computeOrder()

	res, err := s.run()
	if err != nil {
		return res, err
	}
	if res.Exceeded {
		res.Mapping = nil
		return res, nil
	}
	// Translate the internal arena-backed mapping (a->b) to a fresh slice in
	// the caller's direction (g1 -> g2); the arena is recycled with s.
	m := make(Mapping, g1.NumVertices())
	for i := range m {
		m[i] = Deleted
	}
	if s.swapped {
		// internal a == g2; invert.
		for u, v := range res.Mapping {
			if v != Deleted {
				m[v] = u
			}
		}
	} else {
		copy(m, res.Mapping)
	}
	res.Mapping = m
	return res, nil
}

// growInts returns s resized to n, reusing capacity when possible. Contents
// are unspecified; callers overwrite every element.
func growInts(s []int, n int) []int {
	if n <= cap(s) {
		return s[:n]
	}
	return make([]int, n)
}

func growInt32s(s []int32, n int) []int32 {
	if n <= cap(s) {
		return s[:n]
	}
	return make([]int32, n)
}

func growMasks(s []uint64, n int) []uint64 {
	if n <= cap(s) {
		return s[:n]
	}
	return make([]uint64, n)
}

// intern assigns dense local ids to every vertex and edge label of both
// graphs (wildcards collapse to id 0) and sizes the heuristic count slices.
// The graphs' precomputed dictionary ids are the keys, so no string is
// hashed or compared here.
func (s *searcher) intern() {
	ids := s.ids
	clear(ids)
	get := func(gid graph.LabelID) int {
		if gid == graph.WildcardID {
			return 0
		}
		id, ok := ids[gid]
		if !ok {
			id = len(ids) + 1
			ids[gid] = id
		}
		return id
	}
	aV, bV := s.a.VertexLabelIDs(), s.b.VertexLabelIDs()
	s.vLabelA = growInts(s.vLabelA, s.a.NumVertices())
	for v := range s.vLabelA {
		s.vLabelA[v] = get(aV[v])
	}
	s.vLabelB = growInts(s.vLabelB, s.b.NumVertices())
	for v := range s.vLabelB {
		s.vLabelB[v] = get(bV[v])
	}
	aE, bE := s.a.EdgeLabelIDs(), s.b.EdgeLabelIDs()
	s.eLabA = growInts(s.eLabA, s.a.NumEdges())
	for i := range s.eLabA {
		s.eLabA[i] = get(aE[i])
	}
	s.eLabB = growInts(s.eLabB, s.b.NumEdges())
	for i := range s.eLabB {
		s.eLabB[i] = get(bE[i])
	}
	s.nLabels = len(ids) + 1
	s.vCntA = growInt32s(s.vCntA, s.nLabels)
	s.vCntB = growInt32s(s.vCntB, s.nLabels)
	s.eCntA = growInt32s(s.eCntA, s.nLabels)
	s.eCntB = growInt32s(s.eCntB, s.nLabels)

	s.nA, s.nB = s.a.NumVertices(), s.b.NumVertices()
	s.aEdges, s.bEdges = s.a.Edges(), s.b.Edges()
	s.adjA = growInt32s(s.adjA, s.nA*s.nA)
	clear(s.adjA)
	for i, e := range s.aEdges {
		s.adjA[e.From*s.nA+e.To] = int32(i + 1)
	}
	s.adjB = growInt32s(s.adjB, s.nB*s.nB)
	clear(s.adjB)
	for i, e := range s.bEdges {
		s.adjB[e.From*s.nB+e.To] = int32(i + 1)
	}

	s.bIncStart = growInt32s(s.bIncStart, s.nB+1)
	clear(s.bIncStart)
	for _, e := range s.bEdges {
		s.bIncStart[e.From]++
		if e.To != e.From {
			s.bIncStart[e.To]++
		}
	}
	total := int32(0)
	for v := 0; v < s.nB; v++ {
		c := s.bIncStart[v]
		s.bIncStart[v] = total
		total += c
	}
	s.bIncStart[s.nB] = total
	s.bIncEdge = growInt32s(s.bIncEdge, int(total))
	// Fill with the starts themselves as cursors: after filling, each start
	// has advanced to the next vertex's start, so one backward shift restores
	// the offsets.
	for i, e := range s.bEdges {
		s.bIncEdge[s.bIncStart[e.From]] = int32(i)
		s.bIncStart[e.From]++
		if e.To != e.From {
			s.bIncEdge[s.bIncStart[e.To]] = int32(i)
			s.bIncStart[e.To]++
		}
	}
	for v := s.nB; v > 0; v-- {
		s.bIncStart[v] = s.bIncStart[v-1]
	}
	s.bIncStart[0] = 0
}

// computeOrder processes high-degree vertices first: they constrain the most
// edges and tighten costs early. It also precomputes the processed-prefix
// bitmasks the heuristic's edge term reads.
func (s *searcher) computeOrder() {
	deg := s.a.Degrees()
	n := s.a.NumVertices()
	s.order = growInts(s.order, n)
	for i := range s.order {
		s.order[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && deg[s.order[j]] > deg[s.order[j-1]]; j-- {
			s.order[j], s.order[j-1] = s.order[j-1], s.order[j]
		}
	}
	s.processedMask = growMasks(s.processedMask, n+1)
	s.processedMask[0] = 0
	for k := 1; k <= n; k++ {
		s.processedMask[k] = s.processedMask[k-1] | 1<<uint(s.order[k-1])
	}
}

// newMapping hands out an n-int slice from the mapping arena.
func (s *searcher) newMapping(n int) []int {
	if s.mapIdx < len(s.mapChunks) && s.mapUsed+n > len(s.mapChunks[s.mapIdx]) {
		s.mapIdx++
		s.mapUsed = 0
	}
	if s.mapIdx >= len(s.mapChunks) {
		c := mapChunkInts
		if n > c {
			c = n
		}
		s.mapChunks = append(s.mapChunks, make([]int, c))
		s.mapUsed = 0
	}
	chunk := s.mapChunks[s.mapIdx]
	out := chunk[s.mapUsed : s.mapUsed+n : s.mapUsed+n]
	s.mapUsed += n
	return out
}

// newState hands out a state from the state arena; callers overwrite it.
func (s *searcher) newState() *state {
	if s.stIdx < len(s.stChunks) && s.stUsed >= len(s.stChunks[s.stIdx]) {
		s.stIdx++
		s.stUsed = 0
	}
	if s.stIdx >= len(s.stChunks) {
		s.stChunks = append(s.stChunks, make([]state, stateChunkSize))
		s.stUsed = 0
	}
	st := &s.stChunks[s.stIdx][s.stUsed]
	s.stUsed++
	return st
}

func (s *searcher) run() (Result, error) {
	m, n := s.a.NumVertices(), s.b.NumVertices()
	start := s.newState()
	*start = state{mapping: s.newMapping(m)}
	for i := range start.mapping {
		start.mapping[i] = Deleted
	}
	start.f = s.heuristic(0, 0)

	s.pq = append(s.pq[:0], start)
	pq := &s.pq
	expanded := 0
	best := Result{Distance: s.opts.Threshold + 1, Exceeded: true}

	for pq.Len() > 0 {
		cur := heap.Pop(pq).(*state)
		if s.opts.Threshold != NoThreshold && cur.f > s.opts.Threshold {
			best.States = expanded
			return best, nil // all remaining states exceed τ as well
		}
		if cur.k == m {
			total := cur.g + s.completionCost(cur)
			if s.opts.Threshold != NoThreshold && total > s.opts.Threshold {
				continue
			}
			return Result{Distance: total, Mapping: cur.mapping, States: expanded}, nil
		}
		expanded++
		if s.opts.MaxStates > 0 && expanded > s.opts.MaxStates {
			return Result{States: expanded}, ErrBudget
		}
		u := s.order[cur.k]
		// Branch: map u to each unused b-vertex, or delete u. All successors
		// share the heuristic's (k+1, cur.used) base aggregates; push applies
		// only the per-successor delta.
		s.prepareExpand(cur)
		for v := 0; v < n; v++ {
			if cur.used&(1<<uint(v)) != 0 {
				continue
			}
			s.push(cur, u, v)
		}
		s.push(cur, u, Deleted)
	}
	if s.opts.Threshold != NoThreshold {
		best.States = expanded
		return best, nil
	}
	return Result{}, errors.New("ged: search space exhausted without a goal (internal error)")
}

// push extends cur by assigning a-vertex u to b-vertex v (or Deleted) and
// enqueues the successor unless it is already over threshold. The heuristic
// is evaluated before touching the arenas so pruned successors cost nothing;
// it is the delta form over prepareExpand's base aggregates and equals
// heuristic(cur.k+1, used) exactly.
func (s *searcher) push(cur *state, u, v int) {
	cost := cur.g + s.extensionCost(cur, u, v)
	used := cur.used
	if v != Deleted {
		used |= 1 << uint(v)
	}
	f := cost + s.successorHeuristic(cur.used, v)
	if s.opts.Threshold != NoThreshold && f > s.opts.Threshold {
		return
	}
	nm := s.newMapping(len(cur.mapping))
	copy(nm, cur.mapping)
	nm[u] = v
	next := s.newState()
	*next = state{k: cur.k + 1, used: used, g: cost, f: f, mapping: nm}
	heap.Push(&s.pq, next)
}

// extensionCost is the exact cost added by assigning u -> v given the already
// mapped prefix: the vertex operation plus all edge operations between u and
// previously processed vertices.
func (s *searcher) extensionCost(cur *state, u, v int) int {
	cost := 0
	if v == Deleted {
		cost++ // delete u
	} else if la, lb := s.vLabelA[u], s.vLabelB[v]; la != lb && la != 0 && lb != 0 {
		cost++ // substitute label (0 is the wildcard id: matches anything)
	}
	for k := 0; k < cur.k; k++ {
		p := s.order[k]
		w := cur.mapping[p]
		cost += s.edgePairCost(u, p, v, w)
		cost += s.edgePairCost(p, u, w, v)
	}
	return cost
}

// edgePairCost compares the directed a-edge (x->y) with the directed b-edge
// (ix->iy), where ix/iy may be Deleted. Adjacency is probed through the dense
// matrices (edge index + 1, 0 = absent) rather than the graphs' maps.
func (s *searcher) edgePairCost(x, y, ix, iy int) int {
	ai := s.adjA[x*s.nA+y]
	if ix == Deleted || iy == Deleted {
		if ai != 0 {
			return 1 // the a-edge must be deleted
		}
		return 0
	}
	bi := s.adjB[ix*s.nB+iy]
	switch {
	case ai != 0 && bi != 0:
		if la, lb := s.eLabA[ai-1], s.eLabB[bi-1]; la == lb || la == 0 || lb == 0 {
			return 0
		}
		return 1 // substitute edge label
	case (ai != 0) != (bi != 0):
		return 1 // insert or delete one edge
	default:
		return 0
	}
}

// completionCost inserts every unused b-vertex and every b-edge not fully
// inside the image of the mapping.
func (s *searcher) completionCost(cur *state) int {
	cost := 0
	for v := 0; v < s.b.NumVertices(); v++ {
		if cur.used&(1<<uint(v)) == 0 {
			cost++
		}
	}
	for _, e := range s.b.Edges() {
		if cur.used&(1<<uint(e.From)) == 0 || cur.used&(1<<uint(e.To)) == 0 {
			cost++
		}
	}
	return cost
}

// heuristic is an admissible lower bound on the remaining cost of a state
// with k processed a-vertices and the given used-b mask: a vertex term and an
// edge term, each of the form max(r1, r2) − (upper bound on matchable pairs).
// Overestimating the matchable pairs keeps the bound admissible. All counting
// happens in the searcher's id-indexed scratch slices; no allocation.
func (s *searcher) heuristic(k int, used uint64) int {
	vCntA, vCntB := s.vCntA, s.vCntB
	eCntA, eCntB := s.eCntA, s.eCntB
	for i := range vCntA {
		vCntA[i] = 0
	}
	for i := range vCntB {
		vCntB[i] = 0
	}
	for i := range eCntA {
		eCntA[i] = 0
	}
	for i := range eCntB {
		eCntB[i] = 0
	}

	// Remaining a-vertices and their label counts.
	remA := s.a.NumVertices() - k
	wildA := 0
	for i := k; i < len(s.order); i++ {
		if id := s.vLabelA[s.order[i]]; id == 0 {
			wildA++
		} else {
			vCntA[id]++
		}
	}
	// Unused b-vertices and their label counts.
	remB, wildB := 0, 0
	for v := 0; v < s.b.NumVertices(); v++ {
		if used&(1<<uint(v)) != 0 {
			continue
		}
		remB++
		if id := s.vLabelB[v]; id == 0 {
			wildB++
		} else {
			vCntB[id]++
		}
	}
	common := wildA + wildB
	for id := 1; id < s.nLabels; id++ {
		if ca, cb := vCntA[id], vCntB[id]; cb < ca {
			common += int(cb)
		} else {
			common += int(ca)
		}
	}
	if common > remA {
		common = remA
	}
	if common > remB {
		common = remB
	}
	hv := remA
	if remB > hv {
		hv = remB
	}
	hv -= common

	// Edge term: edges with at least one unprocessed/unused endpoint.
	pm := s.processedMask[k]
	eA, eAWild := 0, 0
	for i, e := range s.a.Edges() {
		if pm&(1<<uint(e.From)) != 0 && pm&(1<<uint(e.To)) != 0 {
			continue
		}
		eA++
		if id := s.eLabA[i]; id == 0 {
			eAWild++
		} else {
			eCntA[id]++
		}
	}
	eB, eBWild := 0, 0
	for i, e := range s.b.Edges() {
		if used&(1<<uint(e.From)) != 0 && used&(1<<uint(e.To)) != 0 {
			continue
		}
		eB++
		if id := s.eLabB[i]; id == 0 {
			eBWild++
		} else {
			eCntB[id]++
		}
	}
	ecommon := eAWild + eBWild
	for id := 1; id < s.nLabels; id++ {
		if ca, cb := eCntA[id], eCntB[id]; cb < ca {
			ecommon += int(cb)
		} else {
			ecommon += int(ca)
		}
	}
	if ecommon > eA {
		ecommon = eA
	}
	if ecommon > eB {
		ecommon = eB
	}
	he := eA
	if eB > he {
		he = eB
	}
	he -= ecommon

	return hv + he
}

// prepareExpand computes the heuristic's base aggregates shared by every
// successor of cur: the a-side at depth cur.k+1 (identical for all branches)
// and the b-side at cur.used (each branch removes at most one vertex and its
// incident edges, applied as a delta by successorHeuristic). One O(V+E+L)
// pass per expanded state replaces one per generated successor.
func (s *searcher) prepareExpand(cur *state) {
	k1 := cur.k + 1
	used := cur.used
	vCntA, vCntB := s.vCntA, s.vCntB
	eCntA, eCntB := s.eCntA, s.eCntB
	clear(vCntA)
	clear(vCntB)
	clear(eCntA)
	clear(eCntB)

	s.baseRemA = s.nA - k1
	s.baseWildA = 0
	for i := k1; i < len(s.order); i++ {
		if id := s.vLabelA[s.order[i]]; id == 0 {
			s.baseWildA++
		} else {
			vCntA[id]++
		}
	}
	s.baseRemB, s.baseWildB = 0, 0
	for v := 0; v < s.nB; v++ {
		if used&(1<<uint(v)) != 0 {
			continue
		}
		s.baseRemB++
		if id := s.vLabelB[v]; id == 0 {
			s.baseWildB++
		} else {
			vCntB[id]++
		}
	}

	pm := s.processedMask[k1]
	s.baseEA, s.baseEAWild = 0, 0
	for i, e := range s.aEdges {
		if pm&(1<<uint(e.From)) != 0 && pm&(1<<uint(e.To)) != 0 {
			continue
		}
		s.baseEA++
		if id := s.eLabA[i]; id == 0 {
			s.baseEAWild++
		} else {
			eCntA[id]++
		}
	}
	s.baseEB, s.baseEBWild = 0, 0
	for i, e := range s.bEdges {
		if used&(1<<uint(e.From)) != 0 && used&(1<<uint(e.To)) != 0 {
			continue
		}
		s.baseEB++
		if id := s.eLabB[i]; id == 0 {
			s.baseEBWild++
		} else {
			eCntB[id]++
		}
	}

	s.baseMinV, s.baseMinE = 0, 0
	for id := 1; id < s.nLabels; id++ {
		if ca, cb := vCntA[id], vCntB[id]; cb < ca {
			s.baseMinV += int(cb)
		} else {
			s.baseMinV += int(ca)
		}
		if ca, cb := eCntA[id], eCntB[id]; cb < ca {
			s.baseMinE += int(cb)
		} else {
			s.baseMinE += int(ca)
		}
	}
}

// successorHeuristic evaluates heuristic(k+1, used|v) from the base
// aggregates: consuming b-vertex v removes its label from the unused-b
// multiset and retires every incident b-edge whose other endpoint is already
// used (or is v itself). eCntB is mutated during the walk and restored
// before returning. Passing v == Deleted evaluates the base directly.
func (s *searcher) successorHeuristic(used uint64, v int) int {
	remB, wildB, minV := s.baseRemB, s.baseWildB, s.baseMinV
	eB, eBWild, minE := s.baseEB, s.baseEBWild, s.baseMinE
	var touched []int32
	if v != Deleted {
		remB--
		if id := s.vLabelB[v]; id == 0 {
			wildB--
		} else if s.vCntB[id] <= s.vCntA[id] {
			minV--
		}
		touched = s.bIncEdge[s.bIncStart[v]:s.bIncStart[v+1]]
		for _, ei := range touched {
			e := s.bEdges[ei]
			other := e.From + e.To - v
			if other != v && used&(1<<uint(other)) == 0 {
				continue
			}
			eB--
			id := s.eLabB[ei]
			if id == 0 {
				eBWild--
				continue
			}
			if s.eCntB[id] <= s.eCntA[id] {
				minE--
			}
			s.eCntB[id]--
		}
	}

	common := s.baseWildA + wildB + minV
	if common > s.baseRemA {
		common = s.baseRemA
	}
	if common > remB {
		common = remB
	}
	hv := s.baseRemA
	if remB > hv {
		hv = remB
	}
	hv -= common

	ecommon := s.baseEAWild + eBWild + minE
	if ecommon > s.baseEA {
		ecommon = s.baseEA
	}
	if ecommon > eB {
		ecommon = eB
	}
	he := s.baseEA
	if eB > he {
		he = eB
	}
	he -= ecommon

	// Restore eCntB for the next sibling.
	for _, ei := range touched {
		e := s.bEdges[ei]
		other := e.From + e.To - v
		if other != v && used&(1<<uint(other)) == 0 {
			continue
		}
		if id := s.eLabB[ei]; id != 0 {
			s.eCntB[id]++
		}
	}

	return hv + he
}
