package ged

import (
	"math/rand"
	"testing"
)

// TestSuccessorHeuristicMatchesFull pins the delta evaluation against the
// full recomputation: for random graph pairs and random search states,
// successorHeuristic(used, v) must equal heuristic(k+1, used|v) for every
// legal branch (including deletion), and eCntB must be restored between
// siblings. The A* search relies on exact equality — a looser (still
// admissible) delta would silently change pruning behaviour.
func TestSuccessorHeuristicMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		a := randomGraph(rng, 1+rng.Intn(6), rng.Intn(8))
		b := randomGraph(rng, 1+rng.Intn(6), rng.Intn(8))
		s := searcherPool.Get().(*searcher)
		s.a, s.b, s.opts = a, b, Options{Threshold: NoThreshold}
		if a.NumVertices() > b.NumVertices() {
			s.a, s.b = b, a
		}
		s.intern()
		s.computeOrder()

		nA, nB := s.a.NumVertices(), s.b.NumVertices()
		for trial := 0; trial < 8; trial++ {
			k := rng.Intn(nA) // expandable state: k < nA
			// A plausible used mask: k random b-vertices consumed.
			var used uint64
			for c := 0; c < k && c < nB; c++ {
				used |= 1 << uint(rng.Intn(nB))
			}
			cur := &state{k: k, used: used}
			s.prepareExpand(cur)
			for v := 0; v < nB; v++ {
				if used&(1<<uint(v)) != 0 {
					continue
				}
				got := s.successorHeuristic(used, v)
				want := s.heuristic(k+1, used|1<<uint(v))
				if got != want {
					t.Fatalf("iter %d trial %d: successorHeuristic(v=%d) = %d, full = %d\na=%v\nb=%v k=%d used=%b",
						iter, trial, v, got, want, s.a, s.b, k, used)
				}
				// heuristic clobbered the shared count scratch; rebuild the
				// base before evaluating the next sibling.
				s.prepareExpand(cur)
			}
			got := s.successorHeuristic(used, Deleted)
			want := s.heuristic(k+1, used)
			if got != want {
				t.Fatalf("iter %d trial %d: successorHeuristic(Deleted) = %d, full = %d", iter, trial, got, want)
			}
		}
		s.a, s.b = nil, nil
		s.opts = Options{}
		searcherPool.Put(s)
	}
}

// TestSuccessorHeuristicRestoresScratch pins the undo: two evaluations of
// the same successor from the same base must agree (a leaked eCntB mutation
// would skew the second).
func TestSuccessorHeuristicRestoresScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		a := randomGraph(rng, 2+rng.Intn(5), 1+rng.Intn(6))
		b := randomGraph(rng, 2+rng.Intn(5), 1+rng.Intn(6))
		s := searcherPool.Get().(*searcher)
		s.a, s.b, s.opts = a, b, Options{Threshold: NoThreshold}
		if a.NumVertices() > b.NumVertices() {
			s.a, s.b = b, a
		}
		s.intern()
		s.computeOrder()
		cur := &state{k: 0, used: 0}
		s.prepareExpand(cur)
		for v := 0; v < s.b.NumVertices(); v++ {
			first := s.successorHeuristic(0, v)
			second := s.successorHeuristic(0, v)
			if first != second {
				t.Fatalf("iter %d: successorHeuristic(v=%d) not idempotent: %d then %d", iter, v, first, second)
			}
		}
		s.a, s.b = nil, nil
		s.opts = Options{}
		searcherPool.Put(s)
	}
}
