package plan

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ChainController is the online filter-chain optimizer: it decides, pair by
// pair, how to evaluate the chain — full measurement, a single-bound probe,
// or a plain walk of the currently adopted order — and recomputes that order
// at epoch boundaries from its own accumulated per-bound tallies.
//
// The state machine per stratum (DESIGN.md §16):
//
//	warm-up   pairs 1..WarmupPairs: every pair measures the full chain
//	          (ProbeAll) to seed every bound's unconditional tallies.
//	adapted   thereafter pairs walk the adopted order and short-circuit on
//	          the first prune. A short-circuited walk only observes bounds
//	          the earlier ones failed to prune, so it must not feed the
//	          tallies; instead each bound keeps its own probe schedule: when
//	          due, it is evaluated once ahead of the walk (Next returns its
//	          position) and Recorded — an unconditional sample, since the
//	          probe runs on the pair regardless of any other bound's outcome.
//	          A bound's probe period starts at SampleEvery and doubles after
//	          every probe up to ProbeMaxGap, so settled expensive bounds cost
//	          a handful of extra evaluations instead of one per SampleEvery
//	          pairs.
//	epoch     the first pair past the next epoch boundary recomputes the
//	          candidate order (ascending effective cost, ties broken by
//	          static position then name) and adopts it only when its modeled
//	          expected cost beats the current order's by > Hysteresis.
//
// All hot-path state is atomic; the epoch recomputation takes a per-stratum
// try-lock so at most one worker pays for it while the rest keep joining.
type ChainController struct {
	cfg     Config
	names   []string
	strata  []stratum
	onEpoch func(nanos int64)
}

// Probe dispositions returned by Next alongside the adopted order.
const (
	// ProbeNone: walk the order (nil = static), short-circuiting on the
	// first prune; record nothing.
	ProbeNone = -1
	// ProbeAll: warm-up — evaluate the full chain in static order and Record
	// every bound.
	ProbeAll = -2
)

// stratum is one independent learning domain (the whole join, or one MinHash
// band-key residue class when Config.Strata > 1).
type stratum struct {
	pairs     atomic.Int64
	nextEpoch atomic.Int64
	// order is the adopted permutation of chain positions, nil while the
	// static order is still in force.
	order atomic.Pointer[[]int]
	// cost is the modeled expected cost (ns/pair) of the adopted order,
	// stored as math.Float64bits; 0 means "not yet modeled".
	cost     atomic.Uint64
	reorders atomic.Int64
	epochs   atomic.Int64
	mu       sync.Mutex // serialises epoch recomputation
	bounds   []boundTally
}

// boundTally is one bound's unconditional observation totals, fed only by
// warm-up pairs and probes.
type boundTally struct {
	evals  atomic.Int64
	prunes atomic.Int64
	nanos  atomic.Int64
	// nextProbe is the stratum pair number at or after which this bound is
	// due for a probe; gap is its current probe period (0 = not yet probed,
	// read as SampleEvery), doubling after every probe up to ProbeMaxGap.
	nextProbe atomic.Int64
	gap       atomic.Int64
}

// NewChainController builds a controller for a chain of the named bounds.
// cfg is copied with defaults applied; names must match the engine's chain
// order (names[i] is the bound at static position i).
func NewChainController(cfg Config, names []string) *ChainController {
	cfg = cfg.withDefaults()
	c := &ChainController{
		cfg:    cfg,
		names:  append([]string(nil), names...),
		strata: make([]stratum, cfg.Strata),
	}
	for i := range c.strata {
		c.strata[i].bounds = make([]boundTally, len(names))
	}
	return c
}

// SetOnEpoch installs a callback invoked with the wall-clock nanoseconds of
// each epoch recomputation (the engine feeds its epoch-seconds histogram).
// Must be set before the controller is shared across workers.
func (c *ChainController) SetOnEpoch(fn func(nanos int64)) { c.onEpoch = fn }

// Stratified reports whether callers must supply a real band key to Next and
// Record (false means any key, conventionally 0, lands in the one stratum).
func (c *ChainController) Stratified() bool { return len(c.strata) > 1 }

func (c *ChainController) stratum(key uint64) *stratum {
	if len(c.strata) == 1 {
		return &c.strata[0]
	}
	return &c.strata[key%uint64(len(c.strata))]
}

// Next books one pair into the stratum keyed by key and returns how to
// evaluate it: probe == ProbeAll means run the *full* chain in static order
// and Record every bound (warm-up); probe >= 0 means evaluate the bound at
// that static position first, Record it, then walk the returned order
// skipping it; ProbeNone means walk the order (nil = static),
// short-circuiting on the first prune, recording nothing. At most one bound
// is probed per pair — the first due one in static order.
func (c *ChainController) Next(key uint64) (order []int, probe int) {
	s := c.stratum(key)
	k := s.pairs.Add(1)
	if k <= int64(c.cfg.WarmupPairs) {
		return nil, ProbeAll
	}
	if k > s.nextEpoch.Load() {
		c.epoch(s, k)
	}
	probe = ProbeNone
	for i := range s.bounds {
		b := &s.bounds[i]
		np := b.nextProbe.Load()
		if np > k {
			continue
		}
		g := b.gap.Load()
		if g == 0 {
			g = int64(c.cfg.SampleEvery)
		}
		// The CAS claims the probe: under concurrency exactly one pair takes
		// a due bound, the rest see the advanced deadline and move on.
		if b.nextProbe.CompareAndSwap(np, k+g) {
			if ng := g * 2; ng <= int64(c.cfg.ProbeMaxGap) {
				b.gap.Store(ng)
			} else {
				b.gap.Store(int64(c.cfg.ProbeMaxGap))
			}
			probe = i
			break
		}
	}
	if p := s.order.Load(); p != nil {
		return *p, probe
	}
	return nil, probe
}

// Record books one measured bound evaluation: the bound at static position
// pos ran for nanos and did or did not prune. Only warm-up pairs and probes
// may be recorded, or the selectivities stop being unconditional.
func (c *ChainController) Record(key uint64, pos int, pruned bool, nanos int64) {
	s := c.stratum(key)
	b := &s.bounds[pos]
	b.evals.Add(1)
	if pruned {
		b.prunes.Add(1)
	}
	b.nanos.Add(nanos)
}

// epoch recomputes the stratum's order at a boundary. TryLock keeps the hot
// path wait-free: a worker that loses the race simply keeps joining with the
// current order.
func (c *ChainController) epoch(s *stratum, k int64) {
	if !s.mu.TryLock() {
		return
	}
	defer s.mu.Unlock()
	if k <= s.nextEpoch.Load() {
		return // another worker already ran this boundary
	}
	t0 := time.Now()

	n := len(s.bounds)
	sel := make([]float64, n)
	cost := make([]float64, n)
	eff := make([]float64, n)
	for i := range s.bounds {
		b := &s.bounds[i]
		evals := b.evals.Load()
		if evals > 0 {
			sel[i] = float64(b.prunes.Load()) / float64(evals)
			cost[i] = float64(b.nanos.Load()) / float64(evals)
		}
		if sel[i] > 0 {
			eff[i] = cost[i] / sel[i]
		} else {
			eff[i] = math.Inf(1)
		}
	}

	// Candidate: ascending effective cost, ties broken by static position
	// then name — the same deterministic rule core's -explain ranks use.
	cand := make([]int, n)
	for i := range cand {
		cand[i] = i
	}
	sort.SliceStable(cand, func(a, b int) bool {
		ia, ib := cand[a], cand[b]
		if eff[ia] != eff[ib] {
			return eff[ia] < eff[ib]
		}
		if ia != ib {
			return ia < ib
		}
		return c.names[ia] < c.names[ib]
	})

	cur := s.order.Load()
	curOrder := identity(n)
	if cur != nil {
		curOrder = *cur
	}
	curCost := expectedCost(curOrder, sel, cost)
	candCost := expectedCost(cand, sel, cost)
	adopt := false
	switch {
	case cur == nil && !sameOrder(cand, curOrder):
		// First adoption: the static order carries no prior investment, so
		// any modeled improvement is worth taking.
		adopt = candCost < curCost
	default:
		adopt = candCost < curCost*(1-c.cfg.Hysteresis)
	}
	if adopt && !sameOrder(cand, curOrder) {
		s.order.Store(&cand)
		s.cost.Store(math.Float64bits(candCost))
		s.reorders.Add(1)
	}

	s.epochs.Add(1)
	s.nextEpoch.Store(k + int64(c.cfg.EpochPairs))
	if c.onEpoch != nil {
		c.onEpoch(int64(time.Since(t0)))
	}
}

// expectedCost models the per-pair cost of walking the chain in the given
// order: each bound's cost is paid only by the fraction of pairs no earlier
// bound pruned.
func expectedCost(order []int, sel, cost []float64) float64 {
	pass := 1.0
	total := 0.0
	for _, i := range order {
		total += pass * cost[i]
		pass *= 1 - sel[i]
	}
	return total
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func sameOrder(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Totals sums reorder and epoch counts across strata.
func (c *ChainController) Totals() (reorders, epochs int64) {
	for i := range c.strata {
		reorders += c.strata[i].reorders.Load()
		epochs += c.strata[i].epochs.Load()
	}
	return reorders, epochs
}

// OrderNames renders the adopted order(s) as comma-joined bound names; strata
// still on the static order render as the static chain. Distinct stratum
// orders are joined with " | " (deduplicated, input order preserved).
func (c *ChainController) OrderNames() string {
	seen := make([]string, 0, len(c.strata))
	for i := range c.strata {
		var ord []int
		if p := c.strata[i].order.Load(); p != nil {
			ord = *p
		} else {
			ord = identity(len(c.names))
		}
		parts := make([]string, len(ord))
		for j, idx := range ord {
			parts[j] = c.names[idx]
		}
		s := strings.Join(parts, ",")
		dup := false
		for _, prev := range seen {
			if prev == s {
				dup = true
				break
			}
		}
		if !dup {
			seen = append(seen, s)
		}
	}
	return strings.Join(seen, " | ")
}
