package plan

import (
	"math"
	"math/bits"

	"simjoin/internal/filter"
	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

// estimateSample caps how many uncertain graphs EstimateJoin probes; beyond
// it the resident side is sampled at an even stride.
const estimateSample = 256

// Estimator is the label summary of the certain (query) side, folded from
// the signatures the join computes anyway: per-label query counts, a size
// histogram keyed the same way the size index buckets (|V|+|E|), and the
// wildcard-query count. It answers "how many queries can possibly survive
// the size and label prescreens against this uncertain graph?" in O(tau +
// distinct labels of g) without touching a single pair.
type Estimator struct {
	total  int
	wilds  int // queries with at least one wildcard vertex (match any label)
	bySize map[int]int
	// labels counts queries *containing* each label; reps attributes each
	// query to exactly one label (its smallest concrete id), so rep sums
	// never multi-count a query the way plain union bounds do.
	labels  map[graph.LabelID]int
	reps    map[graph.LabelID]int
	scratch graph.LabelSet
}

// NewEstimator folds the query-side signatures into a label summary.
func NewEstimator(qsigs []*filter.QSig) *Estimator {
	e := &Estimator{
		total:  len(qsigs),
		bySize: make(map[int]int),
		labels: make(map[graph.LabelID]int),
		reps:   make(map[graph.LabelID]int),
	}
	for _, qs := range qsigs {
		e.bySize[qs.NumV+qs.NumE]++
		if qs.VWilds > 0 {
			e.wilds++
		}
		// Distinct labels per query (VSet, not the VLabels multiset), so a
		// query contributes at most once per label.
		first := true
		e.forEachLabel(&qs.VSet, func(id graph.LabelID) {
			e.labels[id]++
			if first {
				e.reps[id]++ // forEachLabel iterates ascending: the first id is the query's minimum
				first = false
			}
		})
	}
	return e
}

// forEachLabel iterates the distinct label ids of a bitset.
func (e *Estimator) forEachLabel(set *graph.LabelSet, fn func(graph.LabelID)) {
	for wi, w := range set.Words() {
		for ; w != 0; w &= w - 1 {
			fn(graph.LabelID(wi*64 + bits.TrailingZeros64(w)))
		}
	}
}

// Candidates estimates how many queries survive the size window and label
// overlap prescreens against one uncertain graph: the size-window count,
// scaled by the fraction of queries sharing at least one concrete label with
// g (or wildcard queries, which overlap everything). A graph with wildcard
// candidates overlaps every query, so only the size window cuts.
func (e *Estimator) Candidates(gSize int, gSet *graph.LabelSet, gWilds, tau int) int64 {
	if e.total == 0 {
		return 0
	}
	sizeCount := 0
	for s := gSize - tau; s <= gSize+tau; s++ {
		sizeCount += e.bySize[s]
	}
	reach := e.total
	if gWilds == 0 {
		// How many queries share a label with g? Three summaries bracket it:
		// the union sum Σ count(l) is an upper bound (it multi-counts
		// queries sharing several of g's labels); the largest single count
		// max count(l) is a true lower bound (every query carrying that one
		// label overlaps); the representative sum Σ rep(l) never
		// multi-counts and is exact whenever g's label set covers each
		// overlapping query's minimum label (e.g. disjoint label families).
		// The estimate takes the sharper of the two lower summaries, capped
		// by the union bound.
		var sum, best, rep int
		e.forEachLabel(gSet, func(id graph.LabelID) {
			c := e.labels[id]
			sum += c
			if c > best {
				best = c
			}
			rep += e.reps[id]
		})
		r := rep
		if best > r {
			r = best
		}
		r += e.wilds
		if upper := e.wilds + sum; r > upper {
			r = upper
		}
		if r < reach {
			reach = r
		}
	}
	return int64(math.Round(float64(sizeCount) * float64(reach) / float64(e.total)))
}

// EstimateJoin predicts the join's workload: the exact cross-product size and
// the estimated candidate count after size/label prescreens, extrapolated
// from an evenly-strided sample of the uncertain side.
func EstimateJoin(e *Estimator, u []*ugraph.Graph, tau int) (estPairs, estCands int64) {
	estPairs = int64(e.total) * int64(len(u))
	if estPairs == 0 {
		return estPairs, 0
	}
	step := 1
	if len(u) > estimateSample {
		step = len(u) / estimateSample
	}
	var sum float64
	n := 0
	for i := 0; i < len(u); i += step {
		g := u[i]
		wilds := filter.UnionConcreteLabels(g, &e.scratch)
		sum += float64(e.Candidates(g.Size(), &e.scratch, wilds, tau))
		n++
	}
	estCands = int64(math.Round(sum / float64(n) * float64(len(u))))
	if estCands > estPairs {
		estCands = estPairs
	}
	return estPairs, estCands
}
