package plan

import (
	"strings"
	"sync"
	"testing"

	"simjoin/internal/filter"
	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

// feedPairs drives the controller like the engine does: every pair asks
// Next; warm-up pairs record every bound's (pruned, nanos) outcome, probed
// pairs record just the probed bound's.
func feedPairs(c *ChainController, n int, key uint64, outcome func(pos int) (bool, int64)) {
	for p := 0; p < n; p++ {
		_, probe := c.Next(key)
		switch {
		case probe == ProbeAll:
			for pos := range c.names {
				pruned, nanos := outcome(pos)
				c.Record(key, pos, pruned, nanos)
			}
		case probe >= 0:
			pruned, nanos := outcome(probe)
			c.Record(key, probe, pruned, nanos)
		}
	}
}

func TestChainControllerWarmupMeasuresEverything(t *testing.T) {
	c := NewChainController(Config{WarmupPairs: 10, EpochPairs: 100, SampleEvery: 4}, []string{"a", "b"})
	for i := 0; i < 10; i++ {
		order, probe := c.Next(0)
		if probe != ProbeAll || order != nil {
			t.Fatalf("pair %d: want full-chain measurement during warm-up, got order=%v probe=%v", i, order, probe)
		}
	}
	if _, probe := c.Next(0); probe == ProbeAll {
		t.Fatal("pair 11: warm-up must end after WarmupPairs pairs")
	}
}

func TestChainControllerReordersByEffectiveCost(t *testing.T) {
	// Bound 0 is expensive and never prunes; bound 1 is cheap and always
	// prunes. The first epoch must adopt [1, 0].
	c := NewChainController(Config{WarmupPairs: 8, EpochPairs: 16, SampleEvery: 4, Hysteresis: 0.1}, []string{"slow", "fast"})
	feedPairs(c, 64, 0, func(pos int) (bool, int64) {
		if pos == 0 {
			return false, 1000
		}
		return true, 10
	})
	var order []int
	for i := 0; i < 16 && order == nil; i++ {
		order, _ = c.Next(0)
	}
	if order == nil || order[0] != 1 || order[1] != 0 {
		t.Fatalf("want adopted order [1 0], got %v", order)
	}
	reorders, epochs := c.Totals()
	if reorders < 1 || epochs < 1 {
		t.Fatalf("want >=1 reorder and epoch, got reorders=%d epochs=%d", reorders, epochs)
	}
	if got := c.OrderNames(); got != "fast,slow" {
		t.Fatalf("OrderNames = %q, want %q", got, "fast,slow")
	}
}

func TestChainControllerKeepsGoodStaticOrder(t *testing.T) {
	// The static order is already optimal: cheap pruning bound first. No
	// reorder may happen.
	c := NewChainController(Config{WarmupPairs: 8, EpochPairs: 16, SampleEvery: 4}, []string{"fast", "slow"})
	feedPairs(c, 128, 0, func(pos int) (bool, int64) {
		if pos == 0 {
			return true, 10
		}
		return false, 1000
	})
	if reorders, _ := c.Totals(); reorders != 0 {
		t.Fatalf("static order was optimal; want 0 reorders, got %d", reorders)
	}
	if got := c.OrderNames(); got != "fast,slow" {
		t.Fatalf("OrderNames = %q, want static %q", got, "fast,slow")
	}
}

func TestChainControllerHysteresisBlocksMarginalFlips(t *testing.T) {
	// Both bounds prune identically; costs differ by ~5%, under the 50%
	// hysteresis margin — the order must not thrash away from static.
	c := NewChainController(Config{WarmupPairs: 8, EpochPairs: 16, SampleEvery: 2, Hysteresis: 0.5}, []string{"a", "b"})
	feedPairs(c, 256, 0, func(pos int) (bool, int64) {
		if pos == 0 {
			return false, 105
		}
		return false, 100
	})
	if reorders, _ := c.Totals(); reorders != 0 {
		t.Fatalf("marginal improvement under hysteresis; want 0 reorders, got %d", reorders)
	}
}

func TestChainControllerProbesKeepRecording(t *testing.T) {
	cfg := Config{WarmupPairs: 4, EpochPairs: 8, SampleEvery: 4, ProbeMaxGap: 16}
	c := NewChainController(cfg, []string{"a", "b"})
	probes := make([]int, len(c.names))
	for i := 0; i < 200; i++ {
		_, probe := c.Next(0)
		switch {
		case probe == ProbeAll:
			for pos := range c.names {
				c.Record(0, pos, false, 1)
			}
		case probe >= 0:
			probes[probe]++
			c.Record(0, probe, false, 1)
		}
	}
	// Each bound's probe period starts at SampleEvery=4 and doubles to the
	// 16-pair cap, so over 196 post-warm-up pairs every bound keeps being
	// re-measured: 4+8+16+16+… ≥ 13 probes each.
	for pos, n := range probes {
		if n < 10 {
			t.Fatalf("bound %d probed %d times over 200 pairs, want >= 10 (probes: %v)", pos, n, probes)
		}
	}
	// The backoff must also bite: dense every-SampleEvery sampling would be
	// 49 probes per bound.
	for pos, n := range probes {
		if n >= 49 {
			t.Fatalf("bound %d probed %d times, want backoff below the dense 1-in-%d rate", pos, n, cfg.SampleEvery)
		}
	}
}

func TestChainControllerStratified(t *testing.T) {
	// Two strata with opposite optimal orders must learn independently.
	c := NewChainController(Config{WarmupPairs: 8, EpochPairs: 16, SampleEvery: 4, Strata: 2}, []string{"a", "b"})
	if !c.Stratified() {
		t.Fatal("want Stratified() with Strata=2")
	}
	feedPairs(c, 64, 0, func(pos int) (bool, int64) { // stratum 0: b first
		if pos == 0 {
			return false, 1000
		}
		return true, 10
	})
	feedPairs(c, 64, 1, func(pos int) (bool, int64) { // stratum 1: a first
		if pos == 0 {
			return true, 10
		}
		return false, 1000
	})
	names := c.OrderNames()
	if !strings.Contains(names, "b,a") || !strings.Contains(names, "a,b") {
		t.Fatalf("want both stratum orders in %q", names)
	}
}

func TestChainControllerConcurrent(t *testing.T) {
	// Hammer Next/Record from several goroutines; the race detector is the
	// real assertion, plus totals must stay consistent.
	c := NewChainController(Config{WarmupPairs: 16, EpochPairs: 32, SampleEvery: 4, Strata: 2}, []string{"a", "b", "c"})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := seed + uint64(i)
				order, probe := c.Next(key)
				switch {
				case probe == ProbeAll:
					for pos := range c.names {
						c.Record(key, pos, pos == 0, int64(10*(pos+1)))
					}
				case probe >= 0:
					c.Record(key, probe, probe == 0, int64(10*(probe+1)))
				}
				if probe != ProbeAll && order != nil && len(order) != 3 {
					t.Errorf("bad order length %d", len(order))
					return
				}
			}
		}(uint64(w))
	}
	wg.Wait()
	if _, epochs := c.Totals(); epochs == 0 {
		t.Fatal("want at least one epoch across 2000 pairs")
	}
}

func TestDecideTable(t *testing.T) {
	cfg := Config{ShardPairs: 1000, ShardCount: 4, CrossRatio: 0.5, BlockRatio: 0.2, BlockMinGraphs: 10}
	cases := []struct {
		pairs, cands int64
		numU         int
		want         Source
	}{
		{2000, 100, 20, SourceSharded}, // cross product over threshold
		{500, 400, 20, SourceCross},    // ratio 0.8: index skips too little
		{500, 50, 20, SourceBlock},     // ratio 0.1 over a large side
		{500, 50, 5, SourceIndexed},    // sparse but tiny side: no blocks
		{500, 150, 20, SourceIndexed},  // mid ratio
		{0, 0, 0, SourceIndexed},       // empty join: any choice is fine
	}
	for _, tc := range cases {
		d := cfg.Decide(tc.pairs, tc.cands, tc.numU)
		if d.Choice != tc.want {
			t.Errorf("Decide(%d, %d, %d) = %s, want %s (%s)", tc.pairs, tc.cands, tc.numU, d.Choice, tc.want, d.Reason)
		}
		if d.Reason == "" {
			t.Errorf("Decide(%d, %d, %d): empty reason", tc.pairs, tc.cands, tc.numU)
		}
	}
	if d := cfg.Decide(2000, 100, 20); d.Shards != 4 {
		t.Errorf("sharded decision carries Shards=%d, want 4", d.Shards)
	}
}

func TestEstimatorCandidates(t *testing.T) {
	// Two disjoint label families; the estimator must predict that a graph
	// carrying only family-A labels reaches only the family-A queries.
	mk := func(labels ...string) *graph.Graph {
		g := graph.New(len(labels))
		for _, l := range labels {
			g.AddVertex(l)
		}
		return g
	}
	var d []*graph.Graph
	for i := 0; i < 4; i++ {
		d = append(d, mk("A1", "A2"))
	}
	for i := 0; i < 4; i++ {
		d = append(d, mk("B1", "B2"))
	}
	e := NewEstimator(filter.NewQSigs(d))

	var set graph.LabelSet
	probe := mk("A1", "A2")
	for _, id := range probe.VertexLabelIDs() {
		set.Add(id)
	}
	// All 8 queries have size 2 (2 vertices, 0 edges); the A-side graph can
	// only reach the 4 A-family queries.
	got := e.Candidates(2, &set, 0, 0)
	if got != 4 {
		t.Fatalf("Candidates = %d, want 4 (the A family)", got)
	}
	// A wildcard-bearing graph reaches everything in the size window.
	if got := e.Candidates(2, &set, 1, 0); got != 8 {
		t.Fatalf("wildcard graph Candidates = %d, want 8", got)
	}
	// Size window excludes everything.
	if got := e.Candidates(50, &set, 1, 0); got != 0 {
		t.Fatalf("out-of-window Candidates = %d, want 0", got)
	}
}

func TestEstimateJoinExtrapolates(t *testing.T) {
	mk := func(labels ...string) *graph.Graph {
		g := graph.New(len(labels))
		for _, l := range labels {
			g.AddVertex(l)
		}
		return g
	}
	d := []*graph.Graph{mk("X", "Y"), mk("X", "Y"), mk("Z", "W")}
	var u []*ugraph.Graph
	for i := 0; i < 6; i++ {
		u = append(u, ugraph.FromCertain(mk("X", "Y")))
	}
	pairs, cands := EstimateJoin(NewEstimator(filter.NewQSigs(d)), u, 0)
	if pairs != 18 {
		t.Fatalf("estPairs = %d, want 18", pairs)
	}
	// Each uncertain graph reaches the two X/Y queries: 2 × 6 = 12.
	if cands != 12 {
		t.Fatalf("estCands = %d, want 12", cands)
	}
}

func TestReportAccumulates(t *testing.T) {
	var r *Report
	r.NoteChain("a,b", 1, 2) // nil-safe
	r = &Report{}
	r.NoteChain("b,a", 1, 2)
	r.NoteChain("b,a", 2, 3)
	r.NoteChain("a,b", 0, 1)
	orders, reorders, epochs := r.Chain()
	if len(orders) != 2 || reorders != 3 || epochs != 6 {
		t.Fatalf("Chain() = %v, %d, %d; want 2 orders, 3 reorders, 6 epochs", orders, reorders, epochs)
	}
	r.NoteDecision(Decision{Choice: SourceIndexed, Reason: "test"})
	if d := r.Decision(); d == nil || d.Choice != SourceIndexed {
		t.Fatalf("Decision() = %+v", d)
	}
	if s := r.String(); !strings.Contains(s, "source=indexed") {
		t.Fatalf("String() = %q", s)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.ProbeMaxGap < c.SampleEvery {
		t.Fatalf("ProbeMaxGap %d below SampleEvery %d", c.ProbeMaxGap, c.SampleEvery)
	}
	if c.WarmupPairs <= 0 || c.EpochPairs <= 0 || c.SampleEvery <= 0 || c.Hysteresis <= 0 ||
		c.Strata != 1 || c.ShardPairs <= 0 || c.ShardCount <= 0 || c.CrossRatio <= 0 ||
		c.BlockRatio <= 0 || c.BlockMinGraphs <= 0 {
		t.Fatalf("withDefaults left a zero knob: %+v", c)
	}
	if a := Auto(); !a.Chain || !a.Source || a.Report == nil {
		t.Fatalf("Auto() = %+v", a)
	}
	if a := AutoChain(); !a.Chain || a.Source {
		t.Fatalf("AutoChain() = %+v", a)
	}
	if a := AutoSource(); a.Chain || !a.Source {
		t.Fatalf("AutoSource() = %+v", a)
	}
}
