// Package plan closes the loop on the join's measured filter costs: instead
// of only *reporting* the per-bound cost model (core's -explain table), it
// feeds the same observations back into the running join.
//
// Two planners live here, both optional and both off by default:
//
//   - The adaptive chain (ChainController) reorders the filter chain online.
//     A warm-up epoch evaluates the full chain on every pair to seed the
//     per-bound selectivity/cost estimates; after that the estimates are kept
//     unconditional and fresh by single-bound probes — each pair evaluates at
//     most one bound ahead of the adopted walk, on a per-bound schedule whose
//     period doubles after every probe (so an expensive bound is measured a
//     handful of times, not on every Nth pair) — while the walk itself runs
//     the bounds in ascending effective-cost order, short-circuiting on the
//     first prune. Every epoch the order is recomputed, and adopted only when
//     the modeled expected chain cost improves by more than the hysteresis
//     margin — a noisy epoch cannot thrash the order. Every bound is sound,
//     so any order admits exactly the same survivor set; only which bound
//     gets credit for a prune moves.
//
//   - The source planner (Estimator + Config.Decide) predicts the candidate
//     workload from a label summary of the query side — per-label graph
//     counts plus a size histogram folded from the existing dictionary-coded
//     signatures — and picks the candidate source (cross-product, indexed,
//     block-screened, or sharded) instead of making the caller guess.
//
// The package deliberately depends only on the signature layer (filter,
// graph, ugraph); internal/core imports it, not the other way around.
package plan

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Config enables and tunes the planners. The zero value disables both; the
// Auto* constructors return the standard "turn it on" configurations. All
// numeric knobs treat <= 0 as "use the default".
type Config struct {
	// Chain enables online filter-chain reordering.
	Chain bool
	// Source enables cardinality-aware candidate-source selection.
	Source bool

	// WarmupPairs is the length of the warm-up epoch: the first WarmupPairs
	// pairs (per stratum) evaluate the full chain to seed the cost model.
	// Keeping it short matters — warm-up pays every bound on every pair, the
	// expensive ones included; the probe schedule keeps refining the
	// estimates afterwards. Default 32.
	WarmupPairs int
	// EpochPairs is how many pairs pass between order recomputations after
	// warm-up. Default 4096.
	EpochPairs int
	// SampleEvery is the initial per-bound probe period after warm-up: a due
	// bound is evaluated ahead of the adopted walk on one pair (keeping its
	// selectivity/cost estimate unconditional), and its period then doubles
	// up to ProbeMaxGap. Default 16.
	SampleEvery int
	// ProbeMaxGap caps the per-bound probe period, so even a long-settled
	// bound is re-measured at least once per ProbeMaxGap pairs and drift
	// reaches the next epoch recomputation. Default 1024.
	ProbeMaxGap int
	// Hysteresis is the fractional improvement in modeled expected chain
	// cost a candidate order must show before it replaces the current one.
	// Default 0.15.
	Hysteresis float64
	// Strata partitions pairs by the uncertain graph's MinHash band key and
	// learns an independent order per stratum. Default 1 (no stratification).
	Strata int

	// ShardPairs is the cross-product size at or above which the source
	// planner picks the sharded pipelines. Default 1<<22.
	ShardPairs int64
	// ShardCount is how many shards the planner asks for when it picks the
	// sharded source. Default min(8, GOMAXPROCS).
	ShardCount int
	// CrossRatio: when the estimated candidate ratio (candidates / pairs) is
	// at or above it, index probes would skip almost nothing and the plain
	// cross product wins. Default 0.5.
	CrossRatio float64
	// BlockRatio and BlockMinGraphs gate the block-screened source: a low
	// estimated ratio over a large resident side is where whole-block
	// screening pays. Defaults 0.2 and 512.
	BlockRatio     float64
	BlockMinGraphs int

	// Report, when set, collects what the planners decided (adopted orders,
	// reorder counts, the source decision) for -explain style output.
	Report *Report
}

// Auto returns the standard fully-enabled planner configuration.
func Auto() *Config { return &Config{Chain: true, Source: true, Report: &Report{}} }

// AutoChain enables only the adaptive filter chain.
func AutoChain() *Config { return &Config{Chain: true, Report: &Report{}} }

// AutoSource enables only cardinality-aware source selection.
func AutoSource() *Config { return &Config{Source: true, Report: &Report{}} }

// withDefaults returns a copy with every unset knob at its default.
func (c Config) withDefaults() Config {
	if c.WarmupPairs <= 0 {
		c.WarmupPairs = 32
	}
	if c.EpochPairs <= 0 {
		c.EpochPairs = 4096
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 16
	}
	if c.ProbeMaxGap < c.SampleEvery {
		c.ProbeMaxGap = 1024
		if c.ProbeMaxGap < c.SampleEvery {
			c.ProbeMaxGap = c.SampleEvery
		}
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 0.15
	}
	if c.Strata <= 0 {
		c.Strata = 1
	}
	if c.ShardPairs <= 0 {
		c.ShardPairs = 1 << 22
	}
	if c.ShardCount <= 0 {
		c.ShardCount = runtime.GOMAXPROCS(0)
		if c.ShardCount > 8 {
			c.ShardCount = 8
		}
	}
	if c.CrossRatio <= 0 {
		c.CrossRatio = 0.5
	}
	if c.BlockRatio <= 0 {
		c.BlockRatio = 0.2
	}
	if c.BlockMinGraphs <= 0 {
		c.BlockMinGraphs = 512
	}
	return c
}

// Source is the planner's candidate-source choice.
type Source string

const (
	SourceCross   Source = "cross"
	SourceIndexed Source = "indexed"
	SourceBlock   Source = "block"
	SourceSharded Source = "sharded"
)

// Decision is one source-planning outcome: the chosen source plus the
// estimates that drove it, kept so -explain can print estimate-vs-actual.
type Decision struct {
	Choice Source
	// EstPairs is the cross-product size |D|·|U|.
	EstPairs int64
	// EstCandidates is the predicted number of pairs surviving the size and
	// label prescreens (the work an index or block screen cannot avoid).
	EstCandidates int64
	// Ratio is EstCandidates / EstPairs.
	Ratio float64
	// Shards and BlockSize carry the chosen source's sizing, when relevant.
	Shards    int
	BlockSize int
	// Reason is a one-line human explanation of the choice.
	Reason string
}

// Decide maps the estimator's prediction onto a candidate source. The
// decision table, in order:
//
//	est. pairs >= ShardPairs                      -> sharded (the cross
//	    product itself is the bottleneck; partition it)
//	ratio >= CrossRatio                           -> cross (probing an index
//	    would skip too little to pay for itself)
//	ratio <= BlockRatio and |U| >= BlockMinGraphs -> block-screened (sparse
//	    survivors over a large resident side: screen whole blocks)
//	otherwise                                     -> indexed
func (c *Config) Decide(estPairs, estCands int64, numU int) Decision {
	cfg := c.withDefaults()
	ratio := 0.0
	if estPairs > 0 {
		ratio = float64(estCands) / float64(estPairs)
	}
	d := Decision{EstPairs: estPairs, EstCandidates: estCands, Ratio: ratio}
	switch {
	case estPairs >= cfg.ShardPairs:
		d.Choice = SourceSharded
		d.Shards = cfg.ShardCount
		d.Reason = fmt.Sprintf("%d pairs >= shard threshold %d", estPairs, cfg.ShardPairs)
	case ratio >= cfg.CrossRatio:
		d.Choice = SourceCross
		d.Reason = fmt.Sprintf("est. candidate ratio %.2f >= %.2f: index would skip too little", ratio, cfg.CrossRatio)
	case ratio <= cfg.BlockRatio && numU >= cfg.BlockMinGraphs:
		d.Choice = SourceBlock
		d.Reason = fmt.Sprintf("est. candidate ratio %.2f <= %.2f over %d graphs: block screening pays", ratio, cfg.BlockRatio, numU)
	default:
		d.Choice = SourceIndexed
		d.Reason = fmt.Sprintf("est. candidate ratio %.2f: size/label index probes pay", ratio)
	}
	return d
}

// Report accumulates what the planners did across one or more engine runs
// (sharded joins run one engine per shard against the same Report). All
// methods are safe on a nil receiver and under concurrent use.
type Report struct {
	mu       sync.Mutex
	orders   []string
	reorders int64
	epochs   int64
	decision *Decision
}

// NoteChain records one engine's final adopted order and its reorder/epoch
// totals. Duplicate order strings collapse.
func (r *Report) NoteChain(order string, reorders, epochs int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reorders += reorders
	r.epochs += epochs
	for _, o := range r.orders {
		if o == order {
			return
		}
	}
	r.orders = append(r.orders, order)
}

// NoteDecision records the source planner's decision.
func (r *Report) NoteDecision(d Decision) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.decision = &d
	r.mu.Unlock()
}

// Chain returns the adopted orders (sorted, deduplicated) and the summed
// reorder/epoch counts.
func (r *Report) Chain() (orders []string, reorders, epochs int64) {
	if r == nil {
		return nil, 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	orders = append([]string(nil), r.orders...)
	sort.Strings(orders)
	return orders, r.reorders, r.epochs
}

// Decision returns a copy of the recorded source decision, or nil.
func (r *Report) Decision() *Decision {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.decision == nil {
		return nil
	}
	d := *r.decision
	return &d
}

// String renders the report on one line (used by logs and tests).
func (r *Report) String() string {
	if r == nil {
		return "plan: off"
	}
	orders, reorders, epochs := r.Chain()
	var b strings.Builder
	fmt.Fprintf(&b, "plan: epochs=%d reorders=%d", epochs, reorders)
	if len(orders) > 0 {
		fmt.Fprintf(&b, " orders=[%s]", strings.Join(orders, " | "))
	}
	if d := r.Decision(); d != nil {
		fmt.Fprintf(&b, " source=%s", d.Choice)
	}
	return b.String()
}
