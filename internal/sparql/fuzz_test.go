package sparql

import "testing"

// FuzzParseQuery exercises the parser with hostile inputs; without -fuzz the seed
// corpus runs as regular tests. Invariants: no panic, and anything that
// parses must re-parse from its own String() to an equivalent query.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"",
		"SELECT",
		"SELECT ?x WHERE { ?x type Artist . }",
		"SELECT DISTINCT ?x ?y WHERE { ?x p ?y } LIMIT 10",
		"select * where { <a> <b> \"lit with space\" }",
		"SELECT ?x WHERE { ?x type Artist",
		"SELECT ?x WHERE { } trailing",
		"SELECT ?x WHERE { ?x <unterminated",
		"SELECT ?x WHERE { ?x \"pred\" o }",
		"SELECT ?x WHERE { ?x p o } LIMIT -3",
		"SELECT ?x WHERE { ?x p o . . . }",
		"SELECT ?x { a b c . d e f . g h i }",
		"{}{}{}... SELECT",
		"SELECT \x00 WHERE { a b c }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", q.String(), input, err)
		}
		if q2.String() != q.String() {
			t.Fatalf("unstable round trip: %q -> %q", q.String(), q2.String())
		}
		if len(q.Patterns) == 0 {
			t.Fatalf("parsed query with no patterns from %q", input)
		}
	})
}
