package sparql

import (
	"fmt"

	"simjoin/internal/graph"
)

// VertexRole classifies query-graph vertices for template generation: the
// slots of a template are exactly the Entity and Class vertices (§2.1
// Step 3), while variables stay variables.
type VertexRole int

const (
	// RoleVariable marks a SPARQL variable vertex (wildcard label).
	RoleVariable VertexRole = iota
	// RoleClass marks a vertex used as the object of a type edge.
	RoleClass
	// RoleEntity marks any other IRI or literal vertex.
	RoleEntity
)

// TypePredicate is the predicate treated as rdf:type when classifying
// vertices.
const TypePredicate = "type"

// QueryGraph is the certain labeled graph built from a SPARQL basic graph
// pattern: one vertex per distinct subject/object term (variables keep their
// wildcard '?' labels) and one directed labeled edge per triple pattern.
type QueryGraph struct {
	// Graph is the joinable certain graph.
	Graph *graph.Graph
	// Terms maps vertex index to the originating term.
	Terms []Term
	// Roles classifies each vertex.
	Roles []VertexRole
	// Query is the source query.
	Query *Query
}

// BuildQueryGraph translates a parsed query into its graph form. Variable
// predicates become wildcard edge labels. An error is returned if a subject
// or object term repeats with conflicting kinds.
func BuildQueryGraph(q *Query) (*QueryGraph, error) {
	qg := &QueryGraph{Graph: graph.New(len(q.Patterns) + 1), Query: q}
	index := make(map[string]int)

	vertex := func(t Term) (int, error) {
		key := t.String()
		if v, ok := index[key]; ok {
			if qg.Terms[v].Kind != t.Kind {
				return 0, fmt.Errorf("sparql: term %q used with conflicting kinds", key)
			}
			return v, nil
		}
		label := t.Value
		v := qg.Graph.AddVertex(label)
		index[key] = v
		qg.Terms = append(qg.Terms, t)
		role := RoleEntity
		if t.IsVar() {
			role = RoleVariable
		}
		qg.Roles = append(qg.Roles, role)
		return v, nil
	}

	for _, tp := range q.Patterns {
		s, err := vertex(tp.S)
		if err != nil {
			return nil, err
		}
		o, err := vertex(tp.O)
		if err != nil {
			return nil, err
		}
		if s == o {
			return nil, fmt.Errorf("sparql: self-referential pattern %q unsupported", tp.String())
		}
		label := tp.P.Value
		if err := qg.Graph.AddEdge(s, o, label); err != nil {
			return nil, fmt.Errorf("sparql: %w (duplicate pattern %q?)", err, tp.String())
		}
		if tp.P.Kind == IRI && tp.P.Value == TypePredicate && !tp.O.IsVar() {
			qg.Roles[o] = RoleClass
		}
	}
	return qg, nil
}

// MustBuildQueryGraph is BuildQueryGraph that panics on error.
func MustBuildQueryGraph(q *Query) *QueryGraph {
	qg, err := BuildQueryGraph(q)
	if err != nil {
		panic(err)
	}
	return qg
}

// ParseToGraph parses a query string and builds its query graph in one step.
func ParseToGraph(input string) (*QueryGraph, error) {
	q, err := Parse(input)
	if err != nil {
		return nil, err
	}
	return BuildQueryGraph(q)
}

// RelationCount returns the number of triple patterns excluding type
// constraints — the paper's "number of relations k" of Fig. 17.
func (qg *QueryGraph) RelationCount() int {
	k := 0
	for _, tp := range qg.Query.Patterns {
		if tp.P.Kind == IRI && tp.P.Value == TypePredicate {
			continue
		}
		k++
	}
	return k
}
