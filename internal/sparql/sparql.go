// Package sparql implements the SPARQL subset the paper works with: SELECT
// queries over OPT-free basic graph patterns (footnote 3). It provides a
// parser, an execution engine over the rdf.Store substrate, and the
// translation of a query into the certain labeled graph joined by SimJ
// (§2.1 Step 2, Fig. 3).
package sparql

import (
	"fmt"
	"strings"
)

// TermKind distinguishes the three term categories of a pattern.
type TermKind int

const (
	// Var is a SPARQL variable (?name).
	Var TermKind = iota
	// IRI is a resource identifier, stored by its local name.
	IRI
	// Literal is a quoted literal value.
	Literal
)

// Term is one position of a triple pattern.
type Term struct {
	Kind  TermKind
	Value string // without '?' sigil stripped: variables keep it ("?x")
}

// String renders the term in query syntax.
func (t Term) String() string {
	switch t.Kind {
	case Var:
		return t.Value
	case Literal:
		return `"` + t.Value + `"`
	default:
		// A local name holding tokenizer delimiters (possible when it was
		// written <bracketed>) must render bracketed again or it would
		// re-tokenize as several terms.
		if strings.ContainsAny(t.Value, " \t\n\r{}.\"<") {
			return "<" + t.Value + ">"
		}
		return t.Value
	}
}

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Kind == Var }

// TriplePattern is one basic graph pattern statement.
type TriplePattern struct {
	S, P, O Term
}

// String renders the pattern in query syntax.
func (tp TriplePattern) String() string {
	return tp.S.String() + " " + tp.P.String() + " " + tp.O.String() + " ."
}

// Query is a parsed SELECT query over a basic graph pattern.
type Query struct {
	// Vars lists the projected variables in declaration order; a single "*"
	// entry means all variables.
	Vars []string
	// Patterns is the WHERE clause's basic graph pattern.
	Patterns []TriplePattern
	// Distinct deduplicates solutions (SELECT DISTINCT).
	Distinct bool
	// Limit caps the number of solutions; 0 means unlimited.
	Limit int
}

// String re-serialises the query.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	b.WriteString(strings.Join(q.Vars, " "))
	b.WriteString(" WHERE { ")
	for _, p := range q.Patterns {
		b.WriteString(p.String())
		b.WriteString(" ")
	}
	b.WriteString("}")
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}

// Variables returns the distinct variables mentioned anywhere in the
// patterns, in first-appearance order.
func (q *Query) Variables() []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range q.Patterns {
		for _, t := range []Term{p.S, p.P, p.O} {
			if t.IsVar() && !seen[t.Value] {
				seen[t.Value] = true
				out = append(out, t.Value)
			}
		}
	}
	return out
}

// Parse parses the supported SPARQL subset:
//
//	SELECT ?x ?y WHERE { ?x type Artist . ?x graduatedFrom <Harvard_University> . }
//
// Terms may be bare local names, <bracketed> IRIs, "quoted" literals, or
// ?variables. Statements are separated by '.'; the final '.' is optional.
// Keywords are case-insensitive.
func Parse(input string) (*Query, error) {
	toks, err := tokenize(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseQuery()
}

// MustParse is Parse that panics on error, for fixed queries in tests and
// generators.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type token struct {
	text    string
	literal bool // was a "quoted" literal
}

func tokenize(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '{' || c == '}' || c == '.':
			toks = append(toks, token{text: string(c)})
			i++
		case c == '<':
			end := strings.IndexByte(input[i:], '>')
			if end < 0 {
				return nil, fmt.Errorf("sparql: unterminated IRI at offset %d", i)
			}
			if end == 1 {
				return nil, fmt.Errorf("sparql: empty IRI at offset %d", i)
			}
			toks = append(toks, token{text: input[i+1 : i+end]})
			i += end + 1
		case c == '"':
			end := strings.IndexByte(input[i+1:], '"')
			if end < 0 {
				return nil, fmt.Errorf("sparql: unterminated literal at offset %d", i)
			}
			toks = append(toks, token{text: input[i+1 : i+1+end], literal: true})
			i += end + 2
		default:
			// A bare word also stops at '"' and '<': they open literal/IRI
			// tokens, and letting them ride inside a bare word would produce
			// terms Term.String cannot re-serialise (a bracket-rendered value
			// holding '>' cuts the re-parse short at the first '>').
			j := i
			for j < len(input) && !strings.ContainsRune(" \t\n\r{}.\"<", rune(input[j])) {
				j++
			}
			toks = append(toks, token{text: input[i:j]})
			i = j
		}
	}
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() (token, bool) {
	if p.pos >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *parser) next() (token, bool) {
	t, ok := p.peek()
	if ok {
		p.pos++
	}
	return t, ok
}

func (p *parser) expectKeyword(kw string) error {
	t, ok := p.next()
	if !ok || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("sparql: expected %q, got %q", kw, t.text)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	if t, ok := p.peek(); ok && strings.EqualFold(t.text, "DISTINCT") {
		q.Distinct = true
		p.pos++
	}
	for {
		t, ok := p.peek()
		if !ok {
			return nil, fmt.Errorf("sparql: unexpected end of query after SELECT")
		}
		if strings.EqualFold(t.text, "WHERE") {
			p.pos++
			break
		}
		if t.text == "{" {
			break // WHERE keyword omitted
		}
		if t.text != "*" && !strings.HasPrefix(t.text, "?") {
			return nil, fmt.Errorf("sparql: bad projection %q", t.text)
		}
		q.Vars = append(q.Vars, t.text)
		p.pos++
	}
	if len(q.Vars) == 0 {
		return nil, fmt.Errorf("sparql: no projected variables")
	}
	if t, ok := p.next(); !ok || t.text != "{" {
		return nil, fmt.Errorf("sparql: expected '{', got %q", t.text)
	}
	for {
		t, ok := p.peek()
		if !ok {
			return nil, fmt.Errorf("sparql: unterminated WHERE clause")
		}
		if t.text == "}" {
			p.pos++
			break
		}
		tp, err := p.parseTriple()
		if err != nil {
			return nil, err
		}
		q.Patterns = append(q.Patterns, tp)
		if t, ok := p.peek(); ok && t.text == "." {
			p.pos++
		}
	}
	if len(q.Patterns) == 0 {
		return nil, fmt.Errorf("sparql: empty basic graph pattern")
	}
	if t, ok := p.peek(); ok && strings.EqualFold(t.text, "LIMIT") {
		p.pos++
		lt, ok := p.next()
		if !ok {
			return nil, fmt.Errorf("sparql: LIMIT without a count")
		}
		n := 0
		for _, r := range lt.text {
			if r < '0' || r > '9' {
				return nil, fmt.Errorf("sparql: bad LIMIT %q", lt.text)
			}
			n = n*10 + int(r-'0')
		}
		if n == 0 {
			return nil, fmt.Errorf("sparql: LIMIT must be positive")
		}
		q.Limit = n
	}
	if t, ok := p.next(); ok {
		return nil, fmt.Errorf("sparql: trailing token %q", t.text)
	}
	return q, nil
}

func (p *parser) parseTriple() (TriplePattern, error) {
	var terms [3]Term
	for i := 0; i < 3; i++ {
		t, ok := p.next()
		if !ok || t.text == "}" || t.text == "." {
			return TriplePattern{}, fmt.Errorf("sparql: incomplete triple pattern")
		}
		terms[i] = makeTerm(t)
	}
	if terms[1].Kind == Literal {
		return TriplePattern{}, fmt.Errorf("sparql: literal predicate %q", terms[1].Value)
	}
	return TriplePattern{S: terms[0], P: terms[1], O: terms[2]}, nil
}

func makeTerm(t token) Term {
	switch {
	case t.literal:
		return Term{Kind: Literal, Value: t.text}
	case strings.HasPrefix(t.text, "?"):
		return Term{Kind: Var, Value: t.text}
	default:
		return Term{Kind: IRI, Value: t.text}
	}
}
