package sparql

import (
	"strings"
	"testing"

	"simjoin/internal/rdf"
)

const paperQuery = `SELECT ?person WHERE {
	?person type Artist .
	?person graduatedFrom Harvard_University .
}`

func TestParsePaperQuery(t *testing.T) {
	q, err := Parse(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Vars) != 1 || q.Vars[0] != "?person" {
		t.Errorf("Vars = %v", q.Vars)
	}
	if len(q.Patterns) != 2 {
		t.Fatalf("Patterns = %d, want 2", len(q.Patterns))
	}
	p0 := q.Patterns[0]
	if !p0.S.IsVar() || p0.P.Value != "type" || p0.O.Value != "Artist" {
		t.Errorf("pattern 0 = %v", p0)
	}
}

func TestParseVariants(t *testing.T) {
	good := []string{
		`SELECT * WHERE { ?x type Artist }`,                      // no trailing dot, star
		`select ?x where { ?x <type> <Artist> . }`,               // lowercase keywords, IRIs
		`SELECT ?x ?y WHERE { ?x knows ?y . ?y name "Bob Q" . }`, // literal with space
		`SELECT ?x { ?x type Artist }`,                           // WHERE omitted
	}
	for _, s := range good {
		if _, err := Parse(s); err != nil {
			t.Errorf("Parse(%q): %v", s, err)
		}
	}
	bad := []string{
		``,
		`WHERE { ?x type Artist }`,
		`SELECT WHERE { ?x type Artist }`,
		`SELECT x WHERE { ?x type Artist }`,
		`SELECT ?x WHERE { }`,
		`SELECT ?x WHERE { ?x type }`,
		`SELECT ?x WHERE { ?x type Artist`,
		`SELECT ?x WHERE { ?x "lit" Artist }`,
		`SELECT ?x WHERE { ?x type Artist } trailing`,
		`SELECT ?x WHERE { ?x <type Artist }`,
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	q := MustParse(paperQuery)
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse: %v (%q)", err, q.String())
	}
	if q2.String() != q.String() {
		t.Errorf("round trip mismatch:\n%s\n%s", q.String(), q2.String())
	}
}

func demoStore() *rdf.Store {
	st := rdf.NewStore()
	st.MustAdd("Alice", "type", "Artist")
	st.MustAdd("Alice", "graduatedFrom", "Harvard_University")
	st.MustAdd("Carol", "type", "Artist")
	st.MustAdd("Carol", "graduatedFrom", "MIT")
	st.MustAdd("Bob", "type", "Politician")
	st.MustAdd("Bob", "graduatedFrom", "Harvard_University")
	st.MustAdd("Harvard_University", "type", "University")
	st.MustAdd("MIT", "type", "University")
	return st
}

func TestExecuteSimple(t *testing.T) {
	st := demoStore()
	q := MustParse(paperQuery)
	res, err := Execute(st, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0]["?person"] != "Alice" {
		t.Fatalf("res = %v, want [map[?person:Alice]]", res)
	}
}

func TestExecuteJoinAcrossPatterns(t *testing.T) {
	st := demoStore()
	q := MustParse(`SELECT ?p ?u WHERE { ?p graduatedFrom ?u . ?u type University . }`)
	res, err := Execute(st, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d solutions, want 3: %v", len(res), res)
	}
	// Deterministic order: sorted by ?p then ?u.
	if res[0]["?p"] != "Alice" || res[1]["?p"] != "Bob" || res[2]["?p"] != "Carol" {
		t.Errorf("order wrong: %v", res)
	}
}

func TestExecuteStarProjection(t *testing.T) {
	st := demoStore()
	q := MustParse(`SELECT * WHERE { ?p type Artist . ?p graduatedFrom ?u . }`)
	res, err := Execute(st, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d, want 2", len(res))
	}
	for _, b := range res {
		if b["?p"] == "" || b["?u"] == "" {
			t.Errorf("star projection missing vars: %v", b)
		}
	}
}

func TestExecuteMaxSolutions(t *testing.T) {
	st := demoStore()
	q := MustParse(`SELECT ?s WHERE { ?s ?p ?o }`)
	res, err := Execute(st, q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("cap ignored: %d", len(res))
	}
}

func TestExecuteNoSolutions(t *testing.T) {
	st := demoStore()
	q := MustParse(`SELECT ?x WHERE { ?x type Spaceship }`)
	res, err := Execute(st, q, 0)
	if err != nil || len(res) != 0 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

func TestExecuteVariablePredicate(t *testing.T) {
	st := demoStore()
	q := MustParse(`SELECT ?pred WHERE { Alice ?pred Harvard_University }`)
	res, err := Execute(st, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0]["?pred"] != "graduatedFrom" {
		t.Fatalf("res = %v", res)
	}
}

func TestDistinctAndLimit(t *testing.T) {
	st := demoStore()
	// ?p graduatedFrom ?u . ?u type University: 3 solutions; projecting only
	// ?u gives duplicates without DISTINCT.
	q := MustParse(`SELECT ?u WHERE { ?p graduatedFrom ?u . ?u type University . }`)
	res, err := Execute(st, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("plain projection = %d rows, want 3", len(res))
	}
	qd := MustParse(`SELECT DISTINCT ?u WHERE { ?p graduatedFrom ?u . ?u type University . }`)
	if !qd.Distinct {
		t.Fatal("DISTINCT not parsed")
	}
	res, err = Execute(st, qd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("DISTINCT projection = %d rows, want 2", len(res))
	}

	ql := MustParse(`SELECT ?s WHERE { ?s ?p ?o } LIMIT 3`)
	if ql.Limit != 3 {
		t.Fatalf("Limit = %d", ql.Limit)
	}
	res, err = Execute(st, ql, 0)
	if err != nil || len(res) != 3 {
		t.Fatalf("LIMIT ignored: %d rows, err %v", len(res), err)
	}
	// String round trip preserves both.
	q2 := MustParse(MustParse(`SELECT DISTINCT ?s WHERE { ?s ?p ?o } LIMIT 7`).String())
	if !q2.Distinct || q2.Limit != 7 {
		t.Errorf("round trip lost modifiers: %+v", q2)
	}
	// Bad limits rejected.
	for _, bad := range []string{
		`SELECT ?s WHERE { ?s p o } LIMIT`,
		`SELECT ?s WHERE { ?s p o } LIMIT abc`,
		`SELECT ?s WHERE { ?s p o } LIMIT 0`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestBuildQueryGraph(t *testing.T) {
	qg, err := ParseToGraph(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	g := qg.Graph
	// Vertices: ?person, Artist, Harvard_University.
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("|V|=%d |E|=%d, want 3/2", g.NumVertices(), g.NumEdges())
	}
	if g.VertexLabel(0) != "?person" {
		t.Errorf("vertex 0 label = %q", g.VertexLabel(0))
	}
	if qg.Roles[0] != RoleVariable {
		t.Errorf("role 0 = %v, want variable", qg.Roles[0])
	}
	if qg.Roles[1] != RoleClass { // Artist is object of type
		t.Errorf("role of Artist = %v, want class", qg.Roles[1])
	}
	if qg.Roles[2] != RoleEntity {
		t.Errorf("role of Harvard_University = %v, want entity", qg.Roles[2])
	}
	if l, ok := g.EdgeLabel(0, 1); !ok || l != "type" {
		t.Errorf("edge (0,1) = %q,%v", l, ok)
	}
}

func TestBuildQueryGraphSharedVertices(t *testing.T) {
	qg, err := ParseToGraph(`SELECT ?f WHERE { ?f type Film . ?f director Coppola . Coppola type Director . }`)
	if err != nil {
		t.Fatal(err)
	}
	// ?f, Film, Coppola, Director = 4 vertices, 3 edges; Coppola shared.
	if qg.Graph.NumVertices() != 4 || qg.Graph.NumEdges() != 3 {
		t.Fatalf("|V|=%d |E|=%d", qg.Graph.NumVertices(), qg.Graph.NumEdges())
	}
	if qg.RelationCount() != 1 {
		t.Errorf("RelationCount = %d, want 1 (director only)", qg.RelationCount())
	}
}

func TestBuildQueryGraphErrors(t *testing.T) {
	if _, err := ParseToGraph(`SELECT ?x WHERE { ?x p ?x }`); err == nil {
		t.Error("self-loop pattern accepted")
	}
	if _, err := ParseToGraph(`SELECT ?x WHERE { ?x p A . ?x p A . }`); err == nil {
		t.Error("duplicate pattern accepted")
	}
}

func TestQueryGraphWildcardPredicate(t *testing.T) {
	qg, err := ParseToGraph(`SELECT ?x WHERE { ?x ?rel Paris }`)
	if err != nil {
		t.Fatal(err)
	}
	l, ok := qg.Graph.EdgeLabel(0, 1)
	if !ok || !strings.HasPrefix(l, "?") {
		t.Errorf("variable predicate edge label = %q", l)
	}
}

func TestVariables(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?a p ?b . ?b q ?a . ?c r X . }`)
	vars := q.Variables()
	want := []string{"?a", "?b", "?c"}
	if len(vars) != 3 {
		t.Fatalf("Variables = %v", vars)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("Variables = %v, want %v", vars, want)
		}
	}
}
