package sparql

import (
	"fmt"
	"sort"

	"simjoin/internal/fault"
	"simjoin/internal/rdf"
)

// Binding maps variable names (with '?') to the terms they are bound to.
type Binding map[string]string

// clone copies a binding.
func (b Binding) clone() Binding {
	c := make(Binding, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// Execute evaluates the query's basic graph pattern against the store and
// returns one binding per solution, projected to the SELECT variables
// (all variables for SELECT *). Solutions are returned in deterministic
// order. MaxSolutions caps the result size; 0 means unlimited.
func Execute(st *rdf.Store, q *Query, maxSolutions int) ([]Binding, error) {
	// "sparql.execute" covers every QA engine path (the reference executor
	// backs both the template system's verified instantiation and the
	// baselines' direct translations).
	if err := fault.Hit("sparql.execute", ""); err != nil {
		return nil, err
	}
	if len(q.Patterns) == 0 {
		return nil, fmt.Errorf("sparql: query has no patterns")
	}
	// Join ordering: repeatedly pick the pattern with the fewest matches
	// given the variables bound so far (greedy selectivity ordering).
	ordered := orderPatterns(st, q.Patterns)

	// Fold the query's own LIMIT into the caller's cap.
	if q.Limit > 0 && (maxSolutions == 0 || q.Limit < maxSolutions) {
		maxSolutions = q.Limit
	}
	var seen map[string]bool
	if q.Distinct {
		seen = make(map[string]bool)
	}

	var out []Binding
	var rec func(i int, b Binding) bool
	rec = func(i int, b Binding) bool {
		if i == len(ordered) {
			proj := project(b, q)
			if q.Distinct {
				key := bindingKey(proj, q)
				if seen[key] {
					return true
				}
				seen[key] = true
			}
			out = append(out, proj)
			return maxSolutions == 0 || len(out) < maxSolutions
		}
		tp := ordered[i]
		s, p, o := resolveTerm(tp.S, b), resolveTerm(tp.P, b), resolveTerm(tp.O, b)
		cont := true
		st.Match(s, p, o, func(t rdf.Triple) bool {
			nb := b
			changed := false
			bind := func(term Term, val string) bool {
				if !term.IsVar() {
					return true
				}
				if cur, ok := nb[term.Value]; ok {
					return cur == val
				}
				if !changed {
					nb = nb.clone()
					changed = true
				}
				nb[term.Value] = val
				return true
			}
			if bind(tp.S, t.S) && bind(tp.P, t.P) && bind(tp.O, t.O) {
				if !rec(i+1, nb) {
					cont = false
					return false
				}
			}
			return true
		})
		return cont
	}
	rec(0, Binding{})
	sortBindings(out, q)
	return out, nil
}

// resolveTerm substitutes a bound variable, otherwise returns the pattern
// text ('?'-prefixed variables remain wildcards for the store).
func resolveTerm(t Term, b Binding) string {
	if t.IsVar() {
		if v, ok := b[t.Value]; ok {
			return v
		}
		return t.Value
	}
	return t.Value
}

// orderPatterns sorts patterns by static selectivity (fewest store matches
// first); patterns sharing variables with already-placed ones are preferred
// to keep intermediate results small.
func orderPatterns(st *rdf.Store, pats []TriplePattern) []TriplePattern {
	type scored struct {
		tp    TriplePattern
		count int
	}
	rest := make([]scored, len(pats))
	for i, tp := range pats {
		rest[i] = scored{tp, st.MatchCount(termWild(tp.S), termWild(tp.P), termWild(tp.O))}
	}
	var ordered []TriplePattern
	bound := map[string]bool{}
	for len(rest) > 0 {
		best := -1
		for i, s := range rest {
			if best < 0 {
				best = i
				continue
			}
			si, sb := rest[i].count, rest[best].count
			ci, cb := connected(s.tp, bound), connected(rest[best].tp, bound)
			if len(ordered) > 0 && ci != cb {
				if ci {
					best = i
				}
				continue
			}
			if si < sb {
				best = i
			}
		}
		tp := rest[best].tp
		ordered = append(ordered, tp)
		for _, t := range []Term{tp.S, tp.P, tp.O} {
			if t.IsVar() {
				bound[t.Value] = true
			}
		}
		rest = append(rest[:best], rest[best+1:]...)
	}
	return ordered
}

func connected(tp TriplePattern, bound map[string]bool) bool {
	for _, t := range []Term{tp.S, tp.P, tp.O} {
		if t.IsVar() && bound[t.Value] {
			return true
		}
	}
	return false
}

func termWild(t Term) string {
	if t.IsVar() {
		return t.Value
	}
	return t.Value
}

// project restricts a full binding to the query's SELECT list.
func project(b Binding, q *Query) Binding {
	vars := q.Vars
	if len(vars) == 1 && vars[0] == "*" {
		vars = q.Variables()
	}
	out := make(Binding, len(vars))
	for _, v := range vars {
		if val, ok := b[v]; ok {
			out[v] = val
		}
	}
	return out
}

// bindingKey canonicalises a projected binding for DISTINCT comparison.
func bindingKey(b Binding, q *Query) string {
	vars := q.Vars
	if len(vars) == 1 && vars[0] == "*" {
		vars = q.Variables()
	}
	var sb []byte
	for _, v := range vars {
		sb = append(sb, b[v]...)
		sb = append(sb, 0)
	}
	return string(sb)
}

func sortBindings(bs []Binding, q *Query) {
	vars := q.Vars
	if len(vars) == 1 && vars[0] == "*" {
		vars = q.Variables()
	}
	sort.Slice(bs, func(i, j int) bool {
		for _, v := range vars {
			if bs[i][v] != bs[j][v] {
				return bs[i][v] < bs[j][v]
			}
		}
		return false
	})
}
