package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServeEndpoints(t *testing.T) {
	reg := New()
	reg.Counter("simjoin_pairs_total").Add(11)
	tr := NewTracer(8)
	tr.Record("prune", time.Now(), time.Millisecond)

	srv, err := Serve("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "simjoin_pairs_total 11") {
		t.Errorf("/metrics: %d %q", code, body)
	}
	if code, body := get("/metrics.json"); code != 200 {
		t.Errorf("/metrics.json: %d", code)
	} else {
		var snap Snapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil || snap.Counters["simjoin_pairs_total"] != 11 {
			t.Errorf("/metrics.json: %v %q", err, body)
		}
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "cmdline") {
		t.Errorf("/debug/vars: %d %q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "simjoin.obs") {
		t.Errorf("/debug/vars missing registry expvar: %d %q", code, body)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: %d", code)
		_ = body
	}
	if code, body := get("/debug/trace"); code != 200 {
		t.Errorf("/debug/trace: %d", code)
	} else {
		var events []map[string]interface{}
		if err := json.Unmarshal([]byte(body), &events); err != nil || len(events) != 1 {
			t.Errorf("/debug/trace: %v %q", err, body)
		}
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index: %d %q", code, body)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Errorf("unknown path served %d, want 404", code)
	}
}
