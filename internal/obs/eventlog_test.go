package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"sync"
	"testing"
	"time"
)

func TestEventLogSamplingCadence(t *testing.T) {
	l := NewEventLog(io.Discard, 3)
	var hits []int
	for i := 0; i < 10; i++ {
		if l.Sample() {
			hits = append(hits, i)
		}
	}
	if want := []int{0, 3, 6, 9}; len(hits) != len(want) {
		t.Fatalf("every=3 sampled at %v, want %v", hits, want)
	} else {
		for i := range want {
			if hits[i] != want[i] {
				t.Fatalf("every=3 sampled at %v, want %v", hits, want)
			}
		}
	}
	if got := l.Sampled(); got != 10 {
		t.Fatalf("Sampled() = %d, want 10", got)
	}

	var nilLog *EventLog
	if nilLog.Sample() {
		t.Fatal("nil EventLog sampled")
	}
	if nilLog.NewBuffer() != nil {
		t.Fatal("nil EventLog returned a buffer")
	}
}

func TestEventLogEmitRoundTrip(t *testing.T) {
	var sink bytes.Buffer
	l := NewEventLog(&sink, 1)
	b := l.NewBuffer()
	ev := PairEvent{
		Q: 3, G: 7,
		Bounds: []BoundObs{
			{Bound: "css", Ns: 120, Pruned: false},
			{Bound: "group", Ns: 450, Pruned: true},
		},
		Verdict:  "pruned",
		PrunedBy: "group",
		Worlds:   0, GEDCalls: 0, GEDStates: 0,
		PruneNs: 570, VerifyNs: 0, TotalNs: 570,
	}
	b.Emit(&ev)
	ev2 := PairEvent{
		Q: 1, G: 2, Verdict: "exact", Result: true, SimP: 0.75,
		Worlds: 8, GEDCalls: 4, GEDStates: 321,
		PruneNs: 100, VerifyNs: 9000, TotalNs: 9100,
	}
	b.Emit(&ev2)
	b.Flush()

	if got := l.Emitted(); got != 2 {
		t.Fatalf("Emitted() = %d, want 2", got)
	}
	sc := bufio.NewScanner(&sink)
	var lines []map[string]interface{}
	for sc.Scan() {
		var m map[string]interface{}
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	if lines[0]["verdict"] != "pruned" || lines[0]["pruned_by"] != "group" {
		t.Errorf("pruned event = %v", lines[0])
	}
	bounds, ok := lines[0]["bounds"].([]interface{})
	if !ok || len(bounds) != 2 {
		t.Fatalf("pruned event bounds = %v, want 2 entries", lines[0]["bounds"])
	}
	last := bounds[1].(map[string]interface{})
	if last["b"] != "group" || last["pruned"] != true {
		t.Errorf("bounds[1] = %v", last)
	}
	if lines[1]["result"] != true || lines[1]["simp"].(float64) != 0.75 {
		t.Errorf("accepted event = %v", lines[1])
	}
	if lines[1]["ged_states"].(float64) != 321 {
		t.Errorf("ged_states = %v, want 321", lines[1]["ged_states"])
	}
}

// TestEventLogEmitZeroAlloc pins the hot path: encoding a sampled event into
// a warmed buffer (including its opportunistic flushes to the sink) must not
// allocate.
func TestEventLogEmitZeroAlloc(t *testing.T) {
	l := NewEventLog(io.Discard, 1)
	b := l.NewBuffer()
	ev := PairEvent{
		Q: 12, G: 34,
		Bounds:  []BoundObs{{Bound: "css", Ns: 210}, {Bound: "prob", Ns: 320}, {Bound: "group", Ns: 640, Pruned: true}},
		Verdict: "pruned", PrunedBy: "group",
		PruneNs: 1170, TotalNs: 1170,
	}
	// Warm until the buffer has been through at least one full flush cycle so
	// its capacity is settled.
	for i := 0; i < 2000; i++ {
		b.Emit(&ev)
	}
	if got := testing.AllocsPerRun(1000, func() { b.Emit(&ev) }); got != 0 {
		t.Fatalf("steady-state Emit allocated %v allocs/op, want 0", got)
	}
}

type failWriter struct{ err error }

func (w *failWriter) Write(p []byte) (int, error) { return 0, w.err }

func TestEventLogDropsOnSinkError(t *testing.T) {
	wantErr := errors.New("sink gone")
	l := NewEventLog(&failWriter{err: wantErr}, 1)
	b := l.NewBuffer()
	ev := PairEvent{Q: 1, G: 1, Verdict: "exact"}
	b.Emit(&ev)
	b.Flush()
	b.Emit(&ev)
	b.Flush()
	if got := l.Dropped(); got != 2 {
		t.Fatalf("Dropped() = %d, want 2", got)
	}
	if got := l.Emitted(); got != 0 {
		t.Fatalf("Emitted() = %d, want 0", got)
	}
	if !errors.Is(l.Err(), wantErr) {
		t.Fatalf("Err() = %v, want %v", l.Err(), wantErr)
	}
}

func TestEventLogSyncCounters(t *testing.T) {
	l := NewEventLog(io.Discard, 1)
	b := l.NewBuffer()
	ev := PairEvent{Q: 1, G: 1, Verdict: "exact"}
	for i := 0; i < 5; i++ {
		b.Emit(&ev)
	}
	b.Flush()
	reg := New()
	l.SyncCounters(reg)
	if got := reg.Snapshot().Counters["obs_events_emitted_total"]; got != 5 {
		t.Fatalf("after first sync, obs_events_emitted_total = %d, want 5", got)
	}
	b.Emit(&ev)
	b.Flush()
	l.SyncCounters(reg)
	if got := reg.Snapshot().Counters["obs_events_emitted_total"]; got != 6 {
		t.Fatalf("after second sync, obs_events_emitted_total = %d, want 6 (delta publication)", got)
	}
	// No drops: the dropped counter must not even be registered.
	if _, ok := reg.Snapshot().Counters["obs_events_dropped_total"]; ok {
		t.Fatal("obs_events_dropped_total registered with zero drops")
	}
	l.SyncCounters(nil) // nil-safety
	(*EventLog)(nil).SyncCounters(reg)
}

func TestAppendJSONStringEscapes(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{`plain`, `"plain"`},
		{`quote"back\slash`, `"quote\"back\\slash"`},
		{"tab\tnewline\n", `"tab\tnewline\n"`},
		{"ctrl\x01", `"ctrl\u0001"`},
	} {
		if got := string(appendJSONString(nil, tc.in)); got != tc.want {
			t.Errorf("appendJSONString(%q) = %s, want %s", tc.in, got, tc.want)
		}
		var v string
		if err := json.Unmarshal(appendJSONString(nil, tc.in), &v); err != nil || v != tc.in {
			t.Errorf("appendJSONString(%q) does not round-trip: %v (%v)", tc.in, v, err)
		}
	}
}

func TestParseNameInvertsName(t *testing.T) {
	for _, tc := range []struct {
		name   string
		base   string
		labels map[string]string
	}{
		{"plain_total", "plain_total", nil},
		{Name("simjoin_bound_evals_total", "bound", "css", "pos", "0"),
			"simjoin_bound_evals_total", map[string]string{"bound": "css", "pos": "0"}},
		{Name("m", "k", `va"lue`), "m", map[string]string{"k": `va"lue`}},
	} {
		base, labels := ParseName(tc.name)
		if base != tc.base {
			t.Errorf("ParseName(%q) base = %q, want %q", tc.name, base, tc.base)
		}
		if len(labels) != len(tc.labels) {
			t.Errorf("ParseName(%q) labels = %v, want %v", tc.name, labels, tc.labels)
			continue
		}
		for k, v := range tc.labels {
			if labels[k] != v {
				t.Errorf("ParseName(%q) labels[%q] = %q, want %q", tc.name, k, labels[k], v)
			}
		}
	}
}

func TestHistSnapshotQuantile(t *testing.T) {
	reg := New()
	h := reg.Histogram("q_test", []float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in the (1,2] bucket
	}
	snap := reg.Snapshot().Histograms["q_test"]
	if p50 := snap.Quantile(0.5); p50 < 1 || p50 > 2 {
		t.Errorf("P50 = %v, want within (1,2]", p50)
	}
	if p99 := snap.Quantile(0.99); p99 < 1 || p99 > 2 {
		t.Errorf("P99 = %v, want within (1,2]", p99)
	}

	// Observations past the last finite bound saturate there.
	h2 := reg.Histogram("q_test_inf", []float64{1})
	h2.Observe(100)
	snap2 := reg.Snapshot().Histograms["q_test_inf"]
	if p50 := snap2.Quantile(0.5); p50 != 1 {
		t.Errorf("+Inf-bucket quantile = %v, want saturation at 1", p50)
	}

	var empty HistSnapshot
	if q := empty.Quantile(0.5); !math.IsNaN(q) {
		t.Errorf("empty histogram quantile = %v, want NaN", q)
	}
}

// slowWriter delays every Write, keeping the sink lock held long enough that
// concurrent workers' TryLock flushes fail and buffers grow toward their cap.
type slowWriter struct {
	delay time.Duration
	buf   bytes.Buffer
}

func (w *slowWriter) Write(p []byte) (int, error) {
	time.Sleep(w.delay)
	return w.buf.Write(p)
}

// TestEventLogConcurrentWritersExactAccounting pins the event log's flush
// contract under concurrent writers (run it under -race): with W workers
// each emitting a unique (q, g) stream through its own EventBuffer into one
// contended sink,
//
//	emitted + dropped == total emits,   and
//	lines written == emitted,           with no (q, g) appearing twice.
//
// Together these say drop-counting is exact and TryLock contention can never
// double-emit or silently lose a record.
func TestEventLogConcurrentWritersExactAccounting(t *testing.T) {
	const (
		workers   = 8
		perWorker = 4000
	)
	sink := &slowWriter{delay: 50 * time.Microsecond}
	l := NewEventLog(sink, 1)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b := l.NewBuffer()
			ev := PairEvent{Verdict: "exact"}
			for i := 0; i < perWorker; i++ {
				ev.Q, ev.G = w, i
				b.Emit(&ev)
			}
			b.Flush()
		}(w)
	}
	wg.Wait()

	total := int64(workers * perWorker)
	emitted, dropped := l.Emitted(), l.Dropped()
	if emitted+dropped != total {
		t.Fatalf("emitted %d + dropped %d = %d, want %d", emitted, dropped, emitted+dropped, total)
	}

	seen := make(map[[2]int]bool, emitted)
	var lines int64
	sc := bufio.NewScanner(bytes.NewReader(sink.buf.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines++
		var rec struct {
			Q int `json:"q"`
			G int `json:"g"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", lines, err)
		}
		key := [2]int{rec.Q, rec.G}
		if seen[key] {
			t.Fatalf("event (%d,%d) emitted twice", rec.Q, rec.G)
		}
		seen[key] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != emitted {
		t.Fatalf("sink holds %d lines but Emitted() = %d", lines, emitted)
	}
	t.Logf("concurrent flush: %d emitted, %d dropped of %d", emitted, dropped, total)
}

// TestEventLogDropsExactlyPendingUnderContention forces the drop path
// deterministically: the test holds the sink lock so every opportunistic
// flush fails, and a buffer pushed past its cap must drop exactly its
// pending count — no more (later events still flow) and no fewer.
func TestEventLogDropsExactlyPendingUnderContention(t *testing.T) {
	var sink bytes.Buffer
	l := NewEventLog(&sink, 1)
	b := l.NewBuffer()

	// Measure how many events fit before the cap by encoding one.
	probe := appendEvent(nil, &PairEvent{Q: 1, G: 1, Verdict: "exact"})
	perEvent := len(probe)

	l.mu.Lock() // every tryFlush now fails
	n := 0
	for emitted := 0; emitted <= eventMaxBuffer+2*eventFlushBytes; emitted += perEvent {
		b.Emit(&PairEvent{Q: 0, G: n, Verdict: "exact"})
		n++
	}
	l.mu.Unlock()

	dropped := l.Dropped()
	if dropped == 0 {
		t.Fatalf("no drops after %d events (%d bytes) against a held sink lock", n, n*perEvent)
	}
	if l.Emitted() != 0 {
		t.Fatalf("%d events emitted while the sink lock was held", l.Emitted())
	}

	// The buffer recovered: later events flush normally and the identity
	// emitted + dropped == total still holds exactly.
	const tail = 100
	for i := 0; i < tail; i++ {
		b.Emit(&PairEvent{Q: 1, G: i, Verdict: "exact"})
	}
	b.Flush()
	if got := l.Emitted() + l.Dropped(); got != int64(n+tail) {
		t.Fatalf("emitted %d + dropped %d = %d, want %d", l.Emitted(), l.Dropped(), got, n+tail)
	}
	lines := int64(bytes.Count(sink.Bytes(), []byte("\n")))
	if lines != l.Emitted() {
		t.Fatalf("sink holds %d lines but Emitted() = %d", lines, l.Emitted())
	}
}
