package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("join_pairs_total").Add(7)
	r.Counter(Name("qa_questions_total", "system", "template")).Add(2)
	r.Gauge("workers").Set(4)
	h := r.Histogram("prune_seconds", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE join_pairs_total counter\n",
		"join_pairs_total 7\n",
		"# TYPE qa_questions_total counter\n",
		`qa_questions_total{system="template"} 2` + "\n",
		"# TYPE workers gauge\n",
		"workers 4\n",
		"# TYPE prune_seconds histogram\n",
		`prune_seconds_bucket{le="0.01"} 1` + "\n",
		`prune_seconds_bucket{le="0.1"} 1` + "\n",
		`prune_seconds_bucket{le="+Inf"} 2` + "\n",
		"prune_seconds_sum 0.505\n",
		"prune_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n---\n%s", want, out)
		}
	}
}

func TestWritePrometheusLabelledHistogram(t *testing.T) {
	r := New()
	r.Histogram(Name("qa_seconds", "system", "gAnswer"), []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE qa_seconds histogram\n",
		`qa_seconds_bucket{system="gAnswer",le="1"} 1` + "\n",
		`qa_seconds_sum{system="gAnswer"} 0.5` + "\n",
		`qa_seconds_count{system="gAnswer"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q\n---\n%s", want, out)
		}
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("c_total").Add(3)
	r.Gauge("g").Set(1.25)
	r.Histogram("h", []float64{10}).Observe(3)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if snap.Counters["c_total"] != 3 || snap.Gauges["g"] != 1.25 {
		t.Errorf("round trip lost values: %+v", snap)
	}
	h := snap.Histograms["h"]
	if h.Count != 1 || h.Sum != 3 || len(h.Buckets) != 2 || h.Buckets[1].Le != "+Inf" {
		t.Errorf("histogram round trip: %+v", h)
	}
}

func TestDiffCounters(t *testing.T) {
	r := New()
	r.Counter("a").Add(2)
	before := r.Snapshot()
	r.Counter("a").Add(3)
	r.Counter("b").Add(1)
	d := DiffCounters(before, r.Snapshot())
	if d["a"] != 3 || d["b"] != 1 || len(d) != 2 {
		t.Errorf("diff = %v", d)
	}
}
