package obs

import (
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("x_total") != c {
		t.Error("Counter lookup not idempotent")
	}

	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
	if r.Gauge("g") != g {
		t.Error("Gauge lookup not idempotent")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 5056.5 {
		t.Errorf("sum = %v, want 5056.5", h.Sum())
	}
	snap := h.snapshot()
	// Cumulative: ≤1: 2 (0.5, 1 — bound is inclusive), ≤10: 3, ≤100: 4, +Inf: 5.
	want := []int64{2, 3, 4, 5}
	for i, b := range snap.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket %s = %d, want %d", b.Le, b.Count, want[i])
		}
	}
	if snap.Buckets[3].Le != "+Inf" {
		t.Errorf("last bucket le = %q, want +Inf", snap.Buckets[3].Le)
	}
	h.ObserveDuration(2 * time.Second)
	if h.Count() != 6 {
		t.Error("ObserveDuration did not count")
	}
}

func TestNilInstrumentsAreNoops(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", DurationBuckets)
	var tr *Tracer
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	tr.Record("x", time.Now(), time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments must read as zero")
	}
	if tr.Spans() != nil || tr.Dropped() != 0 {
		t.Error("nil tracer must read as empty")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("c_total").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", CountBuckets).Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("g").Value(); got != workers*perWorker {
		t.Errorf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("h", CountBuckets).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestName(t *testing.T) {
	if got := Name("base"); got != "base" {
		t.Errorf("Name(base) = %q", got)
	}
	got := Name("qa_total", "system", "template")
	if got != `qa_total{system="template"}` {
		t.Errorf("Name = %q", got)
	}
	// Keys sort so the registry key is stable regardless of argument order.
	a := Name("m", "b", "2", "a", "1")
	b := Name("m", "a", "1", "b", "2")
	if a != b || a != `m{a="1",b="2"}` {
		t.Errorf("Name ordering: %q vs %q", a, b)
	}
	if got := Name("m", "k", `va"l`); got != `m{k="va\"l"}` {
		t.Errorf("Name escaping = %q", got)
	}
	base, labels := splitName(a)
	if base != "m" || labels != `a="1",b="2"` {
		t.Errorf("splitName = %q, %q", base, labels)
	}
}
