package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Snapshot is a point-in-time copy of every instrument in a registry,
// suitable for JSON serialisation and for diffing across runs.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// HistSnapshot is one histogram's state. Bucket counts are cumulative, in
// Prometheus style, ending with the +Inf bucket.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	Buckets []HistBucket `json:"buckets"`
}

// HistBucket pairs an upper bound (formatted, "+Inf" for the last) with the
// cumulative count of observations at or below it.
type HistBucket struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), Sum: h.Sum()}
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		bound := math.Inf(1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, HistBucket{Le: formatBound(bound), Count: cum})
	}
	return s
}

// Snapshot copies every instrument's current value. A nil registry yields an
// empty (but non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counts {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes every instrument in the Prometheus text exposition
// format (version 0.0.4), deterministically ordered by name. Labelled names
// produced by Name are emitted as-is; their TYPE line uses the base name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()

	typed := map[string]string{} // base name -> TYPE already emitted
	emitType := func(name, typ string) string {
		base, _ := splitName(name)
		if typed[base] == "" {
			typed[base] = typ
			return fmt.Sprintf("# TYPE %s %s\n", base, typ)
		}
		return ""
	}

	var names []string
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := io.WriteString(w, emitType(n, "counter")); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", n, snap.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := io.WriteString(w, emitType(n, "gauge")); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", n,
			strconv.FormatFloat(snap.Gauges[n], 'g', -1, 64)); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := io.WriteString(w, emitType(n, "histogram")); err != nil {
			return err
		}
		h := snap.Histograms[n]
		base, labels := splitName(n)
		for _, b := range h.Buckets {
			lbl := fmt.Sprintf(`le="%s"`, b.Le)
			if labels != "" {
				lbl = labels + "," + lbl
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", base, lbl, b.Count); err != nil {
				return err
			}
		}
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, suffix,
			strconv.FormatFloat(h.Sum, 'g', -1, 64)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// DiffCounters returns after's counters minus before's (missing names count
// as zero), for building per-run deltas over a shared registry.
func DiffCounters(before, after Snapshot) map[string]int64 {
	out := make(map[string]int64, len(after.Counters))
	for name, v := range after.Counters {
		if d := v - before.Counters[name]; d != 0 {
			out[name] = d
		}
	}
	return out
}
