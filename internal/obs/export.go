package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is a point-in-time copy of every instrument in a registry,
// suitable for JSON serialisation and for diffing across runs.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// HistSnapshot is one histogram's state. Bucket counts are cumulative, in
// Prometheus style, ending with the +Inf bucket.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	Buckets []HistBucket `json:"buckets"`
}

// HistBucket pairs an upper bound (formatted, "+Inf" for the last) with the
// cumulative count of observations at or below it.
type HistBucket struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

func parseBound(le string) float64 {
	if le == "+Inf" {
		return math.Inf(1)
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		return math.NaN()
	}
	return v
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observations from
// the cumulative bucket counts, interpolating linearly inside the bucket
// that crosses the target rank (the Prometheus histogram_quantile
// estimator). Observations in the +Inf bucket are reported as the last
// finite upper bound — the estimate saturates rather than invents values.
// Returns NaN for an empty histogram.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	prevCum := int64(0)
	lower := 0.0
	for _, b := range s.Buckets {
		upper := parseBound(b.Le)
		if float64(b.Count) >= rank && b.Count > prevCum {
			if math.IsInf(upper, 1) {
				return lower // saturate at the last finite bound
			}
			frac := (rank - float64(prevCum)) / float64(b.Count-prevCum)
			return lower + (upper-lower)*frac
		}
		prevCum = b.Count
		if !math.IsInf(upper, 1) && !math.IsNaN(upper) {
			lower = upper
		}
	}
	return lower
}

// ParseName is the inverse of Name: it splits a possibly labelled metric
// name into its base name and label map (nil when the name is plain). Label
// values are unescaped.
func ParseName(name string) (string, map[string]string) {
	base, body := splitName(name)
	if body == "" {
		return base, nil
	}
	labels := make(map[string]string)
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			break // malformed; return what parsed so far
		}
		key := body[:eq]
		rest := body[eq+2:]
		var sb strings.Builder
		i := 0
		for i < len(rest) && rest[i] != '"' {
			if rest[i] == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					sb.WriteByte('\n')
				default:
					sb.WriteByte(rest[i])
				}
			} else {
				sb.WriteByte(rest[i])
			}
			i++
		}
		labels[key] = sb.String()
		if i+1 < len(rest) && rest[i+1] == ',' {
			body = rest[i+2:]
		} else {
			body = ""
		}
	}
	return base, labels
}

func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), Sum: h.Sum()}
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		bound := math.Inf(1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, HistBucket{Le: formatBound(bound), Count: cum})
	}
	return s
}

// Snapshot copies every instrument's current value. A nil registry yields an
// empty (but non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counts {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes every instrument in the Prometheus text exposition
// format (version 0.0.4), deterministically ordered by name. Labelled names
// produced by Name are emitted as-is; their TYPE line uses the base name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()

	typed := map[string]string{} // base name -> TYPE already emitted
	emitType := func(name, typ string) string {
		base, _ := splitName(name)
		if typed[base] == "" {
			typed[base] = typ
			return fmt.Sprintf("# TYPE %s %s\n", base, typ)
		}
		return ""
	}

	var names []string
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := io.WriteString(w, emitType(n, "counter")); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", n, snap.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := io.WriteString(w, emitType(n, "gauge")); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", n,
			strconv.FormatFloat(snap.Gauges[n], 'g', -1, 64)); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := io.WriteString(w, emitType(n, "histogram")); err != nil {
			return err
		}
		h := snap.Histograms[n]
		base, labels := splitName(n)
		for _, b := range h.Buckets {
			lbl := fmt.Sprintf(`le="%s"`, b.Le)
			if labels != "" {
				lbl = labels + "," + lbl
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", base, lbl, b.Count); err != nil {
				return err
			}
		}
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, suffix,
			strconv.FormatFloat(h.Sum, 'g', -1, 64)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// DiffCounters returns after's counters minus before's (missing names count
// as zero), for building per-run deltas over a shared registry.
func DiffCounters(before, after Snapshot) map[string]int64 {
	out := make(map[string]int64, len(after.Counters))
	for name, v := range after.Counters {
		if d := v - before.Counters[name]; d != 0 {
			out[name] = d
		}
	}
	return out
}
