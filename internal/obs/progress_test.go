package obs

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestProgressEmitsAndStops(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	logger := FuncLogger(func(format string, args ...interface{}) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	})

	var done atomic.Int64
	stop := StartProgress(logger, 5*time.Millisecond, 100, func() (int64, int64) {
		return done.Load(), done.Load() / 2
	})
	done.Store(40)
	time.Sleep(30 * time.Millisecond)
	done.Store(100)
	stop()
	stop() // idempotent

	mu.Lock()
	defer mu.Unlock()
	if len(lines) < 2 {
		t.Fatalf("expected periodic lines plus a final one, got %v", lines)
	}
	sawProgress := false
	for _, l := range lines[:len(lines)-1] {
		if strings.Contains(l, "join progress:") && strings.Contains(l, "/100 pairs") &&
			strings.Contains(l, "eta") {
			sawProgress = true
		}
	}
	if !sawProgress {
		t.Errorf("no progress line with pairs and eta: %v", lines)
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, "join done: 100/100 pairs") ||
		!strings.Contains(last, "candidate ratio 0.5000") {
		t.Errorf("final line = %q", last)
	}
}

func TestProgressDisabled(t *testing.T) {
	stop := StartProgress(nil, time.Millisecond, 10, func() (int64, int64) { return 0, 0 })
	stop()
	stop = StartProgress(NopLogger{}, 0, 10, func() (int64, int64) { return 0, 0 })
	stop()
}
