package obs

import (
	"time"
)

// ProgressFunc reports a long join's live state: pairs processed so far and
// how many of them survived the filters into verification.
type ProgressFunc func() (done, candidates int64)

// StartProgress launches a goroutine that logs a progress line every
// interval until the returned stop function is called: pairs done out of
// total with a percentage, the candidate ratio so far, elapsed time, and an
// ETA extrapolated from the current rate. A final line is emitted on stop.
// With a nil logger or non-positive interval it does nothing.
func StartProgress(l Logger, interval time.Duration, total int64, f ProgressFunc) (stop func()) {
	if l == nil || interval <= 0 || f == nil {
		return func() {}
	}
	start := time.Now()
	quit := make(chan struct{})
	finished := make(chan struct{})

	emit := func(final bool) {
		done, cands := f()
		elapsed := time.Since(start)
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(done) / float64(total)
		}
		ratio := 0.0
		if done > 0 {
			ratio = float64(cands) / float64(done)
		}
		if final {
			l.Logf("join done: %d/%d pairs, candidate ratio %.4f, elapsed %s",
				done, total, ratio, elapsed.Round(time.Millisecond))
			return
		}
		eta := "?"
		if done > 0 && total > done {
			rem := time.Duration(float64(elapsed) / float64(done) * float64(total-done))
			eta = rem.Round(time.Second).String()
		}
		l.Logf("join progress: %d/%d pairs (%.1f%%), candidate ratio %.4f, elapsed %s, eta %s",
			done, total, pct, ratio, elapsed.Round(time.Millisecond), eta)
	}

	go func() {
		defer close(finished)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				emit(false)
			case <-quit:
				emit(true)
				return
			}
		}
	}()

	var once bool
	return func() {
		if once {
			return
		}
		once = true
		close(quit)
		<-finished
	}
}
