package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one completed timed operation. Parent is 0 for root spans.
type Span struct {
	ID       uint64
	Parent   uint64
	Name     string
	Start    time.Time
	Duration time.Duration
}

// Tracer records completed spans into a bounded ring buffer: the most recent
// Cap spans are kept, older ones are overwritten and counted as dropped.
// A nil *Tracer discards everything. Safe for concurrent use.
type Tracer struct {
	seq     atomic.Uint64
	dropped atomic.Int64
	// publishedDropped is the SyncDroppedCounter watermark: how much of
	// dropped has already been added to a registry counter.
	publishedDropped atomic.Int64

	mu   sync.Mutex
	ring []Span
	next int
	full bool
}

// DefaultTraceCapacity is the ring size used when NewTracer is given a
// non-positive capacity.
const DefaultTraceCapacity = 4096

// NewTracer returns a tracer keeping the last capacity spans
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]Span, capacity)}
}

// Record stores a completed root span; nil-safe. Hot paths that already
// track their own start times should prefer Record over StartSpan to avoid
// context plumbing.
func (t *Tracer) Record(name string, start time.Time, d time.Duration) {
	t.record(Span{Name: name, Start: start, Duration: d})
}

func (t *Tracer) record(s Span) {
	if t == nil {
		return
	}
	if s.ID == 0 {
		s.ID = t.seq.Add(1)
	}
	t.mu.Lock()
	if t.full {
		t.dropped.Add(1)
	}
	t.ring[t.next] = s
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Dropped returns how many spans were overwritten by ring wrap-around.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// SyncDroppedCounter publishes the tracer's cumulative drop count into reg
// as the obs_spans_dropped_total counter, adding only the delta since the
// previous sync so a registry shared across runs stays monotone. Nil-safe on
// both sides.
func (t *Tracer) SyncDroppedCounter(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	d := t.dropped.Load()
	if d == 0 && t.publishedDropped.Load() == 0 {
		return
	}
	prev := t.publishedDropped.Swap(d)
	if d > prev {
		reg.Counter("obs_spans_dropped_total").Add(d - prev)
	}
}

// Spans returns the retained spans in chronological (recording) order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	if t.full {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	return out
}

// traceEvent is one Chrome trace_event entry ("X" = complete event,
// "i" = instant event).
type traceEvent struct {
	Name  string                 `json:"name"`
	Ph    string                 `json:"ph"`
	Ts    int64                  `json:"ts"`  // microseconds
	Dur   int64                  `json:"dur"` // microseconds
	Pid   int                    `json:"pid"`
	Tid   int                    `json:"tid"`
	Scope string                 `json:"s,omitempty"` // instant-event scope
	Args  map[string]interface{} `json:"args,omitempty"`
}

// WriteChromeTrace exports the retained spans as a Chrome trace_event JSON
// array (load it at chrome://tracing or https://ui.perfetto.dev). Timestamps
// are relative to the earliest retained span. When the ring buffer wrapped
// and spans were lost, a global instant event at t=0 warns that the trace is
// incomplete (and by how many spans) instead of losing them silently.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	var epoch time.Time
	if len(spans) > 0 {
		epoch = spans[0].Start
	}
	events := make([]traceEvent, 0, len(spans)+1)
	if n := t.Dropped(); n > 0 {
		events = append(events, traceEvent{
			Name:  fmt.Sprintf("WARNING: %d spans dropped (trace ring wrapped; raise the tracer capacity)", n),
			Ph:    "i",
			Pid:   1,
			Tid:   1,
			Scope: "g",
			Args:  map[string]interface{}{"dropped_spans": n, "ring_capacity": len(t.ring)},
		})
	}
	for _, s := range spans {
		ev := traceEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   s.Start.Sub(epoch).Microseconds(),
			Dur:  s.Duration.Microseconds(),
			Pid:  1,
			Tid:  1,
		}
		if s.Parent != 0 {
			ev.Args = map[string]interface{}{"id": s.ID, "parent": s.Parent}
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// WithTracer returns a context carrying t; StartSpan picks it up.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the tracer carried by ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// StartSpan opens a span named name under the tracer (and parent span)
// carried by ctx. The returned context carries the new span as parent for
// nested StartSpan calls; end records the span and must be called exactly
// once. Without a tracer in ctx both returns are cheap no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, func()) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, func() {}
	}
	id := t.seq.Add(1)
	parent, _ := ctx.Value(spanKey).(uint64)
	start := time.Now()
	ctx = context.WithValue(ctx, spanKey, id)
	return ctx, func() {
		t.record(Span{ID: id, Parent: parent, Name: name, Start: start, Duration: time.Since(start)})
	}
}
