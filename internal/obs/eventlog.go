package obs

// Sampled "wide event" logging for the join pipeline.
//
// Aggregate counters answer "how much", but not "which pairs" — once the
// filter chain is reorderable and the verdict ladder degrades per pair, the
// question "why was this pair slow / pruned / undecided" needs one structured
// record per decision. Logging every pair would dominate the join, so the
// EventLog samples: every Nth pair emits one JSONL record carrying the pair
// ids, each bound's outcome and duration, the verdict-ladder rung that
// decided the pair, and the work counters (worlds enumerated, GED calls and
// A* states expanded, per-stage nanoseconds).
//
// The write path is built for the join's concurrency profile: each worker
// owns an EventBuffer and encodes events into it with zero steady-state
// allocations (manual JSON append into a reused byte slice). Buffers flush
// to the shared writer opportunistically (TryLock) so a slow sink never
// blocks a worker; a buffer that cannot flush before exceeding its cap drops
// its pending events and counts them, bounding both memory and interference.

import (
	"io"
	"strconv"
	"sync"
	"sync/atomic"
)

const (
	// eventFlushBytes is the buffered size past which a worker attempts an
	// opportunistic flush after each emit.
	eventFlushBytes = 32 << 10
	// eventMaxBuffer caps a worker's pending bytes: if the shared writer is
	// contended and the buffer grows past this, the pending events are
	// dropped (and counted) instead of growing without bound.
	eventMaxBuffer = 256 << 10
)

// EventLog is the shared sink of the sampled pair-decision records: it owns
// the sampling counter, the output writer, and the emitted/dropped tallies.
// A nil *EventLog never samples and discards everything. Safe for concurrent
// use; workers write through per-worker EventBuffers (NewBuffer).
type EventLog struct {
	every   int64
	n       atomic.Int64
	emitted atomic.Int64
	dropped atomic.Int64

	// published* are sync watermarks for SyncCounters (delta publication
	// into a registry shared across runs).
	publishedEmitted atomic.Int64
	publishedDropped atomic.Int64

	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewEventLog returns an event log sampling one pair in every `every`
// (every <= 1 records all pairs), writing JSONL records to w.
func NewEventLog(w io.Writer, every int) *EventLog {
	if every < 1 {
		every = 1
	}
	return &EventLog{every: int64(every), w: w}
}

// Sample reports whether the caller's current pair is a sampled one. It is
// the per-pair fast path: one atomic add, no allocation, nil-safe.
func (l *EventLog) Sample() bool {
	if l == nil {
		return false
	}
	return (l.n.Add(1)-1)%l.every == 0
}

// Sampled returns how many pairs passed through Sample (emitted or not).
func (l *EventLog) Sampled() int64 {
	if l == nil {
		return 0
	}
	return l.n.Load()
}

// Emitted returns how many events were written to the sink.
func (l *EventLog) Emitted() int64 {
	if l == nil {
		return 0
	}
	return l.emitted.Load()
}

// Dropped returns how many events were discarded: buffer overflow under
// contention, or events pending when the sink had already failed.
func (l *EventLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	return l.dropped.Load()
}

// Err returns the first write error the sink reported, if any.
func (l *EventLog) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// SyncCounters publishes the log's emitted/dropped tallies into reg as the
// obs_events_emitted_total / obs_events_dropped_total counters, adding only
// the delta since the previous sync (registries are cumulative across runs).
// Nil-safe on both sides.
func (l *EventLog) SyncCounters(reg *Registry) {
	if l == nil || reg == nil {
		return
	}
	if e := l.emitted.Load(); e > 0 || l.publishedEmitted.Load() > 0 {
		prev := l.publishedEmitted.Swap(e)
		if e > prev {
			reg.Counter("obs_events_emitted_total").Add(e - prev)
		}
	}
	if d := l.dropped.Load(); d > 0 || l.publishedDropped.Load() > 0 {
		prev := l.publishedDropped.Swap(d)
		if d > prev {
			reg.Counter("obs_events_dropped_total").Add(d - prev)
		}
	}
}

// NewBuffer returns a per-worker buffer writing into l. Returns nil for a
// nil log; a nil *EventBuffer discards emits.
func (l *EventLog) NewBuffer() *EventBuffer {
	if l == nil {
		return nil
	}
	return &EventBuffer{l: l, buf: make([]byte, 0, eventFlushBytes+4<<10)}
}

// EventBuffer is one worker's private staging area: events are encoded into
// buf without synchronisation and handed to the shared sink in batches. Not
// safe for concurrent use (one buffer per worker).
type EventBuffer struct {
	l       *EventLog
	buf     []byte
	pending int64
}

// BoundObs is one filter-chain stage's outcome on the sampled pair.
type BoundObs struct {
	Bound  string // registry name of the bound
	Ns     int64  // evaluation wall time
	Pruned bool
}

// PairEvent is one sampled pair decision. Callers reuse one PairEvent (and
// its Bounds slice) per worker; Emit copies everything it needs into the
// buffer.
type PairEvent struct {
	Q, G   int
	Bounds []BoundObs

	// Verdict is the decision path: "pruned" when a bound eliminated the
	// pair, otherwise the verdict-ladder rung ("exact", "sampled",
	// "approx-bound", "undecided").
	Verdict string
	// PrunedBy names the pruning bound when Verdict == "pruned".
	PrunedBy string
	// Result and SimP describe an accepted pair.
	Result bool
	SimP   float64

	// Work counters, scoped to this pair.
	Worlds    int64 // possible worlds enumerated during verification
	GEDCalls  int64 // exact GED computations run
	GEDStates int64 // A* states expanded across those calls

	// Stage latencies in nanoseconds.
	PruneNs  int64
	VerifyNs int64
	TotalNs  int64
}

// Emit encodes ev as one JSONL record into the buffer and opportunistically
// flushes. Allocation-free in steady state (the buffer is reused across
// flushes); nil-safe.
func (b *EventBuffer) Emit(ev *PairEvent) {
	if b == nil {
		return
	}
	b.buf = appendEvent(b.buf, ev)
	b.pending++
	if len(b.buf) >= eventFlushBytes && !b.tryFlush() && len(b.buf) > eventMaxBuffer {
		// The sink is contended and the buffer is past its cap: drop the
		// pending batch rather than stall the worker or grow without bound.
		b.l.dropped.Add(b.pending)
		b.pending = 0
		b.buf = b.buf[:0]
	}
}

// Flush writes any pending events to the sink, blocking on the sink lock.
// Workers call it once when they finish; nil-safe.
func (b *EventBuffer) Flush() {
	if b == nil || b.pending == 0 {
		return
	}
	b.l.mu.Lock()
	b.flushLocked()
	b.l.mu.Unlock()
}

func (b *EventBuffer) tryFlush() bool {
	if !b.l.mu.TryLock() {
		return false
	}
	b.flushLocked()
	b.l.mu.Unlock()
	return true
}

func (b *EventBuffer) flushLocked() {
	if b.pending == 0 {
		return
	}
	if b.l.err == nil {
		if _, err := b.l.w.Write(b.buf); err != nil {
			b.l.err = err
		}
	}
	if b.l.err != nil {
		b.l.dropped.Add(b.pending)
	} else {
		b.l.emitted.Add(b.pending)
	}
	b.pending = 0
	b.buf = b.buf[:0]
}

// appendEvent appends ev as one JSON line. Field names are part of the
// event-log contract documented in DESIGN.md §12 (a test keeps them in
// sync); encoding is manual so the hot path never allocates.
func appendEvent(buf []byte, ev *PairEvent) []byte {
	buf = append(buf, `{"q":`...)
	buf = strconv.AppendInt(buf, int64(ev.Q), 10)
	buf = append(buf, `,"g":`...)
	buf = strconv.AppendInt(buf, int64(ev.G), 10)
	if len(ev.Bounds) > 0 {
		buf = append(buf, `,"bounds":[`...)
		for i := range ev.Bounds {
			bo := &ev.Bounds[i]
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, `{"b":`...)
			buf = appendJSONString(buf, bo.Bound)
			buf = append(buf, `,"ns":`...)
			buf = strconv.AppendInt(buf, bo.Ns, 10)
			if bo.Pruned {
				buf = append(buf, `,"pruned":true`...)
			}
			buf = append(buf, '}')
		}
		buf = append(buf, ']')
	}
	buf = append(buf, `,"verdict":`...)
	buf = appendJSONString(buf, ev.Verdict)
	if ev.PrunedBy != "" {
		buf = append(buf, `,"pruned_by":`...)
		buf = appendJSONString(buf, ev.PrunedBy)
	}
	if ev.Result {
		buf = append(buf, `,"result":true,"simp":`...)
		buf = strconv.AppendFloat(buf, ev.SimP, 'g', -1, 64)
	}
	buf = append(buf, `,"worlds":`...)
	buf = strconv.AppendInt(buf, ev.Worlds, 10)
	buf = append(buf, `,"ged_calls":`...)
	buf = strconv.AppendInt(buf, ev.GEDCalls, 10)
	buf = append(buf, `,"ged_states":`...)
	buf = strconv.AppendInt(buf, ev.GEDStates, 10)
	buf = append(buf, `,"prune_ns":`...)
	buf = strconv.AppendInt(buf, ev.PruneNs, 10)
	buf = append(buf, `,"verify_ns":`...)
	buf = strconv.AppendInt(buf, ev.VerifyNs, 10)
	buf = append(buf, `,"total_ns":`...)
	buf = strconv.AppendInt(buf, ev.TotalNs, 10)
	buf = append(buf, '}', '\n')
	return buf
}

// appendJSONString appends s as a JSON string literal, escaping quotes,
// backslashes and control characters. Bound names and verdict strings are
// plain ASCII, so the fast path is a straight copy.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' {
			continue
		}
		buf = append(buf, s[start:i]...)
		switch c {
		case '"':
			buf = append(buf, '\\', '"')
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		case '\r':
			buf = append(buf, '\\', 'r')
		case '\t':
			buf = append(buf, '\\', 't')
		default:
			buf = append(buf, '\\', 'u', '0', '0',
				hexDigit(c>>4), hexDigit(c&0xf))
		}
		start = i + 1
	}
	buf = append(buf, s[start:]...)
	return append(buf, '"')
}

func hexDigit(n byte) byte {
	if n < 10 {
		return '0' + n
	}
	return 'a' + n - 10
}
