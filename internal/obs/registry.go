package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64. The zero value is usable
// standalone; a nil *Counter discards writes.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (callers should keep counters monotone; Add of a negative n is
// not checked).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count; 0 for a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64. The zero value is usable standalone; a nil
// *Gauge discards writes.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta atomically.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value; 0 for a nil gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed upper-bound buckets (plus an
// implicit +Inf bucket) and tracks the running sum and count. A nil
// *Histogram discards observations.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf excluded
	counts  []atomic.Int64
	sumBits atomic.Uint64
	count   atomic.Int64
}

// DurationBuckets suits operation latencies from microseconds to minutes,
// in seconds.
var DurationBuckets = []float64{
	1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1, 5, 30, 120,
}

// CountBuckets suits sizes such as A* states expanded or worlds enumerated,
// in decades.
var CountBuckets = []float64{
	1, 10, 100, 1e3, 1e4, 1e5, 1e6, 1e7,
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations; 0 for a nil histogram.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values; 0 for a nil histogram.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Registry owns named instruments. Lookups are idempotent: the same name
// always yields the same handle. A nil *Registry hands out nil instruments,
// making the disabled path free of allocations and locks.
type Registry struct {
	mu     sync.RWMutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil when r is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counts[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counts[name]; c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// Returns nil when r is nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds on first use (later calls reuse the original
// buckets). Returns nil when r is nil.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(buckets)
		r.hists[name] = h
	}
	return h
}

// Name builds a metric name carrying label pairs in Prometheus syntax:
// Name("qa_questions_total", "system", "template") returns
// `qa_questions_total{system="template"}`. Labels are sorted by key so the
// same set always produces the same registry key.
func Name(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	type pair struct{ k, v string }
	ps := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		ps = append(ps, pair{kv[i], kv[i+1]})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].k < ps[j].k })
	var sb strings.Builder
	sb.WriteString(base)
	sb.WriteByte('{')
	for i, p := range ps {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(p.v))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// splitName separates a possibly labelled metric name into its base name and
// the label body (without braces); labels is empty when the name is plain.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}
