package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestStartSpanNesting(t *testing.T) {
	tr := NewTracer(16)
	ctx := WithTracer(context.Background(), tr)
	octx, endOuter := StartSpan(ctx, "outer")
	_, endInner := StartSpan(octx, "inner")
	endInner()
	endOuter()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	inner, outer := spans[0], spans[1] // inner ends first
	if inner.Name != "inner" || outer.Name != "outer" {
		t.Fatalf("span order: %q, %q", inner.Name, outer.Name)
	}
	if inner.Parent != outer.ID {
		t.Errorf("inner.Parent = %d, want outer ID %d", inner.Parent, outer.ID)
	}
	if outer.Parent != 0 {
		t.Errorf("outer.Parent = %d, want 0 (root)", outer.Parent)
	}
}

func TestStartSpanWithoutTracer(t *testing.T) {
	ctx, end := StartSpan(context.Background(), "x")
	if ctx == nil {
		t.Fatal("nil ctx")
	}
	end() // must not panic
	if TracerFrom(ctx) != nil {
		t.Error("no tracer expected")
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record("s", time.Now(), time.Millisecond)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	if tr.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", tr.Dropped())
	}
	// Retained spans are the most recent ones, in order.
	for i := 1; i < len(spans); i++ {
		if spans[i].ID <= spans[i-1].ID {
			t.Errorf("span IDs not chronological: %d then %d", spans[i-1].ID, spans[i].ID)
		}
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Record("p", time.Now(), time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 64 {
		t.Errorf("retained %d, want 64", got)
	}
	if tr.Dropped() != 8*100-64 {
		t.Errorf("dropped = %d, want %d", tr.Dropped(), 8*100-64)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(8)
	base := time.Now()
	tr.record(Span{Name: "prune", Start: base, Duration: 2 * time.Millisecond})
	tr.record(Span{Name: "verify", Parent: 1, Start: base.Add(time.Millisecond), Duration: 5 * time.Millisecond})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("not a JSON array: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0]["name"] != "prune" || events[0]["ph"] != "X" {
		t.Errorf("event 0: %v", events[0])
	}
	if events[0]["ts"].(float64) != 0 {
		t.Errorf("epoch-relative ts expected, got %v", events[0]["ts"])
	}
	if events[1]["dur"].(float64) != 5000 {
		t.Errorf("dur = %v, want 5000us", events[1]["dur"])
	}
	if events[1]["args"].(map[string]interface{})["parent"].(float64) != 1 {
		t.Errorf("parent arg missing: %v", events[1])
	}

	// Empty tracer still emits a valid (empty) array.
	buf.Reset()
	if err := NewTracer(2).WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var empty []interface{}
	if err := json.Unmarshal(buf.Bytes(), &empty); err != nil || len(empty) != 0 {
		t.Errorf("empty trace: %v %v", err, empty)
	}
}
