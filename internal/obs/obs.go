// Package obs is the observability substrate of the simjoin system: a
// dependency-free, concurrency-safe metrics registry (counters, gauges,
// fixed-bucket histograms), lightweight span tracing into a bounded ring
// buffer, a periodic progress reporter, and an optional HTTP debug endpoint
// exposing everything in Prometheus text-exposition format and JSON next to
// expvar and net/http/pprof.
//
// Every instrument is safe to use with a nil receiver: a nil *Counter,
// *Gauge, *Histogram or *Tracer silently discards writes, so pipeline code
// records unconditionally and pays only a nil check when observability is
// disabled. Handles are obtained from a *Registry (nil Registry hands out
// nil instruments) and hot paths should hold onto them rather than re-resolve
// names per event.
package obs

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Logger receives human-readable progress and status lines from long-running
// operations. Implementations must be safe for concurrent use.
type Logger interface {
	Logf(format string, args ...interface{})
}

// NopLogger discards everything.
type NopLogger struct{}

// Logf implements Logger.
func (NopLogger) Logf(string, ...interface{}) {}

// writerLogger timestamps each line and writes it to w under a mutex.
type writerLogger struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWriterLogger returns a Logger writing timestamped lines to w.
func NewWriterLogger(w io.Writer) Logger { return &writerLogger{w: w} }

// StderrLogger returns a Logger writing timestamped lines to standard error.
func StderrLogger() Logger { return NewWriterLogger(os.Stderr) }

// Logf implements Logger.
func (l *writerLogger) Logf(format string, args ...interface{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, "%s "+format+"\n",
		append([]interface{}{time.Now().Format("15:04:05.000")}, args...)...)
}

// FuncLogger adapts a function to Logger (handy in tests).
type FuncLogger func(format string, args ...interface{})

// Logf implements Logger.
func (f FuncLogger) Logf(format string, args ...interface{}) { f(format, args...) }
