package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Handler returns the debug mux: Prometheus metrics at /metrics, the JSON
// snapshot at /metrics.json, the Chrome trace export at /debug/trace,
// expvar at /debug/vars, and the pprof suite under /debug/pprof/. reg and tr
// may be nil; the corresponding endpoints then serve empty documents.
func Handler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = tr.WriteChromeTrace(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, `<html><body><h1>simjoin debug</h1><ul>
<li><a href="/metrics">/metrics</a> (Prometheus text)</li>
<li><a href="/metrics.json">/metrics.json</a> (JSON snapshot)</li>
<li><a href="/debug/trace">/debug/trace</a> (Chrome trace_event spans)</li>
<li><a href="/debug/vars">/debug/vars</a> (expvar)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a></li>
</ul></body></html>`)
	})
	return mux
}

// Server is a running debug endpoint.
type Server struct {
	// Addr is the bound address (useful with ":0" listeners).
	Addr string
	ln   net.Listener
	srv  *http.Server
}

// Close shuts the listener down.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

var expvarOnce sync.Once

// Serve binds addr and serves Handler(reg, tr) in a background goroutine.
// It also publishes the registry snapshot as the expvar "simjoin.obs" so
// /debug/vars carries the same numbers. The returned Server reports the
// actual bound address and must be Closed by the caller.
func Serve(addr string, reg *Registry, tr *Tracer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug endpoint: %w", err)
	}
	if reg != nil {
		expvarOnce.Do(func() {
			expvar.Publish("simjoin.obs", expvar.Func(func() interface{} {
				return reg.Snapshot()
			}))
		})
	}
	srv := &http.Server{Handler: Handler(reg, tr)}
	go func() { _ = srv.Serve(ln) }()
	return &Server{Addr: ln.Addr().String(), ln: ln, srv: srv}, nil
}
