// Package metrics implements the evaluation measures of §7.1.2 and the QALD
// macro-averaged precision/recall/F-measure of Appendix F.2.
package metrics

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// SetPRF computes precision, recall and F1 between an answer set and a gold
// set (both as string sets). By QALD convention an empty answer set against
// an empty gold set scores 1/1/1; an empty answer set against a non-empty
// gold set scores 0.
func SetPRF(answers, gold map[string]bool) (p, r, f float64) {
	if len(answers) == 0 && len(gold) == 0 {
		return 1, 1, 1
	}
	if len(answers) == 0 || len(gold) == 0 {
		return 0, 0, 0
	}
	correct := 0
	for a := range answers {
		if gold[a] {
			correct++
		}
	}
	p = float64(correct) / float64(len(answers))
	r = float64(correct) / float64(len(gold))
	if p+r > 0 {
		f = 2 * p * r / (p + r)
	}
	return p, r, f
}

// QALD accumulates per-question precision/recall/F1 and reports the
// macro-average over all questions, counting unanswered questions as zeros
// (the global QALD measure).
type QALD struct {
	n          int
	sumP, sumR float64
	sumF       float64
	answered   int
}

// AddAnswered records one answered question's scores.
func (q *QALD) AddAnswered(p, r, f float64) {
	q.n++
	q.answered++
	q.sumP += p
	q.sumR += r
	q.sumF += f
}

// AddUnanswered records a question the system abstained on.
func (q *QALD) AddUnanswered() { q.n++ }

// Macro returns the macro-averaged precision, recall and F1.
func (q *QALD) Macro() (p, r, f float64) {
	if q.n == 0 {
		return 0, 0, 0
	}
	return q.sumP / float64(q.n), q.sumR / float64(q.n), q.sumF / float64(q.n)
}

// Answered returns how many of the n questions were answered.
func (q *QALD) Answered() (answered, total int) { return q.answered, q.n }

// Ratio is a guarded division returning 0 for a zero denominator.
func Ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Table renders rows with aligned columns for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if _, err := fmt.Fprintln(tw, strings.Join(t.header, "\t")); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(tw, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return tw.Flush()
}
