package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func set(items ...string) map[string]bool {
	m := make(map[string]bool, len(items))
	for _, i := range items {
		m[i] = true
	}
	return m
}

func TestSetPRF(t *testing.T) {
	cases := []struct {
		name       string
		ans, gold  map[string]bool
		wp, wr, wf float64
	}{
		{"perfect", set("a", "b"), set("a", "b"), 1, 1, 1},
		{"half precision", set("a", "x"), set("a", "b"), 0.5, 0.5, 0.5},
		{"subset", set("a"), set("a", "b"), 1, 0.5, 2.0 / 3.0},
		{"disjoint", set("x"), set("a"), 0, 0, 0},
		{"both empty", set(), set(), 1, 1, 1},
		{"empty answers", set(), set("a"), 0, 0, 0},
		{"empty gold", set("a"), set(), 0, 0, 0},
	}
	for _, c := range cases {
		p, r, f := SetPRF(c.ans, c.gold)
		if math.Abs(p-c.wp) > 1e-12 || math.Abs(r-c.wr) > 1e-12 || math.Abs(f-c.wf) > 1e-12 {
			t.Errorf("%s: got %v/%v/%v want %v/%v/%v", c.name, p, r, f, c.wp, c.wr, c.wf)
		}
	}
}

func TestQALDMacro(t *testing.T) {
	var q QALD
	q.AddAnswered(1, 1, 1)
	q.AddAnswered(0.5, 0.5, 0.5)
	q.AddUnanswered()
	p, r, f := q.Macro()
	if math.Abs(p-0.5) > 1e-12 || math.Abs(r-0.5) > 1e-12 || math.Abs(f-0.5) > 1e-12 {
		t.Errorf("Macro = %v/%v/%v, want 0.5 each", p, r, f)
	}
	answered, total := q.Answered()
	if answered != 2 || total != 3 {
		t.Errorf("Answered = %d/%d", answered, total)
	}
	var empty QALD
	if p, _, _ := empty.Macro(); p != 0 {
		t.Error("empty QALD should macro to zero")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("division by zero not guarded")
	}
	if Ratio(1, 4) != 0.25 {
		t.Error("Ratio(1,4) != 0.25")
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("a", "b")
	tab.AddRow(1, 2.5)
	tab.AddRow("x", 0.333333333)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("rendered %d lines, want 3:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "a") || !strings.Contains(lines[2], "0.3333") {
		t.Errorf("unexpected render:\n%s", out)
	}
}
