package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// columnStarts returns the byte offsets where cells begin on a rendered
// line: position 0 plus every non-space character preceded by at least two
// spaces (the tabwriter padding).
func columnStarts(line string) []int {
	starts := []int{0}
	spaces := 0
	for i, c := range line {
		if c == ' ' {
			spaces++
			continue
		}
		if spaces >= 2 {
			starts = append(starts, i)
		}
		spaces = 0
	}
	return starts
}

func TestTableRenderColumnAlignment(t *testing.T) {
	tab := NewTable("name", "count", "ratio")
	tab.AddRow("a", 1, 0.5)
	tab.AddRow("much-longer-name", 123456, 0.0001)
	tab.AddRow("mid", 42, 1.0)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4:\n%s", len(lines), buf.String())
	}
	want := columnStarts(lines[0])
	if len(want) != 3 {
		t.Fatalf("header has %d columns, want 3: %q", len(want), lines[0])
	}
	for i, line := range lines[1:] {
		got := columnStarts(line)
		if len(got) != len(want) {
			t.Fatalf("row %d has %d columns, want %d: %q", i, len(got), len(want), line)
		}
		for c := range got {
			if got[c] != want[c] {
				t.Errorf("row %d column %d starts at %d, header at %d:\n%s",
					i, c, got[c], want[c], buf.String())
			}
		}
	}
}

func TestTableRenderEmpty(t *testing.T) {
	tab := NewTable("only", "header")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Fatalf("headers-only table rendered %d lines, want 1", got)
	}
}

// TestSetPRFEmptySetConventions pins the QALD edge-case conventions down
// individually so a regression reports which convention broke.
func TestSetPRFEmptySetConventions(t *testing.T) {
	if p, r, f := SetPRF(set(), set()); p != 1 || r != 1 || f != 1 {
		t.Errorf("empty vs empty = %v/%v/%v, QALD convention is 1/1/1", p, r, f)
	}
	if p, r, f := SetPRF(set(), set("gold")); p != 0 || r != 0 || f != 0 {
		t.Errorf("empty answers vs gold = %v/%v/%v, want 0/0/0", p, r, f)
	}
	if p, r, f := SetPRF(set("a"), set()); p != 0 || r != 0 || f != 0 {
		t.Errorf("answers vs empty gold = %v/%v/%v, want 0/0/0", p, r, f)
	}
}

// TestSetPRFHarmonicMean checks F1 is the harmonic mean of P and R on
// non-degenerate inputs.
func TestSetPRFHarmonicMean(t *testing.T) {
	cases := []struct{ ans, gold map[string]bool }{
		{set("a", "b", "c"), set("b", "c", "d", "e")},
		{set("a"), set("a", "b", "c")},
		{set("a", "b", "x", "y"), set("a")},
	}
	for i, c := range cases {
		p, r, f := SetPRF(c.ans, c.gold)
		want := 0.0
		if p+r > 0 {
			want = 2 * p * r / (p + r)
		}
		if math.Abs(f-want) > 1e-12 {
			t.Errorf("case %d: F = %v, harmonic mean of %v and %v is %v", i, f, p, r, want)
		}
	}
}

// TestQALDMacroMixed checks the macro average divides by ALL questions,
// answered or not — the global QALD measure — across several mixes.
func TestQALDMacroMixed(t *testing.T) {
	var q QALD
	q.AddAnswered(1, 1, 1)
	for i := 0; i < 3; i++ {
		q.AddUnanswered()
	}
	p, r, f := q.Macro()
	if math.Abs(p-0.25) > 1e-12 || math.Abs(r-0.25) > 1e-12 || math.Abs(f-0.25) > 1e-12 {
		t.Errorf("1 perfect + 3 unanswered: macro = %v/%v/%v, want 0.25 each", p, r, f)
	}
	if answered, total := q.Answered(); answered != 1 || total != 4 {
		t.Errorf("Answered = %d/%d, want 1/4", answered, total)
	}

	var only QALD
	only.AddUnanswered()
	only.AddUnanswered()
	if p, r, f := only.Macro(); p != 0 || r != 0 || f != 0 {
		t.Errorf("all unanswered: macro = %v/%v/%v, want zeros", p, r, f)
	}

	var asym QALD
	asym.AddAnswered(1, 0.5, 2.0/3.0)
	asym.AddAnswered(0.5, 1, 2.0/3.0)
	asym.AddUnanswered()
	asym.AddUnanswered()
	p, r, f = asym.Macro()
	if math.Abs(p-0.375) > 1e-12 || math.Abs(r-0.375) > 1e-12 || math.Abs(f-1.0/3.0) > 1e-12 {
		t.Errorf("asymmetric mix: macro = %v/%v/%v, want 0.375/0.375/0.3333", p, r, f)
	}
}
