package rdf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ReadNTriples loads triples from a simplified N-Triples stream into the
// store: one `<s> <p> <o> .` or `<s> <p> "literal" .` statement per line,
// with `#` comments and blank lines ignored. IRIs are stored as their local
// names (the text inside the angle brackets); literals keep their unquoted
// form. It returns the number of triples added.
func (st *Store) ReadNTriples(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	n := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		t, err := parseNTripleLine(text)
		if err != nil {
			return n, fmt.Errorf("rdf: line %d: %w", line, err)
		}
		if err := st.Add(t.S, t.P, t.O); err != nil {
			return n, fmt.Errorf("rdf: line %d: %w", line, err)
		}
		n++
	}
	return n, sc.Err()
}

func parseNTripleLine(text string) (Triple, error) {
	text = strings.TrimSuffix(strings.TrimSpace(text), ".")
	text = strings.TrimSpace(text)
	var terms []string
	for len(text) > 0 {
		text = strings.TrimSpace(text)
		switch {
		case strings.HasPrefix(text, "<"):
			end := strings.IndexByte(text, '>')
			if end < 0 {
				return Triple{}, fmt.Errorf("unterminated IRI in %q", text)
			}
			terms = append(terms, text[1:end])
			text = text[end+1:]
		case strings.HasPrefix(text, `"`):
			end := strings.IndexByte(text[1:], '"')
			if end < 0 {
				return Triple{}, fmt.Errorf("unterminated literal in %q", text)
			}
			terms = append(terms, text[1:1+end])
			text = text[end+2:]
		default:
			return Triple{}, fmt.Errorf("unexpected token at %q", text)
		}
	}
	if len(terms) != 3 {
		return Triple{}, fmt.Errorf("expected 3 terms, found %d", len(terms))
	}
	// Reject terms the writer cannot re-serialise: subjects and predicates
	// always go back inside angle brackets, where a '>' would cut the
	// re-read short; objects holding a '"' must be bracketed, which rules
	// out '>' and the whitespace that forces quoting.
	for _, term := range terms[:2] {
		if strings.ContainsRune(term, '>') {
			return Triple{}, fmt.Errorf("'>' in subject/predicate term %q", term)
		}
	}
	if strings.ContainsRune(terms[2], '"') && strings.ContainsAny(terms[2], " \t>") {
		return Triple{}, fmt.Errorf("unserialisable object term %q", terms[2])
	}
	return Triple{terms[0], terms[1], terms[2]}, nil
}

// WriteNTriples serialises the store in deterministic order using the same
// simplified syntax ReadNTriples accepts. Terms containing spaces are written
// as literals, everything else as IRIs.
func (st *Store) WriteNTriples(w io.Writer) error {
	ts := st.Triples()
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].S != ts[j].S {
			return ts[i].S < ts[j].S
		}
		if ts[i].P != ts[j].P {
			return ts[i].P < ts[j].P
		}
		return ts[i].O < ts[j].O
	})
	bw := bufio.NewWriter(w)
	for _, t := range ts {
		if _, err := fmt.Fprintf(bw, "<%s> <%s> %s .\n", t.S, t.P, formatObject(t.O)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func formatObject(o string) string {
	// Quoting must cover '>' too: a bracketed term stops at the first '>'
	// on the way back in.
	if strings.ContainsAny(o, " \t>") {
		return `"` + o + `"`
	}
	return "<" + o + ">"
}
