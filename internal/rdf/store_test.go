package rdf

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func demoStore(t *testing.T) *Store {
	t.Helper()
	st := NewStore()
	st.MustAdd("Alice", "type", "Artist")
	st.MustAdd("Alice", "graduatedFrom", "Harvard_University")
	st.MustAdd("Bob", "type", "Politician")
	st.MustAdd("Bob", "graduatedFrom", "Harvard_University")
	st.MustAdd("Harvard_University", "type", "University")
	return st
}

func TestAddAndContains(t *testing.T) {
	st := demoStore(t)
	if st.Len() != 5 {
		t.Fatalf("Len = %d, want 5", st.Len())
	}
	if !st.Contains("Alice", "type", "Artist") {
		t.Error("missing stored triple")
	}
	if st.Contains("Alice", "type", "Politician") {
		t.Error("phantom triple")
	}
	// Duplicate insert is a no-op.
	st.MustAdd("Alice", "type", "Artist")
	if st.Len() != 5 {
		t.Errorf("duplicate changed Len to %d", st.Len())
	}
}

func TestAddRejects(t *testing.T) {
	st := NewStore()
	if err := st.Add("", "p", "o"); err == nil {
		t.Error("empty subject accepted")
	}
	if err := st.Add("s", "p", "?v"); err == nil {
		t.Error("variable object accepted")
	}
}

func TestMatchAllPatternShapes(t *testing.T) {
	st := demoStore(t)
	cases := []struct {
		s, p, o string
		want    int
	}{
		{"Alice", "type", "Artist", 1},
		{"Alice", "type", "?o", 1},
		{"?s", "type", "Artist", 1},
		{"Alice", "?p", "Harvard_University", 1},
		{"Alice", "?p", "?o", 2},
		{"?s", "graduatedFrom", "?o", 2},
		{"?s", "?p", "Harvard_University", 2},
		{"?s", "?p", "?o", 5},
		{"Nobody", "type", "?o", 0},
		{"?s", "worksAt", "?o", 0},
	}
	for _, c := range cases {
		if got := st.MatchCount(c.s, c.p, c.o); got != c.want {
			t.Errorf("MatchCount(%q,%q,%q) = %d, want %d", c.s, c.p, c.o, got, c.want)
		}
	}
}

func TestMatchEarlyStop(t *testing.T) {
	st := demoStore(t)
	n := 0
	st.Match("?s", "?p", "?o", func(Triple) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d, want 1", n)
	}
	n = 0
	st.Match("?s", "graduatedFrom", "?o", func(Triple) bool { n++; return false })
	if n != 1 {
		t.Fatalf("indexed early stop visited %d, want 1", n)
	}
}

func TestMatchEmptyStringIsWildcard(t *testing.T) {
	st := demoStore(t)
	if got := st.MatchCount("", "type", ""); got != 3 {
		t.Errorf("MatchCount with empty wildcards = %d, want 3", got)
	}
}

func TestSubjects(t *testing.T) {
	st := demoStore(t)
	var subs []string
	st.Subjects(func(s string) bool { subs = append(subs, s); return true })
	sort.Strings(subs)
	want := []string{"Alice", "Bob", "Harvard_University"}
	if len(subs) != len(want) {
		t.Fatalf("Subjects = %v, want %v", subs, want)
	}
	for i := range want {
		if subs[i] != want[i] {
			t.Fatalf("Subjects = %v, want %v", subs, want)
		}
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	st := demoStore(t)
	st.MustAdd("Alice", "name", "Alice B Smith") // literal with spaces
	var buf bytes.Buffer
	if err := st.WriteNTriples(&buf); err != nil {
		t.Fatal(err)
	}
	st2 := NewStore()
	n, err := st2.ReadNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != st.Len() || st2.Len() != st.Len() {
		t.Fatalf("round trip: read %d, Len %d, want %d", n, st2.Len(), st.Len())
	}
	if !st2.Contains("Alice", "name", "Alice B Smith") {
		t.Error("literal lost in round trip")
	}
}

func TestReadNTriplesSyntax(t *testing.T) {
	st := NewStore()
	input := `# comment line

<a> <p> <b> .
<a> <q> "hello world" .
`
	n, err := st.ReadNTriples(strings.NewReader(input))
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	for _, bad := range []string{"<a> <p>", "<a <p> <b> .", `<a> <p> "unterminated .`} {
		st := NewStore()
		if _, err := st.ReadNTriples(strings.NewReader(bad)); err == nil {
			t.Errorf("bad input %q accepted", bad)
		}
	}
}

func TestStoreScales(t *testing.T) {
	st := NewStore()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		s := "s" + itoa(rng.Intn(2000))
		p := "p" + itoa(rng.Intn(20))
		o := "o" + itoa(rng.Intn(2000))
		st.MustAdd(s, p, o)
	}
	total := 0
	for i := 0; i < 20; i++ {
		total += st.MatchCount("?s", "p"+itoa(i), "?o")
	}
	if total != st.Len() {
		t.Fatalf("per-predicate counts sum to %d, want %d", total, st.Len())
	}
}

// TestMatchAgainstNaiveScan cross-checks every pattern shape against a full
// scan oracle on random stores.
func TestMatchAgainstNaiveScan(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 25; iter++ {
		st := NewStore()
		var all []Triple
		seen := map[Triple]bool{}
		for i := 0; i < 60; i++ {
			tr := Triple{
				S: "s" + itoa(rng.Intn(8)),
				P: "p" + itoa(rng.Intn(4)),
				O: "o" + itoa(rng.Intn(8)),
			}
			st.MustAdd(tr.S, tr.P, tr.O)
			if !seen[tr] {
				seen[tr] = true
				all = append(all, tr)
			}
		}
		pick := func(get func(Triple) string) string {
			switch rng.Intn(3) {
			case 0:
				return "?v"
			case 1:
				return get(all[rng.Intn(len(all))])
			default:
				return "absent" + itoa(rng.Intn(3))
			}
		}
		for q := 0; q < 40; q++ {
			s := pick(func(t Triple) string { return t.S })
			p := pick(func(t Triple) string { return t.P })
			o := pick(func(t Triple) string { return t.O })
			want := 0
			wild := func(x string) bool { return x == "" || x[0] == '?' }
			for _, tr := range all {
				if (wild(s) || tr.S == s) && (wild(p) || tr.P == p) && (wild(o) || tr.O == o) {
					want++
				}
			}
			if got := st.MatchCount(s, p, o); got != want {
				t.Fatalf("MatchCount(%q,%q,%q) = %d, oracle %d", s, p, o, got, want)
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
