// Package rdf implements the knowledge-graph substrate: an in-memory,
// dictionary-encoded RDF triple store with SPO/POS/OSP indexes, the storage
// layer the paper's Q/A pipeline queries through SPARQL (§1, §2.2).
//
// Terms are plain strings. By convention IRIs are bare local names
// ("Harvard_University", "graduatedFrom"), literals are quoted by the
// N-Triples reader/writer, and variables (used only in patterns, never
// stored) begin with '?'.
package rdf

import (
	"fmt"
	"sort"
)

// Triple is one RDF statement.
type Triple struct {
	S, P, O string
}

// id is a dictionary-encoded term.
type id uint32

// encoded is a dictionary-encoded triple.
type encoded struct{ s, p, o id }

// Store is an in-memory triple store. The zero value is empty and ready to
// use. Store is not safe for concurrent mutation; concurrent reads are safe
// after loading completes.
type Store struct {
	dict    map[string]id
	terms   []string
	triples map[encoded]struct{}

	// Permuted indexes: spo[s][p] = sorted objects, and so on.
	spo map[id]map[id][]id
	pos map[id]map[id][]id
	osp map[id]map[id][]id

	// Optional observability handles (see SetObs); nil-safe when unset.
	m storeMetrics
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		dict:    make(map[string]id),
		triples: make(map[encoded]struct{}),
		spo:     make(map[id]map[id][]id),
		pos:     make(map[id]map[id][]id),
		osp:     make(map[id]map[id][]id),
	}
}

func (st *Store) intern(term string) id {
	if i, ok := st.dict[term]; ok {
		return i
	}
	i := id(len(st.terms))
	st.dict[term] = i
	st.terms = append(st.terms, term)
	return i
}

func (st *Store) lookup(term string) (id, bool) {
	i, ok := st.dict[term]
	return i, ok
}

// Add inserts a triple; duplicates are ignored. Empty or variable terms are
// rejected.
func (st *Store) Add(s, p, o string) error {
	for _, t := range []string{s, p, o} {
		if t == "" {
			return fmt.Errorf("rdf: empty term in triple (%q,%q,%q)", s, p, o)
		}
		if t[0] == '?' {
			return fmt.Errorf("rdf: variable %q cannot be stored", t)
		}
	}
	e := encoded{st.intern(s), st.intern(p), st.intern(o)}
	if _, dup := st.triples[e]; dup {
		return nil
	}
	st.triples[e] = struct{}{}
	insertIndex(st.spo, e.s, e.p, e.o)
	insertIndex(st.pos, e.p, e.o, e.s)
	insertIndex(st.osp, e.o, e.s, e.p)
	st.m.adds.Inc()
	st.m.size.Set(float64(len(st.triples)))
	return nil
}

// MustAdd is Add that panics on error, for fixed datasets in tests and
// generators.
func (st *Store) MustAdd(s, p, o string) {
	if err := st.Add(s, p, o); err != nil {
		panic(err)
	}
}

func insertIndex(idx map[id]map[id][]id, a, b, c id) {
	m, ok := idx[a]
	if !ok {
		m = make(map[id][]id)
		idx[a] = m
	}
	lst := m[b]
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= c })
	if i < len(lst) && lst[i] == c {
		return
	}
	lst = append(lst, 0)
	copy(lst[i+1:], lst[i:])
	lst[i] = c
	m[b] = lst
}

// Len returns the number of distinct triples.
func (st *Store) Len() int { return len(st.triples) }

// NumTerms returns the dictionary size.
func (st *Store) NumTerms() int { return len(st.terms) }

// Contains reports whether the exact triple is stored.
func (st *Store) Contains(s, p, o string) bool {
	si, ok1 := st.lookup(s)
	pi, ok2 := st.lookup(p)
	oi, ok3 := st.lookup(o)
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	_, ok := st.triples[encoded{si, pi, oi}]
	return ok
}

// Match streams every triple matching the pattern to fn; empty strings and
// '?'-prefixed terms are wildcards. Enumeration stops when fn returns false.
// The best index for the bound positions is chosen automatically.
func (st *Store) Match(s, p, o string, fn func(t Triple) bool) {
	st.m.matches.Inc()
	wild := func(t string) bool { return t == "" || t[0] == '?' }
	ws, wp, wo := wild(s), wild(p), wild(o)

	resolve := func(t string, w bool) (id, bool) {
		if w {
			return 0, true
		}
		return st.lookup(t)
	}
	si, ok1 := resolve(s, ws)
	pi, ok2 := resolve(p, wp)
	oi, ok3 := resolve(o, wo)
	if !ok1 || !ok2 || !ok3 {
		return // a bound term absent from the dictionary matches nothing
	}

	emit := func(a, b, c id) bool {
		st.m.scanned.Inc()
		return fn(Triple{st.terms[a], st.terms[b], st.terms[c]})
	}

	switch {
	case !ws && !wp && !wo:
		if _, ok := st.triples[encoded{si, pi, oi}]; ok {
			emit(si, pi, oi)
		}
	case !ws && !wp: // S P ? -> spo
		for _, obj := range st.spo[si][pi] {
			if !emit(si, pi, obj) {
				return
			}
		}
	case !wp && !wo: // ? P O -> pos
		for _, sub := range st.pos[pi][oi] {
			if !emit(sub, pi, oi) {
				return
			}
		}
	case !ws && !wo: // S ? O -> osp
		for _, pred := range st.osp[oi][si] {
			if !emit(si, pred, oi) {
				return
			}
		}
	case !ws: // S ? ?
		for pred, objs := range st.spo[si] {
			for _, obj := range objs {
				if !emit(si, pred, obj) {
					return
				}
			}
		}
	case !wp: // ? P ?
		for obj, subs := range st.pos[pi] {
			for _, sub := range subs {
				if !emit(sub, pi, obj) {
					return
				}
			}
		}
	case !wo: // ? ? O
		for sub, preds := range st.osp[oi] {
			for _, pred := range preds {
				if !emit(sub, pred, oi) {
					return
				}
			}
		}
	default: // ? ? ?
		for e := range st.triples {
			if !emit(e.s, e.p, e.o) {
				return
			}
		}
	}
}

// MatchCount returns the number of triples matching the pattern, used for
// selectivity-based join ordering.
func (st *Store) MatchCount(s, p, o string) int {
	n := 0
	st.Match(s, p, o, func(Triple) bool { n++; return true })
	return n
}

// Triples returns all triples in an unspecified order.
func (st *Store) Triples() []Triple {
	out := make([]Triple, 0, len(st.triples))
	for e := range st.triples {
		out = append(out, Triple{st.terms[e.s], st.terms[e.p], st.terms[e.o]})
	}
	return out
}

// Subjects calls fn once for every distinct subject.
func (st *Store) Subjects(fn func(s string) bool) {
	for s := range st.spo {
		if !fn(st.terms[s]) {
			return
		}
	}
}
