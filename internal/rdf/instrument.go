package rdf

import (
	"simjoin/internal/obs"
)

// storeMetrics holds the optional observability handles of a Store. All
// fields are nil-safe obs instruments, so the uninstrumented path costs one
// nil-receiver check per recorded event.
type storeMetrics struct {
	adds    *obs.Counter
	matches *obs.Counter
	scanned *obs.Counter
	size    *obs.Gauge
}

// SetObs attaches observability counters to the store: rdf_triples_added_total,
// rdf_match_calls_total (pattern lookups) and rdf_match_triples_total
// (triples streamed to callbacks), plus an rdf_triples gauge tracking the
// store size. Call before serving traffic; passing nil detaches.
func (st *Store) SetObs(reg *obs.Registry) {
	if reg == nil {
		st.m = storeMetrics{}
		return
	}
	st.m = storeMetrics{
		adds:    reg.Counter("rdf_triples_added_total"),
		matches: reg.Counter("rdf_match_calls_total"),
		scanned: reg.Counter("rdf_match_triples_total"),
		size:    reg.Gauge("rdf_triples"),
	}
	st.m.size.Set(float64(st.Len()))
}
