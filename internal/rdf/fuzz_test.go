package rdf

import (
	"strings"
	"testing"
)

// FuzzParseTriples checks the reader never panics and that accepted input
// round-trips through WriteNTriples.
func FuzzParseTriples(f *testing.F) {
	seeds := []string{
		"",
		"<a> <b> <c> .",
		"<a> <b> \"lit with space\" .",
		"# comment\n\n<a> <b> <c> .",
		"<a> <b>",
		"<a <b> <c> .",
		"<a> <b> \"unterminated .",
		"<a> <b> <c> <d> .",
		"<?v> <b> <c> .",
		"<> <b> <c> .",
		strings.Repeat("<a> <b> <c> .\n", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		st := NewStore()
		n, err := st.ReadNTriples(strings.NewReader(input))
		if err != nil {
			return
		}
		if n != st.Len() {
			// Duplicates legitimately make n >= Len.
			if n < st.Len() {
				t.Fatalf("read %d but stored %d", n, st.Len())
			}
		}
		var sb strings.Builder
		if err := st.WriteNTriples(&sb); err != nil {
			t.Fatal(err)
		}
		st2 := NewStore()
		if _, err := st2.ReadNTriples(strings.NewReader(sb.String())); err != nil {
			t.Fatalf("round trip rejected: %v\n%s", err, sb.String())
		}
		if st2.Len() != st.Len() {
			t.Fatalf("round trip changed store size: %d -> %d", st.Len(), st2.Len())
		}
	})
}
