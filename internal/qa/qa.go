// Package qa assembles the end-to-end question answering systems evaluated
// in Table 4: the template-based system of §2.2 (this paper's pipeline) and
// simplified reimplementations of the two comparison systems, gAnswer [33]
// and DEANNA [23]. The baselines are structural stand-ins that reproduce the
// failure modes the paper's related-work analysis attributes to them:
// gAnswer translates the semantic query graph directly with top-confidence
// disambiguation (no paraphrase correction), and DEANNA answers only the
// narrower class of questions it can disambiguate confidently.
package qa

import (
	"fmt"
	"time"

	"simjoin/internal/linker"
	"simjoin/internal/nlq"
	"simjoin/internal/obs"
	"simjoin/internal/rdf"
	"simjoin/internal/sparql"
	"simjoin/internal/template"
)

// System is a question answering system: natural language in, bindings out.
type System interface {
	Name() string
	Answer(question string) ([]sparql.Binding, error)
}

// Engine abstracts the SPARQL evaluator so systems can run over the
// reference executor or the signature-based gstore engine (§1 lists Jena,
// RDF-3x, Virtuoso and gStore as interchangeable backends).
type Engine interface {
	Execute(q *sparql.Query, maxSolutions int) ([]sparql.Binding, error)
}

// storeEngine adapts rdf.Store + sparql.Execute to Engine.
type storeEngine struct{ st *rdf.Store }

func (e storeEngine) Execute(q *sparql.Query, max int) ([]sparql.Binding, error) {
	return sparql.Execute(e.st, q, max)
}

// NewStoreEngine wraps a triple store with the reference executor.
func NewStoreEngine(st *rdf.Store) Engine { return storeEngine{st} }

// TemplateSystem answers questions by matching them against learned
// templates, filling slots, and executing the instantiated SPARQL (§2.2).
type TemplateSystem struct {
	Store *template.Store
	Lex   *linker.Lexicon
	KB    *rdf.Store
	// MinPhi is the minimum matching proportion φ; below-threshold matches
	// are rejected (Table 5). Zero means accept any partial match.
	MinPhi float64
	// MaxSolutions caps query results; 0 = unlimited.
	MaxSolutions int

	// The remaining fields harden the serving path. All are opt-in: the
	// zero value reproduces the legacy behaviour (no timeout, no retry,
	// abstain on match failure).

	// Engine overrides the SPARQL evaluator used for candidate verification
	// and the direct fallback; nil means the reference executor over KB.
	Engine Engine
	// Timeout bounds one answer attempt (instantiation + execution)
	// wall-clock; an attempt past the deadline is abandoned and reported as
	// an error (retried once when RetryBackoff is set). 0 disables.
	Timeout time.Duration
	// RetryBackoff enables a single retry of a failed or timed-out attempt
	// after this pause, absorbing transient engine faults. 0 disables.
	RetryBackoff time.Duration
	// FallbackDirect degrades to gAnswer-style direct translation
	// (DirectTranslate over the extracted semantic graph) when the template
	// path cannot produce an answer, trading paraphrase correction for
	// coverage instead of abstaining.
	FallbackDirect bool
	// Obs, when non-nil, receives the degradation counters
	// qa_template_timeouts_total, qa_template_retries_total,
	// qa_template_fallback_direct_total and qa_template_panics_total.
	Obs *obs.Registry
}

// Name implements System.
func (s *TemplateSystem) Name() string { return "template" }

// Answer implements System. Entity candidates are verified against the
// knowledge graph (query-driven disambiguation): the structured template
// lets the system try lower-confidence candidates when the top one yields
// nothing.
func (s *TemplateSystem) Answer(question string) ([]sparql.Binding, error) {
	res, err := s.answerTemplate(question)
	if err != nil && s.FallbackDirect {
		s.count("qa_template_fallback_direct_total")
		if dres, derr := s.answerDirect(question); derr == nil {
			return dres, nil
		}
		// Direct translation failed too; the template error is the more
		// informative of the two.
	}
	if err != nil {
		return nil, err
	}
	if s.MaxSolutions > 0 && len(res) > s.MaxSolutions {
		res = res[:s.MaxSolutions]
	}
	return res, nil
}

// answerTemplate runs the template pipeline with the configured timeout,
// panic containment and single retry.
func (s *TemplateSystem) answerTemplate(question string) ([]sparql.Binding, error) {
	m, err := s.Store.BestMatch(question, s.Lex, s.MinPhi)
	if err != nil {
		return nil, err
	}
	res, err := s.attempt(m)
	if err != nil && s.RetryBackoff > 0 {
		s.count("qa_template_retries_total")
		time.Sleep(s.RetryBackoff)
		res, err = s.attempt(m)
	}
	return res, err
}

// attempt runs one verified instantiation of a matched template. A panic
// anywhere in instantiation or execution is contained and surfaced as an
// error; when Timeout is set the attempt is abandoned past the deadline
// (the stray goroutine finishes into a buffered channel and is dropped).
func (s *TemplateSystem) attempt(m template.Match) ([]sparql.Binding, error) {
	type outcome struct {
		res []sparql.Binding
		err error
	}
	run := func() (out outcome) {
		defer func() {
			if r := recover(); r != nil {
				s.count("qa_template_panics_total")
				out = outcome{nil, fmt.Errorf("qa: template pipeline panicked: %v", r)}
			}
		}()
		_, res, err := m.InstantiateVerifiedWith(s.Lex, func(q *sparql.Query) ([]sparql.Binding, error) {
			return s.engine().Execute(q, 0)
		}, 8)
		return outcome{res, err}
	}
	if s.Timeout <= 0 {
		out := run()
		return out.res, out.err
	}
	ch := make(chan outcome, 1)
	go func() { ch <- run() }()
	select {
	case out := <-ch:
		return out.res, out.err
	case <-time.After(s.Timeout):
		s.count("qa_template_timeouts_total")
		return nil, fmt.Errorf("qa: template answer timed out after %v", s.Timeout)
	}
}

// answerDirect is the degraded serving path: skip templates entirely and
// translate the extracted semantic graph with top-confidence disambiguation,
// exactly like the gAnswer baseline.
func (s *TemplateSystem) answerDirect(question string) ([]sparql.Binding, error) {
	sg, err := nlq.Extract(question, s.Lex)
	if err != nil {
		return nil, err
	}
	q, err := DirectTranslate(sg)
	if err != nil {
		return nil, err
	}
	return s.engine().Execute(q, s.MaxSolutions)
}

func (s *TemplateSystem) engine() Engine {
	if s.Engine != nil {
		return s.Engine
	}
	return storeEngine{s.KB}
}

func (s *TemplateSystem) count(name string) {
	if s.Obs != nil {
		s.Obs.Counter(name).Inc()
	}
}

// Translate exposes the question → SPARQL step for inspection (verified
// instantiation, like Answer).
func (s *TemplateSystem) Translate(question string) (*sparql.Query, template.Match, error) {
	m, err := s.Store.BestMatch(question, s.Lex, s.MinPhi)
	if err != nil {
		return nil, m, err
	}
	q, _, err := m.InstantiateVerified(s.Lex, s.KB, 8)
	return q, m, err
}

// GAnswerSystem is the gAnswer-style baseline: interpret the question into a
// semantic query graph and translate it directly into SPARQL, taking the
// top-confidence entity and predicate candidates.
type GAnswerSystem struct {
	Lex          *linker.Lexicon
	KB           *rdf.Store
	MaxSolutions int
	// Engine overrides the SPARQL evaluator; nil means the reference
	// executor over KB.
	Engine Engine
}

// Name implements System.
func (s *GAnswerSystem) Name() string { return "gAnswer" }

// Answer implements System.
func (s *GAnswerSystem) Answer(question string) ([]sparql.Binding, error) {
	sg, err := nlq.Extract(question, s.Lex)
	if err != nil {
		return nil, err
	}
	q, err := DirectTranslate(sg)
	if err != nil {
		return nil, err
	}
	eng := s.Engine
	if eng == nil {
		eng = NewStoreEngine(s.KB)
	}
	return eng.Execute(q, s.MaxSolutions)
}

// DirectTranslate turns a semantic query graph into SPARQL with
// top-confidence disambiguation everywhere: variables stay variables (with a
// type constraint when a class is known), entities take their best linking
// candidate, relations take their best paraphrase.
func DirectTranslate(sg *nlq.SemanticGraph) (*sparql.Query, error) {
	q := &sparql.Query{}
	term := make([]sparql.Term, len(sg.Args))
	for i, a := range sg.Args {
		switch a.Kind {
		case nlq.ArgVariable, nlq.ArgClass:
			term[i] = sparql.Term{Kind: sparql.Var, Value: a.Var}
			if a.Kind == nlq.ArgVariable {
				q.Vars = append(q.Vars, a.Var)
			}
			if a.Class != "" {
				q.Patterns = append(q.Patterns, sparql.TriplePattern{
					S: term[i],
					P: sparql.Term{Kind: sparql.IRI, Value: sparql.TypePredicate},
					O: sparql.Term{Kind: sparql.IRI, Value: a.Class},
				})
			}
		case nlq.ArgEntity:
			if len(a.Candidates) == 0 {
				return nil, fmt.Errorf("qa: entity %q has no candidates", a.Surface)
			}
			term[i] = sparql.Term{Kind: sparql.IRI, Value: a.Candidates[0].Entity}
		}
	}
	if len(q.Vars) == 0 {
		// Questions like "Where was X born?" may have only class args; fall
		// back to projecting every variable term.
		for i, a := range sg.Args {
			if term[i].Kind == sparql.Var {
				q.Vars = append(q.Vars, a.Var)
			}
		}
	}
	if len(q.Vars) == 0 {
		return nil, fmt.Errorf("qa: no variable to project")
	}
	for _, r := range sg.Rels {
		if len(r.Candidates) == 0 {
			return nil, fmt.Errorf("qa: relation %q has no candidates", r.Phrase)
		}
		q.Patterns = append(q.Patterns, sparql.TriplePattern{
			S: term[r.Arg1],
			P: sparql.Term{Kind: sparql.IRI, Value: r.Candidates[0].Predicate},
			O: term[r.Arg2],
		})
	}
	if len(q.Patterns) == 0 {
		return nil, fmt.Errorf("qa: empty translation")
	}
	return q, nil
}

// DeannaSystem is the DEANNA-style baseline: joint disambiguation modelled
// conservatively — it answers only questions whose every phrase disambiguates
// with high confidence and whose structure stays within one non-type
// relation, abstaining otherwise (the narrower question class the paper's
// Table 4 reflects).
type DeannaSystem struct {
	Lex          *linker.Lexicon
	KB           *rdf.Store
	MaxSolutions int
	// Confidence is the minimum top-candidate confidence required to commit
	// to a disambiguation; defaults to 0.9 when zero.
	Confidence float64
}

// Name implements System.
func (s *DeannaSystem) Name() string { return "DEANNA" }

// Answer implements System.
func (s *DeannaSystem) Answer(question string) ([]sparql.Binding, error) {
	conf := s.Confidence
	if conf == 0 {
		conf = 0.9
	}
	sg, err := nlq.Extract(question, s.Lex)
	if err != nil {
		return nil, err
	}
	if len(sg.Rels) > 1 {
		return nil, fmt.Errorf("qa: DEANNA baseline handles single-relation questions only (%d relations)", len(sg.Rels))
	}
	for _, a := range sg.Args {
		if a.Kind == nlq.ArgEntity && (len(a.Candidates) == 0 || a.Candidates[0].P < conf) {
			return nil, fmt.Errorf("qa: DEANNA baseline cannot confidently disambiguate %q", a.Surface)
		}
	}
	for _, r := range sg.Rels {
		if len(r.Candidates) == 0 || r.Candidates[0].P < conf {
			return nil, fmt.Errorf("qa: DEANNA baseline cannot confidently map relation %q", r.Phrase)
		}
	}
	q, err := DirectTranslate(sg)
	if err != nil {
		return nil, err
	}
	return sparql.Execute(s.KB, q, s.MaxSolutions)
}
