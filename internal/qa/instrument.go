package qa

import (
	"time"

	"simjoin/internal/obs"
	"simjoin/internal/sparql"
)

// instrumented decorates a System with per-question observability.
type instrumented struct {
	inner     System
	tr        *obs.Tracer
	questions *obs.Counter
	answered  *obs.Counter
	failed    *obs.Counter
	seconds   *obs.Histogram
	spanName  string
}

// Instrument wraps a System so every Answer call is counted (split into
// answered/failed), its latency recorded into a per-system histogram, and a
// span emitted. Metric names carry the system as a label, e.g.
// qa_questions_total{system="template"}. With both reg and tr nil the
// original system is returned unchanged.
func Instrument(s System, reg *obs.Registry, tr *obs.Tracer) System {
	if reg == nil && tr == nil {
		return s
	}
	name := s.Name()
	return &instrumented{
		inner:     s,
		tr:        tr,
		questions: reg.Counter(obs.Name("qa_questions_total", "system", name)),
		answered:  reg.Counter(obs.Name("qa_answered_total", "system", name)),
		failed:    reg.Counter(obs.Name("qa_failed_total", "system", name)),
		seconds:   reg.Histogram(obs.Name("qa_answer_seconds", "system", name), obs.DurationBuckets),
		spanName:  "qa.answer." + name,
	}
}

// Name implements System.
func (s *instrumented) Name() string { return s.inner.Name() }

// Answer implements System.
func (s *instrumented) Answer(question string) ([]sparql.Binding, error) {
	start := time.Now()
	res, err := s.inner.Answer(question)
	d := time.Since(start)
	s.questions.Inc()
	if err != nil {
		s.failed.Inc()
	} else {
		s.answered.Inc()
	}
	s.seconds.ObserveDuration(d)
	s.tr.Record(s.spanName, start, d)
	return res, err
}
