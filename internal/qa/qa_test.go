package qa

import (
	"strings"
	"testing"
	"time"

	"simjoin/internal/fault"
	"simjoin/internal/ged"
	"simjoin/internal/linker"
	"simjoin/internal/nlq"
	"simjoin/internal/obs"
	"simjoin/internal/rdf"
	"simjoin/internal/sparql"
	"simjoin/internal/template"
)

// fixture builds a small KB + lexicon covering the paper's running example.
func fixture() (*rdf.Store, *linker.Lexicon) {
	kb := rdf.NewStore()
	kb.MustAdd("Ada_Stone", "type", "Politician")
	kb.MustAdd("Ada_Stone", "graduatedFrom", "CIT_University")
	kb.MustAdd("Rex_Hale", "type", "Scientist")
	kb.MustAdd("Rex_Hale", "graduatedFrom", "CIT_University")
	kb.MustAdd("CIT_University", "type", "University")
	kb.MustAdd("Iris_Lane", "type", "Actor")
	kb.MustAdd("The_Silent_River", "type", "Film")
	kb.MustAdd("The_Silent_River", "director", "Iris_Lane")

	lex := linker.NewLexicon()
	lex.AddEntity("CIT", "CIT_University", "University", 0.8)
	lex.AddEntity("CIT", "CIT_Group", "Company", 0.2)
	lex.AddEntity("Iris Lane", "Iris_Lane", "Actor", 1.0)
	lex.AddRelation("graduated from", "graduatedFrom", 1.0)
	lex.AddRelation("directed by", "director", 1.0)
	lex.AddClass("politician", "Politician")
	lex.AddClass("scientist", "Scientist")
	lex.AddClass("film", "Film")
	return kb, lex
}

func trainedStore(t *testing.T, lex *linker.Lexicon) *template.Store {
	t.Helper()
	qg, err := sparql.ParseToGraph(`SELECT ?x WHERE { ?x type Politician . ?x graduatedFrom CIT_University . }`)
	if err != nil {
		t.Fatal(err)
	}
	uq, err := nlq.Interpret("Which politician graduated from CIT?", lex)
	if err != nil {
		t.Fatal(err)
	}
	world, _ := uq.Graph.MostLikelyWorld()
	_, mapping := ged.DistanceMapping(qg.Graph, world)
	tpl, err := template.Generate(qg, uq, mapping)
	if err != nil {
		t.Fatal(err)
	}
	st := template.NewStore()
	st.Add(tpl)
	return st
}

func TestTemplateSystemAnswers(t *testing.T) {
	kb, lex := fixture()
	sys := &TemplateSystem{Store: trainedStore(t, lex), Lex: lex, KB: kb, MinPhi: 0.5}
	if sys.Name() != "template" {
		t.Error("name")
	}
	res, err := sys.Answer("Which scientist graduated from CIT?")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0]["?x"] != "Rex_Hale" {
		t.Fatalf("res = %v, want Rex_Hale", res)
	}
}

func TestTemplateSystemTranslate(t *testing.T) {
	kb, lex := fixture()
	sys := &TemplateSystem{Store: trainedStore(t, lex), Lex: lex, KB: kb, MinPhi: 0.5}
	q, m, err := sys.Translate("Which politician graduated from CIT?")
	if err != nil {
		t.Fatal(err)
	}
	if m.TED != 0 {
		t.Errorf("TED = %d", m.TED)
	}
	if !strings.Contains(q.String(), "CIT_University") {
		t.Errorf("query = %s", q)
	}
}

func TestTemplateSystemAbstains(t *testing.T) {
	kb, lex := fixture()
	sys := &TemplateSystem{Store: trainedStore(t, lex), Lex: lex, KB: kb, MinPhi: 0.9}
	if _, err := sys.Answer("Please please please tell me now which politician graduated from CIT and more words?"); err == nil {
		t.Error("low-phi question answered at MinPhi 0.9")
	}
	if _, err := sys.Answer("Which film directed by Iris Lane?"); err == nil {
		t.Error("uncovered relation answered")
	}
}

func TestTemplateSystemMaxSolutions(t *testing.T) {
	kb, lex := fixture()
	kb.MustAdd("Bob_Stone", "type", "Scientist")
	kb.MustAdd("Bob_Stone", "graduatedFrom", "CIT_University")
	sys := &TemplateSystem{Store: trainedStore(t, lex), Lex: lex, KB: kb, MinPhi: 0.5, MaxSolutions: 1}
	res, err := sys.Answer("Which scientist graduated from CIT?")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("MaxSolutions ignored: %d", len(res))
	}
}

func TestGAnswerSystem(t *testing.T) {
	kb, lex := fixture()
	sys := &GAnswerSystem{Lex: lex, KB: kb}
	if sys.Name() != "gAnswer" {
		t.Error("name")
	}
	res, err := sys.Answer("Which politician graduated from CIT?")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0]["?x1"] != "Ada_Stone" {
		t.Fatalf("res = %v", res)
	}
	if _, err := sys.Answer("gibberish with no relations"); err == nil {
		t.Error("nonsense answered")
	}
}

func TestDirectTranslate(t *testing.T) {
	_, lex := fixture()
	sg, err := nlq.Extract("Which film directed by Iris Lane?", lex)
	if err != nil {
		t.Fatal(err)
	}
	q, err := DirectTranslate(sg)
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	if !strings.Contains(s, "type Film") || !strings.Contains(s, "director Iris_Lane") {
		t.Errorf("translation = %s", s)
	}
}

func TestDeannaSystem(t *testing.T) {
	kb, lex := fixture()
	sys := &DeannaSystem{Lex: lex, KB: kb}
	if sys.Name() != "DEANNA" {
		t.Error("name")
	}
	// Unambiguous single-relation question: answered.
	res, err := sys.Answer("Which film directed by Iris Lane?")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0]["?x1"] != "The_Silent_River" {
		t.Fatalf("res = %v", res)
	}
	// Ambiguous entity: abstains (CIT top candidate at 0.8 < 0.9).
	if _, err := sys.Answer("Which politician graduated from CIT?"); err == nil {
		t.Error("ambiguous question answered")
	}
	// Lower confidence requirement accepts it.
	sys.Confidence = 0.7
	if _, err := sys.Answer("Which politician graduated from CIT?"); err != nil {
		t.Errorf("confidence=0.7 should answer: %v", err)
	}
	// Multi-relation: abstains.
	lex.AddRelation("lives in", "livesIn", 1.0)
	lex.AddEntity("Doverville", "Doverville", "City", 1.0)
	if _, err := sys.Answer("Which politician graduated from CIT and lives in Doverville?"); err == nil {
		t.Error("multi-relation question answered by DEANNA baseline")
	}
}

// hardenedSystem builds a TemplateSystem with the robustness knobs on and a
// fresh metrics registry.
func hardenedSystem(t *testing.T) (*TemplateSystem, *obs.Registry) {
	t.Helper()
	kb, lex := fixture()
	reg := obs.New()
	return &TemplateSystem{
		Store: trainedStore(t, lex), Lex: lex, KB: kb, MinPhi: 0.5,
		Timeout:      200 * time.Millisecond,
		RetryBackoff: time.Millisecond,
		Obs:          reg,
	}, reg
}

// TestTemplateSystemRetryAbsorbsTransientEngineError injects two engine
// errors — enough to fail every candidate combination of the first attempt —
// and checks the single retry recovers the answer.
func TestTemplateSystemRetryAbsorbsTransientEngineError(t *testing.T) {
	sys, reg := hardenedSystem(t)
	defer fault.Reset()
	if err := fault.Enable("sparql.execute=error#2"); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Answer("Which scientist graduated from CIT?")
	if err != nil {
		t.Fatalf("retry did not absorb the transient fault: %v", err)
	}
	if len(res) != 1 || res[0]["?x"] != "Rex_Hale" {
		t.Fatalf("res = %v, want Rex_Hale", res)
	}
	c := reg.Snapshot().Counters
	if c["qa_template_retries_total"] != 1 {
		t.Errorf("retries counter = %d, want 1", c["qa_template_retries_total"])
	}
	if c["qa_template_timeouts_total"] != 0 || c["qa_template_panics_total"] != 0 {
		t.Errorf("unexpected degradation counters: %v", c)
	}
}

// TestTemplateSystemTimeoutThenRetry stalls the engine once for well past the
// serving timeout: the first attempt is abandoned at the deadline, the retry
// runs fault-free and answers.
func TestTemplateSystemTimeoutThenRetry(t *testing.T) {
	sys, reg := hardenedSystem(t)
	sys.Timeout = 20 * time.Millisecond
	defer fault.Reset()
	if err := fault.Enable("sparql.execute=delay:500ms#1"); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Answer("Which scientist graduated from CIT?")
	if err != nil {
		t.Fatalf("timeout + retry did not recover: %v", err)
	}
	if len(res) != 1 || res[0]["?x"] != "Rex_Hale" {
		t.Fatalf("res = %v, want Rex_Hale", res)
	}
	c := reg.Snapshot().Counters
	if c["qa_template_timeouts_total"] != 1 {
		t.Errorf("timeouts counter = %d, want 1", c["qa_template_timeouts_total"])
	}
	if c["qa_template_retries_total"] != 1 {
		t.Errorf("retries counter = %d, want 1", c["qa_template_retries_total"])
	}
}

// TestTemplateSystemContainsEnginePanic turns the engine fault into a panic
// and checks Answer survives it: the panic is contained, counted, and
// reported as an ordinary error.
func TestTemplateSystemContainsEnginePanic(t *testing.T) {
	sys, reg := hardenedSystem(t)
	sys.RetryBackoff = 0 // no retry: the contained panic must surface
	defer fault.Reset()
	if err := fault.Enable("sparql.execute=panic#1"); err != nil {
		t.Fatal(err)
	}
	_, err := sys.Answer("Which scientist graduated from CIT?")
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("contained panic not surfaced as error: %v", err)
	}
	if c := reg.Snapshot().Counters["qa_template_panics_total"]; c != 1 {
		t.Errorf("panics counter = %d, want 1", c)
	}
}

// TestTemplateSystemFallsBackToDirect asks a question no learned template
// covers: with FallbackDirect the system degrades to gAnswer-style direct
// translation instead of abstaining, and counts the degradation.
func TestTemplateSystemFallsBackToDirect(t *testing.T) {
	sys, reg := hardenedSystem(t)
	sys.MinPhi = 0.9
	sys.FallbackDirect = true
	res, err := sys.Answer("Which film directed by Iris Lane?")
	if err != nil {
		t.Fatalf("direct fallback did not answer: %v", err)
	}
	if len(res) != 1 || res[0]["?x1"] != "The_Silent_River" {
		t.Fatalf("res = %v, want The_Silent_River", res)
	}
	if c := reg.Snapshot().Counters["qa_template_fallback_direct_total"]; c != 1 {
		t.Errorf("fallback counter = %d, want 1", c)
	}
	// A covered question still goes through the template path untouched.
	res, err = sys.Answer("Which scientist graduated from CIT?")
	if err != nil || len(res) != 1 || res[0]["?x"] != "Rex_Hale" {
		t.Fatalf("covered question broken by fallback config: %v %v", res, err)
	}
	if c := reg.Snapshot().Counters["qa_template_fallback_direct_total"]; c != 1 {
		t.Errorf("fallback counted on the template path: %d", c)
	}
}

// TestTemplateSystemFallbackFailureKeepsTemplateError: when both the template
// path and the direct fallback fail, the caller sees the template error.
func TestTemplateSystemFallbackFailureKeepsTemplateError(t *testing.T) {
	sys, _ := hardenedSystem(t)
	sys.FallbackDirect = true
	if _, err := sys.Answer("gibberish with no relations"); err == nil {
		t.Error("nonsense answered")
	}
}

// TestTemplateSystemCustomEngine routes execution through a counting engine
// and checks both the verification path and the direct fallback use it.
func TestTemplateSystemCustomEngine(t *testing.T) {
	sys, _ := hardenedSystem(t)
	ce := &countingEngine{inner: NewStoreEngine(sys.KB)}
	sys.Engine = ce
	res, err := sys.Answer("Which scientist graduated from CIT?")
	if err != nil || len(res) != 1 {
		t.Fatalf("custom engine answer: %v %v", res, err)
	}
	if ce.calls == 0 {
		t.Fatal("custom engine never called")
	}
	sys.MinPhi = 0.9
	sys.FallbackDirect = true
	before := ce.calls
	if _, err := sys.Answer("Which film directed by Iris Lane?"); err != nil {
		t.Fatalf("fallback with custom engine: %v", err)
	}
	if ce.calls <= before {
		t.Error("direct fallback bypassed the custom engine")
	}
}

type countingEngine struct {
	inner Engine
	calls int
}

func (e *countingEngine) Execute(q *sparql.Query, max int) ([]sparql.Binding, error) {
	e.calls++
	return e.inner.Execute(q, max)
}
