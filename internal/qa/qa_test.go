package qa

import (
	"strings"
	"testing"

	"simjoin/internal/ged"
	"simjoin/internal/linker"
	"simjoin/internal/nlq"
	"simjoin/internal/rdf"
	"simjoin/internal/sparql"
	"simjoin/internal/template"
)

// fixture builds a small KB + lexicon covering the paper's running example.
func fixture() (*rdf.Store, *linker.Lexicon) {
	kb := rdf.NewStore()
	kb.MustAdd("Ada_Stone", "type", "Politician")
	kb.MustAdd("Ada_Stone", "graduatedFrom", "CIT_University")
	kb.MustAdd("Rex_Hale", "type", "Scientist")
	kb.MustAdd("Rex_Hale", "graduatedFrom", "CIT_University")
	kb.MustAdd("CIT_University", "type", "University")
	kb.MustAdd("Iris_Lane", "type", "Actor")
	kb.MustAdd("The_Silent_River", "type", "Film")
	kb.MustAdd("The_Silent_River", "director", "Iris_Lane")

	lex := linker.NewLexicon()
	lex.AddEntity("CIT", "CIT_University", "University", 0.8)
	lex.AddEntity("CIT", "CIT_Group", "Company", 0.2)
	lex.AddEntity("Iris Lane", "Iris_Lane", "Actor", 1.0)
	lex.AddRelation("graduated from", "graduatedFrom", 1.0)
	lex.AddRelation("directed by", "director", 1.0)
	lex.AddClass("politician", "Politician")
	lex.AddClass("scientist", "Scientist")
	lex.AddClass("film", "Film")
	return kb, lex
}

func trainedStore(t *testing.T, lex *linker.Lexicon) *template.Store {
	t.Helper()
	qg, err := sparql.ParseToGraph(`SELECT ?x WHERE { ?x type Politician . ?x graduatedFrom CIT_University . }`)
	if err != nil {
		t.Fatal(err)
	}
	uq, err := nlq.Interpret("Which politician graduated from CIT?", lex)
	if err != nil {
		t.Fatal(err)
	}
	world, _ := uq.Graph.MostLikelyWorld()
	_, mapping := ged.DistanceMapping(qg.Graph, world)
	tpl, err := template.Generate(qg, uq, mapping)
	if err != nil {
		t.Fatal(err)
	}
	st := template.NewStore()
	st.Add(tpl)
	return st
}

func TestTemplateSystemAnswers(t *testing.T) {
	kb, lex := fixture()
	sys := &TemplateSystem{Store: trainedStore(t, lex), Lex: lex, KB: kb, MinPhi: 0.5}
	if sys.Name() != "template" {
		t.Error("name")
	}
	res, err := sys.Answer("Which scientist graduated from CIT?")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0]["?x"] != "Rex_Hale" {
		t.Fatalf("res = %v, want Rex_Hale", res)
	}
}

func TestTemplateSystemTranslate(t *testing.T) {
	kb, lex := fixture()
	sys := &TemplateSystem{Store: trainedStore(t, lex), Lex: lex, KB: kb, MinPhi: 0.5}
	q, m, err := sys.Translate("Which politician graduated from CIT?")
	if err != nil {
		t.Fatal(err)
	}
	if m.TED != 0 {
		t.Errorf("TED = %d", m.TED)
	}
	if !strings.Contains(q.String(), "CIT_University") {
		t.Errorf("query = %s", q)
	}
}

func TestTemplateSystemAbstains(t *testing.T) {
	kb, lex := fixture()
	sys := &TemplateSystem{Store: trainedStore(t, lex), Lex: lex, KB: kb, MinPhi: 0.9}
	if _, err := sys.Answer("Please please please tell me now which politician graduated from CIT and more words?"); err == nil {
		t.Error("low-phi question answered at MinPhi 0.9")
	}
	if _, err := sys.Answer("Which film directed by Iris Lane?"); err == nil {
		t.Error("uncovered relation answered")
	}
}

func TestTemplateSystemMaxSolutions(t *testing.T) {
	kb, lex := fixture()
	kb.MustAdd("Bob_Stone", "type", "Scientist")
	kb.MustAdd("Bob_Stone", "graduatedFrom", "CIT_University")
	sys := &TemplateSystem{Store: trainedStore(t, lex), Lex: lex, KB: kb, MinPhi: 0.5, MaxSolutions: 1}
	res, err := sys.Answer("Which scientist graduated from CIT?")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("MaxSolutions ignored: %d", len(res))
	}
}

func TestGAnswerSystem(t *testing.T) {
	kb, lex := fixture()
	sys := &GAnswerSystem{Lex: lex, KB: kb}
	if sys.Name() != "gAnswer" {
		t.Error("name")
	}
	res, err := sys.Answer("Which politician graduated from CIT?")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0]["?x1"] != "Ada_Stone" {
		t.Fatalf("res = %v", res)
	}
	if _, err := sys.Answer("gibberish with no relations"); err == nil {
		t.Error("nonsense answered")
	}
}

func TestDirectTranslate(t *testing.T) {
	_, lex := fixture()
	sg, err := nlq.Extract("Which film directed by Iris Lane?", lex)
	if err != nil {
		t.Fatal(err)
	}
	q, err := DirectTranslate(sg)
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	if !strings.Contains(s, "type Film") || !strings.Contains(s, "director Iris_Lane") {
		t.Errorf("translation = %s", s)
	}
}

func TestDeannaSystem(t *testing.T) {
	kb, lex := fixture()
	sys := &DeannaSystem{Lex: lex, KB: kb}
	if sys.Name() != "DEANNA" {
		t.Error("name")
	}
	// Unambiguous single-relation question: answered.
	res, err := sys.Answer("Which film directed by Iris Lane?")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0]["?x1"] != "The_Silent_River" {
		t.Fatalf("res = %v", res)
	}
	// Ambiguous entity: abstains (CIT top candidate at 0.8 < 0.9).
	if _, err := sys.Answer("Which politician graduated from CIT?"); err == nil {
		t.Error("ambiguous question answered")
	}
	// Lower confidence requirement accepts it.
	sys.Confidence = 0.7
	if _, err := sys.Answer("Which politician graduated from CIT?"); err != nil {
		t.Errorf("confidence=0.7 should answer: %v", err)
	}
	// Multi-relation: abstains.
	lex.AddRelation("lives in", "livesIn", 1.0)
	lex.AddEntity("Doverville", "Doverville", "City", 1.0)
	if _, err := sys.Answer("Which politician graduated from CIT and lives in Doverville?"); err == nil {
		t.Error("multi-relation question answered by DEANNA baseline")
	}
}
