package template

import (
	"strings"
	"testing"

	"simjoin/internal/ged"
	"simjoin/internal/linker"
	"simjoin/internal/nlq"
	"simjoin/internal/rdf"
	"simjoin/internal/sparql"
)

func testLexicon() *linker.Lexicon {
	lex := linker.NewLexicon()
	lex.AddEntity("CIT", "CIT_University", "University", 0.8)
	lex.AddEntity("CIT", "CIT_Group", "Company", 0.2)
	lex.AddEntity("Grand Elm University", "Grand_Elm_University", "University", 1.0)
	lex.AddEntity("Harvard University", "Harvard_University", "University", 1.0)
	lex.AddEntity("Coppola", "Francis_Ford_Coppola", "Actor", 1.0)
	lex.AddRelation("graduated from", "graduatedFrom", 1.0)
	lex.AddRelation("directed by", "director", 1.0)
	lex.AddClass("politician", "Politician")
	lex.AddClass("scientist", "Scientist")
	lex.AddClass("movie", "Film")
	lex.AddClass("film", "Film")
	return lex
}

// buildPair constructs the paper's running pair: the politician question and
// the CIT SPARQL query (an exact twin so the mapping is clean).
func buildPair(t *testing.T) (*sparql.QueryGraph, *nlq.UncertainQuestion, ged.Mapping) {
	t.Helper()
	qg, err := sparql.ParseToGraph(`SELECT ?x WHERE { ?x type Politician . ?x graduatedFrom CIT_University . }`)
	if err != nil {
		t.Fatal(err)
	}
	uq, err := nlq.Interpret("Which politician graduated from CIT?", testLexicon())
	if err != nil {
		t.Fatal(err)
	}
	world, _ := uq.Graph.MostLikelyWorld() // CIT resolves to CIT_University
	d, mapping := ged.DistanceMapping(qg.Graph, world)
	if d != 0 {
		t.Fatalf("expected exact twin, ged = %d\nq=%v\nw=%v", d, qg.Graph, world)
	}
	return qg, uq, mapping
}

func TestGenerateTemplate(t *testing.T) {
	qg, uq, mapping := buildPair(t)
	tpl, err := Generate(qg, uq, mapping)
	if err != nil {
		t.Fatal(err)
	}
	if len(tpl.Slots) != 2 {
		t.Fatalf("slots = %d, want 2 (class + entity): %s", len(tpl.Slots), tpl)
	}
	if !strings.Contains(tpl.NL, nlq.Slot) {
		t.Errorf("NL lacks slots: %q", tpl.NL)
	}
	// The SPARQL side must have both the class and the entity slotted.
	qs := tpl.Query.String()
	if strings.Contains(qs, "Politician") || strings.Contains(qs, "CIT_University") {
		t.Errorf("query not fully slotted: %s", qs)
	}
	if !strings.Contains(qs, "__SLOT0__") || !strings.Contains(qs, "__SLOT1__") {
		t.Errorf("placeholders missing: %s", qs)
	}
	// Roles: one class slot, one entity slot.
	roles := map[SlotRole]int{}
	for _, s := range tpl.Slots {
		roles[s.Role]++
	}
	if roles[SlotClass] != 1 || roles[SlotEntity] != 1 {
		t.Errorf("slot roles = %v", roles)
	}
}

func TestGenerateErrors(t *testing.T) {
	qg, uq, mapping := buildPair(t)
	if _, err := Generate(qg, uq, mapping[:1]); err == nil {
		t.Error("short mapping accepted")
	}
	// A mapping that deletes every entity/class vertex yields no slots.
	all := make(ged.Mapping, qg.Graph.NumVertices())
	for i := range all {
		all[i] = ged.Deleted
	}
	if _, err := Generate(qg, uq, all); err == nil {
		t.Error("slotless template accepted")
	}
}

func TestTemplateMatchAndInstantiate(t *testing.T) {
	qg, uq, mapping := buildPair(t)
	tpl, err := Generate(qg, uq, mapping)
	if err != nil {
		t.Fatal(err)
	}
	lex := testLexicon()
	m := tpl.MatchQuestion("Which scientist graduated from Grand Elm University?", lex)
	if m.TED != 0 {
		t.Errorf("TED = %d, want 0 for same-shape question", m.TED)
	}
	if m.Phi < 0.99 {
		t.Errorf("phi = %v, want ~1", m.Phi)
	}
	q, err := m.Instantiate(lex)
	if err != nil {
		t.Fatal(err)
	}
	qs := q.String()
	if !strings.Contains(qs, "Scientist") || !strings.Contains(qs, "Grand_Elm_University") {
		t.Errorf("instantiated query wrong: %s", qs)
	}
	if strings.Contains(qs, "__SLOT") {
		t.Errorf("placeholders left: %s", qs)
	}
}

func TestInstantiateFailsOnUnknownPhrase(t *testing.T) {
	qg, uq, mapping := buildPair(t)
	tpl, _ := Generate(qg, uq, mapping)
	lex := testLexicon()
	m := tpl.MatchQuestion("Which wizard graduated from Hogwarts?", lex)
	if _, err := m.Instantiate(lex); err == nil {
		t.Error("unknown class/entity instantiated")
	}
}

func TestStoreDedupAndBestMatch(t *testing.T) {
	qg, uq, mapping := buildPair(t)
	tpl1, _ := Generate(qg, uq, mapping)
	tpl2, _ := Generate(qg, uq, mapping)
	st := NewStore()
	st.Add(tpl1)
	canonical := st.Add(tpl2)
	if st.Len() != 1 {
		t.Fatalf("dedup failed: %d templates", st.Len())
	}
	if canonical.Support != 2 {
		t.Errorf("support = %d, want 2", canonical.Support)
	}

	// Add a structurally different template and check BestMatch picks right.
	qg2, err := sparql.ParseToGraph(`SELECT ?x WHERE { ?x type Film . ?x director Francis_Ford_Coppola . }`)
	if err != nil {
		t.Fatal(err)
	}
	uq2, err := nlq.Interpret("Which movie directed by Coppola?", testLexicon())
	if err != nil {
		t.Fatal(err)
	}
	world2, _ := uq2.Graph.MostLikelyWorld()
	_, mapping2 := ged.DistanceMapping(qg2.Graph, world2)
	tplFilm, err := Generate(qg2, uq2, mapping2)
	if err != nil {
		t.Fatal(err)
	}
	st.Add(tplFilm)

	lex := testLexicon()
	m, err := st.BestMatch("Which politician graduated from Harvard University?", lex, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.Template.Query.String(), "graduatedFrom") {
		t.Errorf("BestMatch chose wrong template: %s", m.Template)
	}

	q, _, err := st.Translate("Which scientist graduated from CIT?", lex, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.String(), "CIT_University") {
		t.Errorf("translation picked wrong entity: %s", q)
	}
}

func TestBestMatchPhiThreshold(t *testing.T) {
	qg, uq, mapping := buildPair(t)
	tpl, _ := Generate(qg, uq, mapping)
	st := NewStore()
	st.Add(tpl)
	lex := testLexicon()
	// A question with lots of extra words lowers phi.
	long := "Tell me please right now which famous politician graduated from CIT in the past?"
	if _, err := st.BestMatch(long, lex, 1.0); err == nil {
		t.Error("full-match phi accepted a partial match")
	}
	if _, err := st.BestMatch(long, lex, 0.3); err != nil {
		t.Errorf("partial match rejected at phi=0.3: %v", err)
	}
}

func TestBestMatchEmptyStore(t *testing.T) {
	if _, err := NewStore().BestMatch("anything", testLexicon(), 0); err == nil {
		t.Error("empty store matched")
	}
}

func TestInstantiateVerified(t *testing.T) {
	qg, uq, mapping := buildPair(t)
	tpl, err := Generate(qg, uq, mapping)
	if err != nil {
		t.Fatal(err)
	}
	lex := testLexicon()

	// KB in which the top CIT candidate (CIT_University) has no graduates
	// but the runner-up (CIT_Group)... is a company; instead: make only the
	// second candidate's instantiation yield answers by having a scientist
	// graduate from CIT_Group.
	kb := rdfFixture()
	kb.MustAdd("Rex_Hale", "type", "Scientist")
	kb.MustAdd("Rex_Hale", "graduatedFrom", "CIT_Group")
	lex.AddClass("company", "Company") // not needed for slots; lexicon sanity

	m := tpl.MatchQuestion("Which scientist graduated from CIT?", lex)
	q, res, err := m.InstantiateVerified(lex, kb, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0]["?x"] != "Rex_Hale" {
		t.Fatalf("verified instantiation res = %v (query %s)", res, q)
	}
	if !strings.Contains(q.String(), "CIT_Group") {
		t.Fatalf("verification did not fall through to the second candidate: %s", q)
	}

	// When no combination yields answers, the top-confidence query returns
	// with empty results rather than an error.
	empty := rdfFixture()
	q2, res2, err := m.InstantiateVerified(lex, empty, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2) != 0 || !strings.Contains(q2.String(), "CIT_University") {
		t.Fatalf("empty-KB fallback wrong: %v / %s", res2, q2)
	}

	// Unfilled slots fail.
	bad := tpl.MatchQuestion("Which wizard graduated from Hogwarts?", lex)
	if _, _, err := bad.InstantiateVerified(lex, kb, 8); err == nil {
		t.Error("unresolvable slots instantiated")
	}
}

func rdfFixture() *rdf.Store {
	return rdf.NewStore()
}

func TestAlignTokens(t *testing.T) {
	tmpl := []string{"Which", nlq.Slot, "graduated", "from", nlq.Slot}
	units := []string{"Which", "scientist", "graduated", "from", "Grand Elm University"}
	caps, covered, cost := AlignTokens(tmpl, units, nil)
	if cost != 0 {
		t.Errorf("cost = %d, want 0", cost)
	}
	if covered != 5 {
		t.Errorf("covered = %d, want 5", covered)
	}
	if caps[1] != "scientist" || caps[4] != "Grand Elm University" {
		t.Errorf("captures = %v", caps)
	}
	// Insertion in the question.
	units2 := []string{"Which", "scientist", "really", "graduated", "from", "CIT"}
	_, covered2, cost2 := AlignTokens(tmpl, units2, nil)
	if cost2 != 1 || covered2 != 5 {
		t.Errorf("cost2=%d covered2=%d", cost2, covered2)
	}
	// Empty cases.
	if _, _, c := AlignTokens(nil, nil, nil); c != 0 {
		t.Errorf("empty alignment cost %d", c)
	}
	if _, _, c := AlignTokens(tmpl, nil, nil); c != len(tmpl) {
		t.Errorf("nil units cost %d", c)
	}
}
