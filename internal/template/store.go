package template

import (
	"fmt"
	"sort"

	"simjoin/internal/linker"
	"simjoin/internal/sparql"
)

// Store holds the learned templates with deduplication and lookup. The zero
// value is unusable; construct with NewStore.
type Store struct {
	byKey map[string]*Template
	all   []*Template
}

// NewStore returns an empty template store.
func NewStore() *Store {
	return &Store{byKey: make(map[string]*Template)}
}

// Add inserts a template, merging duplicates by incrementing Support. It
// returns the canonical instance.
func (s *Store) Add(t *Template) *Template {
	if cur, ok := s.byKey[t.Key()]; ok {
		cur.Support++
		return cur
	}
	s.byKey[t.Key()] = t
	s.all = append(s.all, t)
	return t
}

// Len returns the number of distinct templates.
func (s *Store) Len() int { return len(s.all) }

// Templates returns all templates ordered by descending support, then NL.
func (s *Store) Templates() []*Template {
	out := append([]*Template(nil), s.all...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].NL < out[j].NL
	})
	return out
}

// BestMatch finds the template whose dependency tree best aligns with the
// question (minimum tree edit distance, ties broken by higher φ, then by
// higher support). minPhi discards matches whose matching proportion φ falls
// below it — the partial-match knob of Table 5; pass 1.0 to require a full
// match. It returns an error when the store is empty or nothing reaches
// minPhi.
func (s *Store) BestMatch(question string, lex *linker.Lexicon, minPhi float64) (Match, error) {
	if len(s.all) == 0 {
		return Match{}, fmt.Errorf("template: store is empty")
	}
	var best Match
	found := false
	for _, t := range s.all {
		m := t.MatchQuestion(question, lex)
		if m.Phi < minPhi-1e-9 || !m.Complete() {
			continue
		}
		if !found || better(m, best) {
			best = m
			found = true
		}
	}
	if !found {
		return Match{}, fmt.Errorf("template: no template reaches phi >= %v for %q", minPhi, question)
	}
	return best, nil
}

func better(a, b Match) bool {
	if a.TED != b.TED {
		return a.TED < b.TED
	}
	if a.Phi != b.Phi {
		return a.Phi > b.Phi
	}
	return a.Template.Support > b.Template.Support
}

// Translate matches the question against the store and instantiates the best
// template into an executable SPARQL query (§2.2 end-to-end).
func (s *Store) Translate(question string, lex *linker.Lexicon, minPhi float64) (*sparql.Query, Match, error) {
	m, err := s.BestMatch(question, lex, minPhi)
	if err != nil {
		return nil, Match{}, err
	}
	q, err := m.Instantiate(lex)
	if err != nil {
		return nil, m, err
	}
	return q, m, nil
}
