package template

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	qg, uq, mapping := buildPair(t)
	tpl, err := Generate(qg, uq, mapping)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore()
	st.Add(tpl)
	st.Add(tpl) // support 2

	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != st.Len() {
		t.Fatalf("loaded %d templates, want %d", loaded.Len(), st.Len())
	}
	lt := loaded.Templates()[0]
	ot := st.Templates()[0]
	if lt.NL != ot.NL || lt.Query.String() != ot.Query.String() || lt.Support != ot.Support {
		t.Fatalf("round trip mismatch:\n%s (sup %d)\n%s (sup %d)", lt, lt.Support, ot, ot.Support)
	}
	// The loaded store must be functional end to end.
	lex := testLexicon()
	q, _, err := loaded.Translate("Which scientist graduated from Grand Elm University?", lex, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.String(), "Grand_Elm_University") {
		t.Errorf("loaded store translation: %s", q)
	}
}

func TestLoadStoreRejectsGarbage(t *testing.T) {
	cases := []string{
		`not json`,
		`[{"nl":"x","tokens":[],"query":"SELECT ?x WHERE { ?x p O }","slots":[],"support":1}]`,                                                      // empty tokens
		`[{"nl":"x","tokens":["a"],"query":"garbage","slots":[],"support":1}]`,                                                                      // bad query
		`[{"nl":"x","tokens":["a"],"query":"SELECT ?x WHERE { ?x p O }","slots":[{"Role":0,"NLIndex":9,"Positions":[{"Pattern":0}]}],"support":1}]`, // slot index out of range
		`[{"nl":"x","tokens":["a"],"query":"SELECT ?x WHERE { ?x p O }","slots":[{"Role":0,"NLIndex":0,"Positions":[]}],"support":1}]`,              // no positions
	}
	for i, c := range cases {
		if _, err := LoadStore(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestLoadStoreMergesDuplicates(t *testing.T) {
	qg, uq, mapping := buildPair(t)
	tpl, _ := Generate(qg, uq, mapping)
	st := NewStore()
	st.Add(tpl)
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Duplicate the single entry manually.
	doubled := strings.Replace(buf.String(), "[", "[", 1)
	doubled = "[" + strings.TrimSuffix(strings.TrimPrefix(strings.TrimSpace(doubled), "["), "]") + "," +
		strings.TrimSuffix(strings.TrimPrefix(strings.TrimSpace(buf.String()), "["), "]") + "]"
	loaded, err := LoadStore(strings.NewReader(doubled))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 1 {
		t.Fatalf("duplicates not merged: %d", loaded.Len())
	}
	if loaded.Templates()[0].Support != 2 {
		t.Fatalf("support = %d, want 2", loaded.Templates()[0].Support)
	}
}
