package template

import (
	"fmt"
	"sort"
	"strings"

	"simjoin/internal/linker"
	"simjoin/internal/nlq"
	"simjoin/internal/rdf"
	"simjoin/internal/sparql"
)

// Match is the result of aligning a question with a template.
type Match struct {
	Template *Template
	// TED is the tree edit distance between the dependency trees of the
	// question and the template (lower is better).
	TED int
	// Phi is the matching proportion φ: covered question words / all words
	// (Appendix F.2).
	Phi float64
	// Fillers holds the phrase captured by each slot, in slot order; empty
	// strings mark unfilled slots.
	Fillers []string
	// KeywordsCovered reports whether every non-slot template word occurs
	// in the question; templates failing this describe a different relation.
	KeywordsCovered bool
}

// Complete reports whether the match can be instantiated: all keywords
// covered and every slot filled.
func (m Match) Complete() bool {
	if !m.KeywordsCovered {
		return false
	}
	for _, f := range m.Fillers {
		if f == "" {
			return false
		}
	}
	return true
}

// collapseQuestion turns a question into the unit-token sequence templates
// are matched against: entity mentions become single tokens, other tokens
// stay as-is (stopwords retained — templates keep theirs too).
func collapseQuestion(question string, lex *linker.Lexicon) []string {
	toks := nlq.Tokenize(question)
	var units []string
	i := 0
	for i < len(toks) {
		if lex != nil {
			if _, n := lex.MatchEntity(toks, i); n > 0 {
				units = append(units, strings.Join(toks[i:i+n], " "))
				i += n
				continue
			}
		}
		units = append(units, toks[i])
		i++
	}
	return units
}

// AlignTokens aligns template tokens against question units with a minimal
// edit script and returns the slot captures, the number of question units
// covered at zero cost, and the alignment cost. Slots match fillable units
// (entity mentions, class nouns) at zero cost and anything else at cost 1,
// so the optimal alignment never wastes a slot on a stopword when a fillable
// unit is available. fillable may be nil (every unit fillable).
func AlignTokens(tmplTokens, units []string, fillable []bool) (captures map[int]string, covered, cost int) {
	return alignTokens(tmplTokens, units, func(_, j int) bool {
		return fillable == nil || fillable[j]
	})
}

// alignTokens is AlignTokens with a per-(slot, unit) compatibility function.
func alignTokens(tmplTokens, units []string, compatible func(i, j int) bool) (captures map[int]string, covered, cost int) {
	n, m := len(tmplTokens), len(units)
	cellCost := func(i, j int) int {
		if tmplTokens[i] == nlq.Slot {
			if compatible(i, j) {
				return 0
			}
			return 1
		}
		if strings.EqualFold(tmplTokens[i], units[j]) {
			return 0
		}
		return 1
	}
	// dp[i][j]: cost aligning tmpl[i:] with units[j:].
	dp := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, m+1)
	}
	for i := n; i >= 0; i-- {
		for j := m; j >= 0; j-- {
			switch {
			case i == n && j == m:
				dp[i][j] = 0
			case i == n:
				dp[i][j] = m - j
			case j == m:
				dp[i][j] = n - i
			default:
				best := dp[i+1][j+1] + cellCost(i, j)
				if v := dp[i+1][j] + 1; v < best {
					best = v
				}
				if v := dp[i][j+1] + 1; v < best {
					best = v
				}
				dp[i][j] = best
			}
		}
	}
	// Traceback.
	captures = make(map[int]string)
	i, j := 0, 0
	for i < n || j < m {
		switch {
		case i < n && j < m && dp[i][j] == dp[i+1][j+1]+cellCost(i, j):
			if tmplTokens[i] == nlq.Slot {
				if compatible(i, j) {
					captures[i] = units[j]
					covered++
				}
			} else if strings.EqualFold(tmplTokens[i], units[j]) {
				covered++
			}
			i++
			j++
		case i < n && dp[i][j] == dp[i+1][j]+1:
			i++
		default:
			j++
		}
	}
	return captures, covered, dp[0][0]
}

// MatchQuestion aligns one template against a question: dependency-tree edit
// distance for the score, role-aware token alignment for slot capture and φ.
// Class slots only capture class nouns, entity slots only linkable mentions.
func (t *Template) MatchQuestion(question string, lex *linker.Lexicon) Match {
	units := collapseQuestion(question, lex)
	var fillable []bool
	if lex != nil {
		fillable = make([]bool, len(units))
		for j, u := range units {
			_, isClass := lex.LookupClass(u)
			fillable[j] = isClass || len(lex.LinkEntity(u)) > 0
		}
	}
	roleAt := make(map[int]SlotRole, len(t.Slots))
	for _, s := range t.Slots {
		roleAt[s.NLIndex] = s.Role
	}
	compatible := func(i, j int) bool {
		if fillable != nil && !fillable[j] {
			return false
		}
		if lex == nil {
			return true
		}
		_, isClass := lex.LookupClass(units[j])
		if roleAt[i] == SlotClass {
			return isClass
		}
		return len(lex.LinkEntity(units[j])) > 0
	}
	qTree := nlq.BuildDepTree(question, lex)
	ted := nlq.TreeEditDistance(qTree, t.Tree())
	captures, covered, _ := alignTokens(t.Tokens, units, compatible)

	m := Match{Template: t, TED: ted, Fillers: make([]string, len(t.Slots))}
	if len(units) > 0 {
		m.Phi = float64(covered) / float64(len(units))
	}
	for si, s := range t.Slots {
		if cap, ok := captures[s.NLIndex]; ok {
			m.Fillers[si] = cap
		}
	}
	// Keywords check: every non-slot template word must occur in the
	// question, otherwise the template describes a different relation and
	// must not be instantiated ("composed by" templates on "married to"
	// questions).
	have := make(map[string]bool, len(units))
	for _, u := range units {
		have[strings.ToLower(u)] = true
	}
	m.KeywordsCovered = true
	for _, tok := range t.Tokens {
		if tok == nlq.Slot {
			continue
		}
		if !have[strings.ToLower(tok)] {
			m.KeywordsCovered = false
			break
		}
	}
	// Converse check — partial matching with guardrails. The paper's φ
	// matching drops question constraints a template does not cover
	// (Appendix F.2), which is safe for detachable sibling constraints
	// ("directed by A AND STARRING B" answered by a directed-by template:
	// a superset of the gold answers) but harmful when a dropped relation's
	// argument leaks into a slot ("lives in a city LOCATED IN X" must not
	// fill the lives-in slot with X). So: uncovered relations are allowed
	// only if none of their argument phrases was captured by a slot.
	if lex != nil && m.KeywordsCovered {
		tmplHas := make(map[string]bool, len(t.Tokens))
		for _, tok := range t.Tokens {
			tmplHas[strings.ToLower(tok)] = true
		}
		tainted := uncoveredRelationArgs(question, lex, tmplHas)
		for _, f := range m.Fillers {
			if f != "" && tainted[strings.ToLower(f)] {
				m.KeywordsCovered = false
				break
			}
		}
	}
	return m
}

// uncoveredRelationArgs returns the lowercase argument surfaces of every
// question relation whose phrase words are not all present in the template.
// When the question cannot be analysed the empty set is returned (the φ
// threshold remains the only guard, as in the paper).
func uncoveredRelationArgs(question string, lex *linker.Lexicon, tmplHas map[string]bool) map[string]bool {
	tainted := make(map[string]bool)
	sg, err := nlq.Extract(question, lex)
	if err != nil {
		return tainted
	}
	for _, r := range sg.Rels {
		covered := true
		for _, w := range strings.Fields(r.Phrase) {
			if !nlq.IsStopword(w) && !tmplHas[strings.ToLower(w)] {
				covered = false
				break
			}
		}
		if covered {
			continue
		}
		for _, ai := range []int{r.Arg1, r.Arg2} {
			arg := sg.Args[ai]
			tainted[strings.ToLower(arg.Surface)] = true
			// Class-noun arguments taint their bare noun too ("a city").
			fields := strings.Fields(arg.Surface)
			tainted[strings.ToLower(fields[len(fields)-1])] = true
		}
	}
	return tainted
}

// InstantiateVerified resolves slot phrases like Instantiate but exploits
// the structured query for disambiguation: entity candidates are tried in
// decreasing joint-confidence order (up to maxTries combinations) and the
// first instantiation with non-empty answers over the knowledge graph wins.
// When no combination yields answers, the top-confidence instantiation is
// returned with its empty result. This query-driven candidate verification
// is the practical advantage a full template gives over committing to
// maximum-confidence linking up front.
func (m Match) InstantiateVerified(lex *linker.Lexicon, kb *rdf.Store, maxTries int) (*sparql.Query, []sparql.Binding, error) {
	return m.InstantiateVerifiedWith(lex, func(q *sparql.Query) ([]sparql.Binding, error) {
		return sparql.Execute(kb, q, 0)
	}, maxTries)
}

// Executor runs one instantiated candidate query during verified
// instantiation. A failing candidate is skipped, not fatal: verification
// moves on to the next combination.
type Executor func(q *sparql.Query) ([]sparql.Binding, error)

// InstantiateVerifiedWith is InstantiateVerified over an arbitrary query
// executor, so callers can route candidate verification through a different
// engine (or one wrapped with deadlines and fault containment).
func (m Match) InstantiateVerifiedWith(lex *linker.Lexicon, exec Executor, maxTries int) (*sparql.Query, []sparql.Binding, error) {
	t := m.Template
	if maxTries <= 0 {
		maxTries = 8
	}
	// Per-slot candidate values with confidences.
	type cand struct {
		value string
		p     float64
	}
	options := make([][]cand, len(t.Slots))
	for si, s := range t.Slots {
		phrase := m.Fillers[si]
		if phrase == "" {
			return nil, nil, fmt.Errorf("template: slot %d unfilled for %q", si, t.NL)
		}
		switch s.Role {
		case SlotEntity:
			for _, c := range lex.LinkEntity(phrase) {
				options[si] = append(options[si], cand{c.Entity, c.P})
			}
			if len(options[si]) == 0 {
				return nil, nil, fmt.Errorf("template: cannot link entity phrase %q", phrase)
			}
		case SlotClass:
			class, ok := lex.LookupClass(phrase)
			if !ok {
				return nil, nil, fmt.Errorf("template: unknown class noun %q", phrase)
			}
			options[si] = []cand{{class, 1}}
		}
	}
	// Enumerate combinations, best joint confidence first.
	type combo struct {
		idx []int
		p   float64
	}
	combos := []combo{{idx: make([]int, len(options)), p: 1}}
	for si := range options {
		var next []combo
		for _, c := range combos {
			for oi, o := range options[si] {
				ni := append([]int(nil), c.idx...)
				ni[si] = oi
				next = append(next, combo{idx: ni, p: c.p * o.p})
				if len(next) >= maxTries*4 {
					break
				}
			}
		}
		combos = next
	}
	sort.SliceStable(combos, func(i, j int) bool { return combos[i].p > combos[j].p })
	if len(combos) > maxTries {
		combos = combos[:maxTries]
	}

	build := func(idx []int) *sparql.Query {
		q := &sparql.Query{Vars: append([]string(nil), t.Query.Vars...)}
		q.Patterns = append(q.Patterns, t.Query.Patterns...)
		for si := range t.Slots {
			value := options[si][idx[si]].value
			placeholder := slotValue(si)
			for pi := range q.Patterns {
				if q.Patterns[pi].S.Value == placeholder {
					q.Patterns[pi].S = sparql.Term{Kind: sparql.IRI, Value: value}
				}
				if q.Patterns[pi].O.Value == placeholder {
					q.Patterns[pi].O = sparql.Term{Kind: sparql.IRI, Value: value}
				}
			}
		}
		return q
	}

	var firstQ *sparql.Query
	var firstRes []sparql.Binding
	for i, c := range combos {
		q := build(c.idx)
		res, err := exec(q)
		if err != nil {
			continue
		}
		if i == 0 {
			firstQ, firstRes = q, res
		}
		if len(res) > 0 {
			return q, res, nil
		}
	}
	if firstQ == nil {
		return nil, nil, fmt.Errorf("template: no executable instantiation for %q", t.NL)
	}
	return firstQ, firstRes, nil
}

// Instantiate fills the template's SPARQL with the matched phrases: entity
// slots are resolved through entity linking (top candidate), class slots
// through the class lexicon. It fails when a slot is unfilled or a phrase
// cannot be resolved.
func (m Match) Instantiate(lex *linker.Lexicon) (*sparql.Query, error) {
	t := m.Template
	q := &sparql.Query{Vars: append([]string(nil), t.Query.Vars...)}
	q.Patterns = append(q.Patterns, t.Query.Patterns...)
	for si, s := range t.Slots {
		phrase := m.Fillers[si]
		if phrase == "" {
			return nil, fmt.Errorf("template: slot %d unfilled for %q", si, t.NL)
		}
		var value string
		switch s.Role {
		case SlotEntity:
			cands := lex.LinkEntity(phrase)
			if len(cands) == 0 {
				return nil, fmt.Errorf("template: cannot link entity phrase %q", phrase)
			}
			value = cands[0].Entity
		case SlotClass:
			class, ok := lex.LookupClass(phrase)
			if !ok {
				return nil, fmt.Errorf("template: unknown class noun %q", phrase)
			}
			value = class
		}
		placeholder := slotValue(si)
		for pi := range q.Patterns {
			if q.Patterns[pi].S.Value == placeholder {
				q.Patterns[pi].S = sparql.Term{Kind: sparql.IRI, Value: value}
			}
			if q.Patterns[pi].O.Value == placeholder {
				q.Patterns[pi].O = sparql.Term{Kind: sparql.IRI, Value: value}
			}
		}
	}
	return q, nil
}
