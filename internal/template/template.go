// Package template implements Step 3 of the paper's pipeline (§2.1) and the
// template-based Q/A of §2.2: turning similar graph pairs 〈q, g〉 returned by
// SimJ into reusable question-to-SPARQL templates, storing and indexing
// them, matching new questions against them with dependency-tree edit
// distance (Fig. 5), and filling slots to produce executable SPARQL.
package template

import (
	"fmt"
	"sort"
	"strings"

	"simjoin/internal/ged"
	"simjoin/internal/nlq"
	"simjoin/internal/sparql"
)

// SlotRole says what kind of phrase fills a slot.
type SlotRole int

const (
	// SlotEntity expects an entity mention.
	SlotEntity SlotRole = iota
	// SlotClass expects a class noun.
	SlotClass
)

// Slot pairs one natural-language slot with the SPARQL positions it fills.
type Slot struct {
	Role SlotRole
	// NLIndex is the index of this slot's token in the template's token
	// sequence (see Template.Tokens).
	NLIndex int
	// Positions lists the query pattern positions the captured value
	// substitutes: pattern index and whether it is the subject or object.
	Positions []TermPos
	// Original is the value the source pair had at this slot (provenance).
	Original string
}

// TermPos addresses one term inside a query's pattern list.
type TermPos struct {
	Pattern int
	Object  bool // false = subject
}

// Template is one learned question template.
type Template struct {
	// NL is the display form of the natural-language pattern, with nlq.Slot
	// marking slots.
	NL string
	// Tokens is the collapsed token sequence of the pattern (entity
	// mentions collapsed to single tokens, slots as nlq.Slot).
	Tokens []string
	// Query is the slotted SPARQL query: slotted terms carry placeholder
	// IRI values "__SLOT<i>__".
	Query *sparql.Query
	// Slots describes each slot in NL order.
	Slots []Slot
	// Support counts how many join pairs produced this template.
	Support int

	tree *nlq.DepNode // cached dependency tree of the NL pattern
}

// slotValue returns the placeholder term value of slot i.
func slotValue(i int) string { return fmt.Sprintf("__SLOT%d__", i) }

// Generate builds a template from one similar pair: the SPARQL query graph
// q, the uncertain question uq, the satisfying possible world, and the GED
// vertex mapping from q's graph to the world (produced during verification,
// §2.1 Step 3 / Fig. 4).
//
// Every entity/class vertex of q whose image under the mapping is an
// entity/class vertex of the question becomes a slot: its phrase in the
// question text and its term in the SPARQL query are replaced together. An
// error is returned when the mapping yields no usable alignment.
func Generate(q *sparql.QueryGraph, uq *nlq.UncertainQuestion, mapping ged.Mapping) (*Template, error) {
	if len(mapping) != q.Graph.NumVertices() {
		return nil, fmt.Errorf("template: mapping length %d != |V(q)| %d", len(mapping), q.Graph.NumVertices())
	}

	type slotSource struct {
		qVertex  int
		role     SlotRole
		surface  string // question phrase
		original string
	}
	var sources []slotSource
	for v := 0; v < q.Graph.NumVertices(); v++ {
		role := q.Roles[v]
		if role == sparql.RoleVariable {
			continue
		}
		img := mapping[v]
		if img == ged.Deleted || img >= len(uq.VertexArg) {
			continue
		}
		surface, ok := uq.SlotSurface(img)
		if !ok {
			continue
		}
		sr := SlotEntity
		if role == sparql.RoleClass {
			sr = SlotClass
		}
		sources = append(sources, slotSource{qVertex: v, role: sr, surface: surface, original: q.Terms[v].Value})
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("template: no aligned entity/class vertices between query and question")
	}

	// Build the collapsed token sequence of the question, replacing each
	// slotted surface (longest first so multi-word mentions win).
	sort.Slice(sources, func(i, j int) bool {
		return len(sources[i].surface) > len(sources[j].surface)
	})
	toks := nlq.Tokenize(uq.Sem.Question)
	slotAt := make([]int, len(toks)) // token -> source index + 1, 0 = none
	consumed := make([]bool, len(toks))
	for si, src := range sources {
		words := nlq.Tokenize(src.surface)
		pos := findPhrase(toks, words, consumed)
		if pos < 0 {
			return nil, fmt.Errorf("template: phrase %q not found in question %q", src.surface, uq.Sem.Question)
		}
		slotAt[pos] = si + 1
		for k := pos; k < pos+len(words); k++ {
			consumed[k] = true
		}
	}

	tpl := &Template{Support: 1}
	// Assemble tokens; map source index -> slot index in NL order.
	slotIndexOf := make([]int, len(sources))
	for i := range slotIndexOf {
		slotIndexOf[i] = -1
	}
	for i := 0; i < len(toks); i++ {
		if si := slotAt[i]; si > 0 {
			src := sources[si-1]
			slotIndexOf[si-1] = len(tpl.Slots)
			tpl.Slots = append(tpl.Slots, Slot{
				Role:     src.role,
				NLIndex:  len(tpl.Tokens),
				Original: src.original,
			})
			tpl.Tokens = append(tpl.Tokens, nlq.Slot)
			// Skip the rest of the consumed phrase.
			words := nlq.Tokenize(src.surface)
			i += len(words) - 1
			continue
		}
		if consumed[i] {
			continue
		}
		tpl.Tokens = append(tpl.Tokens, toks[i])
	}
	tpl.NL = strings.Join(tpl.Tokens, " ") + "?"

	// Slot the SPARQL query.
	qc := &sparql.Query{Vars: append([]string(nil), q.Query.Vars...)}
	qc.Patterns = append(qc.Patterns, q.Query.Patterns...)
	for si, src := range sources {
		slotIdx := slotIndexOf[si]
		if slotIdx < 0 {
			continue
		}
		val := q.Terms[src.qVertex].Value
		for pi := range qc.Patterns {
			if qc.Patterns[pi].S.Kind != sparql.Var && qc.Patterns[pi].S.Value == val {
				qc.Patterns[pi].S = sparql.Term{Kind: sparql.IRI, Value: slotValue(slotIdx)}
				tpl.Slots[slotIdx].Positions = append(tpl.Slots[slotIdx].Positions, TermPos{Pattern: pi, Object: false})
			}
			if qc.Patterns[pi].O.Kind != sparql.Var && qc.Patterns[pi].O.Value == val {
				qc.Patterns[pi].O = sparql.Term{Kind: sparql.IRI, Value: slotValue(slotIdx)}
				tpl.Slots[slotIdx].Positions = append(tpl.Slots[slotIdx].Positions, TermPos{Pattern: pi, Object: true})
			}
		}
	}
	tpl.Query = qc

	for _, s := range tpl.Slots {
		if len(s.Positions) == 0 {
			return nil, fmt.Errorf("template: slot %d bound no query position", s.NLIndex)
		}
	}
	return tpl, nil
}

// Grounded reports whether every slotted correspondence of a pair aligns on
// compatible labels: each entity/class vertex of q maps to a question vertex
// one of whose candidate labels equals the query term. Grounded pairs are
// direct lexical evidence for the slot correspondence; ungrounded ones (the
// paper's CIT ↔ Harvard_University mapping) still produce valid templates
// but weaker evidence, so BuildTemplates prefers grounded pairs per question
// when any exist.
func Grounded(q *sparql.QueryGraph, uq *nlq.UncertainQuestion, mapping ged.Mapping) bool {
	if len(mapping) != q.Graph.NumVertices() {
		return false
	}
	for v := 0; v < q.Graph.NumVertices(); v++ {
		if q.Roles[v] == sparql.RoleVariable {
			continue
		}
		img := mapping[v]
		if img == ged.Deleted || img >= len(uq.VertexArg) {
			return false
		}
		if _, ok := uq.SlotSurface(img); !ok {
			return false
		}
		want := q.Terms[v].Value
		matched := false
		for _, l := range uq.Graph.Labels(img) {
			if l.Name == want {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}

// findPhrase locates words inside toks (case-insensitive), skipping already
// consumed positions; returns the start index or -1.
func findPhrase(toks, words []string, consumed []bool) int {
	if len(words) == 0 {
		return -1
	}
outer:
	for i := 0; i+len(words) <= len(toks); i++ {
		for j := range words {
			if consumed[i+j] || !strings.EqualFold(toks[i+j], words[j]) {
				continue outer
			}
		}
		return i
	}
	return -1
}

// Key returns a canonical identity for deduplication: the NL token pattern
// plus the slotted query text.
func (t *Template) Key() string {
	return strings.Join(t.Tokens, " ") + "\x00" + t.Query.String()
}

// Tree returns (building lazily) the dependency tree of the NL pattern.
func (t *Template) Tree() *nlq.DepNode {
	if t.tree == nil {
		t.tree = nlq.BuildDepTree(strings.Join(t.Tokens, " "), nil)
	}
	return t.tree
}

// String renders the template like Fig. 4(d).
func (t *Template) String() string {
	return t.NL + "  =>  " + t.Query.String()
}
