package template

import (
	"encoding/json"
	"fmt"
	"io"

	"simjoin/internal/sparql"
)

// persisted mirrors Template for JSON serialisation; the SPARQL query is
// stored in its textual form and re-parsed on load (slot placeholders are
// plain IRIs, so the round trip is lossless).
type persisted struct {
	NL      string   `json:"nl"`
	Tokens  []string `json:"tokens"`
	Query   string   `json:"query"`
	Slots   []Slot   `json:"slots"`
	Support int      `json:"support"`
}

// Save serialises the store as a JSON array, ordered by descending support.
func (s *Store) Save(w io.Writer) error {
	var out []persisted
	for _, t := range s.Templates() {
		out = append(out, persisted{
			NL:      t.NL,
			Tokens:  t.Tokens,
			Query:   t.Query.String(),
			Slots:   t.Slots,
			Support: t.Support,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadStore reads a store previously written by Save.
func LoadStore(r io.Reader) (*Store, error) {
	var in []persisted
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("template: load: %w", err)
	}
	s := NewStore()
	for i, p := range in {
		q, err := sparql.Parse(p.Query)
		if err != nil {
			return nil, fmt.Errorf("template: load entry %d: %w", i, err)
		}
		t := &Template{
			NL:      p.NL,
			Tokens:  p.Tokens,
			Query:   q,
			Slots:   p.Slots,
			Support: p.Support,
		}
		if err := t.validate(); err != nil {
			return nil, fmt.Errorf("template: load entry %d: %w", i, err)
		}
		if cur, ok := s.byKey[t.Key()]; ok {
			cur.Support += t.Support
			continue
		}
		s.byKey[t.Key()] = t
		s.all = append(s.all, t)
	}
	return s, nil
}

// validate checks internal consistency of a deserialised template.
func (t *Template) validate() error {
	if len(t.Tokens) == 0 || t.Query == nil || len(t.Query.Patterns) == 0 {
		return fmt.Errorf("empty template")
	}
	for si, s := range t.Slots {
		if s.NLIndex < 0 || s.NLIndex >= len(t.Tokens) {
			return fmt.Errorf("slot %d NL index %d out of range", si, s.NLIndex)
		}
		if len(s.Positions) == 0 {
			return fmt.Errorf("slot %d binds no query position", si)
		}
		for _, pos := range s.Positions {
			if pos.Pattern < 0 || pos.Pattern >= len(t.Query.Patterns) {
				return fmt.Errorf("slot %d pattern index %d out of range", si, pos.Pattern)
			}
		}
	}
	return nil
}
