// Package gstore implements a signature-based SPARQL execution engine in
// the spirit of gStore [34], one of the engines the paper's Q/A framework
// plugs into (§1). Every subject in the knowledge graph gets a fixed-width
// bit signature summarising its outgoing (predicate, object) structure; a
// basic graph pattern compiles to per-variable query signatures, and a
// candidate subject must cover the query signature bitwise before the
// engine spends any time joining — the adjacency-driven analogue of
// gStore's VS-tree filtering.
//
// The engine returns exactly the solutions of the reference executor
// (sparql.Execute); it differs only in how candidates are found.
package gstore

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"simjoin/internal/obs"
	"simjoin/internal/rdf"
	"simjoin/internal/sparql"
)

// SignatureBits is the signature width.
const SignatureBits = 128

// Signature is a fixed-width bitset.
type Signature [SignatureBits / 64]uint64

func (s *Signature) set(bit uint32) { s[bit/64%2] |= 1 << (bit % 64) }
func (s *Signature) or(o Signature) { s[0] |= o[0]; s[1] |= o[1] }
func (s Signature) covers(q Signature) bool {
	return s[0]&q[0] == q[0] && s[1]&q[1] == q[1]
}

// PopCount returns the number of set bits (diagnostics).
func (s Signature) PopCount() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

func hashBit(parts ...string) uint32 {
	h := fnv.New32a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum32() % SignatureBits
}

// edgeSignature summarises one outgoing edge: one bit for the predicate
// alone and one for the (predicate, object) pair.
func edgeSignature(pred, obj string) Signature {
	var s Signature
	s.set(hashBit("p", pred))
	s.set(hashBit("po", pred, obj))
	return s
}

// Index is the signature index over a store's subjects.
type Index struct {
	store      *rdf.Store
	subjects   []string
	signatures []Signature
	m          engineMetrics
}

// engineMetrics holds the optional observability handles of an Index; every
// field is a nil-safe obs instrument.
type engineMetrics struct {
	queries   *obs.Counter // Execute calls
	fallbacks *obs.Counter // queries with no filterable variable
	scanned   *obs.Counter // subject signatures tested
	matched   *obs.Counter // signatures covering the query signature
	seconds   *obs.Histogram
}

// SetObs attaches observability instruments to the engine: query counts,
// reference-executor fallbacks, signature filter selectivity
// (gstore_candidates_matched_total / gstore_candidates_scanned_total), and
// per-query latency. Passing nil detaches.
func (idx *Index) SetObs(reg *obs.Registry) {
	if reg == nil {
		idx.m = engineMetrics{}
		return
	}
	idx.m = engineMetrics{
		queries:   reg.Counter("gstore_queries_total"),
		fallbacks: reg.Counter("gstore_fallback_total"),
		scanned:   reg.Counter("gstore_candidates_scanned_total"),
		matched:   reg.Counter("gstore_candidates_matched_total"),
		seconds:   reg.Histogram("gstore_query_seconds", obs.DurationBuckets),
	}
}

// Build scans the store and computes every subject's signature.
func Build(st *rdf.Store) *Index {
	idx := &Index{store: st}
	st.Subjects(func(s string) bool {
		idx.subjects = append(idx.subjects, s)
		return true
	})
	sort.Strings(idx.subjects)
	idx.signatures = make([]Signature, len(idx.subjects))
	for i, s := range idx.subjects {
		var sig Signature
		st.Match(s, "", "", func(t rdf.Triple) bool {
			sig.or(edgeSignature(t.P, t.O))
			return true
		})
		idx.signatures[i] = sig
	}
	return idx
}

// Len returns the number of indexed subjects.
func (idx *Index) Len() int { return len(idx.subjects) }

// candidates streams subjects whose signature covers q.
func (idx *Index) candidates(q Signature, fn func(s string) bool) {
	for i, sig := range idx.signatures {
		idx.m.scanned.Inc()
		if sig.covers(q) {
			idx.m.matched.Inc()
			if !fn(idx.subjects[i]) {
				return
			}
		}
	}
}

// querySignatures compiles a BGP into one signature per variable appearing
// in subject position: bits for every constant-predicate edge leaving it
// (plus the pair bit when the object is constant too). Variables never in
// subject position get the empty signature (no filtering possible).
func querySignatures(q *sparql.Query) map[string]Signature {
	sigs := make(map[string]Signature)
	for _, tp := range q.Patterns {
		if !tp.S.IsVar() || tp.P.IsVar() {
			continue
		}
		sig := sigs[tp.S.Value]
		if tp.O.IsVar() {
			sig.set(hashBit("p", tp.P.Value))
		} else {
			sig.or(edgeSignature(tp.P.Value, tp.O.Value))
		}
		sigs[tp.S.Value] = sig
	}
	return sigs
}

// Execute evaluates the query with signature-filtered candidates and
// returns the same solutions as sparql.Execute (deterministic order).
// maxSolutions caps the result size; 0 means unlimited.
func (idx *Index) Execute(q *sparql.Query, maxSolutions int) ([]sparql.Binding, error) {
	if len(q.Patterns) == 0 {
		return nil, fmt.Errorf("gstore: query has no patterns")
	}
	idx.m.queries.Inc()
	if idx.m.seconds != nil {
		start := time.Now()
		defer func() { idx.m.seconds.ObserveDuration(time.Since(start)) }()
	}
	sigs := querySignatures(q)

	// Pick the most selective subject variable (largest signature) and
	// resolve its candidates through the index; then delegate each
	// candidate binding to the reference executor on a rewritten query.
	bestVar := ""
	bestBits := -1
	for v, sig := range sigs {
		if b := sig.PopCount(); b > bestBits {
			bestVar, bestBits = v, b
		}
	}
	if bestVar == "" || bestBits <= 0 {
		// Nothing to filter on; fall back entirely.
		idx.m.fallbacks.Inc()
		return sparql.Execute(idx.store, q, maxSolutions)
	}

	var out []sparql.Binding
	var execErr error
	var seen map[string]bool
	if q.Distinct {
		seen = make(map[string]bool)
	}
	limit := q.Limit
	if maxSolutions > 0 && (limit == 0 || maxSolutions < limit) {
		limit = maxSolutions
	}
	projVars := q.Vars
	if len(projVars) == 1 && projVars[0] == "*" {
		projVars = q.Variables()
	}
	idx.candidates(sigs[bestVar], func(s string) bool {
		bound := bindVariable(q, bestVar, s)
		res, err := sparql.Execute(idx.store, bound, 0)
		if err != nil {
			execErr = err
			return false
		}
		for _, b := range res {
			// Re-project onto the original SELECT list.
			nb := make(sparql.Binding, len(projVars))
			for _, v := range projVars {
				if v == bestVar {
					nb[v] = s
				} else if val, ok := b[v]; ok {
					nb[v] = val
				}
			}
			if seen != nil {
				key := bindingKey(nb, q)
				if seen[key] {
					continue
				}
				seen[key] = true
			}
			out = append(out, nb)
			if limit > 0 && len(out) >= limit {
				return false
			}
		}
		return true
	})
	if execErr != nil {
		return nil, execErr
	}
	sortBindings(out, q)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// bindVariable substitutes a constant for a variable throughout the query.
// The sub-query projects everything; the caller re-projects onto the
// original SELECT list. DISTINCT and LIMIT are stripped — the caller
// applies them globally.
func bindVariable(q *sparql.Query, v, value string) *sparql.Query {
	nq := &sparql.Query{Vars: []string{"*"}}
	sub := func(t sparql.Term) sparql.Term {
		if t.IsVar() && t.Value == v {
			return sparql.Term{Kind: sparql.IRI, Value: value}
		}
		return t
	}
	for _, tp := range q.Patterns {
		nq.Patterns = append(nq.Patterns, sparql.TriplePattern{S: sub(tp.S), P: sub(tp.P), O: sub(tp.O)})
	}
	return nq
}

// bindingKey canonicalises a binding over the projection for DISTINCT.
func bindingKey(b sparql.Binding, q *sparql.Query) string {
	vars := q.Vars
	if len(vars) == 1 && vars[0] == "*" {
		vars = q.Variables()
	}
	var sb []byte
	for _, v := range vars {
		sb = append(sb, b[v]...)
		sb = append(sb, 0)
	}
	return string(sb)
}

func sortBindings(bs []sparql.Binding, q *sparql.Query) {
	vars := q.Vars
	if len(vars) == 1 && vars[0] == "*" {
		vars = q.Variables()
	}
	sort.Slice(bs, func(i, j int) bool {
		for _, v := range vars {
			if bs[i][v] != bs[j][v] {
				return bs[i][v] < bs[j][v]
			}
		}
		return false
	})
}
