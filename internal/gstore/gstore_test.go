package gstore

import (
	"fmt"
	"testing"

	"simjoin/internal/rdf"
	"simjoin/internal/sparql"
	"simjoin/internal/workload"
)

func demoStore() *rdf.Store {
	st := rdf.NewStore()
	st.MustAdd("Alice", "type", "Artist")
	st.MustAdd("Alice", "graduatedFrom", "Harvard")
	st.MustAdd("Carol", "type", "Artist")
	st.MustAdd("Carol", "graduatedFrom", "MIT")
	st.MustAdd("Bob", "type", "Politician")
	st.MustAdd("Bob", "graduatedFrom", "Harvard")
	st.MustAdd("Harvard", "type", "University")
	st.MustAdd("MIT", "type", "University")
	return st
}

func bindingsEqual(a, b []sparql.Binding) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for k, v := range a[i] {
			if b[i][k] != v {
				return false
			}
		}
	}
	return true
}

func TestExecuteMatchesReference(t *testing.T) {
	st := demoStore()
	idx := Build(st)
	queries := []string{
		`SELECT ?x WHERE { ?x type Artist . ?x graduatedFrom Harvard . }`,
		`SELECT ?x ?u WHERE { ?x graduatedFrom ?u . ?u type University . }`,
		`SELECT * WHERE { ?x type Artist . ?x graduatedFrom ?u . }`,
		`SELECT ?x WHERE { ?x type Spaceship . }`,
		`SELECT DISTINCT ?u WHERE { ?p graduatedFrom ?u . ?u type University . }`,
		`SELECT ?p WHERE { Alice ?p Harvard . }`,
		`SELECT ?x WHERE { ?x ?p ?o . }`,
	}
	for _, qs := range queries {
		q := sparql.MustParse(qs)
		want, err := sparql.Execute(st, q, 0)
		if err != nil {
			t.Fatalf("%s: reference: %v", qs, err)
		}
		got, err := idx.Execute(q, 0)
		if err != nil {
			t.Fatalf("%s: gstore: %v", qs, err)
		}
		if !bindingsEqual(got, want) {
			t.Errorf("%s:\n gstore   = %v\n reference = %v", qs, got, want)
		}
	}
}

func TestExecuteAgainstReferenceOnWorkloadKB(t *testing.T) {
	kb := workload.GenerateKB(workload.DefaultKBConfig())
	idx := Build(kb.Store)
	w, err := workload.GenerateQA(workload.QALD3Config())
	if err != nil {
		t.Fatal(err)
	}
	idx2 := Build(w.KB.Store)
	checked := 0
	for i, e := range w.Sparql {
		if i >= 80 {
			break
		}
		want, err := sparql.Execute(w.KB.Store, e.Query, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := idx2.Execute(e.Query, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bindingsEqual(got, want) {
			t.Fatalf("query %d (%s):\n gstore = %v\n ref    = %v", i, e.Query, got, want)
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("only %d queries checked", checked)
	}
	_ = idx
	_ = kb
}

func TestSignatureFilterActuallyFilters(t *testing.T) {
	st := rdf.NewStore()
	for i := 0; i < 200; i++ {
		st.MustAdd(fmt.Sprintf("p%d", i), "type", "Person")
		if i%20 == 0 {
			st.MustAdd(fmt.Sprintf("p%d", i), "worksFor", "Acme")
		}
	}
	idx := Build(st)
	q := sparql.MustParse(`SELECT ?x WHERE { ?x type Person . ?x worksFor Acme . }`)
	sigs := querySignatures(q)
	n := 0
	idx.candidates(sigs["?x"], func(string) bool { n++; return true })
	if n >= 200 {
		t.Fatalf("signature filter passed everything (%d)", n)
	}
	if n < 10 {
		t.Fatalf("signature filter too aggressive: %d of 10 expected candidates", n)
	}
	res, err := idx.Execute(q, 0)
	if err != nil || len(res) != 10 {
		t.Fatalf("res = %d, err %v", len(res), err)
	}
}

func TestExecuteLimit(t *testing.T) {
	st := demoStore()
	idx := Build(st)
	q := sparql.MustParse(`SELECT ?x WHERE { ?x graduatedFrom ?u . }`)
	res, err := idx.Execute(q, 2)
	if err != nil || len(res) != 2 {
		t.Fatalf("cap ignored: %d, %v", len(res), err)
	}
	ql := sparql.MustParse(`SELECT ?x WHERE { ?x graduatedFrom ?u . } LIMIT 1`)
	res, err = idx.Execute(ql, 0)
	if err != nil || len(res) != 1 {
		t.Fatalf("LIMIT ignored: %d, %v", len(res), err)
	}
}

func TestSignatureCovers(t *testing.T) {
	var a, b Signature
	a.set(3)
	a.set(77)
	b.set(3)
	if !a.covers(b) {
		t.Error("superset does not cover subset")
	}
	if b.covers(a) {
		t.Error("subset covers superset")
	}
	if a.PopCount() != 2 || b.PopCount() != 1 {
		t.Errorf("PopCount = %d/%d", a.PopCount(), b.PopCount())
	}
}

func TestEmptyQuery(t *testing.T) {
	idx := Build(demoStore())
	if _, err := idx.Execute(&sparql.Query{Vars: []string{"?x"}}, 0); err == nil {
		t.Error("empty pattern accepted")
	}
}
