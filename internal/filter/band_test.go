package filter

import (
	"testing"

	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

func labelSetOf(ids ...graph.LabelID) *graph.LabelSet {
	var s graph.LabelSet
	for _, id := range ids {
		s.Add(id)
	}
	return &s
}

func TestBandKeysDeterministicAndSetDependent(t *testing.T) {
	a := labelSetOf(3, 17, 200)
	b := labelSetOf(3, 17, 200)
	c := labelSetOf(3, 17, 201)

	ka := AppendBandKeys(nil, a, 6)
	kb := AppendBandKeys(nil, b, 6)
	kc := AppendBandKeys(nil, c, 6)
	if len(ka) != 6 {
		t.Fatalf("got %d keys, want 6", len(ka))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("band %d: identical sets hashed differently: %x vs %x", i, ka[i], kb[i])
		}
	}
	same := true
	for i := range ka {
		if ka[i] != kc[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("different sets produced identical key vectors %x", ka)
	}
	// Bands must use distinct hash functions: a multi-label set electing the
	// same minimum in every band would defeat banding.
	distinct := map[uint64]bool{}
	for _, k := range ka {
		distinct[k] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("all %d bands elected the same key %x", len(ka), ka[0])
	}
}

func TestBandKeysEmptySetSentinel(t *testing.T) {
	var empty graph.LabelSet
	keys := AppendBandKeys(nil, &empty, 4)
	for b, k := range keys {
		if k != EmptyBandKey {
			t.Fatalf("band %d of empty set = %x, want EmptyBandKey", b, k)
		}
	}
}

func TestBandKeysMinOverSubsets(t *testing.T) {
	// The key of a union is the min of the parts' keys — the MinHash property
	// the in-shard band tables rely on for collision probing.
	a := labelSetOf(1, 2, 3)
	b := labelSetOf(40, 41)
	u := labelSetOf(1, 2, 3, 40, 41)
	ka := AppendBandKeys(nil, a, 8)
	kb := AppendBandKeys(nil, b, 8)
	ku := AppendBandKeys(nil, u, 8)
	for i := range ku {
		want := ka[i]
		if kb[i] < want {
			want = kb[i]
		}
		if ku[i] != want {
			t.Fatalf("band %d: union key %x, want min(%x,%x)", i, ku[i], ka[i], kb[i])
		}
	}
}

func TestBandOwnerRangeAndDeterminism(t *testing.T) {
	for shards := 1; shards <= 9; shards++ {
		seen := map[int]bool{}
		for id := graph.LabelID(1); id < 200; id++ {
			keys := AppendBandKeys(nil, labelSetOf(id), 4)
			o := BandOwner(keys, shards)
			if o < 0 || o >= shards {
				t.Fatalf("owner %d out of range [0,%d)", o, shards)
			}
			if o != BandOwner(keys, shards) {
				t.Fatalf("owner not deterministic")
			}
			seen[o] = true
		}
		if shards > 1 && len(seen) < 2 {
			t.Fatalf("shards=%d: 199 distinct singleton sets all owned by one shard", shards)
		}
	}
}

func TestUnionConcreteLabelsMatchesManualScan(t *testing.T) {
	u := ugraph.New(3)
	u.AddVertex(ugraph.Label{Name: "a", P: 0.6}, ugraph.Label{Name: "b", P: 0.4})
	u.AddVertex(ugraph.Label{Name: "?x", P: 0.7}, ugraph.Label{Name: "c", P: 0.3})
	u.AddVertex(ugraph.Label{Name: "a", P: 1})
	var set graph.LabelSet
	wilds := UnionConcreteLabels(u, &set)
	if wilds != 1 {
		t.Fatalf("wilds = %d, want 1", wilds)
	}
	for _, name := range []string{"a", "b", "c"} {
		if !set.Has(graph.InternLabel(name)) {
			t.Fatalf("union set missing %q", name)
		}
	}
	if set.Len() != 3 {
		t.Fatalf("union set has %d labels, want 3", set.Len())
	}
}

func TestLabelOverlapScreenMatchesDefinition(t *testing.T) {
	// q has labels {a, a, b}; g's union set {a, c} with one wildcard vertex.
	q := graph.New(3)
	q.AddVertex("a")
	q.AddVertex("a")
	q.AddVertex("b")
	qs := NewQSig(q)
	gSet := labelSetOf(graph.InternLabel("a"), graph.InternLabel("c"))

	// overlap = 2 (both "a" vertices) + 1 wildcard g-vertex = 3 = maxV: the
	// pair survives any tau >= 0.
	if !LabelOverlapScreen(qs, gSet, 1, 3, 0) {
		t.Fatalf("pair with full generous overlap pruned at tau=0")
	}
	// Without the wildcard vertex, overlap = 2, maxV = 3: pruned at tau=0,
	// kept at tau=1.
	if LabelOverlapScreen(qs, gSet, 0, 3, 0) {
		t.Fatalf("deficit-1 pair survived tau=0")
	}
	if !LabelOverlapScreen(qs, gSet, 0, 3, 1) {
		t.Fatalf("deficit-1 pair pruned at tau=1")
	}
}

func TestGSigBandKeyMatchesLabelSetKey(t *testing.T) {
	// The memoized GSig.BandKey must equal band 0 of AppendBandKeys over the
	// graph's union concrete-label set, and stay stable across calls.
	u := ugraph.New(2)
	u.AddVertex(ugraph.Label{Name: "a", P: 0.6}, ugraph.Label{Name: "b", P: 0.4})
	u.AddVertex(ugraph.Label{Name: "c", P: 1})
	gs := NewGSig(u)

	var set graph.LabelSet
	UnionConcreteLabels(u, &set)
	want := AppendBandKeys(nil, &set, 1)[0]
	if got := gs.BandKey(); got != want {
		t.Fatalf("BandKey = %#x, want %#x", got, want)
	}
	if got := gs.BandKey(); got != want {
		t.Fatalf("second BandKey = %#x, want %#x (memoization broke)", got, want)
	}

	// An all-wildcard graph keys to EmptyBandKey.
	w := ugraph.New(1)
	w.AddVertex(ugraph.Label{Name: "?x", P: 1})
	if got := NewGSig(w).BandKey(); got != EmptyBandKey {
		t.Fatalf("all-wildcard BandKey = %#x, want EmptyBandKey", got)
	}
}
