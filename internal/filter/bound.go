package filter

// The pluggable filter chain.
//
// The paper's Algorithm 1/2 is a fixed bound order (CSS, then a probabilistic
// upper bound), but "one size does not fit all": signature-based pruning only
// pays off on some workloads, so the chain is data here, not code. Every
// pruning bound the repo implements — the uncertain-graph bounds of
// Theorems 3/4 and Algorithm 2, and the certain-graph baseline filters of
// baselines.go — is wrapped as a Bound, named in a registry, and composed
// into an ordered chain the join engine walks per pair.
//
// Certain-graph baselines are applied to an uncertain graph through its
// relaxation (GSig.Relaxed): a certain graph whose vertex labels survive only
// when unambiguous, every other vertex degrading to a wildcard. Wildcards
// only ever add label matches, so for each of these bounds
// lb(q, relaxed(g)) ≤ lb(q, w) ≤ ged(q, w) for every possible world w: a
// relaxation-based prune lb > τ proves SimPτ(q,g) = 0 and is sound for any
// α ∈ (0, 1].

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"simjoin/internal/graph"
	"simjoin/internal/matching"
	"simjoin/internal/ugraph"
)

// BoundKind classifies what a bound's prune decision proves, which is how the
// join engine attributes the prune to its aggregate Stats counters.
type BoundKind int

const (
	// Structural bounds lower-bound ged(q, w) for every possible world w and
	// prune when the bound exceeds τ (SimPτ = 0).
	Structural BoundKind = iota
	// Probabilistic bounds upper-bound SimPτ(q, g) and prune when the bound
	// falls below α.
	Probabilistic
)

// String implements fmt.Stringer.
func (k BoundKind) String() string {
	switch k {
	case Structural:
		return "structural"
	case Probabilistic:
		return "probabilistic"
	default:
		return fmt.Sprintf("BoundKind(%d)", int(k))
	}
}

// Scratch holds the reusable per-worker buffers a filter chain writes
// through: the bipartite matching backing the λV computations and the
// per-pair group cache of Algorithm 2's partition policy. The zero value is
// ready to use; a Scratch must not be shared between goroutines.
type Scratch struct {
	// BP backs the λV matchings of the CSS bound and the per-group bounds.
	BP matching.Bipartite

	groupCache map[*ugraph.Graph]*groupEval
}

// PairContext is the per-pair state a chain of bounds shares: the two
// precomputed signatures, the join thresholds, and the cross-bound carry
// slots (the CSS lower bound, reused by the group bound's cache seed).
type PairContext struct {
	QS *QSig
	GS *GSig

	// Tau and Alpha are the join thresholds τ and α of Def. 7; GroupCount is
	// the possible-world group budget GN of Algorithm 2.
	Tau        int
	Alpha      float64
	GroupCount int

	// Scratch must be non-nil; the engine provides one per worker.
	Scratch *Scratch

	// CSSLB carries the whole-pair CSS lower bound forward once a css stage
	// has computed it, so later stages (the group bound's cache seed) reuse
	// it instead of re-running the λV matching.
	CSSLB    int
	HasCSSLB bool
}

// cssLowerBound returns the pair's CSS lower bound, computing and caching it
// in the context on first use.
func (pc *PairContext) cssLowerBound() int {
	if !pc.HasCSSLB {
		pc.CSSLB = CSSLowerBoundUncertainSigScratch(&pc.Scratch.BP, pc.QS, pc.GS)
		pc.HasCSSLB = true
	}
	return pc.CSSLB
}

// Outcome is one bound's verdict on one pair.
type Outcome struct {
	// Pruned eliminates the pair: structurally (lb > τ) or probabilistically
	// (ub < α) depending on the bound's Kind.
	Pruned bool
	// Groups, when non-nil on a surviving pair, is the possible-world
	// partition the verification stage should enumerate instead of the whole
	// graph (the group bound's kept groups).
	Groups []ugraph.Group
	// GroupsBuilt and GroupsCSSPruned tally Algorithm 2's partition work:
	// groups constructed, and groups removed by their own CSS bound.
	GroupsBuilt     int64
	GroupsCSSPruned int64
}

// Bound is one stage of the pruning pipeline. Apply must be safe for
// concurrent use on distinct PairContexts (all per-pair state lives in the
// context and its Scratch).
type Bound interface {
	// Name is the registry key, stable across releases (it names CLI flags,
	// Stats.PrunedBy entries and metrics).
	Name() string
	Kind() BoundKind
	Apply(*PairContext) Outcome
}

// ── Registry ────────────────────────────────────────────────────────────────

var (
	regMu      sync.RWMutex
	boundReg   = make(map[string]Bound)
	boundNames []string
)

// Register adds a bound to the registry under its Name. It panics on a
// duplicate or empty name. Bounds registered after a join's Obs was created
// still count in Stats.PrunedBy but get no live per-bound counters.
func Register(b Bound) {
	name := b.Name()
	if name == "" {
		panic("filter: Register with empty bound name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := boundReg[name]; dup {
		panic(fmt.Sprintf("filter: bound %q registered twice", name))
	}
	boundReg[name] = b
	boundNames = append(boundNames, name)
	sort.Strings(boundNames)
}

// BoundByName looks a registered bound up.
func BoundByName(name string) (Bound, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := boundReg[name]
	return b, ok
}

// MustBound is BoundByName for names known to be registered; it panics
// otherwise.
func MustBound(name string) Bound {
	b, ok := BoundByName(name)
	if !ok {
		panic(fmt.Sprintf("filter: unknown bound %q", name))
	}
	return b
}

// BoundNames returns the registered bound names, sorted.
func BoundNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(boundNames))
	copy(out, boundNames)
	return out
}

// ParseChain resolves a comma-separated bound list ("count,css,prob") into an
// ordered chain.
func ParseChain(spec string) ([]Bound, error) {
	var chain []Bound
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		b, ok := BoundByName(name)
		if !ok {
			return nil, fmt.Errorf("filter: unknown bound %q (known: %s)",
				name, strings.Join(BoundNames(), ", "))
		}
		chain = append(chain, b)
	}
	if len(chain) == 0 {
		return nil, fmt.Errorf("filter: empty filter chain %q", spec)
	}
	return chain, nil
}

func init() {
	Register(cssBound{})
	Register(probBound{})
	Register(probBound{tight: true})
	Register(groupBound{})
	Register(baselineBound{name: "lm", lb: func(q, g *graph.Graph, _ int) int { return LMLowerBound(q, g) }})
	Register(baselineBound{name: "count", lb: func(q, g *graph.Graph, _ int) int { return CountLowerBound(q, g) }})
	Register(baselineBound{name: "cstar", lb: func(q, g *graph.Graph, _ int) int { return CStarLowerBound(q, g) }})
	Register(baselineBound{name: "path-gram", lb: func(q, g *graph.Graph, _ int) int { return PathGramLowerBound(q, g) }})
	Register(baselineBound{name: "pars", lb: func(q, g *graph.Graph, _ int) int { return ParsLowerBound(q, g) }})
	Register(baselineBound{name: "segos", lb: SegosLowerBound})
}

// ── Built-in bounds ─────────────────────────────────────────────────────────

// cssBound is the structural CSS lower bound of Theorem 3, evaluated on the
// uncertain graph directly (wildcard-aware λV matching). It records the
// computed bound in the context for later stages.
type cssBound struct{}

func (cssBound) Name() string    { return "css" }
func (cssBound) Kind() BoundKind { return Structural }

func (cssBound) Apply(pc *PairContext) Outcome {
	lb := CSSLowerBoundUncertainSigScratch(&pc.Scratch.BP, pc.QS, pc.GS)
	pc.CSSLB, pc.HasCSSLB = lb, true
	return Outcome{Pruned: lb > pc.Tau}
}

// probBound is the similarity-probability upper bound: Theorem 4's Markov
// bound, or its law-of-total-probability refinement when tight ("prob-tight",
// ablation A6).
type probBound struct{ tight bool }

func (b probBound) Name() string {
	if b.tight {
		return "prob-tight"
	}
	return "prob"
}
func (probBound) Kind() BoundKind { return Probabilistic }

func (b probBound) Apply(pc *PairContext) Outcome {
	var ub float64
	if b.tight {
		// Reuses the worker's matching scratch and the pair's cached CSS
		// lower bound; the conditioned sub-signatures are memoized on GS, so
		// steady-state evaluation allocates nothing.
		ub = totalProbabilityUB(&pc.Scratch.BP, pc.QS, pc.GS, pc.Tau, pc.cssLowerBound())
	} else {
		ub = SimilarityUpperBoundSig(pc.QS, pc.GS, pc.Tau)
	}
	return Outcome{Pruned: ub < pc.Alpha}
}

// groupBound is Algorithm 2's grouped probabilistic bound: partition the
// possible worlds into at most GroupCount groups by the §6.2 cost model,
// prune each group by its own CSS bound, and prune the pair when the summed
// per-group upper bounds fall below α. Kept groups flow to verification
// through Outcome.Groups.
type groupBound struct{}

func (groupBound) Name() string    { return "group" }
func (groupBound) Kind() BoundKind { return Probabilistic }

func (groupBound) Apply(pc *PairContext) Outcome {
	sc := pc.Scratch
	sc.resetGroupCache(pc)
	groups := partitionForQuery(pc)
	out := Outcome{GroupsBuilt: int64(len(groups))}
	ubSum := 0.0
	kept := groups[:0]
	for _, gr := range groups {
		ge := sc.evalGroup(pc.QS, gr.G, pc.Tau)
		if ge.cssLB > pc.Tau {
			out.GroupsCSSPruned++
			continue
		}
		ub := ge.simUB
		if ub > gr.Mass {
			ub = gr.Mass
		}
		ubSum += ub
		kept = append(kept, gr)
	}
	if ubSum < pc.Alpha {
		out.Pruned = true
		return out
	}
	out.Groups = kept
	return out
}

// baselineBound adapts one of the certain-graph baseline filters (LM, count,
// C-star, path-grams, Pars, SEGOS) to uncertain pairs via the relaxation
// argument in the package comment above: lb(q, relaxed(g)) lower-bounds
// ged(q, w) for every possible world w, so lb > τ proves SimPτ = 0.
type baselineBound struct {
	name string
	lb   func(q, g *graph.Graph, tau int) int
}

func (b baselineBound) Name() string  { return b.name }
func (baselineBound) Kind() BoundKind { return Structural }
func (b baselineBound) Apply(pc *PairContext) Outcome {
	return Outcome{Pruned: b.lb(pc.QS.G, pc.GS.Relaxed(), pc.Tau) > pc.Tau}
}

// ── Possible-world grouping (Algorithm 2 machinery) ─────────────────────────

// groupEval caches one possible-world group's signature and bounds during a
// single pair's grouped pruning: the partition policy of §6.2 re-examines
// every group each split round, which without the cache re-ran the O(V³)
// λV matching and multiset scans O(k²) times per pair.
type groupEval struct {
	gs    *GSig
	cssLB int
	simUB float64 // Theorem 4 bound; valid only when cssLB <= tau
}

// resetGroupCache clears the per-pair group cache and seeds it with the whole
// graph's already-computed signature and CSS bound.
func (sc *Scratch) resetGroupCache(pc *PairContext) {
	if sc.groupCache == nil {
		sc.groupCache = make(map[*ugraph.Graph]*groupEval)
	}
	clear(sc.groupCache)
	ge := &groupEval{gs: pc.GS, cssLB: pc.cssLowerBound()}
	if ge.cssLB <= pc.Tau {
		ge.simUB = SimilarityUpperBoundSig(pc.QS, pc.GS, pc.Tau)
	}
	sc.groupCache[pc.GS.G] = ge
}

// evalGroup returns the cached evaluation of a group's graph, computing it on
// first sight. Group graphs are immutable once created by Condition, so
// caching by pointer identity is sound; the values are exactly what direct
// recomputation would yield.
func (sc *Scratch) evalGroup(qs *QSig, g *ugraph.Graph, tau int) *groupEval {
	ge, ok := sc.groupCache[g]
	if !ok {
		gs := NewGSig(g)
		ge = &groupEval{gs: gs, cssLB: CSSLowerBoundUncertainSigScratch(&sc.BP, qs, gs)}
		if ge.cssLB <= tau {
			ge.simUB = SimilarityUpperBoundSig(qs, gs, tau)
		}
		sc.groupCache[g] = ge
	}
	return ge
}

// partitionForQuery divides g's possible worlds into at most GroupCount
// groups using the cost model of §6.2: at every round, split the group with
// the largest probabilistic upper bound (the loosest contributor), i.e.
// minimise Σ ub_SimP over non-pruned groups. Per-group bounds come from the
// scratch's group cache, so each group is evaluated once regardless of round
// count.
func partitionForQuery(pc *PairContext) []ugraph.Group {
	sc := pc.Scratch
	policy := func(groups []ugraph.Group) int {
		best, bestUB := -1, -1.0
		for i, gr := range groups {
			if gr.G.SplitVertex() < 0 {
				continue
			}
			ge := sc.evalGroup(pc.QS, gr.G, pc.Tau)
			ub := 0.0
			if ge.cssLB <= pc.Tau {
				ub = ge.simUB
				if ub > gr.Mass {
					ub = gr.Mass
				}
			}
			if ub > bestUB {
				best, bestUB = i, ub
			}
		}
		return best
	}
	return pc.GS.G.PartitionWorlds(pc.GroupCount, policy)
}
