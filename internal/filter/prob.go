package filter

import (
	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

// SimilarityUpperBound computes the probabilistic upper bound of Theorem 4 on
// the similarity probability SimPτ(q, g).
//
// The paper derives SimPτ(q,g) ≤ Pr{λV(q, pw(g)) ≥ C(q,g) − τ} and relaxes
// λV to a sum of independent indicators Y = Σ yi, giving E(Y)/(C−τ) by
// Markov's inequality. Because our edit model lets wildcard ('?') labels
// match anything (§2.1), a direct translation of yi would saturate as soon
// as q contains a single variable. We therefore use the sound refinement
//
//	λV(q, pw) ≤ Wq + Z,   Z = Σ_i zi,
//
// where Wq is the number of wildcard vertices of q (each wildcard q-vertex
// absorbs at most one matched pair) and zi indicates that vertex i of g
// carries a label that is itself a wildcard or occurs among q's concrete
// labels. Markov then yields
//
//	SimPτ(q, g) ≤ E(Z) / (C(q,g) − τ − Wq).
//
// The bound is capped at the total probability mass of g (≤ 1); when the
// denominator is non-positive the inequality is vacuous and the cap is
// returned.
func SimilarityUpperBound(q *graph.Graph, g *ugraph.Graph, tau int) float64 {
	return SimilarityUpperBoundSig(NewQSig(q), NewGSig(g), tau)
}

// ExpectedCommonLabels returns E(Z) = Σ_i E(zi): for every vertex of g, the
// total probability of its candidate labels that are wildcards or occur
// among q's concrete vertex labels. Probabilities are used unnormalised, so
// the value is correct for conditioned possible-world groups too.
func ExpectedCommonLabels(q *graph.Graph, g *ugraph.Graph) float64 {
	return ExpectedCommonLabelsSig(NewQSig(q), NewGSig(g))
}

// TotalProbabilityUpperBound tightens Theorem 4 with the law of total
// probability (flagged as future work in §5): it conditions on each
// candidate label of the most uncertain vertex and sums the per-condition
// bounds, pruning conditions whose CSS bound already exceeds τ. The result
// is always a valid upper bound on SimPτ(q, g) and never looser than
// evaluating each branch's cap.
func TotalProbabilityUpperBound(q *graph.Graph, g *ugraph.Graph, tau int) float64 {
	return TotalProbabilityUpperBoundSig(NewQSig(q), NewGSig(g), tau)
}

// GroupUpperBound computes the probabilistic upper bound restricted to one
// possible-world group: Theorem 4 evaluated on the conditioned graph, whose
// unnormalised probabilities make the result an upper bound on the group's
// contribution to SimPτ(q, g). Groups whose CSS bound already exceeds τ
// contribute 0 (Algorithm 2, line 5).
func GroupUpperBound(q *graph.Graph, gr ugraph.Group, tau int) float64 {
	return GroupUpperBoundSig(NewQSig(q), NewGSig(gr.G), gr.Mass, tau)
}
