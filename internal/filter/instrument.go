package filter

import (
	"simjoin/internal/obs"
)

// Obs bundles per-bound observability counters so each lower/upper bound's
// selectivity is visible individually instead of being lumped into the join
// pipeline's aggregate CSSPruned/ProbPruned tallies. A nil *Obs discards all
// records, so callers instrument unconditionally.
//
// Evaluated counts pairs a bound was computed for; Pruned counts the subset
// it eliminated. Pruned/Evaluated is the bound's measured selectivity — the
// quantity §6.2's cost model (and the filter comparisons of Fig. 15) reason
// about.
type Obs struct {
	// CSS is the structural lower bound of Theorem 3 applied to whole pairs.
	CSSEvaluated, CSSPruned *obs.Counter
	// Prob is the Markov-inequality upper bound of Theorem 4.
	ProbEvaluated, ProbPruned *obs.Counter
	// Tight is the law-of-total-probability refinement (ablation A6).
	TightEvaluated, TightPruned *obs.Counter
	// Group is the summed per-group bound of Algorithm 2 (SimJ+opt).
	GroupEvaluated, GroupPruned *obs.Counter
	// GroupCSSPruned counts individual possible-world groups removed by
	// their own CSS bound inside Algorithm 2.
	GroupCSSPruned *obs.Counter
}

// NewObs registers the per-filter counters on reg; nil reg yields nil (all
// records discarded).
func NewObs(reg *obs.Registry) *Obs {
	if reg == nil {
		return nil
	}
	return &Obs{
		CSSEvaluated:   reg.Counter("filter_css_evaluated_total"),
		CSSPruned:      reg.Counter("filter_css_pruned_total"),
		ProbEvaluated:  reg.Counter("filter_prob_evaluated_total"),
		ProbPruned:     reg.Counter("filter_prob_pruned_total"),
		TightEvaluated: reg.Counter("filter_prob_tight_evaluated_total"),
		TightPruned:    reg.Counter("filter_prob_tight_pruned_total"),
		GroupEvaluated: reg.Counter("filter_group_bound_evaluated_total"),
		GroupPruned:    reg.Counter("filter_group_bound_pruned_total"),
		GroupCSSPruned: reg.Counter("filter_group_css_pruned_total"),
	}
}

// RecordCSS tallies one whole-pair CSS bound evaluation.
func (f *Obs) RecordCSS(pruned bool) {
	if f == nil {
		return
	}
	f.CSSEvaluated.Inc()
	if pruned {
		f.CSSPruned.Inc()
	}
}

// RecordProb tallies one probabilistic upper bound evaluation; tight selects
// the total-probability refinement's counters.
func (f *Obs) RecordProb(tight, pruned bool) {
	if f == nil {
		return
	}
	if tight {
		f.TightEvaluated.Inc()
		if pruned {
			f.TightPruned.Inc()
		}
		return
	}
	f.ProbEvaluated.Inc()
	if pruned {
		f.ProbPruned.Inc()
	}
}

// RecordGroupBound tallies one grouped upper bound evaluation (the ubSum
// test of Algorithm 2) and how many individual groups the per-group CSS
// bound removed along the way.
func (f *Obs) RecordGroupBound(pruned bool, groupsCSSPruned int64) {
	if f == nil {
		return
	}
	f.GroupEvaluated.Inc()
	if pruned {
		f.GroupPruned.Inc()
	}
	f.GroupCSSPruned.Add(groupsCSSPruned)
}
