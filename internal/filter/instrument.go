package filter

import (
	"strings"
	"time"

	"simjoin/internal/obs"
)

// Obs bundles per-bound observability counters so each filter-chain stage's
// selectivity is visible individually instead of being lumped into the join
// pipeline's aggregate CSSPruned/ProbPruned tallies. A nil *Obs discards all
// records, so callers instrument unconditionally.
//
// Each registered bound gets an evaluated counter (pairs the bound was
// computed for) and a pruned counter (the subset it eliminated);
// pruned/evaluated is the bound's measured selectivity — the quantity §6.2's
// cost model (and the filter comparisons of Fig. 15) reason about. The
// counter names of the paper's own stages predate the registry and are kept
// stable: filter_css_*, filter_prob_*, filter_prob_tight_* and
// filter_group_bound_*; every other bound publishes as
// filter_bound_<name>_*. filter_group_css_pruned_total counts individual
// possible-world groups removed by their own CSS bound inside Algorithm 2.
type Obs struct {
	byBound map[string]boundCounters

	groupCSSPruned *obs.Counter
}

type boundCounters struct {
	evaluated, pruned *obs.Counter
	// nanos accumulates the bound's evaluation wall time (RecordBoundTimed);
	// nanos/evaluated is the bound's measured cost-per-eval, the other half
	// of the effective-cost ordering the cost model consumes.
	nanos *obs.Counter
}

// NewObs registers the per-bound counters on reg for every bound in the
// registry at call time; nil reg yields nil (all records discarded). Bounds
// registered later are not counted.
func NewObs(reg *obs.Registry) *Obs {
	if reg == nil {
		return nil
	}
	o := &Obs{
		byBound:        make(map[string]boundCounters),
		groupCSSPruned: reg.Counter("filter_group_css_pruned_total"),
	}
	for _, name := range BoundNames() {
		o.byBound[name] = boundCounters{
			evaluated: reg.Counter(boundCounterName(name, "evaluated")),
			pruned:    reg.Counter(boundCounterName(name, "pruned")),
			nanos:     reg.Counter(boundCounterName(name, "eval_nanoseconds")),
		}
	}
	return o
}

// boundCounterName maps a bound name to its evaluated/pruned counter names,
// preserving the pre-registry names of the paper's own stages.
func boundCounterName(bound, what string) string {
	switch bound {
	case "css":
		return "filter_css_" + what + "_total"
	case "prob":
		return "filter_prob_" + what + "_total"
	case "prob-tight":
		return "filter_prob_tight_" + what + "_total"
	case "group":
		return "filter_group_bound_" + what + "_total"
	}
	return "filter_bound_" + MetricName(bound) + "_" + what + "_total"
}

// MetricName sanitises a bound name for use inside a metric identifier
// ("path-gram" → "path_gram").
func MetricName(bound string) string {
	return strings.ReplaceAll(bound, "-", "_")
}

// RecordBound tallies one bound evaluation and its outcome. Unregistered
// bound names record only the group tallies.
func (f *Obs) RecordBound(name string, out Outcome) {
	if f == nil {
		return
	}
	if c, ok := f.byBound[name]; ok {
		c.evaluated.Inc()
		if out.Pruned {
			c.pruned.Inc()
		}
	}
	if out.GroupsCSSPruned > 0 {
		f.groupCSSPruned.Add(out.GroupsCSSPruned)
	}
}

// RecordBoundTimed is RecordBound plus cost accounting: d, the bound's
// evaluation wall time, is accumulated into its *_eval_nanoseconds_total
// counter. The join engine uses this variant whenever profiling is on, so
// live scrapes see per-bound cost next to per-bound selectivity mid-run.
// Allocation-free; nil-safe.
func (f *Obs) RecordBoundTimed(name string, out Outcome, d time.Duration) {
	if f == nil {
		return
	}
	if c, ok := f.byBound[name]; ok {
		c.evaluated.Inc()
		c.nanos.Add(int64(d))
		if out.Pruned {
			c.pruned.Inc()
		}
	}
	if out.GroupsCSSPruned > 0 {
		f.groupCSSPruned.Add(out.GroupsCSSPruned)
	}
}
