package filter

import (
	"math/rand"
	"reflect"
	"testing"

	"simjoin/internal/ged"
	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

// allBoundNames is the full registry this PR ships; registry tests pin it so
// a rename or accidental deregistration fails loudly.
var allBoundNames = []string{
	"count", "css", "cstar", "group", "lm",
	"pars", "path-gram", "prob", "prob-tight", "segos",
}

func TestBoundRegistryComplete(t *testing.T) {
	got := BoundNames()
	want := append([]string(nil), allBoundNames...)
	// BoundNames is sorted; keep the expectation sorted too.
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BoundNames() = %v, want %v", got, want)
	}
	for _, name := range want {
		b, ok := BoundByName(name)
		if !ok {
			t.Fatalf("BoundByName(%q) missing", name)
		}
		if b.Name() != name {
			t.Errorf("bound registered as %q reports Name() = %q", name, b.Name())
		}
	}
	if _, ok := BoundByName("nope"); ok {
		t.Error("BoundByName accepted an unknown name")
	}
}

func TestParseChain(t *testing.T) {
	chain, err := ParseChain(" count, css ,prob ")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, b := range chain {
		names = append(names, b.Name())
	}
	if !reflect.DeepEqual(names, []string{"count", "css", "prob"}) {
		t.Fatalf("ParseChain order = %v", names)
	}
	if _, err := ParseChain("css,bogus"); err == nil {
		t.Error("unknown bound accepted")
	}
	if _, err := ParseChain(" , ,"); err == nil {
		t.Error("empty chain accepted")
	}
}

// TestStructuralBoundsSound checks the core soundness contract on random
// uncertain pairs: whenever a structural bound prunes at τ, no possible world
// of g may be within edit distance τ of q (SimPτ must be exactly 0).
func TestStructuralBoundsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	var structural []Bound
	for _, name := range BoundNames() {
		b, _ := BoundByName(name)
		if b.Kind() == Structural {
			structural = append(structural, b)
		}
	}
	if len(structural) < 7 {
		t.Fatalf("expected at least 7 structural bounds, have %d", len(structural))
	}
	pruned := make(map[string]int)
	for trial := 0; trial < 120; trial++ {
		q := randomCertain(rng, 2+rng.Intn(4), rng.Intn(5))
		g := randomUncertain(rng, 2+rng.Intn(3), rng.Intn(4), 2)
		qs, gs := NewQSig(q), NewGSig(g)
		for _, tau := range []int{0, 1, 2} {
			var sc Scratch
			pc := PairContext{QS: qs, GS: gs, Tau: tau, Alpha: 0.5, GroupCount: 4, Scratch: &sc}
			for _, b := range structural {
				if !b.Apply(&pc).Pruned {
					continue
				}
				pruned[b.Name()]++
				g.Worlds(func(w *graph.Graph, p float64) bool {
					if d, ok := ged.WithinThreshold(q, w, tau); ok {
						t.Fatalf("bound %s pruned at tau=%d but world at distance %d exists (trial %d)",
							b.Name(), tau, d, trial)
					}
					return true
				})
			}
		}
	}
	// The workhorse bounds must actually fire on this workload, or the test
	// proves nothing.
	for _, name := range []string{"css", "count", "lm"} {
		if pruned[name] == 0 {
			t.Errorf("bound %s never pruned across all trials", name)
		}
	}
}

// TestProbabilisticBoundsSound checks that a probabilistic prune at α implies
// the exact similarity probability is below α.
func TestProbabilisticBoundsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	probs := []Bound{MustBound("prob"), MustBound("prob-tight"), MustBound("group")}
	fired := make(map[string]int)
	for trial := 0; trial < 80; trial++ {
		q := randomCertain(rng, 2+rng.Intn(4), rng.Intn(5))
		g := randomUncertain(rng, 2+rng.Intn(3), rng.Intn(4), 2)
		qs, gs := NewQSig(q), NewGSig(g)
		for _, tau := range []int{0, 1} {
			for _, alpha := range []float64{0.4, 0.8} {
				for _, b := range probs {
					var sc Scratch
					pc := PairContext{QS: qs, GS: gs, Tau: tau, Alpha: alpha, GroupCount: 4, Scratch: &sc}
					if !b.Apply(&pc).Pruned {
						continue
					}
					fired[b.Name()]++
					if simP := exactSimP(q, g, tau); simP >= alpha {
						t.Fatalf("bound %s pruned at tau=%d alpha=%v but SimP=%v (trial %d)",
							b.Name(), tau, alpha, simP, trial)
					}
				}
			}
		}
	}
	for _, b := range probs {
		if fired[b.Name()] == 0 {
			t.Errorf("bound %s never pruned across all trials", b.Name())
		}
	}
}

// TestGSigRelaxed pins the relaxation: unambiguous vertices keep their label,
// multi-candidate and wildcard vertices degrade to "?", edges carry over, and
// the result is memoised.
func TestGSigRelaxed(t *testing.T) {
	g := ugraph.New(4)
	g.AddVertex(ugraph.Label{Name: "A", P: 1})
	g.AddVertex(ugraph.Label{Name: "B", P: 0.6}, ugraph.Label{Name: "C", P: 0.4})
	g.AddVertex(ugraph.Label{Name: "?x", P: 1})
	g.AddVertex(ugraph.Label{Name: "D", P: 1})
	g.MustAddEdge(0, 1, "p")
	g.MustAddEdge(2, 3, "q")

	gs := NewGSig(g)
	r := gs.Relaxed()
	wantLabels := []string{"A", "?", "?", "D"}
	for v, want := range wantLabels {
		if got := r.VertexLabel(v); got != want {
			t.Errorf("relaxed label(%d) = %q, want %q", v, got, want)
		}
	}
	if r.NumVertices() != 4 || r.NumEdges() != 2 {
		t.Errorf("relaxed shape = %d vertices / %d edges, want 4/2", r.NumVertices(), r.NumEdges())
	}
	if !r.HasEdge(0, 1) || !r.HasEdge(2, 3) {
		t.Error("relaxed graph lost an edge")
	}
	if gs.Relaxed() != r {
		t.Error("Relaxed() not memoised")
	}
}

// TestRelaxedLowerBoundsWorlds is the relaxation argument itself: for every
// possible world w, each baseline bound on (q, relaxed(g)) must not exceed its
// value on (q, w) — wildcards only ever add matches.
func TestRelaxedLowerBoundsWorlds(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	type lbFunc struct {
		name string
		lb   func(q, g *graph.Graph, tau int) int
	}
	lbs := []lbFunc{
		{"lm", func(q, g *graph.Graph, _ int) int { return LMLowerBound(q, g) }},
		{"count", func(q, g *graph.Graph, _ int) int { return CountLowerBound(q, g) }},
		{"cstar", func(q, g *graph.Graph, _ int) int { return CStarLowerBound(q, g) }},
		{"path-gram", func(q, g *graph.Graph, _ int) int { return PathGramLowerBound(q, g) }},
		{"pars", func(q, g *graph.Graph, _ int) int { return ParsLowerBound(q, g) }},
		{"segos", SegosLowerBound},
	}
	for trial := 0; trial < 40; trial++ {
		q := randomCertain(rng, 2+rng.Intn(3), rng.Intn(4))
		g := randomUncertain(rng, 2+rng.Intn(3), rng.Intn(3), 2)
		r := NewGSig(g).Relaxed()
		tau := rng.Intn(3)
		for _, f := range lbs {
			relaxed := f.lb(q, r, tau)
			g.Worlds(func(w *graph.Graph, p float64) bool {
				if d, ok := ged.WithinThreshold(q, w, relaxed+2); ok && d < relaxed {
					t.Fatalf("%s: relaxed bound %d exceeds ged(q,w)=%d (trial %d)",
						f.name, relaxed, d, trial)
				}
				return true
			})
		}
	}
}
