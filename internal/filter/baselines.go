package filter

import (
	"sort"

	"simjoin/internal/graph"
	"simjoin/internal/matching"
)

// LMLowerBound is the label-multiset global filter of Zhao et al. [31]:
//
//	lb = max(|V(q)|,|V(g)|) − λV + max(|E(q)|,|E(g)|) − λE
//
// Theorem 2 proves the CSS bound dominates it; both are exposed so the
// dominance can be measured (Fig. 15, ablation A1).
func LMLowerBound(q, g *graph.Graph) int {
	lb := max(q.NumVertices(), g.NumVertices()) - LambdaV(q, g) +
		max(q.NumEdges(), g.NumEdges()) - LambdaE(q, g)
	if lb < 0 {
		lb = 0
	}
	return lb
}

// CountLowerBound is the size-difference global filter of Zeng et al. [29]:
//
//	lb = ||V(q)|−|V(g)|| + ||E(q)|−|E(g)||
func CountLowerBound(q, g *graph.Graph) int {
	dv := q.NumVertices() - g.NumVertices()
	if dv < 0 {
		dv = -dv
	}
	de := q.NumEdges() - g.NumEdges()
	if de < 0 {
		de = -de
	}
	return dv + de
}

// star is the c-star decomposition unit: a root label plus the sorted label
// ids of its neighbour vertices (direction and edge labels ignored, as in
// [29]).
type star struct {
	root   graph.LabelID
	leaves []graph.LabelID // neighbour vertex label ids, sorted
}

func stars(g *graph.Graph) []star {
	out := make([]star, g.NumVertices())
	for v := range out {
		out[v].root = g.VertexLabelID(v)
	}
	for _, e := range g.Edges() {
		out[e.From].leaves = append(out[e.From].leaves, g.VertexLabelID(e.To))
		out[e.To].leaves = append(out[e.To].leaves, g.VertexLabelID(e.From))
	}
	for v := range out {
		ls := out[v].leaves
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	}
	return out
}

// starDistance is the star edit distance λ(s1,s2) of [29]: root mismatch plus
// leaf-count and leaf-label differences.
func starDistance(a, b star) int {
	d := 0
	if !graph.IDsMatch(a.root, b.root) {
		d++
	}
	d += abs(len(a.leaves) - len(b.leaves))
	d += max(len(a.leaves), len(b.leaves)) - sortedCommon(a.leaves, b.leaves)
	return d
}

// sortedCommon counts the maximum number of matchable label pairs between
// two label-id slices with wildcard labels matching anything — an exact
// (and therefore symmetric) bipartite matching on the tiny leaf lists.
func sortedCommon(a, b []graph.LabelID) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	bp := matching.NewBipartite(len(a), len(b))
	for i, la := range a {
		for j, lb := range b {
			if graph.IDsMatch(la, lb) {
				bp.AddEdge(i, j)
			}
		}
	}
	return bp.MaxMatchingSize()
}

// CStarLowerBound is the c-star filter of Zeng et al. [29]: the minimum-cost
// assignment between the two graphs' star multisets (padded with empty
// stars), divided by the largest number of stars one edit operation can
// affect, max{4, maxDegree+1}.
func CStarLowerBound(q, g *graph.Graph) int {
	sq, sg := stars(q), stars(g)
	n := max(len(sq), len(sg))
	if n == 0 {
		return 0
	}
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			var a, b star
			if i < len(sq) {
				a = sq[i]
			}
			if j < len(sg) {
				b = sg[j]
			}
			cost[i][j] = float64(starDistanceOrEmpty(a, b, i < len(sq), j < len(sg)))
		}
	}
	total := matching.AssignmentLowerBound(cost)
	maxDeg := 1
	for _, d := range append(q.Degrees(), g.Degrees()...) {
		if d > maxDeg {
			maxDeg = d
		}
	}
	div := max(4, maxDeg+1)
	return int(total) / div
}

func starDistanceOrEmpty(a, b star, aReal, bReal bool) int {
	switch {
	case aReal && bReal:
		return starDistance(a, b)
	case aReal:
		return 1 + 2*len(a.leaves) // delete root + its leaves' edge slots
	case bReal:
		return 1 + 2*len(b.leaves)
	default:
		return 0
	}
}

// PathGramLowerBound is a path-gram filter in the spirit of Zhao et al. [31]:
// graphs are decomposed into length-1 label paths (from-label, edge-label,
// to-label); the multiset difference of grams, divided by the maximum number
// of grams one edit operation can touch (the maximum degree), lower-bounds
// the distance.
func PathGramLowerBound(q, g *graph.Graph) int {
	// Maximum matching between the two gram multisets under wildcard-aware
	// componentwise compatibility, decided on dictionary ids.
	bp := matching.NewBipartite(q.NumEdges(), g.NumEdges())
	for i, qe := range q.Edges() {
		for j, ge := range g.Edges() {
			if graph.IDsMatch(q.EdgeLabelID(i), g.EdgeLabelID(j)) &&
				graph.IDsMatch(q.VertexLabelID(qe.From), g.VertexLabelID(ge.From)) &&
				graph.IDsMatch(q.VertexLabelID(qe.To), g.VertexLabelID(ge.To)) {
				bp.AddEdge(i, j)
			}
		}
	}
	common := bp.MaxMatchingSize()
	diff := max(q.NumEdges(), g.NumEdges()) - common
	if diff <= 0 {
		return 0
	}
	maxDeg := 1
	for _, d := range append(q.Degrees(), g.Degrees()...) {
		if d > maxDeg {
			maxDeg = d
		}
	}
	return (diff + maxDeg - 1) / maxDeg
}

// ParsLowerBound is a partition-based filter in the spirit of Pars [30]: the
// query graph is decomposed into disjoint connected fragments; every fragment
// with no structure- and label-compatible embedding in g requires at least
// one edit, and fragments are disjoint, so the number of unmatched fragments
// lower-bounds the distance.
func ParsLowerBound(q, g *graph.Graph) int {
	fragments := partitionEdges(q)
	missing := 0
	for _, f := range fragments {
		if !fragmentEmbeds(q, f, g) {
			missing++
		}
	}
	return missing
}

// partitionEdges splits the edge set of q into disjoint fragments of at most
// two edges sharing a vertex (paths/cherries), greedily.
func partitionEdges(q *graph.Graph) [][]graph.Edge {
	used := make([]bool, q.NumEdges())
	var frags [][]graph.Edge
	edges := q.Edges()
	for i, e := range edges {
		if used[i] {
			continue
		}
		used[i] = true
		frag := []graph.Edge{e}
		for j := i + 1; j < len(edges); j++ {
			if used[j] {
				continue
			}
			f := edges[j]
			if f.From == e.From || f.From == e.To || f.To == e.From || f.To == e.To {
				used[j] = true
				frag = append(frag, f)
				break
			}
		}
		frags = append(frags, frag)
	}
	return frags
}

// fragmentEmbeds tests whether the (1- or 2-edge) fragment of q embeds in g
// with compatible vertex and edge labels. The vertex identification pattern
// of the fragment must be preserved exactly: equal fragment vertices map to
// equal g vertices and distinct ones to distinct g vertices.
func fragmentEmbeds(q *graph.Graph, frag []graph.Edge, g *graph.Graph) bool {
	e := frag[0]
	for _, ge := range g.Edges() {
		if !edgeCompatible(q, e, g, ge) {
			continue
		}
		if len(frag) == 1 {
			return true
		}
		f := frag[1]
		for _, gf := range g.Edges() {
			if !edgeCompatible(q, f, g, gf) {
				continue
			}
			if identificationPreserved(
				[4]int{e.From, e.To, f.From, f.To},
				[4]int{ge.From, ge.To, gf.From, gf.To}) {
				return true
			}
		}
	}
	return false
}

func edgeCompatible(q *graph.Graph, qe graph.Edge, g *graph.Graph, ge graph.Edge) bool {
	return graph.LabelsMatch(qe.Label, ge.Label) &&
		graph.LabelsMatch(q.VertexLabel(qe.From), g.VertexLabel(ge.From)) &&
		graph.LabelsMatch(q.VertexLabel(qe.To), g.VertexLabel(ge.To))
}

// identificationPreserved reports whether qv[i] == qv[j] ⟺ gv[i] == gv[j]
// for all index pairs, i.e. the implied vertex mapping is well defined and
// injective on the fragment.
func identificationPreserved(qv, gv [4]int) bool {
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if (qv[i] == qv[j]) != (gv[i] == gv[j]) {
				return false
			}
		}
	}
	return true
}

// SegosLowerBound is a two-level cascade in the spirit of SEGOS [22]: a cheap
// first-level label-count screen, escalating to the star-based bound only
// when the screen is inconclusive. It returns a valid lower bound — the
// maximum of the two levels actually evaluated.
func SegosLowerBound(q, g *graph.Graph, tau int) int {
	lb := CountLowerBound(q, g)
	if lb > tau {
		return lb
	}
	if s := CStarLowerBound(q, g); s > lb {
		lb = s
	}
	return lb
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
