package filter

import (
	"math"
	"math/rand"
	"testing"

	"simjoin/internal/ged"
	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

// randomCertain makes a small random directed graph.
func randomCertain(rng *rand.Rand, n, e int) *graph.Graph {
	labels := []string{"A", "B", "C", "D", "?x"}
	elabels := []string{"p", "q", "r"}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(labels[rng.Intn(len(labels))])
	}
	for t := 0; t < e*3 && g.NumEdges() < e; t++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, elabels[rng.Intn(len(elabels))])
	}
	return g
}

// randomUncertain makes a small random uncertain graph with a bounded number
// of possible worlds.
func randomUncertain(rng *rand.Rand, n, e, maxLabels int) *ugraph.Graph {
	names := []string{"A", "B", "C", "D", "E"}
	g := ugraph.New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.3 {
			g.AddVertex(ugraph.Label{Name: "?x", P: 1})
			continue
		}
		k := 1 + rng.Intn(maxLabels)
		perm := rng.Perm(len(names))[:k]
		var ls []ugraph.Label
		rest := 1.0
		for j, pi := range perm {
			p := rest
			if j < k-1 {
				p = rest * (0.3 + 0.4*rng.Float64())
			}
			ls = append(ls, ugraph.Label{Name: names[pi], P: p})
			rest -= p
		}
		g.AddVertex(ls...)
	}
	elabels := []string{"p", "q"}
	for t := 0; t < e*3 && g.NumEdges() < e; t++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		_ = g.AddEdge(u, v, elabels[rng.Intn(len(elabels))])
	}
	return g
}

// exactSimP enumerates all possible worlds and sums the probabilities of
// those within edit distance tau of q — the ground truth of Def. 6.
func exactSimP(q *graph.Graph, g *ugraph.Graph, tau int) float64 {
	sum := 0.0
	g.Worlds(func(w *graph.Graph, p float64) bool {
		if _, ok := ged.WithinThreshold(q, w, tau); ok {
			sum += p
		}
		return true
	})
	return sum
}

func TestDegreeDistance(t *testing.T) {
	// q: path of 3 (degrees 2,1,1); g: star of 4 (3,1,1,1).
	q := graph.New(3)
	for i := 0; i < 3; i++ {
		q.AddVertex("A")
	}
	q.MustAddEdge(0, 1, "p")
	q.MustAddEdge(1, 2, "p")
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		g.AddVertex("A")
	}
	g.MustAddEdge(0, 1, "p")
	g.MustAddEdge(0, 2, "p")
	g.MustAddEdge(0, 3, "p")
	// sorted q: [2,1,1], sorted g: [3,1,1,1]; dif = (2⊖3)+(1⊖1)+(1⊖1) = 0.
	if d := DegreeDistance(q, g); d != 0 {
		t.Errorf("DegreeDistance = %d, want 0", d)
	}
	// Reverse direction picks the smaller graph automatically.
	if d := DegreeDistance(g, q); d != 0 {
		t.Errorf("DegreeDistance swapped = %d, want 0", d)
	}
	// Higher degrees on the small side do count.
	h := graph.New(3)
	for i := 0; i < 3; i++ {
		h.AddVertex("A")
	}
	h.MustAddEdge(0, 1, "p")
	h.MustAddEdge(0, 2, "p")
	h.MustAddEdge(1, 2, "p")
	// h degrees [2,2,2] vs g [3,1,1,1]: dif = 0+1+1 = 2.
	if d := DegreeDistance(h, g); d != 2 {
		t.Errorf("DegreeDistance(h,g) = %d, want 2", d)
	}
}

func TestLambdaV(t *testing.T) {
	q := graph.New(3)
	q.AddVertex("A")
	q.AddVertex("B")
	q.AddVertex("?x")
	g := graph.New(3)
	g.AddVertex("A")
	g.AddVertex("C")
	g.AddVertex("D")
	// A-A, ?x absorbs one of C/D => 2.
	if l := LambdaV(q, g); l != 2 {
		t.Errorf("LambdaV = %d, want 2", l)
	}
}

func TestLambdaVUncertain(t *testing.T) {
	q := graph.New(2)
	q.AddVertex("Artist")
	q.AddVertex("University")
	g := ugraph.New(2)
	g.AddVertex(ugraph.Label{Name: "Politician", P: 1})
	g.AddVertex(ugraph.Label{Name: "University", P: 0.8}, ugraph.Label{Name: "Company", P: 0.2})
	if l := LambdaVUncertain(q, g); l != 1 {
		t.Errorf("LambdaVUncertain = %d, want 1", l)
	}
	// The Def. 10 matching is an upper bound across all worlds.
	g.Worlds(func(w *graph.Graph, _ float64) bool {
		if lw := LambdaV(q, w); lw > 1 {
			t.Errorf("world λV = %d exceeds uncertain bound 1", lw)
		}
		return true
	})
}

func TestLambdaE(t *testing.T) {
	q := graph.New(3)
	q.AddVertex("A")
	q.AddVertex("B")
	q.AddVertex("C")
	q.MustAddEdge(0, 1, "type")
	q.MustAddEdge(1, 2, "type")
	g := graph.New(3)
	g.AddVertex("A")
	g.AddVertex("B")
	g.AddVertex("C")
	g.MustAddEdge(0, 1, "type")
	g.MustAddEdge(1, 2, "spouse")
	if l := LambdaE(q, g); l != 1 {
		t.Errorf("LambdaE = %d, want 1", l)
	}
	// Wildcard edge absorbs one more.
	g2 := graph.New(3)
	g2.AddVertex("A")
	g2.AddVertex("B")
	g2.AddVertex("C")
	g2.MustAddEdge(0, 1, "type")
	g2.MustAddEdge(1, 2, "?e")
	if l := LambdaE(q, g2); l != 2 {
		t.Errorf("LambdaE with wildcard = %d, want 2", l)
	}
}

func TestCSSBoundAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 300; i++ {
		q := randomCertain(rng, 1+rng.Intn(5), rng.Intn(5))
		g := randomCertain(rng, 1+rng.Intn(5), rng.Intn(5))
		lb := CSSLowerBound(q, g)
		d := ged.Distance(q, g)
		if lb > d {
			t.Fatalf("CSS bound %d exceeds true distance %d\nq=%v\ng=%v", lb, d, q, g)
		}
	}
}

func TestTheorem2CSSDominatesLM(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 500; i++ {
		q := randomCertain(rng, 1+rng.Intn(6), rng.Intn(7))
		g := randomCertain(rng, 1+rng.Intn(6), rng.Intn(7))
		css, lm := CSSLowerBound(q, g), LMLowerBound(q, g)
		if css < lm {
			t.Fatalf("Theorem 2 violated: CSS=%d < LM=%d\nq=%v\ng=%v", css, lm, q, g)
		}
	}
}

func TestCSSUncertainUniformOverWorlds(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 120; i++ {
		q := randomCertain(rng, 1+rng.Intn(5), rng.Intn(5))
		g := randomUncertain(rng, 1+rng.Intn(4), rng.Intn(4), 2)
		lb := CSSLowerBoundUncertain(q, g)
		g.Worlds(func(w *graph.Graph, _ float64) bool {
			if d := ged.Distance(q, w); lb > d {
				t.Fatalf("uncertain CSS bound %d exceeds ged(q,pw)=%d\nq=%v\npw=%v", lb, d, q, w)
			}
			return true
		})
	}
}

func TestSimilarityUpperBoundSound(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 120; i++ {
		q := randomCertain(rng, 1+rng.Intn(5), rng.Intn(5))
		g := randomUncertain(rng, 1+rng.Intn(4), rng.Intn(4), 3)
		tau := rng.Intn(4)
		ub := SimilarityUpperBound(q, g, tau)
		exact := exactSimP(q, g, tau)
		if ub < exact-1e-9 {
			t.Fatalf("Theorem 4 bound %v below exact SimP %v (tau=%d)\nq=%v\ng=%v", ub, exact, tau, q, g)
		}
		if ub < 0 || ub > 1+1e-9 {
			t.Fatalf("bound %v outside [0,1]", ub)
		}
	}
}

func TestGroupBoundsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 80; i++ {
		q := randomCertain(rng, 1+rng.Intn(5), rng.Intn(5))
		g := randomUncertain(rng, 1+rng.Intn(4), rng.Intn(4), 3)
		tau := rng.Intn(4)
		groups := g.PartitionWorlds(1+rng.Intn(5), nil)
		sum := 0.0
		for _, gr := range groups {
			sum += GroupUpperBound(q, gr, tau)
		}
		exact := exactSimP(q, g, tau)
		if sum < exact-1e-9 {
			t.Fatalf("grouped bound %v below exact SimP %v (tau=%d, %d groups)", sum, exact, tau, len(groups))
		}
		// Grouping should never be looser than necessary: it must stay a
		// valid bound but is allowed to be tighter than the single-group one.
		single := SimilarityUpperBound(q, g, tau)
		if sum > single+1e-9 && CSSLowerBoundUncertain(q, g) <= tau {
			// Groups can individually cap at mass; the sum may only exceed
			// the single bound by rounding.
			_ = single
		}
	}
}

func TestBaselineBoundsAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	type bound struct {
		name string
		fn   func(q, g *graph.Graph) int
	}
	bounds := []bound{
		{"LM", LMLowerBound},
		{"Count", CountLowerBound},
		{"CStar", CStarLowerBound},
		{"PathGram", PathGramLowerBound},
		{"Pars", ParsLowerBound},
		{"Segos", func(q, g *graph.Graph) int { return SegosLowerBound(q, g, 3) }},
	}
	for i := 0; i < 250; i++ {
		q := randomCertain(rng, 1+rng.Intn(5), rng.Intn(5))
		g := randomCertain(rng, 1+rng.Intn(5), rng.Intn(5))
		d := ged.Distance(q, g)
		for _, b := range bounds {
			if lb := b.fn(q, g); lb > d {
				t.Fatalf("%s bound %d exceeds distance %d\nq=%v\ng=%v", b.name, lb, d, q, g)
			}
		}
	}
}

func TestIdenticalGraphsAllBoundsZero(t *testing.T) {
	g := randomCertain(rand.New(rand.NewSource(5)), 5, 6)
	for name, lb := range map[string]int{
		"CSS":      CSSLowerBound(g, g),
		"LM":       LMLowerBound(g, g),
		"Count":    CountLowerBound(g, g),
		"CStar":    CStarLowerBound(g, g),
		"PathGram": PathGramLowerBound(g, g),
		"Pars":     ParsLowerBound(g, g),
	} {
		if lb != 0 {
			t.Errorf("%s bound on identical graphs = %d, want 0", name, lb)
		}
	}
}

func TestCSSBoundPrunesDissimilar(t *testing.T) {
	// A 2-vertex and an 8-vertex graph are far apart; CSS must see it.
	q := graph.New(2)
	q.AddVertex("A")
	q.AddVertex("B")
	q.MustAddEdge(0, 1, "p")
	g := graph.New(8)
	for i := 0; i < 8; i++ {
		g.AddVertex("Z")
	}
	for i := 0; i+1 < 8; i++ {
		g.MustAddEdge(i, i+1, "z")
	}
	if lb := CSSLowerBound(q, g); lb < 8 {
		t.Errorf("CSS bound = %d, expected >= 8 for very dissimilar graphs", lb)
	}
}

func TestSimilarityUpperBoundPaperShape(t *testing.T) {
	// A query sharing no concrete labels with g and a large C should yield a
	// small bound, enabling the α-pruning of Example 4.
	q := graph.New(4)
	q.AddVertex("?x")
	q.AddVertex("Artist")
	q.AddVertex("University")
	q.AddVertex("Harvard")
	q.MustAddEdge(0, 1, "type")
	q.MustAddEdge(0, 3, "graduatedFrom")
	q.MustAddEdge(3, 2, "type")

	g := ugraph.New(6)
	g.AddVertex(ugraph.Label{Name: "?a", P: 1})
	g.AddVertex(ugraph.Label{Name: "Country", P: 1})
	g.AddVertex(ugraph.Label{Name: "Actor", P: 1})
	g.AddVertex(ugraph.Label{Name: "NBAStar", P: 0.6}, ugraph.Label{Name: "Professor", P: 0.3}, ugraph.Label{Name: "Actor2", P: 0.1})
	g.AddVertex(ugraph.Label{Name: "City", P: 1})
	g.AddVertex(ugraph.Label{Name: "State", P: 0.7}, ugraph.Label{Name: "City2", P: 0.3})
	g.MustAddEdge(0, 1, "birthPlace")
	g.MustAddEdge(0, 2, "type")
	g.MustAddEdge(0, 3, "spouse")
	g.MustAddEdge(3, 4, "birthPlace")
	g.MustAddEdge(4, 5, "locatedIn")

	ub := SimilarityUpperBound(q, g, 1)
	if ub >= 0.9 {
		t.Errorf("upper bound %v should prune at alpha=0.9 for dissimilar pair", ub)
	}
	if exact := exactSimP(q, g, 1); ub < exact {
		t.Errorf("bound %v below exact %v", ub, exact)
	}
}

func TestTotalProbabilityUpperBoundSound(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	tighter := 0
	for i := 0; i < 120; i++ {
		q := randomCertain(rng, 1+rng.Intn(5), rng.Intn(5))
		g := randomUncertain(rng, 1+rng.Intn(4), rng.Intn(4), 3)
		tau := rng.Intn(4)
		ub := TotalProbabilityUpperBound(q, g, tau)
		plain := SimilarityUpperBound(q, g, tau)
		exact := exactSimP(q, g, tau)
		if ub < exact-1e-9 {
			t.Fatalf("total-probability bound %v below exact %v (tau=%d)\nq=%v\ng=%v", ub, exact, tau, q, g)
		}
		if ub > plain+1e-9 && CSSLowerBoundUncertain(q, g) <= tau {
			t.Fatalf("total-probability bound %v looser than plain %v", ub, plain)
		}
		if ub < plain-1e-9 {
			tighter++
		}
	}
	if tighter == 0 {
		t.Error("conditioning never tightened the bound on 120 random pairs")
	}
}

func TestExpectedCommonLabelsUnnormalised(t *testing.T) {
	q := graph.New(1)
	q.AddVertex("A")
	g := ugraph.New(1)
	g.AddVertex(ugraph.Label{Name: "A", P: 0.5}, ugraph.Label{Name: "B", P: 0.5})
	if ez := ExpectedCommonLabels(q, g); math.Abs(ez-0.5) > 1e-12 {
		t.Errorf("E(Z) = %v, want 0.5", ez)
	}
	cond, _ := g.Condition(0, []int{0}) // keep A at raw 0.5
	if ez := ExpectedCommonLabels(q, cond); math.Abs(ez-0.5) > 1e-12 {
		t.Errorf("conditioned E(Z) = %v, want raw 0.5", ez)
	}
}
