package filter

import (
	"math/rand"
	"testing"

	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

// This file pins the SoA block-screening kernel (block.go) to a scalar
// reference: for random workloads, block widths and thresholds, the survivor
// bitmap Screen emits must be bit-identical to evaluating the three scalar
// screens — size window, λV label-overlap upper bound (the exact decision of
// core.Index.labelScreen), and the probability-mass screen — one pair at a
// time, and the massPruned tally must match the reference's attribution
// (mass prunes are only counted when the size screen passes).

// refBlockDecision is the scalar reference for one (q, g) pair: alive
// reports block-screen survival, byMass that the pair died on the mass
// screen specifically.
func refBlockDecision(qs *QSig, g *ugraph.Graph, tau int, alpha float64) (alive, byMass bool) {
	d := g.Size() - (qs.NumV + qs.NumE)
	if d < 0 {
		d = -d
	}
	if d > tau {
		return false, false
	}
	if g.TotalMass() < alpha {
		return false, true
	}
	var gSet graph.LabelSet
	gWilds := 0
	for v := 0; v < g.NumVertices(); v++ {
		wild := false
		for _, id := range g.LabelIDs(v) {
			if id == graph.WildcardID {
				wild = true
			} else {
				gSet.Add(id)
			}
		}
		if wild {
			gWilds++
		}
	}
	overlap := qs.VWilds
	for _, lc := range qs.VLabels {
		if gSet.Has(lc.ID) {
			overlap += int(lc.N)
		}
	}
	overlap += gWilds
	maxV := qs.NumV
	if g.NumVertices() > maxV {
		maxV = g.NumVertices()
	}
	if overlap > maxV {
		overlap = maxV
	}
	return maxV-overlap <= tau, false
}

// equivUncertainMass is equivUncertain with, half the time, the vertex label
// distributions scaled down so TotalMass < 1 — exercising the mass screen,
// which a fully normalised workload never trips.
func equivUncertainMass(rng *rand.Rand, n, e, maxLabels int) *ugraph.Graph {
	names := []string{"A", "B", "C", "D", "E", "?x", "?y"}
	g := ugraph.New(n)
	for i := 0; i < n; i++ {
		k := 1 + rng.Intn(maxLabels)
		perm := rng.Perm(len(names))[:k]
		var ls []ugraph.Label
		rest := 1.0
		if rng.Intn(2) == 0 {
			rest = 0.3 + 0.7*rng.Float64() // incomplete distribution
		}
		for j, pi := range perm {
			p := rest
			if j < k-1 {
				p = rest * (0.3 + 0.4*rng.Float64())
			}
			ls = append(ls, ugraph.Label{Name: names[pi], P: p})
			rest -= p
		}
		g.AddVertex(ls...)
	}
	elabels := []string{"p", "q", "?e"}
	for t := 0; t < e*3 && g.NumEdges() < e; t++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		_ = g.AddEdge(u, v, elabels[rng.Intn(len(elabels))])
	}
	return g
}

func TestBlockScreenMatchesScalarReference(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	blockSizes := []int{1, 3, 64, 256}
	for it := 0; it < 60; it++ {
		nd, nu := 1+rng.Intn(12), 1+rng.Intn(80)
		d := make([]*graph.Graph, nd)
		for i := range d {
			d[i] = equivCertain(rng, 2+rng.Intn(6), rng.Intn(10))
		}
		u := make([]*ugraph.Graph, nu)
		for i := range u {
			u[i] = equivUncertainMass(rng, 2+rng.Intn(6), rng.Intn(8), 3)
		}
		qsigs := NewQSigs(d)
		tau := rng.Intn(4)
		alpha := 0.2 + 0.8*rng.Float64()
		bs := blockSizes[it%len(blockSizes)]

		set := NewGBlockSet(u, bs)
		var sc BlockScratch
		for qi, qs := range qsigs {
			for bi := 0; bi < set.NumBlocks(); bi++ {
				blk := set.Block(bi)
				surv, massPruned := blk.Screen(qs, tau, alpha, &sc)
				wantSurv, wantMass := 0, 0
				for i := 0; i < blk.Len(); i++ {
					alive, byMass := refBlockDecision(qs, u[blk.Base()+i], tau, alpha)
					if byMass {
						wantMass++
					}
					got := sc.Bitmap[i>>6]&(1<<(uint(i)&63)) != 0
					if got != alive {
						t.Fatalf("iteration %d q=%d block=%d size=%d g=%d: kernel alive=%v, scalar reference=%v (tau=%d alpha=%v)",
							it, qi, bi, bs, blk.Base()+i, got, alive, tau, alpha)
					}
					if alive {
						wantSurv++
					}
				}
				if surv != wantSurv || massPruned != wantMass {
					t.Fatalf("iteration %d q=%d block=%d size=%d: Screen=(%d survivors, %d mass), reference=(%d, %d)",
						it, qi, bi, bs, surv, massPruned, wantSurv, wantMass)
				}
			}
		}
	}
}

// TestBlockScreenBitmapBounds pins the bitmap contract: bits beyond Len()
// stay zero (blockSource iterates raw words and must never see ghost
// survivors in a short final block).
func TestBlockScreenBitmapBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	d := equivCertain(rng, 4, 4)
	u := make([]*ugraph.Graph, 70) // 64 + a short tail block at width 64
	for i := range u {
		u[i] = equivUncertainMass(rng, 4, 4, 2)
	}
	qs := NewQSig(d)
	set := NewGBlockSet(u, 64)
	var sc BlockScratch
	for bi := 0; bi < set.NumBlocks(); bi++ {
		blk := set.Block(bi)
		blk.Screen(qs, 10, 0.01, &sc) // generous thresholds: everything survives
		for i := blk.Len(); i < len(sc.Bitmap)*64; i++ {
			if sc.Bitmap[i>>6]&(1<<(uint(i)&63)) != 0 {
				t.Fatalf("block %d: ghost survivor bit %d beyond Len()=%d", bi, i, blk.Len())
			}
		}
	}
}

// TestBlockScreenZeroAlloc pins the steady-state allocation behaviour of the
// block kernel: after the scratch has grown to the workload's largest block,
// screening allocates nothing.
func TestBlockScreenZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	d := make([]*graph.Graph, 6)
	for i := range d {
		d[i] = equivCertain(rng, 2+rng.Intn(6), rng.Intn(10))
	}
	u := make([]*ugraph.Graph, 100)
	for i := range u {
		u[i] = equivUncertainMass(rng, 2+rng.Intn(6), rng.Intn(8), 3)
	}
	qsigs := NewQSigs(d)
	set := NewGBlockSet(u, 64)
	var sc BlockScratch
	screenAll := func() {
		for _, qs := range qsigs {
			for bi := 0; bi < set.NumBlocks(); bi++ {
				set.Block(bi).Screen(qs, 2, 0.5, &sc)
			}
		}
	}
	screenAll() // warm the scratch
	if n := testing.AllocsPerRun(50, screenAll); n != 0 {
		t.Fatalf("GBlock.Screen allocated %v times per sweep in steady state, want 0", n)
	}
}
