// Package filter implements the pruning machinery of the paper: the CSS-based
// lower bounds on graph edit distance for certain graphs (Theorem 1) and
// uncertain graphs (Theorem 3), the probabilistic upper bound on the
// similarity probability (Theorem 4), and the baseline filters the paper
// compares against in §7.3/Fig. 15 — label-multiset (LM), vertex/edge count,
// c-star, path-grams, a partition-based filter in the spirit of Pars, and a
// two-level cascade in the spirit of SEGOS.
//
// Complexities (Appendix D): the uncertain CSS bound is dominated by the
// Def. 10 maximum matching, O(|V|³) via Hopcroft–Karp on the dense
// compatibility graph; the certain CSS bound costs O(|E(q)|·|E(g)|) for λE
// plus O(|V| log |V|) for the degree distance; the probabilistic bound costs
// O(min{|V|·|L(v)|, |V(q)|·|V(g)|}). All bounds run in polynomial time even
// though verification (exact GED over possible worlds) is NP-hard.
package filter

import (
	"simjoin/internal/graph"
	"simjoin/internal/matching"
	"simjoin/internal/ugraph"
)

// LambdaV returns λV(q, g): the maximum number of vertex pairs with common
// labels between two certain graphs, computed as a maximum matching of the
// vertex label compatibility graph. Wildcard labels match anything;
// compatibility is decided on dictionary ids.
func LambdaV(a, b *graph.Graph) int {
	bp := matching.NewBipartite(a.NumVertices(), b.NumVertices())
	aids, bids := a.VertexLabelIDs(), b.VertexLabelIDs()
	for u, ua := range aids {
		for v, vb := range bids {
			if graph.IDsMatch(ua, vb) {
				bp.AddEdge(u, v)
			}
		}
	}
	return bp.MaxMatchingSize()
}

// LambdaVUncertain returns the uniform upper bound on λV(q, pw(g)) over all
// possible worlds of g: the maximum matching of the vertex label bipartite
// graph of Def. 10, where a q-vertex is adjacent to a g-vertex iff the
// q-vertex's label occurs among the g-vertex's candidate labels.
func LambdaVUncertain(q *graph.Graph, g *ugraph.Graph) int {
	bp := matching.NewBipartite(q.NumVertices(), g.NumVertices())
	qids := q.VertexLabelIDs()
	for u, qid := range qids {
		for v := 0; v < g.NumVertices(); v++ {
			if vertexMatchesUncertain(qid, g.LabelIDs(v)) {
				bp.AddEdge(u, v)
			}
		}
	}
	return bp.MaxMatchingSize()
}

func vertexMatchesUncertain(qid graph.LabelID, candidates []graph.LabelID) bool {
	for _, id := range candidates {
		if graph.IDsMatch(qid, id) {
			return true
		}
	}
	return false
}

// LambdaE returns λE(q, g): the maximum number of edge pairs with common
// labels, computed on the edge label multisets with wildcard edges matching
// anything.
func LambdaE(a, b *graph.Graph) int {
	la, wa := a.EdgeLabelIDMultiset()
	lb, wb := b.EdgeLabelIDMultiset()
	return multisetCommonIDs(la, wa, a.NumEdges(), lb, wb, b.NumEdges())
}

// LambdaEUncertain is LambdaE against an uncertain graph; edge labels are
// certain in the model, so only the representations differ.
func LambdaEUncertain(q *graph.Graph, g *ugraph.Graph) int {
	la, wa := q.EdgeLabelIDMultiset()
	lb, wb := g.EdgeLabelIDMultiset()
	return multisetCommonIDs(la, wa, q.NumEdges(), lb, wb, g.NumEdges())
}

// multisetCommonIDs computes the maximum matching size between two label
// multisets where wildcards pair with anything: the concrete-label multiset
// intersection (a two-pointer merge over the sorted id vectors) plus
// wildcard pairings, capped by both totals.
func multisetCommonIDs(la []graph.LabelCount, wa, totalA int, lb []graph.LabelCount, wb, totalB int) int {
	common := 0
	for i, j := 0, 0; i < len(la) && j < len(lb); {
		switch {
		case la[i].ID < lb[j].ID:
			i++
		case la[i].ID > lb[j].ID:
			j++
		default:
			if la[i].N < lb[j].N {
				common += int(la[i].N)
			} else {
				common += int(lb[j].N)
			}
			i++
			j++
		}
	}
	// Wildcards on either side can absorb any unmatched counterpart.
	leftA := totalA - wa - common // concrete a-labels still unmatched
	leftB := totalB - wb - common
	// Pair a-wildcards with leftover b items (concrete or wildcard), then
	// b-wildcards with leftover a items.
	wa2, wb2 := wa, wb
	m := min(wa2, leftB+wb2)
	common += m
	usedBWild := max(0, m-leftB)
	wb2 -= usedBWild
	common += min(wb2, leftA)
	if common > totalA {
		common = totalA
	}
	if common > totalB {
		common = totalB
	}
	return common
}

// DegreeDistance computes dif(a, b) of Def. 9 between the degree sequences of
// the smaller-vertex graph and the larger one: with both sequences sorted in
// non-increasing order, it is Σ_i (dSmall[i] ⊖ dBig[i]) over the smaller
// graph's positions, where x ⊖ y = max(x−y, 0).
func DegreeDistance(a, b *graph.Graph) int {
	da, db := a.DegreeSequence(), b.DegreeSequence()
	if len(da) > len(db) {
		da, db = db, da
	}
	return degreeDistanceSeq(da, db)
}

// DegreeDistanceUncertain is DegreeDistance between a certain and an
// uncertain graph; degrees are independent of labels.
func DegreeDistanceUncertain(q *graph.Graph, g *ugraph.Graph) int {
	da, db := q.DegreeSequence(), g.DegreeSequence()
	if len(da) > len(db) {
		da, db = db, da
	}
	return degreeDistanceSeq(da, db)
}

func degreeDistanceSeq(small, big []int) int {
	dif := 0
	for i, d := range small {
		if d > big[i] {
			dif += d - big[i]
		}
	}
	return dif
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
