package filter

import (
	"math/rand"
	"testing"
	"testing/quick"

	"simjoin/internal/ged"
	"simjoin/internal/graph"
)

// Property: the CSS bound is admissible on arbitrary seeded graph pairs.
func TestQuickCSSAdmissible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomCertain(rng, 1+rng.Intn(5), rng.Intn(6))
		g := randomCertain(rng, 1+rng.Intn(5), rng.Intn(6))
		return CSSLowerBound(q, g) <= ged.Distance(q, g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: Theorem 2 (CSS >= LM) on arbitrary seeded pairs.
func TestQuickTheorem2(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomCertain(rng, 1+rng.Intn(6), rng.Intn(8))
		g := randomCertain(rng, 1+rng.Intn(6), rng.Intn(8))
		return CSSLowerBound(q, g) >= LMLowerBound(q, g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every bound is zero on identical graphs and symmetric in its
// arguments (the measures are symmetric even if the formulas pick sides).
func TestQuickBoundSymmetryAndIdentity(t *testing.T) {
	bounds := map[string]func(a, b *graph.Graph) int{
		"CSS":   CSSLowerBound,
		"LM":    LMLowerBound,
		"Count": CountLowerBound,
		"CStar": CStarLowerBound,
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomCertain(rng, 1+rng.Intn(5), rng.Intn(6))
		b := randomCertain(rng, 1+rng.Intn(5), rng.Intn(6))
		for _, fn := range bounds {
			if fn(a, a.Clone()) != 0 {
				return false
			}
			if fn(a, b) != fn(b, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the similarity upper bound is monotone in τ (a larger threshold
// can only admit more worlds).
func TestQuickUpperBoundMonotoneInTau(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomCertain(rng, 1+rng.Intn(5), rng.Intn(5))
		g := randomUncertain(rng, 1+rng.Intn(4), rng.Intn(4), 3)
		prev := -1.0
		for tau := 0; tau <= 4; tau++ {
			ub := SimilarityUpperBound(q, g, tau)
			if ub < prev-1e-12 {
				return false
			}
			prev = ub
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
