package filter

// Block-screening kernels: structure-of-arrays signature blocks.
//
// The per-pair chain (signature.go) already compares integers, but it still
// walks one pair at a time: every evaluation pointer-chases into a different
// GSig, and the loop/dispatch overhead of the Bound interface is paid per
// pair even when a cheap prescreen would have rejected the pair outright.
// GBlockSet packs the resident (uncertain) side's screening summaries for
// blocks of ~256 graphs into contiguous parallel slices — sizes, vertex
// counts, wildcard-vertex counts, probability masses, and the graphs' union
// concrete-label bitsets in word-major order — so one QSig can be screened
// against a whole block with tight branch-light loops over sequential memory
// and a survivor bitmap combined with math/bits word operations.
//
// The three screens are exactly the prescreens the index-backed source
// applies (core.Index), plus the probability-mass screen:
//
//  1. Size screen — ged(q,g) ≥ ||size(q)| − |size(g)|| holds for every
//     possible world of g (worlds share g's vertex count, edges and edge
//     labels — only vertex labels vary), so |size(q)−size(g)| > τ proves
//     SimPτ(q,g) = 0.
//  2. Label screen — the λV multiset-overlap upper bound of the LM/CSS
//     filters: if even the most generous vertex-label overlap estimate
//     leaves more than τ unmatched vertices on the larger side, no world
//     can be within τ.
//  3. Mass screen — SimPτ(q,g) ≤ TotalMass(g) (the predicate sums world
//     probabilities), so TotalMass(g) < α proves the pair fails Def. 7.
//
// All three are sound for Def. 7 regardless of the configured filter chain,
// so feeding only block survivors into the per-pair pipeline leaves the
// join's accepted/rejected pair sets bit-identical to the scalar path.
// Screen allocates nothing in steady state (scratch grows once and is
// reused), keeping the CI-enforced zero-alloc discipline of the pair loop.

import (
	"math/bits"

	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

// DefaultBlockSize is the block width NewGBlockSet uses when the requested
// size is not positive: big enough to amortise per-block bookkeeping, small
// enough that a block's hot slices stay cache-resident.
const DefaultBlockSize = 256

// GBlock is one block of uncertain graphs' screening summaries, stored as a
// structure of arrays indexed by the graph's offset within the block.
type GBlock struct {
	base  int // index of the block's first graph in the source set
	n     int // graphs in this block
	words int // label-bitset words per graph

	size  []int32   // |V| + |E| (identical in every possible world)
	numV  []int32   // |V|
	wildV []int32   // vertices carrying a wildcard candidate label
	mass  []float64 // TotalMass: the graph's total probability mass

	// labels is the word-major union concrete-label bitset matrix:
	// labels[w*n+i] is word w of graph i's label set, so the per-label probe
	// of the screen kernel streams one contiguous row per dictionary word.
	labels []uint64
}

// Len returns the number of graphs in the block.
func (b *GBlock) Len() int { return b.n }

// Base returns the source-set index of the block's first graph.
func (b *GBlock) Base() int { return b.base }

// GBlockSet is the blocked SoA layout of one uncertain-graph set.
type GBlockSet struct {
	blocks []GBlock
	width  int
}

// NumBlocks returns the number of blocks.
func (s *GBlockSet) NumBlocks() int { return len(s.blocks) }

// Block returns the i-th block.
func (s *GBlockSet) Block(i int) *GBlock { return &s.blocks[i] }

// BlockSize returns the block width the set was built with (the last block
// may be shorter).
func (s *GBlockSet) BlockSize() int { return s.width }

// NewGBlockSet packs the screening summaries of u into blocks of blockSize
// graphs (DefaultBlockSize when blockSize ≤ 0). Building costs one pass over
// every graph's candidate labels — the same work core.Index pays per joined
// graph — and is done once per join.
func NewGBlockSet(u []*ugraph.Graph, blockSize int) *GBlockSet {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	s := &GBlockSet{width: blockSize}
	for base := 0; base < len(u); base += blockSize {
		end := base + blockSize
		if end > len(u) {
			end = len(u)
		}
		s.blocks = append(s.blocks, packBlock(u, base, end))
	}
	return s
}

// packBlock summarises u[base:end] into one SoA block.
func packBlock(u []*ugraph.Graph, base, end int) GBlock {
	n := end - base
	b := GBlock{
		base:  base,
		n:     n,
		size:  make([]int32, n),
		numV:  make([]int32, n),
		wildV: make([]int32, n),
		mass:  make([]float64, n),
	}
	sets := make([]graph.LabelSet, n)
	for i := 0; i < n; i++ {
		g := u[base+i]
		b.size[i] = int32(g.Size())
		b.numV[i] = int32(g.NumVertices())
		b.mass[i] = g.TotalMass()
		set := &sets[i]
		wilds := int32(0)
		for v := 0; v < g.NumVertices(); v++ {
			wild := false
			for _, id := range g.LabelIDs(v) {
				if id == graph.WildcardID {
					wild = true
				} else {
					set.Add(id)
				}
			}
			if wild {
				wilds++
			}
		}
		b.wildV[i] = wilds
		if w := len(set.Words()); w > b.words {
			b.words = w
		}
	}
	b.labels = make([]uint64, b.words*n)
	for i := 0; i < n; i++ {
		for w, word := range sets[i].Words() {
			b.labels[w*n+i] = word
		}
	}
	return b
}

// BlockScratch holds the reusable buffers of Screen. The zero value is ready
// to use; buffers grow to the largest block screened and are then reused, so
// steady-state screening allocates nothing.
type BlockScratch struct {
	// Bitmap is the survivor bitmap of the most recent Screen call: bit i set
	// means graph Base()+i survived every screen. Valid until the next call.
	Bitmap []uint64

	ovl []int32 // per-graph vertex-label overlap accumulator
}

// Screen evaluates one query signature against the whole block and writes
// the survivor bitmap into sc.Bitmap. It returns the number of surviving
// graphs and, of the pruned ones, how many the probabilistic mass screen
// eliminated (the rest are structural: size or label screen). A pair is
// pruned here only if the scalar pipeline — bounds plus verification — would
// reject it too, so survivors are exactly the pairs worth per-pair work.
func (b *GBlock) Screen(qs *QSig, tau int, alpha float64, sc *BlockScratch) (survivors, massPruned int) {
	n := b.n
	nw := (n + 63) >> 6
	if cap(sc.Bitmap) < nw {
		sc.Bitmap = make([]uint64, nw)
	}
	sc.Bitmap = sc.Bitmap[:nw]
	if cap(sc.ovl) < n {
		sc.ovl = make([]int32, n)
	}
	sc.ovl = sc.ovl[:n]

	qSize := int32(qs.NumV + qs.NumE)
	qNumV := int32(qs.NumV)
	qWilds := int32(qs.VWilds)
	tau32 := int32(tau)

	// Pass 1 — size and mass screens over the contiguous summary slices,
	// seeding the overlap accumulators for pass 2. Mass prunes are counted
	// only when the size screen passes: a pair dead twice is attributed to
	// the cheaper structural screen.
	alive := uint64(0)
	for w := 0; w < nw; w++ {
		sc.Bitmap[w] = 0
	}
	for i := 0; i < n; i++ {
		sc.ovl[i] = qWilds + b.wildV[i]
		d := b.size[i] - qSize
		if d < 0 {
			d = -d
		}
		if d > tau32 {
			continue
		}
		if b.mass[i] < alpha {
			massPruned++
			continue
		}
		sc.Bitmap[i>>6] |= 1 << (uint(i) & 63)
	}
	for _, w := range sc.Bitmap {
		alive |= w
	}
	if alive == 0 {
		// The whole block died on the scalar summaries: skip the label matrix
		// entirely — no per-pair state was ever touched.
		return 0, massPruned
	}

	// Pass 2 — accumulate the λV overlap upper bound: for each concrete query
	// label, stream the label's word-major row and add the label's query-side
	// multiplicity to every graph whose set contains it, branchlessly.
	for _, lc := range qs.VLabels {
		w := int(lc.ID) >> 6
		if w >= b.words {
			continue // no graph in the block carries this label
		}
		bit := uint(lc.ID) & 63
		cnt := lc.N
		row := b.labels[w*n : (w+1)*n]
		ovl := sc.ovl
		for i, word := range row {
			ovl[i] += int32((word>>bit)&1) * cnt
		}
	}

	// Pass 3 — apply the label screen to the remaining survivors, walking set
	// bits with math/bits and counting the result word-parallel.
	for w := 0; w < nw; w++ {
		wd := sc.Bitmap[w]
		for m := wd; m != 0; m &= m - 1 {
			i := w<<6 + bits.TrailingZeros64(m)
			maxV := qNumV
			if b.numV[i] > maxV {
				maxV = b.numV[i]
			}
			ovl := sc.ovl[i]
			if ovl > maxV {
				ovl = maxV
			}
			if maxV-ovl > tau32 {
				wd &^= 1 << (uint(i) & 63)
			}
		}
		sc.Bitmap[w] = wd
		survivors += bits.OnesCount64(wd)
	}
	return survivors, massPruned
}
