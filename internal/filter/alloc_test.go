package filter

import (
	"testing"

	"simjoin/internal/workload"
)

// TestFilterChainSigZeroAlloc pins the steady-state allocation behaviour of
// the signature-based filter chain: once the pair signatures exist and the
// memoized per-condition sub-signatures have been built (first evaluation),
// re-evaluating css, prob and prob-tight on a pair must not allocate at all.
// The group bound is excluded — partitioning possible worlds legitimately
// builds conditioned graphs.
func TestFilterChainSigZeroAlloc(t *testing.T) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = 4
	d, u := workload.ER(cfg)
	qsigs := NewQSigs(d)
	gsigs := NewGSigs(u)
	chain := []Bound{MustBound("css"), MustBound("prob"), MustBound("prob-tight")}
	var sc Scratch

	// The context is hoisted and reused like the engine's per-worker rec.pctx:
	// a loop-local PairContext escapes through the Bound interface call and
	// costs one heap allocation per pair.
	var pc PairContext
	evalAll := func() {
		for _, qs := range qsigs {
			for _, gs := range gsigs {
				pc = PairContext{QS: qs, GS: gs, Tau: 2, Alpha: 0.5, GroupCount: 10, Scratch: &sc}
				for _, b := range chain {
					b.Apply(&pc)
				}
			}
		}
	}
	evalAll() // warm: memoize conditioned sub-signatures, size the scratch

	if got := testing.AllocsPerRun(50, evalAll); got != 0 {
		t.Fatalf("steady-state filter chain evaluation allocated %v allocs/op, want 0", got)
	}
}

// TestWorldLowerBoundZeroAlloc pins the per-world verification kernel: after
// PairVerifier.Reset, each WorldLowerBound call on a possible world must be
// allocation-free.
func TestWorldLowerBoundZeroAlloc(t *testing.T) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = 2
	d, u := workload.ER(cfg)
	qs := NewQSig(d[0])
	gs := NewGSig(u[0])
	w, _ := u[0].MostLikelyWorld()
	var pv PairVerifier
	pv.Reset(qs, gs)
	pv.WorldLowerBound(w)

	if got := testing.AllocsPerRun(100, func() { pv.WorldLowerBound(w) }); got != 0 {
		t.Fatalf("WorldLowerBound allocated %v allocs/op, want 0", got)
	}
}
