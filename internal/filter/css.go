package filter

import (
	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

// cssOriented evaluates Theorem 1's bound for a fixed orientation where
// "small" plays the role of q (|V(small)| ≤ |V(big)| required by Lemma 2):
//
//	lb = |V(big)| + |E(big)| − λE + ⌈dif(small,big)/2⌉ − λV
//
// λV and λE are orientation-independent and passed in by the caller.
func cssOriented(small, big *graph.Graph, lamV, lamE int) int {
	dif := degreeDistanceSeq(small.DegreeSequence(), big.DegreeSequence())
	lb := big.NumVertices() + big.NumEdges() - lamE + (dif+1)/2 - lamV
	if lb < 0 {
		lb = 0
	}
	return lb
}

// CSSLowerBound computes the CSS-based lower bound of Theorem 1 on the graph
// edit distance between two certain graphs. The graph with fewer vertices
// plays the role of q in the theorem; when the vertex counts tie, both
// orientations are valid lower bounds and the tighter one is returned.
func CSSLowerBound(q, g *graph.Graph) int {
	lamV := LambdaV(q, g)
	lamE := LambdaE(q, g)
	switch {
	case q.NumVertices() < g.NumVertices():
		return cssOriented(q, g, lamV, lamE)
	case q.NumVertices() > g.NumVertices():
		return cssOriented(g, q, lamV, lamE)
	default:
		a := cssOriented(q, g, lamV, lamE)
		if b := cssOriented(g, q, lamV, lamE); b > a {
			return b
		}
		return a
	}
}

// CSSLowerBoundUncertain computes the uniform CSS-based lower bound of
// Theorem 3 that holds simultaneously for every possible world of the
// uncertain graph g: Theorem 1's formula with λV replaced by the maximum
// matching of the vertex label bipartite graph of Def. 10 (an upper bound on
// λV against any possible world). It is a thin wrapper building throwaway
// signatures; pair loops should precompute QSig/GSig and call
// CSSLowerBoundUncertainSig instead.
func CSSLowerBoundUncertain(q *graph.Graph, g *ugraph.Graph) int {
	return CSSLowerBoundUncertainSig(NewQSig(q), NewGSig(g))
}

// CSSConstant returns C(q, g) = |V(big)| + |E(big)| − λE + ⌈dif/2⌉, the
// label-matching-independent part of Theorem 3's bound, so that
// lb = C − λV. It is reused by the probabilistic pruning of §5 (ged ≤ τ
// forces λV ≥ C − τ). On vertex-count ties the tighter orientation is used,
// mirroring CSSLowerBoundUncertain.
func CSSConstant(q *graph.Graph, g *ugraph.Graph) int {
	return CSSConstantSig(NewQSig(q), NewGSig(g))
}
