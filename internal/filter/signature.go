package filter

// Precomputed per-graph signatures for the filtering pipeline.
//
// Every bound in this package needs the same handful of per-graph structures:
// degree sequences (Def. 9), vertex/edge label multisets, wildcard counts,
// probability mass, and — for the probabilistic bound — per-label existence
// probabilities. The original entry points recompute all of them on every
// call, which is wasted work inside the O(|D|·|U|) pair loop of a join where
// each graph participates in thousands of pairs. QSig and GSig compute them
// exactly once per graph; the *Sig bound variants below consume the cached
// structures and return bit-identical values to their recomputing
// counterparts (which remain as thin wrappers).

import (
	"sync"

	"simjoin/internal/graph"
	"simjoin/internal/matching"
	"simjoin/internal/ugraph"
)

// QSig is the precomputed signature of a certain (query) graph: everything
// the CSS and probabilistic bounds read from the q side of a pair.
type QSig struct {
	G          *graph.Graph
	NumV, NumE int
	DegSeq     []int          // total degrees, non-increasing
	VLabels    map[string]int // concrete vertex label multiset
	VWilds     int            // wildcard vertex count (Wq of Theorem 4)
	ELabels    map[string]int // concrete edge label multiset
	EWilds     int            // wildcard edge count

	vLabelSet map[string]bool // distinct concrete vertex labels
}

// NewQSig precomputes the signature of one certain graph.
func NewQSig(q *graph.Graph) *QSig {
	s := &QSig{
		G:      q,
		NumV:   q.NumVertices(),
		NumE:   q.NumEdges(),
		DegSeq: q.DegreeSequence(),
	}
	s.VLabels, s.VWilds = q.VertexLabelMultiset()
	s.ELabels, s.EWilds = q.EdgeLabelMultiset()
	s.vLabelSet = make(map[string]bool, len(s.VLabels))
	for l := range s.VLabels {
		s.vLabelSet[l] = true
	}
	return s
}

// NewQSigs precomputes signatures for a certain-graph set.
func NewQSigs(d []*graph.Graph) []*QSig {
	out := make([]*QSig, len(d))
	for i, q := range d {
		out[i] = NewQSig(q)
	}
	return out
}

// gsigLabel is one (vertex, candidate label) record of a GSig, kept in the
// exact order ExpectedCommonLabels iterates so the cached computation
// accumulates floating-point sums identically.
type gsigLabel struct {
	name string
	p    float64
	wild bool
}

// GSig is the precomputed signature of an uncertain graph: the structures
// Theorems 3 and 4 read from the g side of a pair.
type GSig struct {
	G          *ugraph.Graph
	NumV, NumE int
	DegSeq     []int
	ELabels    map[string]int
	EWilds     int
	Mass       float64 // TotalMass
	WorldsF    float64 // WorldCountFloat

	flat      []gsigLabel        // all (vertex, label) records in order
	byLabel   map[string][]int32 // concrete label -> vertices carrying it
	wildVerts []int32            // vertices with a wildcard candidate label

	relaxedOnce sync.Once
	relaxed     *graph.Graph
}

// Relaxed returns the certain relaxation of the uncertain graph: the same
// structure, with a vertex keeping its label only when it has exactly one
// candidate label and that label is concrete — every other vertex degrades to
// the wildcard "?". Wildcards only ever add label matches, so for any
// label-compatibility-based lower bound lb, lb(q, Relaxed()) ≤ lb(q, w) for
// every possible world w: the relaxation lets certain-graph baseline filters
// prune uncertain pairs soundly. Built lazily on first use and cached;
// concurrency-safe.
func (s *GSig) Relaxed() *graph.Graph {
	s.relaxedOnce.Do(func() {
		w := graph.New(s.NumV)
		for v := 0; v < s.NumV; v++ {
			ls := s.G.Labels(v)
			if len(ls) == 1 && !graph.IsWildcard(ls[0].Name) {
				w.AddVertex(ls[0].Name)
			} else {
				w.AddVertex("?")
			}
		}
		for _, e := range s.G.Edges() {
			w.MustAddEdge(e.From, e.To, e.Label)
		}
		s.relaxed = w
	})
	return s.relaxed
}

// NewGSig precomputes the signature of one uncertain graph.
func NewGSig(g *ugraph.Graph) *GSig {
	s := &GSig{
		G:       g,
		NumV:    g.NumVertices(),
		NumE:    g.NumEdges(),
		DegSeq:  g.DegreeSequence(),
		Mass:    g.TotalMass(),
		WorldsF: g.WorldCountFloat(),
		byLabel: make(map[string][]int32),
	}
	s.ELabels, s.EWilds = g.EdgeLabelMultiset()
	for v := 0; v < s.NumV; v++ {
		wild := false
		for _, l := range g.Labels(v) {
			isWild := graph.IsWildcard(l.Name)
			s.flat = append(s.flat, gsigLabel{name: l.Name, p: l.P, wild: isWild})
			if isWild {
				wild = true
			} else {
				s.byLabel[l.Name] = append(s.byLabel[l.Name], int32(v))
			}
		}
		if wild {
			s.wildVerts = append(s.wildVerts, int32(v))
		}
	}
	return s
}

// NewGSigs precomputes signatures for an uncertain-graph set.
func NewGSigs(u []*ugraph.Graph) []*GSig {
	out := make([]*GSig, len(u))
	for i, g := range u {
		out[i] = NewGSig(g)
	}
	return out
}

// LambdaVUncertainSig is LambdaVUncertain over precomputed signatures: the
// Def. 10 bipartite graph is built from the per-label vertex lists instead of
// scanning every candidate label of every (u, v) pair.
func LambdaVUncertainSig(qs *QSig, gs *GSig) int {
	bp := matching.NewBipartite(qs.NumV, gs.NumV)
	addLambdaVEdges(bp, qs, gs)
	return bp.MaxMatchingSize()
}

// addLambdaVEdges populates the Def. 10 vertex-label compatibility graph.
// A g-vertex may be added twice for one q-vertex (once via its concrete
// label, once via a wildcard candidate); duplicate edges do not change the
// maximum matching size.
func addLambdaVEdges(bp *matching.Bipartite, qs *QSig, gs *GSig) {
	for u := 0; u < qs.NumV; u++ {
		ql := qs.G.VertexLabel(u)
		if graph.IsWildcard(ql) {
			for v := 0; v < gs.NumV; v++ {
				bp.AddEdge(u, v)
			}
			continue
		}
		for _, v := range gs.byLabel[ql] {
			bp.AddEdge(u, int(v))
		}
		for _, v := range gs.wildVerts {
			bp.AddEdge(u, int(v))
		}
	}
}

// LambdaVUncertainSigScratch is LambdaVUncertainSig reusing a caller-provided
// bipartite scratch, for allocation-free pruning inside pair loops.
func LambdaVUncertainSigScratch(bp *matching.Bipartite, qs *QSig, gs *GSig) int {
	bp.Reset(qs.NumV, gs.NumV)
	addLambdaVEdges(bp, qs, gs)
	return bp.MaxMatchingSize()
}

// CSSLowerBoundUncertainSigScratch is CSSLowerBoundUncertainSig reusing a
// caller-provided bipartite scratch.
func CSSLowerBoundUncertainSigScratch(bp *matching.Bipartite, qs *QSig, gs *GSig) int {
	lb := CSSConstantSig(qs, gs) - LambdaVUncertainSigScratch(bp, qs, gs)
	if lb < 0 {
		lb = 0
	}
	return lb
}

// LambdaEUncertainSig is LambdaEUncertain over precomputed signatures.
func LambdaEUncertainSig(qs *QSig, gs *GSig) int {
	return multisetCommon(qs.ELabels, qs.EWilds, qs.NumE, gs.ELabels, gs.EWilds, gs.NumE)
}

// CSSConstantSig is CSSConstant over precomputed signatures.
func CSSConstantSig(qs *QSig, gs *GSig) int {
	lamE := LambdaEUncertainSig(qs, gs)
	oriented := func(small, big []int, bigV, bigE int) int {
		return bigV + bigE - lamE + (degreeDistanceSeq(small, big)+1)/2
	}
	switch {
	case qs.NumV < gs.NumV:
		return oriented(qs.DegSeq, gs.DegSeq, gs.NumV, gs.NumE)
	case qs.NumV > gs.NumV:
		return oriented(gs.DegSeq, qs.DegSeq, qs.NumV, qs.NumE)
	default:
		a := oriented(qs.DegSeq, gs.DegSeq, gs.NumV, gs.NumE)
		if b := oriented(gs.DegSeq, qs.DegSeq, qs.NumV, qs.NumE); b > a {
			return b
		}
		return a
	}
}

// CSSLowerBoundUncertainSig is CSSLowerBoundUncertain over precomputed
// signatures (Theorem 3).
func CSSLowerBoundUncertainSig(qs *QSig, gs *GSig) int {
	lb := CSSConstantSig(qs, gs) - LambdaVUncertainSig(qs, gs)
	if lb < 0 {
		lb = 0
	}
	return lb
}

// ExpectedCommonLabelsSig is ExpectedCommonLabels over precomputed
// signatures. It iterates the cached (vertex, label) records in the same
// order as the original, so the floating-point sum is bit-identical.
func ExpectedCommonLabelsSig(qs *QSig, gs *GSig) float64 {
	ez := 0.0
	for i := range gs.flat {
		fl := &gs.flat[i]
		if fl.wild || qs.vLabelSet[fl.name] {
			ez += fl.p
		}
	}
	return ez
}

// SimilarityUpperBoundSig is SimilarityUpperBound over precomputed
// signatures (Theorem 4).
func SimilarityUpperBoundSig(qs *QSig, gs *GSig, tau int) float64 {
	mass := gs.Mass
	denom := float64(CSSConstantSig(qs, gs) - tau - qs.VWilds)
	if denom <= 0 {
		return mass
	}
	ub := ExpectedCommonLabelsSig(qs, gs) / denom
	if ub > mass {
		return mass
	}
	if ub < 0 {
		return 0
	}
	return ub
}

// GroupUpperBoundSig is GroupUpperBound with the group's conditioned graph
// already summarised as gs; mass is the group's probability mass.
func GroupUpperBoundSig(qs *QSig, gs *GSig, mass float64, tau int) float64 {
	if CSSLowerBoundUncertainSig(qs, gs) > tau {
		return 0
	}
	ub := SimilarityUpperBoundSig(qs, gs, tau)
	if ub > mass {
		return mass
	}
	return ub
}

// TotalProbabilityUpperBoundSig is TotalProbabilityUpperBound over
// precomputed signatures; the per-condition sub-signatures are built on the
// fly (each condition is evaluated exactly once).
func TotalProbabilityUpperBoundSig(qs *QSig, gs *GSig, tau int) float64 {
	if CSSLowerBoundUncertainSig(qs, gs) > tau {
		return 0
	}
	v := gs.G.SplitVertex()
	if v < 0 {
		return SimilarityUpperBoundSig(qs, gs, tau)
	}
	ub := 0.0
	for i := range gs.G.Labels(v) {
		cond, mass := gs.G.Condition(v, []int{i})
		cs := NewGSig(cond)
		if CSSLowerBoundUncertainSig(qs, cs) > tau {
			continue
		}
		b := SimilarityUpperBoundSig(qs, cs, tau)
		if b > mass {
			b = mass
		}
		ub += b
	}
	if plain := SimilarityUpperBoundSig(qs, gs, tau); plain < ub {
		return plain
	}
	return ub
}

// PairVerifier caches the world-invariant parts of the certain×certain CSS
// bound (Theorem 1) between a query and the possible worlds of one uncertain
// graph. Every world shares the uncertain graph's vertex count, edge set and
// edge labels — only vertex labels vary — so λE and the degree-distance term
// are constants of the pair and only λV must be recomputed per world. The
// zero value is ready to use after Reset; the embedded matching scratch is
// reused across worlds and pairs, so a PairVerifier must not be shared
// between goroutines.
type PairVerifier struct {
	qs *QSig
	// constQ is the oriented CSS constant with q as the smaller graph
	// (bound = constQ − λV); constG with the world as the smaller graph.
	constQ, constG int
	gNumV          int
	bp             *matching.Bipartite
}

// Reset reconfigures the verifier for a new (q, g) pair, retaining scratch
// allocations. The worlds later passed to WorldLowerBound must come from gs's
// graph (or a conditioned group of it — conditioning preserves structure).
func (pv *PairVerifier) Reset(qs *QSig, gs *GSig) {
	lamE := LambdaEUncertainSig(qs, gs)
	pv.qs = qs
	pv.gNumV = gs.NumV
	// degreeDistanceSeq requires the smaller sequence first; only the
	// orientation(s) WorldLowerBound will read are computed.
	pv.constQ, pv.constG = 0, 0
	if qs.NumV <= gs.NumV {
		pv.constQ = gs.NumV + gs.NumE - lamE + (degreeDistanceSeq(qs.DegSeq, gs.DegSeq)+1)/2
	}
	if gs.NumV <= qs.NumV {
		pv.constG = qs.NumV + qs.NumE - lamE + (degreeDistanceSeq(gs.DegSeq, qs.DegSeq)+1)/2
	}
	if pv.bp == nil {
		pv.bp = matching.NewBipartite(qs.NumV, gs.NumV)
	}
}

// WorldLowerBound returns CSSLowerBound(q, w) for a possible world w of the
// pair's uncertain graph, recomputing only the λV matching.
func (pv *PairVerifier) WorldLowerBound(w *graph.Graph) int {
	qs := pv.qs
	bp := pv.bp
	bp.Reset(qs.NumV, pv.gNumV)
	for u := 0; u < qs.NumV; u++ {
		ql := qs.G.VertexLabel(u)
		for v := 0; v < pv.gNumV; v++ {
			if graph.LabelsMatch(ql, w.VertexLabel(v)) {
				bp.AddEdge(u, v)
			}
		}
	}
	lamV := bp.MaxMatchingSize()
	clamp := func(x int) int {
		if x < 0 {
			return 0
		}
		return x
	}
	switch {
	case qs.NumV < pv.gNumV:
		return clamp(pv.constQ - lamV)
	case qs.NumV > pv.gNumV:
		return clamp(pv.constG - lamV)
	default:
		a := clamp(pv.constQ - lamV)
		if b := clamp(pv.constG - lamV); b > a {
			return b
		}
		return a
	}
}
