package filter

// Precomputed per-graph signatures for the filtering pipeline.
//
// Every bound in this package needs the same handful of per-graph structures:
// degree sequences (Def. 9), vertex/edge label multisets, wildcard counts,
// probability mass, and — for the probabilistic bound — per-label existence
// probabilities. The original entry points recompute all of them on every
// call, which is wasted work inside the O(|D|·|U|) pair loop of a join where
// each graph participates in thousands of pairs. QSig and GSig compute them
// exactly once per graph; the *Sig bound variants below consume the cached
// structures and return bit-identical values to their recomputing
// counterparts (which remain as thin wrappers).
//
// All label state is dictionary-encoded (graph.LabelID): multisets are sorted
// (id, count) vectors intersected by two-pointer merges, label membership is
// a bitset probe, and the per-world λV matching compares int32s instead of
// strings. Wildcards are graph.WildcardID throughout.

import (
	"sync"

	"simjoin/internal/graph"
	"simjoin/internal/matching"
	"simjoin/internal/ugraph"
)

// QSig is the precomputed signature of a certain (query) graph: everything
// the CSS and probabilistic bounds read from the q side of a pair.
type QSig struct {
	G          *graph.Graph
	NumV, NumE int
	DegSeq     []int              // total degrees, non-increasing
	VLabels    []graph.LabelCount // concrete vertex label multiset, sorted by id
	VWilds     int                // wildcard vertex count (Wq of Theorem 4)
	ELabels    []graph.LabelCount // concrete edge label multiset, sorted by id
	EWilds     int                // wildcard edge count
	VIDs       []graph.LabelID    // per-vertex label ids (do not modify)
	VSet       graph.LabelSet     // distinct concrete vertex label ids
}

// NewQSig precomputes the signature of one certain graph.
func NewQSig(q *graph.Graph) *QSig {
	s := &QSig{
		G:      q,
		NumV:   q.NumVertices(),
		NumE:   q.NumEdges(),
		DegSeq: q.DegreeSequence(),
		VIDs:   q.VertexLabelIDs(),
	}
	s.VLabels, s.VWilds = q.VertexLabelIDMultiset()
	s.ELabels, s.EWilds = q.EdgeLabelIDMultiset()
	for _, lc := range s.VLabels {
		s.VSet.Add(lc.ID)
	}
	return s
}

// NewQSigs precomputes signatures for a certain-graph set.
func NewQSigs(d []*graph.Graph) []*QSig {
	out := make([]*QSig, len(d))
	for i, q := range d {
		out[i] = NewQSig(q)
	}
	return out
}

// gsigLabel is one (vertex, candidate label) record of a GSig, kept in the
// exact order ExpectedCommonLabels iterates so the cached computation
// accumulates floating-point sums identically. Wildcard candidates carry
// graph.WildcardID.
type gsigLabel struct {
	id graph.LabelID
	p  float64
}

// condSig is one memoized conditioned sub-signature of the tight
// probabilistic bound: the GSig of the graph conditioned on one candidate
// label of the split vertex, with that condition's probability mass.
type condSig struct {
	gs   *GSig
	mass float64
}

// GSig is the precomputed signature of an uncertain graph: the structures
// Theorems 3 and 4 read from the g side of a pair.
type GSig struct {
	G          *ugraph.Graph
	NumV, NumE int
	DegSeq     []int
	ELabels    []graph.LabelCount // concrete edge label multiset, sorted by id
	EWilds     int
	Mass       float64 // TotalMass
	WorldsF    float64 // WorldCountFloat

	flat      []gsigLabel               // all (vertex, label) records in order
	byLabel   map[graph.LabelID][]int32 // concrete label id -> vertices carrying it
	wildVerts []int32                   // vertices with a wildcard candidate label

	relaxedOnce sync.Once
	relaxed     *graph.Graph

	condOnce sync.Once
	conds    []condSig // nil when the graph has no split vertex

	bandOnce sync.Once
	bandKey  uint64
}

// BandKey returns the graph's single-band MinHash key over its union
// concrete-label set (band 0 of AppendBandKeys) — the same label-signature
// key the sharded router hashes, usable as a cheap stratum id for per-label-
// signature adaptive planning. Graphs whose vertices are all wildcards key
// to EmptyBandKey. Built lazily on first use and cached; concurrency-safe.
func (s *GSig) BandKey() uint64 {
	s.bandOnce.Do(func() {
		var set graph.LabelSet
		UnionConcreteLabels(s.G, &set)
		var keys [1]uint64
		s.bandKey = AppendBandKeys(keys[:0], &set, 1)[0]
	})
	return s.bandKey
}

// Relaxed returns the certain relaxation of the uncertain graph: the same
// structure, with a vertex keeping its label only when it has exactly one
// candidate label and that label is concrete — every other vertex degrades to
// the wildcard "?". Wildcards only ever add label matches, so for any
// label-compatibility-based lower bound lb, lb(q, Relaxed()) ≤ lb(q, w) for
// every possible world w: the relaxation lets certain-graph baseline filters
// prune uncertain pairs soundly. Built lazily on first use and cached;
// concurrency-safe.
func (s *GSig) Relaxed() *graph.Graph {
	s.relaxedOnce.Do(func() {
		w := graph.New(s.NumV)
		for v := 0; v < s.NumV; v++ {
			ls := s.G.Labels(v)
			if len(ls) == 1 && !graph.IsWildcard(ls[0].Name) {
				w.AddVertexID(ls[0].Name, s.G.LabelIDs(v)[0])
			} else {
				w.AddVertexID("?", graph.WildcardID)
			}
		}
		eids := s.G.EdgeLabelIDs()
		for i, e := range s.G.Edges() {
			w.MustAddEdgeID(e.From, e.To, e.Label, eids[i])
		}
		s.relaxed = w
	})
	return s.relaxed
}

// conditioned returns the memoized per-condition sub-signatures of the tight
// probabilistic bound (one per candidate label of the split vertex), or nil
// when the graph has no uncertain vertex to condition on. Conditioning
// depends only on g, so the sub-signatures are built once per graph instead
// of once per pair; concurrency-safe like Relaxed.
func (s *GSig) conditioned() []condSig {
	s.condOnce.Do(func() {
		v := s.G.SplitVertex()
		if v < 0 {
			return
		}
		ls := s.G.Labels(v)
		conds := make([]condSig, 0, len(ls))
		for i := range ls {
			cond, mass := s.G.Condition(v, []int{i})
			conds = append(conds, condSig{gs: NewGSig(cond), mass: mass})
		}
		s.conds = conds
	})
	return s.conds
}

// NewGSig precomputes the signature of one uncertain graph.
func NewGSig(g *ugraph.Graph) *GSig {
	s := &GSig{
		G:       g,
		NumV:    g.NumVertices(),
		NumE:    g.NumEdges(),
		DegSeq:  g.DegreeSequence(),
		Mass:    g.TotalMass(),
		WorldsF: g.WorldCountFloat(),
		byLabel: make(map[graph.LabelID][]int32),
	}
	s.ELabels, s.EWilds = g.EdgeLabelIDMultiset()
	for v := 0; v < s.NumV; v++ {
		ids := g.LabelIDs(v)
		ls := g.Labels(v)
		wild := false
		for i, id := range ids {
			s.flat = append(s.flat, gsigLabel{id: id, p: ls[i].P})
			if id == graph.WildcardID {
				wild = true
			} else {
				s.byLabel[id] = append(s.byLabel[id], int32(v))
			}
		}
		if wild {
			s.wildVerts = append(s.wildVerts, int32(v))
		}
	}
	return s
}

// NewGSigs precomputes signatures for an uncertain-graph set.
func NewGSigs(u []*ugraph.Graph) []*GSig {
	out := make([]*GSig, len(u))
	for i, g := range u {
		out[i] = NewGSig(g)
	}
	return out
}

// LambdaVUncertainSig is LambdaVUncertain over precomputed signatures: the
// Def. 10 bipartite graph is built from the per-label vertex lists instead of
// scanning every candidate label of every (u, v) pair.
func LambdaVUncertainSig(qs *QSig, gs *GSig) int {
	bp := matching.NewBipartite(qs.NumV, gs.NumV)
	addLambdaVEdges(bp, qs, gs)
	return bp.MaxMatchingSize()
}

// addLambdaVEdges populates the Def. 10 vertex-label compatibility graph by
// integer id. A g-vertex may be added twice for one q-vertex (once via its
// concrete label, once via a wildcard candidate); duplicate edges do not
// change the maximum matching size.
func addLambdaVEdges(bp *matching.Bipartite, qs *QSig, gs *GSig) {
	for u, qid := range qs.VIDs {
		if qid == graph.WildcardID {
			for v := 0; v < gs.NumV; v++ {
				bp.AddEdge(u, v)
			}
			continue
		}
		for _, v := range gs.byLabel[qid] {
			bp.AddEdge(u, int(v))
		}
		for _, v := range gs.wildVerts {
			bp.AddEdge(u, int(v))
		}
	}
}

// LambdaVUncertainSigScratch is LambdaVUncertainSig reusing a caller-provided
// bipartite scratch, for allocation-free pruning inside pair loops.
func LambdaVUncertainSigScratch(bp *matching.Bipartite, qs *QSig, gs *GSig) int {
	bp.Reset(qs.NumV, gs.NumV)
	addLambdaVEdges(bp, qs, gs)
	return bp.MaxMatchingSize()
}

// CSSLowerBoundUncertainSigScratch is CSSLowerBoundUncertainSig reusing a
// caller-provided bipartite scratch.
func CSSLowerBoundUncertainSigScratch(bp *matching.Bipartite, qs *QSig, gs *GSig) int {
	lb := CSSConstantSig(qs, gs) - LambdaVUncertainSigScratch(bp, qs, gs)
	if lb < 0 {
		lb = 0
	}
	return lb
}

// LambdaEUncertainSig is LambdaEUncertain over precomputed signatures: a
// two-pointer merge of the sorted edge-label id vectors.
func LambdaEUncertainSig(qs *QSig, gs *GSig) int {
	return multisetCommonIDs(qs.ELabels, qs.EWilds, qs.NumE, gs.ELabels, gs.EWilds, gs.NumE)
}

// CSSConstantSig is CSSConstant over precomputed signatures.
func CSSConstantSig(qs *QSig, gs *GSig) int {
	lamE := LambdaEUncertainSig(qs, gs)
	oriented := func(small, big []int, bigV, bigE int) int {
		return bigV + bigE - lamE + (degreeDistanceSeq(small, big)+1)/2
	}
	switch {
	case qs.NumV < gs.NumV:
		return oriented(qs.DegSeq, gs.DegSeq, gs.NumV, gs.NumE)
	case qs.NumV > gs.NumV:
		return oriented(gs.DegSeq, qs.DegSeq, qs.NumV, qs.NumE)
	default:
		a := oriented(qs.DegSeq, gs.DegSeq, gs.NumV, gs.NumE)
		if b := oriented(gs.DegSeq, qs.DegSeq, qs.NumV, qs.NumE); b > a {
			return b
		}
		return a
	}
}

// CSSLowerBoundUncertainSig is CSSLowerBoundUncertain over precomputed
// signatures (Theorem 3).
func CSSLowerBoundUncertainSig(qs *QSig, gs *GSig) int {
	lb := CSSConstantSig(qs, gs) - LambdaVUncertainSig(qs, gs)
	if lb < 0 {
		lb = 0
	}
	return lb
}

// ExpectedCommonLabelsSig is ExpectedCommonLabels over precomputed
// signatures. It iterates the cached (vertex, label) records in the same
// order as the original, so the floating-point sum is bit-identical; label
// membership is a bitset probe on the query's concrete vertex labels.
func ExpectedCommonLabelsSig(qs *QSig, gs *GSig) float64 {
	ez := 0.0
	for i := range gs.flat {
		fl := &gs.flat[i]
		if fl.id == graph.WildcardID || qs.VSet.Has(fl.id) {
			ez += fl.p
		}
	}
	return ez
}

// SimilarityUpperBoundSig is SimilarityUpperBound over precomputed
// signatures (Theorem 4).
func SimilarityUpperBoundSig(qs *QSig, gs *GSig, tau int) float64 {
	mass := gs.Mass
	denom := float64(CSSConstantSig(qs, gs) - tau - qs.VWilds)
	if denom <= 0 {
		return mass
	}
	ub := ExpectedCommonLabelsSig(qs, gs) / denom
	if ub > mass {
		return mass
	}
	if ub < 0 {
		return 0
	}
	return ub
}

// GroupUpperBoundSig is GroupUpperBound with the group's conditioned graph
// already summarised as gs; mass is the group's probability mass.
func GroupUpperBoundSig(qs *QSig, gs *GSig, mass float64, tau int) float64 {
	if CSSLowerBoundUncertainSig(qs, gs) > tau {
		return 0
	}
	ub := SimilarityUpperBoundSig(qs, gs, tau)
	if ub > mass {
		return mass
	}
	return ub
}

// TotalProbabilityUpperBoundSig is TotalProbabilityUpperBound over
// precomputed signatures; the per-condition sub-signatures are memoized on
// gs, so repeated evaluations of the same graph build them once.
func TotalProbabilityUpperBoundSig(qs *QSig, gs *GSig, tau int) float64 {
	var bp matching.Bipartite
	return totalProbabilityUB(&bp, qs, gs, tau, CSSLowerBoundUncertainSigScratch(&bp, qs, gs))
}

// totalProbabilityUB is the scratch-reusing core of the tight probabilistic
// bound: cssLB must be the pair's CSS lower bound (Theorem 3).
func totalProbabilityUB(bp *matching.Bipartite, qs *QSig, gs *GSig, tau, cssLB int) float64 {
	if cssLB > tau {
		return 0
	}
	conds := gs.conditioned()
	if conds == nil {
		return SimilarityUpperBoundSig(qs, gs, tau)
	}
	ub := 0.0
	for i := range conds {
		cs := conds[i].gs
		if CSSLowerBoundUncertainSigScratch(bp, qs, cs) > tau {
			continue
		}
		b := SimilarityUpperBoundSig(qs, cs, tau)
		if b > conds[i].mass {
			b = conds[i].mass
		}
		ub += b
	}
	if plain := SimilarityUpperBoundSig(qs, gs, tau); plain < ub {
		return plain
	}
	return ub
}

// PairVerifier caches the world-invariant parts of the certain×certain CSS
// bound (Theorem 1) between a query and the possible worlds of one uncertain
// graph. Every world shares the uncertain graph's vertex count, edge set and
// edge labels — only vertex labels vary — so λE and the degree-distance term
// are constants of the pair and only λV must be recomputed per world. The
// zero value is ready to use after Reset; the embedded matching scratch is
// reused across worlds and pairs, so a PairVerifier must not be shared
// between goroutines.
type PairVerifier struct {
	qs *QSig
	// constQ is the oriented CSS constant with q as the smaller graph
	// (bound = constQ − λV); constG with the world as the smaller graph.
	constQ, constG int
	gNumV          int
	bp             *matching.Bipartite
}

// Reset reconfigures the verifier for a new (q, g) pair, retaining scratch
// allocations. The worlds later passed to WorldLowerBound must come from gs's
// graph (or a conditioned group of it — conditioning preserves structure).
func (pv *PairVerifier) Reset(qs *QSig, gs *GSig) {
	lamE := LambdaEUncertainSig(qs, gs)
	pv.qs = qs
	pv.gNumV = gs.NumV
	// degreeDistanceSeq requires the smaller sequence first; only the
	// orientation(s) WorldLowerBound will read are computed.
	pv.constQ, pv.constG = 0, 0
	if qs.NumV <= gs.NumV {
		pv.constQ = gs.NumV + gs.NumE - lamE + (degreeDistanceSeq(qs.DegSeq, gs.DegSeq)+1)/2
	}
	if gs.NumV <= qs.NumV {
		pv.constG = qs.NumV + qs.NumE - lamE + (degreeDistanceSeq(gs.DegSeq, qs.DegSeq)+1)/2
	}
	if pv.bp == nil {
		pv.bp = matching.NewBipartite(qs.NumV, gs.NumV)
	}
}

// WorldLowerBound returns CSSLowerBound(q, w) for a possible world w of the
// pair's uncertain graph, recomputing only the λV matching — by integer
// equality against the world's precomputed label-id array, not string
// comparison.
func (pv *PairVerifier) WorldLowerBound(w *graph.Graph) int {
	qs := pv.qs
	bp := pv.bp
	bp.Reset(qs.NumV, pv.gNumV)
	wids := w.VertexLabelIDs()
	for u, qid := range qs.VIDs {
		if qid == graph.WildcardID {
			for v := 0; v < pv.gNumV; v++ {
				bp.AddEdge(u, v)
			}
			continue
		}
		for v, wid := range wids {
			if wid == qid || wid == graph.WildcardID {
				bp.AddEdge(u, v)
			}
		}
	}
	lamV := bp.MaxMatchingSize()
	clamp := func(x int) int {
		if x < 0 {
			return 0
		}
		return x
	}
	switch {
	case qs.NumV < pv.gNumV:
		return clamp(pv.constQ - lamV)
	case qs.NumV > pv.gNumV:
		return clamp(pv.constG - lamV)
	default:
		a := clamp(pv.constQ - lamV)
		if b := clamp(pv.constG - lamV); b > a {
			return b
		}
		return a
	}
}
