package filter

import (
	"math/rand"
	"testing"

	"simjoin/internal/graph"
	"simjoin/internal/matching"
	"simjoin/internal/ugraph"
)

// This file pins the dictionary-encoded kernels to the original string
// implementations: every bound that now compares interned label ids (or
// merges sorted id-count vectors, or probes a label bitset) must return
// values bit-identical to a reference that compares the label strings with
// graph.LabelsMatch. The references below are verbatim copies of the
// pre-dictionary implementations; the tests drive randomized certain×certain
// and certain×uncertain pairs through both and require exact equality —
// including float64 equality for the probabilistic bounds, whose summation
// order the id kernels must preserve.

// ── String reference implementations ────────────────────────────────────────

func refLambdaV(a, b *graph.Graph) int {
	bp := matching.NewBipartite(a.NumVertices(), b.NumVertices())
	for u := 0; u < a.NumVertices(); u++ {
		for v := 0; v < b.NumVertices(); v++ {
			if graph.LabelsMatch(a.VertexLabel(u), b.VertexLabel(v)) {
				bp.AddEdge(u, v)
			}
		}
	}
	return bp.MaxMatchingSize()
}

func refLambdaVUncertain(q *graph.Graph, g *ugraph.Graph) int {
	bp := matching.NewBipartite(q.NumVertices(), g.NumVertices())
	for u := 0; u < q.NumVertices(); u++ {
		ql := q.VertexLabel(u)
		for v := 0; v < g.NumVertices(); v++ {
			for _, l := range g.Labels(v) {
				if graph.LabelsMatch(ql, l.Name) {
					bp.AddEdge(u, v)
					break
				}
			}
		}
	}
	return bp.MaxMatchingSize()
}

func refMultisetCommon(la map[string]int, wa, totalA int, lb map[string]int, wb, totalB int) int {
	common := 0
	for l, ca := range la {
		if cb := lb[l]; cb < ca {
			common += cb
		} else {
			common += ca
		}
	}
	leftA := totalA - wa - common
	leftB := totalB - wb - common
	wa2, wb2 := wa, wb
	m := min(wa2, leftB+wb2)
	common += m
	usedBWild := max(0, m-leftB)
	wb2 -= usedBWild
	common += min(wb2, leftA)
	if common > totalA {
		common = totalA
	}
	if common > totalB {
		common = totalB
	}
	return common
}

func refLambdaE(a, b *graph.Graph) int {
	la, wa := a.EdgeLabelMultiset()
	lb, wb := b.EdgeLabelMultiset()
	return refMultisetCommon(la, wa, a.NumEdges(), lb, wb, b.NumEdges())
}

func refLambdaEUncertain(q *graph.Graph, g *ugraph.Graph) int {
	la, wa := q.EdgeLabelMultiset()
	lb, wb := g.EdgeLabelMultiset()
	return refMultisetCommon(la, wa, q.NumEdges(), lb, wb, g.NumEdges())
}

func refCSSLowerBound(q, g *graph.Graph) int {
	lamV := refLambdaV(q, g)
	lamE := refLambdaE(q, g)
	oriented := func(small, big *graph.Graph) int {
		dif := degreeDistanceSeq(small.DegreeSequence(), big.DegreeSequence())
		lb := big.NumVertices() + big.NumEdges() - lamE + (dif+1)/2 - lamV
		if lb < 0 {
			lb = 0
		}
		return lb
	}
	switch {
	case q.NumVertices() < g.NumVertices():
		return oriented(q, g)
	case q.NumVertices() > g.NumVertices():
		return oriented(g, q)
	default:
		a := oriented(q, g)
		if b := oriented(g, q); b > a {
			return b
		}
		return a
	}
}

func refCSSConstant(q *graph.Graph, g *ugraph.Graph) int {
	lamE := refLambdaEUncertain(q, g)
	qd, gd := q.DegreeSequence(), g.DegreeSequence()
	oriented := func(small, big []int, bigV, bigE int) int {
		return bigV + bigE - lamE + (degreeDistanceSeq(small, big)+1)/2
	}
	switch {
	case q.NumVertices() < g.NumVertices():
		return oriented(qd, gd, g.NumVertices(), g.NumEdges())
	case q.NumVertices() > g.NumVertices():
		return oriented(gd, qd, q.NumVertices(), q.NumEdges())
	default:
		a := oriented(qd, gd, g.NumVertices(), g.NumEdges())
		if b := oriented(gd, qd, q.NumVertices(), q.NumEdges()); b > a {
			return b
		}
		return a
	}
}

func refCSSLowerBoundUncertain(q *graph.Graph, g *ugraph.Graph) int {
	lb := refCSSConstant(q, g) - refLambdaVUncertain(q, g)
	if lb < 0 {
		lb = 0
	}
	return lb
}

func refExpectedCommonLabels(q *graph.Graph, g *ugraph.Graph) float64 {
	qSet := make(map[string]bool)
	wilds := 0
	for _, l := range q.VertexLabels() {
		if graph.IsWildcard(l) {
			wilds++
		} else {
			qSet[l] = true
		}
	}
	_ = wilds
	ez := 0.0
	for v := 0; v < g.NumVertices(); v++ {
		for _, l := range g.Labels(v) {
			if graph.IsWildcard(l.Name) || qSet[l.Name] {
				ez += l.P
			}
		}
	}
	return ez
}

func refQueryWildcards(q *graph.Graph) int {
	w := 0
	for _, l := range q.VertexLabels() {
		if graph.IsWildcard(l) {
			w++
		}
	}
	return w
}

func refSimilarityUpperBound(q *graph.Graph, g *ugraph.Graph, tau int) float64 {
	mass := g.TotalMass()
	denom := float64(refCSSConstant(q, g) - tau - refQueryWildcards(q))
	if denom <= 0 {
		return mass
	}
	ub := refExpectedCommonLabels(q, g) / denom
	if ub > mass {
		return mass
	}
	if ub < 0 {
		return 0
	}
	return ub
}

func refTotalProbabilityUpperBound(q *graph.Graph, g *ugraph.Graph, tau int) float64 {
	if refCSSLowerBoundUncertain(q, g) > tau {
		return 0
	}
	v := g.SplitVertex()
	if v < 0 {
		return refSimilarityUpperBound(q, g, tau)
	}
	ub := 0.0
	for i := range g.Labels(v) {
		cond, mass := g.Condition(v, []int{i})
		if refCSSLowerBoundUncertain(q, cond) > tau {
			continue
		}
		b := refSimilarityUpperBound(q, cond, tau)
		if b > mass {
			b = mass
		}
		ub += b
	}
	if plain := refSimilarityUpperBound(q, g, tau); plain < ub {
		return plain
	}
	return ub
}

func refGroupUpperBound(q *graph.Graph, gr ugraph.Group, tau int) float64 {
	if refCSSLowerBoundUncertain(q, gr.G) > tau {
		return 0
	}
	ub := refSimilarityUpperBound(q, gr.G, tau)
	if ub > gr.Mass {
		return gr.Mass
	}
	return ub
}

// String references for the certain-graph baseline filters.

func refLMLowerBound(q, g *graph.Graph) int {
	lb := max(q.NumVertices(), g.NumVertices()) - refLambdaV(q, g) +
		max(q.NumEdges(), g.NumEdges()) - refLambdaE(q, g)
	if lb < 0 {
		lb = 0
	}
	return lb
}

type refStar struct {
	root   string
	leaves []string
}

func refStars(g *graph.Graph) []refStar {
	out := make([]refStar, g.NumVertices())
	for v := range out {
		out[v].root = g.VertexLabel(v)
	}
	for _, e := range g.Edges() {
		out[e.From].leaves = append(out[e.From].leaves, g.VertexLabel(e.To))
		out[e.To].leaves = append(out[e.To].leaves, g.VertexLabel(e.From))
	}
	return out
}

func refSortedCommon(a, b []string) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	bp := matching.NewBipartite(len(a), len(b))
	for i, la := range a {
		for j, lb := range b {
			if graph.LabelsMatch(la, lb) {
				bp.AddEdge(i, j)
			}
		}
	}
	return bp.MaxMatchingSize()
}

func refStarDistance(a, b refStar) int {
	d := 0
	if !graph.LabelsMatch(a.root, b.root) {
		d++
	}
	d += abs(len(a.leaves) - len(b.leaves))
	d += max(len(a.leaves), len(b.leaves)) - refSortedCommon(a.leaves, b.leaves)
	return d
}

func refCStarLowerBound(q, g *graph.Graph) int {
	sq, sg := refStars(q), refStars(g)
	n := max(len(sq), len(sg))
	if n == 0 {
		return 0
	}
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			var d int
			switch {
			case i < len(sq) && j < len(sg):
				d = refStarDistance(sq[i], sg[j])
			case i < len(sq):
				d = 1 + 2*len(sq[i].leaves)
			case j < len(sg):
				d = 1 + 2*len(sg[j].leaves)
			}
			cost[i][j] = float64(d)
		}
	}
	total := matching.AssignmentLowerBound(cost)
	maxDeg := 1
	for _, d := range append(q.Degrees(), g.Degrees()...) {
		if d > maxDeg {
			maxDeg = d
		}
	}
	return int(total) / max(4, maxDeg+1)
}

func refPathGramLowerBound(q, g *graph.Graph) int {
	bp := matching.NewBipartite(q.NumEdges(), g.NumEdges())
	for i, qe := range q.Edges() {
		for j, ge := range g.Edges() {
			if graph.LabelsMatch(qe.Label, ge.Label) &&
				graph.LabelsMatch(q.VertexLabel(qe.From), g.VertexLabel(ge.From)) &&
				graph.LabelsMatch(q.VertexLabel(qe.To), g.VertexLabel(ge.To)) {
				bp.AddEdge(i, j)
			}
		}
	}
	common := bp.MaxMatchingSize()
	diff := max(q.NumEdges(), g.NumEdges()) - common
	if diff <= 0 {
		return 0
	}
	maxDeg := 1
	for _, d := range append(q.Degrees(), g.Degrees()...) {
		if d > maxDeg {
			maxDeg = d
		}
	}
	return (diff + maxDeg - 1) / maxDeg
}

func refEdgeCompatible(q *graph.Graph, qe graph.Edge, g *graph.Graph, ge graph.Edge) bool {
	return graph.LabelsMatch(qe.Label, ge.Label) &&
		graph.LabelsMatch(q.VertexLabel(qe.From), g.VertexLabel(ge.From)) &&
		graph.LabelsMatch(q.VertexLabel(qe.To), g.VertexLabel(ge.To))
}

func refParsLowerBound(q, g *graph.Graph) int {
	missing := 0
	for _, frag := range partitionEdges(q) {
		e := frag[0]
		ok := false
	scan:
		for _, ge := range g.Edges() {
			if !refEdgeCompatible(q, e, g, ge) {
				continue
			}
			if len(frag) == 1 {
				ok = true
				break
			}
			f := frag[1]
			for _, gf := range g.Edges() {
				if !refEdgeCompatible(q, f, g, gf) {
					continue
				}
				if identificationPreserved(
					[4]int{e.From, e.To, f.From, f.To},
					[4]int{ge.From, ge.To, gf.From, gf.To}) {
					ok = true
					break scan
				}
			}
		}
		if !ok {
			missing++
		}
	}
	return missing
}

func refSegosLowerBound(q, g *graph.Graph, tau int) int {
	lb := CountLowerBound(q, g)
	if lb > tau {
		return lb
	}
	if s := refCStarLowerBound(q, g); s > lb {
		lb = s
	}
	return lb
}

// ── Generators ──────────────────────────────────────────────────────────────

// equivCertain draws a random certain graph with several distinct wildcard
// spellings, which the dictionary collapses to one reserved id — exactly the
// case where an unsound id mapping would diverge from LabelsMatch.
func equivCertain(rng *rand.Rand, n, e int) *graph.Graph {
	labels := []string{"A", "B", "C", "D", "?x", "?y", "?"}
	elabels := []string{"p", "q", "r", "?e"}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(labels[rng.Intn(len(labels))])
	}
	for t := 0; t < e*3 && g.NumEdges() < e; t++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, elabels[rng.Intn(len(elabels))])
	}
	return g
}

// equivUncertain draws a random uncertain graph with mixed wildcard
// spellings among the candidate labels.
func equivUncertain(rng *rand.Rand, n, e, maxLabels int) *ugraph.Graph {
	names := []string{"A", "B", "C", "D", "E", "?x", "?y"}
	g := ugraph.New(n)
	for i := 0; i < n; i++ {
		k := 1 + rng.Intn(maxLabels)
		perm := rng.Perm(len(names))[:k]
		var ls []ugraph.Label
		rest := 1.0
		for j, pi := range perm {
			p := rest
			if j < k-1 {
				p = rest * (0.3 + 0.4*rng.Float64())
			}
			ls = append(ls, ugraph.Label{Name: names[pi], P: p})
			rest -= p
		}
		g.AddVertex(ls...)
	}
	elabels := []string{"p", "q", "?e"}
	for t := 0; t < e*3 && g.NumEdges() < e; t++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		_ = g.AddEdge(u, v, elabels[rng.Intn(len(elabels))])
	}
	return g
}

// ── Equivalence properties ──────────────────────────────────────────────────

func TestCertainKernelsMatchStringReference(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for it := 0; it < 200; it++ {
		q := equivCertain(rng, 2+rng.Intn(6), rng.Intn(10))
		g := equivCertain(rng, 2+rng.Intn(6), rng.Intn(10))
		tau := rng.Intn(4)
		checks := []struct {
			name      string
			got, want int
		}{
			{"LambdaV", LambdaV(q, g), refLambdaV(q, g)},
			{"LambdaE", LambdaE(q, g), refLambdaE(q, g)},
			{"CSSLowerBound", CSSLowerBound(q, g), refCSSLowerBound(q, g)},
			{"LMLowerBound", LMLowerBound(q, g), refLMLowerBound(q, g)},
			{"CStarLowerBound", CStarLowerBound(q, g), refCStarLowerBound(q, g)},
			{"PathGramLowerBound", PathGramLowerBound(q, g), refPathGramLowerBound(q, g)},
			{"ParsLowerBound", ParsLowerBound(q, g), refParsLowerBound(q, g)},
			{"SegosLowerBound", SegosLowerBound(q, g, tau), refSegosLowerBound(q, g, tau)},
		}
		for _, c := range checks {
			if c.got != c.want {
				t.Fatalf("iteration %d: %s = %d, string reference = %d\nq: %v\ng: %v",
					it, c.name, c.got, c.want, q, g)
			}
		}
	}
}

func TestUncertainKernelsMatchStringReference(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for it := 0; it < 150; it++ {
		q := equivCertain(rng, 2+rng.Intn(5), rng.Intn(8))
		g := equivUncertain(rng, 2+rng.Intn(5), rng.Intn(8), 3)
		tau := rng.Intn(4)
		qs, gs := NewQSig(q), NewGSig(g)

		intChecks := []struct {
			name      string
			got, want int
		}{
			{"LambdaVUncertain", LambdaVUncertainSig(qs, gs), refLambdaVUncertain(q, g)},
			{"LambdaEUncertain", LambdaEUncertainSig(qs, gs), refLambdaEUncertain(q, g)},
			{"CSSConstant", CSSConstantSig(qs, gs), refCSSConstant(q, g)},
			{"CSSLowerBoundUncertain", CSSLowerBoundUncertainSig(qs, gs), refCSSLowerBoundUncertain(q, g)},
		}
		for _, c := range intChecks {
			if c.got != c.want {
				t.Fatalf("iteration %d: %s = %d, string reference = %d\nq: %v\ng: %v",
					it, c.name, c.got, c.want, q, g)
			}
		}

		floatChecks := []struct {
			name      string
			got, want float64
		}{
			{"ExpectedCommonLabels", ExpectedCommonLabelsSig(qs, gs), refExpectedCommonLabels(q, g)},
			{"SimilarityUpperBound", SimilarityUpperBoundSig(qs, gs, tau), refSimilarityUpperBound(q, g, tau)},
			{"TotalProbabilityUpperBound", TotalProbabilityUpperBoundSig(qs, gs, tau), refTotalProbabilityUpperBound(q, g, tau)},
		}
		for _, c := range floatChecks {
			if c.got != c.want { // bit-identical, not approximately equal
				t.Fatalf("iteration %d: %s = %v, string reference = %v\nq: %v\ng: %v",
					it, c.name, c.got, c.want, q, g)
			}
		}

		for _, gr := range g.PartitionWorlds(3, nil) {
			got := GroupUpperBoundSig(qs, NewGSig(gr.G), gr.Mass, tau)
			want := refGroupUpperBound(q, gr, tau)
			if got != want {
				t.Fatalf("iteration %d: GroupUpperBound = %v, string reference = %v", it, got, want)
			}
		}
	}
}

func TestWorldLowerBoundMatchesStringReference(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for it := 0; it < 60; it++ {
		q := equivCertain(rng, 2+rng.Intn(4), rng.Intn(6))
		g := equivUncertain(rng, 2+rng.Intn(4), rng.Intn(6), 2)
		qs, gs := NewQSig(q), NewGSig(g)
		var pv PairVerifier
		pv.Reset(qs, gs)
		g.Worlds(func(w *graph.Graph, _ float64) bool {
			if got, want := pv.WorldLowerBound(w), refCSSLowerBound(q, w); got != want {
				t.Fatalf("iteration %d: WorldLowerBound = %d, string CSSLowerBound = %d\nq: %v\nw: %v",
					it, got, want, q, w)
			}
			return true
		})
	}
}

// TestRelaxedBaselineChainMatchesReference drives the registered baseline
// bounds exactly as the engine does — against the memoized relaxation — and
// checks each prune decision against the string reference on the same
// relaxed graph.
func TestRelaxedBaselineChainMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	refs := map[string]func(q, g *graph.Graph, tau int) int{
		"lm":        func(q, g *graph.Graph, _ int) int { return refLMLowerBound(q, g) },
		"count":     func(q, g *graph.Graph, _ int) int { return CountLowerBound(q, g) },
		"cstar":     func(q, g *graph.Graph, _ int) int { return refCStarLowerBound(q, g) },
		"path-gram": func(q, g *graph.Graph, _ int) int { return refPathGramLowerBound(q, g) },
		"pars":      func(q, g *graph.Graph, _ int) int { return refParsLowerBound(q, g) },
		"segos":     refSegosLowerBound,
	}
	var sc Scratch
	for it := 0; it < 60; it++ {
		q := equivCertain(rng, 2+rng.Intn(5), rng.Intn(8))
		g := equivUncertain(rng, 2+rng.Intn(5), rng.Intn(8), 3)
		tau := rng.Intn(3)
		qs, gs := NewQSig(q), NewGSig(g)
		for name, ref := range refs {
			pc := PairContext{QS: qs, GS: gs, Tau: tau, Alpha: 0.5, GroupCount: 4, Scratch: &sc}
			got := MustBound(name).Apply(&pc).Pruned
			want := ref(q, gs.Relaxed(), tau) > tau
			if got != want {
				t.Fatalf("iteration %d: bound %q pruned = %v, string reference = %v", it, name, got, want)
			}
		}
	}
}
