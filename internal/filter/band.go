package filter

// MinHash-style banding over the concrete-label bitsets.
//
// The sharded join (internal/shard, DESIGN.md §15) partitions both workload
// sides by their concrete vertex-label sets: each side's signature bitset
// (QSig.VSet, or the union candidate-label set of an uncertain graph) is
// hashed into a small number of band keys — band b's key is the minimum of a
// per-band hash over the set's label ids — and the fold of all band keys
// picks the owning shard. Graphs with identical label sets land on identical
// keys in every band, so template-mates colocate; graphs sharing only some
// labels still collide in individual bands, which the in-shard band tables
// exploit for candidate probing.
//
// The kernels here are pure functions of the label-id set, so query and
// uncertain signatures band identically and a shard plan can be rebuilt from
// either side alone (the resident service partitions only the uncertain
// side).

import (
	"math/bits"

	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

// EmptyBandKey is the band key of a signature with no concrete labels (every
// vertex wildcarded): the minimum over the empty set. All-wildcard graphs
// share it in every band, so they land in one bucket and one shard.
const EmptyBandKey = ^uint64(0)

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// bandSeed derives the hash seed of band b; distinct bands must hash the same
// label id to unrelated values or every band would elect the same minimum.
func bandSeed(b int) uint64 {
	return mix64(uint64(b+1) * 0x9e3779b97f4a7c15)
}

// AppendBandKeys appends the `bands` MinHash band keys of the concrete-label
// set to dst and returns the extended slice. Key b is min over the set's
// label ids of mix64(id ^ seed_b); an empty set yields EmptyBandKey in every
// band.
func AppendBandKeys(dst []uint64, set *graph.LabelSet, bands int) []uint64 {
	words := set.Words()
	for b := 0; b < bands; b++ {
		seed := bandSeed(b)
		key := uint64(EmptyBandKey)
		for wi, w := range words {
			for ; w != 0; w &= w - 1 {
				id := uint64(wi)<<6 + uint64(bits.TrailingZeros64(w))
				if h := mix64(id ^ seed); h < key {
					key = h
				}
			}
		}
		dst = append(dst, key)
	}
	return dst
}

// BandOwner folds a signature's band keys into its owning shard in
// [0, shards). Identical key vectors always fold to the same owner.
func BandOwner(keys []uint64, shards int) int {
	h := uint64(0x517cc1b727220a95)
	for _, k := range keys {
		h = mix64(h ^ k)
	}
	return int(h % uint64(shards))
}

// UnionConcreteLabels fills set (cleared on entry) with the union of g's
// concrete candidate vertex labels and returns the number of vertices that
// carry a wildcard candidate — the same per-graph summary core.Index computes
// for its prescreens, shared here so the shard planner cannot drift from it.
func UnionConcreteLabels(g *ugraph.Graph, set *graph.LabelSet) (wilds int) {
	set.Reset()
	for v := 0; v < g.NumVertices(); v++ {
		wild := false
		for _, id := range g.LabelIDs(v) {
			if id == graph.WildcardID {
				wild = true
			} else {
				set.Add(id)
			}
		}
		if wild {
			wilds++
		}
	}
	return wilds
}

// LabelOverlapScreen applies the λV multiset-overlap prescreen shared by the
// index-backed and sharded candidate generators: a generous upper bound on
// the vertex-label overlap of q and g, pruning the pair when even that bound
// leaves more than τ unmatched vertices on the larger side (the LM filter —
// and hence the CSS bound — would prune it anyway, so the screen is sound for
// Def. 7). gSet is the union of g's concrete candidate labels, gWilds the
// number of g-vertices with a wildcard candidate, gNumV its vertex count.
// Returns true when the pair survives.
func LabelOverlapScreen(qs *QSig, gSet *graph.LabelSet, gWilds, gNumV, tau int) bool {
	overlap := qs.VWilds // every wildcard q-vertex can match something
	if qs.VSet.Intersects(gSet) {
		for _, lc := range qs.VLabels {
			if gSet.Has(lc.ID) {
				overlap += int(lc.N)
			}
		}
	}
	overlap += gWilds // wildcard g-vertices absorb leftover q-vertices
	maxV := qs.NumV
	if gNumV > maxV {
		maxV = gNumV
	}
	if overlap > maxV {
		overlap = maxV
	}
	return maxV-overlap <= tau
}
