package matching

import "math"

// Hungarian solves the minimum-cost assignment problem on an n×m cost matrix
// with n ≤ m: each row is assigned to exactly one column, no column is used
// twice, and the total cost is minimised. It returns the assignment (rowTo[i]
// is the column assigned to row i) and the optimal total cost.
//
// The implementation is the O(n²·m) Jonker-style shortest augmenting path
// variant with potentials. Costs must be finite; math.Inf(1) entries are
// allowed to forbid an assignment as long as a finite perfect assignment
// exists.
//
// Hungarian panics if n > m; pad the matrix with zero-cost dummy columns or
// transpose it at the call site.
func Hungarian(cost [][]float64) (rowTo []int, total float64) {
	n := len(cost)
	if n == 0 {
		return nil, 0
	}
	m := len(cost[0])
	if n > m {
		panic("matching: Hungarian requires rows <= cols")
	}

	// Potentials u (rows, 1-based) and v (columns, 1-based); way[j] is the
	// previous column on the shortest augmenting path; p[j] is the row
	// assigned to column j (0 means unassigned).
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1)
	way := make([]int, m+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := -1
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	rowTo = make([]int, n)
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			rowTo[p[j]-1] = j - 1
		}
	}
	for i := 0; i < n; i++ {
		total += cost[i][rowTo[i]]
	}
	return rowTo, total
}

// AssignmentLowerBound returns only the optimal total cost of the assignment,
// a convenience for heuristics that do not need the pairing itself.
func AssignmentLowerBound(cost [][]float64) float64 {
	_, total := Hungarian(cost)
	return total
}
