// Package matching implements the combinatorial matching algorithms the
// paper's bounds rely on: maximum-cardinality bipartite matching
// (Hopcroft–Karp), used to evaluate the vertex-label bipartite graph of
// Def. 10, and the Hungarian algorithm for minimum-cost assignment, used by
// the bipartite heuristic that guides exact GED search (§8.2, [17]).
package matching

// inf is larger than any possible BFS layer index.
const inf = int(^uint(0) >> 1)

// Bipartite is a bipartite graph on nLeft + nRight vertices with adjacency
// from left vertices to right vertices. A Bipartite may be reused across
// matchings via Reset, which retains the adjacency and matching buffers.
type Bipartite struct {
	nLeft, nRight int
	adj           [][]int

	// Matching scratch, reused across MaxMatching calls.
	matchL, matchR, dist, queue []int
}

// NewBipartite returns an empty bipartite graph with the given part sizes.
func NewBipartite(nLeft, nRight int) *Bipartite {
	return &Bipartite{nLeft: nLeft, nRight: nRight, adj: make([][]int, nLeft)}
}

// Reset clears all edges and resizes the parts, retaining allocated
// capacity so a Bipartite can be reused in hot loops without reallocating
// adjacency lists.
func (b *Bipartite) Reset(nLeft, nRight int) {
	if nLeft <= cap(b.adj) {
		b.adj = b.adj[:nLeft]
	} else {
		b.adj = append(b.adj[:cap(b.adj)], make([][]int, nLeft-cap(b.adj))...)
	}
	for i := range b.adj {
		b.adj[i] = b.adj[i][:0]
	}
	b.nLeft, b.nRight = nLeft, nRight
}

// AddEdge connects left vertex l to right vertex r. Out-of-range indices
// panic, since callers construct edges from validated graph data.
func (b *Bipartite) AddEdge(l, r int) {
	if l < 0 || l >= b.nLeft || r < 0 || r >= b.nRight {
		panic("matching: bipartite edge out of range")
	}
	b.adj[l] = append(b.adj[l], r)
}

// grow returns s resized to n, reusing capacity when possible.
func grow(s []int, n int) []int {
	if n <= cap(s) {
		return s[:n]
	}
	return make([]int, n)
}

// MaxMatching computes a maximum-cardinality matching with the Hopcroft–Karp
// algorithm in O(E·sqrt(V)). It returns the matching size and the pairing
// arrays: matchL[l] is the right vertex matched to l (or -1), and matchR[r]
// is the left vertex matched to r (or -1). The returned slices are owned by
// the Bipartite and remain valid only until its next MaxMatching or Reset
// call.
func (b *Bipartite) MaxMatching() (size int, matchL, matchR []int) {
	b.matchL = grow(b.matchL, b.nLeft)
	b.matchR = grow(b.matchR, b.nRight)
	b.dist = grow(b.dist, b.nLeft)
	b.queue = grow(b.queue, b.nLeft)
	matchL = b.matchL
	matchR = b.matchR
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	for b.bfs() {
		for l := 0; l < b.nLeft; l++ {
			if matchL[l] == -1 && b.augment(l) {
				size++
			}
		}
	}
	return size, matchL, matchR
}

// bfs builds the layered graph for the next Hopcroft–Karp phase. The queue is
// walked by head index (each left vertex enters at most once per phase, so
// the preallocated nLeft-capacity buffer never grows).
func (b *Bipartite) bfs() bool {
	queue := b.queue[:0]
	for l := 0; l < b.nLeft; l++ {
		if b.matchL[l] == -1 {
			b.dist[l] = 0
			queue = append(queue, l)
		} else {
			b.dist[l] = inf
		}
	}
	found := false
	for head := 0; head < len(queue); head++ {
		l := queue[head]
		for _, r := range b.adj[l] {
			l2 := b.matchR[r]
			if l2 == -1 {
				found = true
			} else if b.dist[l2] == inf {
				b.dist[l2] = b.dist[l] + 1
				queue = append(queue, l2)
			}
		}
	}
	return found
}

// augment searches the layered graph for an augmenting path from l.
func (b *Bipartite) augment(l int) bool {
	for _, r := range b.adj[l] {
		l2 := b.matchR[r]
		if l2 == -1 || (b.dist[l2] == b.dist[l]+1 && b.augment(l2)) {
			b.matchL[l] = r
			b.matchR[r] = l
			return true
		}
	}
	b.dist[l] = inf
	return false
}

// MaxMatchingSize is MaxMatching when only the cardinality is needed.
func (b *Bipartite) MaxMatchingSize() int {
	size, _, _ := b.MaxMatching()
	return size
}
