// Package matching implements the combinatorial matching algorithms the
// paper's bounds rely on: maximum-cardinality bipartite matching
// (Hopcroft–Karp), used to evaluate the vertex-label bipartite graph of
// Def. 10, and the Hungarian algorithm for minimum-cost assignment, used by
// the bipartite heuristic that guides exact GED search (§8.2, [17]).
package matching

// inf is larger than any possible BFS layer index.
const inf = int(^uint(0) >> 1)

// Bipartite is a bipartite graph on nLeft + nRight vertices with adjacency
// from left vertices to right vertices.
type Bipartite struct {
	nLeft, nRight int
	adj           [][]int
}

// NewBipartite returns an empty bipartite graph with the given part sizes.
func NewBipartite(nLeft, nRight int) *Bipartite {
	return &Bipartite{nLeft: nLeft, nRight: nRight, adj: make([][]int, nLeft)}
}

// AddEdge connects left vertex l to right vertex r. Out-of-range indices
// panic, since callers construct edges from validated graph data.
func (b *Bipartite) AddEdge(l, r int) {
	if l < 0 || l >= b.nLeft || r < 0 || r >= b.nRight {
		panic("matching: bipartite edge out of range")
	}
	b.adj[l] = append(b.adj[l], r)
}

// MaxMatching computes a maximum-cardinality matching with the Hopcroft–Karp
// algorithm in O(E·sqrt(V)). It returns the matching size and the pairing
// arrays: matchL[l] is the right vertex matched to l (or -1), and matchR[r]
// is the left vertex matched to r (or -1).
func (b *Bipartite) MaxMatching() (size int, matchL, matchR []int) {
	matchL = make([]int, b.nLeft)
	matchR = make([]int, b.nRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	dist := make([]int, b.nLeft)
	queue := make([]int, 0, b.nLeft)

	bfs := func() bool {
		queue = queue[:0]
		for l := 0; l < b.nLeft; l++ {
			if matchL[l] == -1 {
				dist[l] = 0
				queue = append(queue, l)
			} else {
				dist[l] = inf
			}
		}
		found := false
		for len(queue) > 0 {
			l := queue[0]
			queue = queue[1:]
			for _, r := range b.adj[l] {
				l2 := matchR[r]
				if l2 == -1 {
					found = true
				} else if dist[l2] == inf {
					dist[l2] = dist[l] + 1
					queue = append(queue, l2)
				}
			}
		}
		return found
	}

	var dfs func(l int) bool
	dfs = func(l int) bool {
		for _, r := range b.adj[l] {
			l2 := matchR[r]
			if l2 == -1 || (dist[l2] == dist[l]+1 && dfs(l2)) {
				matchL[l] = r
				matchR[r] = l
				return true
			}
		}
		dist[l] = inf
		return false
	}

	for bfs() {
		for l := 0; l < b.nLeft; l++ {
			if matchL[l] == -1 && dfs(l) {
				size++
			}
		}
	}
	return size, matchL, matchR
}

// MaxMatchingSize is MaxMatching when only the cardinality is needed.
func (b *Bipartite) MaxMatchingSize() int {
	size, _, _ := b.MaxMatching()
	return size
}
