package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxMatchingPerfect(t *testing.T) {
	b := NewBipartite(3, 3)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 1)
	b.AddEdge(2, 2)
	size, matchL, matchR := b.MaxMatching()
	if size != 3 {
		t.Fatalf("size = %d, want 3", size)
	}
	for l, r := range matchL {
		if r == -1 || matchR[r] != l {
			t.Fatalf("inconsistent matching: matchL=%v matchR=%v", matchL, matchR)
		}
	}
}

func TestMaxMatchingPartial(t *testing.T) {
	// Two left vertices compete for one right vertex.
	b := NewBipartite(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(1, 0)
	if size := b.MaxMatchingSize(); size != 1 {
		t.Fatalf("size = %d, want 1", size)
	}
}

func TestMaxMatchingEmpty(t *testing.T) {
	b := NewBipartite(0, 5)
	if size := b.MaxMatchingSize(); size != 0 {
		t.Fatalf("size = %d, want 0", size)
	}
	b2 := NewBipartite(4, 4)
	if size := b2.MaxMatchingSize(); size != 0 {
		t.Fatalf("no-edge size = %d, want 0", size)
	}
}

func TestMaxMatchingAugmenting(t *testing.T) {
	// Requires an augmenting path: greedy 0->0 blocks 1 unless 0 re-routes to 1.
	b := NewBipartite(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	if size := b.MaxMatchingSize(); size != 2 {
		t.Fatalf("size = %d, want 2", size)
	}
}

func TestAddEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range AddEdge did not panic")
		}
	}()
	NewBipartite(1, 1).AddEdge(0, 2)
}

// bruteMaxMatching computes maximum matching by exhaustive search for small
// instances, used as an oracle.
func bruteMaxMatching(nLeft, nRight int, adj [][]bool) int {
	usedR := make([]bool, nRight)
	var rec func(l int) int
	rec = func(l int) int {
		if l == nLeft {
			return 0
		}
		best := rec(l + 1) // skip l
		for r := 0; r < nRight; r++ {
			if adj[l][r] && !usedR[r] {
				usedR[r] = true
				if v := 1 + rec(l+1); v > best {
					best = v
				}
				usedR[r] = false
			}
		}
		return best
	}
	return rec(0)
}

func TestMaxMatchingAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		nL := 1 + rng.Intn(6)
		nR := 1 + rng.Intn(6)
		adj := make([][]bool, nL)
		b := NewBipartite(nL, nR)
		for l := 0; l < nL; l++ {
			adj[l] = make([]bool, nR)
			for r := 0; r < nR; r++ {
				if rng.Float64() < 0.4 {
					adj[l][r] = true
					b.AddEdge(l, r)
				}
			}
		}
		want := bruteMaxMatching(nL, nR, adj)
		if got := b.MaxMatchingSize(); got != want {
			t.Fatalf("iter %d: MaxMatching = %d, brute force = %d", iter, got, want)
		}
	}
}

func TestHungarianSimple(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	rowTo, total := Hungarian(cost)
	if total != 5 { // 1 + 2 + 2
		t.Fatalf("total = %v, want 5 (assignment %v)", total, rowTo)
	}
	seen := map[int]bool{}
	for _, c := range rowTo {
		if seen[c] {
			t.Fatalf("column %d assigned twice: %v", c, rowTo)
		}
		seen[c] = true
	}
}

func TestHungarianRectangular(t *testing.T) {
	cost := [][]float64{
		{10, 2, 8},
		{7, 3, 4},
	}
	_, total := Hungarian(cost)
	if total != 6 { // 2 + 4
		t.Fatalf("total = %v, want 6", total)
	}
}

func TestHungarianEmptyAndPanic(t *testing.T) {
	if rowTo, total := Hungarian(nil); rowTo != nil || total != 0 {
		t.Error("empty matrix should yield empty assignment")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("n > m did not panic")
		}
	}()
	Hungarian([][]float64{{1}, {2}})
}

// bruteAssignment finds the min-cost assignment exhaustively.
func bruteAssignment(cost [][]float64) float64 {
	n, m := len(cost), len(cost[0])
	used := make([]bool, m)
	var rec func(i int) float64
	rec = func(i int) float64 {
		if i == n {
			return 0
		}
		best := 1e18
		for j := 0; j < m; j++ {
			if !used[j] {
				used[j] = true
				if v := cost[i][j] + rec(i+1); v < best {
					best = v
				}
				used[j] = false
			}
		}
		return best
	}
	return rec(0)
}

func TestHungarianAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(5)
		m := n + rng.Intn(3)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = float64(rng.Intn(20))
			}
		}
		want := bruteAssignment(cost)
		if _, got := Hungarian(cost); got != want {
			t.Fatalf("iter %d: Hungarian = %v, brute = %v, cost=%v", iter, got, want, cost)
		}
	}
}

// Property: matching size never exceeds min(nLeft, nRight) and is monotone
// under adding edges.
func TestMaxMatchingProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nL := 1 + rng.Intn(8)
		nR := 1 + rng.Intn(8)
		b := NewBipartite(nL, nR)
		var pairs [][2]int
		for l := 0; l < nL; l++ {
			for r := 0; r < nR; r++ {
				if rng.Float64() < 0.3 {
					b.AddEdge(l, r)
					pairs = append(pairs, [2]int{l, r})
				}
			}
		}
		size := b.MaxMatchingSize()
		if size > nL || size > nR {
			return false
		}
		// Adding one more edge cannot decrease the matching.
		b2 := NewBipartite(nL, nR)
		for _, p := range pairs {
			b2.AddEdge(p[0], p[1])
		}
		b2.AddEdge(rng.Intn(nL), rng.Intn(nR))
		return b2.MaxMatchingSize() >= size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
