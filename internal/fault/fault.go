// Package fault provides named failpoints for fault-injection testing of the
// SimJ pipeline. A failpoint is a named hook compiled into production code
// (GED compute, possible-world enumeration, the SPARQL executor, the join's
// per-pair entry) that normally does nothing: when no failpoint is armed,
// Hit costs a single atomic pointer load. Tests — or an operator via the
// SIMJOIN_FAILPOINTS environment variable or the simjoin -failpoints flag —
// arm failpoints to inject panics, errors, delays, or budget exhaustion at
// precise places, optionally scoped to one activation key (e.g. one join
// pair) and capped to a firing count.
//
// Spec grammar (one failpoint):
//
//	name=kind[:delay][@key][#count]
//
//	kind   panic | error | budget | delay (delay requires :duration)
//	@key   fire only when the call site's key matches exactly (e.g. @3/7
//	       for join pair q=3, g=7; most sites pass an empty key)
//	#count fire at most count times, then stay armed but inert
//
// Several specs are combined with commas:
//
//	SIMJOIN_FAILPOINTS="ged.compute=error#2,core.pair=panic@3/7"
//
// The catalog of wired failpoints is documented in DESIGN.md ("Robustness
// architecture"); package core's fault-injection tests drive every one.
package fault

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the effect an armed failpoint has when hit.
type Kind int

const (
	// KindError makes Hit return an error wrapping ErrInjected.
	KindError Kind = iota
	// KindPanic makes Hit panic with a Panic value.
	KindPanic
	// KindDelay makes Hit sleep for the configured duration, then succeed.
	KindDelay
	// KindBudget makes Hit return an error wrapping ErrBudget; call sites
	// treat it exactly like their own budget cliff (A* state budget, world
	// budget), which is how the verdict-ladder fallbacks are tested.
	KindBudget
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindBudget:
		return "budget"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ErrInjected is the base error returned by error-kind failpoints.
var ErrInjected = errors.New("fault: injected error")

// ErrBudget is the base error returned by budget-kind failpoints; call sites
// map it onto their own budget-exhaustion path.
var ErrBudget = errors.New("fault: injected budget exhaustion")

// Panic is the value panic-kind failpoints panic with, so recover sites can
// recognise injected panics in quarantine records.
type Panic struct{ Name string }

// Error makes Panic usable as an error when recovered and wrapped.
func (p Panic) Error() string { return fmt.Sprintf("fault: injected panic at %s", p.Name) }

// point is one armed failpoint.
type point struct {
	name      string
	kind      Kind
	delay     time.Duration
	key       string       // fire only on this key; "" fires on any
	remaining atomic.Int64 // firings left; negative means unlimited
	hits      atomic.Int64

	// pairKey is key pre-parsed as a packed "qi/gi" join-pair key (see
	// PairKey), so HitPair call sites match without formatting a string;
	// hasPairKey reports whether key had that shape.
	pairKey    uint64
	hasPairKey bool
}

// registry holds the armed failpoints, copy-on-write: Hit loads the map
// without locking; Enable/Disable/Reset swap in a rebuilt copy under mu.
var (
	mu       sync.Mutex
	registry atomic.Pointer[map[string]*point]
)

// EnvVar names the environment variable read at package initialisation.
const EnvVar = "SIMJOIN_FAILPOINTS"

func init() {
	if spec := os.Getenv(EnvVar); spec != "" {
		if err := EnableAll(spec); err != nil {
			fmt.Fprintf(os.Stderr, "fault: ignoring invalid %s: %v\n", EnvVar, err)
		}
	}
}

// Enabled reports whether any failpoint is armed. Call sites use it to skip
// building activation keys on the hot path.
func Enabled() bool { return registry.Load() != nil }

// Hit triggers the named failpoint, if armed and matching key:
// panic-kind panics, delay-kind sleeps and returns nil, error- and
// budget-kind return an error wrapping ErrInjected or ErrBudget. With
// nothing armed it returns nil after one atomic load.
func Hit(name, key string) error {
	m := registry.Load()
	if m == nil {
		return nil
	}
	pt := (*m)[name]
	if pt == nil || (pt.key != "" && pt.key != key) {
		return nil
	}
	return pt.fire()
}

// PairKey packs a join pair's (qi, gi) indices into the integer activation
// key HitPair matches against: qi in the high 32 bits, gi in the low 32.
// Specs written with the string form "@qi/gi" parse onto the same packing, so
// the spec grammar is unchanged while hot-path call sites never format a
// string.
func PairKey(qi, gi int) uint64 {
	return uint64(uint32(qi))<<32 | uint64(uint32(gi))
}

// HitPair is Hit for call sites keyed by a (qi, gi) join pair packed with
// PairKey. A failpoint armed with a key that is not of the "qi/gi" form never
// matches here.
func HitPair(name string, key uint64) error {
	m := registry.Load()
	if m == nil {
		return nil
	}
	pt := (*m)[name]
	if pt == nil {
		return nil
	}
	if pt.key != "" && (!pt.hasPairKey || pt.pairKey != key) {
		return nil
	}
	return pt.fire()
}

// fire consumes one firing (unless unlimited) and applies the failpoint's
// effect.
func (pt *point) fire() error {
	for {
		r := pt.remaining.Load()
		if r == 0 {
			return nil // count exhausted: armed but inert
		}
		if r < 0 || pt.remaining.CompareAndSwap(r, r-1) {
			break
		}
	}
	pt.hits.Add(1)
	switch pt.kind {
	case KindPanic:
		panic(Panic{Name: pt.name})
	case KindDelay:
		time.Sleep(pt.delay)
		return nil
	case KindBudget:
		return fmt.Errorf("%w (failpoint %s)", ErrBudget, pt.name)
	default:
		return fmt.Errorf("%w (failpoint %s)", ErrInjected, pt.name)
	}
}

// MustHit is Hit for call sites without an error return (e.g. possible-world
// enumeration): injected errors escalate to panics, which the join's per-pair
// quarantine contains.
func MustHit(name, key string) {
	if err := Hit(name, key); err != nil {
		panic(Panic{Name: name})
	}
}

// Enable arms one failpoint from a spec (see the package comment for the
// grammar). Re-enabling a name replaces its previous configuration.
func Enable(spec string) error {
	pt, err := parseSpec(spec)
	if err != nil {
		return err
	}
	mu.Lock()
	defer mu.Unlock()
	next := copyRegistry()
	next[pt.name] = pt
	registry.Store(&next)
	return nil
}

// EnableAll arms every failpoint in a comma-separated spec list.
func EnableAll(specs string) error {
	for _, s := range strings.Split(specs, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		if err := Enable(s); err != nil {
			return err
		}
	}
	return nil
}

// Disable disarms the named failpoint; unknown names are a no-op.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	cur := registry.Load()
	if cur == nil || (*cur)[name] == nil {
		return
	}
	next := copyRegistry()
	delete(next, name)
	if len(next) == 0 {
		registry.Store(nil)
		return
	}
	registry.Store(&next)
}

// Reset disarms every failpoint.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	registry.Store(nil)
}

// Hits returns how many times the named failpoint has fired since it was
// armed (0 for unknown names).
func Hits(name string) int64 {
	m := registry.Load()
	if m == nil {
		return 0
	}
	pt := (*m)[name]
	if pt == nil {
		return 0
	}
	return pt.hits.Load()
}

// Status describes one armed failpoint for introspection.
type Status struct {
	Name      string
	Kind      Kind
	Delay     time.Duration
	Key       string
	Remaining int64 // negative means unlimited
	Hits      int64
}

// Active lists the armed failpoints sorted by name.
func Active() []Status {
	m := registry.Load()
	if m == nil {
		return nil
	}
	out := make([]Status, 0, len(*m))
	for _, pt := range *m {
		out = append(out, Status{
			Name:      pt.name,
			Kind:      pt.kind,
			Delay:     pt.delay,
			Key:       pt.key,
			Remaining: pt.remaining.Load(),
			Hits:      pt.hits.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// copyRegistry returns a mutable copy of the current registry map; callers
// must hold mu.
func copyRegistry() map[string]*point {
	next := make(map[string]*point)
	if cur := registry.Load(); cur != nil {
		for k, v := range *cur {
			next[k] = v
		}
	}
	return next
}

// parseSpec parses "name=kind[:delay][@key][#count]".
func parseSpec(spec string) (*point, error) {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return nil, fmt.Errorf("fault: spec %q is not name=kind[...]", spec)
	}
	pt := &point{name: name}
	pt.remaining.Store(-1)
	if rest, ok = cutSuffix(rest, "#", func(v string) error {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 1 {
			return fmt.Errorf("fault: spec %q has invalid count %q", spec, v)
		}
		pt.remaining.Store(n)
		return nil
	}); !ok {
		return nil, fmt.Errorf("fault: spec %q has invalid count", spec)
	}
	if rest, ok = cutSuffix(rest, "@", func(v string) error {
		if v == "" {
			return fmt.Errorf("fault: spec %q has empty key", spec)
		}
		pt.key = v
		if qi, gi, ok := parsePairKey(v); ok {
			pt.pairKey, pt.hasPairKey = PairKey(qi, gi), true
		}
		return nil
	}); !ok {
		return nil, fmt.Errorf("fault: spec %q has invalid key", spec)
	}
	kind, arg, hasArg := strings.Cut(rest, ":")
	switch kind {
	case "error":
		pt.kind = KindError
	case "panic":
		pt.kind = KindPanic
	case "budget":
		pt.kind = KindBudget
	case "delay":
		pt.kind = KindDelay
		if !hasArg {
			return nil, fmt.Errorf("fault: spec %q needs delay:<duration>", spec)
		}
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("fault: spec %q has invalid duration %q", spec, arg)
		}
		pt.delay = d
		hasArg = false
	default:
		return nil, fmt.Errorf("fault: spec %q has unknown kind %q", spec, kind)
	}
	if hasArg {
		return nil, fmt.Errorf("fault: kind %q takes no argument in spec %q", kind, spec)
	}
	return pt, nil
}

// parsePairKey recognises keys of the "qi/gi" form used by the join's
// per-pair failpoints.
func parsePairKey(key string) (qi, gi int, ok bool) {
	a, b, found := strings.Cut(key, "/")
	if !found {
		return 0, 0, false
	}
	qi, err1 := strconv.Atoi(a)
	gi, err2 := strconv.Atoi(b)
	if err1 != nil || err2 != nil || qi < 0 || gi < 0 {
		return 0, 0, false
	}
	return qi, gi, true
}

// cutSuffix splits rest at the last sep and feeds the suffix to parse; it
// returns rest unchanged when sep is absent. The boolean is false when parse
// rejected the suffix.
func cutSuffix(rest, sep string, parse func(string) error) (string, bool) {
	i := strings.LastIndex(rest, sep)
	if i < 0 {
		return rest, true
	}
	if err := parse(rest[i+1:]); err != nil {
		return rest, false
	}
	return rest[:i], true
}
