package fault

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// arm resets the registry around a test.
func arm(t *testing.T, specs string) {
	t.Helper()
	Reset()
	t.Cleanup(Reset)
	if err := EnableAll(specs); err != nil {
		t.Fatal(err)
	}
}

func TestDisabledHitIsNil(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("Enabled with empty registry")
	}
	if err := Hit("anything", ""); err != nil {
		t.Fatalf("disabled Hit returned %v", err)
	}
}

func TestErrorKind(t *testing.T) {
	arm(t, "p=error")
	err := Hit("p", "")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if Hits("p") != 1 {
		t.Fatalf("Hits = %d, want 1", Hits("p"))
	}
	if err := Hit("other", ""); err != nil {
		t.Fatalf("unarmed name fired: %v", err)
	}
}

func TestBudgetKind(t *testing.T) {
	arm(t, "p=budget")
	err := Hit("p", "")
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if errors.Is(err, ErrInjected) {
		t.Fatal("budget error must not be ErrInjected")
	}
}

func TestPanicKind(t *testing.T) {
	arm(t, "p=panic")
	defer func() {
		r := recover()
		pv, ok := r.(Panic)
		if !ok || pv.Name != "p" {
			t.Fatalf("recovered %v, want Panic{p}", r)
		}
	}()
	_ = Hit("p", "")
	t.Fatal("panic kind did not panic")
}

func TestMustHitEscalatesErrors(t *testing.T) {
	arm(t, "p=error")
	defer func() {
		if _, ok := recover().(Panic); !ok {
			t.Fatal("MustHit did not escalate the injected error to a panic")
		}
	}()
	MustHit("p", "")
	t.Fatal("unreachable")
}

func TestDelayKind(t *testing.T) {
	arm(t, "p=delay:30ms")
	start := time.Now()
	if err := Hit("p", ""); err != nil {
		t.Fatalf("delay returned %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay slept only %v", d)
	}
}

func TestKeyScoping(t *testing.T) {
	arm(t, "p=error@3/7")
	if err := Hit("p", "0/0"); err != nil {
		t.Fatalf("wrong key fired: %v", err)
	}
	if err := Hit("p", ""); err != nil {
		t.Fatalf("empty key fired: %v", err)
	}
	if err := Hit("p", "3/7"); err == nil {
		t.Fatal("matching key did not fire")
	}
}

func TestPairKeyPacking(t *testing.T) {
	if k := PairKey(3, 7); k != 3<<32|7 {
		t.Fatalf("PairKey(3,7) = %#x", k)
	}
	if PairKey(0, 0) != 0 || PairKey(1, 0) == PairKey(0, 1) {
		t.Fatal("PairKey does not separate qi from gi")
	}
}

func TestHitPairScoping(t *testing.T) {
	// A "@qi/gi" spec matches only its packed pair.
	arm(t, "p=error@3/7")
	if err := HitPair("p", PairKey(3, 8)); err != nil {
		t.Fatalf("wrong gi fired: %v", err)
	}
	if err := HitPair("p", PairKey(7, 3)); err != nil {
		t.Fatalf("swapped pair fired: %v", err)
	}
	if err := HitPair("p", PairKey(3, 7)); err == nil {
		t.Fatal("matching pair did not fire")
	}

	// A non-pair key never matches HitPair call sites.
	arm(t, "p=error@somekey")
	if err := HitPair("p", PairKey(3, 7)); err != nil {
		t.Fatalf("string-keyed failpoint fired on a pair key: %v", err)
	}

	// A keyless failpoint fires on any pair.
	arm(t, "p=error")
	if err := HitPair("p", PairKey(9, 9)); err == nil {
		t.Fatal("keyless failpoint did not fire")
	}

	// Both call forms share one firing budget.
	arm(t, "p=error@3/7#1")
	if err := Hit("p", "3/7"); err == nil {
		t.Fatal("string form did not fire")
	}
	if err := HitPair("p", PairKey(3, 7)); err != nil {
		t.Fatalf("budget not shared across call forms: %v", err)
	}
}

func TestCountCap(t *testing.T) {
	arm(t, "p=error#2")
	fired := 0
	for i := 0; i < 5; i++ {
		if Hit("p", "") != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want 2", fired)
	}
	if Hits("p") != 2 {
		t.Fatalf("Hits = %d, want 2", Hits("p"))
	}
}

func TestDisableAndReset(t *testing.T) {
	arm(t, "a=error,b=error")
	Disable("a")
	if Hit("a", "") != nil {
		t.Fatal("disabled failpoint fired")
	}
	if Hit("b", "") == nil {
		t.Fatal("sibling failpoint disarmed by Disable")
	}
	Reset()
	if Enabled() {
		t.Fatal("Enabled after Reset")
	}
}

func TestActiveStatus(t *testing.T) {
	arm(t, "b=delay:1ms#3,a=panic@k")
	_ = Hit("b", "")
	st := Active()
	if len(st) != 2 || st[0].Name != "a" || st[1].Name != "b" {
		t.Fatalf("Active = %+v", st)
	}
	if st[0].Kind != KindPanic || st[0].Key != "k" || st[0].Remaining != -1 {
		t.Fatalf("a status = %+v", st[0])
	}
	if st[1].Kind != KindDelay || st[1].Delay != time.Millisecond || st[1].Remaining != 2 || st[1].Hits != 1 {
		t.Fatalf("b status = %+v", st[1])
	}
}

func TestSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"noequals",
		"=error",
		"p=unknown",
		"p=delay",
		"p=delay:notadur",
		"p=error:arg",
		"p=error#0",
		"p=error#x",
		"p=error@",
	} {
		if err := Enable(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestConcurrentHitAndToggle runs Hit against Enable/Disable churn; under
// -race this guards the copy-on-write registry discipline.
func TestConcurrentHitAndToggle(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = Hit("p", "k")
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if err := Enable("p=error#5"); err != nil {
			t.Error(err)
			break
		}
		Disable("p")
	}
	close(stop)
	wg.Wait()
}
