package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"simjoin/internal/core"
	"simjoin/internal/fault"
	"simjoin/internal/graph"
	"simjoin/internal/obs"
	"simjoin/internal/sparql"
	"simjoin/internal/workload"
)

// testWorkload builds a small synthetic workload and its Resident.
func testWorkload(t *testing.T) ([]*graph.Graph, *core.Resident) {
	t.Helper()
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = 12
	cfg.Vertices = 6
	cfg.Edges = 8
	d, u := workload.ER(cfg)
	return d, core.NewResident(u)
}

func testJoinOptions() core.Options {
	opts := core.DefaultOptions()
	opts.Tau = 2
	opts.Alpha = 0.5
	opts.Workers = 2
	return opts
}

func newTestServer(t *testing.T, mutate func(*Config)) (*Server, []*graph.Graph) {
	t.Helper()
	d, res := testWorkload(t)
	cfg := Config{
		Resident: res,
		Join:     testJoinOptions(),
		Obs:      obs.New(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return New(cfg), d
}

// graphSpecOf converts a query graph to the /join explicit-graph JSON form.
func graphSpecOf(g *graph.Graph) *GraphSpec {
	spec := &GraphSpec{}
	for v := 0; v < g.NumVertices(); v++ {
		spec.Vertices = append(spec.Vertices, g.VertexLabel(v))
	}
	for _, e := range g.Edges() {
		spec.Edges = append(spec.Edges, EdgeSpec{From: e.From, To: e.To, Label: e.Label})
	}
	return spec
}

func postJSON(t *testing.T, h http.Handler, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func counterValue(reg *obs.Registry, name string) int64 {
	snap := reg.Snapshot()
	return snap.Counters[name]
}

func TestJoinEndpointMatchesEngine(t *testing.T) {
	s, d := newTestServer(t, nil)
	h := s.Handler()

	// Ground truth straight from the engine.
	for qi := 0; qi < 4; qi++ {
		wantPairs, _, err := core.JoinWith(context.Background(),
			core.NewStreamSource(s.cfg.Resident, d[qi:qi+1]), testJoinOptions())
		if err != nil {
			t.Fatal(err)
		}
		w := postJSON(t, h, "/join", JoinRequest{Graph: graphSpecOf(d[qi])})
		if w.Code != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", qi, w.Code, w.Body.String())
		}
		var resp JoinResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Tier != "exact" {
			t.Fatalf("query %d: tier %q, want exact", qi, resp.Tier)
		}
		if resp.Total != len(wantPairs) {
			t.Fatalf("query %d: %d matches, engine found %d", qi, resp.Total, len(wantPairs))
		}
		got := map[int]float64{}
		for _, m := range resp.Matches {
			got[m.Graph] = m.SimP
		}
		for _, p := range wantPairs {
			if simP, ok := got[p.G]; !ok || simP != p.SimP {
				t.Fatalf("query %d: graph %d simP %v, want %v (present=%v)", qi, p.G, simP, p.SimP, ok)
			}
		}
	}
	reg := s.cfg.Obs
	if n := counterValue(reg, obs.Name("server_requests_total", "endpoint", "join", "tier", "exact")); n != 4 {
		t.Fatalf("exact counter = %d, want 4", n)
	}
}

func TestJoinBadRequests(t *testing.T) {
	s, d := newTestServer(t, nil)
	h := s.Handler()
	spec := graphSpecOf(d[0])

	bad := []struct {
		name string
		body string
	}{
		{"malformed", `{"graph": `},
		{"empty", `{}`},
		{"both", `{"query": "SELECT ?x WHERE { ?x p ?y }", "graph": {"vertices": ["a"]}}`},
		{"self-loop", `{"graph": {"vertices": ["a","b"], "edges": [{"from":0,"to":0,"label":"e"}]}}`},
		{"edge-range", `{"graph": {"vertices": ["a","b"], "edges": [{"from":0,"to":9,"label":"e"}]}}`},
		{"bad-alpha", `{"graph": {"vertices": ["a"]}, "alpha": 1.5}`},
		{"bad-tau", `{"graph": {"vertices": ["a"]}, "tau": -1}`},
		{"control-label", "{\"graph\": {\"vertices\": [\"a\\u0001b\"]}}"},
	}
	for _, tc := range bad {
		req := httptest.NewRequest(http.MethodPost, "/join", bytes.NewReader([]byte(tc.body)))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, w.Code, w.Body.String())
		}
	}
	if n := counterValue(s.cfg.Obs, obs.Name("server_rejected_total", "endpoint", "join")); n != int64(len(bad)) {
		t.Fatalf("rejected counter = %d, want %d", n, len(bad))
	}
	// A good request still succeeds after the bad ones.
	if w := postJSON(t, h, "/join", JoinRequest{Graph: spec}); w.Code != http.StatusOK {
		t.Fatalf("good request after bad: status %d", w.Code)
	}
}

func TestTierOptionsMapping(t *testing.T) {
	s, _ := newTestServer(t, nil)
	base := s.cfg.Join

	ex := s.tierOptions(tierExact)
	if ex.MaxWorlds != base.MaxWorlds || ex.SampleWorlds != base.SampleWorlds {
		t.Fatal("tierExact must not alter the base options")
	}
	sm := s.tierOptions(tierSampled)
	if sm.MaxWorlds != 1 || sm.Fallback != core.FallbackFull {
		t.Fatalf("tierSampled options = %+v", sm)
	}
	ap := s.tierOptions(tierApprox)
	if ap.MaxWorlds != 1 || ap.SampleWorlds != -1 {
		t.Fatalf("tierApprox options = %+v", ap)
	}
}

func TestTierForPressure(t *testing.T) {
	s, _ := newTestServer(t, nil)
	now := time.Now()
	if tt := s.tierFor(0, now); tt != tierExact {
		t.Fatalf("pressure 0 → %v", tt)
	}
	if tt := s.tierFor(0.3, now); tt != tierSampled {
		t.Fatalf("pressure 0.3 → %v", tt)
	}
	if tt := s.tierFor(0.9, now); tt != tierApprox {
		t.Fatalf("pressure 0.9 → %v", tt)
	}
}

// TestDegradedTiersStillAnswer checks both degraded tiers produce the same
// accept set on a workload small enough that every rung is decisive.
func TestDegradedTiersStillAnswer(t *testing.T) {
	s, d := newTestServer(t, nil)
	ctx := context.Background()
	for _, tt := range []tier{tierExact, tierSampled, tierApprox} {
		pairs, st, _, err := s.joinWithRetry(ctx, d[0], s.tierOptions(tt))
		if err != nil {
			t.Fatalf("%v: %v", tt, err)
		}
		if st.Pairs != int64(s.cfg.Resident.Len()) {
			t.Fatalf("%v: pairs %d, want %d", tt, st.Pairs, s.cfg.Resident.Len())
		}
		// The degraded rungs are sound: no pair may be accepted whose true
		// SimP is below alpha, so every accepted pair must also be accepted
		// (with certainty) at the exact tier.
		if tt != tierExact {
			exact, _, _, err := s.joinWithRetry(ctx, d[0], s.tierOptions(tierExact))
			if err != nil {
				t.Fatal(err)
			}
			exactSet := map[int]bool{}
			for _, p := range exact {
				exactSet[p.G] = true
			}
			for _, p := range pairs {
				if p.Verdict == core.VerdictApproxBound && !exactSet[p.G] {
					t.Fatalf("%v accepted graph %d with a certified bound but exact tier rejects it", tt, p.G)
				}
			}
		}
	}
}

func TestShedWhenQueueFull(t *testing.T) {
	if err := fault.EnableAll("server.join=delay:300ms"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()

	s, d := newTestServer(t, func(c *Config) {
		c.MaxInFlight = 1
		c.MaxQueue = 1
		c.RequestTimeout = 5 * time.Second
	})
	h := s.Handler()
	spec := graphSpecOf(d[0])

	const n = 8
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := postJSON(t, h, "/join", JoinRequest{Graph: spec})
			codes[i] = w.Code
			if w.Code == http.StatusTooManyRequests && w.Header().Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		}(i)
	}
	wg.Wait()
	ok, shed := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("unexpected status %d", c)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("ok=%d shed=%d: want both nonzero", ok, shed)
	}
	reg := s.cfg.Obs
	var tallied int64
	for _, tt := range []string{"exact", "sampled", "approx", "shed"} {
		tallied += counterValue(reg, obs.Name("server_requests_total", "endpoint", "join", "tier", tt))
	}
	if tallied != n {
		t.Fatalf("tier counters sum to %d, want %d", tallied, n)
	}
}

func TestRetryOnTransientFault(t *testing.T) {
	if err := fault.EnableAll("server.join=error#2"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()

	s, d := newTestServer(t, func(c *Config) {
		c.RetryMax = 3
		c.RetryBackoff = time.Millisecond
	})
	w := postJSON(t, s.Handler(), "/join", JoinRequest{Graph: graphSpecOf(d[0])})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp JoinResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", resp.Retries)
	}
	if n := counterValue(s.cfg.Obs, "server_retries_total"); n != 2 {
		t.Fatalf("server_retries_total = %d, want 2", n)
	}
}

func TestRetryExhaustionFails(t *testing.T) {
	if err := fault.EnableAll("server.join=error"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()

	s, d := newTestServer(t, func(c *Config) {
		c.RetryMax = 1
		c.RetryBackoff = time.Millisecond
	})
	w := postJSON(t, s.Handler(), "/join", JoinRequest{Graph: graphSpecOf(d[0])})
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", w.Code)
	}
	if n := counterValue(s.cfg.Obs, obs.Name("server_requests_total", "endpoint", "join", "tier", "shed")); n != 1 {
		t.Fatalf("shed counter = %d, want 1", n)
	}
}

func TestHandlerPanicIsContained(t *testing.T) {
	if err := fault.EnableAll("server.join=panic"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()

	s, d := newTestServer(t, nil)
	w := postJSON(t, s.Handler(), "/join", JoinRequest{Graph: graphSpecOf(d[0])})
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", w.Code)
	}
	if n := counterValue(s.cfg.Obs, "server_panics_total"); n != 1 {
		t.Fatalf("server_panics_total = %d, want 1", n)
	}
	fault.Reset()
	// The process (and server) survive: the next request succeeds.
	if w := postJSON(t, s.Handler(), "/join", JoinRequest{Graph: graphSpecOf(d[0])}); w.Code != http.StatusOK {
		t.Fatalf("request after panic: status %d", w.Code)
	}
}

func TestBreakerStateMachine(t *testing.T) {
	reg := obs.New()
	b := newBreaker(BreakerConfig{
		Window:         4,
		QuarantineRate: 0.5,
		Cooldown:       10 * time.Millisecond,
		Probes:         2,
	}, reg)
	now := time.Now()

	if !b.allowFull(now) {
		t.Fatal("closed breaker must allow full fidelity")
	}
	// Fill the window with quarantines → trips.
	for i := 0; i < 4; i++ {
		b.record(now, time.Millisecond, true)
	}
	if b.State() != breakerOpen {
		t.Fatalf("state %v, want open", b.State())
	}
	if n := counterValue(reg, "server_breaker_trips_total"); n != 1 {
		t.Fatalf("trips = %d, want 1", n)
	}
	if b.allowFull(now) {
		t.Fatal("open breaker must force degraded mode")
	}
	// After cooldown it half-opens and probes.
	later := now.Add(20 * time.Millisecond)
	if !b.allowFull(later) {
		t.Fatal("cooled-down breaker must allow a probe")
	}
	if b.State() != breakerHalfOpen {
		t.Fatalf("state %v, want half-open", b.State())
	}
	// A bad probe re-trips.
	b.record(later, time.Millisecond, true)
	if b.State() != breakerOpen {
		t.Fatalf("state after bad probe %v, want open", b.State())
	}
	// Cooldown again; two good probes close it.
	final := later.Add(20 * time.Millisecond)
	if !b.allowFull(final) {
		t.Fatal("probe not allowed after second cooldown")
	}
	b.record(final, time.Millisecond, false)
	b.record(final, time.Millisecond, false)
	if b.State() != breakerClosed {
		t.Fatalf("state after good probes %v, want closed", b.State())
	}
}

func TestBreakerLatencyTrip(t *testing.T) {
	b := newBreaker(BreakerConfig{
		Window:     4,
		LatencyP99: 10 * time.Millisecond,
		Cooldown:   time.Second,
		Probes:     1,
	}, nil)
	now := time.Now()
	for i := 0; i < 4; i++ {
		b.record(now, 50*time.Millisecond, false)
	}
	if b.State() != breakerOpen {
		t.Fatalf("state %v, want open on latency trip", b.State())
	}
}

func TestDrain(t *testing.T) {
	if err := fault.EnableAll("server.join=delay:150ms"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()

	s, d := newTestServer(t, func(c *Config) {
		c.DrainTimeout = 2 * time.Second
	})
	h := s.Handler()
	spec := graphSpecOf(d[0])

	started := make(chan struct{})
	finished := make(chan int, 1)
	go func() {
		close(started)
		w := postJSON(t, h, "/join", JoinRequest{Graph: spec})
		finished <- w.Code
	}()
	<-started
	time.Sleep(30 * time.Millisecond) // let the request reach the delay failpoint

	s.BeginDrain()
	// New work is shed while draining.
	if w := postJSON(t, h, "/join", JoinRequest{Graph: spec}); w.Code != http.StatusTooManyRequests {
		t.Fatalf("request during drain: status %d, want 429", w.Code)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	select {
	case code := <-finished:
		if code != http.StatusOK {
			t.Fatalf("in-flight request finished with %d", code)
		}
	default:
		t.Fatal("Drain returned before the in-flight request finished")
	}
}

func TestAskWithoutQA(t *testing.T) {
	s, _ := newTestServer(t, nil)
	w := postJSON(t, s.Handler(), "/ask", AskRequest{Question: "who wrote Hamlet"})
	if w.Code != http.StatusNotImplemented {
		t.Fatalf("status %d, want 501", w.Code)
	}
}

func TestAskEndpoint(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) {
		c.QA = qaFunc(func(q string) ([]sparql.Binding, error) {
			return []sparql.Binding{{"x": "hamlet"}}, nil
		})
	})
	w := postJSON(t, s.Handler(), "/ask", AskRequest{Question: "who wrote Hamlet"})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp AskResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Bindings) != 1 || resp.Bindings[0]["x"] != "hamlet" {
		t.Fatalf("bindings = %v", resp.Bindings)
	}
}

func TestAskPanicContained(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) {
		c.QA = qaFunc(func(q string) ([]sparql.Binding, error) {
			panic("qa exploded")
		})
	})
	w := postJSON(t, s.Handler(), "/ask", AskRequest{Question: "boom"})
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", w.Code)
	}
	if n := counterValue(s.cfg.Obs, "server_panics_total"); n == 0 {
		t.Fatal("panic not counted")
	}
}

func TestHealthz(t *testing.T) {
	s, _ := newTestServer(t, nil)
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var h healthz
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Breaker != "closed" || h.Resident != s.cfg.Resident.Len() {
		t.Fatalf("healthz = %+v", h)
	}
	s.BeginDrain()
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", w.Code)
	}
}

func TestMetricsEndpointMounted(t *testing.T) {
	s, d := newTestServer(t, nil)
	h := s.Handler()
	postJSON(t, h, "/join", JoinRequest{Graph: graphSpecOf(d[0])})
	req := httptest.NewRequest(http.MethodGet, "/metrics.json", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics.json status %d", w.Code)
	}
	var snap map[string]interface{}
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics.json not JSON: %v", err)
	}
}

// qaFunc adapts a function to qa.System for tests.
type qaFunc func(string) ([]sparql.Binding, error)

func (qaFunc) Name() string                                { return "fake" }
func (f qaFunc) Answer(q string) ([]sparql.Binding, error) { return f(q) }

// TestJoinRequestFilters pins the per-request "filters" field: a valid chain
// and "auto" both answer with exactly the default chain's matches (every
// bound is sound, so the chain choice cannot move results), and an unknown
// bound name is rejected at decode time with 400.
func TestJoinRequestFilters(t *testing.T) {
	s, d := newTestServer(t, nil)
	h := s.Handler()
	spec := graphSpecOf(d[0])

	base := postJSON(t, h, "/join", JoinRequest{Graph: spec})
	if base.Code != http.StatusOK {
		t.Fatalf("baseline: status %d: %s", base.Code, base.Body.String())
	}
	var want JoinResponse
	if err := json.Unmarshal(base.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}

	for _, filters := range []string{"count,css,prob", "prob,css", "auto"} {
		w := postJSON(t, h, "/join", JoinRequest{Graph: spec, Filters: filters})
		if w.Code != http.StatusOK {
			t.Fatalf("filters=%q: status %d: %s", filters, w.Code, w.Body.String())
		}
		var resp JoinResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Total != want.Total {
			t.Fatalf("filters=%q: %d matches, want %d", filters, resp.Total, want.Total)
		}
		got := map[int]float64{}
		for _, m := range resp.Matches {
			got[m.Graph] = m.SimP
		}
		for _, m := range want.Matches {
			if simP, ok := got[m.Graph]; !ok || simP != m.SimP {
				t.Fatalf("filters=%q: graph %d simP %v, want %v (present=%v)", filters, m.Graph, simP, m.SimP, ok)
			}
		}
	}

	w := postJSON(t, h, "/join", JoinRequest{Graph: spec, Filters: "css,nonsense"})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("unknown bound: status %d, want 400 (%s)", w.Code, w.Body.String())
	}
}
