package server

import (
	"context"
	"errors"

	"simjoin/internal/obs"
)

// Admission control: a fixed pool of execution slots fronted by a bounded
// wait queue. A request either takes a free slot immediately, waits in the
// queue (its context still ticking), or — when the queue is full — is shed
// with 429/Retry-After. Queue occupancy at admission time is the service's
// pressure signal: the degrade tiers (tierFor) map it onto the verdict
// ladder so saturation costs answer certainty before it costs availability.

// errShed reports that the admission queue was full.
var errShed = errors.New("server: admission queue full")

type admitter struct {
	slots    chan struct{}
	maxQueue int64
	queued   chan struct{} // capacity maxQueue; len() is the live queue depth

	inflight *obs.Gauge
	depth    *obs.Gauge
}

func newAdmitter(maxInFlight, maxQueue int, reg *obs.Registry) *admitter {
	return &admitter{
		slots:    make(chan struct{}, maxInFlight),
		maxQueue: int64(maxQueue),
		queued:   make(chan struct{}, maxQueue),
		inflight: reg.Gauge("server_inflight"),
		depth:    reg.Gauge("server_queue_depth"),
	}
}

// acquire admits one request. It returns the release function and the queue
// pressure in [0, 1] observed at admission, or an error: errShed when the
// queue was full, ctx.Err() when the caller's deadline expired while queued.
func (a *admitter) acquire(ctx context.Context) (release func(), pressure float64, err error) {
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return a.release, a.pressure(), nil
	default:
	}
	// No free slot: join the bounded queue, or shed.
	select {
	case a.queued <- struct{}{}:
	default:
		return nil, 1, errShed
	}
	a.depth.Add(1)
	p := a.pressure()
	defer func() {
		<-a.queued
		a.depth.Add(-1)
	}()
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return a.release, p, nil
	case <-ctx.Done():
		return nil, p, ctx.Err()
	}
}

func (a *admitter) release() {
	<-a.slots
	a.inflight.Add(-1)
}

// pressure is the queue occupancy fraction at this instant.
func (a *admitter) pressure() float64 {
	if a.maxQueue == 0 {
		return 0
	}
	return float64(len(a.queued)) / float64(a.maxQueue)
}

// Inflight and Queued report the live gauges (for /healthz).
func (a *admitter) Inflight() int { return len(a.slots) }
func (a *admitter) Queued() int   { return len(a.queued) }
