package server

import (
	"context"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"testing"
	"time"

	"simjoin/internal/fault"
	"simjoin/internal/obs"
)

// TestChaosSoak is the in-process chaos harness: many concurrent askers
// hammer the handler while failpoints inject panics, transient errors and
// delays at every layer (server retry loop, per-pair engine quarantine, GED
// degradation). It pins the overload envelope's contract:
//
//   - zero unrecovered panics — the test process survives and every panic
//     is tallied;
//   - exact accounting — every request lands in exactly one of the
//     {exact, sampled, approx, shed} tier counters;
//   - bounded tail latency — client-observed P99 stays within the request
//     deadline plus scheduling slack;
//   - clean drain — after the storm, Drain returns with nothing in flight.
//
// ci.sh runs the same scenario out-of-process (real sockets, SIGTERM)
// via cmd/simjoind + cmd/loadgen.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short")
	}
	if err := fault.EnableAll(
		"server.join=error#40,core.pair=panic#30,ged.compute=error#60,core.verify.world=delay:200us#200",
	); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()

	s, d := newTestServer(t, func(c *Config) {
		c.MaxInFlight = 8
		c.MaxQueue = 16
		c.RequestTimeout = 2 * time.Second
		c.RetryMax = 2
		c.RetryBackoff = time.Millisecond
		c.Breaker = BreakerConfig{
			Window:         64,
			QuarantineRate: 0.3,
			Cooldown:       50 * time.Millisecond,
			Probes:         3,
		}
	})
	h := s.Handler()

	const (
		workers  = 60
		perAsker = 20
		total    = workers * perAsker // 1200 ≥ the 1000-request acceptance floor
	)
	var (
		mu        sync.Mutex
		latencies []time.Duration
		byCode    = map[int]int{}
		wg        sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perAsker; i++ {
				spec := graphSpecOf(d[rng.Intn(len(d))])
				start := time.Now()
				rec := postJSON(t, h, "/join", JoinRequest{Graph: spec})
				lat := time.Since(start)
				if rec.Code == http.StatusTooManyRequests && rec.Header().Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				mu.Lock()
				latencies = append(latencies, lat)
				byCode[rec.Code]++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	// Every status must come from the envelope's vocabulary.
	for code := range byCode {
		switch code {
		case http.StatusOK, http.StatusTooManyRequests,
			http.StatusInternalServerError, http.StatusGatewayTimeout:
		default:
			t.Fatalf("unexpected status %d (%d times)", code, byCode[code])
		}
	}
	if byCode[http.StatusOK] == 0 {
		t.Fatal("no request succeeded under chaos")
	}

	// Exact accounting: the four tier counters partition the requests.
	snap := s.cfg.Obs.Snapshot()
	tiers := map[string]int64{}
	var sum int64
	for _, tt := range []string{"exact", "sampled", "approx", "shed"} {
		n := snap.Counters[obs.Name("server_requests_total", "endpoint", "join", "tier", tt)]
		tiers[tt] = n
		sum += n
	}
	if sum != total {
		t.Fatalf("tier counters %v sum to %d, want %d", tiers, sum, total)
	}
	if rejected := snap.Counters[obs.Name("server_rejected_total", "endpoint", "join")]; rejected != 0 {
		t.Fatalf("valid requests counted as rejected: %d", rejected)
	}
	if int64(byCode[http.StatusOK]) != tiers["exact"]+tiers["sampled"]+tiers["approx"] {
		t.Fatalf("answered tiers %v disagree with %d OK responses", tiers, byCode[http.StatusOK])
	}

	// The chaos actually fired, and the retry path absorbed some of it.
	for _, name := range []string{"server.join", "core.pair", "ged.compute"} {
		if fault.Hits(name) == 0 {
			t.Errorf("failpoint %s never fired", name)
		}
	}
	if snap.Counters["server_retries_total"] == 0 {
		t.Error("no retries recorded despite transient injected errors")
	}

	// Bounded tail: client P99 within the deadline plus generous scheduling
	// slack (the deadline itself is the envelope's promise; the slack covers
	// -race and CI scheduling noise).
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[(len(latencies)-1)*99/100]
	if limit := s.cfg.RequestTimeout + time.Second; p99 > limit {
		t.Fatalf("client P99 %v exceeds %v", p99, limit)
	}

	// Clean drain: nothing in flight, nothing queued, and afterwards new
	// requests are shed.
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain after soak: %v", err)
	}
	if s.adm.Inflight() != 0 || s.adm.Queued() != 0 {
		t.Fatalf("drain left inflight=%d queued=%d", s.adm.Inflight(), s.adm.Queued())
	}
	if rec := postJSON(t, h, "/join", JoinRequest{Graph: graphSpecOf(d[0])}); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("post-drain request got %d, want 429", rec.Code)
	}

	t.Logf("soak: codes=%v tiers=%v p99=%v panics=%d retries=%d breaker_trips=%d",
		byCode, tiers, p99,
		snap.Counters["server_panics_total"],
		snap.Counters["server_retries_total"],
		snap.Counters["server_breaker_trips_total"])
}
