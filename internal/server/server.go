package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"simjoin/internal/core"
	"simjoin/internal/fault"
	"simjoin/internal/filter"
	"simjoin/internal/graph"
	"simjoin/internal/obs"
	"simjoin/internal/plan"
	"simjoin/internal/qa"
	"simjoin/internal/sparql"
)

// Config assembles a Server. Resident is required; everything else has a
// serviceable zero value.
type Config struct {
	// Resident is the uncertain side the service joins against.
	Resident *core.Resident
	// Join is the base engine configuration; requests at tierExact run with
	// it unchanged (per-request tau/alpha overrides aside).
	Join core.Options
	// QA answers POST /ask; nil makes /ask return 501.
	QA qa.System
	// Samples are example query graphs served round-robin by GET /sample
	// (typically the workload's query side) so load generators can draw
	// realistic payloads without knowing the label alphabet; empty makes
	// /sample return 404.
	Samples []*graph.Graph

	// MaxInFlight bounds concurrently executing requests (default 4).
	MaxInFlight int
	// MaxQueue bounds the admission wait queue (default 4×MaxInFlight).
	MaxQueue int
	// RequestTimeout is the per-request deadline, propagated through the
	// join via context (default 10s).
	RequestTimeout time.Duration
	// DrainTimeout bounds how long Drain waits for in-flight requests
	// (default RequestTimeout + 1s).
	DrainTimeout time.Duration

	// DegradeSampled and DegradeApprox are queue-pressure thresholds in
	// (0, 1]: at DegradeSampled the service skips exact enumeration
	// (Monte Carlo first), at DegradeApprox it serves certified approximate
	// bounds only. Defaults 0.25 and 0.6.
	DegradeSampled float64
	DegradeApprox  float64

	// RetryMax is how many times a request is retried on transient injected
	// faults (fault.ErrInjected / fault.ErrBudget) before failing (default
	// 2); RetryBackoff is the base backoff, doubled per attempt (default
	// 5ms).
	RetryMax     int
	RetryBackoff time.Duration

	// Breaker configures the verification-storm circuit breaker; zero
	// disables it.
	Breaker BreakerConfig

	// Limits bounds request payloads; the zero value means DefaultLimits.
	Limits Limits

	// Obs, Tracer, Events and Logger are forwarded to the engine and used
	// for the server's own instruments; all optional.
	Obs    *obs.Registry
	Tracer *obs.Tracer
	Events *obs.EventLog
	Logger obs.Logger
}

func (c *Config) normalise() {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = c.RequestTimeout + time.Second
	}
	if c.DegradeSampled <= 0 {
		c.DegradeSampled = 0.25
	}
	if c.DegradeApprox <= 0 {
		c.DegradeApprox = 0.6
	}
	if c.RetryMax < 0 {
		c.RetryMax = 0
	} else if c.RetryMax == 0 {
		c.RetryMax = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 5 * time.Millisecond
	}
	if c.Limits == (Limits{}) {
		c.Limits = DefaultLimits()
	}
}

// Degradation tiers. Every admitted request executes at exactly one tier;
// shed requests never execute. The tiers map queue pressure onto the verdict
// ladder (DESIGN.md §10): exact enumeration is the most expensive rung, the
// Monte Carlo rung bounds per-pair cost by sample size, and the approximate
// rung serves certified SimP lower bounds at near-filter cost.
type tier int

const (
	tierExact tier = iota
	tierSampled
	tierApprox
	tierShed
)

func (t tier) String() string {
	switch t {
	case tierExact:
		return "exact"
	case tierSampled:
		return "sampled"
	case tierApprox:
		return "approx"
	default:
		return "shed"
	}
}

// Server is the resident join/Q-A service.
type Server struct {
	cfg  Config
	adm  *admitter
	brk  *breaker
	qsys qa.System

	// Drain state: once draining, new requests are shed and Drain waits on
	// wg (which tracks admitted requests only).
	drainMu  sync.Mutex
	draining bool
	wg       sync.WaitGroup

	sampleIdx atomic.Uint64

	panics  *obs.Counter
	retries *obs.Counter
	latency map[string]*obs.Histogram
}

// New builds a Server; it panics if cfg.Resident is nil.
func New(cfg Config) *Server {
	cfg.normalise()
	if cfg.Resident == nil {
		panic("server.New: Config.Resident is nil")
	}
	s := &Server{
		cfg:     cfg,
		adm:     newAdmitter(cfg.MaxInFlight, cfg.MaxQueue, cfg.Obs),
		brk:     newBreaker(cfg.Breaker, cfg.Obs),
		qsys:    cfg.QA,
		panics:  cfg.Obs.Counter("server_panics_total"),
		retries: cfg.Obs.Counter("server_retries_total"),
		latency: map[string]*obs.Histogram{
			"join": cfg.Obs.Histogram(obs.Name("server_request_seconds", "endpoint", "join"), obs.DurationBuckets),
			"ask":  cfg.Obs.Histogram(obs.Name("server_request_seconds", "endpoint", "ask"), obs.DurationBuckets),
		},
	}
	return s
}

// Handler returns the service's HTTP handler, with the obs debug surface
// (/metrics, /metrics.json, /debug/...) mounted alongside the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/join", s.recoverWrap("join", s.handleJoin))
	mux.HandleFunc("/ask", s.recoverWrap("ask", s.handleAsk))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/sample", s.handleSample)
	if s.cfg.Obs != nil || s.cfg.Tracer != nil {
		dbg := obs.Handler(s.cfg.Obs, s.cfg.Tracer)
		mux.Handle("/metrics", dbg)
		mux.Handle("/metrics.json", dbg)
		mux.Handle("/debug/", dbg)
	}
	return mux
}

// recoverWrap contains handler panics: the request is accounted as shed
// (it produced no answer) and the process survives — the same containment
// stance as per-pair quarantine inside the engine.
func (s *Server) recoverWrap(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Inc()
				s.countTier(endpoint, tierShed)
				s.logf("server: recovered panic in /%s: %v", endpoint, rec)
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
			}
		}()
		h(w, r)
	}
}

// tierFor picks the execution tier for an admitted request from queue
// pressure and breaker state. The breaker caps the tier at approx while open.
func (s *Server) tierFor(pressure float64, now time.Time) tier {
	t := tierExact
	switch {
	case pressure >= s.cfg.DegradeApprox:
		t = tierApprox
	case pressure >= s.cfg.DegradeSampled:
		t = tierSampled
	}
	if t != tierApprox && !s.brk.allowFull(now) {
		t = tierApprox
	}
	return t
}

// tierOptions maps a tier onto engine options. The knobs reuse the verdict
// ladder as-is: MaxWorlds=1 makes every nontrivial pair over-budget so exact
// enumeration is skipped, and SampleWorlds=-1 disables the sampling rung so
// over-budget pairs fall straight to the approximate one.
func (s *Server) tierOptions(t tier) core.Options {
	o := s.cfg.Join
	switch t {
	case tierSampled:
		o.MaxWorlds = 1
		o.Fallback = core.FallbackFull
	case tierApprox:
		o.MaxWorlds = 1
		o.SampleWorlds = -1
		o.Fallback = core.FallbackFull
	}
	return o
}

// admit runs the shared admission path. On success the caller owns done()
// and must call it exactly once; on failure the request has already been
// accounted and responded to.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, endpoint string) (func(), tier, bool) {
	s.drainMu.Lock()
	if s.draining {
		s.drainMu.Unlock()
		s.countTier(endpoint, tierShed)
		writeShed(w, "draining")
		return nil, tierShed, false
	}
	s.wg.Add(1)
	s.drainMu.Unlock()

	release, pressure, err := s.adm.acquire(r.Context())
	if err != nil {
		s.wg.Done()
		s.countTier(endpoint, tierShed)
		if errors.Is(err, errShed) {
			writeShed(w, "queue full")
		} else {
			writeError(w, http.StatusServiceUnavailable, "deadline expired while queued")
		}
		return nil, tierShed, false
	}
	var once sync.Once
	done := func() {
		once.Do(func() {
			release()
			s.wg.Done()
		})
	}
	return done, s.tierFor(pressure, time.Now()), true
}

// JoinMatch is one result row of a /join response.
type JoinMatch struct {
	Graph    int     `json:"graph"`
	SimP     float64 `json:"simP"`
	Distance int     `json:"distance"`
	Verdict  string  `json:"verdict"`
	CI       float64 `json:"ci,omitempty"`
}

// JoinResponse is the /join response body.
type JoinResponse struct {
	Tier       string      `json:"tier"`
	Matches    []JoinMatch `json:"matches"`
	Total      int         `json:"total"`
	Candidates int64       `json:"candidates"`
	ElapsedMS  float64     `json:"elapsedMs"`
	Retries    int         `json:"retries,omitempty"`
}

// AskResponse is the /ask response body.
type AskResponse struct {
	System    string           `json:"system"`
	Bindings  []sparql.Binding `json:"bindings"`
	ElapsedMS float64          `json:"elapsedMs"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := readBody(r, s.cfg.Limits.MaxBodyBytes)
	if err != nil {
		s.countRejected("join")
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	req, qg, err := DecodeJoinRequest(body, s.cfg.Limits)
	if err != nil {
		s.countRejected("join")
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	done, t, ok := s.admit(w, r, "join")
	if !ok {
		return
	}
	defer done()

	start := time.Now()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	opts := s.tierOptions(t)
	if req.Tau != nil {
		opts.Tau = *req.Tau
	}
	if req.Alpha != nil {
		opts.Alpha = *req.Alpha
	}
	switch {
	case req.Filters == "auto":
		// Keep the tier's chain; let the optimizer reorder it online for
		// this request. The decode step already validated the field.
		opts.Planner = plan.AutoChain()
	case req.Filters != "":
		chain, err := filter.ParseChain(req.Filters)
		if err != nil { // unreachable: DecodeJoinRequest validated it
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		opts.FilterChain = chain
	}
	opts.Obs = s.cfg.Obs
	opts.Tracer = s.cfg.Tracer
	opts.Events = s.cfg.Events
	opts.Logger = s.cfg.Logger

	pairs, st, retriesUsed, err := s.joinWithRetry(ctx, qg, opts)
	elapsed := time.Since(start)
	s.latency["join"].ObserveDuration(elapsed)
	s.brk.record(time.Now(), elapsed, st.QuarantinedPairs > 0)
	if err != nil {
		s.countTier("join", tierShed)
		if ctx.Err() != nil {
			writeError(w, http.StatusGatewayTimeout, "deadline exceeded")
		} else {
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	s.countTier("join", t)

	matches := make([]JoinMatch, 0, len(pairs))
	for _, p := range pairs {
		matches = append(matches, JoinMatch{
			Graph:    p.G,
			SimP:     p.SimP,
			Distance: p.Distance,
			Verdict:  p.Verdict.String(),
			CI:       p.CI,
		})
	}
	total := len(matches)
	if req.Limit > 0 && len(matches) > req.Limit {
		matches = matches[:req.Limit]
	}
	writeJSON(w, http.StatusOK, JoinResponse{
		Tier:       t.String(),
		Matches:    matches,
		Total:      total,
		Candidates: st.Candidates,
		ElapsedMS:  float64(elapsed.Microseconds()) / 1e3,
		Retries:    retriesUsed,
	})
}

// joinWithRetry runs the delta join, retrying on transient injected faults
// (and on the server.join failpoint, which the chaos harness arms to
// exercise this path) with doubling backoff. Context expiry is never
// retried.
func (s *Server) joinWithRetry(ctx context.Context, qg *graph.Graph, opts core.Options) ([]core.Pair, core.Stats, int, error) {
	backoff := s.cfg.RetryBackoff
	var (
		lastErr error
		lastSt  core.Stats
	)
	for attempt := 0; ; attempt++ {
		err := fault.Hit("server.join", "")
		var pairs []core.Pair
		var st core.Stats
		if err == nil {
			src := core.NewStreamSource(s.cfg.Resident, []*graph.Graph{qg})
			pairs, st, err = core.JoinWith(ctx, src, opts)
		}
		if err == nil {
			return pairs, st, attempt, nil
		}
		lastErr, lastSt = err, st
		if ctx.Err() != nil || attempt >= s.cfg.RetryMax || !transient(err) {
			return nil, lastSt, attempt, lastErr
		}
		s.retries.Inc()
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, lastSt, attempt, ctx.Err()
		}
		backoff *= 2
	}
}

// transient reports whether err is a retryable injected fault.
func transient(err error) bool {
	return errors.Is(err, fault.ErrInjected) || errors.Is(err, fault.ErrBudget)
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.qsys == nil {
		writeError(w, http.StatusNotImplemented, "no QA system loaded (serve a QA workload)")
		return
	}
	body, err := readBody(r, s.cfg.Limits.MaxBodyBytes)
	if err != nil {
		s.countRejected("ask")
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	req, err := DecodeAskRequest(body, s.cfg.Limits)
	if err != nil {
		s.countRejected("ask")
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	done, t, ok := s.admit(w, r, "ask")
	if !ok {
		return
	}
	defer done()

	start := time.Now()
	bindings, err := s.askWithDeadline(r.Context(), req.Question)
	elapsed := time.Since(start)
	s.latency["ask"].ObserveDuration(elapsed)
	s.brk.record(time.Now(), elapsed, false)
	if err != nil {
		s.countTier("ask", tierShed)
		if errors.Is(err, context.DeadlineExceeded) {
			writeError(w, http.StatusGatewayTimeout, "deadline exceeded")
		} else {
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	s.countTier("ask", t)
	writeJSON(w, http.StatusOK, AskResponse{
		System:    s.qsys.Name(),
		Bindings:  bindings,
		ElapsedMS: float64(elapsed.Microseconds()) / 1e3,
	})
}

// askWithDeadline bounds a QA answer with the request timeout. qa.System has
// no context parameter, so the answer runs in a goroutine that is abandoned
// (not killed) on expiry; template matching is CPU-bounded and short, so an
// abandoned answer finishes soon after and only its result is discarded.
func (s *Server) askWithDeadline(ctx context.Context, question string) ([]sparql.Binding, error) {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	defer cancel()
	type result struct {
		bindings []sparql.Binding
		err      error
	}
	ch := make(chan result, 1)
	go func() {
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Inc()
				ch <- result{err: fmt.Errorf("qa panic: %v", rec)}
			}
		}()
		b, err := s.qsys.Answer(question)
		ch <- result{bindings: b, err: err}
	}()
	select {
	case res := <-ch:
		return res.bindings, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// healthz reports liveness plus the envelope's live state.
type healthz struct {
	Status   string `json:"status"` // "ok" or "draining"
	Inflight int    `json:"inflight"`
	Queued   int    `json:"queued"`
	Breaker  string `json:"breaker"`
	Resident int    `json:"resident"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.drainMu.Lock()
	status := "ok"
	if s.draining {
		status = "draining"
	}
	s.drainMu.Unlock()
	code := http.StatusOK
	if status != "ok" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, healthz{
		Status:   status,
		Inflight: s.adm.Inflight(),
		Queued:   s.adm.Queued(),
		Breaker:  s.brk.State().String(),
		Resident: s.cfg.Resident.Len(),
	})
}

// handleSample serves one configured query graph, round-robin, as a ready
// /join request body.
func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	if len(s.cfg.Samples) == 0 {
		writeError(w, http.StatusNotFound, "no samples configured")
		return
	}
	g := s.cfg.Samples[int(s.sampleIdx.Add(1)-1)%len(s.cfg.Samples)]
	spec := &GraphSpec{}
	for v := 0; v < g.NumVertices(); v++ {
		spec.Vertices = append(spec.Vertices, g.VertexLabel(v))
	}
	for _, e := range g.Edges() {
		spec.Edges = append(spec.Edges, EdgeSpec{From: e.From, To: e.To, Label: e.Label})
	}
	writeJSON(w, http.StatusOK, JoinRequest{Graph: spec})
}

// BeginDrain flips the server into draining mode: every subsequent request
// is shed with 429. Idempotent.
func (s *Server) BeginDrain() {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
}

// Drain waits for in-flight requests to finish, bounded by ctx and the
// configured DrainTimeout. It returns nil on a clean drain and the deadline
// error if requests were still running when time ran out.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	ctx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
	defer cancel()
	doneCh := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(doneCh)
	}()
	select {
	case <-doneCh:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("drain: %w (inflight=%d queued=%d)", ctx.Err(), s.adm.Inflight(), s.adm.Queued())
	}
}

// countTier accounts one finished (or shed) request. Every request that
// reaches admission lands in exactly one endpoint×tier counter; decode
// failures are counted separately by countRejected.
func (s *Server) countTier(endpoint string, t tier) {
	s.cfg.Obs.Counter(obs.Name("server_requests_total", "endpoint", endpoint, "tier", t.String())).Inc()
}

func (s *Server) countRejected(endpoint string) {
	s.cfg.Obs.Counter(obs.Name("server_rejected_total", "endpoint", endpoint)).Inc()
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Logf(format, args...)
	}
}

func readBody(r *http.Request, max int64) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, max))
	if err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	return body, nil
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

// writeShed is the 429 path; Retry-After gives well-behaved clients a
// backoff hint.
func writeShed(w http.ResponseWriter, reason string) {
	w.Header().Set("Retry-After", strconv.Itoa(1))
	writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "overloaded: " + reason})
}
