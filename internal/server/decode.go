// Package server is the resident join/Q-A service: it keeps one core.Resident
// (the uncertain side with its signatures and SoA blocks) and, optionally, a
// trained qa.System warm in memory, and serves per-request delta joins
// (POST /join) and template-based question answering (POST /ask) behind an
// overload envelope — bounded admission, load-shedding tiers mapped onto the
// verdict ladder, retry with backoff around transient faults, a circuit
// breaker against verification storms, and graceful drain (DESIGN.md §14).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"unicode/utf8"

	"simjoin/internal/filter"
	"simjoin/internal/graph"
	"simjoin/internal/sparql"
)

// Limits bounds what a request may ask of the service. The decoders enforce
// every limit before any engine state is touched, so hostile payloads
// (oversized graphs, enormous label strings that would bloat the process-wide
// label dictionary, malformed JSON) are rejected at the door.
type Limits struct {
	// MaxBodyBytes caps the request body (also enforced by the HTTP layer).
	MaxBodyBytes int64
	// MaxQueryLen caps the SPARQL string / question text length in bytes.
	MaxQueryLen int
	// MaxVertices and MaxEdges cap the decoded query graph.
	MaxVertices, MaxEdges int
	// MaxLabelLen caps each vertex/edge label in bytes.
	MaxLabelLen int
	// MaxTau caps the per-request GED threshold override.
	MaxTau int
	// MaxLimit caps the per-request result limit.
	MaxLimit int
}

// DefaultLimits are the production defaults.
func DefaultLimits() Limits {
	return Limits{
		MaxBodyBytes: 1 << 20,
		MaxQueryLen:  16 << 10,
		MaxVertices:  64,
		MaxEdges:     256,
		MaxLabelLen:  256,
		MaxTau:       8,
		MaxLimit:     1000,
	}
}

// JoinRequest is the POST /join payload. Exactly one of Query (a SPARQL
// SELECT whose basic graph pattern becomes the query graph) or Graph (an
// explicit vertex/edge list) must be set.
type JoinRequest struct {
	// Query is a SPARQL SELECT query.
	Query string `json:"query,omitempty"`
	// Graph is an explicit query graph; wildcard labels start with '?'.
	Graph *GraphSpec `json:"graph,omitempty"`
	// Tau optionally overrides the service's GED threshold, clamped to
	// [0, Limits.MaxTau].
	Tau *int `json:"tau,omitempty"`
	// Alpha optionally overrides the similarity-probability threshold,
	// required in (0, 1].
	Alpha *float64 `json:"alpha,omitempty"`
	// Filters optionally overrides the service's filter chain for this
	// request: a comma-separated bound list validated against the bound
	// registry (e.g. "count,css,prob"), or "auto" to let the adaptive
	// optimizer reorder the service's chain online.
	Filters string `json:"filters,omitempty"`
	// Limit caps the matches returned (0 = all, bounded by Limits.MaxLimit).
	Limit int `json:"limit,omitempty"`
}

// GraphSpec is the explicit query-graph form: a vertex label list and
// [from, to, label] edge triples indexing into it.
type GraphSpec struct {
	Vertices []string   `json:"vertices"`
	Edges    []EdgeSpec `json:"edges"`
}

// EdgeSpec is one directed labeled edge.
type EdgeSpec struct {
	From  int    `json:"from"`
	To    int    `json:"to"`
	Label string `json:"label"`
}

// AskRequest is the POST /ask payload.
type AskRequest struct {
	Question string `json:"question"`
}

// errBadRequest wraps every decode failure so the handler can map it to 400.
var errBadRequest = errors.New("bad request")

func badRequestf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: "+format, append([]interface{}{errBadRequest}, args...)...)
}

// DecodeJoinRequest validates a /join body against lim and builds the query
// graph. It never panics on hostile input (a fuzz target pins this) and
// rejects anything over the configured limits before interning a single
// label.
func DecodeJoinRequest(body []byte, lim Limits) (*JoinRequest, *graph.Graph, error) {
	if int64(len(body)) > lim.MaxBodyBytes {
		return nil, nil, badRequestf("body exceeds %d bytes", lim.MaxBodyBytes)
	}
	var req JoinRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, nil, badRequestf("invalid JSON: %v", err)
	}
	if req.Tau != nil && (*req.Tau < 0 || *req.Tau > lim.MaxTau) {
		return nil, nil, badRequestf("tau %d outside [0, %d]", *req.Tau, lim.MaxTau)
	}
	if req.Alpha != nil && (*req.Alpha <= 0 || *req.Alpha > 1) {
		return nil, nil, badRequestf("alpha %v outside (0, 1]", *req.Alpha)
	}
	if req.Limit < 0 || req.Limit > lim.MaxLimit {
		return nil, nil, badRequestf("limit %d outside [0, %d]", req.Limit, lim.MaxLimit)
	}
	if req.Filters != "" && req.Filters != "auto" {
		if _, err := filter.ParseChain(req.Filters); err != nil {
			return nil, nil, badRequestf("%v", err)
		}
	}
	switch {
	case req.Query != "" && req.Graph != nil:
		return nil, nil, badRequestf("request sets both query and graph")
	case req.Query != "":
		qg, err := decodeQueryGraph(req.Query, lim)
		if err != nil {
			return nil, nil, err
		}
		return &req, qg, nil
	case req.Graph != nil:
		qg, err := decodeGraphSpec(req.Graph, lim)
		if err != nil {
			return nil, nil, err
		}
		return &req, qg, nil
	default:
		return nil, nil, badRequestf("request needs a query or a graph")
	}
}

func decodeQueryGraph(query string, lim Limits) (*graph.Graph, error) {
	if len(query) > lim.MaxQueryLen {
		return nil, badRequestf("query exceeds %d bytes", lim.MaxQueryLen)
	}
	if !utf8.ValidString(query) {
		return nil, badRequestf("query is not valid UTF-8")
	}
	qg, err := sparql.ParseToGraph(query)
	if err != nil {
		return nil, badRequestf("%v", err)
	}
	if err := checkGraphLimits(qg.Graph, lim); err != nil {
		return nil, err
	}
	return qg.Graph, nil
}

func decodeGraphSpec(spec *GraphSpec, lim Limits) (*graph.Graph, error) {
	if len(spec.Vertices) == 0 {
		return nil, badRequestf("graph has no vertices")
	}
	if len(spec.Vertices) > lim.MaxVertices {
		return nil, badRequestf("graph has %d vertices, limit %d", len(spec.Vertices), lim.MaxVertices)
	}
	if len(spec.Edges) > lim.MaxEdges {
		return nil, badRequestf("graph has %d edges, limit %d", len(spec.Edges), lim.MaxEdges)
	}
	// Validate every label before interning any: a request must not bloat
	// the process-wide label dictionary and then fail.
	for i, l := range spec.Vertices {
		if err := checkLabel(l, lim); err != nil {
			return nil, badRequestf("vertex %d: %v", i, err)
		}
	}
	for i, e := range spec.Edges {
		if e.From < 0 || e.From >= len(spec.Vertices) || e.To < 0 || e.To >= len(spec.Vertices) {
			return nil, badRequestf("edge %d references vertex outside [0, %d)", i, len(spec.Vertices))
		}
		if e.From == e.To {
			return nil, badRequestf("edge %d is a self-loop", i)
		}
		if err := checkLabel(e.Label, lim); err != nil {
			return nil, badRequestf("edge %d: %v", i, err)
		}
	}
	g := graph.New(len(spec.Vertices))
	for _, l := range spec.Vertices {
		g.AddVertex(l)
	}
	for i, e := range spec.Edges {
		if err := g.AddEdge(e.From, e.To, e.Label); err != nil {
			return nil, badRequestf("edge %d: %v", i, err)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, badRequestf("%v", err)
	}
	return g, nil
}

func checkLabel(l string, lim Limits) error {
	if l == "" {
		return errors.New("empty label")
	}
	if len(l) > lim.MaxLabelLen {
		return fmt.Errorf("label exceeds %d bytes", lim.MaxLabelLen)
	}
	if !utf8.ValidString(l) {
		return errors.New("label is not valid UTF-8")
	}
	for i := 0; i < len(l); i++ {
		if l[i] < 0x20 || l[i] == 0x7f {
			return fmt.Errorf("label contains control byte 0x%02x", l[i])
		}
	}
	return nil
}

// checkGraphLimits bounds a graph built by the SPARQL path, whose labels come
// from the query text (already length-capped as a whole, but individual IRIs
// still get the per-label checks).
func checkGraphLimits(g *graph.Graph, lim Limits) error {
	if g.NumVertices() > lim.MaxVertices {
		return badRequestf("query graph has %d vertices, limit %d", g.NumVertices(), lim.MaxVertices)
	}
	if g.NumEdges() > lim.MaxEdges {
		return badRequestf("query graph has %d edges, limit %d", g.NumEdges(), lim.MaxEdges)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if len(g.VertexLabel(v)) > lim.MaxLabelLen {
			return badRequestf("vertex %d: label exceeds %d bytes", v, lim.MaxLabelLen)
		}
	}
	for _, e := range g.Edges() {
		if len(e.Label) > lim.MaxLabelLen {
			return badRequestf("edge label exceeds %d bytes", lim.MaxLabelLen)
		}
	}
	return nil
}

// DecodeAskRequest validates a /ask body against lim.
func DecodeAskRequest(body []byte, lim Limits) (*AskRequest, error) {
	if int64(len(body)) > lim.MaxBodyBytes {
		return nil, badRequestf("body exceeds %d bytes", lim.MaxBodyBytes)
	}
	var req AskRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, badRequestf("invalid JSON: %v", err)
	}
	if req.Question == "" {
		return nil, badRequestf("empty question")
	}
	if len(req.Question) > lim.MaxQueryLen {
		return nil, badRequestf("question exceeds %d bytes", lim.MaxQueryLen)
	}
	if !utf8.ValidString(req.Question) {
		return nil, badRequestf("question is not valid UTF-8")
	}
	for i := 0; i < len(req.Question); i++ {
		if c := req.Question[i]; c < 0x20 && c != '\n' && c != '\t' {
			return nil, badRequestf("question contains control byte 0x%02x", c)
		}
	}
	return &req, nil
}
