// Package loadtest drives a running simjoind over real sockets: many
// concurrent askers replaying /sample payloads against /join, collecting
// client-side status and latency distributions, and gating on the server's
// own accounting (fetched from /metrics.json). cmd/loadgen is its CLI;
// ci.sh uses both as the out-of-process half of the chaos soak, with
// SIMJOIN_FAILPOINTS armed in the server process.
package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Config shapes one load run.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Workers is the number of concurrent askers (default 16).
	Workers int
	// Requests is the total request count across workers (default 1000).
	Requests int
	// Timeout bounds each HTTP request (default 10s).
	Timeout time.Duration
	// Seed makes payload selection reproducible.
	Seed int64
	// Ask, in [0, 1], is the fraction of requests sent to /ask instead of
	// /join (only useful against a QA workload; default 0).
	Ask float64
	// Questions are the /ask payloads drawn at random when Ask > 0.
	Questions []string
}

func (c *Config) normalise() error {
	if c.BaseURL == "" {
		return fmt.Errorf("loadtest: BaseURL required")
	}
	c.BaseURL = strings.TrimRight(c.BaseURL, "/")
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.Requests <= 0 {
		c.Requests = 1000
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.Ask > 0 && len(c.Questions) == 0 {
		c.Questions = []string{"which entity is this"}
	}
	return nil
}

// Result aggregates one run.
type Result struct {
	Sent     int           `json:"sent"`
	ByCode   map[int]int   `json:"byCode"`
	Errors   int           `json:"errors"` // transport-level failures
	P50, P99 time.Duration `json:"-"`
	P50MS    float64       `json:"p50Ms"`
	P99MS    float64       `json:"p99Ms"`
	Elapsed  time.Duration `json:"-"`
}

// OK reports how many requests got HTTP 200.
func (r *Result) OK() int { return r.ByCode[http.StatusOK] }

// Shed reports how many requests the server shed with 429.
func (r *Result) Shed() int { return r.ByCode[http.StatusTooManyRequests] }

// Run fires cfg.Requests requests from cfg.Workers concurrent askers.
// Payloads come from GET /sample (refreshed per worker, rotated per
// request). Transport errors are tolerated and tallied — a chaos run may
// kill connections — but a completely unreachable server fails fast.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	client := &http.Client{Timeout: cfg.Timeout}

	samples, err := fetchSamples(ctx, client, cfg.BaseURL, 8)
	if err != nil {
		return nil, err
	}

	var (
		mu        sync.Mutex
		res       = &Result{ByCode: map[int]int{}}
		latencies []time.Duration
		wg        sync.WaitGroup
	)
	start := time.Now()
	perWorker := cfg.Requests / cfg.Workers
	extra := cfg.Requests % cfg.Workers
	for w := 0; w < cfg.Workers; w++ {
		n := perWorker
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			for i := 0; i < n; i++ {
				if ctx.Err() != nil {
					return
				}
				path, body := "/join", samples[rng.Intn(len(samples))]
				if cfg.Ask > 0 && rng.Float64() < cfg.Ask {
					path = "/ask"
					q := cfg.Questions[rng.Intn(len(cfg.Questions))]
					body, _ = json.Marshal(map[string]string{"question": q})
				}
				t0 := time.Now()
				code, err := post(ctx, client, cfg.BaseURL+path, body)
				lat := time.Since(t0)
				mu.Lock()
				res.Sent++
				if err != nil {
					res.Errors++
				} else {
					res.ByCode[code]++
					latencies = append(latencies, lat)
				}
				mu.Unlock()
			}
		}(w, n)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		res.P50 = latencies[(len(latencies)-1)*50/100]
		res.P99 = latencies[(len(latencies)-1)*99/100]
		res.P50MS = float64(res.P50.Microseconds()) / 1e3
		res.P99MS = float64(res.P99.Microseconds()) / 1e3
	}
	return res, nil
}

func fetchSamples(ctx context.Context, client *http.Client, base string, n int) ([][]byte, error) {
	var samples [][]byte
	for i := 0; i < n; i++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/sample", nil)
		if err != nil {
			return nil, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, fmt.Errorf("loadtest: fetching /sample: %w", err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("loadtest: /sample returned %d: %s", resp.StatusCode, body)
		}
		samples = append(samples, body)
	}
	return samples, nil
}

func post(ctx context.Context, client *http.Client, url string, body []byte) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// Metrics is the subset of the server's /metrics.json snapshot the gates
// read.
type Metrics struct {
	Counters map[string]int64   `json:"counters"`
	Gauges   map[string]float64 `json:"gauges"`
}

// FetchMetrics reads the server's instrument snapshot.
func FetchMetrics(ctx context.Context, baseURL string) (*Metrics, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(baseURL, "/")+"/metrics.json", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadtest: /metrics.json returned %d", resp.StatusCode)
	}
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// TierCounts sums the endpoint×tier request counters for endpoint.
func (m *Metrics) TierCounts(endpoint string) map[string]int64 {
	out := map[string]int64{}
	// Names follow obs.Name's Prometheus syntax with keys sorted:
	// server_requests_total{endpoint="join",tier="exact"}.
	prefix := `server_requests_total{endpoint="` + endpoint + `",tier="`
	for name, v := range m.Counters {
		if strings.HasPrefix(name, prefix) {
			tier := strings.TrimSuffix(strings.TrimPrefix(name, prefix), `"}`)
			out[tier] += v
		}
	}
	return out
}

// Gate is one named pass/fail condition evaluated after a run.
type Gate struct {
	Name string
	Err  error
}

// GateResult evaluates the chaos-soak acceptance gates against a client
// Result and a server Metrics snapshot:
//
//	zero handler panics escaped containment uncounted, every request landed
//	in exactly one tier counter, the shed and degraded tiers actually
//	exercised (when required), and client P99 stayed under maxP99.
func GateResult(res *Result, m *Metrics, endpoint string, requireShed, requireDegrade bool, maxP99 time.Duration) []Gate {
	var gates []Gate
	add := func(name string, err error) { gates = append(gates, Gate{Name: name, Err: err}) }

	tiers := m.TierCounts(endpoint)
	var sum int64
	for _, v := range tiers {
		sum += v
	}
	answered := int64(res.OK())
	if got := tiers["exact"] + tiers["sampled"] + tiers["approx"]; got != answered {
		add("accounting", fmt.Errorf("answered tiers sum %d, client saw %d OK", got, answered))
	} else if sum < answered {
		add("accounting", fmt.Errorf("tier sum %d below answered %d", sum, answered))
	} else {
		add("accounting", nil)
	}

	if res.Errors > 0 {
		add("transport", fmt.Errorf("%d transport errors", res.Errors))
	} else {
		add("transport", nil)
	}

	if requireShed && tiers["shed"] == 0 {
		add("shed", fmt.Errorf("no requests shed; the overload path never ran"))
	} else {
		add("shed", nil)
	}
	if requireDegrade && tiers["sampled"]+tiers["approx"] == 0 {
		add("degrade", fmt.Errorf("no requests degraded; the pressure tiers never ran"))
	} else {
		add("degrade", nil)
	}

	if maxP99 > 0 && res.P99 > maxP99 {
		add("p99", fmt.Errorf("client P99 %v exceeds %v", res.P99, maxP99))
	} else {
		add("p99", nil)
	}
	return gates
}
