package server

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// Fuzz targets for the request decoders: whatever bytes arrive, the decoders
// must neither panic nor accept a graph that violates the configured limits.
// ci.sh runs these briefly on every push (fuzz smoke); longer runs grow the
// corpus under testdata/fuzz/.

func FuzzDecodeJoinRequest(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"query": "SELECT ?x WHERE { ?x type Film . }"}`,
		`{"graph": {"vertices": ["L0","L1"], "edges": [{"from":0,"to":1,"label":"e"}]}}`,
		`{"graph": {"vertices": ["L0"]}, "tau": 2, "alpha": 0.5, "limit": 10}`,
		`{"query": "SELECT", "graph": {"vertices": ["a"]}}`,
		`{"graph": {"vertices": [], "edges": []}}`,
		`{"graph": {"vertices": ["a","b"], "edges": [{"from":-1,"to":1,"label":"e"}]}}`,
		`{"graph": {"vertices": ["` + strings.Repeat("x", 300) + `"]}}`,
		`{"tau": 99999999999999999999}`,
		`[1,2,3]`,
		"{\"query\": \"\u0000\"}",
		"{\"query\": \"SELECT ?x WHERE { ?x \xff\xfe ?y }\"}",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	lim := DefaultLimits()
	f.Fuzz(func(t *testing.T, body []byte) {
		req, qg, err := DecodeJoinRequest(body, lim)
		if err != nil {
			if req != nil || qg != nil {
				t.Fatal("non-nil result alongside error")
			}
			return
		}
		if req == nil || qg == nil {
			t.Fatal("nil result without error")
		}
		if qg.NumVertices() == 0 || qg.NumVertices() > lim.MaxVertices {
			t.Fatalf("accepted graph with %d vertices", qg.NumVertices())
		}
		if qg.NumEdges() > lim.MaxEdges {
			t.Fatalf("accepted graph with %d edges", qg.NumEdges())
		}
		for v := 0; v < qg.NumVertices(); v++ {
			l := qg.VertexLabel(v)
			if len(l) > lim.MaxLabelLen || !utf8.ValidString(l) {
				t.Fatalf("accepted hostile vertex label %q", l)
			}
		}
		if req.Tau != nil && (*req.Tau < 0 || *req.Tau > lim.MaxTau) {
			t.Fatalf("accepted tau %d", *req.Tau)
		}
		if req.Alpha != nil && (*req.Alpha <= 0 || *req.Alpha > 1) {
			t.Fatalf("accepted alpha %v", *req.Alpha)
		}
	})
}

func FuzzDecodeAskRequest(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"question": "who directed the film"}`,
		`{"question": ""}`,
		`{"question": "` + strings.Repeat("q", 20000) + `"}`,
		`{"question": "line\nbreaks\tand tabs are fine"}`,
		"{\"question\": \"\x01\"}",
		`"just a string"`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	lim := DefaultLimits()
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := DecodeAskRequest(body, lim)
		if err != nil {
			return
		}
		q := req.Question
		if q == "" || len(q) > lim.MaxQueryLen || !utf8.ValidString(q) {
			t.Fatalf("accepted hostile question %q", q)
		}
		for i := 0; i < len(q); i++ {
			if c := q[i]; c < 0x20 && c != '\n' && c != '\t' {
				t.Fatalf("accepted control byte 0x%02x", c)
			}
		}
	})
}
