package server

import (
	"sort"
	"sync"
	"time"

	"simjoin/internal/obs"
)

// Circuit breaker against verification storms. A workload shift (PAPERS.md's
// "One Size Does Not Fit All": pruning effectiveness is workload-dependent)
// can push many pairs into heavy verification at once; the symptoms are a
// rising request-latency P99 and pairs landing in quarantine. The breaker
// watches a rolling window of request outcomes and, when either signal
// crosses its threshold, forces the service into approx-only mode (the
// cheapest certified rung of the verdict ladder) until probe requests pass
// at full fidelity again.

// BreakerConfig tunes the circuit breaker. The zero value disables it.
type BreakerConfig struct {
	// Window is the number of recent requests the trip signals are computed
	// over; 0 disables the breaker.
	Window int
	// QuarantineRate trips the breaker when the fraction of windowed
	// requests that quarantined at least one pair reaches it (> 0).
	QuarantineRate float64
	// LatencyP99 trips the breaker when the window's P99 request latency
	// reaches it (> 0).
	LatencyP99 time.Duration
	// Cooldown is how long the breaker stays open before probing.
	Cooldown time.Duration
	// Probes is how many consecutive healthy full-fidelity requests close a
	// half-open breaker.
	Probes int
}

func (c *BreakerConfig) normalise() {
	if c.Window <= 0 {
		return // disabled
	}
	if c.QuarantineRate <= 0 && c.LatencyP99 <= 0 {
		c.QuarantineRate = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.Probes <= 0 {
		c.Probes = 3
	}
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerHalfOpen
	breakerOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

type outcome struct {
	latency     time.Duration
	quarantined bool
}

type breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    breakerState
	ring     []outcome
	idx, n   int
	openedAt time.Time
	probesOK int

	trips      *obs.Counter
	stateGauge *obs.Gauge
}

func newBreaker(cfg BreakerConfig, reg *obs.Registry) *breaker {
	cfg.normalise()
	b := &breaker{
		cfg:        cfg,
		trips:      reg.Counter("server_breaker_trips_total"),
		stateGauge: reg.Gauge("server_breaker_state"),
	}
	if cfg.Window > 0 {
		b.ring = make([]outcome, cfg.Window)
	}
	return b
}

// allowFull reports whether requests may run at full fidelity. While the
// breaker is open it returns false — the server forces the approx tier —
// flipping to half-open (probing) once the cooldown has elapsed.
func (b *breaker) allowFull(now time.Time) bool {
	if b == nil || b.cfg.Window <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if now.Sub(b.openedAt) >= b.cfg.Cooldown {
			b.setState(breakerHalfOpen)
			b.probesOK = 0
			return true // probe at full fidelity
		}
		return false
	default:
		return true
	}
}

// record feeds one finished request's outcome into the window and applies
// the state machine.
func (b *breaker) record(now time.Time, latency time.Duration, quarantined bool) {
	if b == nil || b.cfg.Window <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ring[b.idx] = outcome{latency: latency, quarantined: quarantined}
	b.idx = (b.idx + 1) % len(b.ring)
	if b.n < len(b.ring) {
		b.n++
	}
	healthy := !quarantined && (b.cfg.LatencyP99 <= 0 || latency < b.cfg.LatencyP99)
	switch b.state {
	case breakerHalfOpen:
		if !healthy {
			b.trip(now)
			return
		}
		b.probesOK++
		if b.probesOK >= b.cfg.Probes {
			b.setState(breakerClosed)
			b.reset()
		}
	case breakerClosed:
		if b.n == len(b.ring) && b.unhealthyWindow() {
			b.trip(now)
		}
	}
}

// unhealthyWindow evaluates the trip signals over the full window; callers
// hold b.mu.
func (b *breaker) unhealthyWindow() bool {
	if b.cfg.QuarantineRate > 0 {
		q := 0
		for _, o := range b.ring[:b.n] {
			if o.quarantined {
				q++
			}
		}
		if float64(q)/float64(b.n) >= b.cfg.QuarantineRate {
			return true
		}
	}
	if b.cfg.LatencyP99 > 0 {
		lats := make([]time.Duration, b.n)
		for i, o := range b.ring[:b.n] {
			lats[i] = o.latency
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		if lats[(b.n-1)*99/100] >= b.cfg.LatencyP99 {
			return true
		}
	}
	return false
}

func (b *breaker) trip(now time.Time) {
	b.setState(breakerOpen)
	b.openedAt = now
	b.trips.Inc()
	b.reset()
}

func (b *breaker) reset() {
	b.idx, b.n = 0, 0
	b.probesOK = 0
}

func (b *breaker) setState(s breakerState) {
	b.state = s
	b.stateGauge.Set(float64(s))
}

// State reports the current state (for /healthz).
func (b *breaker) State() breakerState {
	if b == nil || b.cfg.Window <= 0 {
		return breakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
