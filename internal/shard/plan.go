// Package shard partitions both sides of the similarity join by banded
// MinHash signatures over the concrete-label bitsets (DESIGN.md §15).
//
// A Plan splits the query workload D into S disjoint partitions and the
// uncertain workload U into S disjoint partitions, both by the fold of their
// band keys (filter.AppendBandKeys / filter.BandOwner). Shard s of the
// sharded join owns the diagonal cells {(a, b) : (a + b) mod S == s}, so
// every (q, g) pair belongs to exactly one shard and the merged shard stats
// partition the full cross product exactly.
//
// Each query partition is packed once into a structure-of-arrays screening
// kernel — the query-side analogue of filter.GBlockSet: global ids sorted by
// graph size (contiguous size runs make the ±τ window a single position
// range), per-position vertex counts and distinct-label counts, and
// word-major label-bitset rows streamed by the candidate sweep. On top of the
// sweep sit per-band hash tables: an uncertain graph first probes its band
// keys, and colliding queries are screened immediately (cross-band
// duplicates are suppressed by an epoch-stamped seen array — the merge-dedup
// stage), then the residual sweep covers the rest of the size window. Both
// paths finish with the exact filter.LabelOverlapScreen, so a partition's
// candidate set is bit-identical to core.Index's restricted to the
// partition.
package shard

import (
	"math/bits"
	"sort"

	"simjoin/internal/filter"
	"simjoin/internal/graph"
	"simjoin/internal/ugraph"
)

// Plan is the immutable sharding of one (D, U) workload pair: safe for
// concurrent use by all per-shard pipelines once built.
type Plan struct {
	Shards int
	Bands  int

	// QOwner and UOwner map global indices to owning partitions.
	QOwner []int32
	UOwner []int32
	// Parts are the packed query-side partitions; UParts the uncertain-side
	// partition id lists, ascending.
	Parts  []*Partition
	UParts [][]int32

	qsigs []*filter.QSig
	gmeta []gmeta
}

// gmeta is the per-uncertain-graph screening summary, computed once at plan
// build so the per-cell candidate sweeps never touch the graph itself.
type gmeta struct {
	size  int32
	numV  int32
	wilds int32
	set   graph.LabelSet
	nz    []int32 // indices of set's nonzero words, for the sparse sweep
	keys  []uint64
}

// Partition is one packed query-side shard partition.
type Partition struct {
	// IDs are the member queries' global indices, sorted by (size, id).
	IDs []int32

	sizes []int32  // graph size (|V|+|E|) per position
	numV  []int32  // vertex count per position
	dq    []int32  // distinct concrete vertex labels per position
	width int      // label-row words per position
	rows  []uint64 // word-major label bitsets: rows[w*len(IDs)+p]

	runVal []int32 // distinct sizes, ascending
	runOff []int32 // position offsets per run; len(runVal)+1 entries

	bands []map[uint64][]int32 // band -> key -> member positions
}

// Len returns the number of queries in the partition.
func (pt *Partition) Len() int { return len(pt.IDs) }

// Build plans a sharded join: queries are described by their prebuilt
// signatures (qsigs[i].VSet is the banding input), the uncertain side by the
// graphs themselves. shards and bands must be >= 1.
func Build(qsigs []*filter.QSig, u []*ugraph.Graph, shards, bands int) *Plan {
	if shards < 1 {
		shards = 1
	}
	if bands < 1 {
		bands = 1
	}
	pl := &Plan{
		Shards: shards,
		Bands:  bands,
		QOwner: make([]int32, len(qsigs)),
		UOwner: make([]int32, len(u)),
		Parts:  make([]*Partition, shards),
		UParts: make([][]int32, shards),
		qsigs:  qsigs,
		gmeta:  make([]gmeta, len(u)),
	}

	// Query side: band every signature, assign owners, collect member lists.
	qkeys := make([]uint64, 0, len(qsigs)*bands)
	members := make([][]int32, shards)
	for i, qs := range qsigs {
		qkeys = filter.AppendBandKeys(qkeys, &qs.VSet, bands)
		o := filter.BandOwner(qkeys[i*bands:(i+1)*bands], shards)
		pl.QOwner[i] = int32(o)
		members[o] = append(members[o], int32(i))
	}
	for a := 0; a < shards; a++ {
		pl.Parts[a] = pl.packPartition(members[a], qkeys)
	}

	// Uncertain side: per-graph screening meta plus owner assignment.
	for gi, g := range u {
		gm := &pl.gmeta[gi]
		gm.size = int32(g.Size())
		gm.numV = int32(g.NumVertices())
		gm.wilds = int32(filter.UnionConcreteLabels(g, &gm.set))
		for wi, w := range gm.set.Words() {
			if w != 0 {
				gm.nz = append(gm.nz, int32(wi))
			}
		}
		gm.keys = filter.AppendBandKeys(make([]uint64, 0, bands), &gm.set, bands)
		o := filter.BandOwner(gm.keys, shards)
		pl.UOwner[gi] = int32(o)
		pl.UParts[o] = append(pl.UParts[o], int32(gi))
	}
	return pl
}

// packPartition sorts the member queries by (size, id) and lays out the SoA
// screening arrays, size runs and band tables.
func (pl *Plan) packPartition(ids []int32, qkeys []uint64) *Partition {
	sort.Slice(ids, func(i, j int) bool {
		si := pl.qsigs[ids[i]].NumV + pl.qsigs[ids[i]].NumE
		sj := pl.qsigs[ids[j]].NumV + pl.qsigs[ids[j]].NumE
		if si != sj {
			return si < sj
		}
		return ids[i] < ids[j]
	})
	n := len(ids)
	pt := &Partition{
		IDs:   ids,
		sizes: make([]int32, n),
		numV:  make([]int32, n),
		dq:    make([]int32, n),
		bands: make([]map[uint64][]int32, pl.Bands),
	}
	for b := range pt.bands {
		pt.bands[b] = make(map[uint64][]int32)
	}
	for p, id := range ids {
		qs := pl.qsigs[id]
		pt.sizes[p] = int32(qs.NumV + qs.NumE)
		pt.numV[p] = int32(qs.NumV)
		pt.dq[p] = int32(qs.VSet.Len())
		if w := len(qs.VSet.Words()); w > pt.width {
			pt.width = w
		}
		for b := 0; b < pl.Bands; b++ {
			key := qkeys[int(id)*pl.Bands+b]
			pt.bands[b][key] = append(pt.bands[b][key], int32(p))
		}
	}
	// Word-major label rows: the sweep streams one contiguous row per nonzero
	// word of the probe graph's set instead of strided per-query bitsets.
	pt.rows = make([]uint64, pt.width*n)
	for p, id := range ids {
		for wi, w := range pl.qsigs[id].VSet.Words() {
			pt.rows[wi*n+p] = w
		}
	}
	// Size runs: positions are size-sorted, so each distinct size is one
	// contiguous run and a ±τ window is a single position range.
	for p := 0; p < n; p++ {
		if p == 0 || pt.sizes[p] != pt.sizes[p-1] {
			pt.runVal = append(pt.runVal, pt.sizes[p])
			pt.runOff = append(pt.runOff, int32(p))
		}
	}
	pt.runOff = append(pt.runOff, int32(n))
	return pt
}

// Scratch holds the reusable per-feed state of the candidate sweep: the
// epoch-stamped seen array deduplicating cross-band collisions, the overlap
// accumulator, and the candidate buffer. One Scratch serves any number of
// sequential Candidates calls across partitions; it is not safe for
// concurrent use.
type Scratch struct {
	stamps []int32
	epoch  int32
	acc    []int32
	cands  []int32
}

func (sc *Scratch) ensure(n int) {
	if len(sc.stamps) < n {
		sc.stamps = make([]int32, n)
		sc.acc = make([]int32, n)
		sc.epoch = 0
	}
	sc.epoch++
	if sc.epoch == 1<<31-1 {
		for i := range sc.stamps {
			sc.stamps[i] = 0
		}
		sc.epoch = 1
	}
}

// Candidates computes the queries of partition a surviving the size and
// label prescreens against uncertain graph gi at threshold tau — exactly the
// set core.Index.Candidates would return restricted to the partition. The
// returned slice holds global query indices and is valid until the next call
// with the same Scratch. probes counts band-bucket entries inspected and
// dupes the cross-band duplicates the epoch stamps suppressed.
func (pl *Plan) Candidates(a, gi, tau int, sc *Scratch) (cands []int32, probes, dupes int64) {
	pt := pl.Parts[a]
	n := len(pt.IDs)
	if n == 0 {
		return nil, 0, 0
	}
	sc.ensure(n)
	gm := &pl.gmeta[gi]
	lo, hi := gm.size-int32(tau), gm.size+int32(tau)
	out := sc.cands[:0]

	// Band probe: queries colliding with g in any band are decided now, with
	// the exact screen; the stamps keep a pair colliding in k bands from
	// being screened (and fed) more than once.
	for b, key := range gm.keys {
		for _, p := range pt.bands[b][key] {
			probes++
			if sc.stamps[p] == sc.epoch {
				dupes++
				continue
			}
			sc.stamps[p] = sc.epoch
			if pt.sizes[p] < lo || pt.sizes[p] > hi {
				continue
			}
			if filter.LabelOverlapScreen(pl.qsigs[pt.IDs[p]], &gm.set, int(gm.wilds), int(gm.numV), tau) {
				out = append(out, pt.IDs[p])
			}
		}
	}

	// Residual sweep over the size window. Per run, the word-major rows are
	// streamed once per nonzero word of g's set, accumulating di = |labels(q)
	// ∩ labels(g)| (distinct). overlapUB = |V(q)| − (dq − di) + gWilds is a
	// sound upper bound on the exact screen's overlap estimate: each of the
	// (dq − di) distinct q-labels absent from g's set contributes at least
	// one unmatched vertex. UB survivors get the exact screen, so the
	// candidate set cannot drift from the scalar path.
	gWords := gm.set.Words()
	r0 := sort.Search(len(pt.runVal), func(r int) bool { return pt.runVal[r] >= lo })
	for r := r0; r < len(pt.runVal) && pt.runVal[r] <= hi; r++ {
		p0, p1 := int(pt.runOff[r]), int(pt.runOff[r+1])
		acc := sc.acc[:p1-p0]
		first := true
		for _, wi := range gm.nz {
			if int(wi) >= pt.width {
				continue // no query in this partition carries these labels
			}
			row := pt.rows[int(wi)*n:]
			gw := gWords[wi]
			if first {
				for p := p0; p < p1; p++ {
					acc[p-p0] = int32(bits.OnesCount64(row[p] & gw))
				}
				first = false
			} else {
				for p := p0; p < p1; p++ {
					acc[p-p0] += int32(bits.OnesCount64(row[p] & gw))
				}
			}
		}
		if first {
			for i := range acc {
				acc[i] = 0
			}
		}
		for p := p0; p < p1; p++ {
			if sc.stamps[p] == sc.epoch {
				continue // decided by the band probe
			}
			maxV := pt.numV[p]
			if gm.numV > maxV {
				maxV = gm.numV
			}
			ub := pt.numV[p] - pt.dq[p] + acc[p-p0] + gm.wilds
			if maxV-ub > int32(tau) {
				continue
			}
			if filter.LabelOverlapScreen(pl.qsigs[pt.IDs[p]], &gm.set, int(gm.wilds), int(gm.numV), tau) {
				out = append(out, pt.IDs[p])
			}
		}
	}
	sc.cands = out
	return out, probes, dupes
}

// UPartitions partitions the uncertain side alone by band-key ownership: the
// resident join service routes each delta join through the shard owning each
// resident graph. The returned lists are ascending and disjoint, and cover
// every index in u.
func UPartitions(u []*ugraph.Graph, shards, bands int) [][]int32 {
	if shards < 1 {
		shards = 1
	}
	if bands < 1 {
		bands = 1
	}
	parts := make([][]int32, shards)
	var set graph.LabelSet
	keys := make([]uint64, 0, bands)
	for gi, g := range u {
		filter.UnionConcreteLabels(g, &set)
		keys = filter.AppendBandKeys(keys[:0], &set, bands)
		o := filter.BandOwner(keys, shards)
		parts[o] = append(parts[o], int32(gi))
	}
	return parts
}
