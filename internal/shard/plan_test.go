package shard_test

import (
	"sort"
	"testing"

	"simjoin/internal/core"
	"simjoin/internal/filter"
	"simjoin/internal/graph"
	"simjoin/internal/shard"
	"simjoin/internal/ugraph"
	"simjoin/internal/workload"
)

// sharedLabelWorkload builds nd queries and nu uncertain graphs that all
// share the exact label set {x, y}: identical band keys in every band, so
// every pair collides everywhere — the worst case for cross-band dedup.
func sharedLabelWorkload(nd, nu int) ([]*graph.Graph, []*ugraph.Graph) {
	d := make([]*graph.Graph, nd)
	for i := range d {
		g := graph.New(3)
		g.AddVertex("x")
		g.AddVertex("y")
		g.AddVertex("x")
		g.MustAddEdge(0, 1, "e")
		if i%2 == 0 {
			g.MustAddEdge(1, 2, "e")
		}
		d[i] = g
	}
	u := make([]*ugraph.Graph, nu)
	for j := range u {
		g := ugraph.New(3)
		g.AddVertex(ugraph.Label{Name: "x", P: 1})
		g.AddVertex(ugraph.Label{Name: "y", P: 0.7}, ugraph.Label{Name: "x", P: 0.3})
		g.AddVertex(ugraph.Label{Name: "y", P: 1})
		g.MustAddEdge(0, 1, "e")
		if j%2 == 0 {
			g.MustAddEdge(1, 2, "e")
		}
		u[j] = g
	}
	return d, u
}

func TestPlanPartitionsCoverBothSides(t *testing.T) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = 60
	d, u := workload.ER(cfg)
	qsigs := filter.NewQSigs(d)
	for _, shards := range []int{1, 2, 3, 8, 97} {
		pl := shard.Build(qsigs, u, shards, 4)
		seenQ := make([]bool, len(d))
		for a, pt := range pl.Parts {
			for _, id := range pt.IDs {
				if seenQ[id] {
					t.Fatalf("shards=%d: query %d in two partitions", shards, id)
				}
				seenQ[id] = true
				if pl.QOwner[id] != int32(a) {
					t.Fatalf("shards=%d: QOwner[%d]=%d but found in partition %d", shards, id, pl.QOwner[id], a)
				}
			}
		}
		for i, ok := range seenQ {
			if !ok {
				t.Fatalf("shards=%d: query %d in no partition", shards, i)
			}
		}
		seenU := make([]bool, len(u))
		for b, part := range pl.UParts {
			if !sort.SliceIsSorted(part, func(i, j int) bool { return part[i] < part[j] }) {
				t.Fatalf("shards=%d: UParts[%d] not ascending", shards, b)
			}
			for _, gi := range part {
				if seenU[gi] {
					t.Fatalf("shards=%d: uncertain %d in two partitions", shards, gi)
				}
				seenU[gi] = true
			}
		}
		for i, ok := range seenU {
			if !ok {
				t.Fatalf("shards=%d: uncertain %d in no partition", shards, i)
			}
		}
	}
}

// TestPlanCandidatesMatchIndex pins the equivalence the sharded join builds
// on: per uncertain graph, the disjoint union of per-partition candidate sets
// equals the unsharded index's candidate set exactly.
func TestPlanCandidatesMatchIndex(t *testing.T) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = 80
	cfg.LabelAlphabet = 6 // dense label reuse: band collisions guaranteed
	d, u := workload.ER(cfg)
	qsigs := filter.NewQSigs(d)
	idx := core.BuildIndex(d)
	for _, shards := range []int{1, 2, 5, 8} {
		for _, bands := range []int{1, 4} {
			pl := shard.Build(qsigs, u, shards, bands)
			var sc shard.Scratch
			var probes, dupes int64
			for _, tau := range []int{0, 1, 3} {
				for gi := range u {
					var got []int
					for a := 0; a < shards; a++ {
						cands, p, dd := pl.Candidates(a, gi, tau, &sc)
						probes += p
						dupes += dd
						for _, id := range cands {
							got = append(got, int(id))
						}
					}
					sort.Ints(got)
					want := idx.Candidates(u[gi], tau)
					if len(got) != len(want) {
						t.Fatalf("shards=%d bands=%d tau=%d g=%d: %d candidates, index has %d",
							shards, bands, tau, gi, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("shards=%d bands=%d tau=%d g=%d: candidate sets differ at %d: %d vs %d",
								shards, bands, tau, gi, i, got[i], want[i])
						}
					}
				}
			}
			if probes == 0 {
				t.Fatalf("shards=%d bands=%d: band tables never probed", shards, bands)
			}
			_ = dupes // may be zero when no query collides in two bands
		}
	}
}

// TestPlanCandidatesDedupAllBandsCollide crafts a workload where every query
// shares one label set, so every pair collides in every band; each pair must
// still be screened exactly once, with the duplicates counted.
func TestPlanCandidatesDedupAllBandsCollide(t *testing.T) {
	d, u := sharedLabelWorkload(12, 5)
	qsigs := filter.NewQSigs(d)
	const bands = 4
	pl := shard.Build(qsigs, u, 3, bands)
	var sc shard.Scratch
	idx := core.BuildIndex(d)
	for gi := range u {
		var total int
		var dupes, probes int64
		for a := 0; a < pl.Shards; a++ {
			cands, p, dd := pl.Candidates(a, gi, 2, &sc)
			total += len(cands)
			probes += p
			dupes += dd
		}
		// Identical label sets: every band bucket holds the whole partition,
		// so probes = bands × |D| and all but the first hit per pair are
		// suppressed duplicates.
		if probes != int64(bands*len(d)) {
			t.Fatalf("g=%d: probes=%d, want %d", gi, probes, bands*len(d))
		}
		if dupes != int64((bands-1)*len(d)) {
			t.Fatalf("g=%d: dupes=%d, want %d", gi, dupes, (bands-1)*len(d))
		}
		if want := len(idx.Candidates(u[gi], 2)); total != want {
			t.Fatalf("g=%d: %d candidates after dedup, index has %d", gi, total, want)
		}
	}
}

func TestUPartitionsCoverAndRouteLikeBuild(t *testing.T) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = 50
	d, u := workload.ER(cfg)
	qsigs := filter.NewQSigs(d)
	for _, shards := range []int{1, 4, 9} {
		parts := shard.UPartitions(u, shards, 4)
		pl := shard.Build(qsigs, u, shards, 4)
		if len(parts) != shards {
			t.Fatalf("got %d partitions, want %d", len(parts), shards)
		}
		seen := 0
		for b, part := range parts {
			seen += len(part)
			for _, gi := range part {
				if pl.UOwner[gi] != int32(b) {
					t.Fatalf("shards=%d: UPartitions routes %d to %d, Build to %d",
						shards, gi, b, pl.UOwner[gi])
				}
			}
		}
		if seen != len(u) {
			t.Fatalf("shards=%d: partitions cover %d of %d graphs", shards, seen, len(u))
		}
	}
}
