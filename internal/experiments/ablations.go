package experiments

import (
	"fmt"
	"time"

	"simjoin/internal/core"
	"simjoin/internal/filter"
	"simjoin/internal/ged"
	"simjoin/internal/graph"
	"simjoin/internal/gstore"
	"simjoin/internal/metrics"
	"simjoin/internal/nlq"
	"simjoin/internal/sparql"
	"simjoin/internal/ugraph"
	"simjoin/internal/workload"
)

// AblationBoundTightness (A1) measures how tight each lower bound is in
// practice: the mean ratio lb/ged over AIDS-like pairs with small true
// distances, plus the fraction of pairs where each bound equals the best
// bound. It validates Theorem 2 empirically (CSS ≥ LM ≥ never better than
// exact).
func AblationBoundTightness(scale Scale) (*metrics.Table, error) {
	cfg := workload.DefaultAIDSConfig()
	cfg.Count = scale.apply(40)
	gs := workload.AIDS(cfg)
	half := len(gs) / 2
	qs, ds := gs[:half], gs[half:]

	kinds := []FilterKind{FilterCount, FilterLM, FilterCSS, FilterPath, FilterSegos, FilterPars}
	sumRatio := map[FilterKind]float64{}
	wins := map[FilterKind]int{}
	n := 0
	for _, q := range qs {
		for _, g := range ds {
			res, err := ged.Compute(q, g, ged.Options{Threshold: 8, MaxStates: 1_000_000})
			if err != nil || res.Exceeded || res.Distance == 0 {
				continue
			}
			n++
			best := -1
			for _, k := range kinds {
				lb := evalFilter(k, q, g, 8)
				sumRatio[k] += float64(lb) / float64(res.Distance)
				if lb > best {
					best = lb
				}
			}
			for _, k := range kinds {
				if evalFilter(k, q, g, 8) == best {
					wins[k]++
				}
			}
		}
	}
	t := metrics.NewTable("filter", "mean lb/ged", "best-bound share")
	for _, k := range kinds {
		t.AddRow(string(k), sumRatio[k]/float64(max1(n)), metrics.Ratio(wins[k], n))
	}
	return t, nil
}

// AblationEarlyExit (A2) compares verification with and without the early
// accept/reject short-circuit.
func AblationEarlyExit(scale Scale) (*metrics.Table, error) {
	p, err := preparedWorkload(scale.qaldConfig())
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("earlyExit", "verifyTime", "worldsChecked", "results")
	for _, disable := range []bool{false, true} {
		opts := DefaultJoinOptions()
		opts.DisableEarlyExit = disable
		opts.Workers = 1
		_, st, err := p.Join(opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(!disable, st.VerifyTime.Round(time.Microsecond), st.WorldsChecked, st.Results)
	}
	return t, nil
}

// AblationGroupingPolicy (A3) compares the cost-model-driven query-aware
// splitting of §6.2 against the query-independent mass policy and no
// grouping at all, on the SF workload.
func AblationGroupingPolicy(scale Scale) (*metrics.Table, error) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = scale.apply(cfg.Count)
	cfg.Seed = 9
	d, u := workload.SF(cfg)

	t := metrics.NewTable("policy", "candRatio", "probPruned")

	// No grouping: plain SimJ.
	opts := DefaultJoinOptions()
	opts.Tau = 2
	opts.Alpha = 0.5
	opts.Mode = core.ModeSimJ
	opts.Workers = 1
	_, st, err := core.Join(d, u, opts)
	if err != nil {
		return nil, err
	}
	t.AddRow("none (SimJ)", st.CandidateRatio(), st.ProbPruned)

	// Query-aware cost model (the shipped SimJ+opt).
	opts.Mode = core.ModeSimJOpt
	opts.GroupCount = 8
	_, st, err = core.Join(d, u, opts)
	if err != nil {
		return nil, err
	}
	t.AddRow("cost-model (SimJ+opt)", st.CandidateRatio(), st.ProbPruned)

	// Query-independent mass split, evaluated through the same grouped
	// bound sum but with ugraph.ByMass choosing the splits.
	cand, pruned := massPolicyRatio(d, u, 8, 2, 0.5)
	t.AddRow("by-mass", cand, pruned)
	return t, nil
}

// massPolicyRatio evaluates the grouped probabilistic bound with the
// query-independent ByMass policy.
func massPolicyRatio(d []*graph.Graph, u []*ugraph.Graph, gn, tau int, alpha float64) (float64, int64) {
	pairs := 0
	candidates := 0
	var pruned int64
	for _, g := range u {
		groups := g.PartitionWorlds(gn, ugraph.ByMass)
		for _, q := range d {
			pairs++
			if filter.CSSLowerBoundUncertain(q, g) > tau {
				continue
			}
			ub := 0.0
			for _, gr := range groups {
				ub += filter.GroupUpperBound(q, gr, tau)
			}
			if ub < alpha {
				pruned++
				continue
			}
			candidates++
		}
	}
	return metrics.Ratio(candidates, pairs), pruned
}

// AblationEdgeUncertainty (A5) evaluates the §3.1.1 "general case": joining
// with edge-label uncertainty through reified graphs versus the default
// top-1-predicate collapse, on the questions rendered with misleading
// relation phrases. The reified join can still reach the gold query through
// the second paraphrase's possible worlds.
func AblationEdgeUncertainty(scale Scale) (*metrics.Table, error) {
	cfg := scale.qaldConfig()
	cfg.NoisyPhraseRate = 0.5 // concentrate on the phenomenon under test
	w, err := workload.GenerateQA(cfg)
	if err != nil {
		return nil, err
	}

	// Collapsed representation (the default pipeline).
	p := Prepare(w)

	// Reified representation of the same workload.
	var dReified []*graph.Graph
	for _, e := range w.Sparql {
		dReified = append(dReified, graph.Reify(e.Graph.Graph))
	}
	var uReified []*ugraph.Graph
	var qOf []int
	for qi, q := range w.Questions {
		uq, err := nlq.InterpretReified(q.Text, w.KB.Lexicon)
		if err != nil {
			continue
		}
		uReified = append(uReified, uq.Graph)
		qOf = append(qOf, qi)
	}

	correctNoisy := func(pairs []core.Pair, questionOf []int, sig func(qi int) string) (gold, total int) {
		for _, pr := range pairs {
			q := w.Questions[questionOf[pr.G]]
			if !q.Noisy {
				continue
			}
			total++
			if sig(pr.Q) == q.GoldSig {
				gold++
			}
		}
		return gold, total
	}

	t := metrics.NewTable("representation", "tau", "noisy pairs", "gold-pred pairs", "share")

	opts := DefaultJoinOptions()
	pairs, _, err := p.Join(opts)
	if err != nil {
		return nil, err
	}
	g, tot := correctNoisy(pairs, p.QuestionOf, func(qi int) string { return w.Sparql[qi].Sig })
	t.AddRow("collapsed top-1", opts.Tau, tot, g, metrics.Ratio(g, tot))

	// Reified scale: a predicate substitution is still 1 edit, but entity
	// substitutions stay 1 too; structural edits triple. τ=1 keeps the same
	// "one label off" semantics.
	rOpts := DefaultJoinOptions()
	rOpts.KeepMappings = false
	rPairs, _, err := core.Join(dReified, uReified, rOpts)
	if err != nil {
		return nil, err
	}
	g, tot = correctNoisy(rPairs, qOf, func(qi int) string { return w.Sparql[qi].Sig })
	t.AddRow("reified (edge uncertainty)", rOpts.Tau, tot, g, metrics.Ratio(g, tot))
	return t, nil
}

// AblationTotalProbabilityBound (A6) measures how often the law-of-total-
// probability refinement of Theorem 4 is strictly tighter and what it costs.
func AblationTotalProbabilityBound(scale Scale) (*metrics.Table, error) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = scale.apply(cfg.Count)
	d, u := workload.ER(cfg)
	tau := 2

	t := metrics.NewTable("bound", "time", "mean ub", "strictly tighter")
	evalBound := func(name string, fn func(q *graph.Graph, g *ugraph.Graph) float64) (sum float64, elapsed time.Duration) {
		start := time.Now()
		for _, q := range d {
			for _, g := range u {
				sum += fn(q, g)
			}
		}
		return sum, time.Since(start)
	}
	plainSum, plainT := evalBound("plain", func(q *graph.Graph, g *ugraph.Graph) float64 {
		return filter.SimilarityUpperBound(q, g, tau)
	})
	tighter := 0
	condSum, condT := evalBound("conditioned", func(q *graph.Graph, g *ugraph.Graph) float64 {
		v := filter.TotalProbabilityUpperBound(q, g, tau)
		if v < filter.SimilarityUpperBound(q, g, tau)-1e-12 {
			tighter++
		}
		return v
	})
	n := float64(len(d) * len(u))
	t.AddRow("Theorem 4", plainT.Round(time.Microsecond), plainSum/n, "-")
	t.AddRow("total probability", condT.Round(time.Microsecond), condSum/n, tighter)
	return t, nil
}

// AblationIndexedJoin (A7) compares the nested-loop join against the
// size/label-indexed join on the WebQ workload.
func AblationIndexedJoin(scale Scale) (*metrics.Table, error) {
	p, err := preparedWorkload(scale.webqConfig())
	if err != nil {
		return nil, err
	}
	opts := DefaultJoinOptions()
	opts.Workers = 1
	opts.KeepMappings = false

	t := metrics.NewTable("join", "wallClock", "pairs", "prescreen-skipped")
	start := time.Now()
	pairs, _, err := p.Join(opts)
	if err != nil {
		return nil, err
	}
	t.AddRow("nested loop", time.Since(start).Round(time.Microsecond), len(pairs), 0)

	start = time.Now()
	idx := core.BuildIndex(p.D)
	iPairs, iStats, err := core.JoinIndexed(idx, p.U, opts)
	if err != nil {
		return nil, err
	}
	t.AddRow("indexed", time.Since(start).Round(time.Microsecond), len(iPairs), iStats.IndexSkipped)
	if len(iPairs) != len(pairs) {
		return nil, fmt.Errorf("indexed join returned %d pairs, nested loop %d", len(iPairs), len(pairs))
	}
	return t, nil
}

// AblationEngines (A8) compares the reference BGP executor against the
// signature-based gstore engine over the SPARQL workload's queries, checking
// result equality while timing both.
func AblationEngines(scale Scale) (*metrics.Table, error) {
	w, err := workload.GenerateQA(scale.qaldConfig())
	if err != nil {
		return nil, err
	}
	buildStart := time.Now()
	idx := gstore.Build(w.KB.Store)
	buildTime := time.Since(buildStart)

	refTime := time.Duration(0)
	gsTime := time.Duration(0)
	solutions := 0
	for _, e := range w.Sparql {
		start := time.Now()
		want, err := sparql.Execute(w.KB.Store, e.Query, 0)
		refTime += time.Since(start)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		got, err := idx.Execute(e.Query, 0)
		gsTime += time.Since(start)
		if err != nil {
			return nil, err
		}
		if len(got) != len(want) {
			return nil, fmt.Errorf("engine disagreement on %s: %d vs %d", e.Query, len(got), len(want))
		}
		solutions += len(want)
	}
	t := metrics.NewTable("engine", "indexBuild", "queryTime", "queries", "solutions")
	t.AddRow("reference executor", time.Duration(0), refTime.Round(time.Microsecond), len(w.Sparql), solutions)
	t.AddRow("gstore signatures", buildTime.Round(time.Microsecond), gsTime.Round(time.Microsecond), len(w.Sparql), solutions)
	return t, nil
}

// AblationParallelism (A4) measures join wall-clock as worker count grows.
func AblationParallelism(scale Scale, workerCounts []int) (*metrics.Table, error) {
	p, err := preparedWorkload(scale.webqConfig())
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("workers", "wallClock", "results")
	for _, wkr := range workerCounts {
		opts := DefaultJoinOptions()
		opts.Workers = wkr
		start := time.Now()
		pairs, _, err := p.Join(opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(wkr, time.Since(start).Round(time.Microsecond), len(pairs))
	}
	return t, nil
}
