package experiments

import (
	"fmt"
	"time"

	"simjoin/internal/core"
	"simjoin/internal/metrics"
	"simjoin/internal/template"
	"simjoin/internal/ugraph"
	"simjoin/internal/workload"
)

// Scale shrinks or grows workload sizes uniformly; 1.0 is the repository
// default (laptop-scale; see DESIGN.md for the mapping to the paper's
// sizes).
type Scale float64

func (s Scale) apply(n int) int {
	if s <= 0 {
		s = 1
	}
	v := int(float64(n) * float64(s))
	if v < 1 {
		v = 1
	}
	return v
}

func (s Scale) qaldConfig() workload.QAConfig {
	cfg := workload.QALD3Config()
	cfg.Questions = s.apply(cfg.Questions)
	cfg.ExtraQueries = s.apply(cfg.ExtraQueries)
	return cfg
}

func (s Scale) webqConfig() workload.QAConfig {
	cfg := workload.WebQConfig(0.35) // default WebQ already 10x QALD; temper it
	cfg.Questions = s.apply(cfg.Questions)
	cfg.ExtraQueries = s.apply(cfg.ExtraQueries)
	return cfg
}

func (s Scale) mmConfig() workload.QAConfig {
	cfg := workload.MMConfig()
	cfg.Questions = s.apply(cfg.Questions)
	cfg.ExtraQueries = s.apply(cfg.ExtraQueries)
	return cfg
}

// preparedWorkload builds and interprets one named workload.
func preparedWorkload(cfg workload.QAConfig) (*Pipeline, error) {
	w, err := workload.GenerateQA(cfg)
	if err != nil {
		return nil, err
	}
	return Prepare(w), nil
}

// Table2Datasets reproduces Table 2: statistics of every dataset.
func Table2Datasets(scale Scale) (*metrics.Table, error) {
	t := metrics.NewTable("Dataset", "|U|", "avg.|V|", "avg.|E|", "avg.|LV|", "|D|")
	type row struct {
		name string
		cfg  workload.QAConfig
	}
	for _, r := range []row{
		{"QALD3", scale.qaldConfig()},
		{"WebQ", scale.webqConfig()},
		{"MM", scale.mmConfig()},
	} {
		p, err := preparedWorkload(r.cfg)
		if err != nil {
			return nil, err
		}
		av, ae, al := uncertainStats(p.U)
		t.AddRow(r.name, len(p.U), av, ae, al, len(p.D))
	}
	syn := workload.DefaultSyntheticConfig()
	syn.Count = scale.apply(syn.Count)
	for _, s := range []struct {
		name string
		er   bool
	}{{"ER", true}, {"SF", false}} {
		var u []*ugraph.Graph
		var dlen int
		if s.er {
			d, uu := workload.ER(syn)
			u, dlen = uu, len(d)
		} else {
			d, uu := workload.SF(syn)
			u, dlen = uu, len(d)
		}
		av, ae, al := uncertainStats(u)
		t.AddRow(s.name, len(u), av, ae, al, dlen)
	}
	return t, nil
}

func uncertainStats(u []*ugraph.Graph) (avgV, avgE, avgLV float64) {
	if len(u) == 0 {
		return 0, 0, 0
	}
	var sv, se, sl int
	for _, g := range u {
		sv += g.NumVertices()
		se += g.NumEdges()
		for v := 0; v < g.NumVertices(); v++ {
			sl += len(g.Labels(v))
		}
	}
	n := float64(len(u))
	return float64(sv) / n, float64(se) / n, float64(sl) / n
}

// Table3EffectTau reproduces Table 3: |R|, precision and time for τ ∈ {0,1,2}
// at α = 0.9 over the QALD-3-like and WebQ-like workloads.
func Table3EffectTau(scale Scale) (*metrics.Table, error) {
	t := metrics.NewTable("Workload", "tau", "|R|", "precision", "time")
	for _, wl := range []struct {
		name string
		cfg  workload.QAConfig
	}{
		{"QALD3", scale.qaldConfig()},
		{"WebQ", scale.webqConfig()},
	} {
		p, err := preparedWorkload(wl.cfg)
		if err != nil {
			return nil, err
		}
		for _, tau := range []int{0, 1, 2} {
			opts := DefaultJoinOptions()
			opts.Tau = tau
			start := time.Now()
			pairs, _, err := p.Join(opts)
			if err != nil {
				return nil, err
			}
			t.AddRow(wl.name, tau, len(pairs), p.Precision(pairs), time.Since(start).Round(time.Millisecond))
		}
	}
	return t, nil
}

// Fig9EffectAlpha reproduces Fig. 9: precision (a) and correct answers (b)
// versus the similarity probability threshold α at τ = 1 over QALD3, WebQ
// and MM.
func Fig9EffectAlpha(scale Scale) (*metrics.Table, error) {
	t := metrics.NewTable("Workload", "alpha", "precision", "correct", "|R|")
	for _, wl := range []struct {
		name string
		cfg  workload.QAConfig
	}{
		{"QALD3", scale.qaldConfig()},
		{"WebQ", scale.webqConfig()},
		{"MM", scale.mmConfig()},
	} {
		p, err := preparedWorkload(wl.cfg)
		if err != nil {
			return nil, err
		}
		for _, alpha := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			opts := DefaultJoinOptions()
			opts.Alpha = alpha
			pairs, _, err := p.Join(opts)
			if err != nil {
				return nil, err
			}
			t.AddRow(wl.name, alpha, p.Precision(pairs), p.CountCorrect(pairs), len(pairs))
		}
	}
	return t, nil
}

// Fig10CaseStudy reproduces Fig. 10 + Fig. 16: sample similar pairs and the
// templates built from them.
func Fig10CaseStudy(scale Scale, max int) ([]string, error) {
	p, err := preparedWorkload(scale.qaldConfig())
	if err != nil {
		return nil, err
	}
	pairs, _, err := p.Join(DefaultJoinOptions())
	if err != nil {
		return nil, err
	}
	var out []string
	for _, pr := range pairs {
		if len(out) >= max {
			break
		}
		if !p.PairCorrect(pr) || pr.Mapping == nil {
			continue
		}
		tpl, err := template.Generate(p.W.Sparql[pr.Q].Graph, p.UQ[pr.G], pr.Mapping)
		if err != nil {
			continue
		}
		out = append(out, fmt.Sprintf("Q: %s\nSPARQL: %s\nTemplate: %s",
			p.W.Questions[p.QuestionOf[pr.G]].Text, p.W.Sparql[pr.Q].Query, tpl))
	}
	return out, nil
}

// Fig17RelationCount reproduces Fig. 17: the proportion ρ of correct pairs
// whose question has k relations, for the QALD3 and WebQ workloads.
func Fig17RelationCount(scale Scale) (*metrics.Table, error) {
	t := metrics.NewTable("Workload", "k", "rho")
	for _, wl := range []struct {
		name string
		cfg  workload.QAConfig
	}{
		{"QALD3", scale.qaldConfig()},
		{"WebQ", scale.webqConfig()},
	} {
		p, err := preparedWorkload(wl.cfg)
		if err != nil {
			return nil, err
		}
		pairs, _, err := p.Join(DefaultJoinOptions())
		if err != nil {
			return nil, err
		}
		counts := map[int]int{}
		total := 0
		for _, pr := range pairs {
			if !p.PairCorrect(pr) {
				continue
			}
			k := p.W.Questions[p.QuestionOf[pr.G]].Relations
			counts[k]++
			total++
		}
		maxK := wl.cfg.MaxRelations
		for k := 1; k <= maxK; k++ {
			t.AddRow(wl.name, k, metrics.Ratio(counts[k], total))
		}
	}
	return t, nil
}

// Fig18FailureAnalysis reproduces Fig. 18: the causes of incorrect pairs at
// the default τ=1 (where, as in the paper, misinterpreted semantic query
// graphs dominate; at larger τ the edit tolerance takes over).
func Fig18FailureAnalysis(scale Scale) (*metrics.Table, error) {
	p, err := preparedWorkload(scale.qaldConfig())
	if err != nil {
		return nil, err
	}
	opts := DefaultJoinOptions()
	pairs, _, err := p.Join(opts)
	if err != nil {
		return nil, err
	}
	counts := map[FailureKind]int{}
	total := 0
	for _, pr := range pairs {
		if p.PairCorrect(pr) {
			continue
		}
		counts[p.ClassifyFailure(pr)]++
		total++
	}
	t := metrics.NewTable("Reason", "count", "ratio")
	t.AddRow("Incorrect semantic query graph", counts[FailSemanticGraph], metrics.Ratio(counts[FailSemanticGraph], total))
	t.AddRow("Graph edit distance", counts[FailGED], metrics.Ratio(counts[FailGED], total))
	t.AddRow("Others", counts[FailOther], metrics.Ratio(counts[FailOther], total))
	return t, nil
}

// joinWith is a small helper running a join with given mode and thresholds.
func joinWith(p *Pipeline, mode core.Mode, tau int, alpha float64, gn int) ([]core.Pair, core.Stats, error) {
	opts := DefaultJoinOptions()
	opts.Mode = mode
	opts.Tau = tau
	opts.Alpha = alpha
	opts.GroupCount = gn
	return p.Join(opts)
}
