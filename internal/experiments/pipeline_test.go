package experiments

import (
	"testing"

	"simjoin/internal/metrics"
	"simjoin/internal/qa"
	"simjoin/internal/workload"
)

// smallWorkload builds a compact but fully featured QALD-style workload.
func smallWorkload(t *testing.T) *workload.QAWorkload {
	t.Helper()
	cfg := workload.QALD3Config()
	cfg.Questions = 60
	cfg.ExtraQueries = 40
	cfg.KB.EntitiesPerClass = 20
	w, err := workload.GenerateQA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPipelineEndToEnd(t *testing.T) {
	w := smallWorkload(t)
	p := Prepare(w)
	if len(p.U) == 0 {
		t.Fatal("no questions interpreted")
	}
	if rate := float64(len(p.U)) / float64(len(w.Questions)); rate < 0.85 {
		t.Fatalf("interpretation rate %v too low", rate)
	}

	opts := DefaultJoinOptions()
	pairs, stats, err := p.Join(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("join returned no pairs at tau=1")
	}
	if stats.Candidates >= stats.Pairs {
		t.Errorf("no pruning at all: %d candidates of %d pairs", stats.Candidates, stats.Pairs)
	}

	// Precision at tau=1, alpha=0.9 should be high (paper: 97.67% QALD-3).
	prec := p.Precision(pairs)
	if prec < 0.7 {
		t.Errorf("join precision %v too low (correct %d of %d)", prec, p.CountCorrect(pairs), len(pairs))
	}

	store, skipped := p.BuildTemplates(pairs)
	if store.Len() == 0 {
		t.Fatalf("no templates generated (%d skipped)", skipped)
	}
	t.Logf("pairs=%d precision=%.3f templates=%d skipped=%d", len(pairs), prec, store.Len(), skipped)
}

func TestTauZeroIsPerfectPrecision(t *testing.T) {
	w := smallWorkload(t)
	p := Prepare(w)
	opts := DefaultJoinOptions()
	opts.Tau = 0
	pairs, _, err := p.Join(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Skip("no exact-twin pairs in this configuration")
	}
	// At tau=0 the only possible wrong pairs come from misinterpreted
	// questions (noisy relation phrases), never from the edit tolerance.
	for _, pr := range pairs {
		if p.PairCorrect(pr) {
			continue
		}
		if kind := p.ClassifyFailure(pr); kind != FailSemanticGraph {
			t.Errorf("tau=0 failure classified %v, want FailSemanticGraph: q=%s question=%q",
				kind, p.W.Sparql[pr.Q].Query, p.W.Questions[p.QuestionOf[pr.G]].Text)
		}
	}
	if prec := p.Precision(pairs); prec < 0.9 {
		t.Errorf("tau=0 precision = %v, want >= 0.9", prec)
	}
}

func TestTauMonotonicity(t *testing.T) {
	w := smallWorkload(t)
	p := Prepare(w)
	prevResults := -1
	prevPrecision := 2.0
	for _, tau := range []int{0, 1, 2} {
		opts := DefaultJoinOptions()
		opts.Tau = tau
		pairs, _, err := p.Join(opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) < prevResults {
			t.Errorf("results shrank when tau grew: %d -> %d", prevResults, len(pairs))
		}
		prec := p.Precision(pairs)
		t.Logf("tau=%d |R|=%d precision=%.3f", tau, len(pairs), prec)
		if tau > 0 && len(pairs) > 20 && prec > prevPrecision+0.05 {
			t.Errorf("precision rose sharply with tau: %v -> %v", prevPrecision, prec)
		}
		prevResults = len(pairs)
		if len(pairs) > 0 {
			prevPrecision = prec
		}
	}
}

func TestQASystemsOrdering(t *testing.T) {
	// Template coverage needs the full training workload (the Table 4
	// harness trains on 2x the QALD question count).
	cfg := workload.QALD3Config()
	cfg.Questions *= 2
	w, err := workload.GenerateQA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := Prepare(w)
	pairs, _, err := p.Join(DefaultJoinOptions())
	if err != nil {
		t.Fatal(err)
	}
	store, _ := p.BuildTemplates(pairs)
	if store.Len() == 0 {
		t.Fatal("no templates")
	}

	systems := []qa.System{
		&qa.TemplateSystem{Store: store, Lex: w.KB.Lexicon, KB: w.KB.Store, MinPhi: 0.5},
		&qa.GAnswerSystem{Lex: w.KB.Lexicon, KB: w.KB.Store},
		&qa.DeannaSystem{Lex: w.KB.Lexicon, KB: w.KB.Store},
	}
	holdout := w.HoldoutQuestions(999, 60, 0.2)
	f1s := make(map[string]float64)
	for _, sys := range systems {
		var q metrics.QALD
		for i := range holdout {
			hq := &holdout[i]
			gold, err := p.GoldAnswers(hq)
			if err != nil {
				t.Fatal(err)
			}
			ans, err := AnswerSet(sys, hq.Text, hq.Gold)
			if err != nil {
				q.AddUnanswered()
				continue
			}
			pp, rr, ff := metrics.SetPRF(ans, gold)
			q.AddAnswered(pp, rr, ff)
		}
		_, _, f1 := q.Macro()
		answered, total := q.Answered()
		t.Logf("%s: F1=%.3f answered %d/%d", sys.Name(), f1, answered, total)
		f1s[sys.Name()] = f1
	}
	if f1s["template"] <= f1s["gAnswer"] {
		t.Errorf("template F1 %.3f should beat gAnswer %.3f", f1s["template"], f1s["gAnswer"])
	}
	if f1s["gAnswer"] <= f1s["DEANNA"] {
		t.Errorf("gAnswer F1 %.3f should beat DEANNA %.3f", f1s["gAnswer"], f1s["DEANNA"])
	}
	if f1s["template"] < 0.4 {
		t.Errorf("template F1 %.3f too low to be useful", f1s["template"])
	}
}
