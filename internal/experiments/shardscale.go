package experiments

// The sharded-join scaling experiment: the milestone workload (DESIGN.md §15)
// joined once by the single-engine indexed path and once by the sharded
// pipeline, with result equality cross-checked. The default -scale runs a
// heavily shrunk milestone so CI can afford it; -scale 1 is the full
// 10^6 x 10^5 measurement behind BENCH_shard.json.

import (
	"context"
	"fmt"
	"time"

	"simjoin/internal/core"
	"simjoin/internal/metrics"
	"simjoin/internal/workload"
)

// shardScaleFraction shrinks the milestone workload for the default
// experiment run: 10^3 queries x 10^2 uncertain graphs at -scale 1e-3 (the
// cmd/experiments default), finishing in seconds on one core.
const shardScaleFraction = 1e-3

// ShardScale compares the single-engine indexed join against the sharded
// pipeline on the scaled template workload, at shard counts 2 and 8. Rows
// report wall clock (including index/plan construction), the pair and result
// counts, and the merge stage's shard imbalance; a result-set mismatch
// between any two rows is an error, not a row.
func ShardScale(scale Scale) (*metrics.Table, error) {
	f := float64(scale)
	if f <= 0 {
		f = 1
	}
	cfg := workload.MilestoneScaledConfig().WithScale(f * shardScaleFraction)
	d, u := workload.Scaled(cfg)

	opts := DefaultJoinOptions()
	opts.Workers = 1
	opts.KeepMappings = false
	// The template workload's uncertain vertices hold the true label at
	// confidence 2/3, so exact-copy pairs land near SimP 0.74; alpha 0.5
	// keeps them in the result set (0.9 would return nothing).
	opts.Tau = 1
	opts.Alpha = 0.5

	t := metrics.NewTable("join", "wallClock", "pairs", "results", "imbalance")

	start := time.Now()
	idx := core.BuildIndex(d)
	basePairs, baseStats, err := core.JoinIndexed(idx, u, opts)
	if err != nil {
		return nil, err
	}
	t.AddRow("single engine", time.Since(start).Round(time.Microsecond),
		baseStats.Pairs, len(basePairs), "-")

	for _, shards := range []int{2, 8} {
		sopts := opts
		sopts.Shards = shards
		sopts.Bands = 4
		start = time.Now()
		pairs, stats, per, err := core.ShardedJoinStats(context.Background(), d, u, sopts)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("sharded x%d", shards), time.Since(start).Round(time.Microsecond),
			stats.Pairs, len(pairs), fmt.Sprintf("%.3f", core.ShardImbalance(per)))
		if len(pairs) != len(basePairs) {
			return nil, fmt.Errorf("sharded x%d returned %d results, single engine %d",
				shards, len(pairs), len(basePairs))
		}
		if stats.Pairs != baseStats.Pairs {
			return nil, fmt.Errorf("sharded x%d evaluated %d pairs, single engine %d",
				shards, stats.Pairs, baseStats.Pairs)
		}
	}
	return t, nil
}
