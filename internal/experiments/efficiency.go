package experiments

import (
	"time"

	"simjoin/internal/core"
	"simjoin/internal/filter"
	"simjoin/internal/ged"
	"simjoin/internal/graph"
	"simjoin/internal/metrics"
	"simjoin/internal/ugraph"
	"simjoin/internal/workload"
)

// modesUnderTest is the fixed comparison set of Figs. 11–14.
var modesUnderTest = []core.Mode{core.ModeCSSOnly, core.ModeSimJ, core.ModeSimJOpt}

// syntheticJoin wraps a synthetic D/U pair.
type syntheticJoin struct {
	d []*graph.Graph
	u []*ugraph.Graph
}

func (s syntheticJoin) join(opts core.Options) ([]core.Pair, core.Stats, error) {
	return core.Join(s.d, s.u, opts)
}

// realRatio computes the true result ratio (the "Real" line of the candidate
// ratio figures) from any mode's results.
func realRatio(st core.Stats) float64 { return st.ResultRatio() }

// Fig11AlphaEfficiency reproduces Fig. 11 over the WebQ-like workload:
// response time split into pruning/verification and candidate ratios for
// CSS-only, SimJ and SimJ+opt while α varies (τ = 1).
func Fig11AlphaEfficiency(scale Scale) (*metrics.Table, error) {
	p, err := preparedWorkload(scale.webqConfig())
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("alpha", "mode", "pruning", "verification", "overall", "candRatio", "realRatio")
	for _, alpha := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		for _, mode := range modesUnderTest {
			opts := DefaultJoinOptions()
			opts.Alpha = alpha
			opts.Mode = mode
			opts.GroupCount = 8
			opts.Workers = 1 // single worker: additive phase timings
			_, st, err := p.Join(opts)
			if err != nil {
				return nil, err
			}
			t.AddRow(alpha, mode.String(),
				st.PruneTime.Round(time.Microsecond),
				st.VerifyTime.Round(time.Microsecond),
				(st.PruneTime + st.VerifyTime).Round(time.Microsecond),
				st.CandidateRatio(), realRatio(st))
		}
	}
	return t, nil
}

// Fig12TauEfficiency reproduces Fig. 12 over the ER workload: response time
// and candidate ratio while τ varies.
func Fig12TauEfficiency(scale Scale, maxTau int) (*metrics.Table, error) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = scale.apply(cfg.Count)
	d, u := workload.ER(cfg)
	s := syntheticJoin{d, u}
	t := metrics.NewTable("tau", "mode", "pruning", "verification", "overall", "candRatio", "realRatio")
	for tau := 0; tau <= maxTau; tau++ {
		for _, mode := range modesUnderTest {
			opts := DefaultJoinOptions()
			opts.Tau = tau
			opts.Alpha = 0.5
			opts.Mode = mode
			opts.GroupCount = 8
			opts.Workers = 1
			_, st, err := s.join(opts)
			if err != nil {
				return nil, err
			}
			t.AddRow(tau, mode.String(),
				st.PruneTime.Round(time.Microsecond),
				st.VerifyTime.Round(time.Microsecond),
				(st.PruneTime + st.VerifyTime).Round(time.Microsecond),
				st.CandidateRatio(), realRatio(st))
		}
	}
	return t, nil
}

// Fig13GroupNumber reproduces Fig. 13 over the SF workload: the effect of
// the possible-world group count GN on SimJ+opt.
func Fig13GroupNumber(scale Scale) (*metrics.Table, error) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Count = scale.apply(cfg.Count)
	cfg.Seed = 3
	d, u := workload.SF(cfg)
	s := syntheticJoin{d, u}
	t := metrics.NewTable("GN", "pruning", "verification", "overall", "candRatio", "realRatio")
	for _, gn := range []int{1, 5, 10, 20, 40} {
		opts := DefaultJoinOptions()
		opts.Tau = 2
		opts.Alpha = 0.5
		opts.Mode = core.ModeSimJOpt
		opts.GroupCount = gn
		opts.Workers = 1
		_, st, err := s.join(opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(gn,
			st.PruneTime.Round(time.Microsecond),
			st.VerifyTime.Round(time.Microsecond),
			(st.PruneTime + st.VerifyTime).Round(time.Microsecond),
			st.CandidateRatio(), realRatio(st))
	}
	return t, nil
}

// Fig14LabelCount reproduces Fig. 14 over the ER workload: the effect of the
// per-vertex candidate label count |L(v)|.
func Fig14LabelCount(scale Scale) (*metrics.Table, error) {
	t := metrics.NewTable("|L(v)|", "mode", "pruning", "verification", "overall", "candRatio", "realRatio")
	for _, lv := range []int{2, 3, 4, 5, 6} {
		cfg := workload.DefaultSyntheticConfig()
		cfg.Count = scale.apply(cfg.Count)
		cfg.LabelsPerVertex = lv
		cfg.Seed = int64(100 + lv)
		d, u := workload.ER(cfg)
		s := syntheticJoin{d, u}
		for _, mode := range modesUnderTest {
			opts := DefaultJoinOptions()
			opts.Tau = 2
			opts.Alpha = 0.5
			opts.Mode = mode
			opts.GroupCount = 8
			opts.Workers = 1
			_, st, err := s.join(opts)
			if err != nil {
				return nil, err
			}
			t.AddRow(lv, mode.String(),
				st.PruneTime.Round(time.Microsecond),
				st.VerifyTime.Round(time.Microsecond),
				(st.PruneTime + st.VerifyTime).Round(time.Microsecond),
				st.CandidateRatio(), realRatio(st))
		}
	}
	return t, nil
}

// FilterKind names the filters compared in Fig. 15.
type FilterKind string

// The compared filters.
const (
	FilterPath  FilterKind = "Path"
	FilterSegos FilterKind = "SEGOS"
	FilterPars  FilterKind = "Pars"
	FilterCSS   FilterKind = "CSS"
	FilterLM    FilterKind = "LM"
	FilterCount FilterKind = "Count"
)

func evalFilter(kind FilterKind, q, g *graph.Graph, tau int) int {
	switch kind {
	case FilterPath:
		return filter.PathGramLowerBound(q, g)
	case FilterSegos:
		return filter.SegosLowerBound(q, g, tau)
	case FilterPars:
		return filter.ParsLowerBound(q, g)
	case FilterCSS:
		return filter.CSSLowerBound(q, g)
	case FilterLM:
		return filter.LMLowerBound(q, g)
	default:
		return filter.CountLowerBound(q, g)
	}
}

// Fig15FilterComparison reproduces Fig. 15 over the AIDS-like graph set:
// filtering time and candidate ratio of the Path, SEGOS, Pars and CSS
// filters (plus LM and Count for the Theorem 2 context) for τ ∈ 0..maxTau.
// The "Real" line is computed with threshold-bounded exact GED.
func Fig15FilterComparison(scale Scale, maxTau int) (*metrics.Table, error) {
	cfg := workload.DefaultAIDSConfig()
	cfg.Count = scale.apply(cfg.Count)
	gs := workload.AIDS(cfg)
	half := len(gs) / 2
	qs, ds := gs[:half], gs[half:]

	kinds := []FilterKind{FilterPath, FilterSegos, FilterPars, FilterCSS, FilterLM, FilterCount}
	t := metrics.NewTable("tau", "filter", "filterTime", "candRatio", "realRatio")
	for tau := 0; tau <= maxTau; tau++ {
		real := 0
		for _, q := range qs {
			for _, g := range ds {
				if filter.CSSLowerBound(q, g) > tau {
					continue // CSS is proven sound; skip hopeless pairs
				}
				res, err := ged.Compute(q, g, ged.Options{Threshold: tau, MaxStates: 2_000_000})
				if err == nil && !res.Exceeded {
					real++
				}
			}
		}
		total := len(qs) * len(ds)
		for _, kind := range kinds {
			start := time.Now()
			candidates := 0
			for _, q := range qs {
				for _, g := range ds {
					if evalFilter(kind, q, g, tau) <= tau {
						candidates++
					}
				}
			}
			t.AddRow(tau, string(kind), time.Since(start).Round(time.Microsecond),
				metrics.Ratio(candidates, total), metrics.Ratio(real, total))
		}
	}
	return t, nil
}
