package experiments

import (
	"bytes"
	"strings"
	"testing"

	"simjoin/internal/metrics"
)

// TestEveryExperimentRuns smoke-tests the full harness at a tiny scale: each
// table/figure function must succeed and render non-empty output. This keeps
// cmd/experiments and bench_test.go from rotting when internals change.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test is not short")
	}
	s := Scale(0.12)
	cases := []struct {
		name string
		fn   func() (*metrics.Table, error)
	}{
		{"table2", func() (*metrics.Table, error) { return Table2Datasets(s) }},
		{"table3", func() (*metrics.Table, error) { return Table3EffectTau(s) }},
		{"fig9", func() (*metrics.Table, error) { return Fig9EffectAlpha(s) }},
		{"fig11", func() (*metrics.Table, error) { return Fig11AlphaEfficiency(s) }},
		{"fig12", func() (*metrics.Table, error) { return Fig12TauEfficiency(s, 2) }},
		{"fig13", func() (*metrics.Table, error) { return Fig13GroupNumber(s) }},
		{"fig14", func() (*metrics.Table, error) { return Fig14LabelCount(s) }},
		{"fig15", func() (*metrics.Table, error) { return Fig15FilterComparison(s, 2) }},
		{"table4", func() (*metrics.Table, error) { return Table4QASystems(s) }},
		{"table5", func() (*metrics.Table, error) { return Table5MatchProportion(s) }},
		{"fig17", func() (*metrics.Table, error) { return Fig17RelationCount(s) }},
		{"fig18", func() (*metrics.Table, error) { return Fig18FailureAnalysis(s) }},
		{"a1", func() (*metrics.Table, error) { return AblationBoundTightness(s) }},
		{"a2", func() (*metrics.Table, error) { return AblationEarlyExit(s) }},
		{"a3", func() (*metrics.Table, error) { return AblationGroupingPolicy(s) }},
		{"a4", func() (*metrics.Table, error) { return AblationParallelism(s, []int{1, 2}) }},
		{"a5", func() (*metrics.Table, error) { return AblationEdgeUncertainty(s) }},
		{"a6", func() (*metrics.Table, error) { return AblationTotalProbabilityBound(s) }},
		{"a7", func() (*metrics.Table, error) { return AblationIndexedJoin(s) }},
		{"a8", func() (*metrics.Table, error) { return AblationEngines(s) }},
		{"shardscale", func() (*metrics.Table, error) { return ShardScale(s) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			tab, err := c.fn()
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			var buf bytes.Buffer
			if err := tab.Render(&buf); err != nil {
				t.Fatal(err)
			}
			if lines := strings.Count(buf.String(), "\n"); lines < 2 {
				t.Fatalf("%s rendered only %d lines:\n%s", c.name, lines, buf.String())
			}
		})
	}
	if cases, err := Fig10CaseStudy(s, 2); err != nil || len(cases) == 0 {
		t.Fatalf("fig10: %d cases, err %v", len(cases), err)
	}
}
