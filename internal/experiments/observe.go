package experiments

import "simjoin/internal/obs"

var (
	obsReg    *obs.Registry
	obsTracer *obs.Tracer
)

// Observe attaches a metrics registry and span tracer to every join
// configured through DefaultJoinOptions — the single chokepoint all
// experiment and training joins flow through — so commands can expose one
// registry covering a whole run. Passing nils detaches.
func Observe(reg *obs.Registry, tr *obs.Tracer) {
	obsReg, obsTracer = reg, tr
}
