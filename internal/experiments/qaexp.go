package experiments

import (
	"simjoin/internal/metrics"
	"simjoin/internal/qa"
	"simjoin/internal/template"
	"simjoin/internal/workload"
)

// qaSetup builds the trained template store and the holdout question set
// shared by Tables 4 and 5.
type qaSetup struct {
	p       *Pipeline
	store   *template.Store
	holdout []workload.Question
}

func prepareQASetup(scale Scale) (*qaSetup, error) {
	cfg := scale.qaldConfig()
	// Template coverage benefits from a denser training workload; Table 4
	// in the paper trains on the full joined workloads.
	cfg.Questions *= 2
	p, err := preparedWorkload(cfg)
	if err != nil {
		return nil, err
	}
	pairs, _, err := p.Join(DefaultJoinOptions())
	if err != nil {
		return nil, err
	}
	store, _ := p.BuildTemplates(pairs)
	return &qaSetup{
		p:       p,
		store:   store,
		holdout: p.W.HoldoutQuestions(999, scale.apply(100), 0.2),
	}, nil
}

// evalSystem scores one system over the holdout with QALD macro-averaging.
func (s *qaSetup) evalSystem(sys qa.System) (p, r, f float64, answered, total int) {
	var q metrics.QALD
	for i := range s.holdout {
		hq := &s.holdout[i]
		gold, err := s.p.GoldAnswers(hq)
		if err != nil {
			q.AddUnanswered()
			continue
		}
		ans, err := AnswerSet(sys, hq.Text, hq.Gold)
		if err != nil {
			q.AddUnanswered()
			continue
		}
		pp, rr, ff := metrics.SetPRF(ans, gold)
		q.AddAnswered(pp, rr, ff)
	}
	p, r, f = q.Macro()
	answered, total = q.Answered()
	return p, r, f, answered, total
}

// Table4QASystems reproduces Table 4: QALD-style precision/recall/F1 of the
// template system against the gAnswer- and DEANNA-style baselines.
func Table4QASystems(scale Scale) (*metrics.Table, error) {
	s, err := prepareQASetup(scale)
	if err != nil {
		return nil, err
	}
	kb := s.p.W.KB
	systems := []qa.System{
		&qa.TemplateSystem{Store: s.store, Lex: kb.Lexicon, KB: kb.Store, MinPhi: 0.5},
		&qa.GAnswerSystem{Lex: kb.Lexicon, KB: kb.Store},
		&qa.DeannaSystem{Lex: kb.Lexicon, KB: kb.Store},
	}
	t := metrics.NewTable("Method", "Precision", "Recall", "F-1", "answered")
	for _, sys := range systems {
		p, r, f, answered, total := s.evalSystem(sys)
		t.AddRow(sys.Name(), p, r, f, answered*100/max1(total))
	}
	return t, nil
}

// Table5MatchProportion reproduces Table 5: the template system's precision,
// recall and F1 as the minimum matching proportion φ varies from 0.5 to 1.0.
func Table5MatchProportion(scale Scale) (*metrics.Table, error) {
	s, err := prepareQASetup(scale)
	if err != nil {
		return nil, err
	}
	kb := s.p.W.KB
	t := metrics.NewTable("phi", "Precision", "Recall", "F-1", "answered")
	for _, phi := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		sys := &qa.TemplateSystem{Store: s.store, Lex: kb.Lexicon, KB: kb.Store, MinPhi: phi}
		p, r, f, answered, total := s.evalSystem(sys)
		t.AddRow(phi, p, r, f, answered*100/max1(total))
	}
	return t, nil
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}
