// Package experiments assembles the full pipeline (workload → uncertain
// graphs → SimJ → templates → Q/A) and regenerates every table and figure of
// the paper's evaluation (§7, Appendix F). Each experiment has a function
// returning printable rows; cmd/experiments and bench_test.go drive them.
package experiments

import (
	"fmt"

	"simjoin/internal/core"
	"simjoin/internal/graph"
	"simjoin/internal/nlq"
	"simjoin/internal/sparql"
	"simjoin/internal/template"
	"simjoin/internal/ugraph"
	"simjoin/internal/workload"
)

// Pipeline holds one prepared workload: the SPARQL graphs D, the interpreted
// uncertain question graphs U, and the provenance linking them back to the
// generated questions.
type Pipeline struct {
	W *workload.QAWorkload
	// D is the certain graph set (one per SPARQL workload entry).
	D []*graph.Graph
	// U is the uncertain graph set (one per interpretable question).
	U []*ugraph.Graph
	// UQ keeps the full interpretation of each U entry.
	UQ []*nlq.UncertainQuestion
	// QuestionOf maps U index → question index in W.Questions.
	QuestionOf []int
	// InterpretErrors counts questions the NLQ pipeline rejected.
	InterpretErrors int
}

// Prepare interprets every question of the workload into an uncertain graph.
func Prepare(w *workload.QAWorkload) *Pipeline {
	p := &Pipeline{W: w}
	for _, e := range w.Sparql {
		p.D = append(p.D, e.Graph.Graph)
	}
	for qi, q := range w.Questions {
		uq, err := nlq.Interpret(q.Text, w.KB.Lexicon)
		if err != nil {
			p.InterpretErrors++
			continue
		}
		p.U = append(p.U, uq.Graph)
		p.UQ = append(p.UQ, uq)
		p.QuestionOf = append(p.QuestionOf, qi)
	}
	return p
}

// Join runs SimJ between D and U.
func (p *Pipeline) Join(opts core.Options) ([]core.Pair, core.Stats, error) {
	return core.Join(p.D, p.U, opts)
}

// PairCorrect implements the correctness criterion of §7.1.2: the returned
// SPARQL query must match the question's gold query except for entity
// phrases — equal entity-blind signatures.
func (p *Pipeline) PairCorrect(pair core.Pair) bool {
	q := p.W.Sparql[pair.Q]
	question := p.W.Questions[p.QuestionOf[pair.G]]
	return q.Sig == question.GoldSig
}

// CountCorrect tallies correct pairs (the |C| metric).
func (p *Pipeline) CountCorrect(pairs []core.Pair) int {
	n := 0
	for _, pr := range pairs {
		if p.PairCorrect(pr) {
			n++
		}
	}
	return n
}

// Precision returns |C| / |R| for a result set.
func (p *Pipeline) Precision(pairs []core.Pair) float64 {
	if len(pairs) == 0 {
		return 0
	}
	return float64(p.CountCorrect(pairs)) / float64(len(pairs))
}

// BuildTemplates turns join pairs into a deduplicated template store
// (§2.1 Step 3). For every question, grounded pairs (slot correspondences
// backed by the entity-linking candidates) are preferred over ungrounded
// ones when any exist. Pairs whose mapping yields no usable alignment are
// skipped and counted.
func (p *Pipeline) BuildTemplates(pairs []core.Pair) (*template.Store, int) {
	store := template.NewStore()
	skipped := 0

	grounded := make(map[int]bool) // question-side index -> has grounded pair
	for _, pr := range pairs {
		if pr.Mapping != nil && template.Grounded(p.W.Sparql[pr.Q].Graph, p.UQ[pr.G], pr.Mapping) {
			grounded[pr.G] = true
		}
	}
	for _, pr := range pairs {
		if pr.Mapping == nil {
			skipped++
			continue
		}
		if grounded[pr.G] && !template.Grounded(p.W.Sparql[pr.Q].Graph, p.UQ[pr.G], pr.Mapping) {
			skipped++
			continue
		}
		tpl, err := template.Generate(p.W.Sparql[pr.Q].Graph, p.UQ[pr.G], pr.Mapping)
		if err != nil {
			skipped++
			continue
		}
		store.Add(tpl)
	}
	return store, skipped
}

// FailureKind classifies an incorrect pair (Fig. 18).
type FailureKind int

const (
	// FailSemanticGraph means the question's semantic query graph itself
	// misrepresents the gold intent (wrong predicate, missing vertex, …).
	FailSemanticGraph FailureKind = iota
	// FailGED means the semantic graph was faithful but the edit-distance
	// tolerance matched a query with a different intent.
	FailGED
	// FailOther covers the remainder.
	FailOther
)

// ClassifyFailure attributes an incorrect pair to a failure cause by
// comparing the question's uncertain graph against its gold query graph.
func (p *Pipeline) ClassifyFailure(pair core.Pair) FailureKind {
	question := p.W.Questions[p.QuestionOf[pair.G]]
	goldQG, err := sparql.BuildQueryGraph(question.Gold)
	if err != nil {
		return FailOther
	}
	u := p.U[pair.G]
	// Faithful interpretation: same vertex/edge counts and every uncertain
	// edge label appears among the gold predicates.
	goldPreds := map[string]bool{}
	for _, e := range goldQG.Graph.Edges() {
		goldPreds[e.Label] = true
	}
	if u.NumVertices() != goldQG.Graph.NumVertices() || u.NumEdges() != goldQG.Graph.NumEdges() {
		return FailSemanticGraph
	}
	for _, e := range u.Edges() {
		if !goldPreds[e.Label] {
			return FailSemanticGraph
		}
	}
	if pair.Distance > 0 {
		return FailGED
	}
	return FailOther
}

// GoldAnswers executes a question's gold query over the KB and returns the
// projected answer set.
func (p *Pipeline) GoldAnswers(q *workload.Question) (map[string]bool, error) {
	res, err := sparql.Execute(p.W.KB.Store, q.Gold, 0)
	if err != nil {
		return nil, err
	}
	return bindingSet(res, q.Gold), nil
}

// bindingSet flattens bindings to a comparable answer set (the first
// projected variable's values, the QALD convention for single-answer-slot
// questions).
func bindingSet(res []sparql.Binding, q *sparql.Query) map[string]bool {
	out := make(map[string]bool, len(res))
	v := firstVar(q)
	for _, b := range res {
		if val, ok := b[v]; ok {
			out[val] = true
		}
	}
	return out
}

func firstVar(q *sparql.Query) string {
	if len(q.Vars) > 0 && q.Vars[0] != "*" {
		return q.Vars[0]
	}
	vars := q.Variables()
	if len(vars) > 0 {
		return vars[0]
	}
	return ""
}

// AnswerSet runs a Q/A system and flattens its bindings; the error is
// propagated so callers can count abstentions.
func AnswerSet(sys interface {
	Answer(string) ([]sparql.Binding, error)
}, question string, gold *sparql.Query) (map[string]bool, error) {
	res, err := sys.Answer(question)
	if err != nil {
		return nil, err
	}
	// Project on the system's own first variable: systems may name
	// variables differently, so take all bound values of the first variable
	// of each binding deterministically — here we flatten every value.
	out := make(map[string]bool)
	for _, b := range res {
		for _, v := range b {
			out[v] = true
		}
	}
	_ = gold
	return out, nil
}

// DefaultJoinOptions returns the paper's τ=1, α=0.9 configuration with
// mappings kept for template generation.
func DefaultJoinOptions() core.Options {
	o := core.DefaultOptions()
	o.Mode = core.ModeSimJ
	o.Obs = obsReg
	o.Tracer = obsTracer
	return o
}

// fmtDuration is a helper for printing stats uniformly.
func fmtDuration(sec float64) string { return fmt.Sprintf("%.3fs", sec) }
