package linker

import (
	"encoding/json"
	"testing"
)

func TestLexiconJSONRoundTrip(t *testing.T) {
	l := demo()
	l.AddInverseRelation("the team of", "playsFor", 1.0, "Team")

	data, err := json.Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	got := NewLexicon()
	if err := json.Unmarshal(data, got); err != nil {
		t.Fatal(err)
	}

	// Entities round trip with order and confidences.
	cands := got.LinkEntity("Michael Jordan")
	if len(cands) != 2 || cands[0].Entity != "MJ_NBA" || cands[0].P != 0.6 {
		t.Fatalf("entities lost: %v", cands)
	}
	// Relations including the inverse flag and range.
	rel := got.Paraphrase("the team of")
	if len(rel) != 1 || !rel[0].Inverse || rel[0].Range != "Team" {
		t.Fatalf("inverse relation lost: %+v", rel)
	}
	// Classes.
	if c, ok := got.LookupClass("actors"); !ok || c != "Actor" {
		t.Fatalf("classes lost: %q %v", c, ok)
	}
	// Multi-word matching still works (maxWords recomputed on load).
	if _, phrase, n := got.MatchRelation([]string{"who", "is", "married", "to", "X"}, 1); n != 3 || phrase != "is married to" {
		t.Fatalf("multi-word relation lost: %q/%d", phrase, n)
	}
	s1, r1, c1, a1 := l.Stats()
	s2, r2, c2, a2 := got.Stats()
	if s1 != s2 || r1 != r2 || c1 != c2 || a1 != a2 {
		t.Fatalf("stats differ: %d/%d/%d/%d vs %d/%d/%d/%d", s1, r1, c1, a1, s2, r2, c2, a2)
	}
}

func TestLexiconUnmarshalRejectsBadConfidence(t *testing.T) {
	cases := []string{
		`{"entities":{"x":[{"Entity":"E","Class":"C","P":1.5}]},"relations":{},"classes":{}}`,
		`{"entities":{"x":[{"Entity":"E","Class":"C","P":0}]},"relations":{},"classes":{}}`,
		`{"entities":{},"relations":{"r":[{"Predicate":"p","P":-1}]},"classes":{}}`,
		`not json`,
	}
	for i, c := range cases {
		l := NewLexicon()
		if err := json.Unmarshal([]byte(c), l); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSurfaces(t *testing.T) {
	l := demo()
	ss := l.Surfaces()
	if len(ss) != 2 { // "michael jordan", "ny"
		t.Fatalf("Surfaces = %v", ss)
	}
	for i := 1; i < len(ss); i++ {
		if ss[i] < ss[i-1] {
			t.Fatal("surfaces unsorted")
		}
	}
}

func TestStats(t *testing.T) {
	l := demo()
	surfaces, relations, classes, ambiguous := l.Stats()
	if surfaces != 2 || relations != 2 || classes != 1 || ambiguous != 1 {
		t.Fatalf("Stats = %d/%d/%d/%d", surfaces, relations, classes, ambiguous)
	}
}
