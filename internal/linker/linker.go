// Package linker simulates the entity-linking and relation-paraphrasing
// services the paper consumes as black boxes (§2.1: entity linking with
// existence confidences [4], graph-mining-based relation paraphrasing [33]).
//
// Go has no production entity-linking stack, so the substitution (documented
// in DESIGN.md) is a deterministic lexicon: surface forms map to candidate
// entities with confidence scores, relation phrases map to candidate
// predicates, and class nouns map to ontology classes. Workload generators
// control the ambiguity rates, which is what the join's pruning behaviour
// depends on.
package linker

import (
	"sort"
	"strings"
)

// EntityCandidate is one possible resolution of a surface form.
type EntityCandidate struct {
	// Entity is the canonical entity name in the knowledge graph.
	Entity string
	// Class is the entity's ontology class (its rdf:type).
	Class string
	// P is the linking confidence in (0, 1].
	P float64
}

// PredicateCandidate is one possible predicate for a relation phrase.
type PredicateCandidate struct {
	Predicate string
	P         float64
	// Inverse marks phrases whose arguments are reversed with respect to
	// the predicate's subject/object order: "What is the ruling party in
	// Lisbon?" expresses leaderParty(Lisbon, ?x) although the variable
	// comes first in the sentence.
	Inverse bool
	// Range is the class of the predicate's object, known for inverse
	// phrases ("the director of" yields an Actor); it types the answer
	// variable so inverse question graphs stay distinguishable from
	// forward ones.
	Range string
}

// Lexicon is the combined entity/relation/class dictionary. The zero value
// is unusable; construct with NewLexicon.
type Lexicon struct {
	entities  map[string][]EntityCandidate
	relations map[string][]PredicateCandidate
	classes   map[string]string
	maxWords  int // longest registered multi-word surface form
}

// NewLexicon returns an empty lexicon.
func NewLexicon() *Lexicon {
	return &Lexicon{
		entities:  make(map[string][]EntityCandidate),
		relations: make(map[string][]PredicateCandidate),
		classes:   make(map[string]string),
		maxWords:  1,
	}
}

func norm(s string) string {
	return strings.ToLower(strings.TrimSpace(s))
}

func (l *Lexicon) noteWords(surface string) {
	if n := len(strings.Fields(surface)); n > l.maxWords {
		l.maxWords = n
	}
}

// AddEntity registers an entity candidate for a surface form. Candidates for
// one surface form are kept sorted by descending confidence.
func (l *Lexicon) AddEntity(surface, entity, class string, p float64) {
	key := norm(surface)
	l.noteWords(key)
	cands := append(l.entities[key], EntityCandidate{Entity: entity, Class: class, P: p})
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].P > cands[j].P })
	l.entities[key] = cands
}

// AddRelation registers a predicate candidate for a relation phrase.
func (l *Lexicon) AddRelation(phrase, predicate string, p float64) {
	l.addRelation(phrase, predicate, p, false, "")
}

// AddInverseRelation registers a phrase whose natural-language argument
// order is the reverse of the predicate's subject/object order ("the
// director of <film>"). rangeClass is the class of the answer (the
// predicate's object); it may be empty when unknown.
func (l *Lexicon) AddInverseRelation(phrase, predicate string, p float64, rangeClass string) {
	l.addRelation(phrase, predicate, p, true, rangeClass)
}

func (l *Lexicon) addRelation(phrase, predicate string, p float64, inverse bool, rangeClass string) {
	key := norm(phrase)
	l.noteWords(key)
	cands := append(l.relations[key], PredicateCandidate{Predicate: predicate, P: p, Inverse: inverse, Range: rangeClass})
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].P > cands[j].P })
	l.relations[key] = cands
}

// AddClass registers a class noun ("actor" → "Actor"). Singular and naive
// plural forms are both matched.
func (l *Lexicon) AddClass(noun, class string) {
	l.classes[norm(noun)] = class
}

// LinkEntity returns the candidates for a surface form (best first), or nil.
func (l *Lexicon) LinkEntity(surface string) []EntityCandidate {
	return l.entities[norm(surface)]
}

// Paraphrase returns the predicate candidates for a relation phrase (best
// first), or nil.
func (l *Lexicon) Paraphrase(phrase string) []PredicateCandidate {
	return l.relations[norm(phrase)]
}

// LookupClass resolves a class noun, tolerating a trailing plural 's'.
func (l *Lexicon) LookupClass(noun string) (string, bool) {
	key := norm(noun)
	if c, ok := l.classes[key]; ok {
		return c, true
	}
	if strings.HasSuffix(key, "s") {
		if c, ok := l.classes[strings.TrimSuffix(key, "s")]; ok {
			return c, true
		}
	}
	return "", false
}

// IsEntityStart reports whether any registered entity surface form begins at
// the given word (used by the greedy longest-match scanner).
func (l *Lexicon) IsEntityStart(word string) bool {
	key := norm(word)
	if _, ok := l.entities[key]; ok {
		return true
	}
	prefix := key + " "
	for surface := range l.entities {
		if strings.HasPrefix(surface, prefix) {
			return true
		}
	}
	return false
}

// MaxSurfaceWords returns the longest registered surface form's word count.
func (l *Lexicon) MaxSurfaceWords() int { return l.maxWords }

// MatchEntity finds the longest entity surface form starting at words[i],
// returning the candidates and the number of words consumed (0 when none).
func (l *Lexicon) MatchEntity(words []string, i int) ([]EntityCandidate, int) {
	maxLen := l.maxWords
	if rem := len(words) - i; rem < maxLen {
		maxLen = rem
	}
	for n := maxLen; n >= 1; n-- {
		key := norm(strings.Join(words[i:i+n], " "))
		if cands, ok := l.entities[key]; ok {
			return cands, n
		}
	}
	return nil, 0
}

// MatchRelation finds the longest relation phrase starting at words[i],
// returning the predicate candidates, the phrase text, and the number of
// words consumed (0 when none).
func (l *Lexicon) MatchRelation(words []string, i int) ([]PredicateCandidate, string, int) {
	maxLen := l.maxWords
	if rem := len(words) - i; rem < maxLen {
		maxLen = rem
	}
	for n := maxLen; n >= 1; n-- {
		key := norm(strings.Join(words[i:i+n], " "))
		if cands, ok := l.relations[key]; ok {
			return cands, key, n
		}
	}
	return nil, "", 0
}
