package linker

import "testing"

func demo() *Lexicon {
	l := NewLexicon()
	l.AddEntity("Michael Jordan", "MJ_NBA", "NBA_Player", 0.6)
	l.AddEntity("michael jordan", "MJ_Prof", "Professor", 0.3)
	l.AddEntity("NY", "New_York", "State", 0.7)
	l.AddRelation("is married to", "spouse", 0.9)
	l.AddRelation("married to", "spouse", 0.8)
	l.AddClass("actor", "Actor")
	return l
}

func TestLinkEntityCaseInsensitiveAndSorted(t *testing.T) {
	l := demo()
	cands := l.LinkEntity("MICHAEL JORDAN")
	if len(cands) != 2 {
		t.Fatalf("candidates = %v", cands)
	}
	if cands[0].Entity != "MJ_NBA" || cands[1].Entity != "MJ_Prof" {
		t.Errorf("not sorted by confidence: %v", cands)
	}
	if l.LinkEntity("nobody") != nil {
		t.Error("unknown surface linked")
	}
}

func TestParaphrase(t *testing.T) {
	l := demo()
	if p := l.Paraphrase("Married To"); len(p) != 1 || p[0].Predicate != "spouse" {
		t.Errorf("Paraphrase = %v", p)
	}
}

func TestLookupClassPlural(t *testing.T) {
	l := demo()
	if c, ok := l.LookupClass("Actors"); !ok || c != "Actor" {
		t.Errorf("plural lookup = %q,%v", c, ok)
	}
	if _, ok := l.LookupClass("robots"); ok {
		t.Error("unknown class resolved")
	}
}

func TestMatchEntityLongest(t *testing.T) {
	l := demo()
	words := []string{"is", "Michael", "Jordan", "here"}
	cands, n := l.MatchEntity(words, 1)
	if n != 2 || len(cands) != 2 {
		t.Fatalf("MatchEntity = %v, consumed %d", cands, n)
	}
	if _, n := l.MatchEntity(words, 0); n != 0 {
		t.Error("matched at wrong offset")
	}
	// Out-of-range start near the end.
	if _, n := l.MatchEntity(words, 3); n != 0 {
		t.Error("matched past end")
	}
}

func TestMatchRelationLongest(t *testing.T) {
	l := demo()
	words := []string{"who", "is", "married", "to", "X"}
	_, phrase, n := l.MatchRelation(words, 1)
	if n != 3 || phrase != "is married to" {
		t.Fatalf("MatchRelation = %q consumed %d, want 'is married to'/3", phrase, n)
	}
	_, phrase, n = l.MatchRelation(words, 2)
	if n != 2 || phrase != "married to" {
		t.Fatalf("shorter fallback = %q/%d", phrase, n)
	}
}

func TestIsEntityStart(t *testing.T) {
	l := demo()
	if !l.IsEntityStart("Michael") {
		t.Error("multi-word prefix not detected")
	}
	if !l.IsEntityStart("ny") {
		t.Error("single word not detected")
	}
	if l.IsEntityStart("Jordan") {
		t.Error("mid-phrase word detected as start")
	}
}

func TestMaxSurfaceWords(t *testing.T) {
	if demo().MaxSurfaceWords() != 3 {
		t.Errorf("MaxSurfaceWords = %d, want 3", demo().MaxSurfaceWords())
	}
}
