package linker

import (
	"encoding/json"
	"fmt"
	"sort"
)

// lexiconJSON is the serialised form of a Lexicon.
type lexiconJSON struct {
	Entities  map[string][]EntityCandidate    `json:"entities"`
	Relations map[string][]PredicateCandidate `json:"relations"`
	Classes   map[string]string               `json:"classes"`
}

// MarshalJSON serialises the lexicon with deterministic candidate order.
func (l *Lexicon) MarshalJSON() ([]byte, error) {
	out := lexiconJSON{
		Entities:  make(map[string][]EntityCandidate, len(l.entities)),
		Relations: make(map[string][]PredicateCandidate, len(l.relations)),
		Classes:   l.classes,
	}
	for k, v := range l.entities {
		out.Entities[k] = v
	}
	for k, v := range l.relations {
		out.Relations[k] = v
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a lexicon serialised by MarshalJSON.
func (l *Lexicon) UnmarshalJSON(data []byte) error {
	var in lexiconJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("linker: %w", err)
	}
	*l = *NewLexicon()
	for surface, cands := range in.Entities {
		for _, c := range cands {
			if c.P <= 0 || c.P > 1 {
				return fmt.Errorf("linker: entity %q candidate %q has confidence %v", surface, c.Entity, c.P)
			}
			l.AddEntity(surface, c.Entity, c.Class, c.P)
		}
	}
	for phrase, cands := range in.Relations {
		for _, c := range cands {
			if c.P <= 0 || c.P > 1 {
				return fmt.Errorf("linker: relation %q candidate %q has confidence %v", phrase, c.Predicate, c.P)
			}
			l.addRelation(phrase, c.Predicate, c.P, c.Inverse, c.Range)
		}
	}
	for noun, class := range in.Classes {
		l.AddClass(noun, class)
	}
	return nil
}

// Stats summarises the lexicon for diagnostics: distinct surfaces, relation
// phrases, classes, and the count of ambiguous surfaces.
func (l *Lexicon) Stats() (surfaces, relations, classes, ambiguous int) {
	surfaces = len(l.entities)
	relations = len(l.relations)
	classes = len(l.classes)
	for _, cands := range l.entities {
		if len(cands) > 1 {
			ambiguous++
		}
	}
	return
}

// Surfaces returns every registered entity surface form, sorted.
func (l *Lexicon) Surfaces() []string {
	out := make([]string, 0, len(l.entities))
	for s := range l.entities {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
