package workload

import (
	"path/filepath"
	"testing"
)

func TestWorkloadSaveLoadRoundTrip(t *testing.T) {
	cfg := smallQAConfig()
	w, err := GenerateQA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "wl")
	if err := w.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.KB.Store.Len() != w.KB.Store.Len() {
		t.Errorf("KB triples %d != %d", got.KB.Store.Len(), w.KB.Store.Len())
	}
	if len(got.Questions) != len(w.Questions) {
		t.Fatalf("questions %d != %d", len(got.Questions), len(w.Questions))
	}
	for i := range got.Questions {
		if got.Questions[i].Text != w.Questions[i].Text {
			t.Fatalf("question %d text differs", i)
		}
		if got.Questions[i].GoldSig != w.Questions[i].GoldSig {
			t.Fatalf("question %d signature differs:\n%s\n%s", i,
				got.Questions[i].GoldSig, w.Questions[i].GoldSig)
		}
	}
	if len(got.Sparql) != len(w.Sparql) {
		t.Fatalf("sparql %d != %d", len(got.Sparql), len(w.Sparql))
	}
	for i := range got.Sparql {
		if got.Sparql[i].Sig != w.Sparql[i].Sig {
			t.Fatalf("sparql %d signature differs", i)
		}
	}
	// The reloaded lexicon must behave identically.
	s1, r1, c1, a1 := w.KB.Lexicon.Stats()
	s2, r2, c2, a2 := got.KB.Lexicon.Stats()
	if s1 != s2 || r1 != r2 || c1 != c2 || a1 != a2 {
		t.Errorf("lexicon stats differ: %d/%d/%d/%d vs %d/%d/%d/%d", s1, r1, c1, a1, s2, r2, c2, a2)
	}
	// A holdout can be generated from the reloaded workload.
	hq := got.HoldoutQuestions(5, 5, 0)
	if len(hq) != 5 {
		t.Fatalf("holdout from reloaded workload: %d", len(hq))
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Error("missing directory loaded")
	}
}
