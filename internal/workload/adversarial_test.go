package workload

import (
	"testing"

	"simjoin/internal/filter"
	"simjoin/internal/graph"
)

// TestAdversarialBlindsBaselines pins the property the planner benchmarks
// depend on: on the adversarial workload every certain-graph baseline bound
// computes zero (prunes nothing — identical topology, all-wildcard
// relaxation) while the css bound prunes every cross-family pair and passes
// every same-family pair at a small threshold.
func TestAdversarialBlindsBaselines(t *testing.T) {
	cfg := AdversarialConfig{
		Seed:            5,
		Queries:         12,
		Uncertain:       12,
		Families:        3,
		Vertices:        8,
		Chords:          2,
		FamilyLabels:    4,
		LabelsPerVertex: 2,
	}
	d, u := Adversarial(cfg)
	if len(d) != cfg.Queries || len(u) != cfg.Uncertain {
		t.Fatalf("sides sized %d/%d, want %d/%d", len(d), len(u), cfg.Queries, cfg.Uncertain)
	}

	// One shared topology: identical vertex and edge counts everywhere.
	nv, ne := d[0].NumVertices(), d[0].NumEdges()
	for i, g := range d {
		if g.NumVertices() != nv || g.NumEdges() != ne {
			t.Fatalf("d[%d] is %dv/%de, want %dv/%de", i, g.NumVertices(), g.NumEdges(), nv, ne)
		}
	}
	for i, g := range u {
		if g.NumVertices() != nv || g.NumEdges() != ne {
			t.Fatalf("u[%d] is %dv/%de, want %dv/%de", i, g.NumVertices(), g.NumEdges(), nv, ne)
		}
	}

	// Every uncertain vertex carries LabelsPerVertex candidates, so the
	// certain relaxation every baseline bound sees is all wildcards.
	gsigs := make([]*filter.GSig, len(u))
	for i, g := range u {
		gsigs[i] = filter.NewGSig(g)
		for v := 0; v < g.NumVertices(); v++ {
			if got := len(g.Labels(v)); got != cfg.LabelsPerVertex {
				t.Fatalf("u[%d] vertex %d has %d candidate labels, want %d", i, v, got, cfg.LabelsPerVertex)
			}
		}
		relaxed := gsigs[i].Relaxed()
		for v := 0; v < relaxed.NumVertices(); v++ {
			if !graph.IsWildcard(relaxed.VertexLabel(v)) {
				t.Fatalf("u[%d] relaxed vertex %d is %q, want a wildcard", i, v, relaxed.VertexLabel(v))
			}
		}
	}

	baselines := []struct {
		name string
		lb   func(q, g *graph.Graph) int
	}{
		{"count", filter.CountLowerBound},
		{"lm", filter.LMLowerBound},
		{"cstar", filter.CStarLowerBound},
		{"path-gram", filter.PathGramLowerBound},
		{"pars", filter.ParsLowerBound},
		{"segos", func(q, g *graph.Graph) int { return filter.SegosLowerBound(q, g, 0) }},
	}
	const tau = 2
	for qi, q := range d {
		for gi := range u {
			relaxed := gsigs[gi].Relaxed()
			for _, b := range baselines {
				if lb := b.lb(q, relaxed); lb != 0 {
					t.Fatalf("%s(d[%d], relaxed u[%d]) = %d, want 0 (baselines must be blind)", b.name, qi, gi, lb)
				}
			}
			css := filter.CSSLowerBoundUncertain(q, u[gi])
			if qi%cfg.Families != gi%cfg.Families {
				if css <= tau {
					t.Fatalf("css(d[%d], u[%d]) = %d, want > %d (cross-family pair must prune)", qi, gi, css, tau)
				}
			} else if css > tau {
				t.Fatalf("css(d[%d], u[%d]) = %d, want <= %d (same-family pair must survive)", qi, gi, css, tau)
			}
		}
	}
}
